// Tests for the deterministic virtual-time engine: determinism, search
// progress, policy semantics, heterogeneity effects.
#include <gtest/gtest.h>

#include "experiments/workloads.hpp"
#include "netlist/generator.hpp"
#include "parallel/sim_engine.hpp"

namespace pts::parallel {
namespace {

using netlist::GeneratorConfig;
using netlist::Netlist;

Netlist circuit(std::size_t gates = 56, std::uint64_t seed = 3) {
  GeneratorConfig config;
  config.num_gates = gates;
  config.num_primary_inputs = 8;
  config.num_primary_outputs = 8;
  config.seed = seed;
  return generate_circuit(config);
}

PtsConfig small_config(std::uint64_t seed = 1) {
  PtsConfig config;
  config.seed = seed;
  config.num_tsws = 3;
  config.clws_per_tsw = 2;
  config.local_iterations = 5;
  config.global_iterations = 3;
  config.tabu.compound.width = 6;
  config.tabu.compound.depth = 2;
  config.cluster = pvm::ClusterConfig::paper_cluster(0.05);
  return config;
}

TEST(SimEngine, DeterministicAcrossRuns) {
  const Netlist nl = circuit();
  const PtsConfig config = small_config(11);
  const PtsResult a = SimEngine(nl, config).run();
  const PtsResult b = SimEngine(nl, config).run();
  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.best_slots, b.best_slots);
  EXPECT_EQ(a.makespan, b.makespan);
  ASSERT_EQ(a.best_vs_time.size(), b.best_vs_time.size());
  for (std::size_t i = 0; i < a.best_vs_time.size(); ++i) {
    EXPECT_EQ(a.best_vs_time.x[i], b.best_vs_time.x[i]);
    EXPECT_EQ(a.best_vs_time.y[i], b.best_vs_time.y[i]);
  }
}

TEST(SimEngine, DifferentSeedsDifferentSearches) {
  const Netlist nl = circuit();
  const PtsResult a = SimEngine(nl, small_config(1)).run();
  const PtsResult b = SimEngine(nl, small_config(2)).run();
  EXPECT_NE(a.best_slots, b.best_slots);
}

TEST(SimEngine, ImprovesOnInitialCost) {
  const Netlist nl = circuit();
  const PtsResult r = SimEngine(nl, small_config()).run();
  EXPECT_LT(r.best_cost, r.initial_cost);
  EXPECT_GT(r.best_quality, 0.0);
  EXPECT_GT(r.makespan, 0.0);
}

TEST(SimEngine, TrajectoryIsMonotoneAndAnchored) {
  const Netlist nl = circuit();
  const PtsResult r = SimEngine(nl, small_config()).run();
  ASSERT_GE(r.best_vs_time.size(), 2u);
  EXPECT_EQ(r.best_vs_time.x[0], 0.0);
  EXPECT_EQ(r.best_vs_time.y[0], r.initial_cost);
  for (std::size_t i = 1; i < r.best_vs_time.size(); ++i) {
    EXPECT_GE(r.best_vs_time.x[i], r.best_vs_time.x[i - 1]);
    EXPECT_LT(r.best_vs_time.y[i], r.best_vs_time.y[i - 1]);
  }
  EXPECT_NEAR(r.best_vs_time.min_y(), r.best_cost, 1e-12);
  // Per-global-iteration series: monotone, final value = best.
  for (std::size_t i = 1; i < r.best_vs_global.size(); ++i) {
    EXPECT_LE(r.best_vs_global.y[i], r.best_vs_global.y[i - 1]);
  }
  EXPECT_EQ(r.best_vs_global.last_y(), r.best_cost);
}

TEST(SimEngine, BestSlotsReproduceBestCost) {
  const Netlist nl = circuit();
  const PtsConfig config = small_config(21);
  const PtsResult r = SimEngine(nl, config).run();
  // Independent evaluation of the returned slots.
  SearchSetup setup(nl, config);
  auto eval = setup.make_evaluator(r.best_slots);
  EXPECT_NEAR(eval->cost(), r.best_cost, 1e-6);
}

TEST(SimEngine, HalfForceNeverSlowerThanWaitAll) {
  // Same seed, same work; the heterogeneous policy must finish no later
  // per construction (it waits for fewer children at both levels).
  const Netlist nl = circuit(80, 7);
  PtsConfig het = small_config(5);
  het.set_policy(CollectionPolicy::HalfForce);
  PtsConfig hom = het;
  hom.set_policy(CollectionPolicy::WaitAll);
  const PtsResult r_het = SimEngine(nl, het).run();
  const PtsResult r_hom = SimEngine(nl, hom).run();
  EXPECT_LT(r_het.makespan, r_hom.makespan);
  // Both improve on the initial solution.
  EXPECT_LT(r_het.best_cost, r_het.initial_cost);
  EXPECT_LT(r_hom.best_cost, r_hom.initial_cost);
}

TEST(SimEngine, HalfForceGainGrowsWithClusterSkew) {
  // The more heterogeneous the cluster, the bigger the makespan gap.
  const Netlist nl = circuit(60, 9);
  PtsConfig config = small_config(3);
  config.set_policy(CollectionPolicy::WaitAll);

  config.cluster = pvm::ClusterConfig::three_class(4, 4, 4, 1.0, 0.9, 0.8, 0.0);
  const double mild_gap = [&] {
    const double hom = SimEngine(nl, config).run().makespan;
    PtsConfig het = config;
    het.set_policy(CollectionPolicy::HalfForce);
    return hom / SimEngine(nl, het).run().makespan;
  }();

  config.cluster = pvm::ClusterConfig::three_class(4, 4, 4, 1.0, 0.5, 0.2, 0.0);
  const double skewed_gap = [&] {
    const double hom = SimEngine(nl, config).run().makespan;
    PtsConfig het = config;
    het.set_policy(CollectionPolicy::HalfForce);
    return hom / SimEngine(nl, het).run().makespan;
  }();

  EXPECT_GT(skewed_gap, mild_gap);
  EXPECT_GT(mild_gap, 0.99);
}

TEST(SimEngine, SingleWorkerDegeneratesToSequential) {
  const Netlist nl = circuit(30, 2);
  PtsConfig config = small_config();
  config.num_tsws = 1;
  config.clws_per_tsw = 1;
  const PtsResult r = SimEngine(nl, config).run();
  EXPECT_LT(r.best_cost, r.initial_cost);
  EXPECT_EQ(r.stats.iterations,
            config.local_iterations * config.global_iterations);
}

TEST(SimEngine, MoreLocalIterationsDoMoreWork) {
  const Netlist nl = circuit(40, 4);
  PtsConfig short_run = small_config(8);
  short_run.local_iterations = 2;
  PtsConfig long_run = short_run;
  long_run.local_iterations = 10;
  const PtsResult a = SimEngine(nl, short_run).run();
  const PtsResult b = SimEngine(nl, long_run).run();
  EXPECT_GT(b.stats.iterations, a.stats.iterations);
  EXPECT_GT(b.makespan, a.makespan);
  EXPECT_LE(b.best_cost, a.best_cost + 0.05);  // more work, no regression
}

TEST(SimEngine, DiversificationChangesSearchOutcome) {
  const Netlist nl = circuit(56, 6);
  PtsConfig with = small_config(13);
  PtsConfig without = with;
  without.diversify.enabled = false;
  const PtsResult a = SimEngine(nl, with).run();
  const PtsResult b = SimEngine(nl, without).run();
  EXPECT_NE(a.best_slots, b.best_slots);
}

TEST(SimEngine, StatsAddUpAcrossTsws) {
  const Netlist nl = circuit(40, 5);
  const PtsConfig config = small_config(2);
  const PtsResult r = SimEngine(nl, config).run();
  // Iterations counted = TSWs * global * local (no master force cuts in
  // the virtual-time engine's TSW loop — cuts truncate reports, not work).
  EXPECT_EQ(r.stats.iterations,
            config.num_tsws * config.global_iterations * config.local_iterations);
  EXPECT_EQ(r.stats.iterations,
            r.stats.accepted + r.stats.rejected_tabu +
                (r.stats.iterations - r.stats.accepted - r.stats.rejected_tabu));
  EXPECT_GT(r.stats.accepted, 0u);
}

TEST(SimEngine, TimeToCostFindsThreshold) {
  const Netlist nl = circuit(56, 8);
  const PtsResult r = SimEngine(nl, small_config(4)).run();
  const double mid = (r.initial_cost + r.best_cost) / 2.0;
  const double t = r.time_to_cost(mid);
  EXPECT_GT(t, 0.0);
  EXPECT_LE(t, r.makespan + 1e-9);
  EXPECT_EQ(r.time_to_cost(r.best_cost - 1.0), -1.0);
}

}  // namespace
}  // namespace pts::parallel
