// Wire protocol between master, TSWs and CLWs.
//
// Message kinds (tags) mirror the paper's Figures 2–4:
//
//   master -> TSW : Init        (params digest, initial slots, range, index)
//                   Broadcast   (global best slots + winner tabu list)
//                   ForceReport (straggler cutoff, carries global iter seq)
//                   Terminate
//   TSW -> master : Report      (best cost + slots + tabu list, global seq)
//   TSW -> CLW    : Init        (initial slots, range)
//                   Search      (delta swaps to sync + local iter seq)
//                   ForceReport (local iter seq)
//                   Terminate
//   CLW -> TSW    : Report      (compound swaps + cost, local iter seq)
//
// Every Report/ForceReport carries the iteration sequence number so that a
// worker that already reported can ignore a stale force request (the
// natural race when a straggler finishes just as the parent cuts it off).
#pragma once

#include <vector>

#include "netlist/netlist.hpp"
#include "pvm/message.hpp"
#include "tabu/move.hpp"

namespace pts::parallel {

enum Tag : int {
  kTagInit = 1,
  kTagSearch = 2,
  kTagReport = 3,
  kTagForceReport = 4,
  kTagBroadcast = 5,
  kTagTerminate = 6,
};

// -- shared field codecs ----------------------------------------------------

void pack_slots(pvm::Message& msg, const std::vector<netlist::CellId>& slots);
std::vector<netlist::CellId> unpack_slots(pvm::Message& msg);

void pack_moves(pvm::Message& msg, const std::vector<tabu::Move>& moves);
std::vector<tabu::Move> unpack_moves(pvm::Message& msg);

// -- typed message bodies ---------------------------------------------------

/// CLW -> TSW: result of one candidate-list investigation.
struct ClwReport {
  std::uint64_t local_seq = 0;
  std::vector<tabu::Move> swaps;  ///< best (possibly cut) compound prefix
  double cost = 0.0;              ///< cost after applying `swaps`
  bool was_forced = false;
  bool improved_early = false;
  double work_units = 0.0;  ///< trials executed (diagnostics)

  pvm::Message encode() const;
  static ClwReport decode(pvm::Message& msg);
};

/// TSW -> master: result of one global iteration's local search.
struct TswReport {
  std::uint64_t global_seq = 0;
  double best_cost = 0.0;
  std::vector<netlist::CellId> best_slots;
  std::vector<tabu::Move> tabu_entries;
  bool was_forced = false;
  std::uint64_t local_iterations_done = 0;
  /// Cumulative search statistics (master merges the final report's).
  std::uint64_t stat_iterations = 0;
  std::uint64_t stat_accepted = 0;
  std::uint64_t stat_rejected_tabu = 0;
  std::uint64_t stat_aspirated = 0;
  std::uint64_t stat_early_accepts = 0;

  pvm::Message encode() const;
  static TswReport decode(pvm::Message& msg);
};

/// Parent -> child: initial solution.
pvm::Message make_init(const std::vector<netlist::CellId>& slots);
std::vector<netlist::CellId> decode_init(pvm::Message& msg);

/// Parent -> child: report-now request for iteration `seq`.
pvm::Message make_force(std::uint64_t seq);
std::uint64_t decode_force(pvm::Message& msg);

pvm::Message make_terminate();

/// master -> TSW: new global best for the next global iteration.
struct Broadcast {
  std::uint64_t global_seq = 0;
  double best_cost = 0.0;
  std::vector<netlist::CellId> best_slots;
  std::vector<tabu::Move> tabu_entries;

  pvm::Message encode() const;
  static Broadcast decode(pvm::Message& msg);
};

/// TSW -> CLW: sync deltas and start the next investigation.
struct SearchRequest {
  std::uint64_t local_seq = 0;
  /// Swaps to apply to the CLW's copy to reach the TSW's current solution;
  /// empty when the previous iteration accepted nothing.
  std::vector<tabu::Move> sync_swaps;
  /// Full solution reset (used at global iteration boundaries); when
  /// non-empty it replaces the CLW state and sync_swaps must be empty.
  std::vector<netlist::CellId> reset_slots;

  pvm::Message encode() const;
  static SearchRequest decode(pvm::Message& msg);
};

}  // namespace pts::parallel
