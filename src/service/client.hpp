// Synchronous client for the ptsd daemon, shared by the pts_client CLI, the
// ptsd_load generator, and the service tests.
//
// One Client owns one connection and is single-threaded: requests block
// until their reply arrives. Because the daemon pushes kProgress / kDone
// events for every session on the connection, replies can interleave with
// stream traffic — events that are not the awaited reply are buffered and
// replayed in order by the wait()/next_event() readers, so multiple
// in-flight sessions per connection just work.
//
//   Client client;
//   client.connect_unix("/tmp/ptsd.sock", &err);
//   auto welcome = client.hello(&err);                 // capability handshake
//   auto id = client.submit(job, /*stream=*/true, 0, &err);
//   auto result = client.wait(*id, on_progress, &err); // SolveResult
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>

#include "pvm/frame.hpp"
#include "service/codec.hpp"
#include "service/proto.hpp"
#include "solver/solver.hpp"

namespace pts::service {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  bool connect_unix(const std::string& path, std::string* error);
  bool connect_tcp(const std::string& host, std::uint16_t port, std::string* error);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Capability handshake; must be the first request on a connection.
  std::optional<WelcomeMsg> hello(std::string* error);

  /// Submits a job; returns the session id. `stream` / `progress_stride`
  /// control kProgress pushes (see SubmitMsg).
  std::optional<std::uint64_t> submit(const JobRequest& job, bool stream,
                                      std::uint64_t progress_stride,
                                      std::string* error);

  /// Requests cancellation; `was_active` (optional out) reports whether the
  /// session was still running.
  bool cancel(std::uint64_t session, bool* was_active, std::string* error);

  /// Blocks until the session's kDone arrives, invoking `on_progress` (may
  /// be null) for its kProgress events. Events of other sessions stay
  /// buffered for their own wait() calls.
  std::optional<solver::SolveResult> wait(
      std::uint64_t session,
      const std::function<void(const ProgressMsg&)>& on_progress,
      std::string* error);

  /// Asks the daemon to drain and exit (acknowledged before the drain).
  bool shutdown_server(std::string* error);

 private:
  bool send_message(const pvm::Message& msg, std::string* error);
  /// Next frame from the wire (or the buffer); nullopt on EOF/error.
  std::optional<pvm::Message> read_message(std::string* error);

  int fd_ = -1;
  pvm::FrameDecoder decoder_;
  std::deque<pvm::Message> pending_;  ///< events read while awaiting a reply
};

}  // namespace pts::service
