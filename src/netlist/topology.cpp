#include "netlist/topology.hpp"

#include <algorithm>

#include "netlist/netlist.hpp"

namespace pts::netlist {

void Topology::build(const Netlist& netlist) {
  const std::size_t n_cells = netlist.num_cells();
  const std::size_t n_nets = netlist.num_nets();

  // net -> pins, driver first then sinks in net order.
  pin_offsets_.assign(n_nets + 1, 0);
  for (NetId nid = 0; nid < n_nets; ++nid) {
    pin_offsets_[nid + 1] =
        pin_offsets_[nid] + static_cast<std::uint32_t>(netlist.net(nid).pin_count());
  }
  net_pins_.clear();
  net_pins_.reserve(pin_offsets_.back());
  net_weight_.resize(n_nets);
  for (NetId nid = 0; nid < n_nets; ++nid) {
    const Net& n = netlist.net(nid);
    net_pins_.push_back(n.driver);
    net_pins_.insert(net_pins_.end(), n.sinks.begin(), n.sinks.end());
    net_weight_[nid] = n.weight;
  }
  PTS_CHECK(net_pins_.size() == pin_offsets_.back());

  // cell -> incident nets: out net first, then input nets deduplicated in
  // first-seen order (the exact order the old Netlist::nets_of index used).
  cell_net_offsets_.assign(n_cells + 1, 0);
  cell_nets_.clear();
  cell_nets_.reserve(n_cells + net_pins_.size());
  cell_width_.resize(n_cells);
  cell_intrinsic_delay_.resize(n_cells);
  cell_load_factor_.resize(n_cells);
  cell_movable_.resize(n_cells);
  for (CellId id = 0; id < n_cells; ++id) {
    const Cell& c = netlist.cell(id);
    const std::size_t begin = cell_nets_.size();
    if (c.out_net != kNoNet) cell_nets_.push_back(c.out_net);
    for (NetId nid : c.in_nets) {
      const auto first = cell_nets_.begin() + static_cast<std::ptrdiff_t>(begin);
      if (std::find(first, cell_nets_.end(), nid) == cell_nets_.end()) {
        cell_nets_.push_back(nid);
      }
    }
    cell_net_offsets_[id + 1] = static_cast<std::uint32_t>(cell_nets_.size());
    cell_width_[id] = static_cast<double>(c.width);
    cell_intrinsic_delay_[id] = c.intrinsic_delay;
    cell_load_factor_[id] = c.load_factor;
    cell_movable_[id] = c.movable() ? 1 : 0;
  }
  cell_nets_.shrink_to_fit();
}

}  // namespace pts::netlist
