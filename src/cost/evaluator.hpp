// Incremental multi-objective cost evaluation of a placement.
//
// The Evaluator owns a Placement and keeps the HPWL state and the K-paths
// delay estimate consistent with it across swaps. It is the single mutation
// point used by the tabu engine and by every candidate-list worker.
//
// Trial loops score candidate swaps with the probe/commit idiom
// (DESIGN.md §3): probe_swap() computes the would-be cost into member
// scratch without changing any observable state, and commit_probe()
// promotes the immediately preceding probe for the price of the bookkeeping
// alone — so a rejected trial costs one incremental pass instead of the
// mutate-and-undo pair's two:
//
//   double after = eval.probe_swap(a, b);   // no observable state change
//   if (accept) eval.commit_probe();        // promote that probe; else: done
//
// probe_swap() is bit-identical to what apply_swap() would have returned
// against the same running totals (same floating-point summation order), and
// a commit leaves state bit-identical to the equivalent apply_swap() — the
// same-seed determinism guarantee does not care which path evaluated a move.
// Committed mutation stays available for non-trial uses:
//
//   double after = eval.apply_swap(a, b);   // mutate + incremental update
//   ...
//   eval.apply_swap(a, b);                  // swap is an involution: undo
//
// Each worker owns its own Evaluator (its private copy of the current
// solution); the PathSet is immutable and shared. Probe scratch lives in the
// Evaluator, so neither probe nor apply allocates in steady state.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cost/fuzzy.hpp"
#include "netlist/netlist.hpp"
#include "placement/hpwl.hpp"
#include "placement/placement.hpp"
#include "timing/paths.hpp"

namespace pts::cost {

/// A candidate swap for batched evaluation (Evaluator::probe_batch).
struct Move {
  netlist::CellId a = netlist::kNoCell;
  netlist::CellId b = netlist::kNoCell;
};

struct CostParams {
  timing::DelayModel delay_model;
  /// Number of monitored critical paths for the delay estimate.
  std::size_t num_paths = 24;
  /// Goal calibration (see FuzzyGoals::calibrate).
  double target_improvement = 0.7;
  double initial_membership = 0.25;
  double beta = 0.6;
  /// Rebuild HPWL + path sums from scratch every this many swaps (caps
  /// floating-point drift in the running totals).
  std::size_t rebuild_interval = 1u << 14;
};

class Evaluator {
 public:
  /// Takes ownership of `placement`; goals are taken from `goals` so all
  /// workers of one search rank solutions identically.
  Evaluator(placement::Placement placement,
            std::shared_ptr<const timing::PathSet> paths, const CostParams& params,
            const FuzzyGoals& goals);

  Evaluator(const Evaluator&) = delete;
  Evaluator& operator=(const Evaluator&) = delete;

  const placement::Placement& placement() const { return placement_; }
  const FuzzyGoals& goals() const { return goals_; }
  const placement::HpwlState& hpwl() const { return hpwl_; }

  /// Current objective vector.
  Objectives objectives() const;
  /// Current scalar cost (1 - OWA of raw memberships); lower is better.
  double cost() const { return goals_.cost(objectives()); }
  /// Current quality in [0, 1]; higher is better.
  double quality() const { return goals_.quality(objectives()); }

  /// Swaps two movable cells, updates all incremental state, and returns
  /// the new scalar cost. Involution: calling again with the same pair
  /// undoes the move.
  double apply_swap(netlist::CellId a, netlist::CellId b);

  /// Returns the scalar cost apply_swap(a, b) would return, without
  /// changing any observable state (the placement is swapped and restored
  /// internally; HPWL boxes, totals, and path sums are computed into member
  /// scratch). Bit-identical to apply_swap() against the same running
  /// totals, except that a probe never triggers the periodic rebuild —
  /// probes add no floating-point drift, so only committed swaps count
  /// toward rebuild_interval.
  double probe_swap(netlist::CellId a, netlist::CellId b);

  /// Scores N candidate swaps in one call: costs[i] receives exactly what
  /// probe_swap(moves[i].a, moves[i].b) would return — bit-identical, pinned
  /// by tests/property_test.cpp — without mutating the placement geometry at
  /// all. Each candidate is described by a SwapOverlay (placement/overlay.hpp)
  /// staged into shadow position arrays (O(moved) writes, restored after the
  /// probe), and its touched nets are recomputed with the plain-load box
  /// kernel (HpwlState::probe_nets_batch); per-candidate net changes are
  /// replayed against scratch path sums in one peek_delta_batch call, and a
  /// single FuzzyGoals OWA pass converts all N objective tuples to costs.
  /// Leaves no pending probe: commit the winning pair with commit_swap(),
  /// whose apply_swap() fallback is bit-identical by contract. Candidates
  /// are scored against the same committed state, so the batch is equivalent
  /// to N sequential probes (probes change no observable state).
  void probe_batch(std::span<const Move> moves, std::span<double> costs);

  /// Promotes the immediately preceding probe_swap() into the committed
  /// state and returns the new scalar cost. The resulting state is
  /// bit-identical to apply_swap() of the probed pair, but costs only the
  /// geometry swap plus scratch promotion — no second incremental pass.
  /// Invalid after any intervening apply_swap()/reset_placement().
  double commit_probe();

  /// Commits the winning swap of a trial loop: promotes the pending probe
  /// when it is for this pair (either orientation — a swap is symmetric),
  /// otherwise falls back to apply_swap(a, b). Both paths leave
  /// bit-identical state, so callers need not track which trial won.
  double commit_swap(netlist::CellId a, netlist::CellId b);

  /// Replaces the current solution (e.g. with a broadcast best) and fully
  /// rebuilds incremental state.
  void reset_placement(const std::vector<netlist::CellId>& cell_at_slot);

  /// Number of swaps applied since construction (diagnostics).
  std::size_t swaps_applied() const { return swaps_applied_; }

  /// Everything needed to rebuild this evaluator's committed state bit for
  /// bit. The slot permutation and the derived geometry are exact stateless
  /// recomputes, but the running HPWL total and the per-path wire sums
  /// carry incremental summation-order drift, and the rebuild cadence
  /// depends on swaps_since_rebuild — so those are captured verbatim.
  struct CheckpointState {
    std::vector<netlist::CellId> slots;
    double hpwl_total = 0.0;
    std::vector<double> wire_sums;
    std::uint64_t swaps_applied = 0;
    std::uint64_t swaps_since_rebuild = 0;
  };

  CheckpointState checkpoint() const;

  /// Restores a checkpoint() image: after this, every probe/apply/commit
  /// produces bit-identical results to the evaluator the image was taken
  /// from. Must be called on an evaluator built over the same netlist,
  /// layout, paths, params, and goals.
  void restore_checkpoint(const CheckpointState& st);

  /// Measures the objectives of the initial placement of a search and
  /// calibrates shared fuzzy goals from them.
  static FuzzyGoals calibrate_goals(const placement::Placement& initial,
                                    const timing::PathSet& paths,
                                    const CostParams& params);

 private:
  void rebuild_all();
  /// Re-copies committed positions into the shadow arrays for `cells`
  /// (no-op until the first probe_batch materializes the shadow).
  void refresh_shadow(std::span<const netlist::CellId> cells);

  placement::Placement placement_;
  std::shared_ptr<const timing::PathSet> paths_;
  CostParams params_;
  FuzzyGoals goals_;
  placement::HpwlState hpwl_;
  timing::PathTimer timer_;
  placement::NetMarker marker_;
  const netlist::Topology* topology_;  // CSR adjacency for the trial gather
  std::vector<netlist::CellId> moved_scratch_;
  std::vector<placement::NetChange> change_scratch_;
  std::vector<placement::NetBox> box_scratch_;
  // probe_batch scratch: concatenated per-candidate net changes with CSR
  // offsets, objective tuples, and delay estimates. Only timing-relevant
  // changes (nets on a monitored path) are kept — any other net is an exact
  // no-op in the delay replay — which bounds the buffer at
  // width × PathSet::num_path_nets(), lazily reserved on first use so
  // batched probing does not allocate in steady state.
  std::vector<placement::NetChange> batch_changes_;
  std::vector<std::uint32_t> batch_offsets_;
  std::vector<Objectives> batch_objs_;
  std::vector<double> batch_delays_;
  // Shadow copy of the committed SoA positions, materialized lazily by the
  // first probe_batch (that call is the warm-up; nothing allocates after).
  // probe_batch overwrites only a candidate's moved cells and restores them
  // after the probe; committed mutations (apply_swap/commit_probe) re-copy
  // their moved cells, and reset_placement re-copies everything, so the
  // shadow always equals the committed positions between calls.
  std::vector<double> shadow_x_;
  std::vector<double> shadow_y_;
  // Pending probe: the pair, its weighted HPWL delta, and whether the
  // scratch (box_scratch_, change_scratch_, marker_ nets, the timer's peek
  // sums) still describes it. Cleared by any committed mutation.
  netlist::CellId probe_a_ = netlist::kNoCell;
  netlist::CellId probe_b_ = netlist::kNoCell;
  double probe_delta_ = 0.0;
  bool probe_valid_ = false;
  std::size_t swaps_applied_ = 0;
  std::size_t swaps_since_rebuild_ = 0;
};

}  // namespace pts::cost
