// Unit tests for src/timing: exact STA and the K-paths incremental
// estimator.
#include <gtest/gtest.h>

#include <algorithm>

#include "netlist/generator.hpp"
#include "placement/hpwl.hpp"
#include "timing/paths.hpp"
#include "timing/slack.hpp"
#include "timing/sta.hpp"

namespace pts::timing {
namespace {

using netlist::CellId;
using netlist::GeneratorConfig;
using netlist::Netlist;
using netlist::NetId;
using placement::HpwlState;
using placement::Layout;
using placement::Placement;

/// pi -> g1 -> g2 -> po chain with known delays.
Netlist chain() {
  netlist::NetlistBuilder b("chain");
  const CellId pi = b.add_primary_input("a");
  const CellId g1 = b.add_gate("g1", 1, 1.0, 0.5);
  const CellId g2 = b.add_gate("g2", 1, 2.0, 0.25);
  const CellId po = b.add_primary_output("z");
  const NetId n0 = b.add_net("n0", pi);
  b.connect_input(n0, g1);
  const NetId n1 = b.add_net("n1", g1);
  b.connect_input(n1, g2);
  const NetId n2 = b.add_net("n2", g2);
  b.connect_input(n2, po);
  return std::move(b).build();
}

TEST(DelayModel, CellDelayIncludesLoad) {
  const Netlist nl = chain();
  const DelayModel model;
  const CellId g1 = *nl.find_cell("g1");
  // g1 drives n1 with one sink: 1.0 + 0.5 * 1.
  EXPECT_NEAR(model.cell_delay(nl, g1), 1.5, 1e-12);
  // Pads contribute nothing.
  EXPECT_EQ(model.cell_delay(nl, *nl.find_cell("a")), 0.0);
}

TEST(Sta, UniformChainDelayIsHandComputable) {
  const Netlist nl = chain();
  DelayModel model;
  const StaResult sta = run_sta_uniform(nl, /*uniform_net_delay=*/2.0, model);
  // arrival(g1) = 0 + 2 + (1 + .5) = 3.5
  // arrival(g2) = 3.5 + 2 + (2 + .25) = 7.75
  // arrival(z)  = 7.75 + 2 + 0 = 9.75
  EXPECT_NEAR(sta.critical_delay, 9.75, 1e-12);
  ASSERT_EQ(sta.critical_path.size(), 4u);
  EXPECT_EQ(nl.cell(sta.critical_path.front()).kind,
            netlist::CellKind::PrimaryInput);
  EXPECT_EQ(nl.cell(sta.critical_path.back()).kind,
            netlist::CellKind::PrimaryOutput);
}

TEST(Sta, PlacementAwareDelayUsesHpwl) {
  const Netlist nl = chain();
  const Layout layout(nl, 1);
  const Placement p(nl, layout);
  HpwlState hpwl(p);
  DelayModel model;
  model.wire_delay_per_unit = 0.1;
  const StaResult sta = run_sta(nl, hpwl, model);
  const double expected = 0.1 * hpwl.net_hpwl(0) + 1.5 + 0.1 * hpwl.net_hpwl(1) +
                          2.25 + 0.1 * hpwl.net_hpwl(2);
  EXPECT_NEAR(sta.critical_delay, expected, 1e-12);
}

TEST(Sta, CriticalPathEdgesAreReal) {
  GeneratorConfig config;
  config.num_gates = 120;
  config.seed = 3;
  const Netlist nl = generate_circuit(config);
  const DelayModel model;
  const StaResult sta = run_sta_uniform(nl, 1.0, model);
  ASSERT_GE(sta.critical_path.size(), 2u);
  // Consecutive path cells must be driver -> sink of some net.
  for (std::size_t i = 0; i + 1 < sta.critical_path.size(); ++i) {
    const CellId from = sta.critical_path[i];
    const CellId to = sta.critical_path[i + 1];
    const NetId out = nl.cell(from).out_net;
    ASSERT_NE(out, netlist::kNoNet);
    const auto& sinks = nl.net(out).sinks;
    EXPECT_NE(std::find(sinks.begin(), sinks.end(), to), sinks.end());
  }
}

TEST(Paths, ExtractsAtMostKPathsSortedByCriticality) {
  GeneratorConfig config;
  config.num_gates = 200;
  config.num_primary_outputs = 12;
  config.seed = 7;
  const Netlist nl = generate_circuit(config);
  const DelayModel model;
  const auto paths = extract_critical_paths(nl, 6, model);
  EXPECT_LE(paths->size(), 6u);
  EXPECT_GE(paths->size(), 1u);
  for (std::size_t i = 0; i < paths->size(); ++i) {
    const auto& path = paths->path(i);
    EXPECT_EQ(path.cells.size(), path.nets.size() + 1);
    EXPECT_GT(path.const_delay, 0.0);
    // Path endpoints: PI to PO.
    EXPECT_EQ(nl.cell(path.cells.front()).kind, netlist::CellKind::PrimaryInput);
    EXPECT_EQ(nl.cell(path.cells.back()).kind, netlist::CellKind::PrimaryOutput);
    // Edges are consistent: nets[i] connects cells[i] -> cells[i+1].
    for (std::size_t e = 0; e < path.nets.size(); ++e) {
      EXPECT_EQ(nl.net(path.nets[e]).driver, path.cells[e]);
    }
  }
}

TEST(Paths, ReverseIndexIsConsistent) {
  GeneratorConfig config;
  config.num_gates = 150;
  config.seed = 11;
  const Netlist nl = generate_circuit(config);
  const DelayModel model;
  const auto paths = extract_critical_paths(nl, 8, model);
  for (NetId net = 0; net < nl.num_nets(); ++net) {
    for (std::uint32_t p : paths->paths_of_net(net)) {
      const auto& nets = paths->path(p).nets;
      EXPECT_NE(std::find(nets.begin(), nets.end(), net), nets.end());
    }
  }
}

struct TimerCase {
  std::size_t gates;
  std::uint64_t seed;
  int swaps;
};

class PathTimerProperty : public ::testing::TestWithParam<TimerCase> {};

TEST_P(PathTimerProperty, IncrementalMatchesRebuildUnderSwaps) {
  const auto c = GetParam();
  GeneratorConfig config;
  config.num_gates = c.gates;
  config.seed = c.seed;
  const Netlist nl = generate_circuit(config);
  const Layout layout(nl);
  Rng rng(c.seed + 1);
  Placement p = Placement::random(nl, layout, rng);
  HpwlState hpwl(p);
  const DelayModel model;
  auto paths = extract_critical_paths(nl, 12, model);
  PathTimer timer(paths, hpwl, model);

  placement::NetMarker marker(nl.num_nets());
  std::vector<CellId> moved;
  std::vector<placement::NetChange> changes;
  for (int i = 0; i < c.swaps; ++i) {
    const auto [ia, ib] = rng.distinct_pair(nl.num_movable());
    moved.clear();
    changes.clear();
    p.swap_cells(nl.movable_cells()[ia], nl.movable_cells()[ib], &moved);
    marker.begin();
    for (CellId cell : moved) marker.add_nets_of(nl, cell);
    hpwl.update_nets(marker.nets(), &changes);
    for (const auto& change : changes) {
      timer.apply_net_change(change.net, change.old_hpwl, change.new_hpwl);
    }
    PathTimer fresh(paths, hpwl, model);
    ASSERT_NEAR(timer.max_delay(), fresh.max_delay(), 1e-6) << "swap " << i;
    for (std::size_t pi = 0; pi < paths->size(); ++pi) {
      ASSERT_NEAR(timer.path_delay(pi), fresh.path_delay(pi), 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PathTimerProperty,
                         ::testing::Values(TimerCase{30, 1, 60},
                                           TimerCase{56, 2, 60},
                                           TimerCase{200, 3, 40}));

TEST(Paths, EstimateNeverExceedsExactSta) {
  // The monitored paths are a subset of all paths, so the estimate is a
  // lower bound on the exact critical delay.
  GeneratorConfig config;
  config.num_gates = 180;
  config.seed = 13;
  const Netlist nl = generate_circuit(config);
  const Layout layout(nl);
  Rng rng(2);
  const Placement p = Placement::random(nl, layout, rng);
  HpwlState hpwl(p);
  const DelayModel model;
  const auto paths = extract_critical_paths(nl, 16, model);
  PathTimer timer(paths, hpwl, model);
  const StaResult sta = run_sta(nl, hpwl, model);
  EXPECT_LE(timer.max_delay(), sta.critical_delay + 1e-9);
  EXPECT_GT(timer.max_delay(), 0.0);
}

TEST(Paths, MorePathsTightenTheEstimate) {
  GeneratorConfig config;
  config.num_gates = 250;
  config.num_primary_outputs = 20;
  config.seed = 17;
  const Netlist nl = generate_circuit(config);
  const Layout layout(nl);
  Rng rng(6);
  const Placement p = Placement::random(nl, layout, rng);
  HpwlState hpwl(p);
  const DelayModel model;
  PathTimer few(extract_critical_paths(nl, 2, model), hpwl, model);
  PathTimer many(extract_critical_paths(nl, 16, model), hpwl, model);
  EXPECT_GE(many.max_delay() + 1e-12, few.max_delay());
}

TEST(Slack, CriticalPathHasZeroSlackAtDefaultTarget) {
  const Netlist nl = chain();
  const Layout layout(nl, 1);
  const Placement p(nl, layout);
  HpwlState hpwl(p);
  DelayModel model;
  model.wire_delay_per_unit = 0.1;

  const SlackResult slack = analyze_slack(nl, hpwl, model);
  const StaResult sta = run_sta(nl, hpwl, model);
  EXPECT_NEAR(slack.critical_delay, sta.critical_delay, 1e-12);
  // Default target == critical delay: the whole chain is critical.
  EXPECT_NEAR(slack.worst_slack, 0.0, 1e-9);
  for (const CellId c : sta.critical_path) {
    EXPECT_NEAR(slack.slack[c], 0.0, 1e-9) << "cell " << c;
  }
  // Criticality is normalized to [0, 1] with the critical nets at 1.
  double max_crit = 0.0;
  for (const double crit : slack.net_criticality) {
    EXPECT_GE(crit, 0.0);
    EXPECT_LE(crit, 1.0 + 1e-12);
    max_crit = std::max(max_crit, crit);
  }
  EXPECT_NEAR(max_crit, 1.0, 1e-9);
}

TEST(Slack, TighterClockTargetGoesNegative) {
  const Netlist nl = chain();
  const Layout layout(nl, 1);
  const Placement p(nl, layout);
  HpwlState hpwl(p);
  const DelayModel model;

  const SlackResult relaxed = analyze_slack(nl, hpwl, model);
  const double tight_target = relaxed.critical_delay * 0.5;
  const SlackResult tight = analyze_slack(nl, hpwl, model, tight_target);
  EXPECT_NEAR(tight.target, tight_target, 1e-12);
  EXPECT_LT(tight.worst_slack, 0.0);
  EXPECT_NEAR(tight.worst_slack, -relaxed.critical_delay * 0.5, 1e-9);
}

TEST(Slack, CriticalityWeightsFavorCriticalNets) {
  GeneratorConfig config;
  config.num_gates = 80;
  config.seed = 9;
  const Netlist nl = generate_circuit(config);
  const Layout layout(nl);
  Rng rng(4);
  const Placement p = Placement::random(nl, layout, rng);
  HpwlState hpwl(p);
  const DelayModel model;

  const SlackResult slack = analyze_slack(nl, hpwl, model);
  const auto weights = criticality_weights(slack, /*strength=*/2.0, /*gamma=*/2.0);
  ASSERT_EQ(weights.size(), slack.net_criticality.size());
  std::size_t most_critical = 0;
  for (std::size_t n = 0; n < weights.size(); ++n) {
    EXPECT_GE(weights[n], 1.0 - 1e-12);  // never below the base weight
    EXPECT_NEAR(weights[n],
                1.0 + 2.0 * slack.net_criticality[n] * slack.net_criticality[n],
                1e-9);
    if (slack.net_criticality[n] > slack.net_criticality[most_critical]) {
      most_critical = n;
    }
  }
  // The most critical net carries the largest weight.
  for (const double w : weights) {
    EXPECT_LE(w, weights[most_critical] + 1e-12);
  }
}

}  // namespace
}  // namespace pts::timing
