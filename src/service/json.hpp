// Minimal JSON document model, parser, and writer for the serving layer.
//
// The daemon and the pts_client CLI exchange SolveSpec / SolveResult as
// JSON (service/codec.hpp maps them); this file is the dependency-free
// JSON core. Two properties matter more than generality:
//
//  - Doubles round-trip exactly: dump() emits the shortest decimal that
//    parses back to the same bits (std::to_chars), so a SolveResult that
//    crosses the wire compares bit-identical to the in-process one.
//  - parse() never aborts on malformed text: it returns nullopt with a
//    position-tagged error. Input depth is capped so a hostile document
//    cannot blow the stack.
//
// Objects preserve insertion order (lookup is linear — documents here are
// small structs, not databases). Numbers are always doubles, which covers
// every field the codec moves: the largest integer field (a u64 seed) is
// accepted only up to 2^53, the range where doubles are exact.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pts::service::json {

class Value;
using Member = std::pair<std::string, Value>;

class Value {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Value() = default;                                   // null
  Value(bool b) : kind_(Kind::Bool), bool_(b) {}       // NOLINT(runtime/explicit)
  Value(double n) : kind_(Kind::Number), number_(n) {} // NOLINT(runtime/explicit)
  Value(std::string s) : kind_(Kind::String), string_(std::move(s)) {}
  Value(const char* s) : Value(std::string(s)) {}

  static Value array() { return Value(Kind::Array); }
  static Value object() { return Value(Kind::Object); }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  // Accessors assume the matching kind (callers check first; the codec
  // layer turns mismatches into error strings, never aborts).
  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<Value>& items() const { return array_; }
  const std::vector<Member>& members() const { return object_; }

  /// Array append.
  void push_back(Value v) { array_.push_back(std::move(v)); }
  /// Object append (no dedup; set() replaces).
  void set(std::string key, Value v);
  /// Object lookup; nullptr when absent (or not an object).
  const Value* find(std::string_view key) const;

 private:
  explicit Value(Kind kind) : kind_(kind) {}

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<Member> object_;
};

/// Compact serialization (no whitespace). Doubles print shortest-round-trip;
/// integral doubles in the exact range print without a fraction.
std::string dump(const Value& value);

/// Parses one JSON document (trailing garbage is an error). On failure
/// returns nullopt and, when `error` is non-null, a byte-offset-tagged
/// description. Nesting deeper than 64 levels is rejected.
std::optional<Value> parse(std::string_view text, std::string* error);

}  // namespace pts::service::json
