// The ptsd wire protocol: typed request/response messages over pvm framing.
//
// Transport stack (bottom up): a byte stream (Unix-domain or TCP socket) ·
// length-prefixed frames (pvm/frame.hpp) · one pvm::Message per frame whose
// tag selects the message type below · pack_*/unpack_* fields in fixed
// order. Job specs and results ride inside kSubmit/kDone as JSON strings
// (service/codec.hpp), so the structured payloads have one schema shared
// with the pts_client CLI while the envelope stays binary and cheap.
//
// Conversation shape:
//
//   client                          daemon
//   ------ kHello{version} ------->
//   <----- kWelcome{version, name, engines, circuits}
//   ------ kSubmit{spec_json, stream, stride, request_id} ->
//   <----- kSubmitOk{session, queued} | kSubmitErr{error}
//   <----- kProgress{session, ...}        (pushed while solving, if stream)
//   <----- kDone{session, result_json}    (exactly once per session)
//   ------ kCancel{session} ------>
//   <----- kCancelOk{session, was_active}
//   ------ kShutdown -------------->
//   <----- kShutdownOk              (then the daemon drains and closes)
//
// Decoding is hardened for untrusted bytes: every decode_* first checks
// Message::validate_layout, then gates each unpack on peek_field, and
// finally requires the payload to be fully consumed — a malformed payload
// returns false instead of aborting the daemon. Framing violations (bad
// magic, oversized/zero-length payloads) are detected one layer down and
// terminate the connection; payload-schema violations are answered with
// kError and the connection survives.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pvm/message.hpp"

namespace pts::service {

inline constexpr std::uint32_t kProtocolVersion = 1;

enum Tag : int {
  kHello = 1,
  kWelcome = 2,
  kSubmit = 3,
  kSubmitOk = 4,
  kSubmitErr = 5,
  kCancel = 6,
  kCancelOk = 7,
  kProgress = 8,
  kDone = 9,
  kShutdown = 10,
  kShutdownOk = 11,
  kError = 12,
};

const char* tag_name(int tag);

struct HelloMsg {
  std::uint32_t version = kProtocolVersion;
};

struct WelcomeMsg {
  std::uint32_t version = kProtocolVersion;
  std::string server;
  std::vector<std::string> engines;   ///< solver::engine_names(), stable order
  std::vector<std::string> circuits;  ///< servable benchmark names
};

struct SubmitMsg {
  std::string spec_json;  ///< codec::encode_spec of the JobRequest
  bool stream = false;    ///< push kProgress events while solving
  /// Stream every Nth on_iteration callback (improvements always stream);
  /// 0 = improvements only.
  std::uint64_t progress_stride = 0;
  /// Client-chosen id, stable across reconnect retries of the same job —
  /// the daemon logs it so a chaos run's duplicate submissions can be
  /// correlated. Retries are idempotent by construction (same-seed solves
  /// are bit-identical and a lost connection cancels its sessions), so the
  /// daemon does not dedupe on it. 0 = unset.
  std::uint64_t request_id = 0;
};

struct SubmitOkMsg {
  std::uint64_t session = 0;
  /// True: admitted to the bounded FIFO queue, not yet running; kProgress /
  /// kDone arrive as usual once a slot frees up.
  bool queued = false;
  /// True: the daemon served this submission from its result cache (ECO
  /// mode) — no solver ran; `session` is 0 (there is nothing to cancel)
  /// and the kDone (also session 0) with the bit-identical remembered
  /// result follows immediately; no kProgress will ever arrive.
  bool cached = false;
};

struct SubmitErrMsg {
  std::string error;
};

struct CancelMsg {
  std::uint64_t session = 0;
};

struct CancelOkMsg {
  std::uint64_t session = 0;
  bool was_active = false;  ///< false: unknown id or already finished
};

struct ProgressMsg {
  std::uint64_t session = 0;
  bool improvement = false;  ///< true: new best adopted; false: stride tick
  std::uint64_t iteration = 0;
  double seconds = 0.0;
  double current_cost = 0.0;
  double best_cost = 0.0;
};

struct DoneMsg {
  std::uint64_t session = 0;
  std::string result_json;  ///< codec::encode_result of the SolveResult
};

struct ErrorMsg {
  std::string message;
};

// Encoders (infallible: the structs always fit the schema).
pvm::Message encode(const HelloMsg& msg);
pvm::Message encode(const WelcomeMsg& msg);
pvm::Message encode(const SubmitMsg& msg);
pvm::Message encode(const SubmitOkMsg& msg);
pvm::Message encode(const SubmitErrMsg& msg);
pvm::Message encode(const CancelMsg& msg);
pvm::Message encode(const CancelOkMsg& msg);
pvm::Message encode(const ProgressMsg& msg);
pvm::Message encode(const DoneMsg& msg);
pvm::Message encode(const ErrorMsg& msg);
pvm::Message encode_shutdown();
pvm::Message encode_shutdown_ok();

// Hardened decoders: false on tag mismatch, layout violations, schema
// mismatch, or trailing bytes. The message read cursor is consumed.
bool decode(pvm::Message& msg, HelloMsg& out);
bool decode(pvm::Message& msg, WelcomeMsg& out);
bool decode(pvm::Message& msg, SubmitMsg& out);
bool decode(pvm::Message& msg, SubmitOkMsg& out);
bool decode(pvm::Message& msg, SubmitErrMsg& out);
bool decode(pvm::Message& msg, CancelMsg& out);
bool decode(pvm::Message& msg, CancelOkMsg& out);
bool decode(pvm::Message& msg, ProgressMsg& out);
bool decode(pvm::Message& msg, DoneMsg& out);
bool decode(pvm::Message& msg, ErrorMsg& out);
bool decode_shutdown(pvm::Message& msg);
bool decode_shutdown_ok(pvm::Message& msg);

}  // namespace pts::service
