// Figure 9 — Effect of diversification.
//
// Paper setup: 4 TSWs, 1 CLW per TSW; one run with the Kelly-style
// diversification step at each global iteration, one without. Expected
// shape: the diversified run dominates (reaches lower best cost).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pts;
  const auto options = bench::parse_options(argc, argv);
  bench::print_header("Figure 9", "diversified vs non-diversified runs");

  Table summary({"circuit", "best (diversified)", "best (no diversification)",
                 "improvement %"});
  for (const auto& name : options.circuits) {
    const auto& circuit = experiments::circuit(name);
    double div_sum = 0.0, nodiv_sum = 0.0;
    std::vector<Series> traces;
    for (std::size_t s = 0; s < options.seeds; ++s) {
      auto config = experiments::base_config(circuit, 300 + s, options.quick);
      config.num_tsws = 4;
      config.clws_per_tsw = 1;
      bench::apply_scale(config, options);
      config.diversify.enabled = true;
      const auto with = experiments::run_sim(circuit, config);
      config.diversify.enabled = false;
      const auto without = experiments::run_sim(circuit, config);
      div_sum += with.best_cost;
      nodiv_sum += without.best_cost;
      if (s == 0) {
        Series a = with.best_vs_global;
        a.name = "diversified";
        Series b = without.best_vs_global;
        b.name = "no-diversification";
        traces = {std::move(a), std::move(b)};
      }
    }
    const auto seeds = static_cast<double>(options.seeds);
    const double div = div_sum / seeds;
    const double nodiv = nodiv_sum / seeds;
    summary.add_row({name, Table::fmt(div, 4), Table::fmt(nodiv, 4),
                     Table::fmt(100.0 * (nodiv - div) / nodiv, 2)});
    emit_table("Fig 9: best cost vs global iteration — " + name,
               series_table("global_iter", traces, 4));
  }
  emit_table("Fig 9 summary: final best cost (mean over seeds)", summary);
  return 0;
}
