// Unit tests for src/parallel worker state machines, policy math and the
// message protocol.
#include <gtest/gtest.h>

#include "netlist/generator.hpp"
#include "parallel/policy.hpp"
#include "parallel/protocol.hpp"
#include "parallel/worker_logic.hpp"

namespace pts::parallel {
namespace {

using netlist::CellId;
using netlist::GeneratorConfig;
using netlist::Netlist;
using placement::Layout;
using placement::Placement;

Netlist circuit(std::size_t gates = 40, std::uint64_t seed = 5) {
  GeneratorConfig config;
  config.num_gates = gates;
  config.seed = seed;
  return generate_circuit(config);
}

std::unique_ptr<cost::Evaluator> make_eval(const Netlist& nl, const Layout& layout,
                                           std::uint64_t seed) {
  cost::CostParams params;
  Rng rng(seed);
  Placement p = Placement::random(nl, layout, rng);
  auto paths =
      timing::extract_critical_paths(nl, params.num_paths, params.delay_model);
  const auto goals = cost::Evaluator::calibrate_goals(p, *paths, params);
  return std::make_unique<cost::Evaluator>(std::move(p), std::move(paths), params,
                                           goals);
}

// ---------------------------------------------------------------------------
// PolicyParams.

struct PolicyCase {
  CollectionPolicy policy;
  double threshold;
  std::size_t children;
  std::size_t expected;
};

class PolicyMath : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(PolicyMath, ReportsBeforeForce) {
  const auto c = GetParam();
  const PolicyParams params{c.policy, c.threshold};
  EXPECT_EQ(params.reports_before_force(c.children), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PolicyMath,
    ::testing::Values(
        PolicyCase{CollectionPolicy::WaitAll, 0.5, 4, 4},
        PolicyCase{CollectionPolicy::WaitAll, 0.5, 1, 1},
        PolicyCase{CollectionPolicy::HalfForce, 0.5, 4, 2},
        PolicyCase{CollectionPolicy::HalfForce, 0.5, 5, 3},   // ceil(2.5)
        PolicyCase{CollectionPolicy::HalfForce, 0.5, 1, 1},
        PolicyCase{CollectionPolicy::HalfForce, 0.25, 8, 2},
        PolicyCase{CollectionPolicy::HalfForce, 0.75, 8, 6},
        PolicyCase{CollectionPolicy::HalfForce, 1.0, 8, 8},
        PolicyCase{CollectionPolicy::HalfForce, 0.0, 8, 1}));  // clamped to 1

// Boundary sweep: threshold * children landing exactly on an integer must
// not gain a spurious ceil bump (the integral product is reachable both
// from exact binary fractions like 0.25 and from products whose FP
// rounding lands on the integer, like 0.1*10 and (1/3)*3); extremes and
// the single-child parent clamp to [1, children].
INSTANTIATE_TEST_SUITE_P(
    Boundary, PolicyMath,
    ::testing::Values(
        // Exactly integral products — no ceil bump.
        PolicyCase{CollectionPolicy::HalfForce, 0.5, 8, 4},
        PolicyCase{CollectionPolicy::HalfForce, 0.25, 4, 1},
        PolicyCase{CollectionPolicy::HalfForce, 0.75, 4, 3},
        PolicyCase{CollectionPolicy::HalfForce, 0.1, 10, 1},   // FP-exact 1.0
        PolicyCase{CollectionPolicy::HalfForce, 1.0 / 3.0, 3, 1},
        PolicyCase{CollectionPolicy::HalfForce, 2.0 / 3.0, 3, 2},
        PolicyCase{CollectionPolicy::HalfForce, 0.3, 10, 3},       // FP-exact 3.0
        PolicyCase{CollectionPolicy::HalfForce, 0.51, 100, 51},    // FP-exact 51.0
        // Genuinely fractional products ceil upward.
        PolicyCase{CollectionPolicy::HalfForce, 1.0 / 3.0, 4, 2},  // ceil(1.33)
        PolicyCase{CollectionPolicy::HalfForce, 0.51, 10, 6},      // ceil(5.1)
        PolicyCase{CollectionPolicy::HalfForce, 0.29, 10, 3},      // ceil(2.9)
        // Documented FP hazard: 0.07*100 rounds to 7.000000000000001, one
        // ulp above the exact-math product, so the ceil lands at 8. Pinned
        // so a future "fix" is a conscious contract change.
        PolicyCase{CollectionPolicy::HalfForce, 0.07, 100, 8},
        // Extremes with a single child and the clamp rails.
        PolicyCase{CollectionPolicy::HalfForce, 0.0, 1, 1},
        PolicyCase{CollectionPolicy::HalfForce, 1.0, 1, 1},
        PolicyCase{CollectionPolicy::HalfForce, 0.5, 2, 1},
        PolicyCase{CollectionPolicy::WaitAll, 0.0, 8, 8}));  // policy ignores it

// ---------------------------------------------------------------------------
// ClwSearch.

TEST(ClwSearchTest, StepCountBounds) {
  const Netlist nl = circuit();
  const Layout layout(nl);
  auto eval = make_eval(nl, layout, 7);
  tabu::CompoundParams params;
  params.width = 5;
  params.depth = 3;
  ClwSearch search(tabu::full_range(nl), params);
  Rng rng(3);

  for (int i = 0; i < 10; ++i) {
    search.begin(*eval, rng);
    EXPECT_EQ(search.max_steps(), 15u);
    while (!search.done()) search.step();
    // Steps are a multiple of width (levels complete atomically).
    EXPECT_EQ(search.steps_taken() % params.width, 0u);
    EXPECT_LE(search.steps_taken(), search.max_steps());
    const auto result = search.result();
    EXPECT_EQ(result.swaps.size(), search.steps_taken() / params.width);
    search.abandon();
  }
}

TEST(ClwSearchTest, AbandonRestoresEvaluator) {
  const Netlist nl = circuit();
  const Layout layout(nl);
  auto eval = make_eval(nl, layout, 7);
  tabu::CompoundParams params;
  params.width = 4;
  params.depth = 4;
  ClwSearch search(tabu::full_range(nl), params);
  Rng rng(9);
  const double before = eval->cost();
  const auto slots = eval->placement().slots();
  for (int i = 0; i < 5; ++i) {
    search.begin(*eval, rng);
    while (!search.done()) search.step();
    search.abandon();
    EXPECT_EQ(eval->placement().slots(), slots);
    EXPECT_NEAR(eval->cost(), before, 1e-7);
  }
}

TEST(ClwSearchTest, ResultCostMatchesReplay) {
  const Netlist nl = circuit(30, 3);
  const Layout layout(nl);
  auto eval = make_eval(nl, layout, 5);
  tabu::CompoundParams params;
  params.width = 6;
  params.depth = 3;
  ClwSearch search(tabu::full_range(nl), params);
  Rng rng(1);
  search.begin(*eval, rng);
  while (!search.done()) search.step();
  const auto result = search.result();
  search.abandon();
  // Replaying the reported swaps on the restored evaluator reaches the
  // reported cost.
  for (const auto& swap : result.swaps) eval->apply_swap(swap.a, swap.b);
  EXPECT_NEAR(eval->cost(), result.cost, 1e-7);
}

TEST(ClwSearchTest, PrefixAtStepNeverWorseThanStart) {
  const Netlist nl = circuit(25, 9);
  const Layout layout(nl);
  auto eval = make_eval(nl, layout, 2);
  tabu::CompoundParams params;
  params.width = 4;
  params.depth = 5;
  params.early_accept = false;  // force full-depth exploration
  ClwSearch search(tabu::full_range(nl), params);
  Rng rng(6);
  search.begin(*eval, rng);
  while (!search.done()) search.step();
  for (std::size_t s = 0; s <= search.steps_taken(); ++s) {
    const auto prefix = search.result_at_step(s);
    EXPECT_LE(prefix.cost, search.start_cost() + 1e-12);
    EXPECT_LE(prefix.swaps.size(), s / params.width);
  }
  // Prefix costs are monotone non-increasing in the cut step.
  double prev = search.result_at_step(0).cost;
  for (std::size_t s = 1; s <= search.steps_taken(); ++s) {
    const double cur = search.result_at_step(s).cost;
    EXPECT_LE(cur, prev + 1e-12);
    prev = cur;
  }
  search.abandon();
}

TEST(ClwSearchTest, EarlyAcceptStopsAtImprovement) {
  const Netlist nl = circuit(40, 11);
  const Layout layout(nl);
  auto eval = make_eval(nl, layout, 4);
  tabu::CompoundParams params;
  params.width = 8;
  params.depth = 4;
  ClwSearch search(tabu::full_range(nl), params);
  Rng rng(8);
  int early = 0;
  for (int i = 0; i < 20; ++i) {
    search.begin(*eval, rng);
    while (!search.done()) search.step();
    const auto result = search.result();
    if (result.improved_early) {
      ++early;
      EXPECT_LT(result.cost, search.start_cost());
    }
    search.abandon();
  }
  EXPECT_GT(early, 0);  // random starts leave plenty of improving swaps
}

// ---------------------------------------------------------------------------
// TswState.

TEST(TswStateTest, SelectsLowestCostCandidate) {
  const Netlist nl = circuit(30, 2);
  const Layout layout(nl);
  auto eval = make_eval(nl, layout, 3);
  tabu::TabuParams tabu_params;
  TswState state(*eval, tabu_params, {}, tabu::full_range(nl), Rng(1));
  state.begin_global_iteration();

  const CellId a = nl.movable_cells()[0];
  const CellId b = nl.movable_cells()[1];
  const CellId c = nl.movable_cells()[2];
  const CellId d = nl.movable_cells()[3];
  std::vector<tabu::CompoundMove> candidates(3);
  candidates[0].swaps = {{a, b}};
  candidates[0].cost = 0.9;
  candidates[1].swaps = {{c, d}};
  candidates[1].cost = 0.4;
  // candidates[2] stays default-constructed: empty (cut before any level).

  const int winner = state.process_candidates(candidates);
  EXPECT_EQ(winner, 1);
  EXPECT_EQ(state.last_applied().size(), 1u);
  EXPECT_TRUE(state.tabu_list().is_tabu({c, d}));
  EXPECT_FALSE(state.tabu_list().is_tabu({a, b}));
}

TEST(TswStateTest, AllEmptyCandidatesRejected) {
  const Netlist nl = circuit(20, 2);
  const Layout layout(nl);
  auto eval = make_eval(nl, layout, 3);
  TswState state(*eval, {}, {}, tabu::full_range(nl), Rng(1));
  state.begin_global_iteration();
  std::vector<tabu::CompoundMove> candidates(2);
  EXPECT_EQ(state.process_candidates(candidates), -1);
  EXPECT_TRUE(state.last_applied().empty());
}

TEST(TswStateTest, TabuCandidateRejectedWithoutAspiration) {
  const Netlist nl = circuit(20, 4);
  const Layout layout(nl);
  auto eval = make_eval(nl, layout, 5);
  tabu::TabuParams params;
  params.aspiration = false;
  TswState state(*eval, params, {}, tabu::full_range(nl), Rng(1));
  state.begin_global_iteration();

  const CellId a = nl.movable_cells()[0];
  const CellId b = nl.movable_cells()[1];
  std::vector<tabu::CompoundMove> candidates(1);
  candidates[0].swaps = {{a, b}};
  candidates[0].cost = eval->cost() - 0.01;
  EXPECT_EQ(state.process_candidates(candidates), 0);

  // The same move resubmitted is now tabu and must be rejected.
  candidates[0].cost = eval->cost() - 1.0;  // even a huge gain
  EXPECT_EQ(state.process_candidates(candidates), -1);
  EXPECT_EQ(state.stats().rejected_tabu, 1u);
}

TEST(TswStateTest, AspirationOverridesTabu) {
  const Netlist nl = circuit(20, 4);
  const Layout layout(nl);
  auto eval = make_eval(nl, layout, 5);
  tabu::TabuParams params;
  params.aspiration = true;
  TswState state(*eval, params, {}, tabu::full_range(nl), Rng(1));
  state.begin_global_iteration();

  const CellId a = nl.movable_cells()[0];
  const CellId b = nl.movable_cells()[1];
  std::vector<tabu::CompoundMove> candidates(1);
  candidates[0].swaps = {{a, b}};
  candidates[0].cost = eval->cost() - 0.01;
  EXPECT_EQ(state.process_candidates(candidates), 0);

  // Tabu but better than the iteration best: aspiration accepts (the swap
  // is an involution, so re-applying it genuinely improves nothing — but
  // the reported candidate cost drives the aspiration test).
  candidates[0].cost = state.iteration_best_cost() - 1.0;
  EXPECT_EQ(state.process_candidates(candidates), 0);
  EXPECT_EQ(state.stats().aspirated, 1u);
}

TEST(TswStateTest, SnapshotsRecordImprovements) {
  const Netlist nl = circuit(40, 6);
  const Layout layout(nl);
  auto eval = make_eval(nl, layout, 7);
  TswState state(*eval, {}, {}, tabu::full_range(nl), Rng(2));
  state.begin_global_iteration();

  // Manufacture an improving candidate by probing with a real search.
  tabu::CompoundParams cp;
  cp.width = 8;
  cp.depth = 3;
  ClwSearch probe(tabu::full_range(nl), cp);
  Rng rng(3);
  double now = 1.0;
  for (int iter = 0; iter < 10; ++iter) {
    probe.begin(*eval, rng);
    while (!probe.done()) probe.step();
    const auto candidate = probe.result();
    probe.abandon();
    state.process_candidates({candidate});
    state.end_local_iteration(now);
    now += 1.0;
  }
  ASSERT_FALSE(state.snapshots().empty());
  // Snapshot times strictly increase; costs strictly decrease.
  for (std::size_t i = 1; i < state.snapshots().size(); ++i) {
    EXPECT_GT(state.snapshots()[i].time, state.snapshots()[i - 1].time);
    EXPECT_LT(state.snapshots()[i].cost, state.snapshots()[i - 1].cost);
  }
  // snapshot_at honours the cutoff.
  const auto* first = state.snapshot_at(state.snapshots().front().time);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->cost, state.snapshots().front().cost);
  EXPECT_EQ(state.snapshot_at(state.snapshots().front().time - 0.5), nullptr);
  const auto* last = state.snapshot_at(1e18);
  EXPECT_EQ(last->cost, state.snapshots().back().cost);
}

TEST(TswStateTest, AdoptReplacesSolutionAndTabu) {
  const Netlist nl = circuit(25, 8);
  const Layout layout(nl);
  auto eval = make_eval(nl, layout, 9);
  TswState state(*eval, {}, {}, tabu::full_range(nl), Rng(4));

  Rng rng(11);
  const Placement other = Placement::random(nl, layout, rng);
  const std::vector<tabu::Move> tabu_entries{{1, 2}, {3, 4}};
  state.adopt(other.slots(), tabu_entries);
  EXPECT_EQ(eval->placement().slots(), other.slots());
  EXPECT_TRUE(state.tabu_list().is_tabu({1, 2}));
  state.begin_global_iteration();
  EXPECT_NEAR(state.iteration_best_cost(), eval->cost(), 1e-12);
}

// ---------------------------------------------------------------------------
// Protocol round-trips.

TEST(Protocol, ClwReportRoundTrip) {
  ClwReport r;
  r.local_seq = 17;
  r.swaps = {{1, 2}, {3, 4}};
  r.cost = 0.625;
  r.was_forced = true;
  r.improved_early = false;
  r.work_units = 12.0;
  pvm::Message msg = r.encode();
  const ClwReport d = ClwReport::decode(msg);
  EXPECT_EQ(d.local_seq, 17u);
  EXPECT_EQ(d.swaps.size(), 2u);
  EXPECT_TRUE(d.swaps[1] == (tabu::Move{3, 4}));
  EXPECT_DOUBLE_EQ(d.cost, 0.625);
  EXPECT_TRUE(d.was_forced);
  EXPECT_FALSE(d.improved_early);
  EXPECT_DOUBLE_EQ(d.work_units, 12.0);
}

TEST(Protocol, TswReportRoundTrip) {
  TswReport r;
  r.global_seq = 3;
  r.best_cost = 0.5;
  r.best_slots = {2, 0, 1};
  r.tabu_entries = {{5, 6}};
  r.was_forced = true;
  r.local_iterations_done = 9;
  r.stat_iterations = 100;
  r.stat_accepted = 80;
  r.stat_rejected_tabu = 15;
  r.stat_aspirated = 5;
  r.stat_early_accepts = 33;
  pvm::Message msg = r.encode();
  const TswReport d = TswReport::decode(msg);
  EXPECT_EQ(d.global_seq, 3u);
  EXPECT_DOUBLE_EQ(d.best_cost, 0.5);
  EXPECT_EQ(d.best_slots, (std::vector<CellId>{2, 0, 1}));
  EXPECT_EQ(d.tabu_entries.size(), 1u);
  EXPECT_TRUE(d.was_forced);
  EXPECT_EQ(d.local_iterations_done, 9u);
  EXPECT_EQ(d.stat_accepted, 80u);
  EXPECT_EQ(d.stat_early_accepts, 33u);
}

TEST(Protocol, BroadcastRoundTrip) {
  Broadcast b;
  b.global_seq = 2;
  b.best_cost = 0.25;
  b.best_slots = {1, 0};
  b.tabu_entries = {{7, 8}, {9, 10}};
  pvm::Message msg = b.encode();
  const Broadcast d = Broadcast::decode(msg);
  EXPECT_EQ(d.global_seq, 2u);
  EXPECT_DOUBLE_EQ(d.best_cost, 0.25);
  EXPECT_EQ(d.best_slots, (std::vector<CellId>{1, 0}));
  EXPECT_EQ(d.tabu_entries.size(), 2u);
}

TEST(Protocol, SearchRequestRoundTrip) {
  SearchRequest r;
  r.local_seq = 41;
  r.sync_swaps = {{2, 3}};
  pvm::Message msg = r.encode();
  SearchRequest d = SearchRequest::decode(msg);
  EXPECT_EQ(d.local_seq, 41u);
  EXPECT_EQ(d.sync_swaps.size(), 1u);
  EXPECT_TRUE(d.reset_slots.empty());

  SearchRequest reset;
  reset.local_seq = 42;
  reset.reset_slots = {0, 1, 2};
  pvm::Message msg2 = reset.encode();
  const SearchRequest d2 = SearchRequest::decode(msg2);
  EXPECT_EQ(d2.reset_slots.size(), 3u);
}

TEST(Protocol, InitForceTerminateHelpers) {
  pvm::Message init = make_init({3, 1, 2});
  EXPECT_EQ(init.tag(), kTagInit);
  EXPECT_EQ(decode_init(init), (std::vector<CellId>{3, 1, 2}));

  pvm::Message force = make_force(99);
  EXPECT_EQ(force.tag(), kTagForceReport);
  EXPECT_EQ(decode_force(force), 99u);

  EXPECT_EQ(make_terminate().tag(), kTagTerminate);
}

}  // namespace
}  // namespace pts::parallel
