#include "parallel/sim_engine.hpp"

#include <algorithm>
#include <limits>

namespace pts::parallel {

using netlist::CellId;
using tabu::CompoundMove;

SimEngine::SimEngine(const netlist::Netlist& netlist, const PtsConfig& config)
    : setup_(netlist, config) {
  const auto& cfg = setup_.config;
  Rng root(cfg.seed ^ 0x9e3779b97f4a7c15ULL);

  // Task -> machine binding mirrors the threaded engine's spawn order:
  // task 0 = master, tasks 1..T = TSWs, then each TSW's CLWs in TSW order.
  // Contention: tasks sharing a machine time-share it in proportion to how
  // busy they are — CLWs compute continuously (activity weight 1.0), TSWs
  // mostly wait on their CLWs (cfg.sim.tsw_activity), the master is
  // negligible. A task on a machine whose total activity weight is W > 1
  // runs at speed / W.
  const std::size_t first_clw_task = 1 + cfg.num_tsws;
  const std::size_t num_tasks =
      1 + cfg.num_tsws + cfg.num_tsws * cfg.clws_per_tsw;
  std::vector<double> activity_on_machine(cfg.cluster.size(), 0.0);
  for (std::size_t task = 1; task < num_tasks; ++task) {
    activity_on_machine[task % cfg.cluster.size()] +=
        task < first_clw_task ? cfg.sim.tsw_activity : 1.0;
  }
  const auto machine_of = [&](std::size_t task_index) {
    pvm::MachineProfile profile = cfg.cluster.machine_for_task(task_index);
    if (cfg.sim.model_contention && task_index >= 1) {
      const double weight = activity_on_machine[task_index % cfg.cluster.size()];
      if (weight > 1.0) profile.speed /= weight;
    }
    return profile;
  };

  const auto tsw_ranges =
      tabu::partition_cells(netlist.num_movable(), cfg.num_tsws);
  const auto clw_ranges =
      tabu::partition_cells(netlist.num_movable(), cfg.clws_per_tsw);

  // Algorithm streams: with shared_tsw_streams every TSW (and its j-th
  // CLW) derives from the same salt, so TSWs duplicate each other's search
  // exactly unless diversification differentiates them (MPSS reading).
  // Timing jitter streams stay per-task — they model machine load, not
  // algorithm randomness. Forks are salted deterministically (not drawn
  // sequentially from `root`) so the same (i, j) worker gets the same
  // stream regardless of how many workers exist.
  auto derive_stream = [&](std::uint64_t salt) {
    SplitMix64 sm((cfg.seed ^ 0xa5a5'5a5a'1234'9876ULL) +
                  salt * 0x9e3779b97f4a7c15ULL);
    return Rng(sm.next());
  };
  auto tsw_salt = [&](std::size_t i) -> std::uint64_t {
    return cfg.shared_tsw_streams ? 0 : i;
  };

  tsws_.resize(cfg.num_tsws);
  for (std::size_t i = 0; i < cfg.num_tsws; ++i) {
    SimTsw& tsw = tsws_[i];
    tsw.eval = setup_.make_evaluator(setup_.initial_slots);
    tsw.state = std::make_unique<TswState>(
        *tsw.eval, cfg.tabu, cfg.diversify, tsw_ranges[i],
        derive_stream(1000 + tsw_salt(i)));
    tsw.machine = machine_of(1 + i);
    tsw.base_speed = tsw.machine.speed;
    tsw.time_rng = root.fork(2000 + i);
    tsw.clws.reserve(cfg.clws_per_tsw);
    for (std::size_t j = 0; j < cfg.clws_per_tsw; ++j) {
      tsw.clws.emplace_back(clw_ranges[j], cfg.tabu.compound);
      ClwSlot& clw = tsw.clws.back();
      clw.algo_rng = derive_stream(3000 + tsw_salt(i) * 64 + j);
      clw.time_rng = root.fork(4000 + i * 64 + j);
      clw.machine = machine_of(1 + cfg.num_tsws + i * cfg.clws_per_tsw + j);
      clw.base_speed = clw.machine.speed;
    }
  }
}

void SimEngine::run_local_iteration(SimTsw& tsw) {
  const auto& cfg = setup_.config;
  const SimCosts& costs = cfg.sim;
  const double start = tsw.clock + costs.message_latency;  // search request hop

  // Run every CLW to completion on the TSW's evaluator (sequentially; each
  // restores the evaluator afterwards), recording per-step end offsets.
  for (ClwSlot& clw : tsw.clws) {
    clw.search.begin(*tsw.eval, clw.algo_rng);
    clw.step_end.clear();
    double t = 0.0;
    while (!clw.search.done()) {
      clw.search.step();
      // Each trial is still charged the same `trial_work` virtual units it
      // always was, even though step() now probes instead of mutate-and-
      // undo (roughly half the real work). The paper's Figs. 5-11 are
      // shaped by work/speed ratios in *virtual* time, so the probe
      // refactor speeds up wall-clock without moving any reported curve.
      t += clw.machine.time_for(costs.trial_work, clw.time_rng);
      clw.step_end.push_back(t);
    }
    clw.search.abandon();
  }

  // Finish instants and the collection policy.
  std::vector<double> finish(tsw.clws.size());
  for (std::size_t j = 0; j < tsw.clws.size(); ++j) {
    finish[j] = start + tsw.clws[j].step_end.back();
  }
  std::vector<double> sorted = finish;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t k = cfg.tsw_policy.reports_before_force(tsw.clws.size());
  const double kth_finish = sorted[k - 1];

  double iteration_end;
  std::vector<CompoundMove> candidates(tsw.clws.size());
  if (k == tsw.clws.size()) {
    // WaitAll (or a single CLW): every report is complete.
    for (std::size_t j = 0; j < tsw.clws.size(); ++j) {
      candidates[j] = tsw.clws[j].search.result();
    }
    iteration_end = sorted.back() + costs.message_latency;
  } else {
    // HalfForce: the force message reaches stragglers one latency after the
    // k-th report arrives at the TSW.
    const double cutoff = kth_finish + 2.0 * costs.message_latency;
    for (std::size_t j = 0; j < tsw.clws.size(); ++j) {
      ClwSlot& clw = tsw.clws[j];
      if (finish[j] <= cutoff) {
        candidates[j] = clw.search.result();
      } else {
        // Trials completed strictly before the cutoff instant.
        const auto done_steps = static_cast<std::size_t>(
            std::upper_bound(clw.step_end.begin(), clw.step_end.end(),
                             cutoff - start) -
            clw.step_end.begin());
        candidates[j] = clw.search.result_at_step(done_steps);
      }
    }
    iteration_end = cutoff + costs.message_latency;  // forced reports return
  }

  // TSW selection + tabu test.
  tsw.clock = iteration_end +
              tsw.machine.time_for(
                  costs.tsw_select_work * static_cast<double>(tsw.clws.size()),
                  tsw.time_rng);
  tsw.state->process_candidates(candidates);
  tsw.state->end_local_iteration(tsw.clock);
}

PtsResult SimEngine::run() { return run(RunControl{}); }

PtsResult SimEngine::run(const RunControl& control) {
  const auto& cfg = setup_.config;
  const SimCosts& costs = cfg.sim;
  const pvm::MachineProfile& master_machine = cfg.cluster.machine_for_task(0);
  Rng master_time_rng(cfg.seed ^ 0x5851f42d4c957f2dULL);

  PtsResult result;
  result.initial_cost = setup_.initial_cost;
  result.best_vs_time.name = "best_cost";
  result.best_vs_global.name = "best_cost";

  double global_best_cost = setup_.initial_cost;
  std::vector<CellId> global_best_slots = setup_.initial_slots;
  std::vector<tabu::Move> global_best_tabu;
  result.best_vs_time.add(0.0, global_best_cost);

  // Stop checks run at global-iteration granularity against the virtual
  // clock, so time limits are deterministic. Quality is only materialized
  // (one evaluator build) when a quality target is actually set.
  const auto stop_check = [&](std::size_t iterations_done,
                              double now) -> std::optional<StopReason> {
    if (!control.stop.engaged()) return std::nullopt;
    double best_quality = 0.0;
    if (control.stop.target_quality.has_value()) {
      best_quality = setup_.make_evaluator(global_best_slots)->quality();
    }
    return control.should_stop(iterations_done, now, global_best_cost,
                               best_quality);
  };
  if (const auto reason = stop_check(0, 0.0)) result.stop_reason = *reason;

  // Scripted fault handling is gated on `faults_on` throughout: a run with
  // an empty script executes exactly the historical statement sequence, so
  // fault-free trajectories stay bit-identical to the goldens.
  const fault::WorkerFaultScript& faults = cfg.faults;
  const bool faults_on = faults.enabled();

  double broadcast_time = costs.message_latency;  // Init hop to the TSWs
  for (std::size_t g = 0; result.stop_reason == StopReason::Completed &&
                          g < cfg.global_iterations;
       ++g) {
    if (faults_on) {
      // Fire scripted faults and apply stall scaling for this iteration.
      for (const auto& f : faults.faults) {
        if (f.at_iteration != g || f.worker >= tsws_.size()) continue;
        SimTsw& victim = tsws_[f.worker];
        if (victim.dead_task) continue;
        if (f.kind == fault::WorkerFault::Kind::Death) {
          victim.dead_task = true;
        } else {
          victim.stall_left = f.stall_iterations;
          victim.stall_factor = f.stall_factor < 1.0 ? 1.0 : f.stall_factor;
        }
      }
      for (SimTsw& tsw : tsws_) {
        const double scale = tsw.stall_left > 0 ? tsw.stall_factor : 1.0;
        tsw.machine.speed = tsw.base_speed / scale;
        for (ClwSlot& clw : tsw.clws) clw.machine.speed = clw.base_speed / scale;
      }
    }

    // -- TSW phase (independent virtual timelines) ------------------------
    for (SimTsw& tsw : tsws_) {
      if (faults_on && (tsw.lost || tsw.dead_task)) continue;
      tsw.clock = broadcast_time;
      if (g > 0) tsw.state->adopt(global_best_slots, global_best_tabu);
      tsw.state->begin_global_iteration();
      const std::size_t div_swaps = tsw.state->apply_diversification();
      tsw.clock += tsw.machine.time_for(
          costs.diversify_work_per_swap * static_cast<double>(div_swaps),
          tsw.time_rng);
      for (std::size_t l = 0; l < cfg.local_iterations; ++l) {
        run_local_iteration(tsw);
      }
      if (tsw.stall_left > 0) --tsw.stall_left;
    }

    // -- master collection ------------------------------------------------
    double collect_end;
    if (!faults_on) {
      std::vector<double> finish(tsws_.size());
      for (std::size_t i = 0; i < tsws_.size(); ++i) {
        finish[i] = tsws_[i].clock + costs.message_latency;  // report hop
      }
      std::vector<double> sorted = finish;
      std::sort(sorted.begin(), sorted.end());
      const std::size_t k = cfg.master_policy.reports_before_force(tsws_.size());
      const double kth_arrival = sorted[k - 1];

      for (std::size_t i = 0; i < tsws_.size(); ++i) {
        SimTsw& tsw = tsws_[i];
        tsw.was_cut = false;
        if (k == tsws_.size() || finish[i] <= kth_arrival) {
          tsw.report_time = finish[i];
          tsw.report_cost = tsw.state->iteration_best_cost();
          tsw.report_slots = tsw.state->iteration_best_slots();
        } else {
          // Straggler: forced at (kth arrival + force hop); it reports the
          // best snapshot it had at that instant.
          const double cutoff = kth_arrival + costs.message_latency;
          tsw.was_cut = true;
          tsw.report_time = cutoff + costs.message_latency;
          if (const auto* snapshot = tsw.state->snapshot_at(cutoff)) {
            tsw.report_cost = snapshot->cost;
            tsw.report_slots = snapshot->slots;
          } else {
            tsw.report_cost = std::numeric_limits<double>::infinity();
            tsw.report_slots.clear();
          }
        }
      }
      collect_end = 0.0;
      for (const SimTsw& tsw : tsws_) {
        collect_end = std::max(collect_end, tsw.report_time);
      }
      collect_end += master_machine.time_for(
          costs.master_select_work * static_cast<double>(tsws_.size()),
          master_time_rng);
    } else {
      // Fault-aware collection: only TSWs the master still believes in are
      // expected to report; a report that would arrive past the deadline
      // (earliest arrival + report_deadline) marks its TSW dead for good.
      const double inf = std::numeric_limits<double>::infinity();
      std::vector<std::size_t> live;
      for (std::size_t i = 0; i < tsws_.size(); ++i) {
        if (!tsws_[i].lost) live.push_back(i);
      }
      std::vector<double> finish(tsws_.size(), inf);
      double min_finish = inf;
      for (const std::size_t i : live) {
        if (tsws_[i].dead_task) continue;
        finish[i] = tsws_[i].clock + costs.message_latency;  // report hop
        min_finish = std::min(min_finish, finish[i]);
      }
      const double deadline_base = min_finish == inf ? broadcast_time : min_finish;
      const double deadline_instant =
          deadline_base + std::max(faults.report_deadline, 0.0);
      bool lost_this_round = false;
      {
        std::vector<std::size_t> survivors;
        for (const std::size_t i : live) {
          if (finish[i] > deadline_instant) {
            tsws_[i].lost = true;
            tsws_[i].dead_task = true;  // stop simulating an abandoned task
            ++result.workers_lost;
            lost_this_round = true;
          } else {
            survivors.push_back(i);
          }
        }
        live.swap(survivors);
      }
      if (live.empty()) {
        // Every worker is gone; the search ends with the best known so far.
        result.best_vs_global.add(static_cast<double>(g), global_best_cost);
        result.makespan = deadline_instant;
        break;
      }
      if (lost_this_round) {
        // Redistribute the movable cells among the survivors so the whole
        // space stays covered by diversification.
        const auto ranges = tabu::partition_cells(
            setup_.netlist->num_movable(), live.size());
        for (std::size_t idx = 0; idx < live.size(); ++idx) {
          tsws_[live[idx]].state->set_diversify_range(ranges[idx]);
        }
      }

      std::vector<double> sorted;
      sorted.reserve(live.size());
      for (const std::size_t i : live) sorted.push_back(finish[i]);
      std::sort(sorted.begin(), sorted.end());
      const std::size_t k = cfg.master_policy.reports_before_force(live.size());
      const double kth_arrival = sorted[k - 1];

      for (const std::size_t i : live) {
        SimTsw& tsw = tsws_[i];
        tsw.was_cut = false;
        if (k == live.size() || finish[i] <= kth_arrival) {
          tsw.report_time = finish[i];
          tsw.report_cost = tsw.state->iteration_best_cost();
          tsw.report_slots = tsw.state->iteration_best_slots();
        } else {
          const double cutoff = kth_arrival + costs.message_latency;
          tsw.was_cut = true;
          tsw.report_time = cutoff + costs.message_latency;
          if (const auto* snapshot = tsw.state->snapshot_at(cutoff)) {
            tsw.report_cost = snapshot->cost;
            tsw.report_slots = snapshot->slots;
          } else {
            tsw.report_cost = inf;
            tsw.report_slots.clear();
          }
        }
      }
      collect_end = 0.0;
      for (const std::size_t i : live) {
        collect_end = std::max(collect_end, tsws_[i].report_time);
      }
      // Declaring a death costs real waiting: the master sat out the full
      // deadline before giving up on the missing report.
      if (lost_this_round) collect_end = std::max(collect_end, deadline_instant);
      collect_end += master_machine.time_for(
          costs.master_select_work * static_cast<double>(live.size()),
          master_time_rng);
    }

    // -- selection + trajectory -------------------------------------------
    int winner = -1;
    for (std::size_t i = 0; i < tsws_.size(); ++i) {
      if (tsws_[i].lost) continue;
      if (tsws_[i].report_cost < global_best_cost) {
        if (winner < 0 ||
            tsws_[i].report_cost <
                tsws_[static_cast<std::size_t>(winner)].report_cost) {
          winner = static_cast<int>(i);
        }
      }
    }
    // Improvement events: every TSW snapshot that precedes its report time
    // entered the system at its snapshot instant.
    std::vector<std::pair<double, double>> events;
    for (const SimTsw& tsw : tsws_) {
      if (tsw.lost) continue;  // its reports never reached the master
      const double limit =
          tsw.was_cut ? tsw.report_time : std::numeric_limits<double>::infinity();
      for (const auto& snapshot : tsw.state->snapshots()) {
        if (snapshot.time <= limit) events.emplace_back(snapshot.time, snapshot.cost);
      }
    }
    std::sort(events.begin(), events.end());
    for (const auto& [time, cost] : events) {
      if (cost < result.best_vs_time.y.back()) {
        result.best_vs_time.add(time, cost);
        control.notify_improvement({g + 1, time, cost, cost});
      }
    }

    if (winner >= 0) {
      SimTsw& win = tsws_[static_cast<std::size_t>(winner)];
      global_best_cost = win.report_cost;
      global_best_slots = win.report_slots;
      global_best_tabu = win.state->tabu_list().entries();
    }
    result.best_vs_global.add(static_cast<double>(g), global_best_cost);
    broadcast_time = collect_end + costs.message_latency;
    result.makespan = collect_end;
    control.notify_iteration(
        {g + 1, collect_end, global_best_cost, global_best_cost});
    // No check after the final iteration: a run that did all its own work
    // reports Completed, matching the sequential engines' check-before
    // semantics (an external budget equal to the engine's own is a no-op).
    if (g + 1 < cfg.global_iterations) {
      if (const auto reason = stop_check(g + 1, collect_end)) {
        result.stop_reason = *reason;
      }
    }
  }

  // -- final result -------------------------------------------------------
  result.best_cost = global_best_cost;
  result.best_slots = global_best_slots;
  auto final_eval = setup_.make_evaluator(global_best_slots);
  result.best_objectives = final_eval->objectives();
  result.best_quality = final_eval->quality();
  for (const SimTsw& tsw : tsws_) result.stats.merge(tsw.state->stats());
  return result;
}

}  // namespace pts::parallel
