// Synchronous client for the ptsd daemon, shared by the pts_client CLI, the
// ptsd_load generator, and the service tests.
//
// One Client owns one connection and is single-threaded: requests block
// until their reply arrives. Because the daemon pushes kProgress / kDone
// events for every session on the connection, replies can interleave with
// stream traffic — events that are not the awaited reply are buffered and
// replayed in order by the wait()/next_event() readers, so multiple
// in-flight sessions per connection just work.
//
//   Client client;
//   client.connect_unix("/tmp/ptsd.sock", &err);
//   auto welcome = client.hello(&err);                 // capability handshake
//   auto id = client.submit(job, /*stream=*/true, 0, &err);
//   auto result = client.wait(*id, on_progress, &err); // SolveResult
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>

#include "pvm/frame.hpp"
#include "service/codec.hpp"
#include "service/proto.hpp"
#include "solver/solver.hpp"

namespace pts::service {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Arms connect/read timeouts for subsequent connect_* calls and reads
  /// (<= 0 disables the respective timeout; both default off). A read that
  /// outwaits `io_seconds` fails with a "read timeout" error — the caller
  /// should treat the connection as dead and reconnect.
  void set_timeouts(double connect_seconds, double io_seconds);

  bool connect_unix(const std::string& path, std::string* error);
  bool connect_tcp(const std::string& host, std::uint16_t port, std::string* error);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Capability handshake; must be the first request on a connection.
  std::optional<WelcomeMsg> hello(std::string* error);

  /// Submits a job; returns the session id. `stream` / `progress_stride`
  /// control kProgress pushes (see SubmitMsg). `queued` (optional out)
  /// reports whether the job was queued rather than started; `request_id`
  /// is forwarded for server-side retry correlation (0 = unset); `cached`
  /// (optional out) reports a daemon result-cache hit — the returned
  /// session id is then 0 and wait(0, ...) collects the kDone.
  std::optional<std::uint64_t> submit(const JobRequest& job, bool stream,
                                      std::uint64_t progress_stride,
                                      std::string* error,
                                      bool* queued = nullptr,
                                      std::uint64_t request_id = 0,
                                      bool* cached = nullptr);

  /// Requests cancellation; `was_active` (optional out) reports whether the
  /// session was still running.
  bool cancel(std::uint64_t session, bool* was_active, std::string* error);

  /// Blocks until the session's kDone arrives, invoking `on_progress` (may
  /// be null) for its kProgress events. Events of other sessions stay
  /// buffered for their own wait() calls.
  std::optional<solver::SolveResult> wait(
      std::uint64_t session,
      const std::function<void(const ProgressMsg&)>& on_progress,
      std::string* error);

  /// Asks the daemon to drain and exit (acknowledged before the drain).
  bool shutdown_server(std::string* error);

 private:
  bool send_message(const pvm::Message& msg, std::string* error);
  /// Next frame from the wire (or the buffer); nullopt on EOF/error.
  std::optional<pvm::Message> read_message(std::string* error);
  bool finish_connect(int fd, std::string* error, const std::string& where);

  int fd_ = -1;
  double connect_timeout_ = 0.0;
  double io_timeout_ = 0.0;
  pvm::FrameDecoder decoder_;
  std::deque<pvm::Message> pending_;  ///< events read while awaiting a reply
};

/// Retry policy for RetryingClient: capped exponential backoff between
/// reconnect attempts, plus the timeouts armed on the underlying Client.
struct RetryPolicy {
  std::size_t max_attempts = 5;
  double initial_backoff_seconds = 0.05;
  double max_backoff_seconds = 1.0;
  double connect_timeout_seconds = 5.0;
  double io_timeout_seconds = 30.0;
};

/// Fault-tolerant one-job-at-a-time client: solve() connects (or reuses the
/// live connection), submits, and waits; on any transport failure — connect
/// refused, reset mid-stream, read timeout, torn connection — it closes,
/// backs off (capped exponential), reconnects, and re-submits the SAME job
/// under the same request id. The retry is idempotent by construction:
/// same-seed solves are bit-identical, and the daemon cancels a lost
/// connection's sessions, so a duplicate submission can at worst waste work,
/// never return a different result. Server-side rejections are retried only
/// when transient (queue full); schema/spec errors fail immediately.
class RetryingClient {
 public:
  /// Target: unix socket path, or host:port when `tcp`.
  RetryingClient(std::string unix_path, RetryPolicy policy);
  RetryingClient(std::string host, std::uint16_t port, RetryPolicy policy);

  /// Per-error-class accounting across all solve() calls.
  struct Counters {
    std::uint64_t attempts = 0;         ///< submit attempts (first + retries)
    std::uint64_t retries = 0;          ///< attempts after the first, per job
    std::uint64_t connect_failures = 0; ///< connect/hello failed (refused, ...)
    std::uint64_t resets_mid_stream = 0;///< connection died after submit
    std::uint64_t timeouts = 0;         ///< read timeouts
    std::uint64_t queue_full = 0;       ///< transient server rejections
    std::uint64_t server_errors = 0;    ///< permanent kError/kSubmitErr
  };

  /// Runs one job to completion with retries. Returns the SolveResult, or
  /// nullopt with `error` after the policy's attempts are exhausted (or on
  /// a permanent server-side rejection).
  std::optional<solver::SolveResult> solve(
      const JobRequest& job, bool stream, std::uint64_t progress_stride,
      const std::function<void(const ProgressMsg&)>& on_progress,
      std::string* error);

  const Counters& counters() const { return counters_; }
  Client& raw_client() { return client_; }

 private:
  bool ensure_connected(std::string* error);

  std::string unix_path_;
  std::string host_;
  std::uint16_t port_ = 0;
  bool tcp_ = false;
  RetryPolicy policy_;
  Client client_;
  bool hello_done_ = false;
  std::uint64_t next_request_id_ = 1;
  Counters counters_;
};

}  // namespace pts::service
