// Figure 10 — Local versus global iterations.
//
// Paper setup: total work held constant while global iterations G decrease
// (less diversification) and local iterations L increase (more local
// investigation). Expected shape: no universal winner — the best (G, L)
// mix depends on the problem instance.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pts;
  const auto options = bench::parse_options(argc, argv);
  bench::print_header("Figure 10", "local vs global iteration tradeoff");

  // (G, L) pairs at constant *total work* per TSW: each global iteration
  // costs one diversification step (depth * width trials) plus L local
  // iterations (width * depth trials each through its CLW). More
  // diversification (higher G) therefore means fewer local iterations.
  const std::size_t budget_trials =
      (options.smoke ? 8u : options.quick ? 24u : 48u) * 24u;
  std::vector<std::pair<std::size_t, std::size_t>> mixes;
  {
    parallel::PtsConfig probe;  // defaults for the work constants
    const std::size_t per_local =
        probe.tabu.compound.width * probe.tabu.compound.depth;
    const std::size_t per_diversify =
        probe.diversify.depth * probe.diversify.width;
    for (std::size_t g : {2u, 4u, 6u, 8u, 12u}) {
      const std::size_t per_global = budget_trials / g;
      if (per_global <= per_diversify) continue;
      const std::size_t l =
          std::max<std::size_t>(1, (per_global - per_diversify) / per_local);
      mixes.emplace_back(g, l);
    }
  }

  std::vector<Series> cost_series;
  for (const auto& name : options.circuits) {
    const auto& circuit = experiments::circuit(name);
    Series cost;
    cost.name = name;
    for (const auto& [g, l] : mixes) {
      double sum = 0.0;
      for (std::size_t s = 0; s < options.seeds; ++s) {
        auto config = experiments::base_config(circuit, 400 + s, options.quick);
        config.num_tsws = 4;
        config.clws_per_tsw = 1;
        config.global_iterations = g;
        config.local_iterations = l;
        sum += experiments::run_sim(circuit, config).best_cost;
      }
      cost.add(static_cast<double>(g), sum / static_cast<double>(options.seeds));
    }
    cost_series.push_back(std::move(cost));
  }

  std::printf("constant total work: %zu trials per TSW; mixes (G, L):", budget_trials);
  for (const auto& [g, l] : mixes) std::printf(" (%zu,%zu)", g, l);
  std::printf("\n");
  emit_table("Fig 10: best cost vs #global iterations at constant total work",
             series_table("global_iters", cost_series, 4));

  // The paper's takeaway: the argmin G differs per circuit.
  Table argmin({"circuit", "best G", "best L", "best cost"});
  for (const auto& s : cost_series) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < s.size(); ++i) {
      if (s.y[i] < s.y[best]) best = i;
    }
    const auto g = static_cast<std::size_t>(s.x[best]);
    std::size_t l = 0;
    for (const auto& [mg, ml] : mixes) {
      if (mg == g) l = ml;
    }
    argmin.add_row({s.name, std::to_string(g), std::to_string(l),
                    Table::fmt(s.y[best], 4)});
  }
  emit_table("Fig 10: instance-dependent best mix", argmin);
  return 0;
}
