// ptsd_load — concurrency load generator for the ptsd daemon.
//
// Drives N sessions across M client connections and verifies the session
// accounting afterwards: every submitted session reaches exactly one Done,
// and the daemon drains to zero active sessions. This is the binary behind
// the stress-tier soak (100 concurrent scale10k sessions) and its SIGTERM
// variant, which raises SIGTERM mid-soak and checks that the drain cancels
// the remainder without leaking a session.
//
//   ptsd_load --self-host --sessions 100 --connections 8 --circuit scale10k
//             --iterations 2 --sigterm-drain --min-completed 1
#include <csignal>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "experiments/workloads.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "solver/solver.hpp"
#include "support/cli.hpp"
#include "support/fault.hpp"
#include "support/log.hpp"

namespace {

constexpr const char kUsage[] =
    "usage: ptsd_load [--self-host | --unix PATH | --tcp --host H --port N]\n"
    "                 [--sessions 8] [--connections 4] [--circuit highway]\n"
    "                 [--engine tabu] [--iterations 50] [--seed-base 1]\n"
    "                 [--stream] [--stride 0] [--max-sessions 256]\n"
    "                 [--max-queued 64] [--deadline 0]\n"
    "                 [--sigterm-drain] [--min-completed 0]\n"
    "                 [--chaos] [--chaos-seed 1] [--fault-rate 0.05]\n"
    "                 [--retries 8] [--io-timeout 5] [--help]\n"
    "--sigterm-drain (needs --self-host) raises SIGTERM once --min-completed\n"
    "sessions have finished and verifies the graceful drain.\n"
    "--chaos (needs --self-host) installs a seeded fault plan on the process's\n"
    "socket I/O (read/write errors, short reads/writes, connect failures) and\n"
    "switches workers to retrying clients: every solve that succeeds — first\n"
    "try or after reconnect — is checked bit-identical against a direct\n"
    "same-seed in-process solve, and the drain must still leak zero sessions.\n";

pts::service::Daemon* g_daemon = nullptr;

void handle_signal(int) {
  if (g_daemon != nullptr) g_daemon->request_stop();
}

struct WorkerStats {
  std::size_t submitted = 0;
  std::size_t completed = 0;  ///< Done with stop_reason != cancelled/deadline
  std::size_t cancelled = 0;  ///< Done with stop_reason == cancelled
  std::size_t deadline_expired = 0;  ///< Done with stop_reason == deadline-expired
  std::size_t torn_down = 0;  ///< connection closed by the drain before Done
  std::size_t verified = 0;   ///< chaos: results checked against direct solve
  // Per-error-class accounting (failures observed by this worker, plus the
  // retrying client's own attempt counters in chaos mode).
  std::uint64_t connect_refused = 0;
  std::uint64_t resets_mid_stream = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t queue_full = 0;
  std::uint64_t server_errors = 0;
  std::uint64_t retries = 0;
  std::vector<std::string> errors;

  /// Files an error string under its class counter.
  void classify(const std::string& error) {
    if (error.find("read timeout") != std::string::npos) {
      ++timeouts;
    } else if (error.find("queue full") != std::string::npos ||
               error.find("draining") != std::string::npos) {
      ++queue_full;
    } else if (error.rfind("connect(", 0) == 0) {
      ++connect_refused;
    } else if (error.rfind("send: ", 0) == 0 || error.rfind("read: ", 0) == 0 ||
               error == "server closed the connection") {
      ++resets_mid_stream;
    } else {
      ++server_errors;
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pts::service;
  const pts::Cli cli(argc, argv);
  if (cli.get_flag("help")) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  const bool self_host = cli.get_flag("self-host");
  std::string unix_path = cli.get("unix", "/tmp/ptsd.sock");
  const bool tcp = cli.get_flag("tcp");
  const std::string host = cli.get("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(cli.get_int("port", 0));
  const auto sessions = static_cast<std::size_t>(cli.get_int("sessions", 8));
  const auto connections = static_cast<std::size_t>(cli.get_int("connections", 4));
  const std::string circuit = cli.get("circuit", "highway");
  const std::string engine = cli.get("engine", "tabu");
  const auto iterations = static_cast<std::size_t>(cli.get_int("iterations", 50));
  const auto seed_base = static_cast<std::uint64_t>(cli.get_int("seed-base", 1));
  const bool stream = cli.get_flag("stream");
  const auto stride = static_cast<std::uint64_t>(cli.get_int("stride", 0));
  const auto max_sessions = static_cast<std::size_t>(
      cli.get_int("max-sessions", static_cast<std::int64_t>(sessions) + 16));
  const auto max_queued = static_cast<std::size_t>(cli.get_int("max-queued", 64));
  const double deadline = cli.get_double("deadline", 0.0);
  const bool sigterm_drain = cli.get_flag("sigterm-drain");
  const auto min_completed = static_cast<std::uint64_t>(cli.get_int(
      "min-completed", sigterm_drain ? 1 : static_cast<std::int64_t>(sessions)));
  const bool chaos = cli.get_flag("chaos");
  const auto chaos_seed = static_cast<std::uint64_t>(cli.get_int("chaos-seed", 1));
  const double fault_rate = cli.get_double("fault-rate", 0.05);
  const auto retries = static_cast<std::size_t>(cli.get_int("retries", 8));
  const double io_timeout = cli.get_double("io-timeout", 5.0);
  cli.reject_unused(kUsage);

  if (sigterm_drain && !self_host) {
    std::fprintf(stderr, "ptsd_load: --sigterm-drain requires --self-host\n");
    return 2;
  }
  if (chaos && !self_host) {
    std::fprintf(stderr, "ptsd_load: --chaos requires --self-host\n");
    return 2;
  }
  if (connections == 0 || sessions == 0) {
    std::fprintf(stderr, "ptsd_load: need at least one session and connection\n");
    return 2;
  }

  pts::set_log_level(pts::LogLevel::Warn);

  std::unique_ptr<Daemon> daemon;
  if (self_host) {
    unix_path = "/tmp/ptsd-load-" + std::to_string(::getpid()) + ".sock";
    DaemonConfig config;
    config.unix_path = unix_path;
    config.max_sessions = max_sessions;
    config.max_queued = max_queued;
    config.session_deadline_seconds = deadline;
    daemon = std::make_unique<Daemon>(config);
    std::string error;
    if (!daemon->start(&error)) {
      std::fprintf(stderr, "ptsd_load: daemon start: %s\n", error.c_str());
      return 1;
    }
    g_daemon = daemon.get();
    std::signal(SIGTERM, handle_signal);
  }

  // Chaos mode: a seeded fault plan on every socket syscall in the process
  // (client and daemon alike). Installed only around the load phase so the
  // final accounting runs clean; the drain itself still has to cope.
  pts::fault::SocketFaultConfig fault_config;
  fault_config.read_error_rate = fault_rate;
  fault_config.write_error_rate = fault_rate;
  fault_config.short_read_rate = fault_rate;
  fault_config.short_write_rate = fault_rate;
  fault_config.connect_error_rate = fault_rate * 0.5;
  std::unique_ptr<pts::fault::ScopedFaultInjection> injection;
  if (chaos) {
    injection = std::make_unique<pts::fault::ScopedFaultInjection>(chaos_seed,
                                                                   fault_config);
  }

  std::atomic<bool> draining{false};
  std::vector<WorkerStats> stats(connections);
  std::vector<std::thread> workers;
  workers.reserve(connections);
  const auto started_at = std::chrono::steady_clock::now();

  for (std::size_t w = 0; w < connections; ++w) {
    workers.emplace_back([&, w] {
      WorkerStats& mine = stats[w];
      auto fail = [&](const std::string& context, const std::string& error) {
        // Once the drain begins, connection teardown is the expected
        // outcome, not a failure.
        if (draining.load()) {
          ++mine.torn_down;
          return;
        }
        mine.classify(error);
        mine.errors.push_back(context + ": " + error);
      };

      auto make_job = [&](std::size_t s) {
        JobRequest job;
        job.circuit = circuit;
        job.spec.engine = engine;
        job.spec.seed = seed_base + s;
        job.spec.tabu.iterations = iterations;
        job.spec.local.max_iterations = iterations;
        job.spec.stop.max_iterations = iterations;
        job.deadline_seconds = deadline;
        return job;
      };

      if (chaos) {
        // One job at a time through a retrying client: reconnect + re-submit
        // (same request id) on injected transport failures, then check each
        // served result bit-identical to a direct same-seed solve.
        RetryPolicy policy;
        policy.max_attempts = retries + 1;
        policy.initial_backoff_seconds = 0.01;
        policy.max_backoff_seconds = 0.25;
        policy.connect_timeout_seconds = 5.0;
        policy.io_timeout_seconds = io_timeout;
        RetryingClient retrying(unix_path, policy);
        for (std::size_t s = w; s < sessions; s += connections) {
          const JobRequest job = make_job(s);
          ++mine.submitted;
          std::string solve_error;
          const auto result =
              retrying.solve(job, stream, stride, nullptr, &solve_error);
          if (!result) {
            fail("solve(seed " + std::to_string(job.spec.seed) + ")",
                 solve_error);
            continue;
          }
          if (result->stop_reason == pts::StopReason::Cancelled) {
            ++mine.cancelled;
            continue;
          }
          if (result->stop_reason == pts::StopReason::DeadlineExpired) {
            ++mine.deadline_expired;
            continue;
          }
          ++mine.completed;
          auto direct_spec = job.spec;
          direct_spec.netlist = &pts::experiments::circuit(job.circuit);
          const auto direct = pts::solver::Solver().solve(direct_spec);
          ++mine.verified;
          if (result->best_cost != direct.best_cost ||
              result->best_slots != direct.best_slots ||
              result->iterations != direct.iterations) {
            mine.errors.push_back(
                "seed " + std::to_string(job.spec.seed) +
                ": served result diverges from direct same-seed solve");
          }
        }
        const auto& rc = retrying.counters();
        mine.retries += rc.retries;
        mine.connect_refused += rc.connect_failures;
        mine.resets_mid_stream += rc.resets_mid_stream;
        mine.timeouts += rc.timeouts;
        mine.queue_full += rc.queue_full;
        mine.server_errors += rc.server_errors;
        return;
      }

      Client client;
      std::string error;
      const bool connected = tcp ? client.connect_tcp(host, port, &error)
                                 : client.connect_unix(unix_path, &error);
      if (!connected) {
        fail("connect", error);
        return;
      }
      if (!client.hello(&error)) {
        fail("hello", error);
        return;
      }

      // Submit this worker's share up front, then await the Dones in order —
      // that is what keeps `sessions` solves concurrently resident serverside.
      std::vector<std::uint64_t> ids;
      for (std::size_t s = w; s < sessions; s += connections) {
        const JobRequest job = make_job(s);
        const auto id = client.submit(job, stream, stride, &error);
        if (!id) {
          fail("submit", error);
          return;
        }
        ++mine.submitted;
        ids.push_back(*id);
      }
      for (const auto id : ids) {
        const auto result = client.wait(id, nullptr, &error);
        if (!result) {
          fail("wait", error);
          return;
        }
        if (result->stop_reason == pts::StopReason::Cancelled) {
          ++mine.cancelled;
        } else if (result->stop_reason == pts::StopReason::DeadlineExpired) {
          ++mine.deadline_expired;
        } else {
          ++mine.completed;
        }
      }
    });
  }

  std::thread drainer;
  if (sigterm_drain) {
    // Let min_completed sessions finish, then hit the daemon with a real
    // SIGTERM mid-soak. The handler only pokes the stop pipe; this thread
    // plays the role of ptsd's main(): wake up, drain, exit.
    while (daemon->sessions_finished() < min_completed) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    draining.store(true);
    drainer = std::thread([&] {
      daemon->wait_for_stop_request();
      daemon->stop();
    });
    ::raise(SIGTERM);
  }

  for (auto& worker : workers) worker.join();
  if (drainer.joinable()) drainer.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started_at)
          .count();

  WorkerStats total;
  for (const auto& s : stats) {
    total.submitted += s.submitted;
    total.completed += s.completed;
    total.cancelled += s.cancelled;
    total.deadline_expired += s.deadline_expired;
    total.torn_down += s.torn_down;
    total.verified += s.verified;
    total.connect_refused += s.connect_refused;
    total.resets_mid_stream += s.resets_mid_stream;
    total.timeouts += s.timeouts;
    total.queue_full += s.queue_full;
    total.server_errors += s.server_errors;
    total.retries += s.retries;
    for (const auto& e : s.errors) total.errors.push_back(e);
  }

  int status = 0;
  for (const auto& e : total.errors) {
    std::fprintf(stderr, "ptsd_load: %s\n", e.c_str());
    status = 1;
  }

  std::uint64_t server_started = 0, server_finished = 0;
  std::size_t leaked = 0;
  if (daemon) {
    daemon->stop();  // idempotent; normal path shuts down here
    g_daemon = nullptr;
    server_started = daemon->sessions_started();
    server_finished = daemon->sessions_finished();
    leaked = daemon->active_sessions();
    if (leaked != 0) {
      std::fprintf(stderr, "ptsd_load: %zu leaked sessions after drain\n", leaked);
      status = 1;
    }
    if (server_started != server_finished) {
      std::fprintf(stderr,
                   "ptsd_load: server started %llu sessions but finished %llu\n",
                   static_cast<unsigned long long>(server_started),
                   static_cast<unsigned long long>(server_finished));
      status = 1;
    }
  }
  if (!sigterm_drain && total.completed < sessions) {
    std::fprintf(stderr, "ptsd_load: only %zu of %zu sessions completed\n",
                 total.completed, sessions);
    status = 1;
  }
  // In sigterm mode the client-side counters race the drain (a worker still
  // submitting when SIGTERM lands never reaches its waits), so the
  // min-completed floor is a *server-side* guarantee: that many sessions
  // ran to completion before the signal was raised.
  if (sigterm_drain && server_finished < min_completed) {
    std::fprintf(stderr,
                 "ptsd_load: server finished %llu < min-completed %llu\n",
                 static_cast<unsigned long long>(server_finished),
                 static_cast<unsigned long long>(min_completed));
    status = 1;
  }
  if (!sigterm_drain && total.completed < min_completed) {
    std::fprintf(stderr, "ptsd_load: completed %zu < min-completed %llu\n",
                 total.completed, static_cast<unsigned long long>(min_completed));
    status = 1;
  }

  std::printf(
      "%zu sessions over %zu connections on %s/%s: %zu completed, %zu "
      "cancelled, %zu deadline-expired, %zu torn down in %.2fs (server "
      "started=%llu finished=%llu leaked=%zu)%s%s\n",
      total.submitted, connections, circuit.c_str(), engine.c_str(),
      total.completed, total.cancelled, total.deadline_expired,
      total.torn_down, elapsed,
      static_cast<unsigned long long>(server_started),
      static_cast<unsigned long long>(server_finished), leaked,
      sigterm_drain ? " [sigterm drain]" : "", chaos ? " [chaos]" : "");
  std::printf(
      "errors by class: connect-refused=%llu reset-mid-stream=%llu "
      "timeout=%llu queue-full=%llu server-error=%llu (retries=%llu)\n",
      static_cast<unsigned long long>(total.connect_refused),
      static_cast<unsigned long long>(total.resets_mid_stream),
      static_cast<unsigned long long>(total.timeouts),
      static_cast<unsigned long long>(total.queue_full),
      static_cast<unsigned long long>(total.server_errors),
      static_cast<unsigned long long>(total.retries));
  if (chaos) {
    const auto injected = injection->plan().counters();
    injection.reset();
    std::printf(
        "chaos: verified %zu results bit-identical; injected read-err=%llu "
        "write-err=%llu connect-err=%llu short-read=%llu short-write=%llu\n",
        total.verified,
        static_cast<unsigned long long>(injected.read_errors),
        static_cast<unsigned long long>(injected.write_errors),
        static_cast<unsigned long long>(injected.connect_errors),
        static_cast<unsigned long long>(injected.short_reads),
        static_cast<unsigned long long>(injected.short_writes));
  }
  return status;
}
