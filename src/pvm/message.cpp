#include "pvm/message.hpp"

namespace pts::pvm {

void Message::put_raw(const void* data, std::size_t n) {
  if (n == 0) return;  // empty vector/string: data() may be null; memcpy UB
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  buffer_.insert(buffer_.end(), bytes, bytes + n);
}

void Message::get_raw(void* data, std::size_t n) {
  PTS_CHECK_MSG(cursor_ + n <= buffer_.size(), "message underflow");
  if (n == 0) return;
  std::memcpy(data, buffer_.data() + cursor_, n);
  cursor_ += n;
}

void Message::expect_marker(Marker m) {
  PTS_CHECK_MSG(cursor_ < buffer_.size(), "message underflow");
  const auto got = static_cast<Marker>(buffer_[cursor_]);
  PTS_CHECK_MSG(got == m, "message field type mismatch (unpack order?)");
  ++cursor_;
}

void Message::pack_string(const std::string& s) {
  put_marker(Marker::Str);
  const auto n = static_cast<std::uint64_t>(s.size());
  put_raw(&n, sizeof(n));
  put_raw(s.data(), s.size());
}

std::string Message::unpack_string() {
  expect_marker(Marker::Str);
  std::uint64_t n = 0;
  get_raw(&n, sizeof(n));
  PTS_CHECK_MSG(cursor_ + n <= buffer_.size(), "message underflow");
  std::string s(reinterpret_cast<const char*>(buffer_.data() + cursor_),
                static_cast<std::size_t>(n));
  cursor_ += static_cast<std::size_t>(n);
  return s;
}

void Message::pack_u32_vector(const std::vector<std::uint32_t>& v) {
  put_marker(Marker::VecU32);
  const auto n = static_cast<std::uint64_t>(v.size());
  put_raw(&n, sizeof(n));
  put_raw(v.data(), v.size() * sizeof(std::uint32_t));
}

std::vector<std::uint32_t> Message::unpack_u32_vector() {
  expect_marker(Marker::VecU32);
  std::uint64_t n = 0;
  get_raw(&n, sizeof(n));
  std::vector<std::uint32_t> v(static_cast<std::size_t>(n));
  get_raw(v.data(), v.size() * sizeof(std::uint32_t));
  return v;
}

void Message::pack_double_vector(const std::vector<double>& v) {
  put_marker(Marker::VecF64);
  const auto n = static_cast<std::uint64_t>(v.size());
  put_raw(&n, sizeof(n));
  put_raw(v.data(), v.size() * sizeof(double));
}

std::vector<double> Message::unpack_double_vector() {
  expect_marker(Marker::VecF64);
  std::uint64_t n = 0;
  get_raw(&n, sizeof(n));
  std::vector<double> v(static_cast<std::size_t>(n));
  get_raw(v.data(), v.size() * sizeof(double));
  return v;
}

}  // namespace pts::pvm
