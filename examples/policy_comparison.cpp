// Collection-policy explorer on the deterministic virtual-time engine.
//
// Sweeps the force threshold from "cut after a quarter reported" to
// "wait for everyone" across increasingly skewed clusters, printing the
// makespan/quality tradeoff — a generalization of the paper's fixed
// half rule (§4.2) useful for choosing a policy for a given cluster.
// Every run goes through the pts::solver front door ("parallel-sim").
#include <cstdio>

#include "experiments/workloads.hpp"
#include "solver/solver.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

namespace {

constexpr const char kUsage[] =
    "usage: policy_comparison [--circuit c532] [--help]\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace pts;
  const Cli cli(argc, argv);
  set_log_level(LogLevel::Warn);
  if (cli.get_flag("help")) {
    std::fputs(kUsage, stdout);
    return 0;
  }

  const std::string name = cli.get("circuit", "c532");
  cli.reject_unused(kUsage);
  const auto& circuit = experiments::circuit(name);
  const solver::Solver solver;

  struct ClusterCase {
    const char* label;
    pvm::ClusterConfig cluster;
  };
  const ClusterCase clusters[] = {
      {"uniform (12 x 1.0)", pvm::ClusterConfig::homogeneous(12, 1.0, 0.05)},
      {"mild (1.0/0.85/0.7)",
       pvm::ClusterConfig::three_class(7, 3, 2, 1.0, 0.85, 0.7, 0.05)},
      {"paper (1.0/0.75/0.5)", pvm::ClusterConfig::paper_cluster(0.05)},
      {"extreme (1.0/0.5/0.2)",
       pvm::ClusterConfig::three_class(7, 3, 2, 1.0, 0.5, 0.2, 0.05)},
  };

  std::printf("circuit %s, 4 TSWs x 4 CLWs; cells = threshold sweep\n",
              circuit.name().c_str());
  for (const auto& cluster_case : clusters) {
    Table table({"policy", "makespan", "best cost", "quality"});
    for (double threshold : {0.25, 0.5, 0.75, 1.0}) {
      auto spec = experiments::base_spec(circuit, "parallel-sim", 9,
                                         /*quick=*/true);
      spec.parallel.num_tsws = 4;
      spec.parallel.clws_per_tsw = 4;
      spec.parallel.cluster = cluster_case.cluster;
      if (threshold >= 1.0) {
        spec.parallel.set_policy(parallel::CollectionPolicy::WaitAll);
      } else {
        spec.parallel.set_policy(parallel::CollectionPolicy::HalfForce,
                                 threshold);
      }
      const auto result = solver.solve(spec);
      table.add_row({threshold >= 1.0 ? "wait-all"
                                      : "force@" + Table::fmt(threshold, 2),
                     Table::fmt(result.makespan, 1),
                     Table::fmt(result.best_cost, 4),
                     Table::fmt(result.best_quality, 4)});
    }
    emit_table(std::string("cluster: ") + cluster_case.label, table,
               /*with_csv=*/false);
  }
  std::printf("\nreading: the skewer the cluster, the more runtime the\n"
              "half-force rule saves at little quality cost (paper Fig 11).\n");
  return 0;
}
