// Quickstart: place a benchmark circuit through the pts::solver front door.
//
// Any registered engine runs through the same Solver call and returns the
// same SolveResult; --progress streams improvements via an Observer, and
// --max-seconds / --target-cost demonstrate StopConditions. Unknown
// options are rejected with a usage message (strict CLI).
#include <cstdio>

#include "experiments/workloads.hpp"
#include "solver/solver.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"

namespace {

constexpr const char kUsage[] =
    "usage: quickstart [--engine parallel-sim | --threaded] [--circuit c532]\n"
    "                  [--tsws 4] [--clws 2] [--seed 7] [--full] [--progress]\n"
    "                  [--max-seconds S] [--target-cost C] [--list-engines]\n"
    "                  [--help]\n"
    "engines: any registry entry printed by --list-engines; --threaded is\n"
    "shorthand for --engine parallel-threaded.\n";

class PrintProgress : public pts::Observer {
 public:
  void on_improvement(const pts::Progress& progress) override {
    std::printf("  improved @ iteration %zu (t=%.3f): best cost %.4f\n",
                progress.iteration, progress.seconds, progress.best_cost);
  }
};

}  // namespace

int main(int argc, char** argv) {
  const pts::Cli cli(argc, argv);
  pts::set_log_level(pts::LogLevel::Warn);
  if (cli.get_flag("help")) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  if (cli.get_flag("list-engines")) {
    for (const auto& name : pts::solver::Solver::engines()) {
      const auto* engine = pts::solver::find_engine(name);
      std::printf("%-18s %s\n", name.c_str(),
                  std::string(engine->description()).c_str());
    }
    return 0;
  }

  const std::string circuit_name = cli.get("circuit", "c532");
  std::string engine = cli.get("engine", "parallel-sim");
  if (cli.get_flag("threaded")) engine = "parallel-threaded";
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const bool full = cli.get_flag("full");
  const auto tsws = static_cast<std::size_t>(cli.get_int("tsws", 4));
  const auto clws = static_cast<std::size_t>(cli.get_int("clws", 2));
  const double max_seconds = cli.get_double("max-seconds", 0.0);
  const bool has_target = cli.has("target-cost");
  const double target_cost = cli.get_double("target-cost", 0.0);
  const bool progress = cli.get_flag("progress");
  cli.reject_unused(kUsage);

  const auto& circuit = pts::experiments::circuit(circuit_name);
  std::printf("circuit %s: %zu cells, %zu nets, %zu pads, logic depth %zu\n",
              circuit.name().c_str(), circuit.num_movable(), circuit.num_nets(),
              circuit.pad_cells().size(), circuit.logic_depth());

  auto spec = pts::experiments::base_spec(circuit, engine, seed, !full);
  spec.parallel.num_tsws = tsws;
  spec.parallel.clws_per_tsw = clws;
  spec.stop.max_seconds = max_seconds;
  if (has_target) spec.stop.target_cost = target_cost;
  PrintProgress print_progress;
  if (progress) spec.observer = &print_progress;

  const pts::solver::Solver solver;
  if (const auto errors = solver.validate(spec); !errors.empty()) {
    for (const auto& error : errors) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
    }
    std::fputs(kUsage, stderr);
    return 2;
  }
  const auto result = solver.solve(spec);

  const bool virtual_clock = engine == "parallel-sim";
  std::printf("engine            : %s\n", result.engine.c_str());
  std::printf("initial cost      : %.4f\n", result.initial_cost);
  std::printf("best cost         : %.4f\n", result.best_cost);
  std::printf("best quality (mu) : %.4f\n", result.best_quality);
  std::printf("wirelength        : %.1f\n", result.best_objectives.wirelength);
  std::printf("critical delay    : %.3f\n", result.best_objectives.delay);
  std::printf("area              : %.1f\n", result.best_objectives.area);
  std::printf("makespan          : %.3f %s\n", result.makespan,
              virtual_clock ? "virtual s" : "s (wall)");
  std::printf("iterations        : %zu (accepted %zu, tabu-rejected %zu, aspirated %zu)\n",
              result.stats.iterations, result.stats.accepted,
              result.stats.rejected_tabu, result.stats.aspirated);
  std::printf("stop reason       : %s\n",
              pts::stop_reason_name(result.stop_reason));
  return 0;
}
