#include "service/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace pts::service {

namespace {

bool send_all(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += static_cast<std::size_t>(n);
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

void set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      decoder_(std::move(other.decoder_)),
      pending_(std::move(other.pending_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
    decoder_ = std::move(other.decoder_);
    pending_ = std::move(other.pending_);
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::connect_unix(const std::string& path, std::string* error) {
  if (path.size() >= sizeof(sockaddr_un::sun_path)) {
    set_error(error, "unix socket path too long: " + path);
    return false;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    set_error(error, std::string("socket(AF_UNIX): ") + std::strerror(errno));
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    set_error(error, "connect(" + path + "): " + std::strerror(errno));
    ::close(fd);
    return false;
  }
  fd_ = fd;
  return true;
}

bool Client::connect_tcp(const std::string& host, std::uint16_t port,
                         std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    set_error(error, std::string("socket(AF_INET): ") + std::strerror(errno));
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    set_error(error, "invalid IPv4 address: " + host);
    ::close(fd);
    return false;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    set_error(error,
              "connect(" + host + ":" + std::to_string(port) +
                  "): " + std::strerror(errno));
    ::close(fd);
    return false;
  }
  fd_ = fd;
  return true;
}

bool Client::send_message(const pvm::Message& msg, std::string* error) {
  if (fd_ < 0) {
    set_error(error, "not connected");
    return false;
  }
  const std::vector<std::uint8_t> bytes = pvm::encode_frame(msg);
  if (!send_all(fd_, bytes.data(), bytes.size())) {
    set_error(error, std::string("send: ") + std::strerror(errno));
    return false;
  }
  return true;
}

std::optional<pvm::Message> Client::read_message(std::string* error) {
  if (fd_ < 0) {
    set_error(error, "not connected");
    return std::nullopt;
  }
  std::uint8_t buffer[64 * 1024];
  while (true) {
    if (auto msg = decoder_.next()) return msg;
    if (decoder_.errored()) {
      set_error(error, "protocol error from server: " + decoder_.error());
      return std::nullopt;
    }
    const ssize_t n = ::read(fd_, buffer, sizeof(buffer));
    if (n == 0) {
      set_error(error, "server closed the connection");
      return std::nullopt;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      set_error(error, std::string("read: ") + std::strerror(errno));
      return std::nullopt;
    }
    decoder_.feed(buffer, static_cast<std::size_t>(n));
  }
}

std::optional<WelcomeMsg> Client::hello(std::string* error) {
  if (!send_message(encode(HelloMsg{}), error)) return std::nullopt;
  while (true) {
    auto msg = read_message(error);
    if (!msg) return std::nullopt;
    if (msg->tag() == kWelcome) {
      WelcomeMsg welcome;
      if (!decode(*msg, welcome)) {
        set_error(error, "malformed welcome from server");
        return std::nullopt;
      }
      return welcome;
    }
    if (msg->tag() == kError) {
      ErrorMsg err;
      set_error(error, decode(*msg, err) ? err.message : "server error");
      return std::nullopt;
    }
    pending_.push_back(std::move(*msg));
  }
}

std::optional<std::uint64_t> Client::submit(const JobRequest& job, bool stream,
                                            std::uint64_t progress_stride,
                                            std::string* error) {
  SubmitMsg submit;
  submit.spec_json = encode_spec(job);
  submit.stream = stream;
  submit.progress_stride = progress_stride;
  if (!send_message(encode(submit), error)) return std::nullopt;
  while (true) {
    auto msg = read_message(error);
    if (!msg) return std::nullopt;
    switch (msg->tag()) {
      case kSubmitOk: {
        SubmitOkMsg ok;
        if (!decode(*msg, ok)) {
          set_error(error, "malformed submit-ok from server");
          return std::nullopt;
        }
        return ok.session;
      }
      case kSubmitErr: {
        SubmitErrMsg err;
        set_error(error, decode(*msg, err) ? err.error : "submit rejected");
        return std::nullopt;
      }
      case kError: {
        ErrorMsg err;
        set_error(error, decode(*msg, err) ? err.message : "server error");
        return std::nullopt;
      }
      default: pending_.push_back(std::move(*msg));
    }
  }
}

bool Client::cancel(std::uint64_t session, bool* was_active, std::string* error) {
  if (!send_message(encode(CancelMsg{session}), error)) return false;
  while (true) {
    auto msg = read_message(error);
    if (!msg) return false;
    if (msg->tag() == kCancelOk) {
      CancelOkMsg ok;
      if (!decode(*msg, ok) || ok.session != session) {
        set_error(error, "malformed cancel-ok from server");
        return false;
      }
      if (was_active != nullptr) *was_active = ok.was_active;
      return true;
    }
    if (msg->tag() == kError) {
      ErrorMsg err;
      set_error(error, decode(*msg, err) ? err.message : "server error");
      return false;
    }
    pending_.push_back(std::move(*msg));
  }
}

std::optional<solver::SolveResult> Client::wait(
    std::uint64_t session,
    const std::function<void(const ProgressMsg&)>& on_progress,
    std::string* error) {
  // Replay buffered events first, then read from the wire; events that
  // belong to other sessions go (back) to the buffer in arrival order.
  std::deque<pvm::Message> buffered;
  buffered.swap(pending_);
  while (true) {
    std::optional<pvm::Message> msg;
    if (!buffered.empty()) {
      msg = std::move(buffered.front());
      buffered.pop_front();
    } else {
      msg = read_message(error);
      if (!msg) {
        pending_.insert(pending_.end(), std::make_move_iterator(buffered.begin()),
                        std::make_move_iterator(buffered.end()));
        return std::nullopt;
      }
    }
    if (msg->tag() == kProgress) {
      ProgressMsg progress;
      if (decode(*msg, progress) && progress.session == session) {
        if (on_progress) on_progress(progress);
        continue;
      }
      msg->rewind();
      pending_.push_back(std::move(*msg));
      continue;
    }
    if (msg->tag() == kDone) {
      DoneMsg done;
      if (decode(*msg, done) && done.session == session) {
        pending_.insert(pending_.end(),
                        std::make_move_iterator(buffered.begin()),
                        std::make_move_iterator(buffered.end()));
        std::string decode_error;
        auto result = decode_result(done.result_json, &decode_error);
        if (!result) {
          set_error(error, "malformed result from server: " + decode_error);
          return std::nullopt;
        }
        return result;
      }
      msg->rewind();
      pending_.push_back(std::move(*msg));
      continue;
    }
    pending_.push_back(std::move(*msg));
  }
}

bool Client::shutdown_server(std::string* error) {
  if (!send_message(encode_shutdown(), error)) return false;
  while (true) {
    auto msg = read_message(error);
    if (!msg) return false;
    if (msg->tag() == kShutdownOk) return true;
    if (msg->tag() == kError) {
      ErrorMsg err;
      set_error(error, decode(*msg, err) ? err.message : "server error");
      return false;
    }
    pending_.push_back(std::move(*msg));
  }
}

}  // namespace pts::service
