// Slack analysis on top of the exact STA.
//
// Computes required times (backward pass from the critical delay or an
// explicit clock target), per-cell slack, and per-net criticality in
// [0, 1]. Criticalities are the standard way to feed timing pressure back
// into a placer's net weights (timing-driven placement); the
// `reweight_critical_nets` helper implements that loop for the examples
// and the timing-driven extension bench.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"
#include "placement/hpwl.hpp"
#include "timing/sta.hpp"

namespace pts::timing {

struct SlackResult {
  /// Arrival time at each cell output (copied from the forward pass).
  std::vector<double> arrival;
  /// Required time at each cell output.
  std::vector<double> required;
  /// slack[c] = required[c] - arrival[c]; 0 on the critical path when the
  /// target equals the critical delay, negative when the target is tighter.
  std::vector<double> slack;
  /// Criticality of each net in [0, 1]: 1 on the most critical nets.
  std::vector<double> net_criticality;
  double critical_delay = 0.0;
  double target = 0.0;
  /// Worst (minimum) slack over primary outputs.
  double worst_slack = 0.0;
};

/// Runs forward + backward timing passes against the current placement
/// geometry. `clock_target <= 0` means "use the critical delay itself"
/// (zero slack on the critical path).
SlackResult analyze_slack(const netlist::Netlist& netlist,
                          const placement::HpwlState& hpwl, const DelayModel& model,
                          double clock_target = 0.0);

/// Returns net weights for timing-driven placement: base_weight scaled by
/// (1 + strength * criticality^gamma). The caller applies them by building
/// a reweighted netlist or by scaling the cost model's wirelength terms.
std::vector<double> criticality_weights(const SlackResult& slack,
                                        double strength = 2.0, double gamma = 2.0);

}  // namespace pts::timing
