#include "tabu/compound.hpp"

#include <algorithm>

namespace pts::tabu {
namespace {

/// Per-level trial scratch for the batched scoring path. thread_local so
/// the free-function call sites (every engine's workers call through here)
/// stay allocation-free in steady state without threading a buffer through
/// each signature.
struct TrialScratch {
  std::vector<Move> moves;
  std::vector<cost::Move> cmoves;
  std::vector<double> costs;
};
TrialScratch& trial_scratch() {
  thread_local TrialScratch scratch;
  return scratch;
}

}  // namespace

// The batched path draws every pair before probing — probes consume no
// RNG, so the sample stream is identical to the interleaved scalar loop —
// then scores chunks of `batch` candidates per Evaluator::probe_batch call.
void best_of_trials(cost::Evaluator& eval,
                    std::span<const netlist::CellId> movable,
                    const CellRange& range, std::size_t width,
                    std::size_t batch, Rng& rng, const FrequencyMemory* memory,
                    bool use_memory, Move* best_out, double* best_cost_out) {
  Move best{};
  double best_cost = 0.0;
  bool have_best = false;
  if (batch > 1) {
    TrialScratch& scratch = trial_scratch();
    scratch.moves.clear();
    scratch.cmoves.clear();
    for (std::size_t trial = 0; trial < width; ++trial) {
      const Move move = sample_move(movable, range, rng);
      scratch.moves.push_back(move);
      scratch.cmoves.push_back({move.a, move.b});
    }
    scratch.costs.resize(width);
    for (std::size_t i = 0; i < width; i += batch) {
      const std::size_t n = std::min(batch, width - i);
      eval.probe_batch(std::span(scratch.cmoves).subspan(i, n),
                       std::span(scratch.costs).subspan(i, n));
    }
    for (std::size_t trial = 0; trial < width; ++trial) {
      double cost_after = scratch.costs[trial];
      if (use_memory) {
        cost_after = memory->adjusted_cost(scratch.moves[trial], cost_after);
      }
      if (!have_best || cost_after < best_cost) {
        best = scratch.moves[trial];
        best_cost = cost_after;
        have_best = true;
      }
    }
  } else {
    for (std::size_t trial = 0; trial < width; ++trial) {
      const Move move = sample_move(movable, range, rng);
      double cost_after = eval.probe_swap(move.a, move.b);
      if (use_memory) cost_after = memory->adjusted_cost(move, cost_after);
      if (!have_best || cost_after < best_cost) {
        best = move;
        best_cost = cost_after;
        have_best = true;
      }
    }
  }
  PTS_CHECK(have_best);
  *best_out = best;
  *best_cost_out = best_cost;
}

void build_compound_move(cost::Evaluator& eval, const CellRange& range,
                         const CompoundParams& params, Rng& rng,
                         const FrequencyMemory* memory, CompoundMove* out) {
  PTS_CHECK(params.width >= 1);
  PTS_CHECK(params.depth >= 1);
  PTS_DCHECK(out != nullptr);
  const double start_cost = eval.cost();
  const bool use_memory = memory != nullptr && memory->active();
  const std::span<const netlist::CellId> movable =
      eval.placement().netlist().movable_cells();

  CompoundMove& compound = *out;
  compound.swaps.clear();
  compound.swaps.reserve(params.depth);
  compound.improved_early = false;
  compound.cost = start_cost;
  for (std::size_t level = 0; level < params.depth; ++level) {
    Move best{};
    double best_cost = 0.0;
    best_of_trials(eval, movable, range, params.width, params.batch, rng,
                   memory, use_memory, &best, &best_cost);
    // Keep the level's best move (even if it degrades cost — that is what
    // lets the compound move escape local minima).
    compound.cost = eval.commit_swap(best.a, best.b);
    compound.swaps.push_back(best);
    if (params.early_accept && compound.cost < start_cost) {
      compound.improved_early = true;
      break;
    }
  }
}

CompoundMove build_compound_move(cost::Evaluator& eval, const CellRange& range,
                                 const CompoundParams& params, Rng& rng,
                                 const FrequencyMemory* memory) {
  CompoundMove compound;
  build_compound_move(eval, range, params, rng, memory, &compound);
  return compound;
}

void undo_compound(cost::Evaluator& eval, const CompoundMove& move) {
  for (auto it = move.swaps.rbegin(); it != move.swaps.rend(); ++it) {
    eval.apply_swap(it->a, it->b);
  }
}

}  // namespace pts::tabu
