#include "placement/hpwl.hpp"

#include <algorithm>
#include <cstdint>

namespace pts::placement {

using netlist::NetId;

HpwlState::HpwlState(const Placement& placement)
    : placement_(&placement),
      topology_(&placement.netlist().topology()),
      boxes_(placement.netlist().num_nets()) {
  rebuild();
}

NetBox HpwlState::compute_box(NetId net) const {
  // CSR pins are driver-first, sinks in net order, so this visits cells in
  // the exact order the Net-struct walk always did (min/max order pinned).
  const std::span<const netlist::CellId> pins = topology_->pins(net);
  const Point d = placement_->position(pins.front());
  NetBox box{d.x, d.x, d.y, d.y};
  for (netlist::CellId sink : pins.subspan(1)) {
    const Point p = placement_->position(sink);
    box.min_x = std::min(box.min_x, p.x);
    box.max_x = std::max(box.max_x, p.x);
    box.min_y = std::min(box.min_y, p.y);
    box.max_y = std::max(box.max_y, p.y);
  }
  return box;
}

double HpwlState::update_nets(std::span<const NetId> nets,
                              std::vector<NetChange>* changes) {
  double delta = 0.0;
  for (NetId net : nets) {
    const double before = boxes_[net].half_perimeter();
    boxes_[net] = compute_box(net);
    const double after = boxes_[net].half_perimeter();
    if (before == after) continue;
    delta += topology_->net_weight(net) * (after - before);
    if (changes != nullptr) changes->push_back({net, before, after});
  }
  total_ += delta;
  return delta;
}

double HpwlState::probe_nets(std::span<const NetId> nets,
                             std::vector<NetBox>* scratch,
                             std::vector<NetChange>* changes) const {
  PTS_DCHECK(scratch != nullptr);
  scratch->resize(nets.size());
  double delta = 0.0;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    const NetId net = nets[i];
    const double before = boxes_[net].half_perimeter();
    (*scratch)[i] = compute_box(net);
    const double after = (*scratch)[i].half_perimeter();
    if (before == after) continue;
    delta += topology_->net_weight(net) * (after - before);
    if (changes != nullptr) changes->push_back({net, before, after});
  }
  return delta;
}

double HpwlState::probe_nets_batch(std::span<const double> xs,
                                   std::span<const double> ys,
                                   std::span<const NetId> nets,
                                   std::vector<NetChange>* changes) const {
  PTS_DCHECK(changes != nullptr);
  PTS_DCHECK(xs.size() == ys.size());
  const double* X = xs.data();
  const double* Y = ys.data();

  // Cursor-style change emission: write unconditionally, advance only when
  // the half-perimeter moved. Same entries, same order as probe_nets().
  std::size_t nc = changes->size();
  changes->resize(nc + nets.size());
  NetChange* out = changes->data();

  double delta = 0.0;
  for (NetId net : nets) {
    const double before = boxes_[net].half_perimeter();
    const std::span<const netlist::CellId> pins = topology_->pins(net);

    // Driver-first init then min/max fold — compute_box()'s exact order,
    // but against the caller's shadow arrays instead of the placement.
    const netlist::CellId driver = pins.front();
    double min_x = X[driver], max_x = X[driver];
    double min_y = Y[driver], max_y = Y[driver];
    for (const netlist::CellId c : pins.subspan(1)) {
      min_x = std::min(min_x, X[c]);
      max_x = std::max(max_x, X[c]);
      min_y = std::min(min_y, Y[c]);
      max_y = std::max(max_y, Y[c]);
    }

    const double after = (max_x - min_x) + (max_y - min_y);
    // before == after contributes w * (+0.0) = +0.0, which never changes
    // the accumulator (no term is -0.0), so the unconditional add matches
    // probe_nets()'s skip bit for bit.
    delta += topology_->net_weight(net) * (after - before);
    out[nc] = NetChange{net, before, after};
    nc += static_cast<std::size_t>(before != after);
  }
  changes->resize(nc);
  return delta;
}

void HpwlState::commit_probe(std::span<const NetId> nets,
                             const std::vector<NetBox>& scratch, double delta) {
  PTS_DCHECK(scratch.size() == nets.size());
  for (std::size_t i = 0; i < nets.size(); ++i) boxes_[nets[i]] = scratch[i];
  total_ += delta;
}

void HpwlState::rebuild() {
  const std::size_t num_nets = topology_->num_nets();
  total_ = 0.0;
  for (NetId net = 0; net < num_nets; ++net) {
    boxes_[net] = compute_box(net);
    total_ += topology_->net_weight(net) * boxes_[net].half_perimeter();
  }
}

double HpwlState::compute_fresh_total() const {
  const std::size_t num_nets = topology_->num_nets();
  double total = 0.0;
  for (NetId net = 0; net < num_nets; ++net) {
    total += topology_->net_weight(net) * compute_box(net).half_perimeter();
  }
  return total;
}

}  // namespace pts::placement
