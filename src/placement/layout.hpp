// Standard-cell layout geometry.
//
// The core area is a set of horizontal rows. Movable cells occupy slots
// (sequence positions) within rows; a cell's x position is the prefix sum of
// the widths of the cells before it in its row, so variable-width cells are
// handled exactly. Pads are fixed: primary inputs on the left edge, primary
// outputs on the right edge, evenly spread vertically.
#pragma once

#include <cstddef>

#include "netlist/netlist.hpp"

namespace pts::placement {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

using SlotId = std::uint32_t;
inline constexpr SlotId kNoSlot = static_cast<SlotId>(-1);

class Layout {
 public:
  /// Derives a layout for `netlist`. `num_rows == 0` selects roughly square
  /// aspect (rows ≈ sqrt(movable cells)).
  explicit Layout(const netlist::Netlist& netlist, std::size_t num_rows = 0,
                  double row_height = 1.0);

  std::size_t num_rows() const { return num_rows_; }
  std::size_t num_slots() const { return num_slots_; }
  /// Maximum slots in any row; rows 0..num_rows-2 are full, the last row
  /// may be partial.
  std::size_t slots_per_row() const { return slots_per_row_; }

  std::size_t row_of_slot(SlotId slot) const {
    PTS_DCHECK(slot < num_slots_);
    return slot / slots_per_row_;
  }
  std::size_t column_of_slot(SlotId slot) const {
    PTS_DCHECK(slot < num_slots_);
    return slot % slots_per_row_;
  }
  SlotId slot_at(std::size_t row, std::size_t column) const {
    PTS_DCHECK(row < num_rows_);
    return static_cast<SlotId>(row * slots_per_row_ + column);
  }
  std::size_t slots_in_row(std::size_t row) const;

  double row_height() const { return row_height_; }
  /// y coordinate of the center line of `row`.
  double row_y(std::size_t row) const {
    PTS_DCHECK(row < num_rows_);
    return (static_cast<double>(row) + 0.5) * row_height_;
  }

  /// Average row width implied by total movable width; pads sit just
  /// outside [0, nominal_width].
  double nominal_width() const { return nominal_width_; }
  double core_height() const {
    return static_cast<double>(num_rows_) * row_height_;
  }

  /// Fixed position of a pad cell. PTS_CHECK-fails for movable cells.
  Point pad_position(netlist::CellId cell) const;

 private:
  const netlist::Netlist* netlist_;
  std::size_t num_rows_ = 1;
  std::size_t slots_per_row_ = 1;
  std::size_t num_slots_ = 0;
  double row_height_ = 1.0;
  double nominal_width_ = 0.0;
  std::vector<Point> pad_positions_;  // indexed by cell id (gates unset)
};

}  // namespace pts::placement
