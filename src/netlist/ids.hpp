// Dense index types shared by the netlist model and its CSR topology view.
//
// CellId / NetId index into the Netlist's cell/net tables and into every
// flat array derived from them (Topology, placement state, HPWL boxes).
#pragma once

#include <cstdint>

namespace pts::netlist {

using CellId = std::uint32_t;
using NetId = std::uint32_t;

inline constexpr CellId kNoCell = static_cast<CellId>(-1);
inline constexpr NetId kNoNet = static_cast<NetId>(-1);

}  // namespace pts::netlist
