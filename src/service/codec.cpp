#include "service/codec.hpp"

#include <charconv>
#include <cmath>
#include <cstring>

namespace pts::service {

namespace {

using json::Value;

// -- strict field reading ---------------------------------------------------

/// Reads fields out of one JSON object, accumulating errors instead of
/// aborting. Every read marks its key as known; finish() rejects keys the
/// schema never asked about, so typos ("iteratons") surface as errors.
class ObjectReader {
 public:
  ObjectReader(const Value& value, std::string context, std::string& error)
      : value_(value), context_(std::move(context)), error_(error) {
    if (!value_.is_object()) {
      fail("expected an object");
    }
  }

  bool ok() const { return error_.empty(); }

  void read_string(const char* key, std::string& out) {
    if (const Value* v = known(key)) {
      if (v->is_string()) {
        out = v->as_string();
      } else {
        fail(std::string(key) + " must be a string");
      }
    }
  }

  void read_bool(const char* key, bool& out) {
    if (const Value* v = known(key)) {
      if (v->is_bool()) {
        out = v->as_bool();
      } else {
        fail(std::string(key) + " must be a boolean");
      }
    }
  }

  void read_double(const char* key, double& out) {
    if (const Value* v = known(key)) {
      if (v->is_number() && std::isfinite(v->as_number())) {
        out = v->as_number();
      } else {
        // Non-finite values cannot come off the wire (the JSON grammar has
        // no NaN/Inf and the number parser rejects overflow), but an
        // in-process Value can carry one; reject it so no spec or result
        // with poisoned arithmetic gets past decoding.
        fail(std::string(key) + " must be a finite number");
      }
    }
  }

  template <typename UInt>
  void read_uint(const char* key, UInt& out) {
    if (const Value* v = known(key)) {
      double n = 0.0;
      if (!v->is_number() || !integral_in_range(v->as_number(), n)) {
        fail(std::string(key) + " must be a non-negative integer");
        return;
      }
      out = static_cast<UInt>(n);
    }
  }

  void read_opt_double(const char* key, std::optional<double>& out) {
    if (const Value* v = known(key)) {
      if (v->is_null()) {
        out.reset();
      } else if (v->is_number() && std::isfinite(v->as_number())) {
        out = v->as_number();
      } else {
        fail(std::string(key) + " must be a finite number or null");
      }
    }
  }

  /// Nested object; returns nullptr when absent (defaults apply).
  const Value* read_object(const char* key) {
    if (const Value* v = known(key)) {
      if (v->is_object()) return v;
      fail(std::string(key) + " must be an object");
    }
    return nullptr;
  }

  const Value* read_array(const char* key) {
    if (const Value* v = known(key)) {
      if (v->is_array()) return v;
      fail(std::string(key) + " must be an array");
    }
    return nullptr;
  }

  bool has(const char* key) const { return value_.find(key) != nullptr; }

  /// Call last: rejects members no read_* asked about.
  void finish() {
    if (!value_.is_object()) return;
    for (const auto& [key, member] : value_.members()) {
      (void)member;
      bool seen = false;
      for (const auto& k : known_keys_) {
        if (k == key) {
          seen = true;
          break;
        }
      }
      if (!seen) fail("unknown key '" + key + "'");
    }
  }

 private:
  static bool integral_in_range(double v, double& out) {
    if (!(v >= 0.0 && v <= 9007199254740992.0)) return false;  // 2^53
    if (std::nearbyint(v) != v) return false;
    out = v;
    return true;
  }

  const Value* known(const char* key) {
    known_keys_.emplace_back(key);
    return value_.find(key);
  }

  void fail(const std::string& why) {
    if (!error_.empty()) return;  // first error wins; it has the most context
    error_ = context_ + ": " + why;
  }

  const Value& value_;
  std::string context_;
  std::string& error_;
  std::vector<std::string> known_keys_;
};

// -- series -----------------------------------------------------------------

Value series_to_json(const Series& series) {
  Value out = Value::object();
  out.set("name", Value(series.name));
  Value xs = Value::array();
  for (const double x : series.x) xs.push_back(Value(x));
  Value ys = Value::array();
  for (const double y : series.y) ys.push_back(Value(y));
  out.set("x", std::move(xs));
  out.set("y", std::move(ys));
  return out;
}

bool series_from_json(const Value& value, const char* key, Series& out,
                      std::string& error) {
  ObjectReader reader(value, std::string("result.") + key, error);
  reader.read_string("name", out.name);
  for (const char* axis : {"x", "y"}) {
    auto& dst = axis[0] == 'x' ? out.x : out.y;
    if (const Value* arr = reader.read_array(axis)) {
      dst.clear();
      dst.reserve(arr->items().size());
      for (const auto& item : arr->items()) {
        if (!item.is_number() || !std::isfinite(item.as_number())) {
          error = std::string("result.") + key + "." + axis +
                  " must contain only finite numbers";
          return false;
        }
        dst.push_back(item.as_number());
      }
    }
  }
  reader.finish();
  if (!error.empty()) return false;
  if (out.x.size() != out.y.size()) {
    error = std::string("result.") + key + ": x and y lengths differ";
    return false;
  }
  return true;
}

// -- stop reason ------------------------------------------------------------

bool stop_reason_from_name(const std::string& name, StopReason& out) {
  for (const StopReason reason :
       {StopReason::Completed, StopReason::IterationBudget, StopReason::TimeLimit,
        StopReason::TargetCost, StopReason::TargetQuality, StopReason::Cancelled,
        StopReason::DeadlineExpired}) {
    if (name == stop_reason_name(reason)) {
      out = reason;
      return true;
    }
  }
  return false;
}

}  // namespace

// -- spec -------------------------------------------------------------------

json::Value spec_to_json(const JobRequest& job) {
  const solver::SolveSpec& spec = job.spec;
  Value out = Value::object();
  out.set("circuit", Value(job.circuit));
  out.set("engine", Value(spec.engine));
  out.set("seed", Value(static_cast<double>(spec.seed)));
  out.set("deadline_seconds", Value(job.deadline_seconds));
  if (!spec.initial_slots.empty()) {
    // Warm start (ECO mode): omitted when empty so pre-existing encodings
    // stay byte-stable.
    Value slots = Value::array();
    for (const netlist::CellId cell : spec.initial_slots) {
      slots.push_back(Value(static_cast<double>(cell)));
    }
    out.set("initial_slots", std::move(slots));
  }

  Value cost = Value::object();
  cost.set("num_paths", Value(static_cast<double>(spec.cost.num_paths)));
  cost.set("target_improvement", Value(spec.cost.target_improvement));
  cost.set("initial_membership", Value(spec.cost.initial_membership));
  cost.set("beta", Value(spec.cost.beta));
  cost.set("rebuild_interval", Value(static_cast<double>(spec.cost.rebuild_interval)));
  out.set("cost", std::move(cost));

  Value compound = Value::object();
  compound.set("width", Value(static_cast<double>(spec.tabu.compound.width)));
  compound.set("depth", Value(static_cast<double>(spec.tabu.compound.depth)));
  compound.set("early_accept", Value(spec.tabu.compound.early_accept));
  compound.set("batch", Value(static_cast<double>(spec.tabu.compound.batch)));
  Value tabu = Value::object();
  tabu.set("tenure", Value(static_cast<double>(spec.tabu.tenure)));
  tabu.set("iterations", Value(static_cast<double>(spec.tabu.iterations)));
  tabu.set("aspiration", Value(spec.tabu.aspiration));
  tabu.set("trace_stride", Value(static_cast<double>(spec.tabu.trace_stride)));
  tabu.set("compound", std::move(compound));
  out.set("tabu", std::move(tabu));

  Value anneal = Value::object();
  anneal.set("initial_acceptance", Value(spec.anneal.initial_acceptance));
  anneal.set("cooling", Value(spec.anneal.cooling));
  anneal.set("moves_per_temp", Value(static_cast<double>(spec.anneal.moves_per_temp)));
  anneal.set("final_temp_ratio", Value(spec.anneal.final_temp_ratio));
  anneal.set("trace_stride", Value(static_cast<double>(spec.anneal.trace_stride)));
  out.set("anneal", std::move(anneal));

  Value local = Value::object();
  local.set("candidates_per_iteration",
            Value(static_cast<double>(spec.local.candidates_per_iteration)));
  local.set("patience", Value(static_cast<double>(spec.local.patience)));
  local.set("max_iterations", Value(static_cast<double>(spec.local.max_iterations)));
  local.set("trace_stride", Value(static_cast<double>(spec.local.trace_stride)));
  out.set("local", std::move(local));

  Value diversify = Value::object();
  diversify.set("depth", Value(static_cast<double>(spec.parallel.diversify.depth)));
  diversify.set("width", Value(static_cast<double>(spec.parallel.diversify.width)));
  diversify.set("enabled", Value(spec.parallel.diversify.enabled));
  diversify.set("batch", Value(static_cast<double>(spec.parallel.diversify.batch)));
  Value parallel = Value::object();
  parallel.set("num_tsws", Value(static_cast<double>(spec.parallel.num_tsws)));
  parallel.set("clws_per_tsw", Value(static_cast<double>(spec.parallel.clws_per_tsw)));
  parallel.set("local_iterations",
               Value(static_cast<double>(spec.parallel.local_iterations)));
  parallel.set("global_iterations",
               Value(static_cast<double>(spec.parallel.global_iterations)));
  parallel.set("diversify", std::move(diversify));
  out.set("parallel", std::move(parallel));

  Value shared = Value::object();
  shared.set("threads", Value(static_cast<double>(spec.shared.threads)));
  shared.set("chunk", Value(static_cast<double>(spec.shared.chunk)));
  out.set("shared", std::move(shared));

  Value stop = Value::object();
  stop.set("max_iterations", Value(static_cast<double>(spec.stop.max_iterations)));
  stop.set("max_seconds", Value(spec.stop.max_seconds));
  stop.set("target_cost", spec.stop.target_cost ? Value(*spec.stop.target_cost)
                                                : Value());
  stop.set("target_quality",
           spec.stop.target_quality ? Value(*spec.stop.target_quality) : Value());
  out.set("stop", std::move(stop));
  return out;
}

std::optional<JobRequest> spec_from_json(const json::Value& value,
                                         std::string* error) {
  std::string err;
  JobRequest job;
  solver::SolveSpec& spec = job.spec;

  ObjectReader reader(value, "spec", err);
  reader.read_string("circuit", job.circuit);
  reader.read_string("engine", spec.engine);
  reader.read_uint("seed", spec.seed);
  reader.read_double("deadline_seconds", job.deadline_seconds);
  if (const Value* slots = reader.read_array("initial_slots")) {
    spec.initial_slots.reserve(slots->items().size());
    for (const auto& item : slots->items()) {
      const double n = item.is_number() ? item.as_number() : -1.0;
      if (!(n >= 0.0 && n <= 4294967295.0) || std::nearbyint(n) != n) {
        err = "spec.initial_slots must contain cell ids (u32)";
        break;
      }
      spec.initial_slots.push_back(static_cast<netlist::CellId>(n));
    }
  }

  if (const Value* v = reader.read_object("cost")) {
    ObjectReader cost(*v, "spec.cost", err);
    cost.read_uint("num_paths", spec.cost.num_paths);
    cost.read_double("target_improvement", spec.cost.target_improvement);
    cost.read_double("initial_membership", spec.cost.initial_membership);
    cost.read_double("beta", spec.cost.beta);
    cost.read_uint("rebuild_interval", spec.cost.rebuild_interval);
    cost.finish();
  }
  if (const Value* v = reader.read_object("tabu")) {
    ObjectReader tabu(*v, "spec.tabu", err);
    tabu.read_uint("tenure", spec.tabu.tenure);
    tabu.read_uint("iterations", spec.tabu.iterations);
    tabu.read_bool("aspiration", spec.tabu.aspiration);
    tabu.read_uint("trace_stride", spec.tabu.trace_stride);
    if (const Value* c = tabu.read_object("compound")) {
      ObjectReader compound(*c, "spec.tabu.compound", err);
      compound.read_uint("width", spec.tabu.compound.width);
      compound.read_uint("depth", spec.tabu.compound.depth);
      compound.read_bool("early_accept", spec.tabu.compound.early_accept);
      compound.read_uint("batch", spec.tabu.compound.batch);
      compound.finish();
    }
    tabu.finish();
  }
  if (const Value* v = reader.read_object("anneal")) {
    ObjectReader anneal(*v, "spec.anneal", err);
    anneal.read_double("initial_acceptance", spec.anneal.initial_acceptance);
    anneal.read_double("cooling", spec.anneal.cooling);
    anneal.read_uint("moves_per_temp", spec.anneal.moves_per_temp);
    anneal.read_double("final_temp_ratio", spec.anneal.final_temp_ratio);
    anneal.read_uint("trace_stride", spec.anneal.trace_stride);
    anneal.finish();
  }
  if (const Value* v = reader.read_object("local")) {
    ObjectReader local(*v, "spec.local", err);
    local.read_uint("candidates_per_iteration", spec.local.candidates_per_iteration);
    local.read_uint("patience", spec.local.patience);
    local.read_uint("max_iterations", spec.local.max_iterations);
    local.read_uint("trace_stride", spec.local.trace_stride);
    local.finish();
  }
  if (const Value* v = reader.read_object("parallel")) {
    ObjectReader parallel(*v, "spec.parallel", err);
    parallel.read_uint("num_tsws", spec.parallel.num_tsws);
    parallel.read_uint("clws_per_tsw", spec.parallel.clws_per_tsw);
    parallel.read_uint("local_iterations", spec.parallel.local_iterations);
    parallel.read_uint("global_iterations", spec.parallel.global_iterations);
    if (const Value* d = parallel.read_object("diversify")) {
      ObjectReader diversify(*d, "spec.parallel.diversify", err);
      diversify.read_uint("depth", spec.parallel.diversify.depth);
      diversify.read_uint("width", spec.parallel.diversify.width);
      diversify.read_bool("enabled", spec.parallel.diversify.enabled);
      diversify.read_uint("batch", spec.parallel.diversify.batch);
      diversify.finish();
    }
    parallel.finish();
  }
  if (const Value* v = reader.read_object("shared")) {
    ObjectReader shared(*v, "spec.shared", err);
    shared.read_uint("threads", spec.shared.threads);
    shared.read_uint("chunk", spec.shared.chunk);
    shared.finish();
  }
  if (const Value* v = reader.read_object("stop")) {
    ObjectReader stop(*v, "spec.stop", err);
    stop.read_uint("max_iterations", spec.stop.max_iterations);
    stop.read_double("max_seconds", spec.stop.max_seconds);
    stop.read_opt_double("target_cost", spec.stop.target_cost);
    stop.read_opt_double("target_quality", spec.stop.target_quality);
    stop.finish();
  }
  reader.finish();

  if (err.empty() && job.circuit.empty()) {
    err = "spec: 'circuit' is required";
  }
  if (!err.empty()) {
    if (error != nullptr) *error = err;
    return std::nullopt;
  }
  return job;
}

// -- result -----------------------------------------------------------------

json::Value result_to_json(const solver::SolveResult& result) {
  Value out = Value::object();
  out.set("engine", Value(result.engine));
  out.set("initial_cost", Value(result.initial_cost));
  out.set("best_cost", Value(result.best_cost));
  out.set("best_quality", Value(result.best_quality));

  Value objectives = Value::object();
  objectives.set("wirelength", Value(result.best_objectives.wirelength));
  objectives.set("delay", Value(result.best_objectives.delay));
  objectives.set("area", Value(result.best_objectives.area));
  out.set("best_objectives", std::move(objectives));

  Value slots = Value::array();
  for (const netlist::CellId cell : result.best_slots) {
    slots.push_back(Value(static_cast<double>(cell)));
  }
  out.set("best_slots", std::move(slots));

  out.set("cost_trace", series_to_json(result.cost_trace));
  out.set("best_trace", series_to_json(result.best_trace));
  out.set("best_vs_time", series_to_json(result.best_vs_time));
  out.set("best_vs_global", series_to_json(result.best_vs_global));

  Value stats = Value::object();
  stats.set("iterations", Value(static_cast<double>(result.stats.iterations)));
  stats.set("accepted", Value(static_cast<double>(result.stats.accepted)));
  stats.set("rejected_tabu", Value(static_cast<double>(result.stats.rejected_tabu)));
  stats.set("aspirated", Value(static_cast<double>(result.stats.aspirated)));
  stats.set("early_accepts", Value(static_cast<double>(result.stats.early_accepts)));
  stats.set("trials", Value(static_cast<double>(result.stats.trials)));
  out.set("stats", std::move(stats));

  out.set("iterations", Value(static_cast<double>(result.iterations)));
  out.set("makespan", Value(result.makespan));
  out.set("stop_reason", Value(std::string(stop_reason_name(result.stop_reason))));
  out.set("converged", Value(result.converged));
  return out;
}

std::optional<solver::SolveResult> result_from_json(const json::Value& value,
                                                    std::string* error) {
  std::string err;
  solver::SolveResult result;

  ObjectReader reader(value, "result", err);
  reader.read_string("engine", result.engine);
  reader.read_double("initial_cost", result.initial_cost);
  reader.read_double("best_cost", result.best_cost);
  reader.read_double("best_quality", result.best_quality);

  if (const Value* v = reader.read_object("best_objectives")) {
    ObjectReader objectives(*v, "result.best_objectives", err);
    objectives.read_double("wirelength", result.best_objectives.wirelength);
    objectives.read_double("delay", result.best_objectives.delay);
    objectives.read_double("area", result.best_objectives.area);
    objectives.finish();
  }

  if (const Value* slots = reader.read_array("best_slots")) {
    result.best_slots.reserve(slots->items().size());
    for (const auto& item : slots->items()) {
      const double n = item.is_number() ? item.as_number() : -1.0;
      if (!(n >= 0.0 && n <= 4294967295.0) || std::nearbyint(n) != n) {
        err = "result.best_slots must contain cell ids (u32)";
        break;
      }
      result.best_slots.push_back(static_cast<netlist::CellId>(n));
    }
  }

  for (const auto& [key, series] :
       {std::pair<const char*, Series*>{"cost_trace", &result.cost_trace},
        {"best_trace", &result.best_trace},
        {"best_vs_time", &result.best_vs_time},
        {"best_vs_global", &result.best_vs_global}}) {
    if (!err.empty()) break;
    if (const Value* v = reader.read_object(key)) {
      if (!series_from_json(*v, key, *series, err)) break;
    }
  }

  if (const Value* v = reader.read_object("stats")) {
    ObjectReader stats(*v, "result.stats", err);
    stats.read_uint("iterations", result.stats.iterations);
    stats.read_uint("accepted", result.stats.accepted);
    stats.read_uint("rejected_tabu", result.stats.rejected_tabu);
    stats.read_uint("aspirated", result.stats.aspirated);
    stats.read_uint("early_accepts", result.stats.early_accepts);
    stats.read_uint("trials", result.stats.trials);
    stats.finish();
  }

  reader.read_uint("iterations", result.iterations);
  reader.read_double("makespan", result.makespan);
  std::string stop_reason;
  reader.read_string("stop_reason", stop_reason);
  if (err.empty() && !stop_reason.empty() &&
      !stop_reason_from_name(stop_reason, result.stop_reason)) {
    err = "result.stop_reason: unknown value '" + stop_reason + "'";
  }
  reader.read_bool("converged", result.converged);
  reader.finish();

  if (!err.empty()) {
    if (error != nullptr) *error = err;
    return std::nullopt;
  }
  return result;
}

// -- result cache keying ----------------------------------------------------

bool spec_cacheable(const JobRequest& job) {
  // A wall-clock stop condition makes the outcome depend on machine speed
  // and load; every other stop reason is a pure function of the spec.
  if (job.spec.stop.max_seconds > 0.0) return false;
  // parallel-threaded races real threads (benches use parallel-sim for the
  // deterministic trajectory); every other engine is deterministic per spec.
  return job.spec.engine != "parallel-threaded";
}

std::string cache_key(const JobRequest& job, std::uint64_t circuit_hash) {
  // Canonical form: the content hash pins the circuit *bytes* (the name in
  // the spec only pins the registry entry), and the deadline is zeroed —
  // it changes when a job is killed, never what it computes. spec_to_json
  // emits members in one fixed order, so the dump is canonical.
  JobRequest canonical = job;
  canonical.deadline_seconds = 0.0;
  char hex[17] = {};
  const auto [end, ec] =
      std::to_chars(hex, hex + sizeof(hex), circuit_hash, 16);
  (void)ec;  // 16 digits always fit a u64
  return std::string(hex, end) + "|" + encode_spec(canonical);
}

// -- string conveniences ----------------------------------------------------

std::string encode_spec(const JobRequest& job) { return json::dump(spec_to_json(job)); }

std::optional<JobRequest> decode_spec(std::string_view text, std::string* error) {
  const auto value = json::parse(text, error);
  if (!value) return std::nullopt;
  return spec_from_json(*value, error);
}

std::string encode_result(const solver::SolveResult& result) {
  return json::dump(result_to_json(result));
}

std::optional<solver::SolveResult> decode_result(std::string_view text,
                                                 std::string* error) {
  const auto value = json::parse(text, error);
  if (!value) return std::nullopt;
  return result_from_json(*value, error);
}

}  // namespace pts::service
