// Constructive initial-placement heuristics.
//
// The paper starts tabu search from a random initial solution; the greedy
// constructor is provided as a stronger starting point for the examples and
// for studying sensitivity to initial-solution quality (the paper notes the
// speedup "depends on ... the goodness of the initial solution").
#pragma once

#include "netlist/netlist.hpp"
#include "placement/placement.hpp"
#include "support/rng.hpp"

namespace pts::baselines {

/// Uniformly random placement (the paper's initial solution).
placement::Placement random_placement(const netlist::Netlist& netlist,
                                      const placement::Layout& layout, Rng& rng);

/// Connectivity-driven greedy constructor: seeds with the highest-degree
/// cell, then repeatedly places the unplaced cell most connected to already
/// placed ones into the free slot minimizing distance to its placed
/// neighbors' centroid. O(cells^2) in the worst case — intended for
/// construction, not for the search inner loop.
placement::Placement greedy_placement(const netlist::Netlist& netlist,
                                      const placement::Layout& layout, Rng& rng);

}  // namespace pts::baselines
