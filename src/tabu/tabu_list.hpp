// Short-term memory (the tabu list).
//
// Records the attributes of accepted moves for `tenure` subsequent
// recordings; a candidate move whose attribute is still present is tabu
// unless the aspiration criterion overrides. Two attribute policies:
//
//  - CellPair  : the normalized (a, b) pair is tabu (paper's move reversal
//                prevention);
//  - EitherCell: any move touching a recently moved cell is tabu (a
//                stronger variant exposed for the ablation bench).
//
// The list is serializable because the paper's master and TSWs exchange
// "the best solution as well as the associated tabu list".
#pragma once

#include <cstddef>
#include <deque>
#include <unordered_map>
#include <vector>

#include "tabu/move.hpp"

namespace pts::tabu {

enum class TabuAttribute { CellPair, EitherCell };

class TabuList {
 public:
  explicit TabuList(std::size_t tenure, TabuAttribute attribute = TabuAttribute::CellPair);

  std::size_t tenure() const { return tenure_; }
  TabuAttribute attribute() const { return attribute_; }
  std::size_t size() const { return entries_.size(); }

  /// Records an accepted move; the oldest entry beyond the tenure expires.
  void record(const Move& move);

  bool is_tabu(const Move& move) const;

  void clear();

  /// Serialization for the master <-> TSW exchange (oldest first).
  std::vector<Move> entries() const;
  void assign(const std::vector<Move>& entries);

 private:
  void add_keys(const Move& move);
  void remove_keys(const Move& move);

  std::size_t tenure_;
  TabuAttribute attribute_;
  std::deque<Move> entries_;
  /// Reference counts per attribute key (pairs or single cells).
  std::unordered_map<std::uint64_t, int> counts_;
};

}  // namespace pts::tabu
