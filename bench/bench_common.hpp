// Shared scaffolding for the figure benches.
//
// Every figure binary accepts:
//   --quick        shrink iteration budgets (default: paper-scale budgets)
//   --smoke        seconds-long CI tier: implies --quick, 1 seed, the two
//                  smallest circuits, and iteration budgets clamped by
//                  apply_scale() — proves the harness runs end to end, not
//                  that its curves are meaningful
//   --full         alias for --quick=false (explicit)
//   --circuit c532 restrict to one circuit
//   --seeds N      number of independent seeds averaged per point
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "experiments/speedup.hpp"
#include "experiments/workloads.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

namespace pts::bench {

struct BenchOptions {
  bool quick = false;
  bool smoke = false;
  std::vector<std::string> circuits;
  std::size_t seeds = 2;
};

inline BenchOptions parse_options(int argc, char** argv,
                                  std::size_t default_seeds = 2) {
  set_log_level(LogLevel::Warn);
  const Cli cli(argc, argv);
  BenchOptions options;
  options.smoke = cli.get_flag("smoke");
  options.quick =
      (cli.get_flag("quick") || options.smoke) && !cli.get_flag("full");
  options.seeds = static_cast<std::size_t>(
      cli.get_int("seeds", static_cast<std::int64_t>(default_seeds)));
  if (cli.has("circuit")) {
    options.circuits = {cli.get("circuit", "")};
  } else if (options.smoke) {
    options.circuits = {"highway", "c532"};
  } else {
    options.circuits = experiments::circuit_names();
  }
  // Smoke defaults to a single seed, but an explicit --seeds N still wins.
  if (options.smoke && !cli.has("seeds")) options.seeds = 1;
  return options;
}

/// Clamps a run configuration to smoke budgets. Call after base_config()
/// (and after any per-figure overrides of the iteration counts) on every
/// config a harness is about to run; a no-op outside --smoke.
inline void apply_scale(parallel::PtsConfig& config, const BenchOptions& options) {
  if (!options.smoke) return;
  config.global_iterations = std::min<std::size_t>(config.global_iterations, 2);
  config.local_iterations = std::min<std::size_t>(config.local_iterations, 2);
}

inline void print_header(const char* figure, const char* description) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("Reproduction of: Al-Yamani et al., \"Parallel Tabu Search in a\n");
  std::printf("Heterogeneous Environment\", IPDPS 2003. Virtual-time SimEngine.\n");
  std::printf("================================================================\n");
}

/// Averages `result` metric over seeds for one configuration.
template <typename RunFn>
double mean_over_seeds(std::size_t seeds, std::uint64_t base_seed, RunFn&& run) {
  double total = 0.0;
  for (std::size_t s = 0; s < seeds; ++s) {
    total += run(base_seed + s);
  }
  return total / static_cast<double>(seeds);
}

}  // namespace pts::bench
