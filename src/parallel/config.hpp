// Configuration and result types for the parallel tabu search.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cost/evaluator.hpp"
#include "parallel/policy.hpp"
#include "pvm/machine.hpp"
#include "support/fault.hpp"
#include "support/run_control.hpp"
#include "support/stats.hpp"
#include "tabu/search.hpp"

namespace pts::parallel {

/// Work-unit accounting used by the virtual-time engine and by charge()
/// calls in the threaded engine. The unit is "one candidate trial swap";
/// everything else is expressed relative to it.
struct SimCosts {
  /// Work per CLW trial (apply + evaluate + undo one swap).
  double trial_work = 1.0;
  /// Work per forced diversification swap on the TSW.
  double diversify_work_per_swap = 1.0;
  /// TSW work per candidate examined during selection/tabu testing.
  double tsw_select_work = 0.25;
  /// Master work per TSW report examined during global selection.
  double master_select_work = 0.5;
  /// One-way message latency in virtual seconds (LAN hop).
  double message_latency = 0.02;
  /// Model time-sharing among co-resident tasks (see SimEngine docs). Each
  /// task contributes an *activity weight* to its machine — CLWs compute
  /// almost continuously (1.0), TSWs mostly wait on their CLWs
  /// (tsw_activity), the master is negligible — and every worker on a
  /// machine with total weight W > 1 runs at speed/W.
  bool model_contention = true;
  double tsw_activity = 0.15;
};

/// Parameters of the shared-memory backend ("parallel-shared"). Lives here
/// (not in shared_engine.hpp) so SolveSpec can embed it without pulling the
/// engine into the solver header.
struct SharedParams {
  /// Worker threads sharing the candidate evaluation; clamped to the number
  /// of movable cells (and to >= 1) by the engine. Results are independent
  /// of the thread count (see shared_engine.hpp), so this is purely a
  /// throughput knob.
  std::size_t threads = 4;
  /// Trials claimed per counter grab in the parallel region; 0 picks a
  /// chunk that spreads the level's width over the pool.
  std::size_t chunk = 0;
};

struct PtsConfig {
  /// High-level parallelization degree (multi-search threads).
  std::size_t num_tsws = 4;
  /// Low-level parallelization degree (candidate-list workers per TSW).
  std::size_t clws_per_tsw = 1;
  /// L — tabu iterations each TSW runs per global iteration.
  std::size_t local_iterations = 10;
  /// G — master collect/broadcast rounds.
  std::size_t global_iterations = 10;

  tabu::TabuParams tabu;
  tabu::DiversifyParams diversify;
  cost::CostParams cost;

  /// The emulated cluster (paper: 7 fast / 3 medium / 2 slow).
  pvm::ClusterConfig cluster = pvm::ClusterConfig::paper_cluster();

  /// Collection policy master -> TSWs and TSW -> CLWs. The paper applies
  /// the same rule at both levels (§4.2).
  PolicyParams master_policy;
  PolicyParams tsw_policy;

  SimCosts sim;
  std::uint64_t seed = 1;

  /// When true, every TSW (and its CLWs) draws from the *same* random
  /// stream, so without diversification all TSWs duplicate the same search
  /// exactly. This is the faithful reading of the paper's MPSS
  /// classification — diversification w.r.t. distinct cell ranges is what
  /// makes the search "multiple points" (§4.3) — and is what Figure 9
  /// ablates. Default false: each worker gets an independent stream.
  bool shared_tsw_streams = false;

  /// Real-time throttling for the threaded engine (seconds of sleep per
  /// work unit at speed 1.0); 0 disables.
  double threaded_seconds_per_unit = 0.0;

  /// Scripted TSW stall/death faults replayed by the sim engine (see
  /// support/fault.hpp and SimEngine docs). Empty: the engine takes its
  /// historical fault-free path, bit-identical to the goldens.
  fault::WorkerFaultScript faults;

  /// Convenience: set both collection policies at once.
  void set_policy(CollectionPolicy policy, double threshold = 0.5) {
    master_policy = {policy, threshold};
    tsw_policy = {policy, threshold};
  }
};

struct PtsResult {
  double initial_cost = 0.0;
  double best_cost = 0.0;
  double best_quality = 0.0;
  cost::Objectives best_objectives;
  std::vector<netlist::CellId> best_slots;

  /// Virtual (sim) or wall (threaded) seconds from start to final collect.
  double makespan = 0.0;
  /// Global-best improvement trajectory over time; starts at (0, initial).
  Series best_vs_time;
  /// Global best after each global iteration (x = iteration index).
  Series best_vs_global;
  /// Aggregated TSW statistics.
  tabu::SearchStats stats;
  /// Completed unless a caller-supplied stop condition fired first (stop
  /// checks run at global-iteration granularity in both engines).
  StopReason stop_reason = StopReason::Completed;
  /// TSWs the master declared dead (missed their report deadline) and
  /// whose cell ranges were redistributed; 0 on fault-free runs.
  std::size_t workers_lost = 0;

  /// First time the global best reached `cost_threshold` (-1 if never);
  /// the paper's speedup uses t(1, x) / t(n, x) on this quantity.
  double time_to_cost(double cost_threshold) const {
    return best_vs_time.first_x_reaching(cost_threshold);
  }
};

/// Immutable per-run setup shared by all workers of one search: layout,
/// initial solution, monitored paths, calibrated goals. The stored config
/// has num_tsws / clws_per_tsw clamped to the movable-cell count (and to
/// >= 1): more workers than cells would give some of them empty
/// partition_cells ranges, which sample_move refuses.
struct SearchSetup {
  SearchSetup(const netlist::Netlist& netlist, const PtsConfig& config);

  /// Builds a worker-private evaluator seeded with `slots`.
  std::unique_ptr<cost::Evaluator> make_evaluator(
      const std::vector<netlist::CellId>& slots) const;

  const netlist::Netlist* netlist;
  PtsConfig config;
  placement::Layout layout;
  std::vector<netlist::CellId> initial_slots;
  std::shared_ptr<const timing::PathSet> paths;
  cost::FuzzyGoals goals;
  double initial_cost = 0.0;
};

}  // namespace pts::parallel
