// Unit tests for src/cost: fuzzy memberships, OWA aggregation, goal
// calibration, incremental evaluator consistency.
#include <gtest/gtest.h>

#include "cost/evaluator.hpp"
#include "cost/fuzzy.hpp"
#include "netlist/generator.hpp"
#include "support/rng.hpp"

namespace pts::cost {
namespace {

using netlist::CellId;
using netlist::GeneratorConfig;
using netlist::Netlist;
using placement::Layout;
using placement::Placement;

TEST(Membership, PiecewiseLinearShape) {
  MembershipFn fn{100.0, 0.5};  // goal 100, zero at 150
  EXPECT_DOUBLE_EQ(fn.clamped(50.0), 1.0);
  EXPECT_DOUBLE_EQ(fn.clamped(100.0), 1.0);
  EXPECT_NEAR(fn.clamped(125.0), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(fn.clamped(150.0), 0.0);
  EXPECT_DOUBLE_EQ(fn.clamped(1000.0), 0.0);
}

TEST(Membership, RawExtendsBeyondBand) {
  MembershipFn fn{100.0, 0.5};
  EXPECT_GT(fn.raw(50.0), 1.0);
  EXPECT_LT(fn.raw(200.0), 0.0);
  // raw is monotone decreasing.
  double prev = fn.raw(0.0);
  for (double v = 10.0; v <= 300.0; v += 10.0) {
    const double cur = fn.raw(v);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(FuzzyGoalsTest, OwaBlendsMinAndMean) {
  FuzzyGoals goals;
  goals.fn(Objective::Wirelength) = {1.0, 1.0};
  goals.fn(Objective::Delay) = {1.0, 1.0};
  goals.fn(Objective::Area) = {1.0, 1.0};
  // Memberships: wirelength at goal (mu=1), delay at 1.5 (mu=0.5),
  // area at 2.0 (mu=0).
  const Objectives o{1.0, 1.5, 2.0};
  goals.beta = 1.0;  // pure min
  EXPECT_NEAR(goals.quality(o), 0.0, 1e-12);
  goals.beta = 0.0;  // pure mean
  EXPECT_NEAR(goals.quality(o), 0.5, 1e-12);
  goals.beta = 0.6;
  EXPECT_NEAR(goals.quality(o), 0.4 * 0.5, 1e-12);
}

TEST(FuzzyGoalsTest, CostIsOneMinusRawOwa) {
  FuzzyGoals goals;
  goals.fn(Objective::Wirelength) = {2.0, 1.0};
  goals.fn(Objective::Delay) = {2.0, 1.0};
  goals.fn(Objective::Area) = {2.0, 1.0};
  goals.beta = 0.5;
  const Objectives at_goal{2.0, 2.0, 2.0};
  EXPECT_NEAR(goals.cost(at_goal), 0.0, 1e-12);
  const Objectives worse{4.0, 4.0, 4.0};  // raw mu = 0 each
  EXPECT_NEAR(goals.cost(worse), 1.0, 1e-12);
  // Quality is clamped to [0,1] even far outside the band.
  const Objectives terrible{40.0, 40.0, 40.0};
  EXPECT_DOUBLE_EQ(goals.quality(terrible), 0.0);
  EXPECT_GT(goals.cost(terrible), 1.0);  // raw keeps the gradient
}

TEST(FuzzyGoalsTest, CalibrationPlacesInitialAtRequestedMembership) {
  const Objectives initial{1000.0, 50.0, 200.0};
  const FuzzyGoals goals = FuzzyGoals::calibrate(initial, 0.7, 0.25, 0.6);
  for (std::size_t i = 0; i < kNumObjectives; ++i) {
    EXPECT_NEAR(goals.membership[i].raw(initial.as_array()[i]), 0.25, 1e-9);
  }
  // Cost of the initial solution = 1 - 0.25 regardless of beta (all
  // memberships equal).
  EXPECT_NEAR(goals.cost(initial), 0.75, 1e-9);
  EXPECT_NEAR(goals.quality(initial), 0.25, 1e-9);
}

TEST(FuzzyGoalsTest, CostDecreasesWhenAnyObjectiveImproves) {
  const Objectives initial{1000.0, 50.0, 200.0};
  const FuzzyGoals goals = FuzzyGoals::calibrate(initial, 0.7, 0.25, 0.6);
  Objectives better = initial;
  better.wirelength = 900.0;
  EXPECT_LT(goals.cost(better), goals.cost(initial));
  better = initial;
  better.delay = 45.0;
  EXPECT_LT(goals.cost(better), goals.cost(initial));
  better = initial;
  better.area = 150.0;
  EXPECT_LT(goals.cost(better), goals.cost(initial));
}

// ---------------------------------------------------------------------------
// Evaluator.

struct EvalCase {
  std::size_t gates;
  std::uint64_t seed;
  int swaps;
};

class EvaluatorProperty : public ::testing::TestWithParam<EvalCase> {};

std::unique_ptr<Evaluator> make_eval(const Netlist& nl, const Layout& layout,
                                     std::uint64_t seed, const CostParams& params) {
  Rng rng(seed);
  Placement p = Placement::random(nl, layout, rng);
  auto paths =
      timing::extract_critical_paths(nl, params.num_paths, params.delay_model);
  const FuzzyGoals goals = Evaluator::calibrate_goals(p, *paths, params);
  return std::make_unique<Evaluator>(std::move(p), std::move(paths), params, goals);
}

TEST_P(EvaluatorProperty, SwapUndoRestoresCost) {
  const auto c = GetParam();
  GeneratorConfig config;
  config.num_gates = c.gates;
  config.seed = c.seed;
  const Netlist nl = generate_circuit(config);
  const Layout layout(nl);
  CostParams params;
  auto eval = make_eval(nl, layout, c.seed, params);

  Rng rng(c.seed + 5);
  const double original = eval->cost();
  for (int i = 0; i < c.swaps; ++i) {
    const auto [ia, ib] = rng.distinct_pair(nl.num_movable());
    const CellId a = nl.movable_cells()[ia];
    const CellId b = nl.movable_cells()[ib];
    eval->apply_swap(a, b);
    eval->apply_swap(a, b);
    ASSERT_NEAR(eval->cost(), original, 1e-7) << "swap " << i;
  }
}

TEST_P(EvaluatorProperty, IncrementalObjectivesMatchFreshEvaluator) {
  const auto c = GetParam();
  GeneratorConfig config;
  config.num_gates = c.gates;
  config.seed = c.seed;
  const Netlist nl = generate_circuit(config);
  const Layout layout(nl);
  CostParams params;
  auto eval = make_eval(nl, layout, c.seed, params);

  Rng rng(c.seed + 9);
  for (int i = 0; i < c.swaps; ++i) {
    const auto [ia, ib] = rng.distinct_pair(nl.num_movable());
    eval->apply_swap(nl.movable_cells()[ia], nl.movable_cells()[ib]);
  }
  // Rebuild from the same slots and compare all three objectives.
  placement::Placement fresh_p(nl, layout);
  fresh_p.assign_slots(eval->placement().slots());
  auto paths =
      timing::extract_critical_paths(nl, params.num_paths, params.delay_model);
  Evaluator fresh(std::move(fresh_p), std::move(paths), params, eval->goals());
  const Objectives a = eval->objectives();
  const Objectives b = fresh.objectives();
  EXPECT_NEAR(a.wirelength, b.wirelength, 1e-6);
  EXPECT_NEAR(a.delay, b.delay, 1e-6);
  EXPECT_NEAR(a.area, b.area, 1e-9);
  EXPECT_NEAR(eval->cost(), fresh.cost(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EvaluatorProperty,
                         ::testing::Values(EvalCase{20, 1, 80},
                                           EvalCase{56, 2, 60},
                                           EvalCase{150, 3, 40}));

TEST(Evaluator, PeriodicRebuildKeepsCostStable) {
  GeneratorConfig config;
  config.num_gates = 40;
  config.seed = 21;
  const Netlist nl = generate_circuit(config);
  const Layout layout(nl);
  CostParams params;
  params.rebuild_interval = 16;  // force frequent rebuilds
  auto eval = make_eval(nl, layout, 3, params);
  Rng rng(77);
  double last = eval->cost();
  for (int i = 0; i < 200; ++i) {
    const auto [ia, ib] = rng.distinct_pair(nl.num_movable());
    const CellId a = nl.movable_cells()[ia];
    const CellId b = nl.movable_cells()[ib];
    eval->apply_swap(a, b);
    last = eval->apply_swap(a, b);
  }
  EXPECT_NEAR(last, eval->cost(), 1e-12);
  EXPECT_EQ(eval->swaps_applied(), 400u);
}

TEST(Evaluator, ResetPlacementAdoptsSolution) {
  GeneratorConfig config;
  config.num_gates = 30;
  config.seed = 8;
  const Netlist nl = generate_circuit(config);
  const Layout layout(nl);
  CostParams params;
  auto eval = make_eval(nl, layout, 1, params);

  Rng rng(55);
  Placement other = Placement::random(nl, layout, rng);
  eval->reset_placement(other.slots());
  EXPECT_TRUE(eval->placement() == other);

  // Cost equals a fresh evaluator on the same solution.
  auto paths =
      timing::extract_critical_paths(nl, params.num_paths, params.delay_model);
  Evaluator fresh(std::move(other), std::move(paths), params, eval->goals());
  EXPECT_NEAR(eval->cost(), fresh.cost(), 1e-9);
}

TEST(Evaluator, QualityAndCostAreConsistent) {
  GeneratorConfig config;
  config.num_gates = 25;
  config.seed = 4;
  const Netlist nl = generate_circuit(config);
  const Layout layout(nl);
  CostParams params;
  auto eval = make_eval(nl, layout, 2, params);
  // At calibration: quality = initial_membership, cost = 1 - membership.
  EXPECT_NEAR(eval->quality(), params.initial_membership, 1e-9);
  EXPECT_NEAR(eval->cost(), 1.0 - params.initial_membership, 1e-9);
}

}  // namespace
}  // namespace pts::cost
