// Sequential tabu search engine (Figure 1 of the paper).
//
// One iteration: build a compound move from the candidate list (best of m
// trial pairs per level, up to depth d, early accept on improvement), then
// apply the tabu test — a compound move is tabu iff any of its constituent
// swaps is tabu (documented choice; the paper tests "the move" without
// specifying composition). A tabu move is still accepted when the
// best-cost aspiration criterion fires. Rejected moves are undone and the
// iteration counts as unproductive.
//
// The same engine runs standalone (this header's TabuSearch::run) and as
// the inner loop of every TSW in the parallel engines.
#pragma once

#include <vector>

#include "cost/evaluator.hpp"
#include "support/rng.hpp"
#include "support/run_control.hpp"
#include "support/stats.hpp"
#include "tabu/compound.hpp"
#include "tabu/diversify.hpp"
#include "tabu/tabu_list.hpp"

namespace pts::tabu {

struct TabuParams {
  std::size_t tenure = 10;
  TabuAttribute attribute = TabuAttribute::CellPair;
  CompoundParams compound;
  /// Long-term frequency memory (Off by default; sequential engine only).
  FrequencyParams frequency;
  /// Best-cost aspiration: accept a tabu move that beats the best cost.
  bool aspiration = true;
  /// Number of iterations for standalone runs (TSWs use their local
  /// iteration budget instead).
  std::size_t iterations = 200;
  /// Record cost traces every `trace_stride` iterations (0 disables).
  std::size_t trace_stride = 1;
};

struct SearchStats {
  std::size_t iterations = 0;
  std::size_t accepted = 0;
  std::size_t rejected_tabu = 0;
  std::size_t aspirated = 0;
  std::size_t early_accepts = 0;
  /// Candidate trial swaps probed (width x levels built); the work unit the
  /// strong-scaling counters are expressed in.
  std::size_t trials = 0;

  void merge(const SearchStats& other) {
    iterations += other.iterations;
    accepted += other.accepted;
    rejected_tabu += other.rejected_tabu;
    aspirated += other.aspirated;
    early_accepts += other.early_accepts;
    trials += other.trials;
  }
};

struct SearchResult {
  double best_cost = 0.0;
  double best_quality = 0.0;
  cost::Objectives best_objectives;
  /// Slot assignment (cell ids by slot) of the best solution.
  std::vector<netlist::CellId> best_slots;
  Series cost_trace;  ///< current cost per traced iteration
  Series best_trace;  ///< best cost per traced iteration
  /// Best-so-far vs wall seconds; starts at (0, initial cost), one point per
  /// improvement. The y values are deterministic for a fixed seed; the x
  /// values are wall-clock measurements.
  Series best_vs_time;
  SearchStats stats;
  /// Completed unless a caller-supplied stop condition fired first.
  StopReason stop_reason = StopReason::Completed;
};

/// True iff any constituent swap of `move` is tabu.
bool compound_is_tabu(const TabuList& list, const CompoundMove& move);

/// Records every constituent swap of an accepted compound move.
void record_compound(TabuList& list, const CompoundMove& move);

/// How TabuSearch::iterate builds (and, on tabu rejection, reverts) a
/// compound move. The default forwards to build_compound_move /
/// undo_compound; the shared-memory engine substitutes a strategy that
/// evaluates each level's trials on a thread pool. Implementations must
/// preserve the sequential contract bit for bit: identical RNG consumption
/// order, identical winner per level (first strict minimum in trial index
/// order), and an evaluator state after build/undo bit-identical to the
/// sequential path — that is what keeps every TabuSearch guarantee
/// (same-seed determinism, trace parity) independent of the strategy.
class CompoundStrategy {
 public:
  virtual ~CompoundStrategy() = default;

  virtual void build(cost::Evaluator& eval, const CellRange& range,
                     const CompoundParams& params, Rng& rng,
                     const FrequencyMemory* memory, CompoundMove* out) {
    build_compound_move(eval, range, params, rng, memory, out);
  }

  virtual void undo(cost::Evaluator& eval, const CompoundMove& move) {
    undo_compound(eval, move);
  }
};

class TabuSearch {
 public:
  /// The evaluator carries the current solution; the search mutates it.
  TabuSearch(cost::Evaluator& eval, const TabuParams& params, Rng rng);

  /// Runs `params.iterations` iterations over the full cell range.
  SearchResult run();

  /// Like run(), but honors caller stop conditions (checked before every
  /// iteration against wall time) and streams progress to the observer.
  /// Checks and callbacks are read-only: a run whose conditions never fire
  /// is bit-identical to run().
  SearchResult run(const RunControl& control);

  /// One tabu iteration restricted to `range`; used by the parallel TSWs.
  /// Returns true if the compound move was accepted.
  bool iterate(const CellRange& range);

  double best_cost() const { return best_cost_; }
  const std::vector<netlist::CellId>& best_slots() const { return best_slots_; }
  const SearchStats& stats() const { return stats_; }
  TabuList& tabu_list() { return list_; }
  const FrequencyMemory& frequency_memory() const { return frequency_; }
  cost::Evaluator& evaluator() { return *eval_; }
  Rng& rng() { return rng_; }

  /// Re-syncs the best-so-far bookkeeping after the caller replaced the
  /// evaluator's solution (broadcast of a new global best).
  void note_external_solution();

  /// Complete search-side state for checkpoint/restore: RNG stream, tabu
  /// list, long-term memory, best-so-far bookkeeping, and counters. The
  /// evaluator's state is captured separately (Evaluator::checkpoint).
  struct State {
    Rng::State rng;
    std::vector<Move> tabu_entries;
    FrequencyMemory::State frequency;
    double best_cost = 0.0;
    double best_quality = 0.0;
    cost::Objectives best_objectives;
    std::vector<netlist::CellId> best_slots;
    SearchStats stats;
  };

  State state() const;

  /// Restores a state() image taken from a search over the same netlist
  /// and params. run() then continues from stats.iterations, producing the
  /// exact trajectory the interrupted run would have produced.
  void restore(const State& st);

  /// Overrides how iterate() builds/undoes compound moves (not owned; null
  /// restores the default). See CompoundStrategy for the contract.
  void set_compound_strategy(CompoundStrategy* strategy) {
    strategy_ = strategy;
  }

 private:
  void update_best();

  CompoundStrategy& strategy() {
    return strategy_ != nullptr ? *strategy_ : default_strategy_;
  }

  cost::Evaluator* eval_;
  TabuParams params_;
  Rng rng_;
  TabuList list_;
  FrequencyMemory frequency_;
  double best_cost_;
  double best_quality_;
  cost::Objectives best_objectives_;
  std::vector<netlist::CellId> best_slots_;
  SearchStats stats_;
  CompoundMove move_scratch_;  ///< reused per-iteration move buffer
  CompoundStrategy default_strategy_;
  CompoundStrategy* strategy_ = nullptr;  ///< not owned; null = default
};

}  // namespace pts::tabu
