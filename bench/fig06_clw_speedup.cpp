// Figure 6 — Speedup in reaching a solution of cost less than x for
// different numbers of CLWs.
//
// Paper setup: 4 TSWs fixed, CLWs swept 1..4, speedup defined as
// t(1,x)/t(n,x) with x a fixed quality threshold; two circuits shown.
// Expected shape: speedup grows with CLWs, steeper for larger circuits.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pts;
  auto options = bench::parse_options(argc, argv);
  // The paper plots two circuits; default to one small + one large (smoke
  // keeps the small pair parse_options selected).
  const Cli cli(argc, argv);
  if (!cli.has("circuit") && !options.smoke) {
    options.circuits = {"c532", "c3540"};
  }
  bench::print_header("Figure 6", "speedup vs #CLWs (t(1,x)/t(n,x))");

  std::vector<Series> speedups;
  std::vector<Series> times;
  for (const auto& name : options.circuits) {
    const auto& circuit = experiments::circuit(name);
    auto config = experiments::base_config(circuit, 42, options.quick);
    config.num_tsws = 4;
    bench::apply_scale(config, options);
    const auto m = experiments::measure_speedup(
        circuit, config, experiments::VaryWorkers::Clws, {1, 2, 3, 4},
        /*improvement_fraction=*/0.7, options.seeds);
    Series s = m.speedup;
    s.name = name;
    speedups.push_back(std::move(s));
    Series t = m.time_to_threshold;
    t.name = name;
    times.push_back(std::move(t));
    std::printf("threshold cost for %s: %.4f\n", name.c_str(), m.threshold_cost);
  }

  emit_table("Fig 6: speedup t(1,x)/t(n,x) vs #CLWs (4 TSWs)",
             series_table("clws", speedups, 3));
  emit_table("Fig 6 (support): virtual time to reach x vs #CLWs",
             series_table("clws", times, 2));
  return 0;
}
