#include "placement/placement.hpp"

#include <algorithm>
#include <cmath>

namespace pts::placement {

using netlist::CellId;

Placement::Placement(const netlist::Netlist& netlist, const Layout& layout)
    : netlist_(&netlist), topology_(&netlist.topology()), layout_(&layout) {
  PTS_CHECK_MSG(layout.num_slots() == netlist.num_movable(),
                "layout must be derived from the same netlist");
  slot_of_.assign(netlist.num_cells(), kNoSlot);
  cell_at_.assign(layout.num_slots(), netlist::kNoCell);
  pos_x_.assign(netlist.num_cells(), 0.0);
  pos_y_.assign(netlist.num_cells(), 0.0);
  row_extent_.assign(layout.num_rows(), 0.0);

  // Pad positions never change; fix them once so position() is a plain
  // two-array load for every cell kind.
  for (const CellId pad : netlist.pad_cells()) {
    const Point p = layout.pad_position(pad);
    pos_x_[pad] = p.x;
    pos_y_[pad] = p.y;
  }

  const auto& movable = netlist.movable_cells();
  for (std::size_t k = 0; k < movable.size(); ++k) {
    slot_of_[movable[k]] = static_cast<SlotId>(k);
    cell_at_[k] = movable[k];
  }
  rebuild_all_rows();
}

Placement Placement::random(const netlist::Netlist& netlist, const Layout& layout,
                            Rng& rng) {
  Placement p(netlist, layout);
  std::vector<CellId> order = netlist.movable_cells();
  rng.shuffle(order);
  p.assign_slots(order);
  return p;
}

void Placement::assign_slots(const std::vector<CellId>& cell_at_slot) {
  PTS_CHECK(cell_at_slot.size() == cell_at_.size());
  std::fill(slot_of_.begin(), slot_of_.end(), kNoSlot);
  for (SlotId s = 0; s < cell_at_slot.size(); ++s) {
    const CellId c = cell_at_slot[s];
    PTS_CHECK(c < slot_of_.size());
    PTS_CHECK_MSG(netlist_->cell(c).movable(), "pads cannot occupy slots");
    PTS_CHECK_MSG(slot_of_[c] == kNoSlot, "cell placed twice");
    slot_of_[c] = s;
  }
  cell_at_ = cell_at_slot;
  rebuild_all_rows();
}

void Placement::rescan_max_extent() {
  // First-max semantics, same value std::max_element would report.
  max_extent_ = row_extent_[0];
  max_extent_row_ = 0;
  for (std::size_t row = 1; row < row_extent_.size(); ++row) {
    if (row_extent_[row] > max_extent_) {
      max_extent_ = row_extent_[row];
      max_extent_row_ = row;
    }
  }
}

void Placement::rebuild_row(std::size_t row) {
  const std::size_t count = layout_->slots_in_row(row);
  const double y = layout_->row_y(row);
  double x = 0.0;
  for (std::size_t col = 0; col < count; ++col) {
    const CellId cell = cell_at_[layout_->slot_at(row, col)];
    const double w = topology_->cell_width(cell);
    pos_x_[cell] = x + 0.5 * w;
    pos_y_[cell] = y;
    x += w;
  }
  row_extent_[row] = x;
  // Keep the cached max exact. Invariant: row_extent_[max_extent_row_] ==
  // max_extent_ == max over all rows. A row growing past the max takes the
  // crown; the crown row shrinking forces one O(rows) rescan (rare — only
  // unequal-width swaps touching the widest row); a tie with the max needs
  // nothing (the crown row still holds it).
  if (x > max_extent_) {
    max_extent_ = x;
    max_extent_row_ = row;
  } else if (row == max_extent_row_ && x < max_extent_) {
    rescan_max_extent();
  }
}

void Placement::rebuild_all_rows() {
  for (std::size_t row = 0; row < layout_->num_rows(); ++row) rebuild_row(row);
  rescan_max_extent();
}

void Placement::swap_cells(CellId a, CellId b, std::vector<CellId>* moved_cells) {
  PTS_DCHECK(a != b);
  PTS_DCHECK(topology_->cell_movable(a) && topology_->cell_movable(b));
  const SlotId sa = slot_of_[a];
  const SlotId sb = slot_of_[b];
  const std::size_t ra = layout_->row_of_slot(sa);
  const std::size_t rb = layout_->row_of_slot(sb);

  slot_of_[a] = sb;
  slot_of_[b] = sa;
  cell_at_[sa] = b;
  cell_at_[sb] = a;

  // Exact int-to-double widths from the SoA array; equality is preserved.
  const double wa = topology_->cell_width(a);
  const double wb = topology_->cell_width(b);
  if (wa == wb) {
    // Equal widths: only a and b move; their centers trade places (the
    // cells trade slots, so they trade row y coordinates too).
    std::swap(pos_x_[a], pos_x_[b]);
    std::swap(pos_y_[a], pos_y_[b]);
    if (moved_cells != nullptr) {
      moved_cells->push_back(a);
      moved_cells->push_back(b);
    }
    return;
  }

  // Unequal widths: every cell at or after the smaller affected column in
  // each touched row may shift. Collect moved cells before rebuilding.
  if (moved_cells != nullptr) {
    const std::size_t col_a = layout_->column_of_slot(sa);
    const std::size_t col_b = layout_->column_of_slot(sb);
    auto collect_from = [&](std::size_t row, std::size_t first_col) {
      const std::size_t count = layout_->slots_in_row(row);
      for (std::size_t col = first_col; col < count; ++col) {
        moved_cells->push_back(cell_at_[layout_->slot_at(row, col)]);
      }
    };
    if (ra == rb) {
      collect_from(ra, std::min(col_a, col_b));
    } else {
      collect_from(ra, col_a);
      collect_from(rb, col_b);
    }
  }
  rebuild_row(ra);
  if (rb != ra) rebuild_row(rb);
}

void Placement::check_consistent() const {
  // Bijection between movable cells and slots.
  std::vector<char> seen(cell_at_.size(), 0);
  for (SlotId s = 0; s < cell_at_.size(); ++s) {
    const CellId c = cell_at_[s];
    PTS_CHECK(c != netlist::kNoCell);
    PTS_CHECK(netlist_->cell(c).movable());
    PTS_CHECK(slot_of_[c] == s);
    PTS_CHECK(!seen[s]);
    seen[s] = 1;
  }
  for (CellId c = 0; c < slot_of_.size(); ++c) {
    if (netlist_->cell(c).movable()) {
      PTS_CHECK(slot_of_[c] != kNoSlot);
    } else {
      PTS_CHECK(slot_of_[c] == kNoSlot);
    }
  }
  // Geometry matches a from-scratch rebuild.
  Placement fresh(*netlist_, *layout_);
  fresh.assign_slots(cell_at_);
  for (CellId c : netlist_->movable_cells()) {
    PTS_CHECK(std::abs(fresh.pos_x_[c] - pos_x_[c]) < 1e-9);
    PTS_CHECK(fresh.pos_y_[c] == pos_y_[c]);
  }
  for (std::size_t row = 0; row < layout_->num_rows(); ++row) {
    PTS_CHECK(std::abs(fresh.row_extent_[row] - row_extent_[row]) < 1e-9);
  }
  // The cached max the cost model reads must be the max a fresh scan finds.
  PTS_CHECK(max_extent_ ==
            *std::max_element(row_extent_.begin(), row_extent_.end()));
  PTS_CHECK(max_extent_row_ < row_extent_.size());
  PTS_CHECK(row_extent_[max_extent_row_] == max_extent_);
}

}  // namespace pts::placement
