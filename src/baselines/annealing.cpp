#include "baselines/annealing.hpp"

#include <cmath>

#include "support/stopwatch.hpp"
#include "tabu/candidate.hpp"

namespace pts::baselines {

AnnealResult anneal(cost::Evaluator& eval, const AnnealParams& params, Rng& rng,
                    const RunControl& control) {
  const auto& netlist = eval.placement().netlist();
  const std::span<const netlist::CellId> movable = netlist.movable_cells();
  const tabu::CellRange range = tabu::full_range(netlist);
  const std::size_t moves_per_temp =
      params.moves_per_temp > 0 ? params.moves_per_temp
                                : 10 * netlist.num_movable();

  // Auto-tune T0: sample uphill deltas from trial swaps, pick T0 so the
  // target fraction of them would be accepted (Metropolis).
  double uphill_sum = 0.0;
  std::size_t uphill_count = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    const auto move = tabu::sample_move(movable, range, rng);
    const double before = eval.cost();
    const double after = eval.probe_swap(move.a, move.b);
    if (after > before) {
      uphill_sum += after - before;
      ++uphill_count;
    }
  }
  const double mean_uphill =
      uphill_count > 0 ? uphill_sum / static_cast<double>(uphill_count) : 1e-3;
  double temperature = -mean_uphill / std::log(params.initial_acceptance);
  const double final_temperature = temperature * params.final_temp_ratio;

  AnnealResult result;
  result.best_trace.name = "sa_best";
  result.best_vs_time.name = "best_vs_time";
  double current = eval.cost();
  result.best_cost = current;
  result.best_slots = eval.placement().slots();
  result.best_quality = eval.quality();

  const Stopwatch watch;
  result.best_vs_time.add(0.0, result.best_cost);
  std::size_t temp_step = 0;
  bool stopped = false;
  while (!stopped && temperature > final_temperature) {
    for (std::size_t i = 0; i < moves_per_temp; ++i) {
      if (const auto reason = control.should_stop(
              result.moves_tried,
              control.needs_clock() ? watch.seconds() : 0.0, result.best_cost,
              result.best_quality)) {
        result.stop_reason = *reason;
        stopped = true;
        break;
      }
      const auto move = tabu::sample_move(movable, range, rng);
      const double after = eval.probe_swap(move.a, move.b);
      ++result.moves_tried;
      const double delta = after - current;
      if (delta <= 0.0 || rng.uniform() < std::exp(-delta / temperature)) {
        // Accept: promote the probe (one incremental pass total). A reject
        // costs nothing further — the probe never touched committed state.
        current = eval.commit_probe();
        ++result.moves_accepted;
        if (current < result.best_cost) {
          result.best_cost = current;
          result.best_slots = eval.placement().slots();
          result.best_quality = eval.quality();
          // Observation only — the clock read cannot perturb the walk.
          result.best_vs_time.add(watch.seconds(), result.best_cost);
          if (control.observer != nullptr) {
            control.notify_improvement({result.moves_tried, watch.seconds(),
                                        current, result.best_cost});
          }
        }
      }
    }
    if (stopped) break;
    if (params.trace_stride != 0 && temp_step % params.trace_stride == 0) {
      result.best_trace.add(static_cast<double>(temp_step), result.best_cost);
    }
    if (control.observer != nullptr) {
      control.notify_iteration(
          {result.moves_tried, watch.seconds(), current, result.best_cost});
    }
    temperature *= params.cooling;
    ++temp_step;
  }
  return result;
}

}  // namespace pts::baselines
