// Thread-safe per-task message queue.
//
// recv() blocks until a message with a matching tag arrives (kAnyTag
// matches everything, like pvm_recv(-1, -1)); probe() is the non-blocking
// test. close() wakes all blocked receivers — a closed, drained mailbox
// returns std::nullopt from recv, which is how tasks learn the VM is
// shutting down.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "pvm/message.hpp"
#include "support/fault.hpp"

namespace pts::pvm {

inline constexpr int kAnyTag = -1;

class Mailbox {
 public:
  /// Enqueues a message (no-op if the mailbox is closed).
  ///
  /// With a fault plan attached (set_fault_plan), each delivery first draws
  /// a decision: Drop discards the message silently, Delay holds it back
  /// until the next passed delivery (so a delayed message arrives *after* a
  /// later one — reordering). Messages still held at close() are lost.
  void deliver(Message message);

  /// Attaches a fault plan for message drop/delay injection (nullptr
  /// detaches). Not thread-safe against concurrent deliver(): attach before
  /// the producing threads start.
  void set_fault_plan(fault::FaultPlan* plan) { fault_plan_ = plan; }

  /// Blocks for the first message whose tag matches `tag` (FIFO within the
  /// matching subset). Returns nullopt only when closed and no matching
  /// message remains.
  std::optional<Message> recv(int tag = kAnyTag);

  /// Non-blocking: true if a matching message is queued.
  bool probe(int tag = kAnyTag) const;

  /// Non-blocking receive.
  std::optional<Message> try_recv(int tag = kAnyTag);

  std::size_t pending() const;

  void close();
  bool closed() const;

 private:
  std::optional<Message> pop_matching_locked(int tag);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  std::deque<Message> delayed_;  ///< held back by fault injection
  fault::FaultPlan* fault_plan_ = nullptr;
  bool closed_ = false;
};

}  // namespace pts::pvm
