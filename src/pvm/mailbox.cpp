#include "pvm/mailbox.hpp"

namespace pts::pvm {

void Mailbox::deliver(Message message) {
  if (fault_plan_ != nullptr) {
    switch (fault_plan_->on_message()) {
      case fault::FaultPlan::MessageDecision::Drop:
        return;
      case fault::FaultPlan::MessageDecision::Delay: {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!closed_) delayed_.push_back(std::move(message));
        return;  // released by the next passed delivery
      }
      case fault::FaultPlan::MessageDecision::Pass:
        break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return;
    queue_.push_back(std::move(message));
    if (!delayed_.empty()) {
      queue_.push_back(std::move(delayed_.front()));
      delayed_.pop_front();
    }
  }
  cv_.notify_all();
}

std::optional<Message> Mailbox::pop_matching_locked(int tag) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (tag == kAnyTag || it->tag() == tag) {
      Message m = std::move(*it);
      queue_.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

std::optional<Message> Mailbox::recv(int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (auto m = pop_matching_locked(tag)) return m;
    if (closed_) return std::nullopt;
    cv_.wait(lock);
  }
}

bool Mailbox::probe(int tag) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& m : queue_) {
    if (tag == kAnyTag || m.tag() == tag) return true;
  }
  return false;
}

std::optional<Message> Mailbox::try_recv(int tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  return pop_matching_locked(tag);
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void Mailbox::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool Mailbox::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

}  // namespace pts::pvm
