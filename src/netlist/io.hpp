// Text serialization of netlists (".net" format).
//
// The format is line-oriented and human-editable:
//
//   # comment
//   circuit <name>
//   pi <name>
//   po <name>
//   gate <name> <width> <intrinsic_delay> <load_factor>
//   net <name> <weight> <driver> <sink> [<sink> ...]
//
// Cells must be declared before the nets that reference them. write/parse
// round-trip exactly (same ids, same pin order, bit-identical doubles —
// write_netlist prints shortest-round-trip decimals).
//
// Parsing untrusted bytes goes through the try_* entry points: they
// validate everything the NetlistBuilder would PTS_CHECK-abort on
// (duplicate names, double-driven nets, self-loops, dangling cells,
// combinational cycles, non-finite numerics) *before* construction and
// report failures as an error string naming the offending line — a bad
// .net stream is an error, never process death. The non-try wrappers keep
// the historical abort-on-error contract for trusted in-process data.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "netlist/netlist.hpp"

namespace pts::netlist {

void write_netlist(const Netlist& netlist, std::ostream& os);
std::string to_net_format(const Netlist& netlist);

/// Outcome of a fallible parse/load. ok() iff `netlist` is engaged; on
/// failure `error` describes the first problem (with its 1-based line
/// number for parse errors).
struct ParseResult {
  std::optional<Netlist> netlist;
  std::string error;

  bool ok() const { return netlist.has_value(); }
};

/// Parses the `.net` format without ever aborting: every malformed line,
/// structural violation, or non-finite numeric becomes ParseResult::error.
ParseResult try_parse_netlist(std::istream& is);
ParseResult try_parse_netlist_string(const std::string& text);
ParseResult try_load_netlist_file(const std::string& path);

/// Writes `netlist` to `path`. Returns an empty string on success, an
/// error message (unopenable path, write failure) otherwise.
std::string try_save_netlist_file(const Netlist& netlist, const std::string& path);

/// Abort-on-error wrappers over the try_* parsers (trusted input only;
/// PTS_CHECK-fails with the offending line in the message).
Netlist parse_netlist(std::istream& is);
Netlist parse_netlist_string(const std::string& text);

void save_netlist_file(const Netlist& netlist, const std::string& path);
Netlist load_netlist_file(const std::string& path);

/// Order-sensitive FNV-1a over the full circuit content: name, every cell
/// (name, kind, width, delay/load bits), every net (name, weight bits,
/// driver, sink order). Two netlists hash equal iff their canonical .net
/// serializations match bit for bit — the circuit half of the serving
/// layer's result-cache key.
std::uint64_t content_hash(const Netlist& netlist);

}  // namespace pts::netlist
