// Determinism guard: two TabuSearch runs with the same seed must produce
// bit-identical cost trajectories, best costs, and best slot assignments.
// Every future parallel/perf refactor is validated against this invariant.
#include <gtest/gtest.h>

#include <memory>

#include "cost/evaluator.hpp"
#include "netlist/generator.hpp"
#include "tabu/search.hpp"

namespace pts::tabu {
namespace {

using netlist::GeneratorConfig;
using netlist::Netlist;
using placement::Layout;
using placement::Placement;

Netlist circuit(std::size_t gates = 60, std::uint64_t seed = 11) {
  GeneratorConfig config;
  config.num_gates = gates;
  config.seed = seed;
  return generate_circuit(config);
}

std::unique_ptr<cost::Evaluator> make_eval(const Netlist& nl, const Layout& layout,
                                           std::uint64_t seed) {
  cost::CostParams params;
  Rng rng(seed);
  Placement p = Placement::random(nl, layout, rng);
  auto paths =
      timing::extract_critical_paths(nl, params.num_paths, params.delay_model);
  const auto goals = cost::Evaluator::calibrate_goals(p, *paths, params);
  return std::make_unique<cost::Evaluator>(std::move(p), std::move(paths), params,
                                           goals);
}

SearchResult run_once(const Netlist& nl, std::uint64_t eval_seed,
                      std::uint64_t search_seed, const TabuParams& params) {
  const Layout layout(nl);
  auto eval = make_eval(nl, layout, eval_seed);
  TabuSearch search(*eval, params, Rng(search_seed));
  return search.run();
}

// Exact (bit-level) equality on purpose: any drift, however small, means a
// hidden source of nondeterminism crept into the engine.
void expect_bit_identical(const Series& a, const Series& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.x[i], b.x[i]) << "trace x diverges at index " << i;
    EXPECT_EQ(a.y[i], b.y[i]) << "trace y diverges at index " << i;
  }
}

TEST(DeterminismTest, SameSeedSameTrajectory) {
  const Netlist nl = circuit();
  TabuParams params;
  params.iterations = 120;
  params.trace_stride = 1;

  const SearchResult r1 = run_once(nl, 3, 7, params);
  const SearchResult r2 = run_once(nl, 3, 7, params);

  EXPECT_EQ(r1.best_cost, r2.best_cost);
  EXPECT_EQ(r1.best_quality, r2.best_quality);
  EXPECT_EQ(r1.best_slots, r2.best_slots);
  expect_bit_identical(r1.cost_trace, r2.cost_trace);
  expect_bit_identical(r1.best_trace, r2.best_trace);
  EXPECT_EQ(r1.stats.accepted, r2.stats.accepted);
  EXPECT_EQ(r1.stats.rejected_tabu, r2.stats.rejected_tabu);
  EXPECT_EQ(r1.stats.aspirated, r2.stats.aspirated);
}

TEST(DeterminismTest, DifferentSearchSeedsDiverge) {
  // Sanity check that the guard above is not vacuous: different search
  // seeds should explore different trajectories on a non-trivial circuit.
  const Netlist nl = circuit();
  TabuParams params;
  params.iterations = 120;
  params.trace_stride = 1;

  const SearchResult r1 = run_once(nl, 3, 7, params);
  const SearchResult r2 = run_once(nl, 3, 8, params);

  bool diverged = r1.cost_trace.size() != r2.cost_trace.size();
  for (std::size_t i = 0; !diverged && i < r1.cost_trace.size(); ++i) {
    diverged = r1.cost_trace.y[i] != r2.cost_trace.y[i];
  }
  EXPECT_TRUE(diverged) << "distinct seeds produced identical trajectories";
}

TEST(DeterminismTest, FrequencyMemoryRunsAreAlsoDeterministic) {
  // The long-term frequency memory path has its own bookkeeping; make sure
  // it is covered by the same-seed guarantee too.
  const Netlist nl = circuit(40, 13);
  TabuParams params;
  params.iterations = 80;
  params.trace_stride = 1;
  params.frequency.mode = LongTermMode::Diversify;

  const SearchResult r1 = run_once(nl, 5, 9, params);
  const SearchResult r2 = run_once(nl, 5, 9, params);

  EXPECT_EQ(r1.best_cost, r2.best_cost);
  EXPECT_EQ(r1.best_slots, r2.best_slots);
  expect_bit_identical(r1.cost_trace, r2.cost_trace);
}

}  // namespace
}  // namespace pts::tabu
