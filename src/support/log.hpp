// Minimal thread-safe leveled logger.
//
// Parallel engines tag each line with the emitting task's name so traces of
// master/TSW/CLW interleavings stay readable. Logging defaults to `Info`;
// benches turn it down to `Warn` to keep table output clean.
#pragma once

#include <sstream>
#include <string>

namespace pts {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line (thread-safe, single write to stderr).
void log_line(LogLevel level, const std::string& tag, const std::string& message);

namespace detail {

class LogStream {
 public:
  LogStream(LogLevel level, std::string tag) : level_(level), tag_(std::move(tag)) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log_line(level_, tag_, out_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    out_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string tag_;
  std::ostringstream out_;
};

}  // namespace detail

inline detail::LogStream log_trace(std::string tag = {}) {
  return {LogLevel::Trace, std::move(tag)};
}
inline detail::LogStream log_debug(std::string tag = {}) {
  return {LogLevel::Debug, std::move(tag)};
}
inline detail::LogStream log_info(std::string tag = {}) {
  return {LogLevel::Info, std::move(tag)};
}
inline detail::LogStream log_warn(std::string tag = {}) {
  return {LogLevel::Warn, std::move(tag)};
}
inline detail::LogStream log_error(std::string tag = {}) {
  return {LogLevel::Error, std::move(tag)};
}

}  // namespace pts
