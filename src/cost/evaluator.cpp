#include "cost/evaluator.hpp"

#include "placement/overlay.hpp"

namespace pts::cost {

using netlist::CellId;

Evaluator::Evaluator(placement::Placement placement,
                     std::shared_ptr<const timing::PathSet> paths,
                     const CostParams& params, const FuzzyGoals& goals)
    : placement_(std::move(placement)),
      paths_(std::move(paths)),
      params_(params),
      goals_(goals),
      hpwl_(placement_),
      timer_(paths_, hpwl_, params.delay_model),
      marker_(placement_.netlist().num_nets()),
      topology_(&placement_.netlist().topology()) {
  PTS_CHECK(params_.rebuild_interval >= 1);
  // Size every scratch buffer to its worst case up front so that neither
  // probe_swap nor apply_swap/commit_probe allocates in steady state
  // (asserted by topology_test's allocation-counting guard).
  moved_scratch_.reserve(placement_.netlist().num_cells());
  change_scratch_.reserve(placement_.netlist().num_nets());
  box_scratch_.reserve(placement_.netlist().num_nets());
}

Objectives Evaluator::objectives() const {
  Objectives o;
  o.wirelength = hpwl_.total();
  o.delay = timer_.max_delay();
  o.area = placement_.max_row_extent() * placement_.layout().core_height();
  return o;
}

double Evaluator::apply_swap(CellId a, CellId b) {
  probe_valid_ = false;
  moved_scratch_.clear();
  placement_.swap_cells(a, b, &moved_scratch_);
  refresh_shadow(moved_scratch_);

  marker_.begin();
  for (CellId cell : moved_scratch_) marker_.add_nets_of(*topology_, cell);

  change_scratch_.clear();
  hpwl_.update_nets(marker_.nets(), &change_scratch_);
  for (const auto& change : change_scratch_) {
    timer_.apply_net_change(change.net, change.old_hpwl, change.new_hpwl);
  }

  ++swaps_applied_;
  if (++swaps_since_rebuild_ >= params_.rebuild_interval) rebuild_all();
  return cost();
}

double Evaluator::probe_swap(CellId a, CellId b) {
  // Same pass as apply_swap up to and including box recomputation, but the
  // new boxes, the HPWL delta, and the path sums land in scratch; the
  // geometry swap is reverted before returning (swap_cells is an exact
  // involution), so no observable state changes.
  moved_scratch_.clear();
  placement_.swap_cells(a, b, &moved_scratch_);

  marker_.begin();
  for (CellId cell : moved_scratch_) marker_.add_nets_of(*topology_, cell);

  change_scratch_.clear();
  probe_delta_ = hpwl_.probe_nets(marker_.nets(), &box_scratch_, &change_scratch_);

  // Mirror objectives()/cost() term by term: `total_ + delta` is the exact
  // expression update_nets() folds into the running total, and peek_delta
  // replays the apply_net_change/max_delay sequence on scratch sums.
  Objectives o;
  o.wirelength = hpwl_.total() + probe_delta_;
  o.delay = timer_.peek_delta(change_scratch_);
  o.area = placement_.max_row_extent() * placement_.layout().core_height();
  const double probed_cost = goals_.cost(o);

  placement_.swap_cells(a, b);  // restore geometry
  probe_a_ = a;
  probe_b_ = b;
  probe_valid_ = true;
  return probed_cost;
}

void Evaluator::probe_batch(std::span<const Move> moves,
                            std::span<double> costs) {
  PTS_DCHECK(costs.size() == moves.size());
  // A batch leaves no pending probe (its scratch is per-candidate, not
  // per-pair); winners commit through commit_swap's apply_swap fallback,
  // which is bit-identical by contract.
  probe_valid_ = false;

  // The timing replay only folds nets that lie on a monitored path; any
  // other net's NetChange is an exact no-op in peek_delta's sum (its
  // paths_of_net slice is empty — no arithmetic, not even a +0.0). Keeping
  // only path-relevant changes therefore leaves every delay bit unchanged
  // while giving the concatenated buffer a true static bound —
  // width × num_path_nets — so steady state never reallocates, matching
  // the ctor's worst-case-up-front sizing contract. (The unfiltered bound
  // would be width × num_nets, content-dependent in practice: one unlucky
  // batch past the high-water mark would allocate mid-search.)
  const timing::PathSet& pset = timer_.paths();
  const std::size_t max_changes = moves.size() * pset.num_path_nets();
  if (batch_changes_.capacity() < max_changes) {
    batch_changes_.reserve(max_changes);
  }
  const auto px = placement_.positions_x();
  const auto py = placement_.positions_y();
  if (shadow_x_.empty()) {
    // Lazy materialization: this call is the shadow's warm-up.
    shadow_x_.assign(px.begin(), px.end());
    shadow_y_.assign(py.begin(), py.end());
  }

  batch_changes_.clear();
  batch_offsets_.clear();
  batch_offsets_.push_back(0);
  batch_objs_.resize(moves.size());
  const double area_scale = placement_.layout().core_height();

  for (std::size_t i = 0; i < moves.size(); ++i) {
    // Swap-free scoring: describe the would-be geometry as an overlay, mark
    // the touched nets in the exact order a real swap would report moved
    // cells, stage the overlaid coordinates of those cells into the shadow
    // arrays (O(moved) writes), and recompute the touched boxes with the
    // plain-load kernel. The shadow is restored to the committed positions
    // before the next candidate.
    moved_scratch_.clear();
    const placement::SwapOverlay ov = placement::build_swap_overlay(
        placement_, moves[i].a, moves[i].b, &moved_scratch_);
    marker_.begin();
    for (CellId cell : moved_scratch_) marker_.add_nets_of(*topology_, cell);
    for (CellId cell : moved_scratch_) {
      placement::overlaid_position(ov, cell, px[cell], py[cell],
                                   &shadow_x_[cell], &shadow_y_[cell]);
    }

    change_scratch_.clear();
    const double delta = hpwl_.probe_nets_batch(shadow_x_, shadow_y_,
                                                marker_.nets(),
                                                &change_scratch_);
    for (CellId cell : moved_scratch_) {
      shadow_x_[cell] = px[cell];
      shadow_y_[cell] = py[cell];
    }
    for (const auto& change : change_scratch_) {
      if (pset.net_on_path(change.net)) batch_changes_.push_back(change);
    }
    batch_offsets_.push_back(static_cast<std::uint32_t>(batch_changes_.size()));
    batch_objs_[i].wirelength = hpwl_.total() + delta;
    batch_objs_[i].area = ov.max_extent * area_scale;
  }

  batch_delays_.resize(moves.size());
  timer_.peek_delta_batch(batch_changes_, batch_offsets_, batch_delays_);
  for (std::size_t i = 0; i < moves.size(); ++i) {
    batch_objs_[i].delay = batch_delays_[i];
  }
  goals_.cost_batch(batch_objs_, costs);
}

double Evaluator::commit_probe() {
  PTS_CHECK_MSG(probe_valid_,
                "commit_probe() without an immediately preceding probe_swap()");
  probe_valid_ = false;
  placement_.swap_cells(probe_a_, probe_b_);
  // moved_scratch_ still holds the probe's moved set (the probe's restoring
  // swap did not refill it, and probe_valid_ guarantees no intervening
  // mutation) — the same cells just moved again.
  refresh_shadow(moved_scratch_);
  hpwl_.commit_probe(marker_.nets(), box_scratch_, probe_delta_);
  timer_.commit_peek();

  ++swaps_applied_;
  if (++swaps_since_rebuild_ >= params_.rebuild_interval) rebuild_all();
  return cost();
}

double Evaluator::commit_swap(CellId a, CellId b) {
  const bool pending = probe_valid_ && ((probe_a_ == a && probe_b_ == b) ||
                                        (probe_a_ == b && probe_b_ == a));
  return pending ? commit_probe() : apply_swap(a, b);
}

void Evaluator::reset_placement(const std::vector<CellId>& cell_at_slot) {
  probe_valid_ = false;
  placement_.assign_slots(cell_at_slot);
  if (!shadow_x_.empty()) {
    const auto px = placement_.positions_x();
    const auto py = placement_.positions_y();
    shadow_x_.assign(px.begin(), px.end());
    shadow_y_.assign(py.begin(), py.end());
  }
  rebuild_all();
}

Evaluator::CheckpointState Evaluator::checkpoint() const {
  CheckpointState st;
  st.slots = placement_.slots();
  st.hpwl_total = hpwl_.total();
  const auto sums = timer_.wire_sums();
  st.wire_sums.assign(sums.begin(), sums.end());
  st.swaps_applied = swaps_applied_;
  st.swaps_since_rebuild = swaps_since_rebuild_;
  return st;
}

void Evaluator::restore_checkpoint(const CheckpointState& st) {
  // reset_placement rebuilds boxes/positions/shadow exactly (stateless
  // recomputes), then the drift-carrying accumulators are overwritten with
  // the captured values and the rebuild cadence counter is reinstated.
  reset_placement(st.slots);
  hpwl_.restore_total(st.hpwl_total);
  timer_.restore_wire_sums(st.wire_sums);
  swaps_applied_ = static_cast<std::size_t>(st.swaps_applied);
  swaps_since_rebuild_ = static_cast<std::size_t>(st.swaps_since_rebuild);
}

void Evaluator::refresh_shadow(std::span<const CellId> cells) {
  if (shadow_x_.empty()) return;
  const auto px = placement_.positions_x();
  const auto py = placement_.positions_y();
  for (CellId c : cells) {
    shadow_x_[c] = px[c];
    shadow_y_[c] = py[c];
  }
}

void Evaluator::rebuild_all() {
  hpwl_.rebuild();
  timer_.rebuild(hpwl_);
  swaps_since_rebuild_ = 0;
}

FuzzyGoals Evaluator::calibrate_goals(const placement::Placement& initial,
                                      const timing::PathSet& paths,
                                      const CostParams& params) {
  placement::HpwlState hpwl(initial);
  // Non-owning timer: `paths` outlives this calibration-only instance.
  timing::PathTimer timer(paths, hpwl, params.delay_model);
  Objectives o;
  o.wirelength = hpwl.total();
  o.delay = timer.max_delay();
  o.area = initial.max_row_extent() * initial.layout().core_height();
  return FuzzyGoals::calibrate(o, params.target_improvement,
                               params.initial_membership, params.beta);
}

}  // namespace pts::cost
