// Tests for the threaded (PVM-style) engine: protocol liveness, result
// validity, policy paths, equivalence of bookkeeping.
#include <gtest/gtest.h>

#include "netlist/generator.hpp"
#include "parallel/sim_engine.hpp"
#include "parallel/threaded_engine.hpp"

namespace pts::parallel {
namespace {

using netlist::GeneratorConfig;
using netlist::Netlist;

Netlist circuit(std::size_t gates = 40, std::uint64_t seed = 3) {
  GeneratorConfig config;
  config.num_gates = gates;
  config.seed = seed;
  return generate_circuit(config);
}

PtsConfig small_config(std::uint64_t seed = 1) {
  PtsConfig config;
  config.seed = seed;
  config.num_tsws = 2;
  config.clws_per_tsw = 2;
  config.local_iterations = 4;
  config.global_iterations = 3;
  config.tabu.compound.width = 5;
  config.tabu.compound.depth = 2;
  config.cluster = pvm::ClusterConfig::homogeneous(8);
  return config;
}

TEST(ThreadedEngine, RunsToCompletionAndImproves) {
  const Netlist nl = circuit();
  const PtsResult r = ThreadedEngine(nl, small_config()).run();
  EXPECT_LT(r.best_cost, r.initial_cost);
  EXPECT_EQ(r.best_slots.size(), nl.num_movable());
  EXPECT_GE(r.makespan, 0.0);
  EXPECT_GT(r.stats.iterations, 0u);
}

TEST(ThreadedEngine, BestSlotsReproduceBestCost) {
  const Netlist nl = circuit(30, 9);
  const PtsConfig config = small_config(5);
  const PtsResult r = ThreadedEngine(nl, config).run();
  SearchSetup setup(nl, config);
  auto eval = setup.make_evaluator(r.best_slots);
  EXPECT_NEAR(eval->cost(), r.best_cost, 1e-6);
}

TEST(ThreadedEngine, WaitAllPolicyCompletes) {
  const Netlist nl = circuit(25, 2);
  PtsConfig config = small_config(7);
  config.set_policy(CollectionPolicy::WaitAll);
  const PtsResult r = ThreadedEngine(nl, config).run();
  EXPECT_LT(r.best_cost, r.initial_cost);
  // With WaitAll and no master cuts, every TSW runs every iteration.
  EXPECT_EQ(r.stats.iterations,
            config.num_tsws * config.global_iterations * config.local_iterations);
}

TEST(ThreadedEngine, HalfForcePolicyCompletes) {
  const Netlist nl = circuit(25, 2);
  PtsConfig config = small_config(7);
  config.set_policy(CollectionPolicy::HalfForce);
  // Throttle so stragglers demonstrably lag and the force path triggers.
  config.cluster = pvm::ClusterConfig::three_class(3, 3, 3, 1.0, 0.4, 0.1, 0.0);
  config.threaded_seconds_per_unit = 2e-5;
  const PtsResult r = ThreadedEngine(nl, config).run();
  EXPECT_LT(r.best_cost, r.initial_cost);
  // Some iterations may have been cut short; never more than the budget.
  EXPECT_LE(r.stats.iterations,
            config.num_tsws * config.global_iterations * config.local_iterations);
  EXPECT_GT(r.stats.iterations, 0u);
}

TEST(ThreadedEngine, SingleTswSingleClw) {
  const Netlist nl = circuit(20, 5);
  PtsConfig config = small_config(3);
  config.num_tsws = 1;
  config.clws_per_tsw = 1;
  const PtsResult r = ThreadedEngine(nl, config).run();
  EXPECT_LT(r.best_cost, r.initial_cost);
}

TEST(ThreadedEngine, ManyWorkersStress) {
  const Netlist nl = circuit(48, 6);
  PtsConfig config = small_config(9);
  config.num_tsws = 4;
  config.clws_per_tsw = 3;  // 1 + 4 + 12 = 17 tasks
  config.global_iterations = 2;
  const PtsResult r = ThreadedEngine(nl, config).run();
  EXPECT_LT(r.best_cost, r.initial_cost);
}

TEST(ThreadedEngine, RepeatedRunsShutDownCleanly) {
  const Netlist nl = circuit(16, 1);
  PtsConfig config = small_config(2);
  config.global_iterations = 2;
  config.local_iterations = 2;
  for (int i = 0; i < 5; ++i) {
    const PtsResult r = ThreadedEngine(nl, config).run();
    EXPECT_LE(r.best_cost, r.initial_cost);
  }
}

TEST(ThreadedEngine, TrajectoryAnchoredAtInitial) {
  const Netlist nl = circuit(30, 4);
  const PtsResult r = ThreadedEngine(nl, small_config(6)).run();
  ASSERT_GE(r.best_vs_time.size(), 1u);
  EXPECT_EQ(r.best_vs_time.x[0], 0.0);
  EXPECT_EQ(r.best_vs_time.y[0], r.initial_cost);
  for (std::size_t i = 1; i < r.best_vs_time.size(); ++i) {
    EXPECT_LE(r.best_vs_time.y[i], r.best_vs_time.y[i - 1]);
  }
}

TEST(ThreadedEngine, MatchesSimEngineOnBookkeeping) {
  // Both engines run the same algorithm; with WaitAll they do the same
  // amount of work (identical iteration counts), though RNG streams differ
  // so solutions may differ.
  const Netlist nl = circuit(32, 8);
  PtsConfig config = small_config(4);
  config.set_policy(CollectionPolicy::WaitAll);
  const PtsResult threaded = ThreadedEngine(nl, config).run();
  const PtsResult sim = SimEngine(nl, config).run();
  EXPECT_EQ(threaded.stats.iterations, sim.stats.iterations);
  EXPECT_EQ(threaded.initial_cost, sim.initial_cost);
  EXPECT_LT(threaded.best_cost, threaded.initial_cost);
  EXPECT_LT(sim.best_cost, sim.initial_cost);
}

}  // namespace
}  // namespace pts::parallel
