// Incremental half-perimeter wirelength (HPWL).
//
// Maintains one bounding box per net over the pin positions (pads included)
// of the current placement, and the weighted sum of half-perimeters. After a
// swap, only the nets incident to moved cells change; update_nets()
// recomputes those boxes from scratch (net degrees are small) and adjusts
// the running total. Because box recomputation is stateless, re-applying a
// swap and updating the same nets restores the previous values exactly up
// to floating-point summation order in the running total; callers that
// perform long update sequences (the cost Evaluator) rebuild() periodically
// to cap drift.
//
// Trial moves use the probe/commit pair instead (DESIGN.md §3): probe_nets()
// recomputes the same boxes into caller-owned scratch and returns the
// weighted delta without touching the committed state; commit_probe()
// promotes that scratch wholesale. probe_nets() accumulates its delta in the
// exact summation order update_nets() would use, so
// `total() + probe_nets(...)` is bit-identical to the total() after
// update_nets() on the same nets against the same committed state.
#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "placement/placement.hpp"

namespace pts::placement {

struct NetBox {
  double min_x = 0.0, max_x = 0.0, min_y = 0.0, max_y = 0.0;

  double half_perimeter() const { return (max_x - min_x) + (max_y - min_y); }
};

/// Per-net HPWL change reported by update_nets, consumed by the incremental
/// path timer.
struct NetChange {
  netlist::NetId net;
  double old_hpwl;
  double new_hpwl;
};

class HpwlState {
 public:
  explicit HpwlState(const Placement& placement);

  /// Weighted total HPWL of the placement this state tracks.
  double total() const { return total_; }

  double net_hpwl(netlist::NetId net) const {
    PTS_DCHECK(net < boxes_.size());
    return boxes_[net].half_perimeter();
  }
  const NetBox& net_box(netlist::NetId net) const {
    PTS_DCHECK(net < boxes_.size());
    return boxes_[net];
  }

  /// Recomputes the boxes of `nets` against the current placement geometry
  /// and returns the change in weighted total. `nets` must be duplicate-free
  /// (use NetMarker to deduplicate the union of incident nets). If `changes`
  /// is non-null, appends one NetChange per net whose half-perimeter moved.
  double update_nets(std::span<const netlist::NetId> nets,
                     std::vector<NetChange>* changes = nullptr);

  /// Probe counterpart of update_nets(): recomputes the boxes of `nets`
  /// against the current placement geometry into `scratch` (resized to
  /// nets.size(), index-aligned with `nets` — no allocation once capacity is
  /// reached) and returns the change in weighted total, without modifying
  /// the committed boxes or total. Appends the same NetChanges update_nets()
  /// would. The delta is accumulated in update_nets()'s exact summation
  /// order so the would-be total `total() + delta` is bit-identical.
  double probe_nets(std::span<const netlist::NetId> nets,
                    std::vector<NetBox>* scratch,
                    std::vector<NetChange>* changes = nullptr) const;

  /// Shadow-array counterpart of probe_nets() for batched trial evaluation:
  /// recomputes the boxes of `nets` against caller-supplied per-cell
  /// position arrays (a shadow copy of the committed SoA positions with the
  /// candidate's moved cells overwritten via overlaid_position()) and
  /// returns the change in weighted total against the committed boxes,
  /// without touching committed state. Appends the same NetChanges
  /// probe_nets() would observe after a real swap. The inner loops are
  /// branch-free (plain-load min/max box fold, cursor-style change
  /// emission), and the per-net visit order and delta summation order are
  /// exactly probe_nets()'s, which keeps every returned delta bit-identical
  /// to the scalar path (pinned by tests/property_test.cpp). Returns no
  /// scratch boxes: batch winners re-probe or commit through the swap path,
  /// never from here.
  double probe_nets_batch(std::span<const double> xs,
                          std::span<const double> ys,
                          std::span<const netlist::NetId> nets,
                          std::vector<NetChange>* changes) const;

  /// Promotes a preceding probe_nets() over the same `nets`: installs the
  /// scratch boxes and folds `delta` into the total, producing state
  /// bit-identical to what update_nets(nets) would have produced.
  void commit_probe(std::span<const netlist::NetId> nets,
                    const std::vector<NetBox>& scratch, double delta);

  /// Full recomputation from the placement.
  void rebuild();

  /// Overwrites the running total after a rebuild(), restoring a
  /// checkpointed value. The incremental total drifts from the from-scratch
  /// sum (summation order differs), so resuming a run bit-identically
  /// requires reinstalling the exact total the interrupted run carried —
  /// the boxes themselves are stateless recomputes and need no restore.
  void restore_total(double total) { total_ = total; }

  /// From-scratch total for verification; does not modify state.
  double compute_fresh_total() const;

 private:
  NetBox compute_box(netlist::NetId net) const;

  const Placement* placement_;
  const netlist::Topology* topology_;  // CSR pin lists + SoA net weights
  std::vector<NetBox> boxes_;
  double total_ = 0.0;
};

/// Epoch-stamped net deduplicator: collects the union of nets incident to a
/// set of moved cells without clearing an O(nets) array per swap.
class NetMarker {
 public:
  explicit NetMarker(std::size_t num_nets) : stamp_(num_nets, 0) {
    // The union can never exceed the net count; reserving up front keeps
    // collection allocation-free from the first swap on.
    nets_.reserve(num_nets);
  }

  /// Begins a new collection round; previously collected nets are forgotten.
  void begin() {
    ++epoch_;
    nets_.clear();
  }

  void add_nets_of(const netlist::Topology& topology, netlist::CellId cell) {
    for (netlist::NetId net : topology.nets_of(cell)) {
      PTS_DCHECK(net < stamp_.size());
      if (stamp_[net] != epoch_) {
        stamp_[net] = epoch_;
        nets_.push_back(net);
      }
    }
  }
  void add_nets_of(const netlist::Netlist& netlist, netlist::CellId cell) {
    add_nets_of(netlist.topology(), cell);
  }

  std::span<const netlist::NetId> nets() const { return nets_; }

 private:
  std::vector<std::uint64_t> stamp_;
  std::uint64_t epoch_ = 0;
  std::vector<netlist::NetId> nets_;
};

}  // namespace pts::placement
