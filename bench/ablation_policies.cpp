// Ablation bench (beyond the paper's figures; DESIGN.md §4).
//
// (a) early-accept in compound moves on/off — quality and work done;
// (b) force threshold sweep (1/4, 1/2, 3/4, all) — makespan vs quality,
//     generalizing the paper's fixed "half" rule;
// (c) tabu attribute: cell pair vs either cell;
// (d) tabu tenure sweep.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pts;
  auto options = bench::parse_options(argc, argv);
  const Cli cli(argc, argv);
  if (!cli.has("circuit")) options.circuits = {"c532"};
  bench::print_header("Ablations", "early-accept, force threshold, tabu memory");

  for (const auto& name : options.circuits) {
    const auto& circuit = experiments::circuit(name);

    // (a) early accept.
    {
      Table t({"early_accept", "best cost", "quality", "iterations"});
      for (bool early : {true, false}) {
        double cost = 0.0, quality = 0.0, iters = 0.0;
        for (std::size_t s = 0; s < options.seeds; ++s) {
          auto config = experiments::base_config(circuit, 600 + s, options.quick);
          config.num_tsws = 4;
          config.clws_per_tsw = 2;
          config.tabu.compound.early_accept = early;
          bench::apply_scale(config, options);
          const auto r = experiments::run_sim(circuit, config);
          cost += r.best_cost;
          quality += r.best_quality;
          iters += static_cast<double>(r.stats.iterations);
        }
        const auto seeds = static_cast<double>(options.seeds);
        t.add_row({early ? "on" : "off", Table::fmt(cost / seeds, 4),
                   Table::fmt(quality / seeds, 4), Table::fmt(iters / seeds, 0)});
      }
      emit_table("Ablation (a): compound-move early accept — " + name, t);
    }

    // (b) force threshold sweep.
    {
      Table t({"threshold", "makespan", "best cost"});
      for (double threshold : {0.25, 0.5, 0.75, 1.0}) {
        double makespan = 0.0, cost = 0.0;
        for (std::size_t s = 0; s < options.seeds; ++s) {
          auto config = experiments::base_config(circuit, 700 + s, options.quick);
          config.num_tsws = 4;
          config.clws_per_tsw = 4;
          bench::apply_scale(config, options);
          if (threshold >= 1.0) {
            config.set_policy(parallel::CollectionPolicy::WaitAll);
          } else {
            config.set_policy(parallel::CollectionPolicy::HalfForce, threshold);
          }
          const auto r = experiments::run_sim(circuit, config);
          makespan += r.makespan;
          cost += r.best_cost;
        }
        const auto seeds = static_cast<double>(options.seeds);
        t.add_row({threshold >= 1.0 ? "wait-all" : Table::fmt(threshold, 2),
                   Table::fmt(makespan / seeds, 1), Table::fmt(cost / seeds, 4)});
      }
      emit_table("Ablation (b): force-report threshold — " + name, t);
    }

    // (c) tabu attribute + (d) tenure.
    {
      Table t({"attribute", "tenure", "best cost", "tabu rejections"});
      for (auto attribute : {tabu::TabuAttribute::CellPair,
                             tabu::TabuAttribute::EitherCell}) {
        for (std::size_t tenure : {4u, 10u, 25u}) {
          double cost = 0.0, rejections = 0.0;
          for (std::size_t s = 0; s < options.seeds; ++s) {
            auto config =
                experiments::base_config(circuit, 800 + s, options.quick);
            config.num_tsws = 4;
            config.clws_per_tsw = 1;
            config.tabu.attribute = attribute;
            config.tabu.tenure = tenure;
            bench::apply_scale(config, options);
            const auto r = experiments::run_sim(circuit, config);
            cost += r.best_cost;
            rejections += static_cast<double>(r.stats.rejected_tabu);
          }
          const auto seeds = static_cast<double>(options.seeds);
          t.add_row({attribute == tabu::TabuAttribute::CellPair ? "pair"
                                                                : "either-cell",
                     std::to_string(tenure), Table::fmt(cost / seeds, 4),
                     Table::fmt(rejections / seeds, 1)});
        }
      }
      emit_table("Ablation (c,d): tabu attribute and tenure — " + name, t);
    }
  }
  return 0;
}
