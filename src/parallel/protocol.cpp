#include "parallel/protocol.hpp"

namespace pts::parallel {

void pack_slots(pvm::Message& msg, const std::vector<netlist::CellId>& slots) {
  msg.pack_u32_vector(slots);
}

std::vector<netlist::CellId> unpack_slots(pvm::Message& msg) {
  return msg.unpack_u32_vector();
}

void pack_moves(pvm::Message& msg, const std::vector<tabu::Move>& moves) {
  std::vector<std::uint32_t> flat;
  flat.reserve(moves.size() * 2);
  for (const auto& m : moves) {
    flat.push_back(m.a);
    flat.push_back(m.b);
  }
  msg.pack_u32_vector(flat);
}

std::vector<tabu::Move> unpack_moves(pvm::Message& msg) {
  const auto flat = msg.unpack_u32_vector();
  PTS_CHECK(flat.size() % 2 == 0);
  std::vector<tabu::Move> moves(flat.size() / 2);
  for (std::size_t i = 0; i < moves.size(); ++i) {
    moves[i] = tabu::Move{flat[2 * i], flat[2 * i + 1]};
  }
  return moves;
}

pvm::Message ClwReport::encode() const {
  pvm::Message msg(kTagReport);
  msg.pack_u64(local_seq);
  pack_moves(msg, swaps);
  msg.pack_double(cost);
  msg.pack_bool(was_forced);
  msg.pack_bool(improved_early);
  msg.pack_double(work_units);
  return msg;
}

ClwReport ClwReport::decode(pvm::Message& msg) {
  ClwReport r;
  r.local_seq = msg.unpack_u64();
  r.swaps = unpack_moves(msg);
  r.cost = msg.unpack_double();
  r.was_forced = msg.unpack_bool();
  r.improved_early = msg.unpack_bool();
  r.work_units = msg.unpack_double();
  return r;
}

pvm::Message TswReport::encode() const {
  pvm::Message msg(kTagReport);
  msg.pack_u64(global_seq);
  msg.pack_double(best_cost);
  pack_slots(msg, best_slots);
  pack_moves(msg, tabu_entries);
  msg.pack_bool(was_forced);
  msg.pack_u64(local_iterations_done);
  msg.pack_u64(stat_iterations);
  msg.pack_u64(stat_accepted);
  msg.pack_u64(stat_rejected_tabu);
  msg.pack_u64(stat_aspirated);
  msg.pack_u64(stat_early_accepts);
  return msg;
}

TswReport TswReport::decode(pvm::Message& msg) {
  TswReport r;
  r.global_seq = msg.unpack_u64();
  r.best_cost = msg.unpack_double();
  r.best_slots = unpack_slots(msg);
  r.tabu_entries = unpack_moves(msg);
  r.was_forced = msg.unpack_bool();
  r.local_iterations_done = msg.unpack_u64();
  r.stat_iterations = msg.unpack_u64();
  r.stat_accepted = msg.unpack_u64();
  r.stat_rejected_tabu = msg.unpack_u64();
  r.stat_aspirated = msg.unpack_u64();
  r.stat_early_accepts = msg.unpack_u64();
  return r;
}

pvm::Message make_init(const std::vector<netlist::CellId>& slots) {
  pvm::Message msg(kTagInit);
  pack_slots(msg, slots);
  return msg;
}

std::vector<netlist::CellId> decode_init(pvm::Message& msg) {
  return unpack_slots(msg);
}

pvm::Message make_force(std::uint64_t seq) {
  pvm::Message msg(kTagForceReport);
  msg.pack_u64(seq);
  return msg;
}

std::uint64_t decode_force(pvm::Message& msg) { return msg.unpack_u64(); }

pvm::Message make_terminate() { return pvm::Message(kTagTerminate); }

pvm::Message Broadcast::encode() const {
  pvm::Message msg(kTagBroadcast);
  msg.pack_u64(global_seq);
  msg.pack_double(best_cost);
  pack_slots(msg, best_slots);
  pack_moves(msg, tabu_entries);
  return msg;
}

Broadcast Broadcast::decode(pvm::Message& msg) {
  Broadcast b;
  b.global_seq = msg.unpack_u64();
  b.best_cost = msg.unpack_double();
  b.best_slots = unpack_slots(msg);
  b.tabu_entries = unpack_moves(msg);
  return b;
}

pvm::Message SearchRequest::encode() const {
  pvm::Message msg(kTagSearch);
  msg.pack_u64(local_seq);
  pack_moves(msg, sync_swaps);
  pack_slots(msg, reset_slots);
  return msg;
}

SearchRequest SearchRequest::decode(pvm::Message& msg) {
  SearchRequest r;
  r.local_seq = msg.unpack_u64();
  r.sync_swaps = unpack_moves(msg);
  r.reset_slots = unpack_slots(msg);
  return r;
}

}  // namespace pts::parallel
