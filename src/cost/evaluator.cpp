#include "cost/evaluator.hpp"

namespace pts::cost {

using netlist::CellId;

Evaluator::Evaluator(placement::Placement placement,
                     std::shared_ptr<const timing::PathSet> paths,
                     const CostParams& params, const FuzzyGoals& goals)
    : placement_(std::move(placement)),
      paths_(std::move(paths)),
      params_(params),
      goals_(goals),
      hpwl_(placement_),
      timer_(paths_, hpwl_, params.delay_model),
      marker_(placement_.netlist().num_nets()),
      topology_(&placement_.netlist().topology()) {
  PTS_CHECK(params_.rebuild_interval >= 1);
  // Size every scratch buffer to its worst case up front so that neither
  // probe_swap nor apply_swap/commit_probe allocates in steady state
  // (asserted by topology_test's allocation-counting guard).
  moved_scratch_.reserve(placement_.netlist().num_cells());
  change_scratch_.reserve(placement_.netlist().num_nets());
  box_scratch_.reserve(placement_.netlist().num_nets());
}

Objectives Evaluator::objectives() const {
  Objectives o;
  o.wirelength = hpwl_.total();
  o.delay = timer_.max_delay();
  o.area = placement_.max_row_extent() * placement_.layout().core_height();
  return o;
}

double Evaluator::apply_swap(CellId a, CellId b) {
  probe_valid_ = false;
  moved_scratch_.clear();
  placement_.swap_cells(a, b, &moved_scratch_);

  marker_.begin();
  for (CellId cell : moved_scratch_) marker_.add_nets_of(*topology_, cell);

  change_scratch_.clear();
  hpwl_.update_nets(marker_.nets(), &change_scratch_);
  for (const auto& change : change_scratch_) {
    timer_.apply_net_change(change.net, change.old_hpwl, change.new_hpwl);
  }

  ++swaps_applied_;
  if (++swaps_since_rebuild_ >= params_.rebuild_interval) rebuild_all();
  return cost();
}

double Evaluator::probe_swap(CellId a, CellId b) {
  // Same pass as apply_swap up to and including box recomputation, but the
  // new boxes, the HPWL delta, and the path sums land in scratch; the
  // geometry swap is reverted before returning (swap_cells is an exact
  // involution), so no observable state changes.
  moved_scratch_.clear();
  placement_.swap_cells(a, b, &moved_scratch_);

  marker_.begin();
  for (CellId cell : moved_scratch_) marker_.add_nets_of(*topology_, cell);

  change_scratch_.clear();
  probe_delta_ = hpwl_.probe_nets(marker_.nets(), &box_scratch_, &change_scratch_);

  // Mirror objectives()/cost() term by term: `total_ + delta` is the exact
  // expression update_nets() folds into the running total, and peek_delta
  // replays the apply_net_change/max_delay sequence on scratch sums.
  Objectives o;
  o.wirelength = hpwl_.total() + probe_delta_;
  o.delay = timer_.peek_delta(change_scratch_);
  o.area = placement_.max_row_extent() * placement_.layout().core_height();
  const double probed_cost = goals_.cost(o);

  placement_.swap_cells(a, b);  // restore geometry
  probe_a_ = a;
  probe_b_ = b;
  probe_valid_ = true;
  return probed_cost;
}

double Evaluator::commit_probe() {
  PTS_CHECK_MSG(probe_valid_,
                "commit_probe() without an immediately preceding probe_swap()");
  probe_valid_ = false;
  placement_.swap_cells(probe_a_, probe_b_);
  hpwl_.commit_probe(marker_.nets(), box_scratch_, probe_delta_);
  timer_.commit_peek();

  ++swaps_applied_;
  if (++swaps_since_rebuild_ >= params_.rebuild_interval) rebuild_all();
  return cost();
}

double Evaluator::commit_swap(CellId a, CellId b) {
  const bool pending = probe_valid_ && ((probe_a_ == a && probe_b_ == b) ||
                                        (probe_a_ == b && probe_b_ == a));
  return pending ? commit_probe() : apply_swap(a, b);
}

void Evaluator::reset_placement(const std::vector<CellId>& cell_at_slot) {
  probe_valid_ = false;
  placement_.assign_slots(cell_at_slot);
  rebuild_all();
}

void Evaluator::rebuild_all() {
  hpwl_.rebuild();
  timer_.rebuild(hpwl_);
  swaps_since_rebuild_ = 0;
}

FuzzyGoals Evaluator::calibrate_goals(const placement::Placement& initial,
                                      const timing::PathSet& paths,
                                      const CostParams& params) {
  placement::HpwlState hpwl(initial);
  timing::PathTimer timer(
      std::shared_ptr<const timing::PathSet>(&paths, [](const timing::PathSet*) {}),
      hpwl, params.delay_model);
  Objectives o;
  o.wirelength = hpwl.total();
  o.delay = timer.max_delay();
  o.area = initial.max_row_extent() * initial.layout().core_height();
  return FuzzyGoals::calibrate(o, params.target_improvement,
                               params.initial_membership, params.beta);
}

}  // namespace pts::cost
