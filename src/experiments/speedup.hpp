// Speedup measurement for non-deterministic parallel search.
//
// Implements the paper's definition (§5):
//
//     Speedup(n, x) = t(1, x) / t(n, x)
//
// where t(n, x) is the (virtual) time at which the run with n workers first
// reaches a solution of cost <= x. The threshold x defaults to the cost
// after 90% of the single-worker run's total improvement, so every
// configuration has a fair chance of reaching it.
#pragma once

#include <vector>

#include "experiments/workloads.hpp"
#include "support/stats.hpp"

namespace pts::experiments {

enum class VaryWorkers { Clws, Tsws };

struct SpeedupMeasurement {
  double threshold_cost = 0.0;
  /// x = worker count, y = t(1,x)/t(n,x); points whose run never reached
  /// the threshold are omitted.
  Series speedup;
  /// x = worker count, y = t(n, x) in virtual seconds (-1 if unreached).
  Series time_to_threshold;
  /// x = worker count, y = best cost of the full run (context for quality).
  Series best_cost;
};

/// Runs the sim engine for every worker count in `counts` (which must
/// include 1, the baseline) and measures the paper's speedup. With
/// `seeds > 1` the measurement is paired: each seed gets its own baseline
/// and threshold, per-seed speedups are averaged (non-deterministic search
/// times are noisy; the paper likewise reports representative runs).
SpeedupMeasurement measure_speedup(const netlist::Netlist& netlist,
                                   parallel::PtsConfig base, VaryWorkers vary,
                                   const std::vector<std::size_t>& counts,
                                   double improvement_fraction = 0.9,
                                   std::size_t seeds = 1);

}  // namespace pts::experiments
