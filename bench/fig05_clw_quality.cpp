// Figure 5 — Effect of the number of CLWs on solution quality.
//
// Paper setup: 4 TSWs fixed, CLWs per TSW swept 1..4, 12-machine cluster,
// all four circuits. Expected shape: quality improves (best cost drops) as
// CLWs are added; for the small `highway` circuit the benefit flattens
// beyond 2 CLWs.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pts;
  const auto options = bench::parse_options(argc, argv);
  bench::print_header("Figure 5", "effect of low-level parallelization (CLWs)");

  std::vector<Series> quality_series;
  std::vector<Series> cost_series;
  for (const auto& name : options.circuits) {
    const auto& circuit = experiments::circuit(name);
    Series quality;
    quality.name = name;
    Series cost;
    cost.name = name;
    for (std::size_t clws = 1; clws <= 4; ++clws) {
      double cost_sum = 0.0, quality_sum = 0.0;
      for (std::size_t s = 0; s < options.seeds; ++s) {
        auto config = experiments::base_config(circuit, 100 + s, options.quick);
        config.num_tsws = 4;
        config.clws_per_tsw = clws;
        bench::apply_scale(config, options);
        const auto result = experiments::run_sim(circuit, config);
        cost_sum += result.best_cost;
        quality_sum += result.best_quality;
      }
      const auto seeds = static_cast<double>(options.seeds);
      cost.add(static_cast<double>(clws), cost_sum / seeds);
      quality.add(static_cast<double>(clws), quality_sum / seeds);
    }
    cost_series.push_back(std::move(cost));
    quality_series.push_back(std::move(quality));
  }

  emit_table("Fig 5: best cost vs #CLWs (lower is better; 4 TSWs)",
             series_table("clws", cost_series, 4));
  emit_table("Fig 5: solution quality (fuzzy mu) vs #CLWs (higher is better)",
             series_table("clws", quality_series, 4));
  return 0;
}
