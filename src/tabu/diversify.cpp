#include "tabu/diversify.hpp"

namespace pts::tabu {

std::vector<Move> diversify(cost::Evaluator& eval, const CellRange& range,
                            const DiversifyParams& params, Rng& rng) {
  std::vector<Move> applied;
  if (!params.enabled || range.empty()) return applied;
  PTS_CHECK(params.width >= 1);
  applied.reserve(params.depth);
  const auto& netlist = eval.placement().netlist();
  for (std::size_t level = 0; level < params.depth; ++level) {
    Move best{};
    double best_cost = 0.0;
    bool have = false;
    for (std::size_t trial = 0; trial < params.width; ++trial) {
      const Move move = sample_move(netlist, range, rng);
      const double cost_after = eval.probe_swap(move.a, move.b);
      if (!have || cost_after < best_cost) {
        best = move;
        best_cost = cost_after;
        have = true;
      }
    }
    PTS_CHECK(have);
    eval.commit_swap(best.a, best.b);
    applied.push_back(best);
  }
  return applied;
}

}  // namespace pts::tabu
