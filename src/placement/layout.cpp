#include "placement/layout.hpp"

#include <cmath>

namespace pts::placement {

using netlist::CellId;
using netlist::CellKind;

Layout::Layout(const netlist::Netlist& netlist, std::size_t num_rows,
               double row_height)
    : netlist_(&netlist), row_height_(row_height) {
  const std::size_t movable = netlist.num_movable();
  PTS_CHECK_MSG(movable >= 1, "layout needs at least one movable cell");
  PTS_CHECK(row_height > 0.0);

  if (num_rows == 0) {
    num_rows_ = static_cast<std::size_t>(
        std::max(1.0, std::round(std::sqrt(static_cast<double>(movable)))));
  } else {
    num_rows_ = num_rows;
  }
  num_rows_ = std::min(num_rows_, movable);
  slots_per_row_ = (movable + num_rows_ - 1) / num_rows_;
  // Shrink row count if the ceiling division left trailing empty rows.
  num_rows_ = (movable + slots_per_row_ - 1) / slots_per_row_;
  num_slots_ = movable;

  nominal_width_ = static_cast<double>(netlist.total_movable_width()) /
                   static_cast<double>(num_rows_);

  // Pads: PIs spread along the left edge, POs along the right edge, each
  // group in id order from bottom to top.
  pad_positions_.assign(netlist.num_cells(), Point{});
  std::size_t num_pi = 0, num_po = 0;
  for (CellId id : netlist.pad_cells()) {
    (netlist.cell(id).kind == CellKind::PrimaryInput ? num_pi : num_po) += 1;
  }
  const double height = core_height();
  auto spread = [&](std::size_t index, std::size_t count) {
    return height * (static_cast<double>(index) + 0.5) /
           static_cast<double>(count == 0 ? 1 : count);
  };
  std::size_t pi_seen = 0, po_seen = 0;
  const double pad_margin = 2.0;
  for (CellId id : netlist.pad_cells()) {
    if (netlist.cell(id).kind == CellKind::PrimaryInput) {
      pad_positions_[id] = Point{-pad_margin, spread(pi_seen++, num_pi)};
    } else {
      pad_positions_[id] =
          Point{nominal_width_ + pad_margin, spread(po_seen++, num_po)};
    }
  }
}

std::size_t Layout::slots_in_row(std::size_t row) const {
  PTS_DCHECK(row < num_rows_);
  if (row + 1 < num_rows_) return slots_per_row_;
  return num_slots_ - (num_rows_ - 1) * slots_per_row_;
}

Point Layout::pad_position(CellId cell) const {
  PTS_CHECK(cell < pad_positions_.size());
  PTS_CHECK_MSG(!netlist_->cell(cell).movable(), "pad_position of a gate");
  return pad_positions_[cell];
}

}  // namespace pts::placement
