#include "netlist/generator.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace pts::netlist {
namespace {

std::string indexed(const char* prefix, std::size_t i) {
  return std::string(prefix) + std::to_string(i);
}

}  // namespace

Netlist generate_circuit(const GeneratorConfig& config) {
  PTS_CHECK(config.num_gates >= 1);
  PTS_CHECK(config.num_primary_inputs >= 1);
  PTS_CHECK(config.num_primary_outputs >= 1);
  PTS_CHECK(config.max_fanin >= 1);
  PTS_CHECK(config.min_width >= 1 && config.max_width >= config.min_width);

  Rng rng(config.seed);
  NetlistBuilder builder(config.name);

  // Primary inputs, each driving a net. `nets` lists every net in creation
  // order; `net_source_gate[i]` is the index of the gate driving nets[i]
  // (or SIZE_MAX for PI nets) so PO wiring can respect topological order.
  std::vector<NetId> nets;
  std::vector<std::size_t> net_source_gate;
  std::vector<char> used_as_input;
  nets.reserve(config.num_primary_inputs + config.num_gates);
  for (std::size_t i = 0; i < config.num_primary_inputs; ++i) {
    const CellId pi = builder.add_primary_input(indexed("pi", i));
    nets.push_back(builder.add_net(indexed("npi", i), pi));
    net_source_gate.push_back(static_cast<std::size_t>(-1));
    used_as_input.push_back(0);
  }

  // Gates in topological creation order; inputs drawn from earlier nets.
  std::vector<CellId> gates;
  std::vector<std::size_t> fanin_of;  // current fanin per gate
  gates.reserve(config.num_gates);
  fanin_of.reserve(config.num_gates);
  for (std::size_t g = 0; g < config.num_gates; ++g) {
    const int width =
        static_cast<int>(rng.between(config.min_width, config.max_width));
    const double delay =
        std::max(0.05, rng.normal(config.delay_mean, config.delay_stddev));
    const double load = rng.uniform(config.load_min, config.load_max);
    const CellId gate = builder.add_gate(indexed("g", g), width, delay, load);
    gates.push_back(gate);

    // Fanin: geometric draw with mean ~avg_fanin, clamped to [1, max_fanin]
    // and to the number of available source nets.
    const double mean_extra = std::max(0.0, config.avg_fanin - 1.0);
    std::size_t fanin = 1;
    while (fanin < config.max_fanin &&
           rng.chance(mean_extra / (1.0 + mean_extra))) {
      ++fanin;
    }
    fanin = std::min(fanin, nets.size());

    std::vector<std::size_t> chosen;  // indices into `nets`
    chosen.reserve(fanin);
    while (chosen.size() < fanin) {
      std::size_t idx;
      if (rng.chance(config.locality) && nets.size() > 1) {
        const std::size_t window = std::min(config.locality_window, nets.size());
        idx = nets.size() - 1 - static_cast<std::size_t>(rng.below(window));
      } else {
        idx = static_cast<std::size_t>(rng.below(nets.size()));
      }
      if (std::find(chosen.begin(), chosen.end(), idx) == chosen.end())
        chosen.push_back(idx);
    }
    for (std::size_t idx : chosen) {
      builder.connect_input(nets[idx], gate);
      used_as_input[idx] = 1;
    }
    fanin_of.push_back(chosen.size());

    const double weight = rng.chance(config.critical_net_fraction) ? 2.0 : 1.0;
    nets.push_back(builder.add_net(indexed("n", g), gate, weight));
    net_source_gate.push_back(g);
    used_as_input.push_back(0);
  }

  // Primary outputs. Dangling nets (never used as a gate input) must be
  // sunk somewhere; POs take them first, preferring late nets so output
  // logic depth looks circuit-like. If there are more dangling nets than
  // requested POs, surplus dangling nets feed extra gate inputs where a
  // topologically later gate exists, otherwise extra POs are appended.
  std::vector<std::size_t> dangling;  // indices into `nets`, ascending
  for (std::size_t i = 0; i < nets.size(); ++i) {
    if (!used_as_input[i]) dangling.push_back(i);
  }
  PTS_CHECK(!dangling.empty());  // the last gate's net is always dangling

  std::size_t po_count = 0;
  auto add_po = [&](NetId net) {
    const CellId po = builder.add_primary_output(indexed("po", po_count));
    builder.connect_input(net, po);
    ++po_count;
  };

  // Latest dangling nets become the requested POs.
  const std::size_t reserved_for_po =
      std::min(config.num_primary_outputs, dangling.size());
  for (std::size_t k = 0; k < reserved_for_po; ++k) {
    add_po(nets[dangling[dangling.size() - 1 - k]]);
  }
  dangling.resize(dangling.size() - reserved_for_po);

  // Remaining dangling nets: feed a later gate that still has fanin
  // capacity (keeps the graph acyclic because gate indices increase along
  // `gates` and respects max_fanin); otherwise sink them with extra POs.
  //
  // The scan fallback shares one monotone cursor across all dangling nets:
  // gate fanins only ever grow, so a gate observed full stays full, and the
  // dangling list is in ascending net order so `first_later` never
  // decreases — the cursor finds the same first-gate-with-capacity a fresh
  // forward scan would, in O(gates) amortized over the whole pass instead
  // of O(gates) per net (the scale-tier circuits made the difference
  // quadratic-vs-linear).
  std::size_t scan_cursor = 0;
  for (std::size_t idx : dangling) {
    const std::size_t src_gate = net_source_gate[idx];
    const std::size_t first_later =
        src_gate == static_cast<std::size_t>(-1) ? 0 : src_gate + 1;
    std::size_t target = gates.size();
    if (first_later < gates.size()) {
      // A few random probes, then the cursor scan for spare capacity.
      const std::size_t span = gates.size() - first_later;
      for (int probe = 0; probe < 8 && target == gates.size(); ++probe) {
        const auto t = first_later + static_cast<std::size_t>(rng.below(span));
        if (fanin_of[t] < config.max_fanin) target = t;
      }
      if (target == gates.size()) {
        scan_cursor = std::max(scan_cursor, first_later);
        while (scan_cursor < gates.size() &&
               fanin_of[scan_cursor] >= config.max_fanin) {
          ++scan_cursor;
        }
        if (scan_cursor < gates.size()) target = scan_cursor;
      }
    }
    if (target < gates.size()) {
      builder.connect_input(nets[idx], gates[target]);
      ++fanin_of[target];
    } else {
      add_po(nets[idx]);
    }
  }

  // Top up POs if fewer dangling nets existed than requested: duplicate
  // sinks on random gate nets (a net may fan out to several pads).
  while (po_count < config.num_primary_outputs) {
    const std::size_t idx =
        config.num_primary_inputs +
        static_cast<std::size_t>(rng.below(config.num_gates));
    add_po(nets[idx]);
  }

  return std::move(builder).build();
}

}  // namespace pts::netlist
