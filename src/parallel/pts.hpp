// Public entry point: parallel tabu search for VLSI cell placement.
//
// Quickstart:
//
//   auto circuit = pts::netlist::make_benchmark("c532");
//   pts::parallel::PtsConfig config;
//   config.num_tsws = 4;
//   config.clws_per_tsw = 4;
//   config.set_policy(pts::parallel::CollectionPolicy::HalfForce);
//   pts::parallel::ParallelTabuSearch search(circuit, config);
//   auto result = search.run_sim();        // deterministic virtual time
//   // or: auto result = search.run_threaded();  // real threads
//
// run_sim() executes the search under the discrete-event virtual-time
// engine (deterministic; the engine behind the paper-figure benches);
// run_threaded() executes the identical algorithm on the PVM-like threaded
// runtime. Both return a PtsResult.
#pragma once

#include "parallel/config.hpp"
#include "parallel/sim_engine.hpp"
#include "parallel/threaded_engine.hpp"

namespace pts::parallel {

class ParallelTabuSearch {
 public:
  /// `netlist` must outlive the search and its results.
  ParallelTabuSearch(const netlist::Netlist& netlist, PtsConfig config)
      : netlist_(&netlist), config_(std::move(config)) {}

  const PtsConfig& config() const { return config_; }

  /// Deterministic virtual-time run (same seed -> identical result).
  PtsResult run_sim() const {
    SimEngine engine(*netlist_, config_);
    return engine.run();
  }

  /// Real threaded run on the PVM-like runtime (wall-clock timings).
  PtsResult run_threaded() const {
    ThreadedEngine engine(*netlist_, config_);
    return engine.run();
  }

 private:
  const netlist::Netlist* netlist_;
  PtsConfig config_;
};

}  // namespace pts::parallel
