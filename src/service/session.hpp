// Concurrent solve sessions over the pts::solver front door.
//
// A SessionManager runs N solves at once, each on its own thread with a
// per-session CancelToken and an Observer that forwards progress into a
// caller-supplied EventSink. The daemon builds one manager for the process;
// each client connection owns the sessions it submitted (`owner`), so a
// mid-solve disconnect cancels exactly that client's work.
//
// Threading contract:
//  - start()/cancel()/cancel_owned()/drain()/counters are thread-safe.
//  - The sink runs on the session's solve thread: any number of Progress
//    events while the engine runs, then exactly one Done event carrying the
//    SolveResult — also when the session was cancelled (the result then has
//    stop_reason == Cancelled). Sinks synchronize their own downstream
//    (the daemon serializes socket writes per connection).
//  - cancel_owned()/drain() cancel cooperatively and then *join*: on return
//    no sink of the affected sessions can fire again and their threads are
//    gone — this is the "zero leaked sessions after drain" guarantee.
//
// Finished sessions are reaped (joined and erased) opportunistically from
// the next mutating call, so a long-lived daemon does not accumulate dead
// threads; drain() reaps everything.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "solver/solver.hpp"
#include "support/run_control.hpp"

namespace pts::service {

struct SessionEvent {
  enum class Kind { Progress, Done };
  Kind kind = Kind::Progress;
  std::uint64_t session = 0;
  // Kind::Progress
  bool improvement = false;
  Progress progress;
  // Kind::Done
  solver::SolveResult result;
};

using EventSink = std::function<void(SessionEvent&&)>;

class SessionManager {
 public:
  struct Options {
    /// Running (unfinished) session cap; start() rejects beyond it.
    std::size_t max_sessions = 256;
  };

  SessionManager() : SessionManager(Options()) {}
  explicit SessionManager(Options options);
  ~SessionManager();  // drains

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Starts a solve session. `spec` must have passed Solver::validate with
  /// its netlist attached (the referenced netlist must outlive the manager);
  /// spec.stop.cancel and spec.observer are overwritten with the session's
  /// own. Returns the session id, or 0 when the manager is at max_sessions
  /// or draining (0 is never a valid id).
  std::uint64_t start(solver::SolveSpec spec, std::uint64_t owner, bool stream,
                      std::uint64_t progress_stride, EventSink sink);

  /// Requests cooperative cancellation. True if the session exists and had
  /// not finished; the Done event still arrives (on the session thread).
  bool cancel(std::uint64_t session);

  /// Cancels and joins every session started with this owner. On return
  /// none of their sinks can fire again.
  void cancel_owned(std::uint64_t owner);

  /// Cancels and joins everything, and rejects starts from now on.
  void drain();

  /// Sessions started but not yet finished (their threads may still be
  /// seconds away from the next cancellation check point).
  std::size_t active_sessions() const;
  std::uint64_t sessions_started() const;
  std::uint64_t sessions_finished() const;

 private:
  struct Session;

  void run_session(Session* session);
  /// Joins + erases finished sessions. Caller holds mutex_; joins are
  /// instant because finished_ is set last on the session thread.
  void reap_locked();

  Options options_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::uint64_t next_id_ = 1;
  std::uint64_t started_ = 0;
  std::uint64_t finished_count_ = 0;
  bool draining_ = false;
};

}  // namespace pts::service
