// Scale-tier macro benchmark: proves the system stays linear at 15x–90x the
// paper's largest circuit. For each scale circuit (scale10k/scale50k, and
// scale200k under --full) it reports:
//
//   build      netlist generation + finalize (CSR topology) wall time
//   setup      layout + random placement + K-paths + evaluator construction
//   probe      steady-state trial-probe throughput (the search inner loop)
//   engines    a short tabu / anneal / parallel-sim / parallel-shared run
//              through the solver front door: wall time, makespan (virtual
//              seconds for parallel-sim), cost before/after, and tt50 — the
//              engine-clock instant the run had realized half of its own
//              improvement.
//   scaling    strong-scaling counters for the shared-memory backend: the
//              same parallel-shared run at 1/2/4/8 threads, reporting trial
//              throughput (probes/s) and speedup vs its own 1-thread run.
//              The trajectory is thread-count invariant, so every point
//              does identical work — the ratio isolates parallel efficiency.
//
// Tiers follow bench_common: --smoke (CI; scale10k only, clamped budgets),
// default (scale10k + scale50k), --full (adds scale200k). --circuit
// restricts to one circuit (any benchmark name, paper circuits included).
//
// Each circuit additionally emits one `MACRO {json}` line; bench/dump_json.py
// parses and schema-validates those into the BENCH_*.json perf trail.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cost/evaluator.hpp"
#include "netlist/benchmarks.hpp"
#include "placement/placement.hpp"
#include "solver/solver.hpp"
#include "support/stopwatch.hpp"
#include "timing/paths.hpp"

namespace {

using namespace pts;

struct EngineReport {
  std::string name;
  double wall_ms = 0.0;
  double makespan_s = 0.0;
  double initial_cost = 0.0;
  double best_cost = 0.0;
  double best_quality = 0.0;
  double tt50_s = -1.0;  ///< engine clock to half of the run's improvement
};

solver::SolveSpec engine_spec(const netlist::Netlist& nl,
                              const std::string& engine,
                              const bench::BenchOptions& options) {
  solver::SolveSpec spec = experiments::base_spec(nl, engine, /*seed=*/1,
                                                  /*quick=*/true);
  // Short fixed budgets: the point is "completes and improves at scale",
  // not converged quality. Traces off where they would be per-move.
  spec.tabu.iterations = options.smoke ? 10 : 40;
  spec.tabu.trace_stride = 0;
  spec.anneal.moves_per_temp = options.smoke ? 500 : 2000;
  spec.anneal.cooling = 0.80;
  spec.anneal.trace_stride = 0;
  bench::apply_scale(spec.parallel, options);
  return spec;
}

EngineReport run_engine(const netlist::Netlist& nl, const std::string& engine,
                        const bench::BenchOptions& options) {
  const solver::SolveSpec spec = engine_spec(nl, engine, options);
  EngineReport report;
  report.name = engine;
  const Stopwatch watch;
  const solver::SolveResult result = solver::Solver().solve(spec);
  report.wall_ms = watch.millis();
  report.makespan_s = result.makespan;
  report.initial_cost = result.initial_cost;
  report.best_cost = result.best_cost;
  report.best_quality = result.best_quality;
  if (result.best_vs_time.size() > 0 && result.best_cost < result.initial_cost) {
    report.tt50_s = result.time_to_cost(
        experiments::improvement_threshold(result, 0.5));
  }
  return report;
}

struct ScalingPoint {
  std::size_t threads = 1;
  double makespan_s = 0.0;
  double trials_per_s = 0.0;
  double speedup_vs_1 = 1.0;
};

// Strong scaling for the shared-memory backend: identical search (the
// trajectory is thread-count invariant) timed at each thread count, so the
// throughput ratio is pure parallel efficiency.
std::vector<ScalingPoint> run_shared_scaling(const netlist::Netlist& nl,
                                             const bench::BenchOptions& options) {
  std::vector<ScalingPoint> points;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    solver::SolveSpec spec = engine_spec(nl, "parallel-shared", options);
    spec.shared.threads = threads;
    const solver::SolveResult result = solver::Solver().solve(spec);
    ScalingPoint point;
    point.threads = threads;
    point.makespan_s = result.makespan;
    point.trials_per_s = static_cast<double>(result.stats.trials) /
                         std::max(result.makespan, 1e-9);
    point.speedup_vs_1 =
        points.empty() ? 1.0 : point.trials_per_s / points.front().trials_per_s;
    points.push_back(point);
  }
  return points;
}

struct EcoReport {
  std::uint64_t cold_trials = 0;   ///< probes to finish the from-scratch run
  std::uint64_t warm_trials = 0;   ///< probes to match its quality warm
  double trials_ratio = 0.0;       ///< warm / cold (ECO acceptance: <= 0.5)
  double cold_best_cost = 0.0;
  double warm_initial_cost = 0.0;  ///< cost of the dislodged placement
  double warm_best_cost = 0.0;
  bool warm_reached_target = false;
};

// ECO mode: solve from scratch (the cold run), dislodge a handful of cells
// from the solved placement (the "engineering change"), then re-solve warm
// from the dislodged placement with the cold run's final cost as the stop
// target. The counter pair (cold_trials, warm_trials) is the headline
// warm-start claim: an ECO re-spin should match the cold run's quality in
// a fraction of its search effort.
EcoReport run_eco(const netlist::Netlist& nl,
                  const bench::BenchOptions& options) {
  solver::SolveSpec cold_spec = engine_spec(nl, "tabu", options);
  cold_spec.tabu.iterations = options.smoke ? 40 : 160;
  const solver::SolveResult cold = solver::Solver().solve(cold_spec);

  auto dislodged = cold.best_slots;
  Rng rng(7);
  for (int i = 0; i < 6; ++i) {
    const auto [a, b] = rng.distinct_pair(dislodged.size());
    std::swap(dislodged[a], dislodged[b]);
  }

  solver::SolveSpec warm_spec = cold_spec;
  warm_spec.initial_slots = std::move(dislodged);
  // Tiny slack on the target: the cold best is tracked incrementally while
  // the warm run evaluates from scratch, so bit-equality is not reachable.
  warm_spec.stop.target_cost =
      cold.best_cost + 1e-9 * std::abs(cold.best_cost);
  const solver::SolveResult warm = solver::Solver().solve(warm_spec);

  EcoReport eco;
  eco.cold_trials = cold.stats.trials;
  eco.warm_trials = warm.stats.trials;
  eco.trials_ratio = static_cast<double>(warm.stats.trials) /
                     std::max<double>(1.0, static_cast<double>(cold.stats.trials));
  eco.cold_best_cost = cold.best_cost;
  eco.warm_initial_cost = warm.initial_cost;
  eco.warm_best_cost = warm.best_cost;
  eco.warm_reached_target = warm.stop_reason == StopReason::TargetCost;
  return eco;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::parse_options(argc, argv);
  // Scale-tier circuit selection (parse_options defaults target the paper
  // circuits); an explicit --circuit always wins.
  const Cli cli(argc, argv);
  if (!cli.has("circuit")) {
    if (options.smoke) {
      options.circuits = {"scale10k"};
    } else if (cli.get_flag("full")) {
      options.circuits = experiments::scale_circuit_names();  // + scale200k
    } else {
      options.circuits = {"scale10k", "scale50k"};
    }
  }

  bench::print_header("macro_scale",
                      "build / probe / time-to-quality at 10k-200k gates");
  std::printf("%-10s %10s %10s %12s  %s\n", "circuit", "build ms", "setup ms",
              "probe ns/op", "engine runs (wall ms | best cost | tt50 s)");

  for (const std::string& name : options.circuits) {
    Stopwatch watch;
    const netlist::Netlist nl = netlist::make_benchmark(name);
    const double build_ms = watch.millis();

    watch.reset();
    const placement::Layout layout(nl);
    cost::CostParams params;
    Rng rng(1);
    auto placement = placement::Placement::random(nl, layout, rng);
    auto paths =
        timing::extract_critical_paths(nl, params.num_paths, params.delay_model);
    const cost::FuzzyGoals goals =
        cost::Evaluator::calibrate_goals(placement, *paths, params);
    cost::Evaluator eval(std::move(placement), std::move(paths), params, goals);
    const double setup_ms = watch.millis();

    // Steady-state probe throughput over random candidate swaps (warm-up
    // first so every scratch buffer reaches its high-water mark).
    const auto& movable = nl.movable_cells();
    Rng probe_rng(2);
    const std::size_t warmup = 1000;
    const std::size_t probes = options.smoke ? 20'000 : 50'000;
    for (std::size_t i = 0; i < warmup; ++i) {
      const auto [ia, ib] = probe_rng.distinct_pair(movable.size());
      eval.probe_swap(movable[ia], movable[ib]);
    }
    watch.reset();
    double sink = 0.0;
    for (std::size_t i = 0; i < probes; ++i) {
      const auto [ia, ib] = probe_rng.distinct_pair(movable.size());
      sink += eval.probe_swap(movable[ia], movable[ib]);
    }
    const double probe_ns = watch.seconds() * 1e9 / static_cast<double>(probes);

    // Batched probe throughput at the production batch width (the same
    // candidate distribution, scored through Evaluator::probe_batch eight
    // at a time — the width base_config plumbs into every candidate loop).
    const std::size_t batch_width = 8;
    std::vector<cost::Move> batch_moves(batch_width);
    std::vector<double> batch_costs(batch_width);
    const auto fill_batch = [&] {
      for (std::size_t w = 0; w < batch_width; ++w) {
        const auto [ia, ib] = probe_rng.distinct_pair(movable.size());
        batch_moves[w] = {movable[ia], movable[ib]};
      }
    };
    for (std::size_t i = 0; i < warmup / batch_width; ++i) {
      fill_batch();
      eval.probe_batch(batch_moves, batch_costs);
    }
    const std::size_t batch_rounds = probes / batch_width;
    watch.reset();
    for (std::size_t i = 0; i < batch_rounds; ++i) {
      fill_batch();
      eval.probe_batch(batch_moves, batch_costs);
      sink += batch_costs[0];
    }
    const double batch_probe_ns =
        watch.seconds() * 1e9 /
        static_cast<double>(batch_rounds * batch_width);
    const double batch_speedup = probe_ns / batch_probe_ns;

    std::vector<EngineReport> engines;
    for (const char* engine :
         {"tabu", "anneal", "parallel-sim", "parallel-shared"}) {
      engines.push_back(run_engine(nl, engine, options));
    }
    const std::vector<ScalingPoint> scaling = run_shared_scaling(nl, options);
    const EcoReport eco = run_eco(nl, options);

    std::printf("%-10s %10.1f %10.1f %12.1f  batch8 %.1f ns/op (%.2fx)  ",
                name.c_str(), build_ms, setup_ms, probe_ns, batch_probe_ns,
                batch_speedup);
    for (const EngineReport& e : engines) {
      std::printf("%s: %.0f | %.4f | %.3g   ", e.name.c_str(), e.wall_ms,
                  e.best_cost, e.tt50_s);
    }
    std::printf("(probe sink %.3g)\n", sink);
    std::printf("%-10s shared scaling:", "");
    for (const ScalingPoint& p : scaling) {
      std::printf("  %zuT %.3gx (%.3g trials/s)", p.threads, p.speedup_vs_1,
                  p.trials_per_s);
    }
    std::printf("\n");
    std::printf(
        "%-10s eco: cold %llu trials -> warm %llu trials (%.3fx)%s\n", "",
        static_cast<unsigned long long>(eco.cold_trials),
        static_cast<unsigned long long>(eco.warm_trials), eco.trials_ratio,
        eco.warm_reached_target ? "" : "  [target NOT reached]");

    // Machine-readable line for bench/dump_json.py (schema-validated there).
    std::printf(
        "MACRO {\"circuit\":\"%s\",\"gates\":%zu,\"nets\":%zu,\"pins\":%zu,"
        "\"logic_depth\":%zu,\"build_ms\":%.3f,\"setup_ms\":%.3f,"
        "\"probe_ns\":%.3f,\"batch_probe_ns\":%.3f,\"batch_speedup\":%.3f,"
        "\"engines\":{",
        name.c_str(), nl.num_movable(), nl.num_nets(), nl.num_pins(),
        nl.logic_depth(), build_ms, setup_ms, probe_ns, batch_probe_ns,
        batch_speedup);
    for (std::size_t i = 0; i < engines.size(); ++i) {
      const EngineReport& e = engines[i];
      std::printf(
          "%s\"%s\":{\"wall_ms\":%.3f,\"makespan_s\":%.6f,"
          "\"initial_cost\":%.9g,\"best_cost\":%.9g,\"best_quality\":%.9g,"
          "\"tt50_s\":%.6f}",
          i == 0 ? "" : ",", e.name.c_str(), e.wall_ms, e.makespan_s,
          e.initial_cost, e.best_cost, e.best_quality, e.tt50_s);
    }
    std::printf("},\"shared_scaling\":{");
    for (std::size_t i = 0; i < scaling.size(); ++i) {
      const ScalingPoint& p = scaling[i];
      std::printf(
          "%s\"%zu\":{\"makespan_s\":%.6f,\"trials_per_s\":%.3f,"
          "\"speedup_vs_1\":%.4f}",
          i == 0 ? "" : ",", p.threads, p.makespan_s, p.trials_per_s,
          p.speedup_vs_1);
    }
    std::printf(
        "},\"eco\":{\"cold_trials\":%llu,\"warm_trials\":%llu,"
        "\"trials_ratio\":%.6f,\"cold_best_cost\":%.9g,"
        "\"warm_initial_cost\":%.9g,\"warm_best_cost\":%.9g,"
        "\"warm_reached_target\":%s}}\n",
        static_cast<unsigned long long>(eco.cold_trials),
        static_cast<unsigned long long>(eco.warm_trials), eco.trials_ratio,
        eco.cold_best_cost, eco.warm_initial_cost, eco.warm_best_cost,
        eco.warm_reached_target ? "true" : "false");
  }
  return 0;
}
