// Placement state: an assignment of movable cells to layout slots.
//
// The assignment is a bijection between gates and slots. Geometry is exact
// for variable-width cells: within a row, a cell's x center is the prefix
// sum of the widths of the cells at earlier columns plus half its own width.
//
// The only mutation is swap_cells(a, b), which is an involution — applying
// the same swap again restores the previous state exactly. Tabu search and
// the candidate-list workers rely on this for cheap undo of trial moves.
#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "placement/layout.hpp"
#include "support/rng.hpp"

namespace pts::placement {

class Placement {
 public:
  /// Identity placement: movable cell k (in netlist movable order) occupies
  /// slot k.
  Placement(const netlist::Netlist& netlist, const Layout& layout);

  /// Uniformly random placement.
  static Placement random(const netlist::Netlist& netlist, const Layout& layout,
                          Rng& rng);

  const netlist::Netlist& netlist() const { return *netlist_; }
  const Layout& layout() const { return *layout_; }

  SlotId slot_of(netlist::CellId cell) const {
    PTS_DCHECK(cell < slot_of_.size());
    return slot_of_[cell];
  }
  netlist::CellId cell_at(SlotId slot) const {
    PTS_DCHECK(slot < cell_at_.size());
    return cell_at_[slot];
  }

  std::size_t row_of(netlist::CellId cell) const {
    return layout_->row_of_slot(slot_of(cell));
  }

  /// Center position of any cell: pads from the layout, gates from the row
  /// geometry. Served from flat per-cell coordinate arrays maintained
  /// across swaps — one load per axis, no branch, no slot→row division —
  /// because this runs once per pin of every net-box recomputation.
  Point position(netlist::CellId cell) const {
    PTS_DCHECK(cell < pos_x_.size());
    return Point{pos_x_[cell], pos_y_[cell]};
  }

  /// Flat per-cell coordinate arrays (indexed by cell id, pads included).
  /// The batched probe kernels iterate these directly — and prefetch into
  /// them — instead of going through position() one cell at a time.
  std::span<const double> positions_x() const { return pos_x_; }
  std::span<const double> positions_y() const { return pos_y_; }

  /// Width of the occupied extent of `row` (sum of cell widths in it).
  double row_extent(std::size_t row) const {
    PTS_DCHECK(row < row_extent_.size());
    return row_extent_[row];
  }
  /// Max row extent; the area objective is core_height() * max_row_extent.
  /// O(1): maintained incrementally across swaps (the cost evaluator reads
  /// it once per probe, so an O(rows) scan here is an O(sqrt cells) tax on
  /// every trial at scale). Bit-identical to a fresh max over row_extent().
  double max_row_extent() const { return max_extent_; }

  /// Swaps the slots of two distinct movable cells and updates geometry.
  /// Appends every cell whose center moved (including a and b) to
  /// `moved_cells` if non-null. Involution: swap(a, b); swap(a, b); is a
  /// no-op.
  void swap_cells(netlist::CellId a, netlist::CellId b,
                  std::vector<netlist::CellId>* moved_cells = nullptr);

  /// Full invariant re-check (bijection + geometry); O(cells). Test hook.
  void check_consistent() const;

  bool operator==(const Placement& other) const {
    return slot_of_ == other.slot_of_;
  }

  /// Compact permutation view: slot index -> movable cell id, for
  /// serialization across the message-passing layer.
  const std::vector<netlist::CellId>& slots() const { return cell_at_; }

  /// Rebuilds state from a permutation produced by slots() (e.g. received
  /// in a message). The permutation must be over the same netlist/layout.
  void assign_slots(const std::vector<netlist::CellId>& cell_at_slot);

 private:
  void rebuild_row(std::size_t row);
  void rebuild_all_rows();
  void rescan_max_extent();

  const netlist::Netlist* netlist_;
  const netlist::Topology* topology_;  // SoA widths/flags for the hot paths
  const Layout* layout_;
  std::vector<SlotId> slot_of_;          // by cell id; kNoSlot for pads
  std::vector<netlist::CellId> cell_at_;  // by slot
  std::vector<double> pos_x_;             // by cell id (pads fixed at build)
  std::vector<double> pos_y_;             // by cell id (pads fixed at build)
  std::vector<double> row_extent_;        // by row
  double max_extent_ = 0.0;               // max of row_extent_, kept current
  std::size_t max_extent_row_ = 0;        // first row holding max_extent_
};

}  // namespace pts::placement
