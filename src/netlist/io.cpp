#include "netlist/io.hpp"

#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "support/check.hpp"

namespace pts::netlist {

void write_netlist(const Netlist& netlist, std::ostream& os) {
  os << "# pts netlist v1\n";
  os << "circuit " << netlist.name() << "\n";
  for (const auto& cell : netlist.cells()) {
    switch (cell.kind) {
      case CellKind::PrimaryInput:
        os << "pi " << cell.name << "\n";
        break;
      case CellKind::PrimaryOutput:
        os << "po " << cell.name << "\n";
        break;
      case CellKind::Gate:
        os << "gate " << cell.name << ' ' << cell.width << ' '
           << cell.intrinsic_delay << ' ' << cell.load_factor << "\n";
        break;
    }
  }
  for (const auto& net : netlist.nets()) {
    os << "net " << net.name << ' ' << net.weight << ' '
       << netlist.cell(net.driver).name;
    for (CellId sink : net.sinks) os << ' ' << netlist.cell(sink).name;
    os << "\n";
  }
}

std::string to_net_format(const Netlist& netlist) {
  std::ostringstream os;
  write_netlist(netlist, os);
  return os.str();
}

Netlist parse_netlist(std::istream& is) {
  NetlistBuilder builder("unnamed");
  bool named = false;
  std::unordered_map<std::string, CellId> cells;
  std::string line;
  std::size_t line_no = 0;

  auto fail = [&](const std::string& why) {
    PTS_CHECK_MSG(false, ("netlist parse error at line " +
                          std::to_string(line_no) + ": " + why)
                             .c_str());
  };
  auto lookup = [&](const std::string& name) -> CellId {
    const auto it = cells.find(name);
    if (it == cells.end()) fail("unknown cell '" + name + "'");
    return it->second;
  };

  std::optional<NetlistBuilder> named_builder;
  while (std::getline(is, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword) || keyword[0] == '#') continue;

    NetlistBuilder& b = named_builder ? *named_builder : builder;
    if (keyword == "circuit") {
      std::string name;
      if (!(ls >> name)) fail("circuit needs a name");
      if (named) fail("duplicate circuit line");
      PTS_CHECK_MSG(cells.empty(), "circuit line must precede cells");
      named_builder.emplace(name);
      named = true;
    } else if (keyword == "pi") {
      std::string name;
      if (!(ls >> name)) fail("pi needs a name");
      cells[name] = b.add_primary_input(name);
    } else if (keyword == "po") {
      std::string name;
      if (!(ls >> name)) fail("po needs a name");
      cells[name] = b.add_primary_output(name);
    } else if (keyword == "gate") {
      std::string name;
      int width = 0;
      double delay = 0.0, load = 0.0;
      if (!(ls >> name >> width >> delay >> load)) fail("malformed gate line");
      cells[name] = b.add_gate(name, width, delay, load);
    } else if (keyword == "net") {
      std::string name, driver;
      double weight = 1.0;
      if (!(ls >> name >> weight >> driver)) fail("malformed net line");
      const NetId net = b.add_net(name, lookup(driver), weight);
      std::string sink;
      std::size_t sinks = 0;
      while (ls >> sink) {
        b.connect_input(net, lookup(sink));
        ++sinks;
      }
      if (sinks == 0) fail("net '" + name + "' has no sinks");
    } else {
      fail("unknown keyword '" + keyword + "'");
    }
  }
  return named_builder ? std::move(*named_builder).build()
                       : std::move(builder).build();
}

Netlist parse_netlist_string(const std::string& text) {
  std::istringstream is(text);
  return parse_netlist(is);
}

void save_netlist_file(const Netlist& netlist, const std::string& path) {
  std::ofstream os(path);
  PTS_CHECK_MSG(os.good(), "cannot open netlist file for writing");
  write_netlist(netlist, os);
}

Netlist load_netlist_file(const std::string& path) {
  std::ifstream is(path);
  PTS_CHECK_MSG(is.good(), "cannot open netlist file for reading");
  return parse_netlist(is);
}

}  // namespace pts::netlist
