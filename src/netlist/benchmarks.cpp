#include "netlist/benchmarks.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace pts::netlist {

const std::vector<BenchmarkInfo>& paper_benchmarks() {
  // Cell counts follow Section 5 of the paper; pad counts follow the
  // published ISCAS profiles of similarly sized circuits.
  static const std::vector<BenchmarkInfo> table = {
      {"highway", 56, 8, 8, 0x0156u},
      {"c532", 395, 20, 20, 0x0532u},
      {"c1355", 1451, 41, 32, 0x1355u},
      {"c3540", 2243, 50, 22, 0x3540u},
  };
  return table;
}

bool is_paper_benchmark(std::string_view name) {
  const auto& all = paper_benchmarks();
  return std::any_of(all.begin(), all.end(),
                     [&](const BenchmarkInfo& b) { return b.name == name; });
}

GeneratorConfig benchmark_config(std::string_view name) {
  for (const auto& info : paper_benchmarks()) {
    if (info.name != name) continue;
    GeneratorConfig config;
    config.name = info.name;
    config.num_gates = info.cells;
    config.num_primary_inputs = info.primary_inputs;
    config.num_primary_outputs = info.primary_outputs;
    config.seed = info.seed;
    return config;
  }
  PTS_CHECK_MSG(false, "unknown benchmark circuit");
}

Netlist make_benchmark(std::string_view name) {
  return generate_circuit(benchmark_config(name));
}

}  // namespace pts::netlist
