// Shared experiment workloads and configurations.
//
// Every figure bench pulls its circuits and base parameters from here so
// the whole evaluation is consistent: same seeded circuits, same tabu
// parameters, iteration budgets scaled to circuit size the way the paper's
// fixed "algorithm parameters" were. `quick` shrinks budgets (used by the
// default bench invocation so the full suite stays in CI-friendly time;
// pass --full to the bench binaries for larger runs).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "netlist/benchmarks.hpp"
#include "parallel/pts.hpp"

namespace pts::experiments {

/// Cached benchmark circuit (generated once per process).
const netlist::Netlist& circuit(std::string_view name);

/// Circuit names in the paper's size order.
std::vector<std::string> circuit_names();

/// Base configuration for a circuit: paper defaults (4 TSWs, 1 CLW,
/// half-force policy on the 12-machine cluster) with iteration budgets
/// scaled to circuit size.
parallel::PtsConfig base_config(const netlist::Netlist& netlist,
                                std::uint64_t seed = 1, bool quick = true);

/// Runs the sim engine once.
parallel::PtsResult run_sim(const netlist::Netlist& netlist,
                            const parallel::PtsConfig& config);

/// Quality threshold "x" for speedup measurements: the cost after
/// `fraction` of the baseline run's total improvement.
double improvement_threshold(const parallel::PtsResult& baseline, double fraction);

}  // namespace pts::experiments
