// Swap-free geometry overlay for batched trial evaluation.
//
// probe_swap() evaluates a candidate by physically swapping the placement,
// recomputing the touched net boxes, and swapping back — two geometry
// mutations (each with row prefix-sum rebuilds) per trial. A SwapOverlay
// instead *describes* the would-be geometry of swap_cells(a, b) against the
// untouched committed state: a handful of per-row shift intervals plus the
// new centers of a and b. The batched probe path stages the overlay into
// shadow position arrays — overlaid_position() for each moved cell, O(moved)
// writes — and the box kernel (HpwlState::probe_nets_batch) then reads them
// with plain loads, so scoring N candidates never serializes through
// placement mutations and pays no per-pin classification cost.
//
// Exactness (why overlaid positions are bit-identical to a real swap):
// cell widths are integers, so every committed x center is an exact
// multiple of 0.5 and every row prefix sum is exact in double. The overlay
// shifts (width differences) and the recomputed centers of a and b are the
// same exact values rebuild_row() would produce — no rounding is involved
// anywhere, which is what lets probe_batch promise bit-identity with
// probe_swap (pinned by tests/property_test.cpp).
#pragma once

#include <vector>

#include "placement/placement.hpp"

namespace pts::placement {

/// The would-be geometry of swap_cells(a, b), relative to the committed
/// placement. A movable cell's overlaid position is:
///   - (a_x, a_y) for a, (b_x, b_y) for b;
///   - shifted by shift_a in x if it lies on row_a_y with x in (a_lo, a_hi);
///   - shifted by shift_b in x if it lies on row_b_y with x in (b_lo, b_hi);
///   - unchanged otherwise.
/// Pads and cells on untouched rows never match (row sentinels are
/// negative; all real y coordinates are positive). The intervals are open:
/// rebuild_row() only shifts cells strictly after the swapped column.
struct SwapOverlay {
  netlist::CellId a = netlist::kNoCell;
  netlist::CellId b = netlist::kNoCell;
  double a_x = 0.0, a_y = 0.0;  ///< new center of a
  double b_x = 0.0, b_y = 0.0;  ///< new center of b
  double row_a_y = -1.0;        ///< y of a's original row (-1: no shift band)
  double row_b_y = -1.0;        ///< y of b's original row (-1: no shift band)
  double a_lo = 0.0, a_hi = 0.0;  ///< open x interval shifted on row_a_y
  double b_lo = 0.0, b_hi = 0.0;  ///< open x interval shifted on row_b_y
  double shift_a = 0.0;           ///< x shift applied inside (a_lo, a_hi)
  double shift_b = 0.0;           ///< x shift applied inside (b_lo, b_hi)
  /// max_row_extent() of the would-be placement (exact, integer-valued).
  double max_extent = 0.0;
};

/// Builds the overlay for swapping movable cells `a` and `b` and appends
/// the would-be moved cells to `moved` in the exact order
/// Placement::swap_cells(a, b, &moved) would report them (same cells, same
/// order — the net-marking order, and with it every downstream summation
/// order, is part of the probe/commit bit-identity contract).
SwapOverlay build_swap_overlay(const Placement& placement, netlist::CellId a,
                               netlist::CellId b,
                               std::vector<netlist::CellId>* moved);

/// Overlaid position of a cell reported moved by build_swap_overlay, given
/// its committed coordinates (cx, cy). The same select arithmetic that a
/// real swap_cells(a, b) would evaluate — shift-band offset, then the new
/// centers of a and b overriding — so staging these values into a shadow
/// position array reproduces the would-be geometry bit for bit. Only
/// meaningful for moved cells (they are all movable; pads never appear in
/// the moved list, so no movability check is needed here).
inline void overlaid_position(const SwapOverlay& ov, netlist::CellId c,
                              double cx, double cy, double* x, double* y) {
  const bool in_a = (cy == ov.row_a_y) & (cx > ov.a_lo) & (cx < ov.a_hi);
  const bool in_b = (cy == ov.row_b_y) & (cx > ov.b_lo) & (cx < ov.b_hi);
  double ox = cx + (in_a ? ov.shift_a : 0.0) + (in_b ? ov.shift_b : 0.0);
  double oy = cy;
  const bool is_a = c == ov.a;
  const bool is_b = c == ov.b;
  ox = is_a ? ov.a_x : ox;
  oy = is_a ? ov.a_y : oy;
  ox = is_b ? ov.b_x : ox;
  oy = is_b ? ov.b_y : oy;
  *x = ox;
  *y = oy;
}

}  // namespace pts::placement
