// Figure 8 — Speedup in reaching a solution of cost less than x for
// different numbers of TSWs.
//
// Paper setup: 1 CLW per TSW, TSWs swept 1..8, two circuits. The paper
// observes a *critical point* at 4 TSWs for c532 and c3540: adding TSWs
// beyond it degrades speedup (12 machines saturate — more TSWs time-share
// machines, slowing every global iteration round).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pts;
  auto options = bench::parse_options(argc, argv);
  const Cli cli(argc, argv);
  if (!cli.has("circuit")) options.circuits = {"c532", "c3540"};
  bench::print_header("Figure 8", "speedup vs #TSWs (t(1,x)/t(n,x))");

  std::vector<Series> speedups;
  std::vector<Series> times;
  for (const auto& name : options.circuits) {
    const auto& circuit = experiments::circuit(name);
    auto config = experiments::base_config(circuit, 31, options.quick);
    config.clws_per_tsw = 1;
    bench::apply_scale(config, options);
    const auto m = experiments::measure_speedup(
        circuit, config, experiments::VaryWorkers::Tsws, {1, 2, 4, 6, 8},
        /*improvement_fraction=*/0.7, options.seeds);
    Series s = m.speedup;
    s.name = name;
    speedups.push_back(std::move(s));
    Series t = m.time_to_threshold;
    t.name = name;
    times.push_back(std::move(t));
    std::printf("threshold cost for %s: %.4f\n", name.c_str(), m.threshold_cost);
  }

  emit_table("Fig 8: speedup t(1,x)/t(n,x) vs #TSWs (1 CLW each)",
             series_table("tsws", speedups, 3));
  emit_table("Fig 8 (support): virtual time to reach x vs #TSWs",
             series_table("tsws", times, 2));
  return 0;
}
