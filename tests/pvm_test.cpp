// Unit tests for src/pvm: message pack/unpack, mailboxes, machine
// profiles, and the threaded virtual machine.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "pvm/frame.hpp"
#include "pvm/machine.hpp"
#include "pvm/mailbox.hpp"
#include "pvm/message.hpp"
#include "pvm/vm.hpp"
#include "support/rng.hpp"

namespace pts::pvm {
namespace {

// This binary mixes EXPECT_DEATH with multi-threaded tests; the default
// "fast" death-test style forks from a threaded process, which gtest
// documents as unsafe. Death tests switch to "threadsafe" (re-exec) below.

TEST(Message, PackUnpackAllTypes) {
  Message msg(42);
  msg.pack_u64(123456789012345ull);
  msg.pack_i64(-42);
  msg.pack_u32(7);
  msg.pack_double(3.25);
  msg.pack_bool(true);
  msg.pack_string("hello world");
  msg.pack_u32_vector({1, 2, 3});
  msg.pack_double_vector({0.5, -1.5});

  EXPECT_EQ(msg.tag(), 42);
  EXPECT_EQ(msg.unpack_u64(), 123456789012345ull);
  EXPECT_EQ(msg.unpack_i64(), -42);
  EXPECT_EQ(msg.unpack_u32(), 7u);
  EXPECT_DOUBLE_EQ(msg.unpack_double(), 3.25);
  EXPECT_TRUE(msg.unpack_bool());
  EXPECT_EQ(msg.unpack_string(), "hello world");
  EXPECT_EQ(msg.unpack_u32_vector(), (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_EQ(msg.unpack_double_vector(), (std::vector<double>{0.5, -1.5}));
  EXPECT_TRUE(msg.fully_consumed());
}

TEST(Message, RewindAllowsReUnpack) {
  Message msg(1);
  msg.pack_u32(5);
  EXPECT_EQ(msg.unpack_u32(), 5u);
  msg.rewind();
  EXPECT_EQ(msg.unpack_u32(), 5u);
}

TEST(Message, EmptyVectorsRoundTrip) {
  Message msg(1);
  msg.pack_u32_vector({});
  msg.pack_double_vector({});
  msg.pack_string("");
  EXPECT_TRUE(msg.unpack_u32_vector().empty());
  EXPECT_TRUE(msg.unpack_double_vector().empty());
  EXPECT_EQ(msg.unpack_string(), "");
}

TEST(MessageDeath, TypeMismatchAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Message msg(1);
  msg.pack_u32(5);
  EXPECT_DEATH(msg.unpack_double(), "type mismatch");
}

TEST(MessageDeath, UnderflowAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Message msg(1);
  msg.pack_u32(5);
  msg.unpack_u32();
  EXPECT_DEATH(msg.unpack_u32(), "underflow");
}

TEST(MailboxTest, FifoWithinTag) {
  Mailbox box;
  Message a(1);
  a.pack_u32(10);
  Message b(1);
  b.pack_u32(20);
  box.deliver(std::move(a));
  box.deliver(std::move(b));
  EXPECT_EQ(box.pending(), 2u);
  EXPECT_EQ(box.recv(1)->unpack_u32(), 10u);
  EXPECT_EQ(box.recv(1)->unpack_u32(), 20u);
}

TEST(MailboxTest, TagFilterSkipsOthers) {
  Mailbox box;
  box.deliver(Message(1));
  box.deliver(Message(2));
  EXPECT_TRUE(box.probe(2));
  const auto m = box.recv(2);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->tag(), 2);
  EXPECT_TRUE(box.probe(1));
  EXPECT_FALSE(box.probe(2));
}

TEST(MailboxTest, TryRecvNonBlocking) {
  Mailbox box;
  EXPECT_FALSE(box.try_recv().has_value());
  box.deliver(Message(3));
  EXPECT_TRUE(box.try_recv(3).has_value());
  EXPECT_FALSE(box.try_recv(3).has_value());
}

TEST(MailboxTest, CloseUnblocksReceiver) {
  Mailbox box;
  std::atomic<bool> returned{false};
  std::thread receiver([&] {
    const auto m = box.recv();
    EXPECT_FALSE(m.has_value());
    returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned);
  box.close();
  receiver.join();
  EXPECT_TRUE(returned);
  // Deliveries after close are dropped.
  box.deliver(Message(1));
  EXPECT_EQ(box.pending(), 0u);
}

TEST(MailboxTest, RecvDrainsQueueAfterClose) {
  Mailbox box;
  box.deliver(Message(7));
  box.close();
  // The queued message is still deliverable...
  EXPECT_TRUE(box.recv().has_value());
  // ...then recv reports shutdown.
  EXPECT_FALSE(box.recv().has_value());
}

TEST(MailboxTest, ConcurrentSendersDeliverEverythingOnce) {
  // N sender threads each deliver K tagged messages while one receiver
  // drains; every payload must arrive exactly once and per-sender streams
  // must stay FIFO.
  constexpr std::uint32_t kSenders = 8;
  constexpr std::uint32_t kPerSender = 200;
  Mailbox box;

  std::vector<std::thread> senders;
  senders.reserve(kSenders);
  for (std::uint32_t s = 0; s < kSenders; ++s) {
    senders.emplace_back([&box, s] {
      for (std::uint32_t i = 0; i < kPerSender; ++i) {
        Message m(1);
        m.pack_u32(s);
        m.pack_u32(i);
        box.deliver(std::move(m));
      }
    });
  }

  std::vector<std::uint32_t> next_expected(kSenders, 0);
  for (std::uint32_t n = 0; n < kSenders * kPerSender; ++n) {
    auto m = box.recv(1);
    ASSERT_TRUE(m.has_value());
    const std::uint32_t s = m->unpack_u32();
    const std::uint32_t seq = m->unpack_u32();
    ASSERT_LT(s, kSenders);
    EXPECT_EQ(seq, next_expected[s]) << "sender " << s << " stream reordered";
    next_expected[s] = seq + 1;
  }
  for (auto& t : senders) t.join();
  EXPECT_EQ(box.pending(), 0u);
  for (std::uint32_t s = 0; s < kSenders; ++s) {
    EXPECT_EQ(next_expected[s], kPerSender);
  }
}

TEST(MailboxTest, ConcurrentSendersWithConcurrentClose) {
  // close() racing active senders must neither deadlock nor corrupt the
  // queue: the receiver sees a clean prefix of deliveries, then nullopt.
  constexpr int kSenders = 4;
  Mailbox box;
  std::atomic<bool> stop{false};
  std::vector<std::thread> senders;
  for (int s = 0; s < kSenders; ++s) {
    senders.emplace_back([&] {
      while (!stop.load()) {
        Message m(1);
        m.pack_u32(99);
        box.deliver(std::move(m));
      }
    });
  }
  std::size_t received = 0;
  while (received < 100) {
    if (box.recv(1).has_value()) ++received;
  }
  box.close();
  stop = true;
  for (auto& t : senders) t.join();
  // Drain whatever landed before close; after that recv reports shutdown.
  while (box.recv(1).has_value()) {
  }
  EXPECT_FALSE(box.recv(1).has_value());
  EXPECT_TRUE(box.closed());
}

TEST(MailboxTest, EmptyPayloadRoundTrip) {
  // A tag-only message (no packed fields) is a legal control message.
  Mailbox box;
  box.deliver(Message(17));
  auto m = box.recv(17);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->tag(), 17);
  EXPECT_EQ(m->byte_size(), 0u);
  EXPECT_TRUE(m->fully_consumed());
}

TEST(Vm, SelfSendLoopsBack) {
  // A task sending to its own id must find the message in its own mailbox
  // (PVM allows pvm_send to self); the host is a task like any other.
  VirtualMachine vm(ClusterConfig::homogeneous(2));
  Message note(21);
  note.pack_string("to self");
  vm.host().send(vm.host().self(), std::move(note));
  auto m = vm.host().recv(21);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->sender(), vm.host().self());
  EXPECT_EQ(m->unpack_string(), "to self");

  // Same from a spawned task; it reports the outcome to the host so the
  // check happens before shutdown can close any mailbox.
  vm.spawn("selfish", [](TaskContext& ctx) {
    Message m2(5);
    m2.pack_u32(77);
    ctx.send(ctx.self(), std::move(m2));
    auto got = ctx.try_recv(5);
    Message verdict(6);
    verdict.pack_bool(got.has_value() && got->unpack_u32() == 77 &&
                      got->sender() == ctx.self());
    ctx.send(0, std::move(verdict));
  });
  auto verdict = vm.host().recv(6);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_TRUE(verdict->unpack_bool());
  vm.shutdown();
}

TEST(Vm, EmptyPayloadControlMessagesUnderLoad) {
  // Empty (tag-only) messages from several concurrent senders all arrive.
  VirtualMachine vm(ClusterConfig::homogeneous(4));
  constexpr int kSenders = 3;
  constexpr int kEach = 100;
  const TaskId sink = vm.spawn("sink", [](TaskContext& ctx) {
    int seen = 0;
    while (auto m = ctx.recv(9)) {
      EXPECT_EQ(m->byte_size(), 0u);
      if (++seen == kSenders * kEach) {
        ctx.send(0, Message(10));
        return;
      }
    }
  });
  for (int s = 0; s < kSenders; ++s) {
    vm.spawn("pinger", [sink](TaskContext& ctx) {
      for (int i = 0; i < kEach; ++i) ctx.send(sink, Message(9));
    });
  }
  EXPECT_TRUE(vm.host().recv(10).has_value());
  vm.shutdown();
}

TEST(MachineProfileTest, SpeedScalesTime) {
  Rng rng(1);
  const MachineProfile fast{"f", 1.0, 0.0};
  const MachineProfile slow{"s", 0.25, 0.0};
  EXPECT_DOUBLE_EQ(fast.time_for(10.0, rng), 10.0);
  EXPECT_DOUBLE_EQ(slow.time_for(10.0, rng), 40.0);
}

TEST(MachineProfileTest, JitterOnlyIncreasesTime) {
  Rng rng(2);
  const MachineProfile noisy{"n", 1.0, 0.3};
  for (int i = 0; i < 200; ++i) {
    EXPECT_GE(noisy.time_for(5.0, rng), 5.0);
  }
}

TEST(ClusterTest, PaperClusterComposition) {
  const auto cluster = ClusterConfig::paper_cluster(0.0);
  ASSERT_EQ(cluster.size(), 12u);
  std::size_t fast = 0, medium = 0, slow = 0;
  for (const auto& m : cluster.machines) {
    if (m.speed == 1.0) ++fast;
    else if (m.speed == 0.75) ++medium;
    else if (m.speed == 0.5) ++slow;
  }
  EXPECT_EQ(fast, 7u);
  EXPECT_EQ(medium, 3u);
  EXPECT_EQ(slow, 2u);
}

TEST(ClusterTest, RoundRobinBinding) {
  const auto cluster = ClusterConfig::homogeneous(3);
  EXPECT_EQ(&cluster.machine_for_task(0), &cluster.machines[0]);
  EXPECT_EQ(&cluster.machine_for_task(4), &cluster.machines[1]);
  EXPECT_EQ(&cluster.machine_for_task(11), &cluster.machines[2]);
}

TEST(ClusterTest, InterleavingSpreadsClasses) {
  const auto cluster = ClusterConfig::three_class(2, 2, 2);
  // First three tasks land on three different speed classes.
  EXPECT_NE(cluster.machine_for_task(0).speed, cluster.machine_for_task(1).speed);
  EXPECT_NE(cluster.machine_for_task(1).speed, cluster.machine_for_task(2).speed);
}

TEST(Vm, SpawnSendRecvEcho) {
  VirtualMachine vm(ClusterConfig::homogeneous(4));
  const TaskId echo = vm.spawn("echo", [](TaskContext& ctx) {
    for (;;) {
      auto msg = ctx.recv();
      if (!msg || msg->tag() == 99) return;
      Message reply(msg->tag() + 1);
      reply.pack_u64(msg->unpack_u64() * 2);
      ctx.send(msg->sender(), std::move(reply));
    }
  });
  Message ping(5);
  ping.pack_u64(21);
  vm.host().send(echo, std::move(ping));
  auto reply = vm.host().recv(6);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->unpack_u64(), 42u);
  EXPECT_EQ(reply->sender(), echo);
  vm.host().send(echo, Message(99));
  vm.shutdown();
}

TEST(Vm, TasksCanSpawnChildren) {
  VirtualMachine vm(ClusterConfig::homogeneous(4));
  const TaskId parent = vm.spawn("parent", [](TaskContext& ctx) {
    auto go = ctx.recv(1);
    if (!go) return;
    const TaskId child = ctx.vm().spawn("child", [](TaskContext& cctx) {
      auto m = cctx.recv(2);
      if (!m) return;
      Message up(3);
      up.pack_string("from child");
      cctx.send(m->sender(), std::move(up));
    });
    ctx.send(child, Message(2));
    auto up = ctx.recv(3);
    if (!up) return;
    Message done(4);
    done.pack_string(up->unpack_string());
    ctx.send(go->sender(), std::move(done));
  });
  vm.host().send(parent, Message(1));
  auto done = vm.host().recv(4);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->unpack_string(), "from child");
  EXPECT_EQ(vm.num_tasks(), 3u);  // host + parent + child
  vm.shutdown();
}

TEST(Vm, ChargeAccruesVirtualTimeBySpeed) {
  // Two machines, speeds 1.0 and 0.5; tasks charged the same work.
  ClusterConfig cluster;
  cluster.machines = {{"fast", 1.0, 0.0}, {"slow", 0.5, 0.0}};
  VirtualMachine vm(cluster);  // host -> fast
  std::atomic<double> slow_time{0.0};
  const TaskId slow = vm.spawn("slow", [&](TaskContext& ctx) {  // task 1 -> slow
    ctx.charge(10.0);
    slow_time = ctx.virtual_time();
    ctx.recv();  // park until shutdown
  });
  (void)slow;
  vm.host().charge(10.0);
  EXPECT_DOUBLE_EQ(vm.host().virtual_time(), 10.0);
  // Wait until the slow task has charged.
  while (slow_time.load() == 0.0) std::this_thread::yield();
  EXPECT_DOUBLE_EQ(slow_time.load(), 20.0);
  vm.shutdown();
}

TEST(Vm, ShutdownUnblocksEverything) {
  VirtualMachine vm(ClusterConfig::homogeneous(2));
  std::atomic<int> finished{0};
  for (int i = 0; i < 3; ++i) {
    vm.spawn("waiter", [&](TaskContext& ctx) {
      while (ctx.recv().has_value()) {
      }
      ++finished;
    });
  }
  vm.shutdown();
  EXPECT_EQ(finished.load(), 3);
}

TEST(Vm, ManyMessagesStressOrdering) {
  VirtualMachine vm(ClusterConfig::homogeneous(3));
  const TaskId sink = vm.spawn("sink", [](TaskContext& ctx) {
    std::uint64_t expected = 0;
    while (auto msg = ctx.recv(1)) {
      // Per-sender FIFO: the single sender's stream must stay ordered.
      ASSERT_EQ(msg->unpack_u64(), expected++);
      if (expected == 500) {
        Message done(2);
        ctx.send(msg->sender(), std::move(done));
        return;
      }
    }
  });
  for (std::uint64_t i = 0; i < 500; ++i) {
    Message m(1);
    m.pack_u64(i);
    vm.host().send(sink, std::move(m));
  }
  EXPECT_TRUE(vm.host().recv(2).has_value());
  vm.shutdown();
}

// -- hardened decode (peek_field / validate_layout / from_payload) ----------

TEST(MessageHardened, PeekFieldTracksCursor) {
  Message msg(1);
  msg.pack_u32(7);
  msg.pack_string("abc");
  msg.pack_double_vector({1.0});

  EXPECT_EQ(msg.peek_field(), Field::U32);
  msg.unpack_u32();
  EXPECT_EQ(msg.peek_field(), Field::Str);
  msg.unpack_string();
  EXPECT_EQ(msg.peek_field(), Field::VecF64);
  msg.unpack_double_vector();
  EXPECT_EQ(msg.peek_field(), Field::None);
  EXPECT_TRUE(msg.fully_consumed());
}

TEST(MessageHardened, FromPayloadRoundTripsWireBytes) {
  Message msg(9);
  msg.pack_u64(42);
  msg.pack_bool(false);

  Message copy = Message::from_payload(msg.tag(), msg.bytes());
  ASSERT_TRUE(copy.validate_layout());
  EXPECT_EQ(copy.tag(), 9);
  EXPECT_EQ(copy.unpack_u64(), 42u);
  EXPECT_FALSE(copy.unpack_bool());
  EXPECT_TRUE(copy.fully_consumed());
}

TEST(MessageHardened, ValidateLayoutRejectsMalformedBytes) {
  // Unknown marker byte.
  EXPECT_FALSE(Message::from_payload(1, {0xff}).validate_layout());
  // Truncated scalar: U32 marker but only two payload bytes.
  EXPECT_FALSE(Message::from_payload(1, {1, 0xaa, 0xbb}).validate_layout());
  // String whose declared length runs past the buffer: Str marker (6),
  // u32 length = 100, no bytes behind it.
  EXPECT_FALSE(Message::from_payload(1, {6, 100, 0, 0, 0}).validate_layout());
  // Vector whose element count would overflow size arithmetic: VecF64 (8),
  // u32 count = 0xffffffff.
  EXPECT_FALSE(
      Message::from_payload(1, {8, 0xff, 0xff, 0xff, 0xff}).validate_layout());
  // A well-formed buffer passes and peek sees the first field.
  Message good(1);
  good.pack_string("x");
  Message adopted = Message::from_payload(1, good.bytes());
  EXPECT_TRUE(adopted.validate_layout());
  EXPECT_EQ(adopted.peek_field(), Field::Str);
}

// -- wire framing (frame.hpp) ------------------------------------------------

TEST(Frame, EncodeDecodeRoundTrip) {
  Message msg(17);
  msg.pack_u64(123);
  msg.pack_string("payload");

  FrameDecoder decoder;
  const auto bytes = encode_frame(msg);
  EXPECT_EQ(bytes.size(), kFrameHeaderBytes + msg.byte_size());
  ASSERT_TRUE(decoder.feed(bytes.data(), bytes.size()));

  auto out = decoder.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->tag(), 17);
  EXPECT_EQ(out->unpack_u64(), 123u);
  EXPECT_EQ(out->unpack_string(), "payload");
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(Frame, ByteAtATimeFeedReassembles) {
  // Partial reads at the harshest granularity: one byte per feed. The
  // decoder must never yield a frame early and must yield exactly one at
  // the end.
  Message msg(3);
  msg.pack_double(2.5);
  msg.pack_u32_vector({9, 8, 7});
  const auto bytes = encode_frame(msg);

  FrameDecoder decoder;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    ASSERT_TRUE(decoder.feed(&bytes[i], 1));
    ASSERT_FALSE(decoder.next().has_value()) << "yielded early at byte " << i;
  }
  ASSERT_TRUE(decoder.feed(&bytes[bytes.size() - 1], 1));
  auto out = decoder.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_DOUBLE_EQ(out->unpack_double(), 2.5);
  EXPECT_EQ(out->unpack_u32_vector(), (std::vector<std::uint32_t>{9, 8, 7}));
}

TEST(Frame, ManyFramesPerChunkAndSplitTail) {
  // Short-write shape: two full frames plus the front half of a third in
  // one feed, then the rest.
  std::vector<std::uint8_t> stream;
  for (int tag = 1; tag <= 3; ++tag) {
    Message msg(tag);
    msg.pack_i64(tag * 10);
    encode_frame(msg, stream);
  }
  const std::size_t split = stream.size() - 5;

  FrameDecoder decoder;
  ASSERT_TRUE(decoder.feed(stream.data(), split));
  auto first = decoder.next();
  auto second = decoder.next();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->tag(), 1);
  EXPECT_EQ(second->tag(), 2);
  EXPECT_FALSE(decoder.next().has_value());

  ASSERT_TRUE(decoder.feed(stream.data() + split, stream.size() - split));
  auto third = decoder.next();
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->tag(), 3);
  EXPECT_EQ(third->unpack_i64(), 30);
}

TEST(Frame, SeededRandomSplitPointsDecodeIdentically) {
  // Adversarial reassembly: the same multi-frame byte stream, fed in chunks
  // cut at seeded-random split points, must decode to exactly the frames a
  // single whole-stream feed yields — regardless of where the cuts land.
  std::vector<std::uint8_t> stream;
  for (int tag = 1; tag <= 8; ++tag) {
    Message msg(tag);
    msg.pack_u64(static_cast<std::uint64_t>(tag) * 1000003u);
    msg.pack_string(std::string(static_cast<std::size_t>(tag * 7), 'x'));
    msg.pack_double_vector({1.5, -2.25, static_cast<double>(tag)});
    encode_frame(msg, stream);
  }

  const auto decode_all = [](FrameDecoder& decoder) {
    std::vector<std::pair<int, std::vector<std::uint8_t>>> frames;
    while (auto msg = decoder.next()) {
      frames.emplace_back(msg->tag(), msg->bytes());
    }
    EXPECT_FALSE(decoder.errored());
    return frames;
  };

  FrameDecoder reference_decoder;
  ASSERT_TRUE(reference_decoder.feed(stream.data(), stream.size()));
  const auto reference = decode_all(reference_decoder);
  ASSERT_EQ(reference.size(), 8u);

  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    FrameDecoder decoder;
    std::vector<std::pair<int, std::vector<std::uint8_t>>> frames;
    std::size_t offset = 0;
    while (offset < stream.size()) {
      // Chunk sizes from 1 byte (harshest) up to ~a frame and a half.
      const std::size_t chunk = std::min<std::size_t>(
          1 + static_cast<std::size_t>(rng.below(64)), stream.size() - offset);
      ASSERT_TRUE(decoder.feed(stream.data() + offset, chunk));
      for (auto& frame : decode_all(decoder)) frames.push_back(std::move(frame));
      offset += chunk;
    }
    ASSERT_EQ(frames.size(), reference.size()) << "seed " << seed;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      EXPECT_EQ(frames[i].first, reference[i].first) << "seed " << seed;
      EXPECT_EQ(frames[i].second, reference[i].second)
          << "seed " << seed << " frame " << i;
    }
  }
}

TEST(Frame, BadMagicIsStickyError) {
  std::vector<std::uint8_t> junk(kFrameHeaderBytes, 0xab);
  FrameDecoder decoder;
  decoder.feed(junk.data(), junk.size());
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.errored());
  EXPECT_NE(decoder.error().find("magic"), std::string::npos);

  // Sticky: even a valid frame afterwards is discarded.
  Message msg(1);
  msg.pack_u32(1);
  const auto good = encode_frame(msg);
  EXPECT_FALSE(decoder.feed(good.data(), good.size()));
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(Frame, ZeroLengthPayloadRejected) {
  std::vector<std::uint8_t> header;
  const std::uint32_t magic = kFrameMagic;
  const std::int32_t tag = 5;
  const std::uint32_t length = 0;
  header.resize(kFrameHeaderBytes);
  std::memcpy(header.data(), &magic, 4);
  std::memcpy(header.data() + 4, &tag, 4);
  std::memcpy(header.data() + 8, &length, 4);

  FrameDecoder decoder;
  decoder.feed(header.data(), header.size());
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.errored());
  EXPECT_NE(decoder.error().find("zero-length"), std::string::npos);
}

TEST(Frame, OversizedPayloadRejectedWithoutBuffering) {
  // A hostile length field must be rejected from the header alone — the
  // decoder never waits for (or allocates) the declared payload.
  Message msg(2);
  msg.pack_string("0123456789");  // payload > 8-byte cap below
  const auto bytes = encode_frame(msg);

  FrameDecoder decoder(/*max_payload=*/8);
  decoder.feed(bytes.data(), kFrameHeaderBytes);  // header only
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.errored());
  EXPECT_NE(decoder.error().find("max_payload"), std::string::npos);
}

}  // namespace
}  // namespace pts::pvm
