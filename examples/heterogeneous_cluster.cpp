// Live demonstration of the heterogeneity mechanism on the threaded
// message-passing runtime (real threads, throttled to machine profiles),
// driven through the pts::solver front door ("parallel-threaded").
//
// Runs the same search twice on an emulated 12-machine cluster (7 fast /
// 3 medium / 2 slow): once with parents waiting for all children
// (homogeneous run) and once with the paper's half-force rule
// (heterogeneous run). Prints wall-clock makespans — with throttling
// enabled, the half-force run finishes measurably earlier on real threads,
// which is the paper's §4.2 effect end to end.
#include <cstdio>

#include "experiments/workloads.hpp"
#include "solver/solver.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"

namespace {

constexpr const char kUsage[] =
    "usage: heterogeneous_cluster [--circuit highway] [--throttle 2e-5]\n"
    "                             [--help]\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace pts;
  const Cli cli(argc, argv);
  set_log_level(LogLevel::Warn);
  if (cli.get_flag("help")) {
    std::fputs(kUsage, stdout);
    return 0;
  }

  const std::string name = cli.get("circuit", "highway");
  const double throttle = cli.get_double("throttle", 2e-5);
  cli.reject_unused(kUsage);
  const auto& circuit = experiments::circuit(name);

  auto spec = experiments::base_spec(circuit, "parallel-threaded", 3,
                                     /*quick=*/true);
  spec.parallel.num_tsws = 4;
  spec.parallel.clws_per_tsw = 4;
  // Strong skew + real throttling so the effect is visible in wall time.
  spec.parallel.cluster =
      pvm::ClusterConfig::three_class(7, 3, 2, 1.0, 0.5, 0.25, 0.0);
  spec.parallel.threaded_seconds_per_unit = throttle;

  std::printf("circuit %s, 4 TSWs x 4 CLWs, cluster: 7 fast / 3 medium / 2 slow\n",
              circuit.name().c_str());
  std::printf("%zu tasks on %zu emulated machines (threaded engine, throttled)\n\n",
              1 + spec.parallel.num_tsws * (1 + spec.parallel.clws_per_tsw),
              spec.parallel.cluster.size());

  const solver::Solver solver;
  spec.parallel.set_policy(parallel::CollectionPolicy::WaitAll);
  const auto hom = solver.solve(spec);
  std::printf("homogeneous run   (wait-all):   %.3f s wall, best cost %.4f\n",
              hom.makespan, hom.best_cost);

  spec.parallel.set_policy(parallel::CollectionPolicy::HalfForce);
  const auto het = solver.solve(spec);
  std::printf("heterogeneous run (half-force): %.3f s wall, best cost %.4f\n",
              het.makespan, het.best_cost);

  if (hom.makespan > 0.0) {
    std::printf("\ntime saved by accounting for heterogeneity: %.1f%%\n",
                100.0 * (hom.makespan - het.makespan) / hom.makespan);
  }
  std::printf("(wall times vary with host load; the deterministic virtual-time\n"
              " version of this experiment is bench/fig11_heterogeneity)\n");
  return 0;
}
