// Text serialization of netlists (".net" format).
//
// The format is line-oriented and human-editable:
//
//   # comment
//   circuit <name>
//   pi <name>
//   po <name>
//   gate <name> <width> <intrinsic_delay> <load_factor>
//   net <name> <weight> <driver> <sink> [<sink> ...]
//
// Cells must be declared before the nets that reference them. write/parse
// round-trip exactly (same ids, same pin order).
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace pts::netlist {

void write_netlist(const Netlist& netlist, std::ostream& os);
std::string to_net_format(const Netlist& netlist);

/// Parses the `.net` format. PTS_CHECK-fails on malformed input with a
/// message naming the offending line.
Netlist parse_netlist(std::istream& is);
Netlist parse_netlist_string(const std::string& text);

void save_netlist_file(const Netlist& netlist, const std::string& path);
Netlist load_netlist_file(const std::string& path);

}  // namespace pts::netlist
