#include "parallel/config.hpp"

namespace pts::parallel {

std::size_t clamp_workers(std::size_t requested, std::size_t num_movable) {
  const std::size_t cap = num_movable >= 1 ? num_movable : 1;
  if (requested < 1) return 1;
  return requested < cap ? requested : cap;
}

SearchSetup::SearchSetup(const netlist::Netlist& nl, const PtsConfig& cfg)
    : netlist(&nl), config(cfg), layout(nl) {
  PTS_CHECK(config.num_tsws >= 1);
  PTS_CHECK(config.clws_per_tsw >= 1);
  PTS_CHECK(config.local_iterations >= 1);
  PTS_CHECK(config.global_iterations >= 1);

  // Oversubscription guard: partition_cells(n, workers) with workers > n
  // emits empty ranges, and sample_move aborts on an empty range. More
  // workers than movable cells cannot do useful work anyway, so both
  // engines run the clamped counts (this stored config is the one they
  // read their worker counts from).
  config.num_tsws = clamp_workers(config.num_tsws, nl.num_movable());
  config.clws_per_tsw = clamp_workers(config.clws_per_tsw, nl.num_movable());

  Rng rng(config.seed);
  const auto initial = placement::Placement::random(nl, layout, rng);
  initial_slots = initial.slots();
  paths = timing::extract_critical_paths(nl, config.cost.num_paths,
                                         config.cost.delay_model);
  goals = cost::Evaluator::calibrate_goals(initial, *paths, config.cost);

  cost::Evaluator eval(initial, paths, config.cost, goals);
  initial_cost = eval.cost();
}

std::unique_ptr<cost::Evaluator> SearchSetup::make_evaluator(
    const std::vector<netlist::CellId>& slots) const {
  placement::Placement p(*netlist, layout);
  p.assign_slots(slots);
  return std::make_unique<cost::Evaluator>(std::move(p), paths, config.cost,
                                           goals);
}

}  // namespace pts::parallel
