// Engine-agnostic worker state machines.
//
// The candidate-list worker (ClwSearch) and the tabu-search worker
// bookkeeping (TswState) are written as explicit step/transaction objects
// so the *same* algorithm runs under both engines:
//
//  - the ThreadedEngine drives them from blocking mailbox loops on real
//    threads (checking for ForceReport between steps);
//  - the SimEngine drives them from a discrete-event scheduler, charging
//    each step to a machine profile in virtual time and cutting stragglers
//    at the exact virtual cutoff instant.
//
// See DESIGN.md §5.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "cost/evaluator.hpp"
#include "support/rng.hpp"
#include "tabu/compound.hpp"
#include "tabu/diversify.hpp"
#include "tabu/search.hpp"
#include "tabu/tabu_list.hpp"

namespace pts::parallel {

/// One candidate-list investigation, steppable one trial at a time.
///
/// Usage per local iteration:
///   clw.begin(eval, rng);
///   while (!clw.done() && !force_requested) clw.step();
///   CompoundMove r = clw.result();   // full if done, best prefix if cut
///   clw.abandon();                   // restore eval to the start solution
///
/// One step = one trial swap, scored with Evaluator::probe_swap (a single
/// incremental pass; the evaluator is untouched). When the last trial of a
/// level completes, the level's best swap is committed as part of the same
/// step (compound move construction, paper §3). Early accept fires as soon
/// as a committed level improves on the start cost.
class ClwSearch {
 public:
  ClwSearch(tabu::CellRange range, tabu::CompoundParams params);

  const tabu::CellRange& range() const { return range_; }

  /// Starts a new investigation from `eval`'s current solution.
  void begin(cost::Evaluator& eval, Rng& rng);

  bool done() const { return done_; }
  /// Trials executed so far in this investigation.
  std::size_t steps_taken() const { return steps_; }
  /// Upper bound on steps for a full investigation (width * depth).
  std::size_t max_steps() const { return params_.width * params_.depth; }

  /// Executes one trial. Must not be called when done().
  void step();

  /// Best compound prefix discovered so far: the applied-swap prefix with
  /// the lowest cost (possibly empty with cost == start cost). After
  /// done(), per the paper the *final* compound (all applied swaps) is
  /// reported even when an intermediate prefix was cheaper — the compound
  /// move is the unit of acceptance; prefixes are only for forced cuts.
  tabu::CompoundMove result() const;

  /// Best prefix as of `steps` trials completed (sim cut support;
  /// `steps` <= steps_taken()).
  tabu::CompoundMove result_at_step(std::size_t steps) const;

  double start_cost() const { return start_cost_; }

  /// Undoes every applied swap, restoring the evaluator to the start
  /// solution. Ends the investigation but keeps the prefix records, so
  /// result()/result_at_step() remain valid until the next begin() — the
  /// SimEngine queries cut prefixes after restoring the shared evaluator.
  void abandon();

 private:
  struct PrefixSnapshot {
    std::size_t step;  ///< steps completed when this prefix became best
    std::size_t len;   ///< number of applied swaps in the prefix
    double cost;
  };

  tabu::CellRange range_;
  tabu::CompoundParams params_;

  cost::Evaluator* eval_ = nullptr;
  Rng* rng_ = nullptr;
  /// Movable-cell table hoisted at begin(): step() samples one trial from
  /// it without re-resolving the evaluator->placement->netlist chain.
  std::span<const netlist::CellId> movable_;
  double start_cost_ = 0.0;
  std::size_t steps_ = 0;
  std::size_t level_ = 0;
  std::size_t trial_in_level_ = 0;
  tabu::Move level_best_{};
  double level_best_cost_ = 0.0;
  bool have_level_best_ = false;
  std::vector<tabu::Move> applied_;
  double current_cost_ = 0.0;
  bool improved_early_ = false;
  bool done_ = true;
  bool abandoned_ = true;
  std::vector<PrefixSnapshot> best_prefixes_;  ///< strictly improving
};

/// Per-TSW bookkeeping: candidate selection, tabu/aspiration test, best
/// tracking with an improvement timeline, and the diversification step.
class TswState {
 public:
  /// `eval` carries the TSW's current solution and is mutated by accepted
  /// moves; it must outlive the state.
  TswState(cost::Evaluator& eval, const tabu::TabuParams& tabu_params,
           const tabu::DiversifyParams& diversify_params,
           tabu::CellRange diversify_range, Rng rng);

  cost::Evaluator& evaluator() { return *eval_; }
  Rng& rng() { return rng_; }
  tabu::TabuList& tabu_list() { return list_; }
  const tabu::SearchStats& stats() const { return stats_; }

  /// Resets per-global-iteration bests to the current solution; the paper's
  /// TSWs report the best found within the current global iteration.
  void begin_global_iteration();

  /// Applies the diversification step w.r.t. this TSW's range and returns
  /// the number of forced swaps (work units for time accounting).
  std::size_t apply_diversification();

  /// Reassigns the diversification range — used when a worker is lost and
  /// the survivors re-partition the movable cells among themselves.
  void set_diversify_range(tabu::CellRange range) { diversify_range_ = range; }

  /// Selects the best candidate (lowest cost, ties to the lowest index),
  /// runs the tabu/aspiration test and, if accepted, applies its swaps to
  /// the evaluator and records them in the tabu list.
  /// Returns the accepted candidate index, or -1 if rejected / all empty.
  int process_candidates(const std::vector<tabu::CompoundMove>& candidates);

  /// Swaps applied by the last accepted candidate (empty if rejected);
  /// the engines forward these to the CLWs as sync deltas.
  const std::vector<tabu::Move>& last_applied() const { return last_applied_; }

  /// Ends a local iteration at time `now` (engine clock); snapshots the
  /// best solution if it improved during this iteration.
  void end_local_iteration(double now);

  /// Adopts a broadcast solution (and optionally the winner's tabu list).
  void adopt(const std::vector<netlist::CellId>& slots,
             const std::vector<tabu::Move>& tabu_entries);

  double iteration_best_cost() const { return iter_best_cost_; }
  const std::vector<netlist::CellId>& iteration_best_slots() const {
    return iter_best_slots_;
  }

  /// Timeline of per-global-iteration improvements: (time, cost, slots).
  struct BestSnapshot {
    double time;
    double cost;
    std::vector<netlist::CellId> slots;
  };
  const std::vector<BestSnapshot>& snapshots() const { return snapshots_; }

  /// Best snapshot with time <= cutoff within the current global
  /// iteration, or nullptr if none (straggler had not improved by then).
  const BestSnapshot* snapshot_at(double cutoff) const;

 private:
  cost::Evaluator* eval_;
  tabu::TabuParams tabu_params_;
  tabu::DiversifyParams diversify_params_;
  tabu::CellRange diversify_range_;
  Rng rng_;
  tabu::TabuList list_;
  tabu::SearchStats stats_;

  double iter_best_cost_ = 0.0;
  std::vector<netlist::CellId> iter_best_slots_;
  bool improved_since_snapshot_ = false;
  std::vector<tabu::Move> last_applied_;
  std::vector<tabu::Move> diversify_scratch_;  ///< reused move buffer
  std::vector<BestSnapshot> snapshots_;
};

}  // namespace pts::parallel
