#include "netlist/io.hpp"

#include <bit>
#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "support/check.hpp"

namespace pts::netlist {
namespace {

// Shortest decimal that round-trips to the same double, so
// write -> parse -> write is a fixed point bit for bit.
void print_double(std::ostream& os, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  os.write(buf, static_cast<std::streamsize>(res.ptr - buf));
}

bool parse_double_token(const std::string& tok, double& out) {
  const char* begin = tok.data();
  const char* end = begin + tok.size();
  const auto res = std::from_chars(begin, end, out);
  return res.ec == std::errc{} && res.ptr == end && std::isfinite(out);
}

bool parse_int_token(const std::string& tok, int& out) {
  const char* begin = tok.data();
  const char* end = begin + tok.size();
  const auto res = std::from_chars(begin, end, out);
  return res.ec == std::errc{} && res.ptr == end;
}

// Cell/net records accumulated before any NetlistBuilder call, so every
// invariant the builder would PTS_CHECK-abort on is rejected here first.
struct ParsedCell {
  std::string name;
  CellKind kind = CellKind::Gate;
  int width = 1;
  double delay = 0.0;
  double load = 0.0;
  int out_net = -1;        // index into ParsedNet vector, -1 if none
  std::size_t inputs = 0;  // sink occurrences across all nets
};

struct ParsedNet {
  std::string name;
  double weight = 1.0;
  std::size_t driver = 0;
  std::vector<std::size_t> sinks;
};

ParseResult error_result(std::string message) {
  ParseResult r;
  r.error = std::move(message);
  return r;
}

}  // namespace

void write_netlist(const Netlist& netlist, std::ostream& os) {
  os << "# pts netlist v1\n";
  os << "circuit " << netlist.name() << "\n";
  for (const auto& cell : netlist.cells()) {
    switch (cell.kind) {
      case CellKind::PrimaryInput:
        os << "pi " << cell.name << "\n";
        break;
      case CellKind::PrimaryOutput:
        os << "po " << cell.name << "\n";
        break;
      case CellKind::Gate:
        os << "gate " << cell.name << ' ' << cell.width << ' ';
        print_double(os, cell.intrinsic_delay);
        os << ' ';
        print_double(os, cell.load_factor);
        os << "\n";
        break;
    }
  }
  for (const auto& net : netlist.nets()) {
    os << "net " << net.name << ' ';
    print_double(os, net.weight);
    os << ' ' << netlist.cell(net.driver).name;
    for (CellId sink : net.sinks) os << ' ' << netlist.cell(sink).name;
    os << "\n";
  }
}

std::string to_net_format(const Netlist& netlist) {
  std::ostringstream os;
  write_netlist(netlist, os);
  return os.str();
}

ParseResult try_parse_netlist(std::istream& is) {
  std::string circuit_name = "unnamed";
  bool named = false;
  std::vector<ParsedCell> cells;
  std::vector<ParsedNet> nets;
  std::unordered_map<std::string, std::size_t> cell_index;
  std::unordered_set<std::string> all_names;  // cells and nets share one namespace
  std::string line;
  std::size_t line_no = 0;

  auto fail = [&](const std::string& why) {
    return error_result("netlist parse error at line " + std::to_string(line_no) +
                        ": " + why);
  };

  while (std::getline(is, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword) || keyword[0] == '#') continue;

    if (keyword == "circuit") {
      std::string name;
      if (!(ls >> name)) return fail("circuit needs a name");
      if (named) return fail("duplicate circuit line");
      if (!cells.empty()) return fail("circuit line must precede cells");
      circuit_name = std::move(name);
      named = true;
    } else if (keyword == "pi" || keyword == "po") {
      std::string name;
      if (!(ls >> name)) return fail(keyword + " needs a name");
      if (!all_names.insert(name).second)
        return fail("duplicate name '" + name + "'");
      ParsedCell c;
      c.name = name;
      c.kind = keyword == "pi" ? CellKind::PrimaryInput : CellKind::PrimaryOutput;
      cell_index[name] = cells.size();
      cells.push_back(std::move(c));
    } else if (keyword == "gate") {
      std::string name, width_tok, delay_tok, load_tok;
      if (!(ls >> name >> width_tok >> delay_tok >> load_tok))
        return fail("malformed gate line");
      ParsedCell c;
      if (!parse_int_token(width_tok, c.width) || c.width < 1)
        return fail("gate '" + name + "' width must be a positive integer, got '" +
                    width_tok + "'");
      if (!parse_double_token(delay_tok, c.delay) || c.delay < 0.0)
        return fail("gate '" + name +
                    "' delay must be a finite non-negative number, got '" +
                    delay_tok + "'");
      if (!parse_double_token(load_tok, c.load) || c.load < 0.0)
        return fail("gate '" + name +
                    "' load must be a finite non-negative number, got '" +
                    load_tok + "'");
      if (!all_names.insert(name).second)
        return fail("duplicate name '" + name + "'");
      c.name = name;
      c.kind = CellKind::Gate;
      cell_index[name] = cells.size();
      cells.push_back(std::move(c));
    } else if (keyword == "net") {
      std::string name, weight_tok, driver;
      if (!(ls >> name >> weight_tok >> driver)) return fail("malformed net line");
      ParsedNet n;
      if (!parse_double_token(weight_tok, n.weight) || !(n.weight > 0.0))
        return fail("net '" + name +
                    "' weight must be a finite positive number, got '" +
                    weight_tok + "'");
      if (!all_names.insert(name).second)
        return fail("duplicate name '" + name + "'");
      const auto dit = cell_index.find(driver);
      if (dit == cell_index.end()) return fail("unknown cell '" + driver + "'");
      ParsedCell& d = cells[dit->second];
      if (d.kind == CellKind::PrimaryOutput)
        return fail("PO '" + driver + "' cannot drive a net");
      if (d.out_net >= 0)
        return fail("cell '" + driver + "' already drives a net");
      n.name = name;
      n.driver = dit->second;
      std::string sink;
      while (ls >> sink) {
        const auto sit = cell_index.find(sink);
        if (sit == cell_index.end()) return fail("unknown cell '" + sink + "'");
        if (sit->second == n.driver)
          return fail("net '" + name + "' is a self-loop on '" + sink + "'");
        ParsedCell& s = cells[sit->second];
        if (s.kind == CellKind::PrimaryInput)
          return fail("PI '" + sink + "' cannot be a net sink");
        ++s.inputs;
        n.sinks.push_back(sit->second);
      }
      if (n.sinks.empty()) return fail("net '" + name + "' has no sinks");
      d.out_net = static_cast<int>(nets.size());
      nets.push_back(std::move(n));
    } else {
      return fail("unknown keyword '" + keyword + "'");
    }
  }

  // Whole-circuit structural checks (the finalize() invariants), reported as
  // errors instead of the builder's aborts.
  for (const ParsedCell& c : cells) {
    switch (c.kind) {
      case CellKind::PrimaryInput:
        if (c.out_net < 0)
          return error_result("netlist error: PI '" + c.name +
                              "' does not drive a net");
        break;
      case CellKind::PrimaryOutput:
        if (c.inputs != 1)
          return error_result("netlist error: PO '" + c.name +
                              "' must sink exactly one net, sinks " +
                              std::to_string(c.inputs));
        break;
      case CellKind::Gate:
        if (c.inputs == 0)
          return error_result("netlist error: gate '" + c.name +
                              "' has no inputs");
        if (c.out_net < 0)
          return error_result("netlist error: gate '" + c.name +
                              "' does not drive a net");
        break;
    }
  }

  // Kahn acyclicity check, mirroring Netlist::finalize() (indegree counts
  // sink occurrences, so duplicate pins are handled identically).
  std::vector<std::size_t> indegree(cells.size(), 0);
  for (const ParsedNet& n : nets) {
    for (std::size_t sink : n.sinks) ++indegree[sink];
  }
  std::vector<std::size_t> frontier;
  for (std::size_t id = 0; id < cells.size(); ++id) {
    if (indegree[id] == 0) frontier.push_back(id);
  }
  std::size_t ordered = 0;
  while (!frontier.empty()) {
    const std::size_t id = frontier.back();
    frontier.pop_back();
    ++ordered;
    if (cells[id].out_net < 0) continue;
    for (std::size_t sink : nets[static_cast<std::size_t>(cells[id].out_net)].sinks) {
      if (--indegree[sink] == 0) frontier.push_back(sink);
    }
  }
  if (ordered != cells.size())
    return error_result("netlist error: netlist contains a combinational cycle");

  // Everything validated — no NetlistBuilder check can fire from here on.
  NetlistBuilder builder(circuit_name);
  std::vector<CellId> ids(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const ParsedCell& c = cells[i];
    switch (c.kind) {
      case CellKind::PrimaryInput:
        ids[i] = builder.add_primary_input(c.name);
        break;
      case CellKind::PrimaryOutput:
        ids[i] = builder.add_primary_output(c.name);
        break;
      case CellKind::Gate:
        ids[i] = builder.add_gate(c.name, c.width, c.delay, c.load);
        break;
    }
  }
  for (const ParsedNet& n : nets) {
    const NetId net = builder.add_net(n.name, ids[n.driver], n.weight);
    for (std::size_t sink : n.sinks) builder.connect_input(net, ids[sink]);
  }
  ParseResult r;
  r.netlist = std::move(builder).build();
  return r;
}

ParseResult try_parse_netlist_string(const std::string& text) {
  std::istringstream is(text);
  return try_parse_netlist(is);
}

ParseResult try_load_netlist_file(const std::string& path) {
  std::ifstream is(path);
  if (!is.good())
    return error_result("cannot open netlist file for reading: " + path);
  return try_parse_netlist(is);
}

std::string try_save_netlist_file(const Netlist& netlist, const std::string& path) {
  std::ofstream os(path);
  if (!os.good()) return "cannot open netlist file for writing: " + path;
  write_netlist(netlist, os);
  os.flush();
  if (!os.good()) return "failed writing netlist file: " + path;
  return {};
}

Netlist parse_netlist(std::istream& is) {
  ParseResult r = try_parse_netlist(is);
  PTS_CHECK_MSG(r.ok(), r.error.c_str());
  return std::move(*r.netlist);
}

Netlist parse_netlist_string(const std::string& text) {
  std::istringstream is(text);
  return parse_netlist(is);
}

void save_netlist_file(const Netlist& netlist, const std::string& path) {
  const std::string err = try_save_netlist_file(netlist, path);
  PTS_CHECK_MSG(err.empty(), err.c_str());
}

Netlist load_netlist_file(const std::string& path) {
  ParseResult r = try_load_netlist_file(path);
  PTS_CHECK_MSG(r.ok(), r.error.c_str());
  return std::move(*r.netlist);
}

std::uint64_t content_hash(const Netlist& netlist) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a 64-bit offset basis
  auto mix_bytes = [&h](const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;  // FNV prime
    }
  };
  auto mix_u64 = [&](std::uint64_t v) { mix_bytes(&v, sizeof(v)); };
  auto mix_f64 = [&](double v) { mix_u64(std::bit_cast<std::uint64_t>(v)); };
  auto mix_str = [&](const std::string& s) {
    mix_u64(s.size());
    mix_bytes(s.data(), s.size());
  };

  mix_str(netlist.name());
  mix_u64(netlist.num_cells());
  mix_u64(netlist.num_nets());
  for (const auto& cell : netlist.cells()) {
    mix_str(cell.name);
    mix_u64(static_cast<std::uint64_t>(cell.kind));
    mix_u64(static_cast<std::uint64_t>(cell.width));
    mix_f64(cell.intrinsic_delay);
    mix_f64(cell.load_factor);
  }
  for (const auto& net : netlist.nets()) {
    mix_str(net.name);
    mix_f64(net.weight);
    mix_u64(net.driver);
    mix_u64(net.sinks.size());
    for (CellId sink : net.sinks) mix_u64(sink);
  }
  return h;
}

}  // namespace pts::netlist
