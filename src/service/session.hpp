// Concurrent solve sessions over the pts::solver front door.
//
// A SessionManager runs N solves at once, each on its own thread with a
// per-session CancelToken and an Observer that forwards progress into a
// caller-supplied EventSink. Submissions beyond the running cap land in a
// bounded FIFO queue and are promoted as slots free up; beyond the queue
// bound, start() reports QueueFull. The daemon builds one manager for the
// process; each client connection owns the sessions it submitted (`owner`),
// so a mid-solve disconnect cancels exactly that client's work.
//
// Deadlines: a session may carry a wall-clock deadline covering queue wait
// plus solve time. A watchdog thread cancels overdue sessions cooperatively;
// a solve that was still running (or still queued) when its deadline hit
// finishes with stop_reason == DeadlineExpired instead of Cancelled, so
// clients can tell "you ran out of time" from "you asked me to stop".
//
// Threading contract:
//  - start()/cancel()/cancel_owned()/drain()/counters are thread-safe.
//  - The sink runs on the session's solve thread: any number of Progress
//    events while the engine runs, then exactly one Done event carrying the
//    SolveResult — also when the session was cancelled (the result then has
//    stop_reason == Cancelled or DeadlineExpired). A *queued* session fires
//    its Done the same way once promoted (an expired queued session is
//    promoted just to emit its DeadlineExpired Done). Sinks synchronize
//    their own downstream (the daemon serializes socket writes per
//    connection).
//  - cancel_owned()/drain() cancel cooperatively and then *join*: on return
//    no sink of the affected sessions can fire again and their threads are
//    gone — this is the "zero leaked sessions after drain" guarantee.
//    Queued sessions of the affected owner are discarded without a Done
//    (their connection is gone; nobody is listening).
//
// Finished sessions are reaped (joined and erased) opportunistically from
// the next mutating call, so a long-lived daemon does not accumulate dead
// threads; drain() reaps everything.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "solver/solver.hpp"
#include "support/run_control.hpp"

namespace pts::service {

struct SessionEvent {
  enum class Kind { Progress, Done };
  Kind kind = Kind::Progress;
  std::uint64_t session = 0;
  // Kind::Progress
  bool improvement = false;
  Progress progress;
  // Kind::Done
  solver::SolveResult result;
};

using EventSink = std::function<void(SessionEvent&&)>;

class SessionManager {
 public:
  struct Options {
    /// Running (unfinished) session cap; submissions beyond it queue.
    std::size_t max_sessions = 256;
    /// Bounded FIFO admission queue; submissions beyond it are rejected
    /// with StartStatus::QueueFull. 0 disables queueing entirely.
    std::size_t max_queued = 64;
    /// Bounded LRU result cache (ECO mode): completed deterministic solves
    /// are remembered under their caller-supplied cache key, and
    /// cached_result() serves repeat queries bit-identically without
    /// starting a session. 0 disables caching.
    std::size_t cache_entries = 0;
  };

  enum class StartStatus {
    Started,       ///< running; id is valid
    Queued,        ///< admitted to the FIFO queue; id is valid
    QueueFull,     ///< running cap and queue are both full
    ShuttingDown,  ///< drain() happened; no new work
  };
  static const char* start_status_name(StartStatus status);

  struct StartResult {
    StartStatus status = StartStatus::Started;
    std::uint64_t id = 0;  ///< valid when accepted(); 0 otherwise
    bool accepted() const {
      return status == StartStatus::Started || status == StartStatus::Queued;
    }
  };

  SessionManager() : SessionManager(Options()) {}
  explicit SessionManager(Options options);
  ~SessionManager();  // drains

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Starts (or queues) a solve session. `spec` must have passed
  /// Solver::validate with its netlist attached (the referenced netlist
  /// must outlive the manager); spec.stop.cancel and spec.observer are
  /// overwritten with the session's own. `deadline_seconds` > 0 arms a
  /// wall-clock deadline spanning queue wait + solve (clamped to ~31
  /// years so a huge value cannot overflow the steady_clock arithmetic).
  /// A non-empty `cache_key` makes the session's result eligible for the
  /// LRU cache: it is inserted when the solve finishes with a
  /// deterministic stop reason (Completed / IterationBudget / TargetCost /
  /// TargetQuality — never Cancelled, DeadlineExpired, or TimeLimit,
  /// which depend on wall-clock timing). Callers must only pass a key for
  /// specs whose result is a pure function of the key (see
  /// codec spec_cacheable()).
  StartResult start(solver::SolveSpec spec, std::uint64_t owner, bool stream,
                    std::uint64_t progress_stride, EventSink sink,
                    double deadline_seconds = 0.0, std::string cache_key = {});

  /// Cache lookup: returns a copy of the remembered result for `key` and
  /// refreshes its LRU position, or nullopt. Counts one hit or miss.
  std::optional<solver::SolveResult> cached_result(const std::string& key);

  /// Requests cooperative cancellation (running or queued). True if the
  /// session exists and had not finished; the Done event still arrives (on
  /// the session thread, after promotion for queued sessions).
  bool cancel(std::uint64_t session);

  /// Cancels and joins every running session started with this owner, and
  /// discards the owner's queued sessions. On return none of their sinks
  /// can fire again.
  void cancel_owned(std::uint64_t owner);

  /// Cancels and joins everything, discards the queue, and rejects starts
  /// from now on.
  void drain();

  /// Sessions started but not yet finished (their threads may still be
  /// seconds away from the next cancellation check point).
  std::size_t active_sessions() const;
  /// Sessions admitted but still waiting for a running slot.
  std::size_t queued_sessions() const;
  std::uint64_t sessions_started() const;
  std::uint64_t sessions_finished() const;
  std::uint64_t cache_hits() const;
  std::uint64_t cache_misses() const;
  std::size_t cache_size() const;

 private:
  struct Session;

  void run_session(Session* session);
  /// Joins + erases finished sessions. Caller holds mutex_; joins are
  /// instant because finished_ is set last on the session thread.
  void reap_locked();
  /// Moves queued sessions into free running slots. Caller holds mutex_.
  void promote_locked();
  /// Running (unfinished) sessions. Caller holds mutex_.
  std::size_t running_locked() const;
  void watchdog_loop();
  /// Inserts (or refreshes) a cache entry and evicts past the bound.
  /// Caller holds mutex_.
  void cache_insert_locked(std::string key, solver::SolveResult result);

  Options options_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Session>> sessions_;  ///< running (+ reapable)
  std::deque<std::unique_ptr<Session>> queue_;      ///< admitted, waiting
  std::uint64_t next_id_ = 1;
  std::uint64_t started_ = 0;
  std::uint64_t finished_count_ = 0;
  bool draining_ = false;

  /// LRU result cache: most-recently-used at the front; the map points into
  /// the list. Guarded by mutex_ (shared with the session threads' final
  /// bookkeeping, where insertions happen).
  std::list<std::pair<std::string, solver::SolveResult>> cache_lru_;
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, solver::SolveResult>>::iterator>
      cache_map_;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;

  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  std::thread watchdog_;
};

}  // namespace pts::service
