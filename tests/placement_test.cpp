// Unit and property tests for src/placement: layout geometry, placement
// permutation invariants, swap involution, incremental HPWL.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "netlist/benchmarks.hpp"
#include "netlist/generator.hpp"
#include "placement/hpwl.hpp"
#include "placement/layout.hpp"
#include "placement/placement.hpp"
#include "placement/svg.hpp"
#include "support/rng.hpp"

namespace pts::placement {
namespace {

using netlist::CellId;
using netlist::GeneratorConfig;
using netlist::Netlist;

Netlist small_circuit(std::size_t gates = 30, std::uint64_t seed = 5) {
  GeneratorConfig config;
  config.num_gates = gates;
  config.num_primary_inputs = 4;
  config.num_primary_outputs = 4;
  config.seed = seed;
  return generate_circuit(config);
}

TEST(Layout, AutoRowsRoughlySquare) {
  const Netlist nl = small_circuit(100);
  const Layout layout(nl);
  EXPECT_EQ(layout.num_slots(), 100u);
  EXPECT_NEAR(static_cast<double>(layout.num_rows()), 10.0, 2.0);
  // All slots mapped to valid rows/columns; partial last row accounted.
  std::size_t total = 0;
  for (std::size_t r = 0; r < layout.num_rows(); ++r) {
    total += layout.slots_in_row(r);
  }
  EXPECT_EQ(total, layout.num_slots());
}

TEST(Layout, ExplicitRowCount) {
  const Netlist nl = small_circuit(30);
  const Layout layout(nl, 5);
  EXPECT_EQ(layout.num_rows(), 5u);
  EXPECT_EQ(layout.slots_per_row(), 6u);
}

TEST(Layout, RowCountClampedToCells) {
  const Netlist nl = small_circuit(3);
  const Layout layout(nl, 10);
  EXPECT_LE(layout.num_rows(), 3u);
}

TEST(Layout, SlotRowColumnRoundTrip) {
  const Netlist nl = small_circuit(47);
  const Layout layout(nl, 6);
  for (SlotId s = 0; s < layout.num_slots(); ++s) {
    const auto r = layout.row_of_slot(s);
    const auto c = layout.column_of_slot(s);
    EXPECT_EQ(layout.slot_at(r, c), s);
    EXPECT_LT(c, layout.slots_in_row(r));
  }
}

TEST(Layout, PadsSitOutsideTheCore) {
  const Netlist nl = small_circuit();
  const Layout layout(nl);
  for (CellId pad : nl.pad_cells()) {
    const Point p = layout.pad_position(pad);
    if (nl.cell(pad).kind == netlist::CellKind::PrimaryInput) {
      EXPECT_LT(p.x, 0.0);
    } else {
      EXPECT_GT(p.x, layout.nominal_width());
    }
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, layout.core_height());
  }
}

TEST(LayoutDeath, PadPositionOfGateFails) {
  const Netlist nl = small_circuit();
  const Layout layout(nl);
  EXPECT_DEATH(layout.pad_position(nl.movable_cells()[0]), "pad_position");
}

TEST(Placement, IdentityIsConsistent) {
  const Netlist nl = small_circuit();
  const Layout layout(nl);
  const Placement p(nl, layout);
  p.check_consistent();
}

TEST(Placement, RandomIsPermutation) {
  const Netlist nl = small_circuit(64);
  const Layout layout(nl);
  Rng rng(3);
  const Placement p = Placement::random(nl, layout, rng);
  p.check_consistent();
  std::set<SlotId> slots;
  for (CellId c : nl.movable_cells()) slots.insert(p.slot_of(c));
  EXPECT_EQ(slots.size(), nl.num_movable());
}

TEST(Placement, PositionsMatchPrefixSums) {
  const Netlist nl = small_circuit(20);
  const Layout layout(nl, 4);
  const Placement p(nl, layout);
  for (std::size_t r = 0; r < layout.num_rows(); ++r) {
    double x = 0.0;
    for (std::size_t c = 0; c < layout.slots_in_row(r); ++c) {
      const CellId cell = p.cell_at(layout.slot_at(r, c));
      const double w = nl.cell(cell).width;
      EXPECT_NEAR(p.position(cell).x, x + w / 2.0, 1e-12);
      EXPECT_NEAR(p.position(cell).y, layout.row_y(r), 1e-12);
      x += w;
    }
    EXPECT_NEAR(p.row_extent(r), x, 1e-12);
  }
}

struct SwapCase {
  std::size_t gates;
  std::uint64_t seed;
  int swaps;
};

class SwapProperty : public ::testing::TestWithParam<SwapCase> {};

TEST_P(SwapProperty, SwapIsInvolution) {
  const auto c = GetParam();
  const Netlist nl = small_circuit(c.gates, c.seed);
  const Layout layout(nl);
  Rng rng(c.seed);
  Placement p = Placement::random(nl, layout, rng);
  const Placement before = p;
  for (int i = 0; i < c.swaps; ++i) {
    const auto [ia, ib] = rng.distinct_pair(nl.num_movable());
    const CellId a = nl.movable_cells()[ia];
    const CellId b = nl.movable_cells()[ib];
    p.swap_cells(a, b);
    p.swap_cells(a, b);
    EXPECT_TRUE(p == before);
  }
  p.check_consistent();
}

TEST_P(SwapProperty, RandomSwapSequenceStaysConsistent) {
  const auto c = GetParam();
  const Netlist nl = small_circuit(c.gates, c.seed);
  const Layout layout(nl);
  Rng rng(c.seed + 99);
  Placement p = Placement::random(nl, layout, rng);
  for (int i = 0; i < c.swaps; ++i) {
    const auto [ia, ib] = rng.distinct_pair(nl.num_movable());
    p.swap_cells(nl.movable_cells()[ia], nl.movable_cells()[ib]);
  }
  p.check_consistent();
}

TEST_P(SwapProperty, MovedCellsCoverAllPositionChanges) {
  const auto c = GetParam();
  const Netlist nl = small_circuit(c.gates, c.seed);
  const Layout layout(nl);
  Rng rng(c.seed + 7);
  Placement p = Placement::random(nl, layout, rng);
  for (int i = 0; i < c.swaps; ++i) {
    // Record all positions, swap, and verify every changed position
    // belongs to a reported moved cell.
    std::vector<Point> before(nl.num_cells());
    for (CellId cell : nl.movable_cells()) before[cell] = p.position(cell);
    const auto [ia, ib] = rng.distinct_pair(nl.num_movable());
    const CellId a = nl.movable_cells()[ia];
    const CellId b = nl.movable_cells()[ib];
    std::vector<CellId> moved;
    p.swap_cells(a, b, &moved);
    const std::set<CellId> moved_set(moved.begin(), moved.end());
    EXPECT_TRUE(moved_set.count(a));
    EXPECT_TRUE(moved_set.count(b));
    for (CellId cell : nl.movable_cells()) {
      const Point now = p.position(cell);
      if (std::abs(now.x - before[cell].x) > 1e-12 ||
          std::abs(now.y - before[cell].y) > 1e-12) {
        EXPECT_TRUE(moved_set.count(cell)) << "cell " << cell << " moved silently";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SwapProperty,
                         ::testing::Values(SwapCase{10, 1, 50}, SwapCase{30, 2, 50},
                                           SwapCase{56, 3, 30},
                                           SwapCase{120, 4, 30}));

TEST(Placement, AssignSlotsRoundTrip) {
  const Netlist nl = small_circuit(25);
  const Layout layout(nl);
  Rng rng(8);
  Placement p = Placement::random(nl, layout, rng);
  const auto slots = p.slots();
  Placement q(nl, layout);
  q.assign_slots(slots);
  EXPECT_TRUE(p == q);
  q.check_consistent();
}

TEST(PlacementDeath, AssignSlotsRejectsDuplicates) {
  const Netlist nl = small_circuit(10);
  const Layout layout(nl);
  Placement p(nl, layout);
  auto slots = p.slots();
  slots[1] = slots[0];
  EXPECT_DEATH(p.assign_slots(slots), "twice");
}

// ---------------------------------------------------------------------------
// Incremental HPWL.

class HpwlProperty : public ::testing::TestWithParam<SwapCase> {};

TEST_P(HpwlProperty, IncrementalMatchesFreshRecompute) {
  const auto c = GetParam();
  const Netlist nl = small_circuit(c.gates, c.seed);
  const Layout layout(nl);
  Rng rng(c.seed + 31);
  Placement p = Placement::random(nl, layout, rng);
  HpwlState hpwl(p);
  NetMarker marker(nl.num_nets());
  std::vector<CellId> moved;

  for (int i = 0; i < c.swaps; ++i) {
    const auto [ia, ib] = rng.distinct_pair(nl.num_movable());
    moved.clear();
    p.swap_cells(nl.movable_cells()[ia], nl.movable_cells()[ib], &moved);
    marker.begin();
    for (CellId cell : moved) marker.add_nets_of(nl, cell);
    hpwl.update_nets(marker.nets());
    ASSERT_NEAR(hpwl.total(), hpwl.compute_fresh_total(), 1e-6)
        << "after swap " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, HpwlProperty,
                         ::testing::Values(SwapCase{15, 1, 100},
                                           SwapCase{56, 2, 100},
                                           SwapCase{120, 3, 60},
                                           SwapCase{395, 4, 40}));

TEST(Hpwl, HandComputedTwoNetCase) {
  // a(pi) -> g1 -> g2 -> z(po); 2 gates on one row of two unit cells.
  netlist::NetlistBuilder b("hand");
  const CellId pi = b.add_primary_input("a");
  const CellId g1 = b.add_gate("g1", 1, 1.0, 0.1);
  const CellId g2 = b.add_gate("g2", 1, 1.0, 0.1);
  const CellId po = b.add_primary_output("z");
  const auto n0 = b.add_net("n0", pi);
  b.connect_input(n0, g1);
  const auto n1 = b.add_net("n1", g1);
  b.connect_input(n1, g2);
  const auto n2 = b.add_net("n2", g2);
  b.connect_input(n2, po);
  const Netlist nl = std::move(b).build();

  const Layout layout(nl, 1);
  const Placement p(nl, layout);  // g1 at x=0.5, g2 at x=1.5, row y=0.5
  HpwlState hpwl(p);

  const Point pa = layout.pad_position(pi);
  const Point pz = layout.pad_position(po);
  const double expected_n0 = (0.5 - pa.x) + std::abs(pa.y - 0.5);
  const double expected_n1 = 1.0;  // between adjacent cells, same row
  const double expected_n2 = (pz.x - 1.5) + std::abs(pz.y - 0.5);
  EXPECT_NEAR(hpwl.net_hpwl(n0), expected_n0, 1e-12);
  EXPECT_NEAR(hpwl.net_hpwl(n1), expected_n1, 1e-12);
  EXPECT_NEAR(hpwl.net_hpwl(n2), expected_n2, 1e-12);
  EXPECT_NEAR(hpwl.total(), expected_n0 + expected_n1 + expected_n2, 1e-12);
}

TEST(Hpwl, WeightsScaleTotal) {
  const Netlist nl = small_circuit(40, 77);
  const Layout layout(nl);
  const Placement p(nl, layout);
  HpwlState hpwl(p);
  double manual = 0.0;
  for (netlist::NetId n = 0; n < nl.num_nets(); ++n) {
    manual += nl.net(n).weight * hpwl.net_hpwl(n);
  }
  EXPECT_NEAR(hpwl.total(), manual, 1e-9);
}

TEST(Hpwl, UpdateReportsPerNetChanges) {
  const Netlist nl = small_circuit(30, 12);
  const Layout layout(nl);
  Rng rng(4);
  Placement p = Placement::random(nl, layout, rng);
  HpwlState hpwl(p);
  NetMarker marker(nl.num_nets());
  std::vector<CellId> moved;
  const CellId a = nl.movable_cells()[0];
  const CellId b = nl.movable_cells()[nl.num_movable() - 1];
  p.swap_cells(a, b, &moved);
  marker.begin();
  for (CellId cell : moved) marker.add_nets_of(nl, cell);
  std::vector<NetChange> changes;
  hpwl.update_nets(marker.nets(), &changes);
  for (const auto& change : changes) {
    EXPECT_NE(change.old_hpwl, change.new_hpwl);
    EXPECT_NEAR(hpwl.net_hpwl(change.net), change.new_hpwl, 1e-12);
  }
}

TEST(NetMarkerTest, DeduplicatesAcrossCells) {
  const Netlist nl = small_circuit(20, 9);
  NetMarker marker(nl.num_nets());
  marker.begin();
  const CellId a = nl.movable_cells()[0];
  marker.add_nets_of(nl, a);
  marker.add_nets_of(nl, a);  // same cell twice
  std::set<netlist::NetId> unique(marker.nets().begin(), marker.nets().end());
  EXPECT_EQ(unique.size(), marker.nets().size());
  EXPECT_EQ(unique.size(), nl.nets_of(a).size());

  marker.begin();  // new epoch forgets everything
  EXPECT_TRUE(marker.nets().empty());
}

TEST(Svg, RenderProducesWellFormedDocument) {
  const Netlist nl = small_circuit();
  const Layout layout(nl);
  Rng rng(7);
  const Placement p = Placement::random(nl, layout, rng);
  HpwlState hpwl(p);

  SvgOptions options;
  options.title = "svg-test-title";
  const std::string svg = render_svg(p, hpwl, options);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("svg-test-title"), std::string::npos);
  // One rect per movable cell at minimum (rows/pads add more).
  std::size_t rects = 0;
  for (std::size_t at = svg.find("<rect"); at != std::string::npos;
       at = svg.find("<rect", at + 1)) {
    ++rects;
  }
  EXPECT_GE(rects, nl.num_movable());
}

TEST(Svg, IntensityAndFlylineOptionsChangeOutput) {
  const Netlist nl = small_circuit();
  const Layout layout(nl);
  Rng rng(8);
  const Placement p = Placement::random(nl, layout, rng);
  HpwlState hpwl(p);

  SvgOptions plain;
  plain.flylines = 0;
  SvgOptions decorated;
  decorated.flylines = 8;
  decorated.cell_intensity.assign(nl.num_cells(), 1.0);
  const std::string a = render_svg(p, hpwl, plain);
  const std::string b = render_svg(p, hpwl, decorated);
  EXPECT_NE(a, b);
  // Flylines render as lines; the plain variant should have fewer.
  const auto count = [](const std::string& s, const char* needle) {
    std::size_t n = 0;
    for (std::size_t at = s.find(needle); at != std::string::npos;
         at = s.find(needle, at + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_GT(count(b, "<line"), count(a, "<line"));
}

TEST(Svg, SaveWritesTheRenderedFile) {
  const Netlist nl = small_circuit();
  const Layout layout(nl);
  Rng rng(9);
  const Placement p = Placement::random(nl, layout, rng);
  HpwlState hpwl(p);

  const std::string path = ::testing::TempDir() + "pts_svg_test.svg";
  save_svg(p, hpwl, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), render_svg(p, hpwl));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pts::placement
