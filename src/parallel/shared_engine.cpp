#include "parallel/shared_engine.hpp"

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "cost/evaluator.hpp"
#include "placement/placement.hpp"
#include "support/parallel_for.hpp"
#include "support/stopwatch.hpp"
#include "timing/paths.hpp"

namespace pts::parallel {
namespace {

/// The parallel compound-move strategy (see shared_engine.hpp for the
/// determinism argument). evals[0] is the coordinator's evaluator — the one
/// TabuSearch owns and mutates; evals[1..] are per-thread replicas that
/// catch up with the coordinator's committed swaps through `oplog_` before
/// they probe.
class SharedCompoundStrategy final : public tabu::CompoundStrategy {
 public:
  SharedCompoundStrategy(ThreadPool& pool, std::vector<cost::Evaluator*> evals,
                         std::size_t chunk)
      : pool_(&pool), evals_(std::move(evals)), chunk_(chunk) {
    PTS_CHECK(evals_.size() == pool_->threads());
    cursors_.assign(evals_.size(), 0);
  }

  void build(cost::Evaluator& eval, const tabu::CellRange& range,
             const tabu::CompoundParams& params, Rng& rng,
             const tabu::FrequencyMemory* memory,
             tabu::CompoundMove* out) override {
    PTS_DCHECK(&eval == evals_[0]);
    const double start_cost = eval.cost();
    const bool use_memory = memory != nullptr && memory->active();
    const std::span<const netlist::CellId> movable =
        eval.placement().netlist().movable_cells();
    const std::size_t width = params.width;
    const std::size_t chunk = chunk_ != 0 ? chunk_ : auto_chunk(width);

    tabu::CompoundMove& compound = *out;
    compound.swaps.clear();
    compound.swaps.reserve(params.depth);
    compound.improved_early = false;
    compound.cost = start_cost;
    for (std::size_t level = 0; level < params.depth; ++level) {
      // Sampling stays on the coordinator, in trial order, from the single
      // search stream: probes consume no RNG, so this draws exactly the
      // sequence the sequential sample/probe interleave would.
      moves_.clear();
      cmoves_.clear();
      for (std::size_t trial = 0; trial < width; ++trial) {
        const tabu::Move move = tabu::sample_move(movable, range, rng);
        moves_.push_back(move);
        cmoves_.push_back({move.a, move.b});
      }
      costs_.resize(width);

      // Probe every trial against the current committed state. Probes are
      // state-independent of each other, so costs_[i] is the same number
      // whichever thread computes it — and probe_batch is bit-identical to
      // probe_swap per candidate, so the batch sub-chunking below changes
      // no cost either. A thread scores its claimed range in sub-batches of
      // the configured batch width (the same knob the sequential compound
      // loop uses); batch <= 1 keeps the scalar path.
      const std::size_t batch = params.batch;
      parallel_for_chunked(
          *pool_, 0, width, chunk,
          [this, batch](std::size_t worker, std::size_t lo, std::size_t hi) {
            cost::Evaluator& ev = synced_evaluator(worker);
            if (batch > 1) {
              for (std::size_t i = lo; i < hi; i += batch) {
                const std::size_t n = std::min(batch, hi - i);
                ev.probe_batch(std::span(cmoves_).subspan(i, n),
                               std::span(costs_).subspan(i, n));
              }
            } else {
              for (std::size_t i = lo; i < hi; ++i) {
                costs_[i] = ev.probe_swap(moves_[i].a, moves_[i].b);
              }
            }
          });

      // Sequential reduction, trial-index order, first strict minimum wins
      // — the exact build_compound_move selection rule.
      tabu::Move best{};
      double best_cost = 0.0;
      bool have_best = false;
      for (std::size_t i = 0; i < width; ++i) {
        double cost_after = costs_[i];
        if (use_memory) cost_after = memory->adjusted_cost(moves_[i], cost_after);
        if (!have_best || cost_after < best_cost) {
          best = moves_[i];
          best_cost = cost_after;
          have_best = true;
        }
      }
      PTS_CHECK(have_best);
      compound.cost = eval.commit_swap(best.a, best.b);
      oplog_.push_back(best);
      compound.swaps.push_back(best);
      if (params.early_accept && compound.cost < start_cost) {
        compound.improved_early = true;
        break;
      }
    }
  }

  void undo(cost::Evaluator& eval, const tabu::CompoundMove& move) override {
    tabu::undo_compound(eval, move);
    // Log the undo swaps in the order undo_compound applied them so the
    // replicas replay the coordinator's mutation history verbatim (same
    // apply count keeps the drift-control rebuild cadence identical too).
    for (auto it = move.swaps.rbegin(); it != move.swaps.rend(); ++it) {
      oplog_.push_back(*it);
    }
  }

 private:
  /// One chunk per thread and change — coarse enough that the counter is
  /// bumped O(threads) times per level, fine enough to rebalance when one
  /// thread stalls.
  std::size_t auto_chunk(std::size_t width) const {
    const std::size_t grabs = pool_->threads() * 4;
    const std::size_t chunk = width / grabs;
    return chunk >= 1 ? chunk : 1;
  }

  /// Replays the coordinator's op log suffix onto this worker's replica.
  /// Worker 0 probes on the coordinator's evaluator itself, which is always
  /// current. Replay is lazy (a worker that claims no work this level
  /// catches up next time it does); the cursor guarantees every op is
  /// applied exactly once, in order.
  cost::Evaluator& synced_evaluator(std::size_t worker) {
    cost::Evaluator& ev = *evals_[worker];
    if (worker != 0) {
      std::size_t& cursor = cursors_[worker];
      while (cursor < oplog_.size()) {
        const tabu::Move& op = oplog_[cursor++];
        ev.apply_swap(op.a, op.b);
      }
    }
    return ev;
  }

  ThreadPool* pool_;
  std::vector<cost::Evaluator*> evals_;
  std::size_t chunk_;
  /// Every committed mutation of evals_[0], in application order (commits
  /// and undo re-applies alike). Grows by at most 2*depth moves per tabu
  /// iteration — bytes per iteration, never compacted.
  std::vector<tabu::Move> oplog_;
  std::vector<std::size_t> cursors_;  ///< per-worker oplog replay position
  std::vector<tabu::Move> moves_;     ///< level scratch: sampled trials
  std::vector<cost::Move> cmoves_;    ///< level scratch: trials as cost::Moves
  std::vector<double> costs_;         ///< level scratch: probed costs
};

}  // namespace

SharedEngine::SharedEngine(const netlist::Netlist& netlist,
                           const SharedConfig& config)
    : netlist_(&netlist), config_(config) {
  PTS_CHECK(config_.tabu.compound.width >= 1);
  PTS_CHECK(config_.tabu.compound.depth >= 1);
}

std::size_t SharedEngine::effective_threads() const {
  const std::size_t cap =
      netlist_->num_movable() >= 1 ? netlist_->num_movable() : 1;
  const std::size_t requested = config_.params.threads;
  if (requested < 1) return 1;
  return requested < cap ? requested : cap;
}

SharedResult SharedEngine::run() { return run(RunControl{}); }

SharedResult SharedEngine::run(const RunControl& control) {
  const netlist::Netlist& nl = *netlist_;
  const std::size_t threads = effective_threads();

  // Setup recipe identical to the solver's sequential engines: layout,
  // init-stream random placement, K critical paths, goals calibrated
  // against the initial solution.
  const placement::Layout layout(nl);
  Rng init_rng(config_.init_seed);
  auto initial = placement::Placement::random(nl, layout, init_rng);
  auto paths = timing::extract_critical_paths(nl, config_.cost.num_paths,
                                              config_.cost.delay_model);
  const cost::FuzzyGoals goals =
      cost::Evaluator::calibrate_goals(initial, *paths, config_.cost);
  const std::vector<netlist::CellId> initial_slots = initial.slots();
  cost::Evaluator coordinator(std::move(initial), paths, config_.cost, goals);

  // Per-thread replicas of the initial solution. Construction rebuilds all
  // incremental state from the placement, so replica totals are
  // bit-identical to the coordinator's.
  std::vector<std::unique_ptr<cost::Evaluator>> replicas;
  replicas.reserve(threads - 1);
  for (std::size_t t = 1; t < threads; ++t) {
    placement::Placement p(nl, layout);
    p.assign_slots(initial_slots);
    replicas.push_back(std::make_unique<cost::Evaluator>(std::move(p), paths,
                                                         config_.cost, goals));
  }
  std::vector<cost::Evaluator*> evals;
  evals.reserve(threads);
  evals.push_back(&coordinator);
  for (auto& r : replicas) evals.push_back(r.get());

  SharedResult out;
  out.initial_cost = coordinator.cost();
  out.threads_used = threads;

  ThreadPool pool(threads);
  SharedCompoundStrategy strategy(pool, std::move(evals),
                                  config_.params.chunk);
  tabu::TabuSearch search(coordinator, config_.tabu, Rng(config_.search_seed));
  search.set_compound_strategy(&strategy);
  const Stopwatch watch;
  out.search = search.run(control);
  out.makespan = watch.seconds();
  return out;
}

}  // namespace pts::parallel
