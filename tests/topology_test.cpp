// CSR topology pins (DESIGN.md §7).
//
// Three layers of guarantees:
//  1. Structure: the flat Topology arrays agree with the Cell/Net object
//     model on every paper circuit, including pads, multi-fanout nets, and
//     a cell taking the same net on two pins (self-adjacent).
//  2. Trajectories: tabu and annealing runs are bit-identical to golden
//     values captured from the pre-CSR build — the layout refactor changed
//     memory layout only, never a single floating-point result.
//  3. Allocation: the probe/commit hot loop and the diversification step
//     run allocation-free in steady state (the scratch buffers are
//     reserved up front), pinned with a counting operator new. The ASan CI
//     job runs this suite too, so the override is exercised under
//     instrumentation.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>

#include "baselines/annealing.hpp"
#include "cost/evaluator.hpp"
#include "netlist/benchmarks.hpp"
#include "tabu/diversify.hpp"
#include "tabu/search.hpp"
#include "timing/paths.hpp"

// -- counting operator new (layer 3) ----------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace pts {
namespace {

using netlist::CellId;
using netlist::kNoNet;
using netlist::Netlist;
using netlist::NetId;
using netlist::Topology;

const char* kPaperCircuits[] = {"highway", "c532", "c1355", "c3540"};

// -- layer 1: CSR vs reference adjacency ------------------------------------

void expect_topology_matches_reference(const Netlist& nl) {
  const Topology& topo = nl.topology();
  ASSERT_EQ(topo.num_cells(), nl.num_cells());
  ASSERT_EQ(topo.num_nets(), nl.num_nets());
  EXPECT_EQ(topo.num_pins(), nl.num_pins());

  std::size_t total_pins = 0;
  for (NetId net = 0; net < nl.num_nets(); ++net) {
    const auto& n = nl.net(net);
    const auto pins = topo.pins(net);
    ASSERT_EQ(pins.size(), n.pin_count()) << "net " << net;
    // Driver first, then the sinks in net order (the order every box
    // recomputation has always used).
    EXPECT_EQ(pins.front(), n.driver) << "net " << net;
    EXPECT_EQ(topo.driver(net), n.driver) << "net " << net;
    const auto sinks = topo.sinks(net);
    ASSERT_EQ(sinks.size(), n.sinks.size()) << "net " << net;
    for (std::size_t i = 0; i < sinks.size(); ++i) {
      EXPECT_EQ(sinks[i], n.sinks[i]) << "net " << net << " sink " << i;
    }
    EXPECT_EQ(topo.net_weight(net), n.weight) << "net " << net;
    total_pins += pins.size();
  }
  EXPECT_EQ(total_pins, topo.num_pins());

  for (CellId cell = 0; cell < nl.num_cells(); ++cell) {
    const auto& c = nl.cell(cell);
    // Reference incident-net order: out net first, inputs deduplicated in
    // first-seen order.
    std::vector<NetId> expected;
    if (c.out_net != kNoNet) expected.push_back(c.out_net);
    for (NetId in : c.in_nets) {
      if (std::find(expected.begin(), expected.end(), in) == expected.end()) {
        expected.push_back(in);
      }
    }
    const auto incident = topo.nets_of(cell);
    ASSERT_EQ(incident.size(), expected.size()) << "cell " << cell;
    for (std::size_t i = 0; i < incident.size(); ++i) {
      EXPECT_EQ(incident[i], expected[i]) << "cell " << cell << " net " << i;
    }
    // The forward on the Netlist accessor is the same storage.
    const auto via_netlist = nl.nets_of(cell);
    ASSERT_EQ(via_netlist.data(), incident.data());

    EXPECT_EQ(topo.cell_width(cell), static_cast<double>(c.width));
    EXPECT_EQ(topo.cell_intrinsic_delay(cell), c.intrinsic_delay);
    EXPECT_EQ(topo.cell_load_factor(cell), c.load_factor);
    EXPECT_EQ(topo.cell_movable(cell), c.movable());
  }
}

TEST(TopologyStructure, CsrMatchesReferenceOnAllPaperCircuits) {
  for (const char* name : kPaperCircuits) {
    SCOPED_TRACE(name);
    expect_topology_matches_reference(netlist::make_benchmark(name));
  }
}

TEST(TopologyStructure, PadsMultiFanoutAndSelfAdjacentCells) {
  // One of each structural corner: pad pins on both ends, a multi-fanout
  // net, and a gate that takes the same net on two input pins.
  netlist::NetlistBuilder b("corners");
  const CellId a = b.add_primary_input("a");
  const CellId g1 = b.add_gate("g1", 2, 0.8, 0.05);
  const CellId g2 = b.add_gate("g2", 1, 0.6, 0.05);
  const CellId o1 = b.add_primary_output("o1");
  const CellId o2 = b.add_primary_output("o2");
  const NetId na = b.add_net("na", a, 2.0);  // fanout 3: g1 twice + g2
  b.connect_input(na, g1);
  b.connect_input(na, g1);  // self-adjacent: same net on two pins of g1
  b.connect_input(na, g2);
  const NetId n1 = b.add_net("n1", g1);
  b.connect_input(n1, o1);
  const NetId n2 = b.add_net("n2", g2);
  b.connect_input(n2, o2);
  const Netlist nl = std::move(b).build();

  expect_topology_matches_reference(nl);
  const Topology& topo = nl.topology();
  // The duplicate pin is preserved in the pin list (pin_count counts pins,
  // not distinct cells) but deduplicated in the incident-net index.
  ASSERT_EQ(topo.pins(na).size(), 4u);
  EXPECT_EQ(topo.pins(na)[1], g1);
  EXPECT_EQ(topo.pins(na)[2], g1);
  ASSERT_EQ(topo.nets_of(g1).size(), 2u);
  EXPECT_EQ(topo.nets_of(g1)[0], n1);
  EXPECT_EQ(topo.nets_of(g1)[1], na);
  // Pads: PI has only its driven net, PO only its sunk net.
  ASSERT_EQ(topo.nets_of(a).size(), 1u);
  EXPECT_EQ(topo.nets_of(a)[0], na);
  ASSERT_EQ(topo.nets_of(o2).size(), 1u);
  EXPECT_EQ(topo.nets_of(o2)[0], n2);
  EXPECT_FALSE(topo.cell_movable(a));
  EXPECT_TRUE(topo.cell_movable(g1));
}

TEST(TopologyStructure, PathSetReverseIndexMatchesPaths) {
  const Netlist nl = netlist::make_benchmark("c532");
  const timing::DelayModel model;
  const auto paths = timing::extract_critical_paths(nl, 24, model);
  // Flat reverse index agrees with a per-net recount over the path lists,
  // in ascending path order.
  std::vector<std::vector<std::uint32_t>> expected(nl.num_nets());
  for (std::uint32_t p = 0; p < paths->size(); ++p) {
    for (NetId net : paths->path(p).nets) expected[net].push_back(p);
  }
  ASSERT_EQ(paths->const_delays().size(), paths->size());
  for (std::uint32_t p = 0; p < paths->size(); ++p) {
    EXPECT_EQ(paths->const_delays()[p], paths->path(p).const_delay);
  }
  for (NetId net = 0; net < nl.num_nets(); ++net) {
    const auto slice = paths->paths_of_net(net);
    ASSERT_EQ(slice.size(), expected[net].size()) << "net " << net;
    for (std::size_t i = 0; i < slice.size(); ++i) {
      EXPECT_EQ(slice[i], expected[net][i]) << "net " << net;
    }
  }
}

// -- layer 2: bit-identical trajectories vs the pre-CSR build ---------------

std::unique_ptr<cost::Evaluator> make_eval(const Netlist& nl,
                                           const placement::Layout& layout,
                                           std::uint64_t seed) {
  cost::CostParams params;
  Rng rng(seed);
  auto p = placement::Placement::random(nl, layout, rng);
  auto paths =
      timing::extract_critical_paths(nl, params.num_paths, params.delay_model);
  const auto goals = cost::Evaluator::calibrate_goals(p, *paths, params);
  return std::make_unique<cost::Evaluator>(std::move(p), std::move(paths), params,
                                           goals);
}

double from_bits(std::uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

std::uint64_t fnv_slots(const std::vector<CellId>& slots) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const CellId s : slots) {
    h ^= s;
    h *= 1099511628211ULL;
  }
  return h;
}

struct TrajectoryGolden {
  const char* circuit;
  std::uint64_t best_cost_bits;
  std::uint64_t best_quality_bits;
  std::uint64_t slots_fnv;
};

// Captured from the pre-Topology seed build (vector-of-vectors layout) at
// 861f51d with the exact parameters used below. The CSR refactor must not
// move a single bit of any of these.
TEST(TopologyTrajectory, TabuBitIdenticalToPreCsrBuild) {
  constexpr TrajectoryGolden kGolden[] = {
      {"highway", 0x3fc204caaea2cd30ULL, 0x3feadbe0310a67a6ULL,
       0xbed9df5eee3395cfULL},
      {"c532", 0x3fe09c6d50cb7dfeULL, 0x3fdec7255e690405ULL,
       0x0eff1ab1e5d66c38ULL},
  };
  for (const auto& golden : kGolden) {
    SCOPED_TRACE(golden.circuit);
    const Netlist nl = netlist::make_benchmark(golden.circuit);
    const placement::Layout layout(nl);
    auto eval = make_eval(nl, layout, 3);
    tabu::TabuParams params;
    params.iterations = 60;
    tabu::TabuSearch search(*eval, params, Rng(7));
    const auto result = search.run();
    EXPECT_EQ(result.best_cost, from_bits(golden.best_cost_bits));
    EXPECT_EQ(result.best_quality, from_bits(golden.best_quality_bits));
    EXPECT_EQ(fnv_slots(result.best_slots), golden.slots_fnv);
    EXPECT_EQ(result.stats.accepted, 60u);
    EXPECT_EQ(result.stats.rejected_tabu, 0u);
  }
}

TEST(TopologyTrajectory, AnnealBitIdenticalToPreCsrBuild) {
  constexpr TrajectoryGolden kGolden[] = {
      {"highway", 0x3fd053ed5639f934ULL, 0x3fe65d677e998573ULL,
       0xef7149648d9e03a9ULL},
      {"c532", 0x3fda5b2990a8fc98ULL, 0x3fe2d26b37ab81b4ULL,
       0xfc32e9d6cde8ecc8ULL},
  };
  constexpr std::size_t kMovesAccepted[] = {2852, 3596};
  std::size_t index = 0;
  for (const auto& golden : kGolden) {
    SCOPED_TRACE(golden.circuit);
    const Netlist nl = netlist::make_benchmark(golden.circuit);
    const placement::Layout layout(nl);
    auto eval = make_eval(nl, layout, 5);
    baselines::AnnealParams params;
    params.moves_per_temp = 200;
    params.cooling = 0.80;
    Rng rng(9);
    const auto result = baselines::anneal(*eval, params, rng);
    EXPECT_EQ(result.best_cost, from_bits(golden.best_cost_bits));
    EXPECT_EQ(result.best_quality, from_bits(golden.best_quality_bits));
    EXPECT_EQ(fnv_slots(result.best_slots), golden.slots_fnv);
    EXPECT_EQ(result.moves_tried, 6200u);
    EXPECT_EQ(result.moves_accepted, kMovesAccepted[index]);
    ++index;
  }
}

// -- layer 3: zero steady-state allocation ----------------------------------

TEST(TopologyAllocation, ProbeCommitLoopIsAllocationFree) {
  const Netlist nl = netlist::make_benchmark("c532");
  const placement::Layout layout(nl);
  auto eval = make_eval(nl, layout, 17);
  const auto& movable = nl.movable_cells();
  Rng rng(19);

  // Warm-up: exercise every scratch path (probe, commit, apply) so all
  // buffers reach their high-water mark.
  for (int i = 0; i < 200; ++i) {
    const auto [ia, ib] = rng.distinct_pair(movable.size());
    eval->probe_swap(movable[ia], movable[ib]);
    if (i % 3 == 0) eval->commit_probe();
    if (i % 7 == 0) eval->apply_swap(movable[ia], movable[ib]);
  }

  const std::uint64_t before = g_allocations.load();
  double sink = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const auto [ia, ib] = rng.distinct_pair(movable.size());
    sink += eval->probe_swap(movable[ia], movable[ib]);
    if (i % 3 == 0) sink += eval->commit_probe();
    if (i % 7 == 0) sink += eval->apply_swap(movable[ia], movable[ib]);
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u) << "probe/commit/apply allocated in steady "
                                   "state (sink="
                                << sink << ")";
}

TEST(TopologyAllocation, DiversificationReusesItsMoveBuffer) {
  const Netlist nl = netlist::make_benchmark("c532");
  const placement::Layout layout(nl);
  auto eval = make_eval(nl, layout, 23);
  const tabu::CellRange range{0, nl.num_movable()};
  tabu::DiversifyParams params;
  Rng rng(29);

  std::vector<tabu::Move> scratch;
  tabu::diversify(*eval, range, params, rng, &scratch);  // warm-up

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 50; ++i) {
    tabu::diversify(*eval, range, params, rng, &scratch);
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u) << "diversification allocated in steady state";
}

}  // namespace
}  // namespace pts
