// Full placement flow on one circuit: netlist generation and IO, layout,
// constructive initial placement (random vs greedy) and sequential tabu
// search via the pts::solver front door, then exact static timing
// verification and an SVG render of the final solution through the
// substrate APIs.
#include <algorithm>
#include <cstdio>

#include "experiments/workloads.hpp"
#include "netlist/io.hpp"
#include "placement/hpwl.hpp"
#include "placement/svg.hpp"
#include "solver/solver.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"
#include "timing/slack.hpp"
#include "timing/sta.hpp"

namespace {

constexpr const char kUsage[] =
    "usage: placement_flow [--circuit c532] [--iterations 300] [--seed 7]\n"
    "                      [--save out.net] [--svg out.svg] [--help]\n";

void report(const char* label, const pts::solver::SolveResult& result) {
  const auto& o = result.best_objectives;
  std::printf("%-18s cost=%.4f quality=%.4f wire=%.0f delay=%.2f area=%.0f\n",
              label, result.best_cost, result.best_quality, o.wirelength,
              o.delay, o.area);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pts;
  const Cli cli(argc, argv);
  set_log_level(LogLevel::Warn);
  if (cli.get_flag("help")) {
    std::fputs(kUsage, stdout);
    return 0;
  }

  const std::string name = cli.get("circuit", "c532");
  const auto iterations =
      static_cast<std::size_t>(cli.get_int("iterations", 300));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const bool want_save = cli.has("save");
  const std::string save_path = cli.get("save", "circuit.net");
  const bool want_svg = cli.has("svg");
  const std::string svg_path = cli.get("svg", "placement.svg");
  cli.reject_unused(kUsage);

  const auto& circuit = experiments::circuit(name);
  const placement::Layout layout(circuit);
  std::printf("circuit %s: %zu cells / %zu nets, layout %zux%zu slots\n",
              circuit.name().c_str(), circuit.num_movable(), circuit.num_nets(),
              layout.num_rows(), layout.slots_per_row());

  const solver::Solver solver;

  // Two constructive starting points under one goal calibration: the
  // "constructive" engine reports the same-seed random placement as
  // initial_cost and the greedy construction as its best.
  const auto greedy =
      solver.solve(experiments::base_spec(circuit, "constructive", seed));
  std::printf("%-18s cost=%.4f\n", "random initial", greedy.initial_cost);
  report("greedy initial", greedy);

  // Sequential tabu search from the same-seed random start.
  auto spec = experiments::base_spec(circuit, "tabu", seed);
  spec.tabu.iterations = iterations;
  const auto result = solver.solve(spec);
  report("after tabu search", result);
  std::printf("search: %zu iterations, %zu accepted, %zu tabu-rejected, "
              "%zu aspirated, %zu early-accepts\n",
              result.stats.iterations, result.stats.accepted,
              result.stats.rejected_tabu, result.stats.aspirated,
              result.stats.early_accepts);

  // Rebuild the final placement for the exact STA cross-check of the
  // incremental delay estimate.
  placement::Placement placed(circuit, layout);
  placed.assign_slots(result.best_slots);
  const placement::HpwlState hpwl(placed);
  const timing::DelayModel model;
  const auto sta = timing::run_sta(circuit, hpwl, model);
  std::printf("exact STA critical delay: %.3f (monitored-paths estimate %.3f, "
              "%.1f%% coverage)\n",
              sta.critical_delay, result.best_objectives.delay,
              100.0 * result.best_objectives.delay / sta.critical_delay);
  std::printf("critical path length: %zu cells\n", sta.critical_path.size());

  if (want_save) {
    netlist::save_netlist_file(circuit, save_path);
    std::printf("netlist written to %s\n", save_path.c_str());
  }

  if (want_svg) {
    // Render the final placement with cells shaded by timing criticality
    // of their most critical incident net.
    const auto slack = timing::analyze_slack(circuit, hpwl, model);
    placement::SvgOptions options;
    options.title = circuit.name() + " after tabu search";
    options.cell_intensity.assign(circuit.num_cells(), 0.0);
    for (netlist::CellId cell : circuit.movable_cells()) {
      for (netlist::NetId net : circuit.nets_of(cell)) {
        options.cell_intensity[cell] = std::max(options.cell_intensity[cell],
                                                slack.net_criticality[net]);
      }
    }
    placement::save_svg(placed, hpwl, svg_path, options);
    std::printf("placement rendered to %s\n", svg_path.c_str());
  }
  return 0;
}
