// Wall-clock stopwatch for the threaded engine and examples. Figure benches
// use virtual time from pts::sim instead (see DESIGN.md §5).
#pragma once

#include <chrono>

namespace pts {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pts
