// pts::solver — the unified front door over every search engine.
//
// One call runs any registered engine on any circuit and returns one result
// type:
//
//   const auto& circuit = pts::netlist::make_benchmark("c532");
//   pts::solver::SolveSpec spec;
//   spec.engine = "parallel-sim";   // Solver::engines() lists the registry
//   spec.netlist = &circuit;
//   spec.seed = 7;
//   const auto result = pts::solver::Solver().solve(spec);
//
// Built-in registry entries:
//   "tabu"              sequential tabu search (paper Fig. 1)
//   "anneal"            simulated-annealing baseline
//   "local"             steepest-descent local-search baseline
//   "constructive"      greedy constructive placement (no search)
//   "parallel-sim"      TSW/CLW decomposition, deterministic virtual time
//   "parallel-threaded" TSW/CLW decomposition on the PVM-like runtime
//   "parallel-shared"   shared-memory threads over the CSR topology
//
// The spec is validated before anything runs: Solver::validate() returns
// the full list of problems (empty = valid) so callers can report them;
// Solver::solve() refuses (PTS_CHECK-style abort) on an invalid spec
// instead of silently accepting nonsense.
//
// Run control (support/run_control.hpp) is threaded through every engine:
// StopConditions (iteration budget, wall/virtual time limit, target
// cost/quality, cooperative CancelToken) and an Observer streaming
// improvements and per-iteration progress. Stop checks and observer
// callbacks are read-only — a run whose conditions never fire is
// bit-identical to the same run without them, and Solver runs are
// bit-identical to direct engine invocation with the same seed (pinned by
// tests/solver_test.cpp).
//
// Seed derivation for the sequential engines ("tabu", "anneal", "local",
// "constructive") is part of the public contract so direct invocations can
// reproduce a Solver run:
//   initial placement rng = Rng(spec.seed ^ kInitStreamSalt)
//   engine search rng     = Rng(spec.seed ^ kSearchStreamSalt)
// The parallel engines receive spec.parallel with the shared seed/cost/tabu
// blocks overridden (see SolveSpec::parallel) and derive worker streams
// from PtsConfig exactly as the direct SimEngine/ThreadedEngine runs do.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/annealing.hpp"
#include "baselines/local_search.hpp"
#include "cost/evaluator.hpp"
#include "netlist/netlist.hpp"
#include "parallel/config.hpp"
#include "support/run_control.hpp"
#include "support/stats.hpp"
#include "tabu/search.hpp"

namespace pts::solver {

/// Salts for the sequential-engine RNG streams (see file comment).
inline constexpr std::uint64_t kInitStreamSalt = 0x696e'6974'2d70'6c63ULL;
inline constexpr std::uint64_t kSearchStreamSalt = 0x7365'6172'6368'2d73ULL;

/// Everything a run needs. Only the parameter block of the selected engine
/// is read; the shared fields apply to every engine.
struct SolveSpec {
  /// Registry key ("tabu", "anneal", "local", "constructive",
  /// "parallel-sim", "parallel-threaded", or a custom registered engine).
  std::string engine = "tabu";
  /// Circuit to place; must outlive the call and its results.
  const netlist::Netlist* netlist = nullptr;

  // -- shared by every engine ---------------------------------------------
  std::uint64_t seed = 1;
  cost::CostParams cost;

  /// Warm start (ECO mode): when non-empty, the sequential search engines
  /// ("tabu", "anneal", "local") seed from this slot assignment — typically
  /// a prior SolveResult::best_slots — instead of the constructive random
  /// init. Must be a permutation of the netlist's movable cells (validated).
  /// Goal calibration still runs against the same-seed *random* placement,
  /// so warm and cold runs of one circuit rank solutions on an identical
  /// cost scale, and an empty vector leaves the cold path bit-identical to
  /// before this field existed. Rejected by "constructive" and the
  /// parallel engines.
  std::vector<netlist::CellId> initial_slots;

  // -- per-engine parameter blocks ----------------------------------------
  /// "tabu" and, as the TSW inner loop, both parallel engines.
  tabu::TabuParams tabu;
  baselines::AnnealParams anneal;       ///< "anneal"
  baselines::LocalSearchParams local;   ///< "local"
  /// "parallel-sim" / "parallel-threaded". The shared `seed`, `cost`, and
  /// `tabu` blocks above are authoritative: they overwrite the copies
  /// nested inside this config when the run starts.
  parallel::PtsConfig parallel;
  /// "parallel-shared" — thread count and chunking of the shared-memory
  /// backend (it reuses the `tabu` block as its search parameters and the
  /// sequential seed salts, so a 1-thread run is bit-identical to "tabu").
  parallel::SharedParams shared;

  // -- run control --------------------------------------------------------
  StopConditions stop;
  Observer* observer = nullptr;  ///< not owned; may be null
};

/// Superset of the engines' native result types (tabu::SearchResult,
/// baselines::AnnealResult/LocalSearchResult, parallel::PtsResult). Fields
/// an engine does not produce are left default (empty series, zero stats).
struct SolveResult {
  std::string engine;  ///< registry key that produced this result

  double initial_cost = 0.0;
  double best_cost = 0.0;
  double best_quality = 0.0;
  cost::Objectives best_objectives;
  /// Slot assignment (cell ids by slot) of the best solution.
  std::vector<netlist::CellId> best_slots;

  Series cost_trace;      ///< "tabu": current cost per traced iteration
  Series best_trace;      ///< sequential engines: best cost per iteration
  Series best_vs_time;    ///< best vs engine clock (tabu-family + parallel)
  Series best_vs_global;  ///< parallel engines: best per global iteration

  tabu::SearchStats stats;     ///< tabu-family engines (anneal maps moves)
  std::size_t iterations = 0;  ///< unified iteration/move count
  /// Engine seconds: virtual time for "parallel-sim", wall time otherwise.
  double makespan = 0.0;
  StopReason stop_reason = StopReason::Completed;
  bool converged = false;  ///< "local": stopped by patience

  /// First engine-clock instant the best reached `cost_threshold` (-1 if
  /// never, or if the engine does not record a best-vs-time series).
  double time_to_cost(double cost_threshold) const {
    return best_vs_time.first_x_reaching(cost_threshold);
  }
};

/// One search engine behind the front door. Implementations must be
/// stateless across solve() calls (one registered instance serves every
/// caller, possibly concurrently).
class Engine {
 public:
  virtual ~Engine() = default;

  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;

  /// Appends engine-specific spec problems to `errors`. The shared fields
  /// (netlist, cost, stop) are checked by Solver::validate before this.
  virtual void validate(const SolveSpec& spec,
                        std::vector<std::string>& errors) const {
    (void)spec;
    (void)errors;
  }

  /// Runs the engine; `spec` has passed validation. Implementations fill
  /// everything except SolveResult::engine (stamped by the Solver).
  virtual SolveResult solve(const SolveSpec& spec) const = 0;
};

/// Registers a custom engine under engine->name(). Returns false (and
/// discards the engine) if the name is already taken. Registered engines
/// live for the process; there is no unregister.
bool register_engine(std::unique_ptr<Engine> engine);

/// Looks up a registered engine; nullptr if unknown. The pointer stays
/// valid for the process lifetime.
const Engine* find_engine(std::string_view name);

/// Sorted names of every registered engine (built-ins plus custom).
std::vector<std::string> engine_names();

/// The front door. Stateless; cheap to construct wherever needed.
class Solver {
 public:
  /// Full list of problems with `spec` (empty = valid): unknown engine,
  /// missing/degenerate netlist, out-of-range parameters, nonsense stop
  /// conditions, plus the selected engine's own checks.
  std::vector<std::string> validate(const SolveSpec& spec) const;

  /// Validates, then dispatches to the selected engine. Aborts with the
  /// full error list on an invalid spec — use validate() first when the
  /// spec comes from user input.
  SolveResult solve(const SolveSpec& spec) const;

  /// Convenience alias for engine_names().
  static std::vector<std::string> engines() { return engine_names(); }
};

namespace detail {
/// Implemented in engines.cpp; called once by the registry bootstrap.
std::vector<std::unique_ptr<Engine>> make_builtin_engines();

/// Shared setup for the sequential engines: layout, the seed-derived
/// initial placement (random, or spec.initial_slots when warm-starting),
/// goals calibrated against the same-seed random placement, and an
/// evaluator carrying it all. Exposed for the checkpoint runner
/// (solver/checkpoint.hpp), which must replicate the engine recipe exactly.
struct SequentialSetup {
  std::unique_ptr<placement::Layout> layout;
  std::unique_ptr<cost::Evaluator> eval;
};

SequentialSetup make_sequential_setup(const SolveSpec& spec);
}  // namespace detail

}  // namespace pts::solver
