// The shared-memory "parallel-shared" backend (DESIGN.md §8) and the
// worker-count clamp it shares with the TSW/CLW engines:
//
//  1. A 1-thread run is bit-identical to the sequential "tabu" engine with
//     the same seed — traces, best cost/slots, and stats alike.
//  2. The cost trajectory is independent of the thread count (the engine's
//     determinism contract is stronger than per-thread-count determinism),
//     and a fixed thread count is trivially deterministic run to run.
//  3. Run control behaves like every other engine: pre-cancelled tokens
//     stop before iteration 1, iteration budgets truncate bit-identically,
//     observers see every iteration without perturbing the run.
//  4. Oversubscribed worker counts (workers > movable cells) solve instead
//     of aborting — on this engine and on the two TSW/CLW engines whose
//     partition_cells ranges used to come out empty.
#include <gtest/gtest.h>

#include <string>

#include "experiments/workloads.hpp"
#include "parallel/shared_engine.hpp"
#include "solver/solver.hpp"

namespace pts::solver {
namespace {

SolveSpec shared_spec(const netlist::Netlist& nl, std::size_t threads,
                      std::uint64_t seed = 7, std::size_t iterations = 60) {
  SolveSpec spec;
  spec.engine = "parallel-shared";
  spec.netlist = &nl;
  spec.seed = seed;
  spec.tabu.iterations = iterations;
  spec.shared.threads = threads;
  return spec;
}

void expect_same_y(const Series& a, const Series& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.y[i], b.y[i]) << "series y diverges at index " << i;
  }
}

void expect_identical_outcome(const SolveResult& a, const SolveResult& b) {
  EXPECT_EQ(a.initial_cost, b.initial_cost);
  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.best_quality, b.best_quality);
  EXPECT_EQ(a.best_slots, b.best_slots);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.stats.accepted, b.stats.accepted);
  EXPECT_EQ(a.stats.rejected_tabu, b.stats.rejected_tabu);
  EXPECT_EQ(a.stats.aspirated, b.stats.aspirated);
  EXPECT_EQ(a.stats.trials, b.stats.trials);
  ASSERT_EQ(a.cost_trace.size(), b.cost_trace.size());
  for (std::size_t i = 0; i < a.cost_trace.size(); ++i) {
    EXPECT_EQ(a.cost_trace.x[i], b.cost_trace.x[i]);
    EXPECT_EQ(a.cost_trace.y[i], b.cost_trace.y[i]);
    EXPECT_EQ(a.best_trace.y[i], b.best_trace.y[i]);
  }
  expect_same_y(a.best_vs_time, b.best_vs_time);
}

// -- 1 thread == sequential tabu, bit for bit -------------------------------

TEST(SharedEngine, OneThreadMatchesSequentialTabuBitForBit) {
  for (const char* name : {"highway", "c532"}) {
    SCOPED_TRACE(name);
    const auto& nl = experiments::circuit(name);
    SolveSpec tabu_spec = shared_spec(nl, 1);
    tabu_spec.engine = "tabu";
    const auto sequential = Solver().solve(tabu_spec);
    const auto shared = Solver().solve(shared_spec(nl, 1));
    expect_identical_outcome(sequential, shared);
  }
}

// -- determinism across runs and thread counts ------------------------------

TEST(SharedEngine, FixedThreadCountIsDeterministic) {
  const auto& nl = experiments::circuit("c532");
  for (std::size_t threads : {2u, 4u}) {
    SCOPED_TRACE(threads);
    const auto a = Solver().solve(shared_spec(nl, threads));
    const auto b = Solver().solve(shared_spec(nl, threads));
    expect_identical_outcome(a, b);
  }
}

TEST(SharedEngine, TrajectoryIndependentOfThreadCount) {
  // Stronger than the per-thread-count pin above: sampling happens on the
  // coordinator, probes are state-independent, and the reduction order is
  // fixed, so 2- and 4-thread runs retrace the 1-thread run exactly.
  const auto& nl = experiments::circuit("c532");
  const auto one = Solver().solve(shared_spec(nl, 1));
  for (std::size_t threads : {2u, 4u}) {
    SCOPED_TRACE(threads);
    const auto many = Solver().solve(shared_spec(nl, threads));
    expect_identical_outcome(one, many);
  }
}

// -- run control ------------------------------------------------------------

TEST(SharedEngine, IterationBudgetTruncatesBitIdentically) {
  const auto& nl = experiments::circuit("highway");
  auto spec = shared_spec(nl, 2, /*seed=*/31, /*iterations=*/80);
  const auto full = Solver().solve(spec);
  ASSERT_EQ(full.stop_reason, StopReason::Completed);

  spec.stop.max_iterations = 30;
  const auto capped = Solver().solve(spec);
  EXPECT_EQ(capped.stop_reason, StopReason::IterationBudget);
  EXPECT_EQ(capped.iterations, 30u);
  ASSERT_EQ(capped.best_trace.size(), 30u);
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(capped.best_trace.y[i], full.best_trace.y[i]);
    EXPECT_EQ(capped.cost_trace.y[i], full.cost_trace.y[i]);
  }
}

TEST(SharedEngine, PreCancelledTokenStopsBeforeFirstIteration) {
  const auto& nl = experiments::circuit("highway");
  CancelToken token;
  token.cancel();
  auto spec = shared_spec(nl, 4);
  spec.stop.cancel = &token;
  const auto result = Solver().solve(spec);
  EXPECT_EQ(result.stop_reason, StopReason::Cancelled);
  EXPECT_EQ(result.iterations, 0u);
  EXPECT_EQ(result.best_cost, result.initial_cost);
}

namespace {
class CountingObserver : public Observer {
 public:
  void on_improvement(const Progress& progress) override {
    improvements.push_back(progress.best_cost);
  }
  void on_iteration(const Progress& progress) override {
    iterations = progress.iteration;
    ++iteration_calls;
  }

  std::vector<double> improvements;
  std::size_t iterations = 0;
  std::size_t iteration_calls = 0;
};
}  // namespace

TEST(SharedEngine, ObserverSeesEveryIterationWithoutPerturbing) {
  const auto& nl = experiments::circuit("highway");
  const auto plain = Solver().solve(shared_spec(nl, 2));

  auto observed_spec = shared_spec(nl, 2);
  CountingObserver observer;
  observed_spec.observer = &observer;
  observed_spec.stop.max_iterations = 1000000;  // engaged, never fires
  const auto observed = Solver().solve(observed_spec);

  expect_identical_outcome(plain, observed);
  EXPECT_EQ(observer.iteration_calls, observed.iterations);
  ASSERT_FALSE(observer.improvements.empty());
  EXPECT_EQ(observer.improvements.back(), observed.best_cost);
}

// -- oversubscription regression (workers > movable cells) ------------------

TEST(SharedEngine, OversubscribedThreadsClampAndSolve) {
  // highway has 56 movable cells; 64 threads must clamp, not abort.
  const auto& nl = experiments::circuit("highway");
  const auto result = Solver().solve(shared_spec(nl, 64, /*seed=*/3,
                                                 /*iterations=*/8));
  EXPECT_LE(result.best_cost, result.initial_cost);
  EXPECT_EQ(result.iterations, 8u);
  EXPECT_EQ(result.best_slots.size(), nl.num_movable());

  // And the clamped run is still the same search (thread-count invariance).
  const auto one = Solver().solve(shared_spec(nl, 1, /*seed=*/3,
                                              /*iterations=*/8));
  EXPECT_EQ(result.best_cost, one.best_cost);
  EXPECT_EQ(result.best_slots, one.best_slots);
}

TEST(SharedEngine, OversubscribedSimEngineSolves) {
  // partition_cells(n, workers) with workers > n used to hand empty ranges
  // to sample_move, which aborts. Both paper circuits small enough to
  // oversubscribe cheaply.
  for (const char* name : {"highway", "c532"}) {
    SCOPED_TRACE(name);
    const auto& nl = experiments::circuit(name);
    SolveSpec spec = experiments::base_spec(nl, "parallel-sim", /*seed=*/5,
                                            /*quick=*/true);
    spec.parallel.num_tsws = nl.num_movable() + 8;
    spec.parallel.clws_per_tsw = 1;
    spec.parallel.global_iterations = 1;
    spec.parallel.local_iterations = 1;
    const auto result = Solver().solve(spec);
    EXPECT_LE(result.best_cost, result.initial_cost);
    EXPECT_EQ(result.best_slots.size(), nl.num_movable());
  }
}

TEST(SharedEngine, OversubscribedThreadedEngineSolves) {
  const auto& nl = experiments::circuit("highway");
  SolveSpec spec = experiments::base_spec(nl, "parallel-threaded", /*seed=*/5,
                                          /*quick=*/true);
  spec.parallel.num_tsws = nl.num_movable() + 4;  // 60 > 56 movable
  spec.parallel.clws_per_tsw = 1;
  spec.parallel.global_iterations = 1;
  spec.parallel.local_iterations = 1;
  const auto result = Solver().solve(spec);
  EXPECT_LE(result.best_cost, result.initial_cost);
  EXPECT_EQ(result.best_slots.size(), nl.num_movable());
}

}  // namespace
}  // namespace pts::solver
