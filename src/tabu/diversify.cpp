#include "tabu/diversify.hpp"

#include "tabu/compound.hpp"

namespace pts::tabu {

void diversify(cost::Evaluator& eval, const CellRange& range,
               const DiversifyParams& params, Rng& rng,
               std::vector<Move>* applied) {
  PTS_DCHECK(applied != nullptr);
  applied->clear();
  if (!params.enabled || range.empty()) return;
  PTS_CHECK(params.width >= 1);
  applied->reserve(params.depth);
  const std::span<const netlist::CellId> movable =
      eval.placement().netlist().movable_cells();
  for (std::size_t level = 0; level < params.depth; ++level) {
    Move best{};
    double best_cost = 0.0;
    best_of_trials(eval, movable, range, params.width, params.batch, rng,
                   /*memory=*/nullptr, /*use_memory=*/false, &best, &best_cost);
    eval.commit_swap(best.a, best.b);
    applied->push_back(best);
  }
}

std::vector<Move> diversify(cost::Evaluator& eval, const CellRange& range,
                            const DiversifyParams& params, Rng& rng) {
  std::vector<Move> applied;
  diversify(eval, range, params, rng, &applied);
  return applied;
}

}  // namespace pts::tabu
