// Full placement flow on one circuit, exercising the substrate APIs
// directly: netlist generation and IO, layout, initial placement
// construction (random vs greedy), sequential tabu search, and exact
// static timing verification of the final solution.
//
// Usage: placement_flow [--circuit c532] [--iterations 300]
//                       [--save out.net] [--svg out.svg]
#include <cstdio>

#include "baselines/constructive.hpp"
#include "experiments/workloads.hpp"
#include "netlist/io.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"
#include "placement/svg.hpp"
#include "tabu/search.hpp"
#include "timing/slack.hpp"
#include "timing/sta.hpp"

namespace {

std::unique_ptr<pts::cost::Evaluator> evaluator_for(
    const pts::netlist::Netlist& nl, pts::placement::Placement placement,
    const pts::cost::FuzzyGoals* shared_goals = nullptr) {
  pts::cost::CostParams params;
  auto paths = pts::timing::extract_critical_paths(nl, params.num_paths,
                                                   params.delay_model);
  const auto goals =
      shared_goals != nullptr
          ? *shared_goals
          : pts::cost::Evaluator::calibrate_goals(placement, *paths, params);
  return std::make_unique<pts::cost::Evaluator>(std::move(placement),
                                                std::move(paths), params, goals);
}

void report(const char* label, const pts::cost::Evaluator& eval) {
  const auto o = eval.objectives();
  std::printf("%-18s cost=%.4f quality=%.4f wire=%.0f delay=%.2f area=%.0f\n",
              label, eval.cost(), eval.quality(), o.wirelength, o.delay, o.area);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pts;
  const Cli cli(argc, argv);
  set_log_level(LogLevel::Warn);

  const std::string name = cli.get("circuit", "c532");
  const auto& circuit = experiments::circuit(name);
  const placement::Layout layout(circuit);
  std::printf("circuit %s: %zu cells / %zu nets, layout %zux%zu slots\n",
              circuit.name().c_str(), circuit.num_movable(), circuit.num_nets(),
              layout.num_rows(), layout.slots_per_row());

  // Two constructive starting points.
  Rng rng(7);
  auto random_eval = evaluator_for(
      circuit, baselines::random_placement(circuit, layout, rng));
  report("random initial", *random_eval);
  {
    // Use the random run's goals so the two costs are comparable.
    const auto goals = random_eval->goals();
    auto greedy_eval = evaluator_for(
        circuit, baselines::greedy_placement(circuit, layout, rng), &goals);
    report("greedy initial", *greedy_eval);
  }

  // Sequential tabu search from the random start.
  tabu::TabuParams params;
  params.iterations =
      static_cast<std::size_t>(cli.get_int("iterations", 300));
  tabu::TabuSearch search(*random_eval, params, Rng(11));
  const auto result = search.run();
  report("after tabu search", *random_eval);
  std::printf("search: %zu iterations, %zu accepted, %zu tabu-rejected, "
              "%zu aspirated, %zu early-accepts\n",
              result.stats.iterations, result.stats.accepted,
              result.stats.rejected_tabu, result.stats.aspirated,
              result.stats.early_accepts);

  // Exact STA cross-check of the incremental delay estimate.
  const timing::DelayModel model;
  const auto sta = timing::run_sta(circuit, random_eval->hpwl(), model);
  std::printf("exact STA critical delay: %.3f (monitored-paths estimate %.3f, "
              "%.1f%% coverage)\n",
              sta.critical_delay, random_eval->objectives().delay,
              100.0 * random_eval->objectives().delay / sta.critical_delay);
  std::printf("critical path length: %zu cells\n", sta.critical_path.size());

  if (cli.has("save")) {
    const std::string path = cli.get("save", "circuit.net");
    netlist::save_netlist_file(circuit, path);
    std::printf("netlist written to %s\n", path.c_str());
  }

  if (cli.has("svg")) {
    // Render the final placement with cells shaded by timing criticality
    // of their most critical incident net.
    const std::string path = cli.get("svg", "placement.svg");
    const auto slack =
        timing::analyze_slack(circuit, random_eval->hpwl(), model);
    placement::SvgOptions options;
    options.title = circuit.name() + " after tabu search";
    options.cell_intensity.assign(circuit.num_cells(), 0.0);
    for (netlist::CellId cell : circuit.movable_cells()) {
      for (netlist::NetId net : circuit.nets_of(cell)) {
        options.cell_intensity[cell] = std::max(
            options.cell_intensity[cell], slack.net_criticality[net]);
      }
    }
    placement::save_svg(random_eval->placement(), random_eval->hpwl(), path,
                        options);
    std::printf("placement rendered to %s\n", path.c_str());
  }
  return 0;
}
