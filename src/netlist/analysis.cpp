#include "netlist/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace pts::netlist {
namespace {

DistributionSummary summarize(const std::vector<std::size_t>& values) {
  DistributionSummary s;
  if (values.empty()) return s;
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  double sum = 0.0;
  for (std::size_t v : values) sum += static_cast<double>(v);
  s.mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (std::size_t v : values) {
    const double d = static_cast<double>(v) - s.mean;
    var += d * d;
  }
  s.stddev = values.size() > 1
                 ? std::sqrt(var / static_cast<double>(values.size() - 1))
                 : 0.0;
  constexpr std::size_t kBuckets = 17;  // 0..15 and 16+
  s.histogram.assign(kBuckets, 0);
  for (std::size_t v : values) s.histogram[std::min(v, kBuckets - 1)] += 1;
  return s;
}

}  // namespace

CircuitStats analyze_circuit(const Netlist& netlist) {
  CircuitStats stats;
  stats.cells = netlist.num_cells();
  stats.gates = netlist.num_movable();
  stats.nets = netlist.num_nets();
  stats.pins = netlist.num_pins();
  stats.logic_depth = netlist.logic_depth();
  stats.total_gate_width = netlist.total_movable_width();
  for (CellId pad : netlist.pad_cells()) {
    (netlist.cell(pad).kind == CellKind::PrimaryInput ? stats.primary_inputs
                                                      : stats.primary_outputs) += 1;
  }

  std::vector<std::size_t> net_degree;
  net_degree.reserve(netlist.num_nets());
  for (const auto& net : netlist.nets()) net_degree.push_back(net.pin_count());
  stats.net_degree = summarize(net_degree);

  std::vector<std::size_t> fanin, fanout;
  fanin.reserve(stats.gates);
  fanout.reserve(stats.gates);
  for (CellId gate : netlist.movable_cells()) {
    fanin.push_back(netlist.cell(gate).in_nets.size());
    fanout.push_back(netlist.net(netlist.cell(gate).out_net).sinks.size());
  }
  stats.gate_fanin = summarize(fanin);
  stats.gate_fanout = summarize(fanout);

  stats.avg_pins_per_net =
      stats.nets > 0 ? static_cast<double>(stats.pins) /
                           static_cast<double>(stats.nets)
                     : 0.0;
  stats.avg_pins_per_cell =
      stats.cells > 0 ? static_cast<double>(stats.pins) /
                            static_cast<double>(stats.cells)
                      : 0.0;
  return stats;
}

std::string format_stats(const CircuitStats& stats) {
  std::ostringstream os;
  os << "cells: " << stats.cells << " (" << stats.gates << " gates, "
     << stats.primary_inputs << " PIs, " << stats.primary_outputs << " POs)\n";
  os << "nets: " << stats.nets << ", pins: " << stats.pins
     << ", pins/net: " << stats.avg_pins_per_net
     << ", pins/cell: " << stats.avg_pins_per_cell << "\n";
  os << "logic depth: " << stats.logic_depth
     << ", total gate width: " << stats.total_gate_width << "\n";
  auto line = [&](const char* name, const DistributionSummary& d) {
    os << name << ": mean " << d.mean << " sd " << d.stddev << " range ["
       << d.min << ", " << d.max << "]\n";
  };
  line("net degree", stats.net_degree);
  line("gate fanin", stats.gate_fanin);
  line("gate fanout", stats.gate_fanout);
  return os.str();
}

}  // namespace pts::netlist
