// End-to-end integration tests: the full pipeline from circuit generation
// through parallel search, cross-checking engines, file IO, and the
// consistency of everything a downstream user would compose.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "baselines/constructive.hpp"
#include "experiments/speedup.hpp"
#include "experiments/workloads.hpp"
#include "netlist/io.hpp"
#include "parallel/sim_engine.hpp"
#include "parallel/threaded_engine.hpp"
#include "tabu/search.hpp"
#include "timing/sta.hpp"

namespace pts {
namespace {

TEST(Integration, FileRoundTripFeedsTheFullPipeline) {
  // Generate -> save -> load -> place -> search, all through public APIs.
  const auto& original = experiments::circuit("highway");
  const auto path = std::filesystem::temp_directory_path() / "pts_highway.net";
  netlist::save_netlist_file(original, path.string());
  const netlist::Netlist loaded = netlist::load_netlist_file(path.string());
  std::filesystem::remove(path);
  EXPECT_EQ(loaded.num_movable(), original.num_movable());

  auto config = experiments::base_config(loaded, 3, /*quick=*/true);
  config.num_tsws = 2;
  config.clws_per_tsw = 2;
  const auto result = parallel::SimEngine(loaded, config).run();
  EXPECT_LT(result.best_cost, result.initial_cost);
}

TEST(Integration, SequentialVsParallelSameCostModel) {
  // A sequential TabuSearch and a 1x1 parallel run use the same cost
  // machinery; both must improve from the same initial cost calibration
  // (cost 0.75 by construction).
  const auto& circuit = experiments::circuit("highway");
  auto config = experiments::base_config(circuit, 9, /*quick=*/true);
  config.num_tsws = 1;
  config.clws_per_tsw = 1;
  const auto parallel_result =
      parallel::SimEngine(circuit, config).run();
  EXPECT_NEAR(parallel_result.initial_cost, 0.75, 1e-9);
  EXPECT_LT(parallel_result.best_cost, 0.70);
}

TEST(Integration, FinalSolutionIsAValidPlacement) {
  const auto& circuit = experiments::circuit("c532");
  auto config = experiments::base_config(circuit, 5, /*quick=*/true);
  config.num_tsws = 3;
  config.clws_per_tsw = 2;
  const auto result = parallel::SimEngine(circuit, config).run();

  const placement::Layout layout(circuit);
  placement::Placement p(circuit, layout);
  p.assign_slots(result.best_slots);  // PTS_CHECKs the bijection
  p.check_consistent();

  // The reported delay estimate is bounded by exact STA on the solution.
  placement::HpwlState hpwl(p);
  const timing::DelayModel model;
  const auto sta = timing::run_sta(circuit, hpwl, model);
  EXPECT_LE(result.best_objectives.delay, sta.critical_delay + 1e-6);
  EXPECT_NEAR(result.best_objectives.wirelength, hpwl.total(), 1e-6);
}

TEST(Integration, BothEnginesImproveTheSameWorkload) {
  const auto& circuit = experiments::circuit("highway");
  auto config = experiments::base_config(circuit, 7, /*quick=*/true);
  config.num_tsws = 2;
  config.clws_per_tsw = 2;
  const auto sim = parallel::SimEngine(circuit, config).run();
  const auto threaded = parallel::ThreadedEngine(circuit, config).run();
  EXPECT_EQ(sim.initial_cost, threaded.initial_cost);
  EXPECT_LT(sim.best_cost, sim.initial_cost);
  EXPECT_LT(threaded.best_cost, threaded.initial_cost);
  // Same fixed iteration budget under WaitAll-free defaults: both engines
  // end with comparable quality (loose bound; different RNG schedules).
  EXPECT_NEAR(sim.best_cost, threaded.best_cost, 0.25);
}

TEST(Integration, ParallelSearchBeatsSingleThreadAtEqualVirtualTime) {
  // The motivating claim: at the time the parallel run finishes, a single
  // worker has achieved less. Compare via the improvement trajectories.
  const auto& circuit = experiments::circuit("c532");
  auto config = experiments::base_config(circuit, 11, /*quick=*/false);
  config.num_tsws = 4;
  config.clws_per_tsw = 2;
  const auto par = parallel::SimEngine(circuit, config).run();

  auto solo_config = config;
  solo_config.num_tsws = 1;
  solo_config.clws_per_tsw = 1;
  const auto solo = parallel::SimEngine(circuit, solo_config).run();

  const double solo_at_par_end = solo.best_vs_time.y_at(
      std::min(par.makespan, solo.best_vs_time.x.back()));
  EXPECT_LT(par.best_cost, solo_at_par_end);
}

TEST(Integration, GreedyStartAcceleratesSearch) {
  // Better initial solution -> better final solution under a small budget.
  const auto& circuit = experiments::circuit("c532");
  const placement::Layout layout(circuit);
  cost::CostParams params;
  auto paths =
      timing::extract_critical_paths(circuit, params.num_paths, params.delay_model);
  Rng rng(4);
  const auto random_p = baselines::random_placement(circuit, layout, rng);
  const auto greedy_p = baselines::greedy_placement(circuit, layout, rng);
  // Shared goals from the random start (harder goals for both).
  const auto goals = cost::Evaluator::calibrate_goals(random_p, *paths, params);

  tabu::TabuParams tp;
  tp.iterations = 80;
  cost::Evaluator random_eval(random_p, paths, params, goals);
  cost::Evaluator greedy_eval(greedy_p, paths, params, goals);
  const auto from_random = tabu::TabuSearch(random_eval, tp, Rng(5)).run();
  const auto from_greedy = tabu::TabuSearch(greedy_eval, tp, Rng(5)).run();
  EXPECT_LT(from_greedy.best_cost, from_random.best_cost);
}

TEST(Integration, HalfForceTracksDominanceOverTime) {
  // Fig 11's qualitative claim as an assertion: at the heterogeneous run's
  // end time, the homogeneous run has achieved no better cost.
  const auto& circuit = experiments::circuit("c532");
  auto config = experiments::base_config(circuit, 13, /*quick=*/true);
  config.num_tsws = 4;
  config.clws_per_tsw = 4;
  config.set_policy(parallel::CollectionPolicy::HalfForce);
  const auto het = parallel::SimEngine(circuit, config).run();
  config.set_policy(parallel::CollectionPolicy::WaitAll);
  const auto hom = parallel::SimEngine(circuit, config).run();

  EXPECT_LT(het.makespan, hom.makespan);
  const double hom_at_het_end = hom.best_vs_time.y_at(het.makespan);
  EXPECT_LE(het.best_cost, hom_at_het_end + 0.02);
}

TEST(Integration, SpeedupHarnessEndToEnd) {
  const auto& circuit = experiments::circuit("highway");
  auto config = experiments::base_config(circuit, 17, /*quick=*/true);
  config.num_tsws = 4;
  const auto m = experiments::measure_speedup(
      circuit, config, experiments::VaryWorkers::Clws, {1, 2}, 0.6, /*seeds=*/2);
  ASSERT_EQ(m.time_to_threshold.size(), 2u);
  EXPECT_GT(m.time_to_threshold.y[0], 0.0);
  ASSERT_GE(m.speedup.size(), 1u);
  EXPECT_NEAR(m.speedup.y[0], 1.0, 1e-9);
}

TEST(Integration, TwelveMachineTwentyOneTaskPaperShape) {
  // The paper's exact configuration: master + 4 TSWs + 16 CLWs on the
  // 12-machine cluster, heterogeneous policy at both levels.
  const auto& circuit = experiments::circuit("highway");
  auto config = experiments::base_config(circuit, 19, /*quick=*/true);
  config.num_tsws = 4;
  config.clws_per_tsw = 4;
  EXPECT_EQ(config.cluster.size(), 12u);
  const auto result = parallel::SimEngine(circuit, config).run();
  EXPECT_LT(result.best_cost, result.initial_cost);
  EXPECT_GT(result.stats.accepted, 0u);
}

}  // namespace
}  // namespace pts
