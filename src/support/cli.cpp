#include "support/cli.hpp"

#include <cstdio>
#include <cstdlib>

namespace pts {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positional_.push_back(std::move(token));
      continue;
    }
    token.erase(0, 2);
    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      options_[token.substr(0, eq)] = token.substr(eq + 1);
      continue;
    }
    // `--name value` unless the next token is another option or missing;
    // then it is a boolean flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[token] = argv[++i];
    } else {
      options_[token] = "true";
    }
  }
}

bool Cli::has(const std::string& name) const {
  queried_[name] = true;
  return options_.count(name) != 0;
}

std::string Cli::get(const std::string& name, const std::string& fallback) const {
  queried_[name] = true;
  const auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = options_.find(name);
  queried_[name] = true;
  if (it == options_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = options_.find(name);
  queried_[name] = true;
  if (it == options_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_flag(const std::string& name, bool fallback) const {
  const auto it = options_.find(name);
  queried_[name] = true;
  if (it == options_.end()) return fallback;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

std::vector<std::string> Cli::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : options_) {
    (void)value;
    if (queried_.find(name) == queried_.end()) out.push_back(name);
  }
  return out;
}

void Cli::reject_unused(const std::string& usage) const {
  const auto unknown = unused();
  if (unknown.empty()) return;
  for (const auto& name : unknown) {
    std::fprintf(stderr, "%s: unknown option --%s\n", program_.c_str(),
                 name.c_str());
  }
  std::fputs(usage.c_str(), stderr);
  std::exit(2);
}

}  // namespace pts
