#include "netlist/benchmarks.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace pts::netlist {

const std::vector<BenchmarkInfo>& paper_benchmarks() {
  // Cell counts follow Section 5 of the paper; pad counts follow the
  // published ISCAS profiles of similarly sized circuits.
  static const std::vector<BenchmarkInfo> table = {
      {"highway", 56, 8, 8, 0x0156u},
      {"c532", 395, 20, 20, 0x0532u},
      {"c1355", 1451, 41, 32, 0x1355u},
      {"c3540", 2243, 50, 22, 0x3540u},
  };
  return table;
}

const std::vector<BenchmarkInfo>& scale_benchmarks() {
  // Pad counts follow the ~sqrt(gates) scaling the ISCAS profiles show
  // (the paper circuits' pad/gate ratios extrapolated); seeds are fixed so
  // `make_benchmark("scale50k")` is one circuit forever.
  static const std::vector<BenchmarkInfo> table = {
      {"scale10k", 10000, 120, 100, 0x10AAu},
      {"scale50k", 50000, 250, 220, 0x50AAu},
      {"scale200k", 200000, 500, 450, 0x200Au},
  };
  return table;
}

namespace {

bool table_has(const std::vector<BenchmarkInfo>& table, std::string_view name) {
  return std::any_of(table.begin(), table.end(),
                     [&](const BenchmarkInfo& b) { return b.name == name; });
}

}  // namespace

bool is_paper_benchmark(std::string_view name) {
  return table_has(paper_benchmarks(), name);
}

bool is_scale_benchmark(std::string_view name) {
  return table_has(scale_benchmarks(), name);
}

GeneratorConfig benchmark_config(std::string_view name) {
  for (const auto& info : paper_benchmarks()) {
    if (info.name != name) continue;
    GeneratorConfig config;
    config.name = info.name;
    config.num_gates = info.cells;
    config.num_primary_inputs = info.primary_inputs;
    config.num_primary_outputs = info.primary_outputs;
    config.seed = info.seed;
    return config;
  }
  for (const auto& info : scale_benchmarks()) {
    if (info.name != name) continue;
    GeneratorConfig config;
    config.name = info.name;
    config.num_gates = info.cells;
    config.num_primary_inputs = info.primary_inputs;
    config.num_primary_outputs = info.primary_outputs;
    config.seed = info.seed;
    // The paper circuits use a fixed 24-net locality window; at scale that
    // would make logic depth grow linearly with the gate count (chains
    // thread the recent window). Widening the window ~sqrt(gates) keeps
    // depth sublinear — the DESIGN.md §2 statistics contract — while net
    // degree and fanin distributions are size-independent already.
    config.locality_window = static_cast<std::size_t>(
        std::lround(std::sqrt(static_cast<double>(info.cells))));
    return config;
  }
  PTS_CHECK_MSG(false, "unknown benchmark circuit");
}

Netlist make_benchmark(std::string_view name) {
  return generate_circuit(benchmark_config(name));
}

}  // namespace pts::netlist
