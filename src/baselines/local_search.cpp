#include "baselines/local_search.hpp"

#include "support/stopwatch.hpp"
#include "tabu/candidate.hpp"

namespace pts::baselines {

LocalSearchResult local_search(cost::Evaluator& eval,
                               const LocalSearchParams& params, Rng& rng,
                               const RunControl& control) {
  PTS_CHECK(params.candidates_per_iteration >= 1);
  const auto& netlist = eval.placement().netlist();
  const std::span<const netlist::CellId> movable = netlist.movable_cells();
  const tabu::CellRange range = tabu::full_range(netlist);

  LocalSearchResult result;
  result.best_trace.name = "ls_best";
  double current = eval.cost();
  result.best_cost = current;
  result.best_quality = eval.quality();
  result.best_slots = eval.placement().slots();

  const Stopwatch watch;
  std::size_t stale = 0;
  for (std::size_t iter = 0; iter < params.max_iterations; ++iter) {
    if (const auto reason = control.should_stop(
            iter, control.needs_clock() ? watch.seconds() : 0.0,
            result.best_cost, result.best_quality)) {
      result.stop_reason = *reason;
      break;
    }
    ++result.iterations;
    tabu::Move best{};
    double best_cost = current;
    bool have = false;
    for (std::size_t c = 0; c < params.candidates_per_iteration; ++c) {
      const auto move = tabu::sample_move(movable, range, rng);
      const double after = eval.probe_swap(move.a, move.b);
      if (after < best_cost) {
        best = move;
        best_cost = after;
        have = true;
      }
    }
    if (have) {
      current = eval.commit_swap(best.a, best.b);
      stale = 0;
      if (current < result.best_cost) {
        result.best_cost = current;
        result.best_quality = eval.quality();
        result.best_slots = eval.placement().slots();
        if (control.observer != nullptr) {
          control.notify_improvement(
              {iter + 1, watch.seconds(), current, result.best_cost});
        }
      }
    } else if (++stale >= params.patience) {
      result.converged = true;
      break;
    }
    if (params.trace_stride != 0 && iter % params.trace_stride == 0) {
      result.best_trace.add(static_cast<double>(iter), result.best_cost);
    }
    if (control.observer != nullptr) {
      control.notify_iteration(
          {iter + 1, watch.seconds(), current, result.best_cost});
    }
  }
  return result;
}

}  // namespace pts::baselines
