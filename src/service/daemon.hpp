// ptsd — the placement-as-a-service daemon.
//
// A Daemon owns one listening socket (Unix-domain path or loopback TCP), an
// accept thread, one reader thread per client connection, and a process-wide
// SessionManager multiplexing concurrent solves. Requests and streamed
// events use the framed protocol in service/proto.hpp; job specs and
// results cross as JSON (service/codec.hpp).
//
// Hardening contract (tests/service_test.cpp pins each):
//  - framing violations (bad magic, zero-length/oversized payloads) drop
//    the connection — a stream that lied about its framing is untrusted;
//  - schema violations inside a well-framed payload (unknown tag, wrong
//    field order, bad JSON, unknown circuit/engine) answer kError or
//    kSubmitErr and the connection survives;
//  - a mid-solve disconnect cancels and joins exactly that connection's
//    sessions before the connection is torn down (queued sessions of the
//    connection are discarded);
//  - admission control: submissions beyond max_sessions join a bounded
//    FIFO queue (kSubmitOk carries `queued`); beyond max_queued they get
//    kSubmitErr "queue full". Sessions overrunning their wall-clock
//    deadline are cancelled and finish with stop_reason deadline-expired;
//  - stop() drains gracefully: stop accepting, cancel every session, join
//    every thread — afterwards active_sessions() == 0 (no leaked sessions),
//    which is what the SIGTERM path in the ptsd binary relies on.
//
// Signal integration: request_stop() is async-signal-safe (one write to a
// self-pipe); a SIGTERM handler calls it and the thread blocked in
// wait_for_stop_request() — typically main() — performs the actual stop().
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "pvm/message.hpp"
#include "service/proto.hpp"
#include "service/session.hpp"

namespace pts::service {

struct DaemonConfig {
  /// Unix-domain listener path (created on start, unlinked on stop).
  /// Empty: no Unix listener.
  std::string unix_path;
  /// Loopback TCP listener; port 0 binds an ephemeral port (read it back
  /// via Daemon::tcp_port after start).
  bool tcp = false;
  std::uint16_t tcp_port = 0;

  std::size_t max_sessions = 256;
  /// Bounded FIFO admission queue behind the running cap; submissions
  /// beyond max_sessions + max_queued get kSubmitErr ("queue full").
  std::size_t max_queued = 64;
  /// Default wall-clock deadline (queue wait + solve) applied to jobs that
  /// do not carry their own deadline_seconds; <= 0 = none. An overdue
  /// session is cancelled and reports stop_reason == deadline-expired.
  double session_deadline_seconds = 0.0;
  /// Bounded LRU result cache (ECO mode): a resubmission of a cacheable
  /// job (codec spec_cacheable) whose result is remembered gets
  /// kSubmitOk{cached} + kDone with the bit-identical result, without
  /// running a session. 0 disables caching.
  std::size_t cache_entries = 0;
  std::size_t max_payload = 64u << 20;
  std::string server_name = "ptsd";
};

class Daemon {
 public:
  explicit Daemon(DaemonConfig config);
  ~Daemon();  // stop()

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds the configured listeners and spawns the accept thread. False
  /// with a reason on bind/listen failure. Call at most once.
  bool start(std::string* error);

  /// Graceful drain; idempotent; safe from any thread except a daemon
  /// callback thread (readers/sessions — those use request_stop()).
  void stop();

  /// Async-signal-safe stop trigger; wakes wait_for_stop_request().
  void request_stop();

  /// Blocks until request_stop() (or stop()) is called.
  void wait_for_stop_request();

  /// Resolved TCP port (after start, when config.tcp).
  std::uint16_t tcp_port() const { return resolved_tcp_port_; }
  const std::string& unix_path() const { return config_.unix_path; }

  std::size_t active_sessions() const;
  std::size_t queued_sessions() const;
  std::uint64_t sessions_started() const;
  std::uint64_t sessions_finished() const;
  std::uint64_t connections_accepted() const;
  /// Result-cache counters. A submission that is not cacheable at all
  /// (codec spec_cacheable false, or caching disabled) counts as neither.
  std::uint64_t cache_hits() const;
  std::uint64_t cache_misses() const;
  std::size_t cache_size() const;

 private:
  struct Impl;
  struct Connection;

  void accept_loop();
  void reader_loop(const std::shared_ptr<Connection>& connection);
  /// False: tear the connection down (framing-level trust violation).
  bool handle_frame(Connection& connection, pvm::Message& msg);
  void handle_submit(Connection& connection, const SubmitMsg& submit);

  DaemonConfig config_;
  std::uint16_t resolved_tcp_port_ = 0;
  std::unique_ptr<Impl> impl_;
};

}  // namespace pts::service
