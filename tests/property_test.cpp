// Property-based conformance fuzzing.
//
// The synthetic generator doubles as a fuzzer: ~25 seeded random
// GeneratorConfigs spanning 50–5,000 gates (varied fanin, locality, pad
// counts, cell widths) re-assert on every generated circuit the invariants
// PRs 2–4 pinned by hand on the four paper circuits:
//
//  1. Structure: the flat CSR Topology agrees with the Cell/Net object
//     model (DESIGN.md §7), and the generator keeps its documented
//     guarantees (exact gate/PI counts, >= requested POs, acyclic).
//  2. Probe/commit: Evaluator::probe_swap is bit-identical to apply_swap
//     along a random committed walk (DESIGN.md §3).
//  3. Incremental HPWL: probe_nets == update_nets delta-for-delta and
//     change-for-change, the running total tracks a from-scratch recompute,
//     and rebuild() lands exactly on the fresh total.
//  4. Timing: PathTimer::peek_delta equals the committed
//     apply_net_change/max_delay sequence bit for bit.
//
// Everything is exact-equality where the probe/commit contract promises
// bit-identity; the only tolerance is incremental-vs-fresh HPWL *drift*,
// which is bounded but nonzero by design (rebuild_interval caps it).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "cost/evaluator.hpp"
#include "netlist/generator.hpp"
#include "solver/checkpoint.hpp"
#include "placement/hpwl.hpp"
#include "placement/placement.hpp"
#include "support/rng.hpp"
#include "timing/paths.hpp"

namespace pts {
namespace {

using netlist::CellId;
using netlist::GeneratorConfig;
using netlist::kNoNet;
using netlist::Netlist;
using netlist::NetId;
using netlist::Topology;

constexpr int kNumConfigs = 25;

/// Deterministic config family: sizes log-spread across [50, 5000] (the
/// first two pinned to the endpoints), every other knob drawn from the
/// seeded stream so the 25 circuits differ in fanin, locality, pads and
/// width mix.
GeneratorConfig random_config(int index, Rng& rng) {
  GeneratorConfig config;
  config.name = "fuzz" + std::to_string(index);
  if (index == 0) {
    config.num_gates = 50;
  } else if (index == 1) {
    config.num_gates = 5000;
  } else {
    const double log_gates = rng.uniform(std::log(50.0), std::log(5000.0));
    config.num_gates = static_cast<std::size_t>(std::lround(std::exp(log_gates)));
  }
  config.num_primary_inputs = static_cast<std::size_t>(rng.between(2, 40));
  config.num_primary_outputs = static_cast<std::size_t>(rng.between(2, 40));
  config.max_fanin = static_cast<std::size_t>(rng.between(2, 8));
  config.avg_fanin = rng.uniform(1.2, static_cast<double>(config.max_fanin));
  config.locality = rng.uniform(0.0, 0.95);
  config.locality_window = static_cast<std::size_t>(rng.between(4, 64));
  config.min_width = 1;
  config.max_width = static_cast<int>(rng.between(1, 6));
  config.critical_net_fraction = rng.uniform(0.0, 0.3);
  config.seed = 0xF022'0000ULL + static_cast<std::uint64_t>(index);
  return config;
}

std::vector<GeneratorConfig> fuzz_configs() {
  Rng rng(0xFA2'2E5ULL);
  std::vector<GeneratorConfig> configs;
  configs.reserve(kNumConfigs);
  for (int i = 0; i < kNumConfigs; ++i) configs.push_back(random_config(i, rng));
  return configs;
}

std::unique_ptr<cost::Evaluator> make_eval(const Netlist& nl,
                                           const placement::Layout& layout,
                                           std::uint64_t seed) {
  cost::CostParams params;
  Rng rng(seed);
  auto p = placement::Placement::random(nl, layout, rng);
  auto paths =
      timing::extract_critical_paths(nl, params.num_paths, params.delay_model);
  const auto goals = cost::Evaluator::calibrate_goals(p, *paths, params);
  return std::make_unique<cost::Evaluator>(std::move(p), std::move(paths), params,
                                           goals);
}

// -- property 1: generator guarantees + CSR vs reference adjacency ----------

void expect_topology_matches_reference(const Netlist& nl) {
  const Topology& topo = nl.topology();
  ASSERT_EQ(topo.num_cells(), nl.num_cells());
  ASSERT_EQ(topo.num_nets(), nl.num_nets());
  ASSERT_EQ(topo.num_pins(), nl.num_pins());

  for (NetId net = 0; net < nl.num_nets(); ++net) {
    const auto& n = nl.net(net);
    const auto pins = topo.pins(net);
    ASSERT_EQ(pins.size(), n.pin_count()) << "net " << net;
    ASSERT_EQ(pins.front(), n.driver) << "net " << net;
    const auto sinks = topo.sinks(net);
    ASSERT_EQ(sinks.size(), n.sinks.size()) << "net " << net;
    for (std::size_t i = 0; i < sinks.size(); ++i) {
      ASSERT_EQ(sinks[i], n.sinks[i]) << "net " << net << " sink " << i;
    }
    ASSERT_EQ(topo.net_weight(net), n.weight) << "net " << net;
  }

  for (CellId cell = 0; cell < nl.num_cells(); ++cell) {
    const auto& c = nl.cell(cell);
    // Reference incident-net order: out net first, inputs deduplicated in
    // first-seen order.
    std::vector<NetId> expected;
    if (c.out_net != kNoNet) expected.push_back(c.out_net);
    for (NetId in : c.in_nets) {
      if (std::find(expected.begin(), expected.end(), in) == expected.end()) {
        expected.push_back(in);
      }
    }
    const auto incident = topo.nets_of(cell);
    ASSERT_EQ(incident.size(), expected.size()) << "cell " << cell;
    for (std::size_t i = 0; i < incident.size(); ++i) {
      ASSERT_EQ(incident[i], expected[i]) << "cell " << cell << " net " << i;
    }
    ASSERT_EQ(topo.cell_width(cell), static_cast<double>(c.width));
    ASSERT_EQ(topo.cell_intrinsic_delay(cell), c.intrinsic_delay);
    ASSERT_EQ(topo.cell_load_factor(cell), c.load_factor);
    ASSERT_EQ(topo.cell_movable(cell), c.movable());
  }
}

TEST(PropertyFuzz, GeneratorInvariantsAndCsrAdjacency) {
  for (const GeneratorConfig& config : fuzz_configs()) {
    SCOPED_TRACE(config.name + " gates=" + std::to_string(config.num_gates));
    const Netlist nl = netlist::generate_circuit(config);

    // Documented generator guarantees (generator.hpp).
    EXPECT_EQ(nl.num_movable(), config.num_gates);
    std::size_t pis = 0, pos = 0;
    for (CellId pad : nl.pad_cells()) {
      (nl.cell(pad).kind == netlist::CellKind::PrimaryInput ? pis : pos) += 1;
    }
    EXPECT_EQ(pis, config.num_primary_inputs);
    EXPECT_GE(pos, config.num_primary_outputs);
    // Acyclic: finalize() would have aborted otherwise; the topological
    // order must cover every cell.
    EXPECT_EQ(nl.topological_order().size(), nl.num_cells());
    EXPECT_GE(nl.logic_depth(), 1u);
    // Fanin stays inside the configured cap.
    for (CellId gate : nl.movable_cells()) {
      EXPECT_LE(nl.cell(gate).in_nets.size(), config.max_fanin);
    }

    expect_topology_matches_reference(nl);
  }
}

// -- property 2: probe_swap == apply_swap bit for bit ------------------------

TEST(PropertyFuzz, ProbeMatchesApplyBitForBit) {
  for (const GeneratorConfig& config : fuzz_configs()) {
    SCOPED_TRACE(config.name + " gates=" + std::to_string(config.num_gates));
    const Netlist nl = netlist::generate_circuit(config);
    const placement::Layout layout(nl);
    auto eval = make_eval(nl, layout, config.seed ^ 0x9e37ULL);

    Rng rng(config.seed ^ 0x517cULL);
    const auto& movable = nl.movable_cells();
    for (int i = 0; i < 60; ++i) {
      const auto [ia, ib] = rng.distinct_pair(movable.size());
      const CellId a = movable[ia];
      const CellId b = movable[ib];
      const double probed = eval->probe_swap(a, b);
      const double applied = eval->apply_swap(a, b);
      ASSERT_EQ(probed, applied) << config.name << " swap " << i;
    }
  }
}

// -- properties 3 + 4: incremental HPWL and peek_delta vs recompute ----------

TEST(PropertyFuzz, IncrementalHpwlAndPeekDeltaMatchRecompute) {
  for (const GeneratorConfig& config : fuzz_configs()) {
    SCOPED_TRACE(config.name + " gates=" + std::to_string(config.num_gates));
    const Netlist nl = netlist::generate_circuit(config);
    const placement::Layout layout(nl);
    Rng init_rng(config.seed ^ 0xB0B0ULL);
    auto placement = placement::Placement::random(nl, layout, init_rng);

    placement::HpwlState hpwl(placement);
    const timing::DelayModel model;
    const auto paths = timing::extract_critical_paths(nl, 24, model);
    timing::PathTimer timer(paths, hpwl, model);
    placement::NetMarker marker(nl.num_nets());
    std::vector<placement::NetBox> boxes;
    std::vector<placement::NetChange> probe_changes;
    std::vector<placement::NetChange> apply_changes;
    std::vector<CellId> moved;

    Rng rng(config.seed ^ 0xC4C4ULL);
    const auto& movable = nl.movable_cells();
    for (int i = 0; i < 60; ++i) {
      const auto [ia, ib] = rng.distinct_pair(movable.size());
      moved.clear();
      placement.swap_cells(movable[ia], movable[ib], &moved);
      marker.begin();
      for (CellId cell : moved) marker.add_nets_of(nl, cell);

      // Probe the same nets the committed update will recompute, then
      // commit; the probe's delta, per-net changes, and peeked delay must
      // equal the committed sequence exactly (the §3 contract).
      probe_changes.clear();
      const double probed_delta =
          hpwl.probe_nets(marker.nets(), &boxes, &probe_changes);
      const double peeked = timer.peek_delta(probe_changes);

      apply_changes.clear();
      const double applied_delta = hpwl.update_nets(marker.nets(), &apply_changes);
      for (const auto& change : apply_changes) {
        timer.apply_net_change(change.net, change.old_hpwl, change.new_hpwl);
      }

      ASSERT_EQ(probed_delta, applied_delta) << "swap " << i;
      ASSERT_EQ(probe_changes.size(), apply_changes.size()) << "swap " << i;
      for (std::size_t c = 0; c < probe_changes.size(); ++c) {
        ASSERT_EQ(probe_changes[c].net, apply_changes[c].net);
        ASSERT_EQ(probe_changes[c].old_hpwl, apply_changes[c].old_hpwl);
        ASSERT_EQ(probe_changes[c].new_hpwl, apply_changes[c].new_hpwl);
      }
      ASSERT_EQ(peeked, timer.max_delay()) << "swap " << i;
    }

    // Incremental total vs from-scratch recompute: drift-bounded while
    // incremental, exact after rebuild().
    const double fresh = hpwl.compute_fresh_total();
    EXPECT_NEAR(hpwl.total(), fresh, 1e-9 * std::max(1.0, std::abs(fresh)));
    hpwl.rebuild();
    EXPECT_EQ(hpwl.total(), hpwl.compute_fresh_total());
  }
}

// -- property 5: probe_batch == N sequential probe_swap, bit for bit ---------

TEST(PropertyFuzz, ProbeBatchMatchesScalarBitForBit) {
  for (const GeneratorConfig& config : fuzz_configs()) {
    SCOPED_TRACE(config.name + " gates=" + std::to_string(config.num_gates));
    const Netlist nl = netlist::generate_circuit(config);
    const placement::Layout layout(nl);
    // Two evaluators seeded identically: one scores through probe_batch,
    // the other through sequential probe_swap. Their committed states must
    // stay bit-identical round after round.
    auto batch_eval = make_eval(nl, layout, config.seed ^ 0xBA7CULL);
    auto scalar_eval = make_eval(nl, layout, config.seed ^ 0xBA7CULL);

    // A gate on a pad-driven net, forced into every batch so nets with pad
    // pins (whose fixed positions an overlay must never shift) are always
    // exercised.
    const auto& movable = nl.movable_cells();
    CellId pad_adjacent = netlist::kNoCell;
    for (CellId gate : movable) {
      for (NetId net : nl.topology().nets_of(gate)) {
        if (!nl.cell(nl.topology().driver(net)).movable()) {
          pad_adjacent = gate;
          break;
        }
      }
      if (pad_adjacent != netlist::kNoCell) break;
    }

    Rng rng(config.seed ^ 0x8A7CULL);
    std::vector<cost::Move> moves;
    std::vector<double> batch_costs;
    for (int round = 0; round < 6; ++round) {
      const std::size_t width = static_cast<std::size_t>(rng.between(1, 12));
      moves.clear();
      for (std::size_t w = 0; w < width; ++w) {
        const auto [ia, ib] = rng.distinct_pair(movable.size());
        moves.push_back({movable[ia], movable[ib]});
      }
      if (pad_adjacent != netlist::kNoCell && moves[0].b != pad_adjacent) {
        moves[0].a = pad_adjacent;
      }
      // Overlapping-net candidates: candidates 0 and 1 share a cell, so
      // their marked-net sets intersect.
      if (moves.size() >= 2) {
        moves[1].a = moves[0].a;
        if (moves[1].b == moves[1].a) moves[1].b = moves[0].b;
      }

      batch_costs.assign(moves.size(), 0.0);
      batch_eval->probe_batch(moves, batch_costs);

      // Bit-identity per candidate; track the first-strict-min winner the
      // way every candidate loop does.
      std::size_t best = 0;
      for (std::size_t i = 0; i < moves.size(); ++i) {
        const double scalar = scalar_eval->probe_swap(moves[i].a, moves[i].b);
        ASSERT_EQ(batch_costs[i], scalar)
            << config.name << " round " << round << " candidate " << i;
        if (batch_costs[i] < batch_costs[best]) best = i;
      }

      // Batch-then-commit of the winning index: commit_swap promotes the
      // scalar evaluator's pending probe only when the winner was the last
      // candidate probed, so both commit paths get exercised — and both
      // must leave bit-identical committed state.
      const double batch_committed =
          batch_eval->commit_swap(moves[best].a, moves[best].b);
      const double scalar_committed =
          scalar_eval->commit_swap(moves[best].a, moves[best].b);
      ASSERT_EQ(batch_committed, scalar_committed)
          << config.name << " round " << round;
      ASSERT_EQ(batch_eval->hpwl().total(), scalar_eval->hpwl().total());
      ASSERT_TRUE(batch_eval->placement() == scalar_eval->placement());
    }
  }
}

// -- property 5: checkpoint/resume == uninterrupted, on random circuits ------

TEST(PropertyFuzz, ResumedSearchMatchesUninterruptedBitForBit) {
  const auto configs = fuzz_configs();
  // A handful of the smaller circuits: the property is per-iteration state
  // equality, which a big circuit does not make stronger, only slower.
  int tested = 0;
  for (const auto& config : configs) {
    if (config.num_gates > 400 || tested >= 5) continue;
    ++tested;
    const Netlist nl = netlist::generate_circuit(config);

    solver::SolveSpec spec;
    spec.engine = "tabu";
    spec.netlist = &nl;
    spec.seed = config.seed ^ 0xCE50'11ULL;
    spec.tabu.iterations = 70;

    const auto full = solver::solve_with_checkpoint(spec);

    // Interrupt at an arbitrary seeded point, round-trip through JSON,
    // resume, and require the whole-run result to be bit-identical.
    Rng rng(config.seed ^ 0x1D1ULL);
    solver::SolveSpec interrupted = spec;
    interrupted.stop.max_iterations = 1 + rng.below(69);
    const auto half = solver::solve_with_checkpoint(interrupted);

    solver::Checkpoint restored;
    ASSERT_EQ(solver::decode_checkpoint(
                  solver::encode_checkpoint(half.checkpoint), &restored),
              "")
        << config.name;
    const auto resumed = solver::resume_from_checkpoint(spec, restored);

    ASSERT_EQ(resumed.result.best_cost, full.result.best_cost) << config.name;
    ASSERT_EQ(resumed.result.best_slots, full.result.best_slots) << config.name;
    ASSERT_EQ(resumed.result.stats.accepted, full.result.stats.accepted)
        << config.name;
    ASSERT_EQ(resumed.result.stats.trials, full.result.stats.trials)
        << config.name;
    ASSERT_EQ(resumed.checkpoint.eval.slots, full.checkpoint.eval.slots)
        << config.name;
    ASSERT_EQ(resumed.checkpoint.eval.hpwl_total, full.checkpoint.eval.hpwl_total)
        << config.name;
    ASSERT_EQ(resumed.checkpoint.eval.wire_sums, full.checkpoint.eval.wire_sums)
        << config.name;
  }
  ASSERT_GT(tested, 0);
}

}  // namespace
}  // namespace pts
