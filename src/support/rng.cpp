#include "support/rng.hpp"

#include <cmath>

namespace pts {

double Rng::sqrt_neg2_log(double s) { return std::sqrt(-2.0 * std::log(s) / s); }

}  // namespace pts
