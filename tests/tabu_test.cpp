// Unit tests for src/tabu: tabu list, candidate sampling, compound moves,
// diversification, sequential search.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "cost/evaluator.hpp"
#include "netlist/generator.hpp"
#include "tabu/search.hpp"

namespace pts::tabu {
namespace {

using netlist::CellId;
using netlist::GeneratorConfig;
using netlist::Netlist;
using placement::Layout;
using placement::Placement;

Netlist circuit(std::size_t gates = 40, std::uint64_t seed = 5) {
  GeneratorConfig config;
  config.num_gates = gates;
  config.seed = seed;
  return generate_circuit(config);
}

std::unique_ptr<cost::Evaluator> make_eval(const Netlist& nl, const Layout& layout,
                                           std::uint64_t seed) {
  cost::CostParams params;
  Rng rng(seed);
  Placement p = Placement::random(nl, layout, rng);
  auto paths =
      timing::extract_critical_paths(nl, params.num_paths, params.delay_model);
  const auto goals = cost::Evaluator::calibrate_goals(p, *paths, params);
  return std::make_unique<cost::Evaluator>(std::move(p), std::move(paths), params,
                                           goals);
}

TEST(Move, NormalizationAndKey) {
  const Move ab{3, 7};
  const Move ba{7, 3};
  EXPECT_TRUE(ab == ba);
  EXPECT_EQ(ab.key(), ba.key());
  EXPECT_NE(ab.key(), Move({3, 8}).key());
}

TEST(TabuListTest, TenureExpiry) {
  TabuList list(3);
  list.record({1, 2});
  list.record({3, 4});
  list.record({5, 6});
  EXPECT_TRUE(list.is_tabu({2, 1}));
  EXPECT_EQ(list.size(), 3u);
  list.record({7, 8});  // evicts (1,2)
  EXPECT_FALSE(list.is_tabu({1, 2}));
  EXPECT_TRUE(list.is_tabu({3, 4}));
  EXPECT_TRUE(list.is_tabu({7, 8}));
}

TEST(TabuListTest, DuplicateEntriesRefCounted) {
  TabuList list(3);
  list.record({1, 2});
  list.record({1, 2});
  list.record({3, 4});
  list.record({5, 6});  // evicts first (1,2), second copy remains
  EXPECT_TRUE(list.is_tabu({1, 2}));
  list.record({7, 8});  // evicts second (1,2)
  EXPECT_FALSE(list.is_tabu({1, 2}));
}

TEST(TabuListTest, EitherCellAttribute) {
  TabuList list(4, TabuAttribute::EitherCell);
  list.record({1, 2});
  EXPECT_TRUE(list.is_tabu({1, 9}));  // shares cell 1
  EXPECT_TRUE(list.is_tabu({9, 2}));  // shares cell 2
  EXPECT_FALSE(list.is_tabu({8, 9}));
}

TEST(TabuListTest, PairAttributeDoesNotBlockSharedCell) {
  TabuList list(4, TabuAttribute::CellPair);
  list.record({1, 2});
  EXPECT_FALSE(list.is_tabu({1, 9}));
  EXPECT_TRUE(list.is_tabu({1, 2}));
}

TEST(TabuListTest, EntriesAssignRoundTrip) {
  TabuList list(5);
  list.record({1, 2});
  list.record({3, 4});
  TabuList other(5);
  other.assign(list.entries());
  EXPECT_TRUE(other.is_tabu({1, 2}));
  EXPECT_TRUE(other.is_tabu({3, 4}));
  EXPECT_EQ(other.entries().size(), 2u);
  other.clear();
  EXPECT_FALSE(other.is_tabu({1, 2}));
  EXPECT_EQ(other.size(), 0u);
}

TEST(Partition, CoversAllCellsWithoutOverlap) {
  for (std::size_t n : {1u, 7u, 56u, 100u}) {
    for (std::size_t w : {1u, 2u, 3u, 4u, 8u}) {
      const auto ranges = partition_cells(n, w);
      ASSERT_EQ(ranges.size(), w);
      std::size_t covered = 0;
      for (std::size_t i = 0; i < w; ++i) {
        EXPECT_EQ(ranges[i].begin, covered);
        covered = ranges[i].end;
      }
      EXPECT_EQ(covered, n);
      // Sizes differ by at most one.
      std::size_t lo = n, hi = 0;
      for (const auto& r : ranges) {
        lo = std::min(lo, r.size());
        hi = std::max(hi, r.size());
      }
      EXPECT_LE(hi - lo, 1u);
    }
  }
}

TEST(SampleMove, FirstCellFromRangeSecondAnywhere) {
  const Netlist nl = circuit(30);
  const CellRange range{5, 10};
  Rng rng(3);
  std::set<CellId> range_cells(nl.movable_cells().begin() + 5,
                               nl.movable_cells().begin() + 10);
  bool second_outside = false;
  for (int i = 0; i < 500; ++i) {
    const Move m = sample_move(nl, range, rng);
    EXPECT_NE(m.a, m.b);
    EXPECT_TRUE(range_cells.count(m.a));
    second_outside |= !range_cells.count(m.b);
  }
  EXPECT_TRUE(second_outside);  // the second cell roams the whole space
}

TEST(SampleMove, CollisionProbabilityMatchesPaperClaim) {
  // Two CLWs with disjoint ranges: P(same unordered pair) = 1/(n-1)^2.
  const Netlist nl = circuit(20, 9);
  const std::size_t n = nl.num_movable();
  const auto ranges = partition_cells(n, 2);
  Rng rng_a(1), rng_b(2);
  int collisions = 0;
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) {
    const Move a = sample_move(nl, ranges[0], rng_a);
    const Move b = sample_move(nl, ranges[1], rng_b);
    collisions += a == b;
  }
  const double expected = static_cast<double>(draws) /
                          (static_cast<double>(n - 1) * static_cast<double>(n - 1));
  EXPECT_NEAR(collisions, expected, 4.0 * std::sqrt(expected) + 1.0);
}

TEST(Compound, RespectsDepthAndEarlyAccept) {
  const Netlist nl = circuit(40, 7);
  const Layout layout(nl);
  auto eval = make_eval(nl, layout, 11);
  Rng rng(13);
  CompoundParams params;
  params.width = 6;
  params.depth = 4;
  for (int i = 0; i < 20; ++i) {
    const double before = eval->cost();
    const CompoundMove move =
        build_compound_move(*eval, full_range(nl), params, rng);
    EXPECT_GE(move.swaps.size(), 1u);
    EXPECT_LE(move.swaps.size(), params.depth);
    EXPECT_NEAR(move.cost, eval->cost(), 1e-9);
    if (move.improved_early) {
      EXPECT_LT(move.cost, before);
      // Early accept stops at the first improving level.
      if (move.swaps.size() < params.depth) {
        EXPECT_TRUE(move.improved_early);
      }
    }
    undo_compound(*eval, move);
    EXPECT_NEAR(eval->cost(), before, 1e-7);
  }
}

TEST(Compound, WithoutEarlyAcceptAlwaysFullDepth) {
  const Netlist nl = circuit(40, 7);
  const Layout layout(nl);
  auto eval = make_eval(nl, layout, 11);
  Rng rng(17);
  CompoundParams params;
  params.width = 4;
  params.depth = 3;
  params.early_accept = false;
  for (int i = 0; i < 10; ++i) {
    const CompoundMove move =
        build_compound_move(*eval, full_range(nl), params, rng);
    EXPECT_EQ(move.swaps.size(), params.depth);
    EXPECT_FALSE(move.improved_early);
    undo_compound(*eval, move);
  }
}

TEST(Diversify, AppliesRequestedDepthWithinRange) {
  const Netlist nl = circuit(30, 3);
  const Layout layout(nl);
  auto eval = make_eval(nl, layout, 4);
  Rng rng(5);
  DiversifyParams params;
  params.depth = 6;
  const CellRange range{0, 10};
  std::set<CellId> range_cells(nl.movable_cells().begin(),
                               nl.movable_cells().begin() + 10);
  const auto before_slots = eval->placement().slots();
  const auto moves = diversify(*eval, range, params, rng);
  EXPECT_EQ(moves.size(), 6u);
  for (const Move& m : moves) EXPECT_TRUE(range_cells.count(m.a));
  EXPECT_NE(eval->placement().slots(), before_slots);
}

TEST(Diversify, DisabledIsNoOp) {
  const Netlist nl = circuit(30, 3);
  const Layout layout(nl);
  auto eval = make_eval(nl, layout, 4);
  Rng rng(5);
  DiversifyParams params;
  params.enabled = false;
  const auto before = eval->placement().slots();
  EXPECT_TRUE(diversify(*eval, {0, 10}, params, rng).empty());
  EXPECT_EQ(eval->placement().slots(), before);
}

TEST(CompoundTabu, AnySwapTabuMakesCompoundTabu) {
  TabuList list(4);
  list.record({1, 2});
  CompoundMove move;
  move.swaps = {{5, 6}, {2, 1}};
  EXPECT_TRUE(compound_is_tabu(list, move));
  move.swaps = {{5, 6}, {7, 8}};
  EXPECT_FALSE(compound_is_tabu(list, move));
  record_compound(list, move);
  EXPECT_TRUE(list.is_tabu({5, 6}));
  EXPECT_TRUE(list.is_tabu({7, 8}));
}

TEST(Search, ImprovesRandomInitialSolution) {
  const Netlist nl = circuit(56, 2);
  const Layout layout(nl);
  auto eval = make_eval(nl, layout, 6);
  const double initial = eval->cost();
  TabuParams params;
  params.iterations = 150;
  TabuSearch search(*eval, params, Rng(7));
  const SearchResult result = search.run();
  EXPECT_LT(result.best_cost, initial);
  EXPECT_EQ(result.stats.iterations, 150u);
  EXPECT_EQ(result.stats.accepted + result.stats.rejected_tabu,
            result.stats.iterations);
  EXPECT_EQ(result.best_slots.size(), nl.num_movable());
  // Best trace is monotone non-increasing.
  for (std::size_t i = 1; i < result.best_trace.size(); ++i) {
    EXPECT_LE(result.best_trace.y[i], result.best_trace.y[i - 1]);
  }
  // Reported best matches an independent evaluation of best_slots.
  auto fresh = make_eval(nl, layout, 6);
  fresh->reset_placement(result.best_slots);
  EXPECT_NEAR(fresh->cost(), result.best_cost, 1e-6);
}

TEST(Search, DeterministicForSeed) {
  const Netlist nl = circuit(30, 4);
  const Layout layout(nl);
  TabuParams params;
  params.iterations = 60;
  auto e1 = make_eval(nl, layout, 9);
  auto e2 = make_eval(nl, layout, 9);
  const auto r1 = TabuSearch(*e1, params, Rng(42)).run();
  const auto r2 = TabuSearch(*e2, params, Rng(42)).run();
  EXPECT_EQ(r1.best_cost, r2.best_cost);
  EXPECT_EQ(r1.best_slots, r2.best_slots);
  EXPECT_EQ(r1.stats.accepted, r2.stats.accepted);
}

TEST(Search, TabuRejectionsHappenWithTightMemory) {
  // EitherCell attribute on a tiny circuit makes most moves tabu quickly,
  // exercising the rejection path.
  const Netlist nl = circuit(10, 8);
  const Layout layout(nl);
  auto eval = make_eval(nl, layout, 3);
  TabuParams params;
  params.iterations = 100;
  params.tenure = 8;
  params.attribute = TabuAttribute::EitherCell;
  params.aspiration = false;
  TabuSearch search(*eval, params, Rng(11));
  const auto result = search.run();
  EXPECT_GT(result.stats.rejected_tabu, 0u);
}

TEST(Search, AspirationAcceptsTabuImprovement) {
  const Netlist nl = circuit(10, 8);
  const Layout layout(nl);
  TabuParams params;
  params.iterations = 200;
  params.tenure = 8;
  params.attribute = TabuAttribute::EitherCell;

  auto with = make_eval(nl, layout, 3);
  params.aspiration = true;
  const auto r_with = TabuSearch(*with, params, Rng(11)).run();
  // With such a strong tabu structure, some accepted moves must have come
  // through aspiration (statistically robust for this seed).
  EXPECT_GT(r_with.stats.aspirated, 0u);
}

TEST(Search, IterateRestrictedToRangeUsesRangeCells) {
  const Netlist nl = circuit(30, 5);
  const Layout layout(nl);
  auto eval = make_eval(nl, layout, 2);
  TabuParams params;
  TabuSearch search(*eval, params, Rng(3));
  const CellRange range{0, 5};
  std::set<CellId> range_cells(nl.movable_cells().begin(),
                               nl.movable_cells().begin() + 5);
  for (int i = 0; i < 10; ++i) search.iterate(range);
  // Every tabu entry's first cell came from the range (sample_move
  // guarantees m.a in range; entries are normalized so check either end).
  for (const Move& m : search.tabu_list().entries()) {
    EXPECT_TRUE(range_cells.count(m.a) || range_cells.count(m.b));
  }
}

}  // namespace
}  // namespace pts::tabu
