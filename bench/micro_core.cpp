// Micro-benchmarks (google-benchmark) for the search inner loop: swap
// evaluation, compound construction, HPWL/STA rebuilds, message codec, and
// one simulated local iteration. Not a paper figure — engineering data for
// the ablation discussion in DESIGN.md.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cost/evaluator.hpp"
#include "experiments/workloads.hpp"
#include "parallel/protocol.hpp"
#include "parallel/worker_logic.hpp"
#include "tabu/compound.hpp"
#include "timing/sta.hpp"

namespace {

using namespace pts;

std::unique_ptr<cost::Evaluator> make_eval(const netlist::Netlist& nl,
                                           const placement::Layout& layout,
                                           std::uint64_t seed) {
  cost::CostParams params;
  Rng rng(seed);
  auto p = placement::Placement::random(nl, layout, rng);
  auto paths =
      timing::extract_critical_paths(nl, params.num_paths, params.delay_model);
  const auto goals = cost::Evaluator::calibrate_goals(p, *paths, params);
  return std::make_unique<cost::Evaluator>(std::move(p), std::move(paths), params,
                                           goals);
}

const netlist::Netlist& circuit_for(int index) {
  static const char* names[] = {"highway", "c532", "c1355", "c3540"};
  return experiments::circuit(names[index]);
}

template <typename SwapFn>
void run_swap_bench(benchmark::State& state, SwapFn&& swap) {
  const auto& nl = circuit_for(static_cast<int>(state.range(0)));
  static std::map<const netlist::Netlist*, std::unique_ptr<placement::Layout>>
      layouts;
  auto& layout = layouts[&nl];
  if (!layout) layout = std::make_unique<placement::Layout>(nl);
  auto eval = make_eval(nl, *layout, 1);
  Rng rng(2);
  const auto& movable = nl.movable_cells();
  for (auto _ : state) {
    const auto [ia, ib] = rng.distinct_pair(movable.size());
    benchmark::DoNotOptimize(swap(*eval, movable[ia], movable[ib]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(nl.name());
}

void BM_ApplySwap(benchmark::State& state) {
  run_swap_bench(state, [](cost::Evaluator& e, netlist::CellId a,
                           netlist::CellId b) { return e.apply_swap(a, b); });
}
BENCHMARK(BM_ApplySwap)->DenseRange(0, 3);

void BM_ProbeSwap(benchmark::State& state) {
  run_swap_bench(state, [](cost::Evaluator& e, netlist::CellId a,
                           netlist::CellId b) { return e.probe_swap(a, b); });
}
BENCHMARK(BM_ProbeSwap)->DenseRange(0, 3);

// Batched candidate scoring vs BM_ProbeSwap: one iteration samples `width`
// pairs (same stream discipline as the scalar bench — one draw per trial)
// and scores them in a single Evaluator::probe_batch call, so items/s are
// directly comparable between the two families. dump_json.py tracks the
// batch-8 per-candidate time against BM_ProbeSwap as probe_batch_speedup.
void run_probe_batch_bench(benchmark::State& state, std::size_t width) {
  const auto& nl = circuit_for(static_cast<int>(state.range(0)));
  static std::map<const netlist::Netlist*, std::unique_ptr<placement::Layout>>
      layouts;
  auto& layout = layouts[&nl];
  if (!layout) layout = std::make_unique<placement::Layout>(nl);
  auto eval = make_eval(nl, *layout, 1);
  Rng rng(2);
  const auto& movable = nl.movable_cells();
  std::vector<cost::Move> moves(width);
  std::vector<double> costs(width);
  for (auto _ : state) {
    for (std::size_t w = 0; w < width; ++w) {
      const auto [ia, ib] = rng.distinct_pair(movable.size());
      moves[w] = {movable[ia], movable[ib]};
    }
    eval->probe_batch(moves, costs);
    benchmark::DoNotOptimize(costs.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * width));
  state.SetLabel(nl.name());
}

void BM_ProbeBatch4(benchmark::State& state) {
  run_probe_batch_bench(state, 4);
}
BENCHMARK(BM_ProbeBatch4)->DenseRange(0, 3);

void BM_ProbeBatch8(benchmark::State& state) {
  run_probe_batch_bench(state, 8);
}
BENCHMARK(BM_ProbeBatch8)->DenseRange(0, 3);

void BM_ProbeBatch16(benchmark::State& state) {
  run_probe_batch_bench(state, 16);
}
BENCHMARK(BM_ProbeBatch16)->DenseRange(0, 3);

void BM_ProbeBatch32(benchmark::State& state) {
  run_probe_batch_bench(state, 32);
}
BENCHMARK(BM_ProbeBatch32)->DenseRange(0, 3);

// -- CSR vs vector-of-vectors probe throughput ------------------------------
//
// The core of one trial probe is: gather the union of nets incident to the
// two swapped cells, recompute each net's bounding box over its pins, and
// accumulate the weighted half-perimeters. BM_ProbeCsr runs that pass as
// the library ships it — flat netlist::Topology adjacency and the flat
// per-cell position arrays. BM_ProbeVecOfVec runs the identical arithmetic
// through a faithful replica of the pre-Topology data path: per-net Net
// structs (name string included, as Netlist stores them) with
// heap-allocated sink vectors, a vector-of-vectors incident-net index, and
// the old per-pin position lookup (Cell-struct movable check, then
// slot -> row division and row_y for gates, layout pad table for pads).
// The pair measures what the layout refactor bought end to end on one
// probe pass. Expected >=1.3x on c3540 (tracked in BENCH_baseline.json via
// bench/dump_json.py).

struct VecOfVecNet {
  std::string name;  // the old Net struct carried its name before the pins
  netlist::CellId driver = netlist::kNoCell;
  std::vector<netlist::CellId> sinks;
  double weight = 1.0;
};

struct VecOfVecTopology {
  const netlist::Netlist* nl;
  std::vector<VecOfVecNet> nets;
  std::vector<std::vector<netlist::NetId>> nets_of;

  explicit VecOfVecTopology(const netlist::Netlist& netlist) : nl(&netlist) {
    nets.reserve(nl->num_nets());
    for (netlist::NetId n = 0; n < nl->num_nets(); ++n) {
      const auto& net = nl->net(n);
      nets.push_back({net.name, net.driver, net.sinks, net.weight});
    }
    nets_of.resize(nl->num_cells());
    for (netlist::CellId c = 0; c < nl->num_cells(); ++c) {
      const auto incident = nl->nets_of(c);
      nets_of[c].assign(incident.begin(), incident.end());
    }
  }

  // The pre-refactor Placement::position(): a Cell-struct load for the
  // movable check, then slot -> row division + row_y recomputation per pin
  // (pads from the layout table).
  placement::Point position(const placement::Placement& p,
                            netlist::CellId cell) const {
    if (!nl->cell(cell).movable()) return p.layout().pad_position(cell);
    const placement::SlotId slot = p.slot_of(cell);
    const placement::Point modern = p.position(cell);
    return placement::Point{modern.x,
                            p.layout().row_y(p.layout().row_of_slot(slot))};
  }
};

struct ProbeScratch {
  std::vector<std::uint64_t> stamp;
  std::uint64_t epoch = 0;
  std::vector<netlist::NetId> nets;

  explicit ProbeScratch(std::size_t num_nets) : stamp(num_nets, 0) {
    nets.reserve(num_nets);
  }
};

inline void grow_box(placement::NetBox& box, const placement::Point p) {
  box.min_x = std::min(box.min_x, p.x);
  box.max_x = std::max(box.max_x, p.x);
  box.min_y = std::min(box.min_y, p.y);
  box.max_y = std::max(box.max_y, p.y);
}

double probe_pair_csr(const netlist::Topology& topo, const placement::Placement& p,
                      netlist::CellId a, netlist::CellId b, ProbeScratch& fx) {
  ++fx.epoch;
  fx.nets.clear();
  for (netlist::CellId cell : {a, b}) {
    for (netlist::NetId net : topo.nets_of(cell)) {
      if (fx.stamp[net] != fx.epoch) {
        fx.stamp[net] = fx.epoch;
        fx.nets.push_back(net);
      }
    }
  }
  double total = 0.0;
  for (netlist::NetId net : fx.nets) {
    const auto pins = topo.pins(net);
    const placement::Point d = p.position(pins.front());
    placement::NetBox box{d.x, d.x, d.y, d.y};
    for (netlist::CellId sink : pins.subspan(1)) grow_box(box, p.position(sink));
    total += topo.net_weight(net) * box.half_perimeter();
  }
  return total;
}

double probe_pair_vecofvec(const VecOfVecTopology& topo,
                           const placement::Placement& p, netlist::CellId a,
                           netlist::CellId b, ProbeScratch& fx) {
  ++fx.epoch;
  fx.nets.clear();
  for (netlist::CellId cell : {a, b}) {
    for (netlist::NetId net : topo.nets_of[cell]) {
      if (fx.stamp[net] != fx.epoch) {
        fx.stamp[net] = fx.epoch;
        fx.nets.push_back(net);
      }
    }
  }
  double total = 0.0;
  for (netlist::NetId net : fx.nets) {
    const VecOfVecNet& n = topo.nets[net];
    const placement::Point d = topo.position(p, n.driver);
    placement::NetBox box{d.x, d.x, d.y, d.y};
    for (netlist::CellId sink : n.sinks) grow_box(box, topo.position(p, sink));
    total += n.weight * box.half_perimeter();
  }
  return total;
}

template <typename ProbeFn>
void run_probe_topology_bench(benchmark::State& state, ProbeFn&& probe) {
  const auto& nl = circuit_for(static_cast<int>(state.range(0)));
  const placement::Layout layout(nl);
  Rng rng(11);
  const auto p = placement::Placement::random(nl, layout, rng);
  ProbeScratch fx(nl.num_nets());
  const auto& movable = nl.movable_cells();
  for (auto _ : state) {
    const auto [ia, ib] = rng.distinct_pair(movable.size());
    benchmark::DoNotOptimize(probe(p, movable[ia], movable[ib], fx));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(nl.name());
}

void BM_ProbeCsr(benchmark::State& state) {
  const auto& nl = circuit_for(static_cast<int>(state.range(0)));
  const auto& topo = nl.topology();
  run_probe_topology_bench(
      state, [&topo](const placement::Placement& p, netlist::CellId a,
                     netlist::CellId b, ProbeScratch& fx) {
        return probe_pair_csr(topo, p, a, b, fx);
      });
}
BENCHMARK(BM_ProbeCsr)->DenseRange(0, 3);

void BM_ProbeVecOfVec(benchmark::State& state) {
  const auto& nl = circuit_for(static_cast<int>(state.range(0)));
  const VecOfVecTopology topo(nl);
  run_probe_topology_bench(
      state, [&topo](const placement::Placement& p, netlist::CellId a,
                     netlist::CellId b, ProbeScratch& fx) {
        return probe_pair_vecofvec(topo, p, a, b, fx);
      });
}
BENCHMARK(BM_ProbeVecOfVec)->DenseRange(0, 3);

// The compound-move trial loop, both ways, at one level of `width` trials
// plus the committed winner (the winner is applied and immediately undone so
// each iteration measures the same distribution of states). The probe-based
// loop is the shipped code path; the apply/undo loop is the pre-refactor
// baseline kept for regression tracking — the probe loop is expected to stay
// >=1.5x faster at c3540 scale.
void trial_level_apply_undo(cost::Evaluator& eval, const tabu::CellRange& range,
                            std::size_t width, Rng& rng) {
  tabu::Move best{};
  double best_cost = 0.0;
  bool have = false;
  for (std::size_t t = 0; t < width; ++t) {
    const auto move = tabu::sample_move(eval.placement().netlist(), range, rng);
    const double after = eval.apply_swap(move.a, move.b);
    eval.apply_swap(move.a, move.b);  // undo trial
    if (!have || after < best_cost) {
      best = move;
      best_cost = after;
      have = true;
    }
  }
  eval.apply_swap(best.a, best.b);
  eval.apply_swap(best.a, best.b);  // revert the winner: keep state stable
}

void trial_level_probe(cost::Evaluator& eval, const tabu::CellRange& range,
                       std::size_t width, Rng& rng) {
  tabu::Move best{};
  double best_cost = 0.0;
  bool have = false;
  for (std::size_t t = 0; t < width; ++t) {
    const auto move = tabu::sample_move(eval.placement().netlist(), range, rng);
    const double after = eval.probe_swap(move.a, move.b);
    if (!have || after < best_cost) {
      best = move;
      best_cost = after;
      have = true;
    }
  }
  eval.commit_swap(best.a, best.b);  // promotes the probe if the last trial won
  eval.apply_swap(best.a, best.b);   // revert the winner: keep state stable
}

template <typename LevelFn>
void run_trial_level_bench(benchmark::State& state, LevelFn&& level) {
  const auto& nl = circuit_for(static_cast<int>(state.range(0)));
  const placement::Layout layout(nl);
  auto eval = make_eval(nl, layout, 9);
  Rng rng(10);
  const tabu::CellRange range = tabu::full_range(nl);
  const std::size_t width = 8;
  for (auto _ : state) {
    level(*eval, range, width, rng);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * width));
  state.SetLabel(nl.name() + " width=8");
}

void BM_TrialLevelApplyUndo(benchmark::State& state) {
  run_trial_level_bench(state, trial_level_apply_undo);
}
BENCHMARK(BM_TrialLevelApplyUndo)->DenseRange(0, 3);

void BM_TrialLevelProbe(benchmark::State& state) {
  run_trial_level_bench(state, trial_level_probe);
}
BENCHMARK(BM_TrialLevelProbe)->DenseRange(0, 3);

void BM_CompoundMove(benchmark::State& state) {
  const auto& nl = circuit_for(1);  // c532
  const placement::Layout layout(nl);
  auto eval = make_eval(nl, layout, 3);
  Rng rng(4);
  tabu::CompoundParams params;
  params.width = static_cast<std::size_t>(state.range(0));
  params.depth = 3;
  for (auto _ : state) {
    const auto move =
        tabu::build_compound_move(*eval, tabu::full_range(nl), params, rng);
    tabu::undo_compound(*eval, move);
  }
  state.SetLabel("c532 width=" + std::to_string(params.width));
}
BENCHMARK(BM_CompoundMove)->Arg(4)->Arg(8)->Arg(16);

void BM_HpwlRebuild(benchmark::State& state) {
  const auto& nl = circuit_for(static_cast<int>(state.range(0)));
  const placement::Layout layout(nl);
  Rng rng(5);
  const auto p = placement::Placement::random(nl, layout, rng);
  placement::HpwlState hpwl(p);
  for (auto _ : state) {
    hpwl.rebuild();
    benchmark::DoNotOptimize(hpwl.total());
  }
  state.SetLabel(nl.name());
}
BENCHMARK(BM_HpwlRebuild)->DenseRange(0, 3);

void BM_ExactSta(benchmark::State& state) {
  const auto& nl = circuit_for(static_cast<int>(state.range(0)));
  const placement::Layout layout(nl);
  Rng rng(6);
  const auto p = placement::Placement::random(nl, layout, rng);
  const placement::HpwlState hpwl(p);
  const timing::DelayModel model;
  for (auto _ : state) {
    benchmark::DoNotOptimize(timing::run_sta(nl, hpwl, model).critical_delay);
  }
  state.SetLabel(nl.name());
}
BENCHMARK(BM_ExactSta)->DenseRange(0, 3);

void BM_MessageRoundTrip(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint32_t> slots(n);
  for (std::size_t i = 0; i < n; ++i) slots[i] = static_cast<std::uint32_t>(i);
  for (auto _ : state) {
    pvm::Message msg = parallel::make_init(slots);
    benchmark::DoNotOptimize(parallel::decode_init(msg).size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * n * 4));
}
BENCHMARK(BM_MessageRoundTrip)->Arg(56)->Arg(395)->Arg(2243);

void BM_SimFullSearch(benchmark::State& state) {
  const auto& nl = circuit_for(static_cast<int>(state.range(0)));
  auto config = experiments::base_config(nl, 7, /*quick=*/true);
  config.num_tsws = 4;
  config.clws_per_tsw = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(experiments::run_sim(nl, config).best_cost);
  }
  state.SetLabel(nl.name() + " 4x2 quick");
}
BENCHMARK(BM_SimFullSearch)->DenseRange(0, 1);

}  // namespace

// Custom main so the shared --smoke convention works here too (see
// bench_common.hpp): --smoke clamps every benchmark's measuring time, which
// keeps `micro_core --smoke --benchmark_format=json` (the input to
// bench/dump_json.py and the CI perf-trail artifact) seconds-long. All other
// arguments pass through to google-benchmark untouched.
int main(int argc, char** argv) {
  std::vector<std::string> storage(argv, argv + argc);
  bool smoke = false;
  std::vector<char*> args;
  for (auto& arg : storage) {
    if (arg == "--smoke") {
      smoke = true;
      continue;
    }
    args.push_back(arg.data());
  }
  // Long enough that the tracked probe-throughput ratios are stable run to
  // run (the perf-trail JSON is diffed across pushes), short enough that
  // the whole tier stays seconds-long.
  std::string min_time = "--benchmark_min_time=0.2";
  if (smoke) args.push_back(min_time.data());
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
