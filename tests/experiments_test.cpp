// Tests for src/experiments: workload registry, config scaling, speedup
// measurement.
#include <gtest/gtest.h>

#include "experiments/speedup.hpp"
#include "experiments/workloads.hpp"

namespace pts::experiments {
namespace {

TEST(Workloads, CircuitCacheReturnsSameInstance) {
  const auto& a = circuit("highway");
  const auto& b = circuit("highway");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.num_movable(), 56u);
}

TEST(Workloads, AllPaperCircuitsAvailable) {
  const auto names = circuit_names();
  ASSERT_EQ(names.size(), 4u);
  for (const auto& name : names) {
    EXPECT_GT(circuit(name).num_movable(), 0u) << name;
  }
}

TEST(Workloads, BaseConfigScalesWithCircuitSize) {
  const auto small = base_config(circuit("highway"), 1, /*quick=*/false);
  const auto large = base_config(circuit("c3540"), 1, /*quick=*/false);
  EXPECT_LE(small.global_iterations, large.global_iterations);
  EXPECT_LE(small.local_iterations, large.local_iterations);
  EXPECT_EQ(small.num_tsws, 4u);
  EXPECT_EQ(small.clws_per_tsw, 1u);
  EXPECT_EQ(small.cluster.size(), 12u);
}

TEST(Workloads, QuickModeShrinksBudgets) {
  const auto quick = base_config(circuit("c532"), 1, true);
  const auto full = base_config(circuit("c532"), 1, false);
  EXPECT_LT(quick.global_iterations * quick.local_iterations,
            full.global_iterations * full.local_iterations);
}

TEST(Workloads, ImprovementThreshold) {
  solver::SolveResult r;
  r.initial_cost = 1.0;
  r.best_cost = 0.5;
  EXPECT_NEAR(improvement_threshold(r, 1.0), 0.5, 1e-12);
  EXPECT_NEAR(improvement_threshold(r, 0.5), 0.75, 1e-12);
}

TEST(Speedup, MeasuresClwScaling) {
  const auto& nl = circuit("highway");
  auto config = base_config(nl, 3, /*quick=*/true);
  const auto m = measure_speedup(nl, config, VaryWorkers::Clws, {1, 2, 4},
                                 /*improvement_fraction=*/0.7);
  // The baseline always reaches its own threshold.
  ASSERT_GE(m.speedup.size(), 1u);
  EXPECT_EQ(m.speedup.x[0], 1.0);
  EXPECT_NEAR(m.speedup.y[0], 1.0, 1e-9);
  EXPECT_EQ(m.time_to_threshold.size(), 3u);
  EXPECT_EQ(m.best_cost.size(), 3u);
  EXPECT_GT(m.threshold_cost, 0.0);
}

TEST(Speedup, MeasuresTswScaling) {
  const auto& nl = circuit("highway");
  auto config = base_config(nl, 5, /*quick=*/true);
  const auto m = measure_speedup(nl, config, VaryWorkers::Tsws, {1, 2, 4},
                                 /*improvement_fraction=*/0.7);
  EXPECT_EQ(m.time_to_threshold.size(), 3u);
  // Every measured point that reached the threshold has positive speedup.
  for (double s : m.speedup.y) EXPECT_GT(s, 0.0);
}

TEST(SpeedupDeath, RequiresBaselineCount) {
  const auto& nl = circuit("highway");
  auto config = base_config(nl, 1, true);
  EXPECT_DEATH(measure_speedup(nl, config, VaryWorkers::Clws, {2, 4}, 0.7),
               "baseline");
}

}  // namespace
}  // namespace pts::experiments
