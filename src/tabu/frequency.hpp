// Long-term (frequency-based) memory.
//
// The paper's introduction (§1) lists the classic long-term memory uses of
// tabu search: diversification "force new solutions to have different
// features from previously visited ones" and intensification "force the
// new solution to have some features that have been seen in recent good
// solutions". This module implements the standard transition-frequency
// realization (Glover & Laguna ch. 4):
//
//  - every accepted move increments the participating cells' counters;
//  - in Diversify mode, candidate moves touching over-active cells are
//    penalized in proportion to their normalized frequency;
//  - in Intensify mode, moves touching cells that participated in
//    improving moves are rewarded.
//
// The penalty is applied at selection time only (the true cost is never
// modified), which is how frequency memory composes with the fuzzy cost.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "tabu/move.hpp"

namespace pts::tabu {

enum class LongTermMode { Off, Diversify, Intensify };

struct FrequencyParams {
  LongTermMode mode = LongTermMode::Off;
  /// Penalty/reward magnitude relative to the cost scale (the fuzzy cost
  /// lives in ~[0, 1], so a few percent is a meaningful nudge).
  double strength = 0.02;
};

class FrequencyMemory {
 public:
  FrequencyMemory(std::size_t num_cells, FrequencyParams params);

  const FrequencyParams& params() const { return params_; }
  bool active() const { return params_.mode != LongTermMode::Off; }

  /// Records an accepted move; `improved` marks improving transitions
  /// (used by Intensify mode).
  void record(const Move& move, bool improved);

  /// Total accepted transitions recorded.
  std::uint64_t transitions() const { return transitions_; }

  std::uint64_t count(netlist::CellId cell) const {
    PTS_DCHECK(cell < counts_.size());
    return counts_[cell];
  }

  /// Selection-time adjustment for a candidate move that reached
  /// `candidate_cost`: Diversify adds a penalty for frequently moved
  /// cells, Intensify subtracts a reward for cells seen in improving
  /// moves. Returns the adjusted cost used for ranking only.
  double adjusted_cost(const Move& move, double candidate_cost) const;

  void reset();

  /// Complete long-term-memory state, for checkpoint/restore.
  struct State {
    std::vector<std::uint64_t> counts;
    std::vector<std::uint64_t> improving_counts;
    std::uint64_t transitions = 0;
    std::uint64_t max_count = 0;
    std::uint64_t max_improving = 0;
  };

  State state() const {
    return State{counts_, improving_counts_, transitions_, max_count_,
                 max_improving_};
  }

  void restore(const State& st) {
    PTS_CHECK(st.counts.size() == counts_.size());
    PTS_CHECK(st.improving_counts.size() == improving_counts_.size());
    counts_ = st.counts;
    improving_counts_ = st.improving_counts;
    transitions_ = st.transitions;
    max_count_ = st.max_count;
    max_improving_ = st.max_improving;
  }

 private:
  double normalized(const std::vector<std::uint64_t>& counts,
                    netlist::CellId cell) const;

  FrequencyParams params_;
  std::vector<std::uint64_t> counts_;           ///< all accepted moves
  std::vector<std::uint64_t> improving_counts_; ///< improving moves only
  std::uint64_t transitions_ = 0;
  std::uint64_t max_count_ = 0;
  std::uint64_t max_improving_ = 0;
};

}  // namespace pts::tabu
