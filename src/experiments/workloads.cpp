#include "experiments/workloads.hpp"

#include <cmath>
#include <map>
#include <mutex>

namespace pts::experiments {

const netlist::Netlist& circuit(std::string_view name) {
  // The cache is shared process state and the ptsd daemon calls this from
  // concurrent per-connection reader threads. std::map never invalidates
  // node references, so returned Netlist& stay valid across later inserts;
  // the lock only needs to cover lookup + emplace.
  static std::mutex mutex;
  static std::map<std::string, netlist::Netlist> cache;
  const std::string key(name);
  const std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, netlist::make_benchmark(name)).first;
  }
  return it->second;
}

std::vector<std::string> circuit_names() {
  std::vector<std::string> names;
  for (const auto& info : netlist::paper_benchmarks()) names.push_back(info.name);
  return names;
}

std::vector<std::string> scale_circuit_names() {
  std::vector<std::string> names;
  for (const auto& info : netlist::scale_benchmarks()) names.push_back(info.name);
  return names;
}

parallel::PtsConfig base_config(const netlist::Netlist& netlist,
                                std::uint64_t seed, bool quick) {
  parallel::PtsConfig config;
  config.seed = seed;
  config.num_tsws = 4;
  config.clws_per_tsw = 1;
  config.cluster = pvm::ClusterConfig::paper_cluster();
  config.set_policy(parallel::CollectionPolicy::HalfForce);

  config.tabu.tenure = 10;
  config.tabu.compound.width = 8;
  config.tabu.compound.depth = 3;
  // Batched candidate scoring (Evaluator::probe_batch); bit-identical to
  // scalar probing, so this is a throughput knob, not a search knob. Set
  // explicitly so experiment configs pin the batch width they ran with.
  config.tabu.compound.batch = 8;
  config.diversify.depth = 4;
  config.diversify.batch = 8;
  config.cost.num_paths = 24;

  // Iteration budgets grow with circuit size (the paper fixes them per
  // circuit but does not publish the values).
  const std::size_t n = netlist.num_movable();

  // Above the paper's largest circuit the paper constants starve the
  // search: 8 trials per level against 10k+ cells almost never finds an
  // improving swap, so tabu used to report tt50 = -1 (never reached half
  // its own improvement) on the scale tier. Tenure and candidate width
  // scale with ~sqrt(movable cells) instead; paper-sized circuits keep the
  // paper constants exactly, so every pinned paper-circuit trajectory is
  // untouched.
  const std::size_t paper_max = netlist::paper_benchmarks().back().cells;
  if (n > paper_max) {
    const double root = std::sqrt(static_cast<double>(n));
    config.tabu.tenure = static_cast<std::size_t>(root / 2.0);
    config.tabu.compound.width = static_cast<std::size_t>(root);
  }
  if (quick) {
    config.global_iterations = 4;
    config.local_iterations = n < 100 ? 4 : 6;
  } else {
    config.global_iterations = n < 100 ? 6 : (n < 1000 ? 8 : 10);
    config.local_iterations = n < 100 ? 8 : (n < 1000 ? 10 : 12);
  }
  return config;
}

solver::SolveSpec base_spec(const netlist::Netlist& netlist,
                            std::string_view engine, std::uint64_t seed,
                            bool quick) {
  solver::SolveSpec spec;
  spec.engine = std::string(engine);
  spec.netlist = &netlist;
  spec.parallel = base_config(netlist, seed, quick);
  spec.seed = spec.parallel.seed;
  spec.cost = spec.parallel.cost;
  spec.tabu = spec.parallel.tabu;
  return spec;
}

solver::SolveResult run_sim(const netlist::Netlist& netlist,
                            const parallel::PtsConfig& config) {
  solver::SolveSpec spec;
  spec.engine = "parallel-sim";
  spec.netlist = &netlist;
  spec.seed = config.seed;
  spec.cost = config.cost;
  spec.tabu = config.tabu;
  spec.parallel = config;
  return solver::Solver().solve(spec);
}

double improvement_threshold(const solver::SolveResult& baseline,
                             double fraction) {
  PTS_CHECK(fraction > 0.0 && fraction <= 1.0);
  return baseline.initial_cost -
         fraction * (baseline.initial_cost - baseline.best_cost);
}

}  // namespace pts::experiments
