// JSON (de)serialization of solve jobs and results, shared by the ptsd
// daemon and the pts_client CLI so both sides agree on one schema.
//
// A job crosses the wire as a JobRequest: a benchmark circuit *name* plus a
// SolveSpec with the non-serializable fields left empty (the daemon resolves
// the name against the benchmark registry and attaches its own CancelToken /
// Observer). Decoding is strict: unknown keys, wrong types, and out-of-range
// numbers are errors, never silently ignored — the daemon must not accept a
// spec it half-understood. Coverage: engine, circuit, seed, the serving
// deadline (deadline_seconds), and the cost /
// tabu (incl. compound) / anneal / local / parallel (incl. diversify) /
// shared / stop blocks. The parallel cluster, collection policies, and sim
// cost model keep their defaults (they shape the emulation experiments, not
// a served solve; extend the schema here if that changes).
//
// Doubles round-trip bit-exactly through service/json.hpp, so
// decode(encode(result)) == result field-for-field — the property behind
// the daemon-vs-direct bit-identity guarantee (tests/service_test.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "service/json.hpp"
#include "solver/solver.hpp"

namespace pts::service {

/// A solve job as submitted by a client. `spec.netlist` and
/// `spec.stop.cancel` / `spec.observer` stay null — the daemon fills them.
struct JobRequest {
  std::string circuit;
  solver::SolveSpec spec;
  /// Serving-layer wall-clock deadline in seconds (queue wait + solve).
  /// <= 0: use the daemon's default. An overdue session is cancelled and
  /// finishes with stop_reason == DeadlineExpired.
  double deadline_seconds = 0.0;
};

json::Value spec_to_json(const JobRequest& job);
std::optional<JobRequest> spec_from_json(const json::Value& value,
                                         std::string* error);

json::Value result_to_json(const solver::SolveResult& result);
std::optional<solver::SolveResult> result_from_json(const json::Value& value,
                                                    std::string* error);

/// True when the job's result is a pure function of the spec — no
/// wall-clock stop condition and a deterministic engine — and therefore
/// eligible for the daemon's result cache (ECO mode).
bool spec_cacheable(const JobRequest& job);

/// Canonical cache key for a cacheable job: the circuit's content hash
/// (netlist::content_hash — the name alone would go stale if the registry
/// entry changed) joined with the canonicalized spec JSON, deadline zeroed
/// (a deadline changes when a job fails, not what it computes).
std::string cache_key(const JobRequest& job, std::uint64_t circuit_hash);

// String conveniences (parse + decode / encode + dump in one call).
std::string encode_spec(const JobRequest& job);
std::optional<JobRequest> decode_spec(std::string_view text, std::string* error);
std::string encode_result(const solver::SolveResult& result);
std::optional<solver::SolveResult> decode_result(std::string_view text,
                                                 std::string* error);

}  // namespace pts::service
