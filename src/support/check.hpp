// Lightweight runtime contract checks used across the library.
//
// PTS_CHECK is always on (it guards algorithmic invariants whose violation
// would silently corrupt a search run); PTS_DCHECK compiles out in release
// builds and is reserved for hot-loop assertions.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace pts {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "PTS_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

}  // namespace pts

#define PTS_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) ::pts::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define PTS_CHECK_MSG(expr, msg)                                        \
  do {                                                                  \
    if (!(expr)) ::pts::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#ifdef NDEBUG
#define PTS_DCHECK(expr) \
  do {                   \
  } while (false)
#else
#define PTS_DCHECK(expr) PTS_CHECK(expr)
#endif
