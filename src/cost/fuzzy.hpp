// Fuzzy goal-based multi-objective cost (Sait/Youssef fuzzy goal-directed
// search, reference [5] of the paper).
//
// Each objective c_i (wirelength, delay, area) has a goal g_i and a
// tolerance t_i. Its membership in the fuzzy set "good solution" is
// piecewise linear:
//
//     mu_i = 1                         for c_i <= g_i
//     mu_i = 1 - (c_i - g_i)/(t_i g_i) for g_i < c_i < g_i (1 + t_i)
//     mu_i = 0                         beyond
//
// Memberships are combined with an ordered-weighted-average (OWA) operator
// blending the strict intersection (min) with the arithmetic mean:
//
//     mu = beta * min_i mu_i + (1 - beta) * mean_i mu_i
//
// The scalar cost the search minimizes is 1 - mu. For ranking, the
// *unclamped* linear extension of mu_i (which goes negative past the
// tolerance edge) is used so the search keeps a gradient even when an
// objective is far outside its tolerance band; reported "quality" always
// uses the clamped value in [0, 1].
#pragma once

#include <array>
#include <cstddef>
#include <span>

#include "support/check.hpp"

namespace pts::cost {

/// The paper's three placement objectives.
enum class Objective : std::size_t { Wirelength = 0, Delay = 1, Area = 2 };
inline constexpr std::size_t kNumObjectives = 3;

struct Objectives {
  double wirelength = 0.0;
  double delay = 0.0;
  double area = 0.0;

  double get(Objective o) const {
    switch (o) {
      case Objective::Wirelength: return wirelength;
      case Objective::Delay: return delay;
      case Objective::Area: return area;
    }
    PTS_CHECK(false);
  }
  std::array<double, kNumObjectives> as_array() const {
    return {wirelength, delay, area};
  }
};

/// One objective's membership function.
struct MembershipFn {
  double goal = 1.0;
  double tolerance = 1.0;  ///< fractional band width; mu hits 0 at goal*(1+tol)

  /// Unclamped linear extension (may exceed [0, 1]).
  double raw(double value) const {
    PTS_DCHECK(goal > 0.0 && tolerance > 0.0);
    return 1.0 - (value - goal) / (tolerance * goal);
  }
  /// Clamped membership in [0, 1].
  double clamped(double value) const {
    const double m = raw(value);
    return m < 0.0 ? 0.0 : (m > 1.0 ? 1.0 : m);
  }
};

struct FuzzyGoals {
  std::array<MembershipFn, kNumObjectives> membership;
  /// OWA blend: 1.0 = pure min (strict intersection), 0.0 = pure mean.
  double beta = 0.6;

  const MembershipFn& fn(Objective o) const {
    return membership[static_cast<std::size_t>(o)];
  }
  MembershipFn& fn(Objective o) {
    return membership[static_cast<std::size_t>(o)];
  }

  /// Scalar cost (minimized by the search): 1 - OWA of raw memberships.
  double cost(const Objectives& objectives) const;

  /// Batched cost(): one OWA pass over N objective tuples. costs[i] is
  /// bit-identical to cost(objectives[i]) — same membership arithmetic,
  /// same min/mean fold — the batch form just keeps the goal/tolerance
  /// constants live in registers across the whole batch.
  void cost_batch(std::span<const Objectives> objectives,
                  std::span<double> costs) const;

  /// Reported quality in [0, 1]: OWA of clamped memberships.
  double quality(const Objectives& objectives) const;

  /// Calibrates goals from the initial solution: goal_i =
  /// `target_improvement` * initial_i, tolerance sized so the initial
  /// solution sits at raw membership `initial_membership` (keeps initial
  /// cost finite and comparable across circuits).
  static FuzzyGoals calibrate(const Objectives& initial, double target_improvement,
                              double initial_membership, double beta);
};

}  // namespace pts::cost
