// The built-in engines behind pts::solver::Solver. Each adapter owns
// the full recipe for its engine — setup, seeding, run control, and the
// mapping of the native result type into SolveResult — so a Solver run is
// bit-identical to the equivalent direct engine invocation (pinned by
// tests/solver_test.cpp).
#include <utility>

#include "baselines/annealing.hpp"
#include "baselines/constructive.hpp"
#include "baselines/local_search.hpp"
#include "parallel/shared_engine.hpp"
#include "parallel/sim_engine.hpp"
#include "parallel/threaded_engine.hpp"
#include "solver/solver.hpp"
#include "support/stopwatch.hpp"
#include "tabu/search.hpp"
#include "timing/paths.hpp"

namespace pts::solver {

namespace detail {

// The layout is heap-allocated because the placement inside the evaluator
// points at it. When warm-starting, the random placement is still built and
// the goals are still calibrated against it — identical RNG consumption and
// identical cost scale to the cold run — and the warm slots are assigned
// only afterwards, which is what keeps the cold path bit-identical and the
// warm/cold costs comparable.
SequentialSetup make_sequential_setup(const SolveSpec& spec) {
  const netlist::Netlist& nl = *spec.netlist;
  SequentialSetup setup;
  setup.layout = std::make_unique<placement::Layout>(nl);
  Rng init_rng(spec.seed ^ kInitStreamSalt);
  auto initial = baselines::random_placement(nl, *setup.layout, init_rng);
  auto paths = timing::extract_critical_paths(nl, spec.cost.num_paths,
                                              spec.cost.delay_model);
  const auto goals =
      cost::Evaluator::calibrate_goals(initial, *paths, spec.cost);
  setup.eval = std::make_unique<cost::Evaluator>(std::move(initial),
                                                 std::move(paths), spec.cost,
                                                 goals);
  if (!spec.initial_slots.empty()) {
    setup.eval->reset_placement(spec.initial_slots);
  }
  return setup;
}

}  // namespace detail

namespace {

using detail::SequentialSetup;
using detail::make_sequential_setup;

/// Snapshot of the evaluator's current solution into the best_* fields.
void fill_best_from(SolveResult& out, const cost::Evaluator& eval) {
  out.best_cost = eval.cost();
  out.best_quality = eval.quality();
  out.best_objectives = eval.objectives();
  out.best_slots = eval.placement().slots();
}

/// The parallel engines run spec.parallel with the shared seed/cost/tabu
/// blocks overridden — those three are authoritative across every engine.
parallel::PtsConfig effective_parallel_config(const SolveSpec& spec) {
  parallel::PtsConfig config = spec.parallel;
  config.seed = spec.seed;
  config.cost = spec.cost;
  config.tabu = spec.tabu;
  return config;
}

void map_pts_result(SolveResult& out, parallel::PtsResult&& r) {
  out.initial_cost = r.initial_cost;
  out.best_cost = r.best_cost;
  out.best_quality = r.best_quality;
  out.best_objectives = r.best_objectives;
  out.best_slots = std::move(r.best_slots);
  out.best_vs_time = std::move(r.best_vs_time);
  out.best_vs_global = std::move(r.best_vs_global);
  out.stats = r.stats;
  out.iterations = r.stats.iterations;
  out.makespan = r.makespan;
  out.stop_reason = r.stop_reason;
}

void validate_tabu_params(const tabu::TabuParams& params,
                          std::vector<std::string>& errors) {
  if (params.compound.width < 1) {
    errors.push_back("tabu.compound.width must be >= 1");
  }
  if (params.compound.depth < 1) {
    errors.push_back("tabu.compound.depth must be >= 1");
  }
}

void validate_parallel(const SolveSpec& spec, std::vector<std::string>& errors);

// ---------------------------------------------------------------------------

class TabuEngine final : public Engine {
 public:
  std::string_view name() const override { return "tabu"; }
  std::string_view description() const override {
    return "sequential tabu search (paper Fig. 1)";
  }

  void validate(const SolveSpec& spec,
                std::vector<std::string>& errors) const override {
    validate_tabu_params(spec.tabu, errors);
    if (spec.tabu.iterations < 1) {
      errors.push_back("tabu.iterations must be >= 1");
    }
  }

  SolveResult solve(const SolveSpec& spec) const override {
    auto setup = make_sequential_setup(spec);
    SolveResult out;
    out.initial_cost = setup.eval->cost();
    tabu::TabuSearch search(*setup.eval, spec.tabu,
                            Rng(spec.seed ^ kSearchStreamSalt));
    const Stopwatch watch;
    auto r = search.run(RunControl{spec.stop, spec.observer});
    out.makespan = watch.seconds();
    out.best_cost = r.best_cost;
    out.best_quality = r.best_quality;
    out.best_objectives = r.best_objectives;
    out.best_slots = std::move(r.best_slots);
    out.cost_trace = std::move(r.cost_trace);
    out.best_trace = std::move(r.best_trace);
    out.best_vs_time = std::move(r.best_vs_time);
    out.stats = r.stats;
    out.iterations = r.stats.iterations;
    out.stop_reason = r.stop_reason;
    return out;
  }
};

class AnnealEngine final : public Engine {
 public:
  std::string_view name() const override { return "anneal"; }
  std::string_view description() const override {
    return "simulated-annealing baseline (memoryless comparator)";
  }

  void validate(const SolveSpec& spec,
                std::vector<std::string>& errors) const override {
    const auto& p = spec.anneal;
    if (!(p.initial_acceptance > 0.0 && p.initial_acceptance < 1.0)) {
      errors.push_back("anneal.initial_acceptance must be in (0, 1)");
    }
    if (!(p.cooling > 0.0 && p.cooling < 1.0)) {
      errors.push_back("anneal.cooling must be in (0, 1)");
    }
    if (!(p.final_temp_ratio > 0.0 && p.final_temp_ratio < 1.0)) {
      errors.push_back("anneal.final_temp_ratio must be in (0, 1)");
    }
  }

  SolveResult solve(const SolveSpec& spec) const override {
    auto setup = make_sequential_setup(spec);
    SolveResult out;
    out.initial_cost = setup.eval->cost();
    Rng rng(spec.seed ^ kSearchStreamSalt);
    const Stopwatch watch;
    auto r = baselines::anneal(*setup.eval, spec.anneal, rng,
                               RunControl{spec.stop, spec.observer});
    out.makespan = watch.seconds();
    out.best_cost = r.best_cost;
    out.best_quality = r.best_quality;
    out.best_slots = std::move(r.best_slots);
    out.best_trace = std::move(r.best_trace);
    out.best_vs_time = std::move(r.best_vs_time);
    out.iterations = r.moves_tried;
    out.stats.iterations = r.moves_tried;
    out.stats.accepted = r.moves_accepted;
    out.stop_reason = r.stop_reason;
    // The annealer does not track objectives incrementally; measure the
    // best solution once.
    setup.eval->reset_placement(out.best_slots);
    out.best_objectives = setup.eval->objectives();
    return out;
  }
};

class LocalSearchEngine final : public Engine {
 public:
  std::string_view name() const override { return "local"; }
  std::string_view description() const override {
    return "steepest-descent local search baseline";
  }

  void validate(const SolveSpec& spec,
                std::vector<std::string>& errors) const override {
    const auto& p = spec.local;
    if (p.candidates_per_iteration < 1) {
      errors.push_back("local.candidates_per_iteration must be >= 1");
    }
    if (p.patience < 1) errors.push_back("local.patience must be >= 1");
    if (p.max_iterations < 1) {
      errors.push_back("local.max_iterations must be >= 1");
    }
  }

  SolveResult solve(const SolveSpec& spec) const override {
    auto setup = make_sequential_setup(spec);
    SolveResult out;
    out.initial_cost = setup.eval->cost();
    Rng rng(spec.seed ^ kSearchStreamSalt);
    const Stopwatch watch;
    auto r = baselines::local_search(*setup.eval, spec.local, rng,
                                     RunControl{spec.stop, spec.observer});
    out.makespan = watch.seconds();
    out.best_cost = r.best_cost;
    out.best_quality = r.best_quality;
    out.best_slots = std::move(r.best_slots);
    out.best_trace = std::move(r.best_trace);
    out.iterations = r.iterations;
    out.stats.iterations = r.iterations;
    out.converged = r.converged;
    out.stop_reason = r.stop_reason;
    setup.eval->reset_placement(out.best_slots);
    out.best_objectives = setup.eval->objectives();
    return out;
  }
};

class ConstructiveEngine final : public Engine {
 public:
  std::string_view name() const override { return "constructive"; }
  std::string_view description() const override {
    return "connectivity-driven greedy construction (no iterative search)";
  }

  void validate(const SolveSpec& spec,
                std::vector<std::string>& errors) const override {
    if (!spec.initial_slots.empty()) {
      errors.push_back(
          "engine 'constructive' does not support warm start "
          "(initial_slots); greedy construction replaces any seed");
    }
  }

  SolveResult solve(const SolveSpec& spec) const override {
    // Goals are calibrated against the same-seed *random* placement (the
    // paper's initial solution), so initial_cost -> best_cost directly
    // measures what greedy construction buys over random under identical
    // goals.
    auto setup = make_sequential_setup(spec);
    SolveResult out;
    out.initial_cost = setup.eval->cost();
    const Stopwatch watch;
    Rng rng(spec.seed ^ kSearchStreamSalt);
    const auto greedy = baselines::greedy_placement(
        *spec.netlist, setup.eval->placement().layout(), rng);
    setup.eval->reset_placement(greedy.slots());
    out.makespan = watch.seconds();
    fill_best_from(out, *setup.eval);
    // No iterations and no stop checks: construction is one shot.
    return out;
  }
};

class ParallelSimEngine final : public Engine {
 public:
  std::string_view name() const override { return "parallel-sim"; }
  std::string_view description() const override {
    return "TSW/CLW parallel tabu search, deterministic virtual time";
  }

  void validate(const SolveSpec& spec,
                std::vector<std::string>& errors) const override {
    validate_parallel(spec, errors);
  }

  SolveResult solve(const SolveSpec& spec) const override {
    parallel::SimEngine engine(*spec.netlist, effective_parallel_config(spec));
    SolveResult out;
    map_pts_result(out, engine.run(RunControl{spec.stop, spec.observer}));
    return out;
  }
};

class ParallelThreadedEngine final : public Engine {
 public:
  std::string_view name() const override { return "parallel-threaded"; }
  std::string_view description() const override {
    return "TSW/CLW parallel tabu search on the PVM-like threaded runtime";
  }

  void validate(const SolveSpec& spec,
                std::vector<std::string>& errors) const override {
    validate_parallel(spec, errors);
    if (spec.parallel.threaded_seconds_per_unit < 0.0) {
      errors.push_back("parallel.threaded_seconds_per_unit must be >= 0");
    }
  }

  SolveResult solve(const SolveSpec& spec) const override {
    parallel::ThreadedEngine engine(*spec.netlist,
                                    effective_parallel_config(spec));
    SolveResult out;
    map_pts_result(out, engine.run(RunControl{spec.stop, spec.observer}));
    return out;
  }
};

class ParallelSharedEngine final : public Engine {
 public:
  std::string_view name() const override { return "parallel-shared"; }
  std::string_view description() const override {
    return "shared-memory parallel tabu search over the CSR topology";
  }

  void validate(const SolveSpec& spec,
                std::vector<std::string>& errors) const override {
    validate_tabu_params(spec.tabu, errors);
    if (spec.tabu.iterations < 1) {
      errors.push_back("tabu.iterations must be >= 1");
    }
    if (spec.shared.threads < 1) {
      errors.push_back("shared.threads must be >= 1");
    }
    if (!spec.initial_slots.empty()) {
      errors.push_back(
          "engine 'parallel-shared' does not support warm start "
          "(initial_slots)");
    }
  }

  SolveResult solve(const SolveSpec& spec) const override {
    parallel::SharedConfig config;
    config.params = spec.shared;
    config.tabu = spec.tabu;
    config.cost = spec.cost;
    // The sequential seed salts: a 1-thread run is bit-identical to the
    // "tabu" engine with the same spec.seed (pinned by shared_engine_test).
    config.init_seed = spec.seed ^ kInitStreamSalt;
    config.search_seed = spec.seed ^ kSearchStreamSalt;
    parallel::SharedEngine engine(*spec.netlist, config);
    auto r = engine.run(RunControl{spec.stop, spec.observer});
    SolveResult out;
    out.initial_cost = r.initial_cost;
    out.best_cost = r.search.best_cost;
    out.best_quality = r.search.best_quality;
    out.best_objectives = r.search.best_objectives;
    out.best_slots = std::move(r.search.best_slots);
    out.cost_trace = std::move(r.search.cost_trace);
    out.best_trace = std::move(r.search.best_trace);
    out.best_vs_time = std::move(r.search.best_vs_time);
    out.stats = r.search.stats;
    out.iterations = r.search.stats.iterations;
    out.makespan = r.makespan;
    out.stop_reason = r.search.stop_reason;
    return out;
  }
};

void validate_parallel(const SolveSpec& spec,
                       std::vector<std::string>& errors) {
  const auto& p = spec.parallel;
  validate_tabu_params(spec.tabu, errors);
  if (!spec.initial_slots.empty()) {
    errors.push_back("engine '" + spec.engine +
                     "' does not support warm start (initial_slots)");
  }
  if (p.num_tsws < 1) errors.push_back("parallel.num_tsws must be >= 1");
  if (p.clws_per_tsw < 1) {
    errors.push_back("parallel.clws_per_tsw must be >= 1");
  }
  if (p.local_iterations < 1) {
    errors.push_back("parallel.local_iterations must be >= 1");
  }
  if (p.global_iterations < 1) {
    errors.push_back("parallel.global_iterations must be >= 1");
  }
  if (p.cluster.size() < 1) {
    errors.push_back("parallel.cluster must have at least one machine");
  }
  for (const auto& [label, policy] :
       {std::pair{"master_policy", p.master_policy},
        std::pair{"tsw_policy", p.tsw_policy}}) {
    if (policy.policy == parallel::CollectionPolicy::HalfForce &&
        !(policy.threshold > 0.0 && policy.threshold <= 1.0)) {
      errors.push_back(std::string("parallel.") + label +
                       ".threshold must be in (0, 1]");
    }
  }
  if (!(p.sim.trial_work > 0.0)) {
    errors.push_back("parallel.sim.trial_work must be > 0");
  }
}

}  // namespace

namespace detail {

std::vector<std::unique_ptr<Engine>> make_builtin_engines() {
  std::vector<std::unique_ptr<Engine>> engines;
  engines.push_back(std::make_unique<TabuEngine>());
  engines.push_back(std::make_unique<AnnealEngine>());
  engines.push_back(std::make_unique<LocalSearchEngine>());
  engines.push_back(std::make_unique<ConstructiveEngine>());
  engines.push_back(std::make_unique<ParallelSimEngine>());
  engines.push_back(std::make_unique<ParallelThreadedEngine>());
  engines.push_back(std::make_unique<ParallelSharedEngine>());
  return engines;
}

}  // namespace detail
}  // namespace pts::solver
