#include "cost/evaluator.hpp"

namespace pts::cost {

using netlist::CellId;

Evaluator::Evaluator(placement::Placement placement,
                     std::shared_ptr<const timing::PathSet> paths,
                     const CostParams& params, const FuzzyGoals& goals)
    : placement_(std::move(placement)),
      paths_(std::move(paths)),
      params_(params),
      goals_(goals),
      hpwl_(placement_),
      timer_(paths_, hpwl_, params.delay_model),
      marker_(placement_.netlist().num_nets()) {
  PTS_CHECK(params_.rebuild_interval >= 1);
}

Objectives Evaluator::objectives() const {
  Objectives o;
  o.wirelength = hpwl_.total();
  o.delay = timer_.max_delay();
  o.area = placement_.max_row_extent() * placement_.layout().core_height();
  return o;
}

double Evaluator::apply_swap(CellId a, CellId b) {
  moved_scratch_.clear();
  placement_.swap_cells(a, b, &moved_scratch_);

  marker_.begin();
  const auto& netlist = placement_.netlist();
  for (CellId cell : moved_scratch_) marker_.add_nets_of(netlist, cell);

  change_scratch_.clear();
  hpwl_.update_nets(marker_.nets(), &change_scratch_);
  for (const auto& change : change_scratch_) {
    timer_.apply_net_change(change.net, change.old_hpwl, change.new_hpwl);
  }

  ++swaps_applied_;
  if (++swaps_since_rebuild_ >= params_.rebuild_interval) rebuild_all();
  return cost();
}

void Evaluator::reset_placement(const std::vector<CellId>& cell_at_slot) {
  placement_.assign_slots(cell_at_slot);
  rebuild_all();
}

void Evaluator::rebuild_all() {
  hpwl_.rebuild();
  timer_.rebuild(hpwl_);
  swaps_since_rebuild_ = 0;
}

FuzzyGoals Evaluator::calibrate_goals(const placement::Placement& initial,
                                      const timing::PathSet& paths,
                                      const CostParams& params) {
  placement::HpwlState hpwl(initial);
  timing::PathTimer timer(
      std::shared_ptr<const timing::PathSet>(&paths, [](const timing::PathSet*) {}),
      hpwl, params.delay_model);
  Objectives o;
  o.wirelength = hpwl.total();
  o.delay = timer.max_delay();
  o.area = initial.max_row_extent() * initial.layout().core_height();
  return FuzzyGoals::calibrate(o, params.target_improvement,
                               params.initial_membership, params.beta);
}

}  // namespace pts::cost
