#include "tabu/diversify.hpp"

namespace pts::tabu {

void diversify(cost::Evaluator& eval, const CellRange& range,
               const DiversifyParams& params, Rng& rng,
               std::vector<Move>* applied) {
  PTS_DCHECK(applied != nullptr);
  applied->clear();
  if (!params.enabled || range.empty()) return;
  PTS_CHECK(params.width >= 1);
  applied->reserve(params.depth);
  const std::span<const netlist::CellId> movable =
      eval.placement().netlist().movable_cells();
  for (std::size_t level = 0; level < params.depth; ++level) {
    Move best{};
    double best_cost = 0.0;
    bool have = false;
    for (std::size_t trial = 0; trial < params.width; ++trial) {
      const Move move = sample_move(movable, range, rng);
      const double cost_after = eval.probe_swap(move.a, move.b);
      if (!have || cost_after < best_cost) {
        best = move;
        best_cost = cost_after;
        have = true;
      }
    }
    PTS_CHECK(have);
    eval.commit_swap(best.a, best.b);
    applied->push_back(best);
  }
}

std::vector<Move> diversify(cost::Evaluator& eval, const CellRange& range,
                            const DiversifyParams& params, Rng& rng) {
  std::vector<Move> applied;
  diversify(eval, range, params, rng, &applied);
  return applied;
}

}  // namespace pts::tabu
