#include "timing/slack.hpp"

#include <algorithm>
#include <cmath>

namespace pts::timing {

using netlist::CellId;
using netlist::CellKind;
using netlist::kNoNet;
using netlist::NetId;

SlackResult analyze_slack(const netlist::Netlist& netlist,
                          const placement::HpwlState& hpwl, const DelayModel& model,
                          double clock_target) {
  SlackResult result;
  const StaResult sta = run_sta(netlist, hpwl, model);
  result.arrival = sta.arrival;
  result.critical_delay = sta.critical_delay;
  result.target = clock_target > 0.0 ? clock_target : sta.critical_delay;

  // Backward pass in reverse topological order:
  //   required(PO)  = target
  //   required(c)   = min over fanout sinks s of
  //                   required(s) - cell_delay(s) - wire_delay(out_net(c))
  const auto& topo = netlist.topological_order();
  result.required.assign(netlist.num_cells(),
                         std::numeric_limits<double>::infinity());
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const CellId cell = *it;
    const auto& c = netlist.cell(cell);
    if (c.kind == CellKind::PrimaryOutput) {
      result.required[cell] = result.target;
      continue;
    }
    if (c.out_net == kNoNet) continue;
    const double wire = model.wire_delay(hpwl.net_hpwl(c.out_net));
    double req = std::numeric_limits<double>::infinity();
    for (CellId sink : netlist.net(c.out_net).sinks) {
      req = std::min(req, result.required[sink] -
                              model.cell_delay(netlist, sink) - wire);
    }
    result.required[cell] = req;
  }

  result.slack.resize(netlist.num_cells());
  double worst = std::numeric_limits<double>::infinity();
  for (CellId cell = 0; cell < netlist.num_cells(); ++cell) {
    result.slack[cell] = result.required[cell] - result.arrival[cell];
    if (netlist.cell(cell).kind == CellKind::PrimaryOutput) {
      worst = std::min(worst, result.slack[cell]);
    }
  }
  result.worst_slack = worst;

  // Net criticality: 1 - slack/target of the net's driver-side edge,
  // clamped to [0, 1]. The slack of a net is the minimum over its sinks of
  // (required(sink) - cell_delay(sink)) - (arrival(driver) + wire).
  result.net_criticality.assign(netlist.num_nets(), 0.0);
  const double span = result.target > 0.0 ? result.target : 1.0;
  for (NetId net = 0; net < netlist.num_nets(); ++net) {
    const auto& n = netlist.net(net);
    const double wire = model.wire_delay(hpwl.net_hpwl(net));
    double net_slack = std::numeric_limits<double>::infinity();
    for (CellId sink : n.sinks) {
      const double required_at_sink =
          result.required[sink] - model.cell_delay(netlist, sink);
      net_slack = std::min(net_slack,
                           required_at_sink - (result.arrival[n.driver] + wire));
    }
    const double criticality = 1.0 - net_slack / span;
    result.net_criticality[net] = std::clamp(criticality, 0.0, 1.0);
  }
  return result;
}

std::vector<double> criticality_weights(const SlackResult& slack, double strength,
                                        double gamma) {
  std::vector<double> weights(slack.net_criticality.size());
  for (std::size_t net = 0; net < weights.size(); ++net) {
    weights[net] =
        1.0 + strength * std::pow(slack.net_criticality[net], gamma);
  }
  return weights;
}

}  // namespace pts::timing
