#!/usr/bin/env python3
"""Emit a compact perf-trail JSON from the micro_core smoke benches.

Runs `micro_core --smoke --benchmark_format=json`, extracts the probe
throughput benches (BM_ProbeCsr / BM_ProbeVecOfVec / BM_ProbeSwap /
BM_ApplySwap) keyed by circuit, and writes a small JSON file with ns/op per
bench plus the CSR-vs-vector-of-vectors speedup per circuit. CI runs this on
every push and uploads the result as an artifact (BENCH_baseline.json), so
future PRs have a trajectory of probe-throughput numbers to compare against;
the checked-in bench/BENCH_baseline.json is the snapshot taken when the CSR
topology landed.

Usage:
    bench/dump_json.py <path-to-micro_core> [-o BENCH_baseline.json]
"""

import argparse
import json
import subprocess
import sys

TRACKED_PREFIXES = ("BM_ProbeCsr", "BM_ProbeVecOfVec", "BM_ProbeSwap",
                    "BM_ApplySwap")


def run_benches(binary):
    cmd = [
        binary,
        "--smoke",
        "--benchmark_format=json",
        "--benchmark_filter=" + "|".join(TRACKED_PREFIXES),
    ]
    out = subprocess.run(cmd, check=True, capture_output=True, text=True)
    return json.loads(out.stdout)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("binary", help="path to the micro_core binary")
    parser.add_argument("-o", "--output", default="BENCH_baseline.json")
    args = parser.parse_args()

    raw = run_benches(args.binary)
    benches = {}
    for entry in raw.get("benchmarks", []):
        name = entry["name"]  # e.g. BM_ProbeCsr/3
        bench = name.split("/")[0]
        if bench not in TRACKED_PREFIXES:
            continue
        label = entry.get("label") or name
        circuit = label.split()[0]
        benches.setdefault(bench, {})[circuit] = round(entry["real_time"], 2)

    speedup = {}
    csr = benches.get("BM_ProbeCsr", {})
    vov = benches.get("BM_ProbeVecOfVec", {})
    for circuit in sorted(set(csr) & set(vov)):
        if csr[circuit] > 0:
            speedup[circuit] = round(vov[circuit] / csr[circuit], 3)

    result = {
        "source": "micro_core --smoke (google-benchmark)",
        "unit": "ns/op (real time)",
        "context": raw.get("context", {}),
        "benchmarks": benches,
        "probe_speedup_csr_vs_vecofvec": speedup,
    }
    with open(args.output, "w") as f:
        json.dump(result, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.output}: probe speedup per circuit {speedup}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
