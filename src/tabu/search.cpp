#include "tabu/search.hpp"

#include "support/stopwatch.hpp"

namespace pts::tabu {

bool compound_is_tabu(const TabuList& list, const CompoundMove& move) {
  for (const Move& swap : move.swaps) {
    if (list.is_tabu(swap)) return true;
  }
  return false;
}

void record_compound(TabuList& list, const CompoundMove& move) {
  for (const Move& swap : move.swaps) list.record(swap);
}

TabuSearch::TabuSearch(cost::Evaluator& eval, const TabuParams& params, Rng rng)
    : eval_(&eval),
      params_(params),
      rng_(rng),
      list_(params.tenure, params.attribute),
      frequency_(eval.placement().netlist().num_cells(), params.frequency),
      best_cost_(eval.cost()),
      best_quality_(eval.quality()),
      best_objectives_(eval.objectives()),
      best_slots_(eval.placement().slots()) {}

void TabuSearch::update_best() {
  const double cost = eval_->cost();
  if (cost < best_cost_) {
    best_cost_ = cost;
    best_quality_ = eval_->quality();
    best_objectives_ = eval_->objectives();
    best_slots_ = eval_->placement().slots();
  }
}

void TabuSearch::note_external_solution() { update_best(); }

TabuSearch::State TabuSearch::state() const {
  State st;
  st.rng = rng_.state();
  st.tabu_entries = list_.entries();
  st.frequency = frequency_.state();
  st.best_cost = best_cost_;
  st.best_quality = best_quality_;
  st.best_objectives = best_objectives_;
  st.best_slots = best_slots_;
  st.stats = stats_;
  return st;
}

void TabuSearch::restore(const State& st) {
  rng_.set_state(st.rng);
  list_.assign(st.tabu_entries);
  frequency_.restore(st.frequency);
  best_cost_ = st.best_cost;
  best_quality_ = st.best_quality;
  best_objectives_ = st.best_objectives;
  best_slots_ = st.best_slots;
  stats_ = st.stats;
}

bool TabuSearch::iterate(const CellRange& range) {
  ++stats_.iterations;
  const double cost_before = eval_->cost();
  // `move_scratch_` is reused across iterations so the steady-state loop
  // does not allocate (stress_test pins this at 50k gates).
  strategy().build(*eval_, range, params_.compound, rng_, &frequency_,
                   &move_scratch_);
  const CompoundMove& move = move_scratch_;
  // Each built level probed `width` trials (early accept skips the rest).
  stats_.trials += params_.compound.width * move.swaps.size();
  if (move.improved_early) ++stats_.early_accepts;

  if (compound_is_tabu(list_, move)) {
    const bool aspirated = params_.aspiration && move.cost < best_cost_;
    if (!aspirated) {
      strategy().undo(*eval_, move);
      ++stats_.rejected_tabu;
      return false;
    }
    ++stats_.aspirated;
  }
  record_compound(list_, move);
  const bool improved = move.cost < cost_before;
  for (const Move& swap : move.swaps) frequency_.record(swap, improved);
  ++stats_.accepted;
  update_best();
  return true;
}

SearchResult TabuSearch::run() { return run(RunControl{}); }

SearchResult TabuSearch::run(const RunControl& control) {
  const CellRange range = full_range(eval_->placement().netlist());
  SearchResult result;
  result.cost_trace.name = "cost";
  result.best_trace.name = "best";
  result.best_vs_time.name = "best_vs_time";
  const Stopwatch watch;
  // A fresh search starts its time-to-quality trail at (0, initial best); a
  // restored search already recorded that point before its checkpoint, so
  // re-adding it would fork the trace from the uninterrupted run.
  if (stats_.iterations == 0) result.best_vs_time.add(0.0, best_cost_);
  // Resume support: a restored search has stats_.iterations completed
  // iterations behind it and picks up exactly where the interrupted run
  // stopped (fresh searches start at 0, identical to before).
  for (std::size_t iter = stats_.iterations; iter < params_.iterations; ++iter) {
    if (const auto reason =
            control.should_stop(iter, control.needs_clock() ? watch.seconds() : 0.0,
                                best_cost_, best_quality_)) {
      result.stop_reason = *reason;
      break;
    }
    const double prev_best = best_cost_;
    iterate(range);
    // Time-to-quality trail (tt50 in macro_scale): one point per adopted
    // best. Reading the wall clock here is observation only — it cannot
    // perturb the search (DESIGN.md §5's read-only rule).
    if (best_cost_ < prev_best) {
      result.best_vs_time.add(watch.seconds(), best_cost_);
    }
    if (params_.trace_stride != 0 && iter % params_.trace_stride == 0) {
      result.cost_trace.add(static_cast<double>(iter), eval_->cost());
      result.best_trace.add(static_cast<double>(iter), best_cost_);
    }
    if (control.observer != nullptr) {
      const Progress progress{iter + 1, watch.seconds(), eval_->cost(),
                              best_cost_};
      if (best_cost_ < prev_best) control.notify_improvement(progress);
      control.notify_iteration(progress);
    }
  }
  result.best_cost = best_cost_;
  result.best_quality = best_quality_;
  result.best_objectives = best_objectives_;
  result.best_slots = best_slots_;
  result.stats = stats_;
  return result;
}

}  // namespace pts::tabu
