// Shared-memory parallel tabu search (the "parallel-shared" backend).
//
// The paper's decomposition is reproduced faithfully over a PVM-style
// message protocol (SimEngine / ThreadedEngine); on one machine that
// protocol is pure overhead. This engine instead runs the *sequential*
// tabu search (TabuSearch, Figure 1) and parallelizes the one hot spot
// every iteration has: the width-many candidate probes of each compound
// level. Worker threads share the read-only CSR Topology and each own a
// private Evaluator replica; trials are distributed with the atomic-counter
// parallel-for in support/parallel_for.hpp (chunked grabs for cache
// locality) instead of mailbox messages. See DESIGN.md §8.
//
// Determinism contract — stronger than "deterministic for a fixed thread
// count": the cost trajectory is *independent of the thread count*, and the
// 1-thread run is bit-identical to the sequential "tabu" engine with the
// same seeds. Three properties make that hold (pinned by
// tests/shared_engine_test.cpp):
//
//  1. All candidate sampling happens on the coordinator, from the single
//     search stream, before the parallel region — probes consume no RNG, so
//     the draw order matches the sequential interleaved loop exactly.
//  2. probe_swap changes no observable state and is bit-identical against
//     equal committed state (DESIGN.md §3), so each trial's cost does not
//     depend on which thread probed it or in what order. Replicas replay
//     every coordinator mutation (an op log of committed swaps) before
//     probing, so their committed state is bit-identical to the
//     coordinator's — including the periodic drift-control rebuild, which
//     triggers at the same committed-swap count everywhere.
//  3. The reduction runs on the coordinator in trial-index order with the
//     sequential rule (first strict minimum wins) — reduction order is part
//     of the API, exactly like summation order in the CSR layout (§7).
//
// Worker threads persist for the whole run (ThreadPool); a level dispatches
// one parallel region. Oversubscribed thread counts are clamped to the
// movable-cell count, mirroring the TSW/CLW engines' worker clamp.
#pragma once

#include <cstddef>
#include <cstdint>

#include "netlist/netlist.hpp"
#include "parallel/config.hpp"
#include "support/run_control.hpp"
#include "tabu/search.hpp"

namespace pts::parallel {

/// Everything one shared-memory run needs. The two seeds are the already
/// derived streams (the solver passes spec.seed ^ kInitStreamSalt /
/// kSearchStreamSalt, which is what makes the 1-thread run bit-identical to
/// the "tabu" engine); direct callers can pass any pair.
struct SharedConfig {
  SharedParams params;
  tabu::TabuParams tabu;
  cost::CostParams cost;
  std::uint64_t init_seed = 1;
  std::uint64_t search_seed = 1;
};

struct SharedResult {
  double initial_cost = 0.0;
  /// The sequential engine's result type, traces and stats included —
  /// the shared backend changes who evaluates trials, not what the search
  /// computes.
  tabu::SearchResult search;
  double makespan = 0.0;  ///< wall seconds
  std::size_t threads_used = 0;  ///< after the movable-cell clamp
};

class SharedEngine {
 public:
  SharedEngine(const netlist::Netlist& netlist, const SharedConfig& config);

  SharedResult run();
  SharedResult run(const RunControl& control);

  /// config.params.threads clamped to [1, num_movable].
  std::size_t effective_threads() const;

 private:
  const netlist::Netlist* netlist_;
  SharedConfig config_;
};

}  // namespace pts::parallel
