#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/check.hpp"

namespace pts {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double quantile(std::vector<double> samples, double q) {
  PTS_CHECK(!samples.empty());
  PTS_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double Series::last_y() const {
  PTS_CHECK(!y.empty());
  return y.back();
}

double Series::min_y() const {
  PTS_CHECK(!y.empty());
  return *std::min_element(y.begin(), y.end());
}

double Series::first_x_reaching(double threshold) const {
  for (std::size_t i = 0; i < size(); ++i) {
    if (y[i] <= threshold) return x[i];
  }
  return -1.0;
}

double Series::y_at(double at) const {
  PTS_CHECK(!x.empty());
  PTS_CHECK(at >= x.front());
  double value = y.front();
  for (std::size_t i = 0; i < size(); ++i) {
    if (x[i] > at) break;
    value = y[i];
  }
  return value;
}

Series Series::downsample(std::size_t max_points) const {
  PTS_CHECK(max_points >= 2);
  if (size() <= max_points) return *this;
  Series out;
  out.name = name;
  const double stride =
      static_cast<double>(size() - 1) / static_cast<double>(max_points - 1);
  for (std::size_t i = 0; i < max_points; ++i) {
    const auto idx = static_cast<std::size_t>(
        std::llround(static_cast<double>(i) * stride));
    out.add(x[idx], y[idx]);
  }
  return out;
}

}  // namespace pts
