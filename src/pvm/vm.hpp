// Threaded parallel virtual machine (the PVM substitute).
//
// A VirtualMachine hosts tasks, each on its own std::thread with a private
// Mailbox, bound round-robin to the machines of a ClusterConfig. The
// calling thread is task 0 ("host", the paper's master process).
//
// Heterogeneity on a single computer: tasks meter their computation through
// TaskContext::charge(units). Charging accrues *virtual time* units/speed
// (used by measurements) and, when `seconds_per_unit > 0`, also throttles
// the thread in real time so slow "machines" demonstrably lag fast ones —
// that is what the heterogeneous-collection examples show. Virtual time is
// the meaningful clock; real throttling is presentation only.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "pvm/machine.hpp"
#include "pvm/mailbox.hpp"
#include "pvm/message.hpp"

namespace pts::pvm {

class VirtualMachine;

class TaskContext {
 public:
  TaskId self() const { return id_; }
  const std::string& name() const { return name_; }
  const MachineProfile& machine() const { return profile_; }

  void send(TaskId to, Message message);
  /// Blocking receive; nullopt only after the VM shuts the mailbox down.
  std::optional<Message> recv(int tag = kAnyTag) { return mailbox_->recv(tag); }
  std::optional<Message> try_recv(int tag = kAnyTag) {
    return mailbox_->try_recv(tag);
  }
  bool probe(int tag = kAnyTag) const { return mailbox_->probe(tag); }

  /// Meters `units` of work on this task's machine (see file comment).
  void charge(double units);

  /// Accumulated virtual seconds of metered work on this task.
  double virtual_time() const { return virtual_time_; }

  /// Task-private deterministic RNG (forked from the VM seed).
  Rng& rng() { return rng_; }

  /// The owning virtual machine (tasks spawn children through it, like a
  /// PVM task calling pvm_spawn).
  VirtualMachine& vm() { return *vm_; }

 private:
  friend class VirtualMachine;
  TaskContext(VirtualMachine* vm, TaskId id, std::string name,
              MachineProfile profile, Mailbox* mailbox, Rng rng)
      : vm_(vm),
        id_(id),
        name_(std::move(name)),
        profile_(std::move(profile)),
        mailbox_(mailbox),
        rng_(rng) {}

  VirtualMachine* vm_;
  TaskId id_;
  std::string name_;
  MachineProfile profile_;
  Mailbox* mailbox_;
  Rng rng_;
  double virtual_time_ = 0.0;
  double sleep_debt_ = 0.0;
};

class VirtualMachine {
 public:
  /// `seconds_per_unit` > 0 enables real-time throttling of charge().
  explicit VirtualMachine(ClusterConfig cluster, std::uint64_t seed = 1,
                          double seconds_per_unit = 0.0);
  ~VirtualMachine();

  VirtualMachine(const VirtualMachine&) = delete;
  VirtualMachine& operator=(const VirtualMachine&) = delete;

  /// The calling thread's context (task 0, the master).
  TaskContext& host();

  /// Starts a task; its body runs immediately on a new thread. Tasks are
  /// bound to cluster machines round-robin in spawn order (host included).
  TaskId spawn(const std::string& name, std::function<void(TaskContext&)> body);

  std::size_t num_tasks() const;
  const ClusterConfig& cluster() const { return cluster_; }

  /// Closes every mailbox (unblocking all recv calls) and joins all task
  /// threads. Called by the destructor if not invoked explicitly.
  void shutdown();

 private:
  friend class TaskContext;
  struct TaskState {
    std::unique_ptr<TaskContext> context;
    Mailbox mailbox;
    std::thread thread;
  };

  void route(TaskId from, TaskId to, Message message);

  ClusterConfig cluster_;
  Rng seed_rng_;
  double seconds_per_unit_;
  mutable std::mutex tasks_mutex_;
  std::vector<std::unique_ptr<TaskState>> tasks_;
  bool shut_down_ = false;
};

}  // namespace pts::pvm
