#include "solver/solver.hpp"

#include <cmath>
#include <map>
#include <mutex>
#include <utility>

#include "support/check.hpp"

namespace pts::solver {

namespace {

struct Registry {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<Engine>, std::less<>> engines;
};

/// Built-ins are installed on first access (never via static initializers:
/// the pts archive gives no ordering or liveness guarantees for
/// self-registering translation units).
Registry& registry() {
  static Registry* instance = [] {
    auto* reg = new Registry();
    for (auto& engine : detail::make_builtin_engines()) {
      const std::string name(engine->name());
      reg->engines.emplace(name, std::move(engine));
    }
    return reg;
  }();
  return *instance;
}

std::string join(const std::vector<std::string>& parts, const char* sep) {
  std::string out;
  for (const auto& part : parts) {
    if (!out.empty()) out += sep;
    out += part;
  }
  return out;
}

}  // namespace

bool register_engine(std::unique_ptr<Engine> engine) {
  PTS_CHECK(engine != nullptr);
  const std::string name(engine->name());
  PTS_CHECK_MSG(!name.empty(), "engine name must be non-empty");
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.engines.emplace(name, std::move(engine)).second;
}

const Engine* find_engine(std::string_view name) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  const auto it = reg.engines.find(name);
  return it == reg.engines.end() ? nullptr : it->second.get();
}

std::vector<std::string> engine_names() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<std::string> names;
  names.reserve(reg.engines.size());
  for (const auto& [name, engine] : reg.engines) {
    (void)engine;
    names.push_back(name);
  }
  return names;  // std::map iteration order: already sorted
}

std::vector<std::string> Solver::validate(const SolveSpec& spec) const {
  std::vector<std::string> errors;

  const Engine* engine = find_engine(spec.engine);
  if (engine == nullptr) {
    errors.push_back("unknown engine '" + spec.engine +
                     "' (registered: " + join(engine_names(), ", ") + ")");
  }

  if (spec.netlist == nullptr) {
    errors.push_back("netlist is null");
  } else if (spec.netlist->num_movable() < 2) {
    errors.push_back("netlist has fewer than 2 movable cells; nothing to swap");
  }

  if (spec.cost.num_paths < 1) {
    errors.push_back("cost.num_paths must be >= 1");
  }
  if (!(spec.cost.beta >= 0.0 && spec.cost.beta <= 1.0)) {
    errors.push_back("cost.beta must be in [0, 1]");
  }
  if (spec.cost.rebuild_interval < 1) {
    errors.push_back("cost.rebuild_interval must be >= 1");
  }

  if (!spec.initial_slots.empty() && spec.netlist != nullptr) {
    const netlist::Netlist& nl = *spec.netlist;
    if (spec.initial_slots.size() != nl.num_movable()) {
      errors.push_back("initial_slots has " +
                       std::to_string(spec.initial_slots.size()) +
                       " entries; expected one per movable cell (" +
                       std::to_string(nl.num_movable()) + ")");
    } else {
      std::vector<bool> seen(nl.num_cells(), false);
      for (const netlist::CellId cell : spec.initial_slots) {
        if (cell >= nl.num_cells() || !nl.cell(cell).movable()) {
          errors.push_back("initial_slots contains id " + std::to_string(cell) +
                           ", which is not a movable cell of this netlist");
          break;
        }
        if (seen[cell]) {
          errors.push_back("initial_slots assigns cell " + std::to_string(cell) +
                           " to more than one slot");
          break;
        }
        seen[cell] = true;
      }
    }
  }

  if (std::isnan(spec.stop.max_seconds)) {
    errors.push_back("stop.max_seconds must not be NaN");
  }
  if (spec.stop.target_cost && std::isnan(*spec.stop.target_cost)) {
    errors.push_back("stop.target_cost must not be NaN");
  }
  if (spec.stop.target_quality &&
      !(*spec.stop.target_quality >= 0.0 && *spec.stop.target_quality <= 1.0)) {
    errors.push_back("stop.target_quality must be in [0, 1]");
  }

  if (engine != nullptr) engine->validate(spec, errors);
  return errors;
}

SolveResult Solver::solve(const SolveSpec& spec) const {
  const auto errors = validate(spec);
  if (!errors.empty()) {
    const std::string message = "invalid SolveSpec for engine '" + spec.engine +
                                "': " + join(errors, "; ");
    check_failed("Solver::solve(spec)", __FILE__, __LINE__, message.c_str());
  }
  SolveResult result = find_engine(spec.engine)->solve(spec);
  result.engine = spec.engine;
  return result;
}

}  // namespace pts::solver
