#include "pvm/message.hpp"

#include <utility>

namespace pts::pvm {

const char* field_name(Field field) {
  switch (field) {
    case Field::None: return "none";
    case Field::U32: return "u32";
    case Field::U64: return "u64";
    case Field::I64: return "i64";
    case Field::F64: return "f64";
    case Field::Bool: return "bool";
    case Field::Str: return "string";
    case Field::VecU32: return "vec<u32>";
    case Field::VecF64: return "vec<f64>";
  }
  return "unknown";
}

Message Message::from_payload(int tag, std::vector<std::uint8_t> payload) {
  Message msg(tag);
  msg.buffer_ = std::move(payload);
  return msg;
}

namespace {

/// Payload size of a field body (marker byte excluded); for Str/Vec* this is
/// the size of the 8-byte length prefix only — the variable part is checked
/// against its decoded length. 0 = unknown marker.
std::size_t fixed_body_size(std::uint8_t marker) {
  switch (static_cast<Field>(marker)) {
    case Field::U32: return sizeof(std::uint32_t);
    case Field::U64: return sizeof(std::uint64_t);
    case Field::I64: return sizeof(std::int64_t);
    case Field::F64: return sizeof(double);
    case Field::Bool: return sizeof(std::uint8_t);
    case Field::Str:
    case Field::VecU32:
    case Field::VecF64: return sizeof(std::uint64_t);
    case Field::None: return 0;
  }
  return 0;
}

std::size_t element_size(Field field) {
  switch (field) {
    case Field::VecU32: return sizeof(std::uint32_t);
    case Field::VecF64: return sizeof(double);
    default: return 1;  // Str
  }
}

}  // namespace

Field Message::peek_field() const {
  if (cursor_ >= buffer_.size()) return Field::None;
  const auto marker = buffer_[cursor_];
  if (marker < static_cast<std::uint8_t>(Field::U32) ||
      marker > static_cast<std::uint8_t>(Field::VecF64)) {
    return Field::None;
  }
  return static_cast<Field>(marker);
}

bool Message::validate_layout() const {
  std::size_t pos = 0;
  while (pos < buffer_.size()) {
    const auto marker = buffer_[pos];
    const auto field = static_cast<Field>(marker);
    if (field < Field::U32 || field > Field::VecF64) return false;
    ++pos;
    const std::size_t body = fixed_body_size(marker);
    if (buffer_.size() - pos < body) return false;
    if (field == Field::Str || field == Field::VecU32 || field == Field::VecF64) {
      std::uint64_t n = 0;
      std::memcpy(&n, buffer_.data() + pos, sizeof(n));
      pos += sizeof(n);
      const std::size_t elem = element_size(field);
      if (n > (buffer_.size() - pos) / elem) return false;
      pos += static_cast<std::size_t>(n) * elem;
    } else {
      pos += body;
    }
  }
  return true;
}

void Message::put_raw(const void* data, std::size_t n) {
  if (n == 0) return;  // empty vector/string: data() may be null; memcpy UB
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  buffer_.insert(buffer_.end(), bytes, bytes + n);
}

void Message::get_raw(void* data, std::size_t n) {
  PTS_CHECK_MSG(cursor_ + n <= buffer_.size(), "message underflow");
  if (n == 0) return;
  std::memcpy(data, buffer_.data() + cursor_, n);
  cursor_ += n;
}

void Message::expect_marker(Marker m) {
  PTS_CHECK_MSG(cursor_ < buffer_.size(), "message underflow");
  const auto got = static_cast<Marker>(buffer_[cursor_]);
  PTS_CHECK_MSG(got == m, "message field type mismatch (unpack order?)");
  ++cursor_;
}

void Message::pack_string(const std::string& s) {
  put_marker(Marker::Str);
  const auto n = static_cast<std::uint64_t>(s.size());
  put_raw(&n, sizeof(n));
  put_raw(s.data(), s.size());
}

std::string Message::unpack_string() {
  expect_marker(Marker::Str);
  std::uint64_t n = 0;
  get_raw(&n, sizeof(n));
  PTS_CHECK_MSG(cursor_ + n <= buffer_.size(), "message underflow");
  std::string s(reinterpret_cast<const char*>(buffer_.data() + cursor_),
                static_cast<std::size_t>(n));
  cursor_ += static_cast<std::size_t>(n);
  return s;
}

void Message::pack_u32_vector(const std::vector<std::uint32_t>& v) {
  put_marker(Marker::VecU32);
  const auto n = static_cast<std::uint64_t>(v.size());
  put_raw(&n, sizeof(n));
  put_raw(v.data(), v.size() * sizeof(std::uint32_t));
}

std::vector<std::uint32_t> Message::unpack_u32_vector() {
  expect_marker(Marker::VecU32);
  std::uint64_t n = 0;
  get_raw(&n, sizeof(n));
  std::vector<std::uint32_t> v(static_cast<std::size_t>(n));
  get_raw(v.data(), v.size() * sizeof(std::uint32_t));
  return v;
}

void Message::pack_double_vector(const std::vector<double>& v) {
  put_marker(Marker::VecF64);
  const auto n = static_cast<std::uint64_t>(v.size());
  put_raw(&n, sizeof(n));
  put_raw(v.data(), v.size() * sizeof(double));
}

std::vector<double> Message::unpack_double_vector() {
  expect_marker(Marker::VecF64);
  std::uint64_t n = 0;
  get_raw(&n, sizeof(n));
  std::vector<double> v(static_cast<std::size_t>(n));
  get_raw(v.data(), v.size() * sizeof(double));
  return v;
}

}  // namespace pts::pvm
