// ptsd — run the placement-as-a-service daemon.
//
// Serves solve jobs over a Unix-domain socket (default /tmp/ptsd.sock)
// and/or loopback TCP. SIGTERM / SIGINT drain gracefully: stop accepting,
// cancel every running session, join every thread, then exit — the
// "zero leaked sessions" contract (DESIGN.md §10).
//
//   ptsd --unix /tmp/ptsd.sock
//   ptsd --tcp --port 7777
//   ptsd --selfcheck          # in-process loopback: start, solve highway
//                             # through a real socket, verify the result is
//                             # bit-identical to a direct solve, drain.
#include <csignal>
#include <cstdio>
#include <unistd.h>

#include "experiments/workloads.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"

namespace {

constexpr const char kUsage[] =
    "usage: ptsd [--unix /tmp/ptsd.sock] [--tcp] [--port 0]\n"
    "            [--max-sessions 256] [--max-queued 64] [--deadline 0]\n"
    "            [--cache-entries 0] [--quiet] [--selfcheck] [--help]\n"
    "--max-queued bounds the FIFO admission queue behind the running cap\n"
    "(0 = reject immediately when full); --deadline S applies a default\n"
    "wall-clock deadline (queue wait + solve) to jobs without their own;\n"
    "--cache-entries N keeps an LRU of the last N deterministic results\n"
    "(ECO mode) so a repeat submission is answered bit-identically without\n"
    "running a solver (0 = off).\n"
    "--selfcheck starts the daemon on a private socket, runs one end-to-end\n"
    "solve through it, checks bit-identity against a direct solve, and\n"
    "drains; exit 0 = healthy.\n";

pts::service::Daemon* g_daemon = nullptr;

void handle_signal(int) {
  // Async-signal-safe: one write to the daemon's stop pipe; main() is
  // blocked in wait_for_stop_request and performs the actual drain.
  if (g_daemon != nullptr) g_daemon->request_stop();
}

int selfcheck() {
  using namespace pts::service;
  const std::string socket_path =
      "/tmp/ptsd-selfcheck-" + std::to_string(::getpid()) + ".sock";
  DaemonConfig config;
  config.unix_path = socket_path;
  Daemon daemon(config);
  std::string error;
  if (!daemon.start(&error)) {
    std::fprintf(stderr, "selfcheck: start failed: %s\n", error.c_str());
    return 1;
  }

  Client client;
  if (!client.connect_unix(socket_path, &error)) {
    std::fprintf(stderr, "selfcheck: connect failed: %s\n", error.c_str());
    return 1;
  }
  const auto welcome = client.hello(&error);
  if (!welcome || welcome->engines.empty()) {
    std::fprintf(stderr, "selfcheck: hello failed: %s\n", error.c_str());
    return 1;
  }

  JobRequest job;
  job.circuit = "highway";
  job.spec.engine = "tabu";
  job.spec.seed = 7;
  job.spec.tabu.iterations = 120;
  const auto session = client.submit(job, /*stream=*/true, /*stride=*/32, &error);
  if (!session) {
    std::fprintf(stderr, "selfcheck: submit failed: %s\n", error.c_str());
    return 1;
  }
  std::size_t progress_events = 0;
  const auto served = client.wait(
      *session, [&](const ProgressMsg&) { ++progress_events; }, &error);
  if (!served) {
    std::fprintf(stderr, "selfcheck: wait failed: %s\n", error.c_str());
    return 1;
  }

  // The served result must be bit-identical to the same-seed direct solve.
  auto direct_spec = job.spec;
  direct_spec.netlist = &pts::experiments::circuit(job.circuit);
  const auto direct = pts::solver::Solver().solve(direct_spec);
  if (served->best_cost != direct.best_cost ||
      served->best_slots != direct.best_slots ||
      served->iterations != direct.iterations) {
    std::fprintf(stderr, "selfcheck: served result diverges from direct solve\n");
    return 1;
  }

  client.close();
  daemon.stop();
  if (daemon.active_sessions() != 0) {
    std::fprintf(stderr, "selfcheck: leaked sessions after drain\n");
    return 1;
  }
  std::printf(
      "selfcheck ok: engines=%zu best_cost=%.6f progress_events=%zu "
      "sessions=%llu\n",
      welcome->engines.size(), served->best_cost, progress_events,
      static_cast<unsigned long long>(daemon.sessions_finished()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const pts::Cli cli(argc, argv);
  if (cli.get_flag("help")) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  const std::string unix_path = cli.get("unix", "/tmp/ptsd.sock");
  const bool tcp = cli.get_flag("tcp");
  const auto port = static_cast<std::uint16_t>(cli.get_int("port", 0));
  const auto max_sessions = static_cast<std::size_t>(cli.get_int("max-sessions", 256));
  const auto max_queued = static_cast<std::size_t>(cli.get_int("max-queued", 64));
  const double deadline = cli.get_double("deadline", 0.0);
  const auto cache_entries =
      static_cast<std::size_t>(cli.get_int("cache-entries", 0));
  const bool quiet = cli.get_flag("quiet");
  const bool run_selfcheck = cli.get_flag("selfcheck");
  cli.reject_unused(kUsage);

  pts::set_log_level(quiet ? pts::LogLevel::Warn : pts::LogLevel::Info);
  if (run_selfcheck) return selfcheck();

  pts::service::DaemonConfig config;
  config.unix_path = tcp ? cli.get("unix", "") : unix_path;
  config.tcp = tcp;
  config.tcp_port = port;
  config.max_sessions = max_sessions;
  config.max_queued = max_queued;
  config.session_deadline_seconds = deadline;
  config.cache_entries = cache_entries;

  pts::service::Daemon daemon(config);
  std::string error;
  if (!daemon.start(&error)) {
    std::fprintf(stderr, "ptsd: %s\n", error.c_str());
    return 1;
  }
  g_daemon = &daemon;
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);
  if (tcp) std::printf("ptsd: listening on 127.0.0.1:%u\n", daemon.tcp_port());

  daemon.wait_for_stop_request();
  std::printf("ptsd: draining...\n");
  daemon.stop();
  g_daemon = nullptr;
  std::printf("ptsd: drained; sessions started=%llu finished=%llu active=%zu\n",
              static_cast<unsigned long long>(daemon.sessions_started()),
              static_cast<unsigned long long>(daemon.sessions_finished()),
              daemon.active_sessions());
  return daemon.active_sessions() == 0 ? 0 : 1;
}
