// Incremental multi-objective cost evaluation of a placement.
//
// The Evaluator owns a Placement and keeps the HPWL state and the K-paths
// delay estimate consistent with it across swaps. It is the single mutation
// point used by the tabu engine and by every candidate-list worker:
//
//   double after = eval.apply_swap(a, b);   // mutate + incremental update
//   ...
//   eval.apply_swap(a, b);                  // swap is an involution: undo
//
// Each worker owns its own Evaluator (its private copy of the current
// solution); the PathSet is immutable and shared.
#pragma once

#include <memory>
#include <vector>

#include "cost/fuzzy.hpp"
#include "netlist/netlist.hpp"
#include "placement/hpwl.hpp"
#include "placement/placement.hpp"
#include "timing/paths.hpp"

namespace pts::cost {

struct CostParams {
  timing::DelayModel delay_model;
  /// Number of monitored critical paths for the delay estimate.
  std::size_t num_paths = 24;
  /// Goal calibration (see FuzzyGoals::calibrate).
  double target_improvement = 0.7;
  double initial_membership = 0.25;
  double beta = 0.6;
  /// Rebuild HPWL + path sums from scratch every this many swaps (caps
  /// floating-point drift in the running totals).
  std::size_t rebuild_interval = 1u << 14;
};

class Evaluator {
 public:
  /// Takes ownership of `placement`; goals are taken from `goals` so all
  /// workers of one search rank solutions identically.
  Evaluator(placement::Placement placement,
            std::shared_ptr<const timing::PathSet> paths, const CostParams& params,
            const FuzzyGoals& goals);

  Evaluator(const Evaluator&) = delete;
  Evaluator& operator=(const Evaluator&) = delete;

  const placement::Placement& placement() const { return placement_; }
  const FuzzyGoals& goals() const { return goals_; }
  const placement::HpwlState& hpwl() const { return hpwl_; }

  /// Current objective vector.
  Objectives objectives() const;
  /// Current scalar cost (1 - OWA of raw memberships); lower is better.
  double cost() const { return goals_.cost(objectives()); }
  /// Current quality in [0, 1]; higher is better.
  double quality() const { return goals_.quality(objectives()); }

  /// Swaps two movable cells, updates all incremental state, and returns
  /// the new scalar cost. Involution: calling again with the same pair
  /// undoes the move.
  double apply_swap(netlist::CellId a, netlist::CellId b);

  /// Replaces the current solution (e.g. with a broadcast best) and fully
  /// rebuilds incremental state.
  void reset_placement(const std::vector<netlist::CellId>& cell_at_slot);

  /// Number of swaps applied since construction (diagnostics).
  std::size_t swaps_applied() const { return swaps_applied_; }

  /// Measures the objectives of the initial placement of a search and
  /// calibrates shared fuzzy goals from them.
  static FuzzyGoals calibrate_goals(const placement::Placement& initial,
                                    const timing::PathSet& paths,
                                    const CostParams& params);

 private:
  void rebuild_all();

  placement::Placement placement_;
  std::shared_ptr<const timing::PathSet> paths_;
  CostParams params_;
  FuzzyGoals goals_;
  placement::HpwlState hpwl_;
  timing::PathTimer timer_;
  placement::NetMarker marker_;
  std::vector<netlist::CellId> moved_scratch_;
  std::vector<placement::NetChange> change_scratch_;
  std::size_t swaps_applied_ = 0;
  std::size_t swaps_since_rebuild_ = 0;
};

}  // namespace pts::cost
