// Plain-text table and CSV emitters used by every bench binary so that the
// paper's figures can be regenerated as aligned console tables plus
// machine-readable CSV blocks.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "support/stats.hpp"

namespace pts {

/// Column-aligned text table. Cells are strings; numeric helpers format with
/// fixed precision so series line up visually.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` digits after the point.
  Table& add_row(const std::vector<double>& cells, int precision = 3);

  std::size_t rows() const { return rows_.size(); }

  void print(std::ostream& os) const;
  std::string to_string() const;
  std::string to_csv() const;

  static std::string fmt(double v, int precision = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a set of same-x series as one table: first column x, one column
/// per series. Series may have different lengths; missing cells are blank.
Table series_table(const std::string& x_name, const std::vector<Series>& series,
                   int precision = 3);

/// Writes `table` to stdout framed by a title line and a trailing CSV block
/// (prefixed with "csv," so downstream tooling can grep it out).
void emit_table(const std::string& title, const Table& table, bool with_csv = true);

}  // namespace pts
