// Quickstart: place a benchmark circuit with parallel tabu search.
//
// Usage: quickstart [--circuit c532] [--tsws 4] [--clws 2] [--threaded]
//
// Runs the search on the deterministic virtual-time engine by default and
// prints the cost breakdown before/after; --threaded runs the identical
// algorithm on the real message-passing runtime instead.
#include <cstdio>

#include "experiments/workloads.hpp"
#include "parallel/pts.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"

int main(int argc, char** argv) {
  const pts::Cli cli(argc, argv);
  pts::set_log_level(pts::LogLevel::Warn);

  const std::string circuit_name = cli.get("circuit", "c532");
  const auto& circuit = pts::experiments::circuit(circuit_name);
  std::printf("circuit %s: %zu cells, %zu nets, %zu pads, logic depth %zu\n",
              circuit.name().c_str(), circuit.num_movable(), circuit.num_nets(),
              circuit.pad_cells().size(), circuit.logic_depth());

  auto config = pts::experiments::base_config(circuit, /*seed=*/7,
                                              /*quick=*/!cli.get_flag("full"));
  config.num_tsws = static_cast<std::size_t>(cli.get_int("tsws", 4));
  config.clws_per_tsw = static_cast<std::size_t>(cli.get_int("clws", 2));

  pts::parallel::ParallelTabuSearch search(circuit, config);
  const bool threaded = cli.get_flag("threaded");
  const auto result = threaded ? search.run_threaded() : search.run_sim();

  std::printf("engine            : %s\n", threaded ? "threaded" : "sim");
  std::printf("initial cost      : %.4f\n", result.initial_cost);
  std::printf("best cost         : %.4f\n", result.best_cost);
  std::printf("best quality (mu) : %.4f\n", result.best_quality);
  std::printf("wirelength        : %.1f\n", result.best_objectives.wirelength);
  std::printf("critical delay    : %.3f\n", result.best_objectives.delay);
  std::printf("area              : %.1f\n", result.best_objectives.area);
  std::printf("makespan          : %.3f %s\n", result.makespan,
              threaded ? "s (wall)" : "virtual s");
  std::printf("iterations        : %zu (accepted %zu, tabu-rejected %zu, aspirated %zu)\n",
              result.stats.iterations, result.stats.accepted,
              result.stats.rejected_tabu, result.stats.aspirated);
  return 0;
}
