// Tiny command-line option parser shared by examples and bench binaries.
//
// Supports `--name value`, `--name=value`, and boolean flags (`--quick`).
// Unknown options are collected so google-benchmark flags can pass through
// bench binaries untouched.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pts {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_flag(const std::string& name, bool fallback = false) const;

  /// Positional arguments (non `--` tokens).
  const std::vector<std::string>& positional() const { return positional_; }

  /// Options the binary did not query; useful for strict-mode validation.
  std::vector<std::string> unused() const;

  /// Strict mode for example binaries: if any option was never queried,
  /// prints the offenders plus `usage` to stderr and exits with status 2.
  /// Call after the last get*()/has() query. Bench binaries skip this so
  /// google-benchmark flags keep passing through untouched.
  void reject_unused(const std::string& usage) const;

  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace pts
