#include "pvm/frame.hpp"

#include <cstring>

#include "support/check.hpp"

namespace pts::pvm {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const auto base = out.size();
  out.resize(base + sizeof(v));
  std::memcpy(out.data() + base, &v, sizeof(v));
}

std::uint32_t read_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

void encode_frame(const Message& msg, std::vector<std::uint8_t>& out) {
  const auto& payload = msg.bytes();
  PTS_CHECK_MSG(!payload.empty(), "cannot frame an empty message");
  PTS_CHECK_MSG(payload.size() <= UINT32_MAX, "frame payload exceeds u32 length");
  out.reserve(out.size() + kFrameHeaderBytes + payload.size());
  put_u32(out, kFrameMagic);
  put_u32(out, static_cast<std::uint32_t>(msg.tag()));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
}

std::vector<std::uint8_t> encode_frame(const Message& msg) {
  std::vector<std::uint8_t> out;
  encode_frame(msg, out);
  return out;
}

void FrameDecoder::fail(std::string reason) {
  error_ = std::move(reason);
  buffer_.clear();
  consumed_ = 0;
}

bool FrameDecoder::feed(const void* data, std::size_t size) {
  if (errored()) return false;
  if (size == 0) return true;
  // Compact lazily: only when the dead prefix dominates the buffer, so a
  // chatty stream does not memmove per frame.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  buffer_.insert(buffer_.end(), bytes, bytes + size);
  return true;
}

std::optional<Message> FrameDecoder::next() {
  if (errored()) return std::nullopt;
  if (buffer_.size() - consumed_ < kFrameHeaderBytes) return std::nullopt;
  const std::uint8_t* header = buffer_.data() + consumed_;
  const std::uint32_t magic = read_u32(header);
  if (magic != kFrameMagic) {
    fail("bad frame magic");
    return std::nullopt;
  }
  const auto tag = static_cast<std::int32_t>(read_u32(header + 4));
  const std::uint32_t length = read_u32(header + 8);
  if (length == 0) {
    fail("zero-length frame payload");
    return std::nullopt;
  }
  if (length > max_payload_) {
    fail("frame payload exceeds max_payload");
    return std::nullopt;
  }
  if (buffer_.size() - consumed_ < kFrameHeaderBytes + length) {
    return std::nullopt;  // payload still in flight
  }
  const std::uint8_t* payload = header + kFrameHeaderBytes;
  Message msg = Message::from_payload(
      static_cast<int>(tag), std::vector<std::uint8_t>(payload, payload + length));
  consumed_ += kFrameHeaderBytes + length;
  return msg;
}

}  // namespace pts::pvm
