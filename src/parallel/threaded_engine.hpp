// Threaded engine: the parallel tabu search on the PVM-like runtime.
//
// Process structure follows the paper's Figures 2–4 exactly: the host task
// is the master; it spawns the TSWs; each TSW spawns its own CLWs. All
// coordination is message passing (protocol.hpp); the collection policies
// are executed live — a parent counts voluntary reports and sends
// ForceReport to the stragglers once the threshold is reached.
//
// Timing in this engine is wall-clock (the host has whatever cores it has);
// set PtsConfig::threaded_seconds_per_unit > 0 to throttle tasks to their
// machine profile so heterogeneity is visible in real time. The figure
// benches use the SimEngine instead (deterministic virtual time).
#pragma once

#include "parallel/config.hpp"

namespace pts::parallel {

class ThreadedEngine {
 public:
  ThreadedEngine(const netlist::Netlist& netlist, const PtsConfig& config);

  PtsResult run();

  /// Like run(), but honors caller stop conditions — checked by the master
  /// after every global iteration against wall time — and streams progress
  /// to the observer (called from the master thread only). A stopped run
  /// terminates the TSWs in place of the next broadcast. Checks and
  /// callbacks are read-only: a run whose conditions never fire is
  /// bit-identical to run().
  PtsResult run(const RunControl& control);

 private:
  SearchSetup setup_;
};

}  // namespace pts::parallel
