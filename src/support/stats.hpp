// Running statistics and sampled series.
//
// RunningStats uses Welford's update so long experiment sweeps can
// accumulate means/variances without storing samples. Series stores (x, y)
// points for the figure harnesses (cost-vs-iteration, quality-vs-workers).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pts {

class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than two samples).
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator (parallel reduction, Chan et al.).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Quantile of a sample set via linear interpolation (type-7, like numpy).
/// `q` in [0, 1]; the input vector is copied and sorted.
double quantile(std::vector<double> samples, double q);

/// A named (x, y) series, the unit of output of every figure harness.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;

  void add(double xv, double yv) {
    x.push_back(xv);
    y.push_back(yv);
  }
  std::size_t size() const { return x.size(); }

  /// y at the largest sampled x (the "final" value of a trace).
  double last_y() const;
  double min_y() const;

  /// First x whose y is <= threshold, or -1 if never reached. Used for the
  /// paper's speedup definition: time to hit an x-quality solution.
  double first_x_reaching(double threshold) const;

  /// Step-function evaluation: y of the last point with x <= `at`. Requires
  /// ascending x and at >= x.front(). Used to compare trajectories at a
  /// shared time instant.
  double y_at(double at) const;

  /// Downsamples to at most `max_points` points (keeps first and last).
  Series downsample(std::size_t max_points) const;
};

}  // namespace pts
