// Synthetic combinational-circuit generator.
//
// The paper evaluates on four ISCAS-89 circuits (highway, c532, c1355,
// c3540), which are not redistributable here. This generator produces
// seeded pseudo-random DAGs whose size, fanin/fanout distribution and logic
// depth are representative of gate-level netlists of the same cell count —
// the properties the paper's experiments actually exercise (see DESIGN.md
// §2). Generation is deterministic for a given config.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.hpp"

namespace pts::netlist {

struct GeneratorConfig {
  std::string name = "synthetic";
  /// Number of logic gates (the movable cells the paper counts).
  std::size_t num_gates = 100;
  std::size_t num_primary_inputs = 10;
  std::size_t num_primary_outputs = 10;

  /// Mean gate fanin; individual fanins are in [1, max_fanin].
  double avg_fanin = 2.4;
  std::size_t max_fanin = 5;

  /// Probability that an input is drawn from the most recent `locality_window`
  /// nets instead of uniformly — larger values yield deeper circuits.
  double locality = 0.65;
  std::size_t locality_window = 24;

  /// Cell width distribution in grid units, uniform in [min_width, max_width].
  int min_width = 1;
  int max_width = 4;

  /// Gate delay model: intrinsic ~ N(delay_mean, delay_stddev) clamped > 0,
  /// load factor uniform in [load_min, load_max].
  double delay_mean = 1.0;
  double delay_stddev = 0.25;
  double load_min = 0.05;
  double load_max = 0.20;

  /// Fraction of nets flagged timing/power critical (weight 2.0 vs 1.0).
  double critical_net_fraction = 0.1;

  std::uint64_t seed = 1;
};

/// Generates a valid netlist (acyclic, every net driven and sunk).
/// Invariants guaranteed regardless of config values:
///  - exactly num_gates gates and num_primary_inputs PIs;
///  - at least num_primary_outputs POs (dangling gate outputs whose driver
///    is the final gate are sunk by extra POs);
///  - gate i's inputs come only from PIs or gates j < i (acyclic by
///    construction, independently re-checked by Netlist::finalize()).
Netlist generate_circuit(const GeneratorConfig& config);

}  // namespace pts::netlist
