// K-critical-paths delay estimation.
//
// Full STA per candidate move would dominate the search inner loop, so —
// following the practice of the fuzzy goal-directed placers this paper
// builds on — we pre-extract a set of structurally critical paths (the
// critical path of each primary output under uniform net delays, keeping
// the K worst) and estimate circuit delay as the maximum path delay over
// that set.
//
// A path's delay is split into a placement-independent constant (sum of
// cell delays) plus wire_delay_per_unit times the sum of its nets' current
// half-perimeters; the PathTimer maintains those wire sums incrementally
// from per-net HPWL changes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "placement/hpwl.hpp"
#include "timing/delay_model.hpp"

namespace pts::timing {

struct TimingPath {
  /// Cells from primary input to primary output.
  std::vector<netlist::CellId> cells;
  /// Nets traversed between consecutive cells (cells.size() - 1 of them).
  std::vector<netlist::NetId> nets;
  /// Placement-independent component (sum of cell delays along the path).
  double const_delay = 0.0;
};

/// An immutable set of monitored paths with a net→paths reverse index.
/// Shared (const) between all workers of a parallel search. The reverse
/// index and the per-path constant delays are stored flat (CSR / SoA,
/// DESIGN.md §7) because the probe kernel walks them once per net change.
class PathSet {
 public:
  PathSet(const netlist::Netlist& netlist, std::vector<TimingPath> paths);

  std::size_t size() const { return paths_.size(); }
  const TimingPath& path(std::size_t i) const { return paths_[i]; }

  /// Indices of monitored paths that traverse `net` (possibly empty),
  /// ascending. A CSR slice; iteration order matches the old per-net lists.
  std::span<const std::uint32_t> paths_of_net(netlist::NetId net) const {
    // Strict bound also rejects the kNoNet sentinel (uint32 -1), which a
    // `net + 1` formulation would wrap past.
    PTS_DCHECK(net_path_offsets_.size() > 0 &&
               net < net_path_offsets_.size() - 1);
    return {net_paths_.data() + net_path_offsets_[net],
            net_paths_.data() + net_path_offsets_[net + 1]};
  }

  /// Placement-independent delay of every path (SoA copy of
  /// TimingPath::const_delay), indexed by path.
  std::span<const double> const_delays() const { return const_delay_; }

  /// True when at least one monitored path traverses `net` (O(1)). A net
  /// for which this is false is an exact no-op in every wire-sum fold, so
  /// callers may drop its NetChanges without perturbing any delay bit.
  bool net_on_path(netlist::NetId net) const {
    PTS_DCHECK(net_path_offsets_.size() > 0 &&
               net < net_path_offsets_.size() - 1);
    return net_path_offsets_[net + 1] > net_path_offsets_[net];
  }
  /// Number of distinct nets traversed by any monitored path — the per-swap
  /// worst case for timing-relevant NetChanges (scratch sizing).
  std::size_t num_path_nets() const { return num_path_nets_; }

 private:
  std::vector<TimingPath> paths_;
  std::vector<std::uint32_t> net_path_offsets_;  // num_nets + 1
  std::vector<std::uint32_t> net_paths_;         // flat reverse index
  std::vector<double> const_delay_;              // per path
  std::size_t num_path_nets_ = 0;                // nets with >= 1 path
};

/// Extracts up to `k` monitored paths: per primary output, the critical
/// path under uniform net delay; keeps the k largest by constant delay.
std::shared_ptr<const PathSet> extract_critical_paths(
    const netlist::Netlist& netlist, std::size_t k, const DelayModel& model);

/// Incrementally maintained per-path wire lengths and the resulting delay
/// estimate. One instance per worker (cheap: O(K) doubles).
class PathTimer {
 public:
  PathTimer(std::shared_ptr<const PathSet> paths, const placement::HpwlState& hpwl,
            DelayModel model);

  /// Non-owning overload: the caller guarantees `paths` outlives this timer
  /// (e.g. the goal-calibration timer in Evaluator, whose PathSet member
  /// outlives the temporary). Implemented with the shared_ptr aliasing
  /// constructor — an empty control block, no refcount, no deleter — so the
  /// lifetime contract is explicit in the signature instead of hidden in a
  /// no-op custom deleter at the call site.
  PathTimer(const PathSet& paths, const placement::HpwlState& hpwl,
            DelayModel model);

  /// Folds one net's HPWL change into the affected path wire sums.
  void apply_net_change(netlist::NetId net, double old_hpwl, double new_hpwl);

  /// Probe counterpart of apply_net_change()+max_delay(): returns the delay
  /// estimate that applying `changes` would produce, computed on a scratch
  /// copy of the wire sums (committed sums untouched; no allocation once
  /// the scratch reaches K doubles). Folds the changes in the exact order
  /// apply_net_change() would and maxes in max_delay()'s loop order, so the
  /// result is bit-identical to the committed sequence.
  double peek_delta(std::span<const placement::NetChange> changes);

  /// Batched peek_delta(): `all_changes` holds the concatenated NetChange
  /// runs of N candidates, candidate i owning [offsets[i], offsets[i+1]);
  /// `out_delays[i]` receives exactly what peek_delta(run_i) would return
  /// (same scratch-copy, same fold order, same reduction — bit-identical).
  /// offsets.size() must be out_delays.size() + 1.
  void peek_delta_batch(std::span<const placement::NetChange> all_changes,
                        std::span<const std::uint32_t> offsets,
                        std::span<double> out_delays);

  /// Promotes the scratch sums of the immediately preceding peek_delta().
  /// Only valid directly after peek_delta() with no intervening mutation.
  void commit_peek();

  /// Re-derives all wire sums from `hpwl` (drift control / after rebuild).
  void rebuild(const placement::HpwlState& hpwl);

  /// Estimated circuit delay: max over monitored paths. O(K).
  double max_delay() const;

  /// Committed per-path wire sums (checkpoint capture). Like the HPWL
  /// total, these drift from a from-scratch rebuild, so bit-identical
  /// resume restores the exact checkpointed doubles.
  std::span<const double> wire_sums() const { return wire_sum_; }

  void restore_wire_sums(std::span<const double> sums) {
    PTS_CHECK(sums.size() == wire_sum_.size());
    std::copy(sums.begin(), sums.end(), wire_sum_.begin());
  }

  double path_delay(std::size_t i) const {
    PTS_DCHECK(i < wire_sum_.size());
    return const_delay_[i] + model_.wire_delay(wire_sum_[i]);
  }

  const PathSet& paths() const { return *paths_; }

 private:
  std::shared_ptr<const PathSet> paths_;
  std::span<const double> const_delay_;  // flat view into *paths_
  DelayModel model_;
  std::vector<double> wire_sum_;
  std::vector<double> peek_sum_;  // scratch for peek_delta/commit_peek
};

}  // namespace pts::timing
