// Circuit netlist representation.
//
// A netlist is a DAG of cells (primary-input pads, logic gates, primary-
// output pads) connected by nets. Every net has exactly one driver cell and
// one or more sink cells. Gates are the movable objects during placement;
// pads are fixed on the layout periphery.
//
// The representation is index-based (CellId / NetId are dense indices) so
// placement and cost code can use flat arrays.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/ids.hpp"
#include "netlist/topology.hpp"
#include "support/check.hpp"

namespace pts::netlist {

enum class CellKind : std::uint8_t {
  PrimaryInput,   ///< pad; drives one net, fixed on the periphery
  Gate,           ///< movable standard cell
  PrimaryOutput,  ///< pad; sinks one net, fixed on the periphery
};

struct Cell {
  std::string name;
  CellKind kind = CellKind::Gate;
  /// Layout width in abstract grid units (pads have width 1).
  int width = 1;
  /// Intrinsic switching delay of the cell (ns).
  double intrinsic_delay = 1.0;
  /// Additional delay per fanout sink on the driven net (ns).
  double load_factor = 0.1;
  /// Net driven by this cell (kNoNet for primary outputs).
  NetId out_net = kNoNet;
  /// Nets feeding this cell's input pins (empty for primary inputs).
  std::vector<NetId> in_nets;

  bool movable() const { return kind == CellKind::Gate; }
};

struct Net {
  std::string name;
  CellId driver = kNoCell;
  std::vector<CellId> sinks;
  /// Relative importance (switching activity); scales wirelength cost.
  double weight = 1.0;

  std::size_t pin_count() const { return sinks.size() + 1; }
};

/// Immutable, validated netlist. Build via NetlistBuilder or the generator.
class Netlist {
 public:
  const std::string& name() const { return name_; }

  std::size_t num_cells() const { return cells_.size(); }
  std::size_t num_nets() const { return nets_.size(); }
  std::size_t num_movable() const { return movable_.size(); }
  std::size_t num_pins() const;

  const Cell& cell(CellId id) const {
    PTS_DCHECK(id < cells_.size());
    return cells_[id];
  }
  const Net& net(NetId id) const {
    PTS_DCHECK(id < nets_.size());
    return nets_[id];
  }
  const std::vector<Cell>& cells() const { return cells_; }
  const std::vector<Net>& nets() const { return nets_; }

  /// Ids of movable cells (gates), in id order.
  const std::vector<CellId>& movable_cells() const { return movable_; }
  /// Ids of pads (PI + PO), in id order.
  const std::vector<CellId>& pad_cells() const { return pads_; }

  /// All nets incident to `id` (out_net first, then in_nets), deduplicated.
  /// Thin forward over the CSR topology storage.
  std::span<const NetId> nets_of(CellId id) const { return topology_.nets_of(id); }

  /// Flat CSR view of the pin graph plus SoA copies of the hot fields.
  /// Built once at finalize(); immutable and shareable across workers.
  const Topology& topology() const { return topology_; }

  std::optional<CellId> find_cell(std::string_view name) const;

  /// Total movable-cell width (layout sizing input).
  std::int64_t total_movable_width() const { return total_movable_width_; }

  /// Cells in a topological order (drivers before sinks). Guaranteed to
  /// exist: construction rejects cyclic netlists.
  const std::vector<CellId>& topological_order() const { return topo_; }

  /// Longest path length in cells (logic depth), useful for generators and
  /// sanity checks.
  std::size_t logic_depth() const { return logic_depth_; }

 private:
  friend class NetlistBuilder;
  Netlist() = default;

  void finalize();  // builds indexes; PTS_CHECKs structural invariants

  std::string name_;
  std::vector<Cell> cells_;
  std::vector<Net> nets_;
  std::vector<CellId> movable_;
  std::vector<CellId> pads_;
  Topology topology_;
  std::vector<CellId> topo_;
  std::int64_t total_movable_width_ = 0;
  std::size_t logic_depth_ = 0;
};

/// Incremental netlist construction with validation at build() time.
///
/// Usage:
///   NetlistBuilder b("adder");
///   auto a = b.add_primary_input("a");
///   auto g = b.add_gate("g1", /*width=*/2, /*delay=*/0.8, /*load=*/0.05);
///   auto n = b.add_net("n1", a);
///   b.connect_input(n, g);
///   ...
///   Netlist nl = std::move(b).build();
class NetlistBuilder {
 public:
  explicit NetlistBuilder(std::string name);

  CellId add_primary_input(std::string name);
  CellId add_primary_output(std::string name);
  CellId add_gate(std::string name, int width, double intrinsic_delay,
                  double load_factor);

  /// Creates a net driven by `driver` (PI or gate). A gate may drive only
  /// one net.
  NetId add_net(std::string name, CellId driver, double weight = 1.0);

  /// Adds `sink` (gate or PO) as a sink of `net`.
  void connect_input(NetId net, CellId sink);

  std::size_t num_cells() const { return netlist_.cells_.size(); }
  std::size_t num_nets() const { return netlist_.nets_.size(); }

  /// Validates and finalizes. Checks: every net has >= 1 sink, every gate
  /// has >= 1 input and drives a net, every PO sinks exactly one net, the
  /// cell graph is acyclic, and names are unique.
  Netlist build() &&;

 private:
  CellId add_cell(std::string name, CellKind kind, int width, double delay,
                  double load);

  Netlist netlist_;
};

}  // namespace pts::netlist
