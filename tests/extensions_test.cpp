// Tests for the extension modules: slack analysis, long-term frequency
// memory, circuit analysis, SVG rendering.
#include <gtest/gtest.h>

#include <cmath>

#include "cost/evaluator.hpp"
#include "netlist/analysis.hpp"
#include "netlist/benchmarks.hpp"
#include "netlist/generator.hpp"
#include "placement/svg.hpp"
#include "tabu/frequency.hpp"
#include "tabu/search.hpp"
#include "timing/slack.hpp"

namespace pts {
namespace {

using netlist::CellId;
using netlist::GeneratorConfig;
using netlist::Netlist;
using placement::HpwlState;
using placement::Layout;
using placement::Placement;

Netlist circuit(std::size_t gates = 80, std::uint64_t seed = 7) {
  GeneratorConfig config;
  config.num_gates = gates;
  config.seed = seed;
  return generate_circuit(config);
}

// ---------------------------------------------------------------------------
// Slack analysis.

TEST(Slack, CriticalPathHasZeroSlackAtOwnTarget) {
  const Netlist nl = circuit();
  const Layout layout(nl);
  Rng rng(1);
  const Placement p = Placement::random(nl, layout, rng);
  HpwlState hpwl(p);
  const timing::DelayModel model;
  const auto slack = timing::analyze_slack(nl, hpwl, model);

  EXPECT_NEAR(slack.worst_slack, 0.0, 1e-9);
  // Every slack is non-negative when the target is the critical delay.
  const auto sta = timing::run_sta(nl, hpwl, model);
  for (CellId cell : sta.critical_path) {
    EXPECT_NEAR(slack.slack[cell], 0.0, 1e-9) << "on-path cell " << cell;
  }
  for (CellId cell = 0; cell < nl.num_cells(); ++cell) {
    if (std::isfinite(slack.slack[cell])) {
      EXPECT_GE(slack.slack[cell], -1e-9);
    }
  }
}

TEST(Slack, TighterTargetGoesNegative) {
  const Netlist nl = circuit();
  const Layout layout(nl);
  Rng rng(2);
  const Placement p = Placement::random(nl, layout, rng);
  HpwlState hpwl(p);
  const timing::DelayModel model;
  const auto relaxed = timing::analyze_slack(nl, hpwl, model);
  const auto tight =
      timing::analyze_slack(nl, hpwl, model, relaxed.critical_delay * 0.8);
  EXPECT_LT(tight.worst_slack, 0.0);
  EXPECT_NEAR(tight.worst_slack, -0.2 * relaxed.critical_delay, 1e-6);
}

TEST(Slack, CriticalityBoundsAndCoverage) {
  const Netlist nl = circuit(150, 9);
  const Layout layout(nl);
  Rng rng(3);
  const Placement p = Placement::random(nl, layout, rng);
  HpwlState hpwl(p);
  const timing::DelayModel model;
  const auto slack = timing::analyze_slack(nl, hpwl, model);
  double max_crit = 0.0;
  for (double c : slack.net_criticality) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    max_crit = std::max(max_crit, c);
  }
  // The binding edges of the critical path carry criticality 1.
  EXPECT_NEAR(max_crit, 1.0, 1e-9);
}

TEST(Slack, CriticalityWeightsScaleWithStrength) {
  const Netlist nl = circuit(60, 4);
  const Layout layout(nl);
  Rng rng(4);
  const Placement p = Placement::random(nl, layout, rng);
  HpwlState hpwl(p);
  const timing::DelayModel model;
  const auto slack = timing::analyze_slack(nl, hpwl, model);
  const auto weights = timing::criticality_weights(slack, 2.0, 2.0);
  ASSERT_EQ(weights.size(), nl.num_nets());
  for (std::size_t net = 0; net < weights.size(); ++net) {
    EXPECT_GE(weights[net], 1.0);
    EXPECT_LE(weights[net], 3.0 + 1e-12);
  }
  // Strength 0 gives uniform weights.
  for (double w : timing::criticality_weights(slack, 0.0)) {
    EXPECT_DOUBLE_EQ(w, 1.0);
  }
}

// ---------------------------------------------------------------------------
// Frequency memory.

TEST(FrequencyMemoryTest, OffModeIsNeutral) {
  tabu::FrequencyMemory memory(10, {tabu::LongTermMode::Off, 0.1});
  memory.record({1, 2}, true);
  EXPECT_DOUBLE_EQ(memory.adjusted_cost({1, 2}, 0.5), 0.5);
  EXPECT_FALSE(memory.active());
}

TEST(FrequencyMemoryTest, DiversifyPenalizesActiveCells) {
  tabu::FrequencyMemory memory(10, {tabu::LongTermMode::Diversify, 0.1});
  for (int i = 0; i < 5; ++i) memory.record({1, 2}, false);
  memory.record({3, 4}, false);
  const double busy = memory.adjusted_cost({1, 2}, 0.5);
  const double quiet = memory.adjusted_cost({5, 6}, 0.5);
  const double mixed = memory.adjusted_cost({1, 6}, 0.5);
  EXPECT_GT(busy, quiet);
  EXPECT_GT(busy, mixed);
  EXPECT_GT(mixed, quiet);
  EXPECT_DOUBLE_EQ(quiet, 0.5);           // untouched cells: no penalty
  EXPECT_NEAR(busy, 0.5 + 0.1, 1e-12);    // both cells at max frequency
}

TEST(FrequencyMemoryTest, IntensifyRewardsImprovingCells) {
  tabu::FrequencyMemory memory(10, {tabu::LongTermMode::Intensify, 0.1});
  memory.record({1, 2}, true);
  memory.record({3, 4}, false);  // non-improving: no reward for 3,4
  EXPECT_LT(memory.adjusted_cost({1, 2}, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(memory.adjusted_cost({3, 4}, 0.5), 0.5);
}

TEST(FrequencyMemoryTest, ResetClearsEverything) {
  tabu::FrequencyMemory memory(10, {tabu::LongTermMode::Diversify, 0.1});
  memory.record({1, 2}, true);
  EXPECT_EQ(memory.transitions(), 1u);
  EXPECT_EQ(memory.count(1), 1u);
  memory.reset();
  EXPECT_EQ(memory.transitions(), 0u);
  EXPECT_EQ(memory.count(1), 0u);
  EXPECT_DOUBLE_EQ(memory.adjusted_cost({1, 2}, 0.5), 0.5);
}

TEST(FrequencyMemoryTest, SearchIntegrationRecordsTransitions) {
  const Netlist nl = circuit(40, 11);
  const Layout layout(nl);
  cost::CostParams params;
  Rng rng(5);
  Placement p = Placement::random(nl, layout, rng);
  auto paths =
      timing::extract_critical_paths(nl, params.num_paths, params.delay_model);
  const auto goals = cost::Evaluator::calibrate_goals(p, *paths, params);
  cost::Evaluator eval(std::move(p), std::move(paths), params, goals);

  tabu::TabuParams tp;
  tp.iterations = 60;
  tp.frequency.mode = tabu::LongTermMode::Diversify;
  tabu::TabuSearch search(eval, tp, Rng(6));
  const auto result = search.run();
  EXPECT_GT(search.frequency_memory().transitions(), 0u);
  EXPECT_LT(result.best_cost, 0.75);
}

TEST(FrequencyMemoryTest, DiversifyModeSpreadsCellActivity) {
  // With a diversifying long-term memory, cell participation is more even
  // than without (lower max-count with the same number of transitions is
  // not guaranteed per-seed, so compare aggregate dispersion over seeds).
  const Netlist nl = circuit(24, 13);
  const Layout layout(nl);
  cost::CostParams params;
  auto run_dispersion = [&](tabu::LongTermMode mode) {
    double dispersion = 0.0;
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      Rng rng(40 + seed);
      Placement p = Placement::random(nl, layout, rng);
      auto paths = timing::extract_critical_paths(nl, params.num_paths,
                                                  params.delay_model);
      const auto goals = cost::Evaluator::calibrate_goals(p, *paths, params);
      cost::Evaluator eval(std::move(p), std::move(paths), params, goals);
      tabu::TabuParams tp;
      tp.iterations = 120;
      tp.frequency.mode = mode;
      tp.frequency.strength = 0.05;
      tabu::TabuSearch search(eval, tp, Rng(7 + seed));
      search.run();
      const auto& memory = search.frequency_memory();
      double mean = 0.0, max = 0.0;
      for (CellId c : nl.movable_cells()) {
        mean += static_cast<double>(memory.count(c));
        max = std::max(max, static_cast<double>(memory.count(c)));
      }
      mean /= static_cast<double>(nl.num_movable());
      if (mode == tabu::LongTermMode::Off) {
        // Off mode still records; ratio is comparable.
      }
      dispersion += max / std::max(mean, 1e-9);
    }
    return dispersion / 3.0;
  };
  // Not asserting a strict inequality (stochastic); check both run and
  // produce sane ratios.
  const double with = run_dispersion(tabu::LongTermMode::Diversify);
  const double without = run_dispersion(tabu::LongTermMode::Off);
  EXPECT_GT(with, 1.0);
  EXPECT_GT(without, 1.0);
}

// ---------------------------------------------------------------------------
// Circuit analysis.

TEST(Analysis, CountsMatchNetlist) {
  const Netlist nl = netlist::make_benchmark("highway");
  const auto stats = netlist::analyze_circuit(nl);
  EXPECT_EQ(stats.gates, 56u);
  EXPECT_EQ(stats.cells, nl.num_cells());
  EXPECT_EQ(stats.nets, nl.num_nets());
  EXPECT_EQ(stats.pins, nl.num_pins());
  EXPECT_EQ(stats.primary_inputs + stats.primary_outputs,
            nl.pad_cells().size());
  EXPECT_EQ(stats.logic_depth, nl.logic_depth());
  EXPECT_GT(stats.avg_pins_per_net, 1.9);  // every net has >= 2 pins
}

TEST(Analysis, DistributionsAreConsistent) {
  const Netlist nl = circuit(200, 21);
  const auto stats = netlist::analyze_circuit(nl);
  // Histogram totals match population sizes.
  std::size_t net_total = 0;
  for (std::size_t h : stats.net_degree.histogram) net_total += h;
  EXPECT_EQ(net_total, stats.nets);
  std::size_t fanin_total = 0;
  for (std::size_t h : stats.gate_fanin.histogram) fanin_total += h;
  EXPECT_EQ(fanin_total, stats.gates);
  EXPECT_GE(stats.gate_fanin.min, 1u);
  EXPECT_LE(stats.gate_fanin.mean, 5.0);
  EXPECT_GE(stats.net_degree.min, 2u);
}

TEST(Analysis, FormatContainsKeyNumbers) {
  const auto stats = netlist::analyze_circuit(circuit(30, 2));
  const std::string text = netlist::format_stats(stats);
  EXPECT_NE(text.find("30 gates"), std::string::npos);
  EXPECT_NE(text.find("logic depth"), std::string::npos);
}

// ---------------------------------------------------------------------------
// SVG rendering.

TEST(Svg, RendersValidDocument) {
  const Netlist nl = circuit(40, 3);
  const Layout layout(nl);
  Rng rng(8);
  const Placement p = Placement::random(nl, layout, rng);
  HpwlState hpwl(p);
  placement::SvgOptions options;
  options.title = "test placement";
  options.flylines = 5;
  const std::string svg = placement::render_svg(p, hpwl, options);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("test placement"), std::string::npos);
  // One rect per movable cell at minimum (plus rows/background).
  std::size_t rects = 0;
  for (std::size_t pos = svg.find("<rect"); pos != std::string::npos;
       pos = svg.find("<rect", pos + 1)) {
    ++rects;
  }
  EXPECT_GE(rects, nl.num_movable());
  // Flylines drawn.
  EXPECT_NE(svg.find("<line"), std::string::npos);
}

TEST(Svg, IntensityChangesColors) {
  const Netlist nl = circuit(10, 5);
  const Layout layout(nl);
  Rng rng(9);
  const Placement p = Placement::random(nl, layout, rng);
  HpwlState hpwl(p);
  placement::SvgOptions hot;
  hot.cell_intensity.assign(nl.num_cells(), 1.0);
  hot.flylines = 0;
  placement::SvgOptions cold;
  cold.cell_intensity.assign(nl.num_cells(), 0.0);
  cold.flylines = 0;
  EXPECT_NE(placement::render_svg(p, hpwl, hot),
            placement::render_svg(p, hpwl, cold));
}

}  // namespace
}  // namespace pts
