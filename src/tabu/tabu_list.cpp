#include "tabu/tabu_list.hpp"

#include "support/check.hpp"

namespace pts::tabu {
namespace {

std::uint64_t cell_key(netlist::CellId cell) {
  // Distinct key space from pair keys: pair keys always have a non-zero
  // high word only when a > 0; tag cell keys with a high sentinel bit.
  return (1ULL << 63) | cell;
}

}  // namespace

TabuList::TabuList(std::size_t tenure, TabuAttribute attribute)
    : tenure_(tenure), attribute_(attribute) {
  PTS_CHECK_MSG(tenure >= 1, "tabu tenure must be at least 1");
}

void TabuList::add_keys(const Move& move) {
  if (attribute_ == TabuAttribute::CellPair) {
    ++counts_[move.key()];
  } else {
    ++counts_[cell_key(move.a)];
    ++counts_[cell_key(move.b)];
  }
}

void TabuList::remove_keys(const Move& move) {
  auto drop = [&](std::uint64_t key) {
    const auto it = counts_.find(key);
    PTS_CHECK(it != counts_.end() && it->second > 0);
    if (--it->second == 0) counts_.erase(it);
  };
  if (attribute_ == TabuAttribute::CellPair) {
    drop(move.key());
  } else {
    drop(cell_key(move.a));
    drop(cell_key(move.b));
  }
}

void TabuList::record(const Move& move) {
  entries_.push_back(move.normalized());
  add_keys(move);
  while (entries_.size() > tenure_) {
    remove_keys(entries_.front());
    entries_.pop_front();
  }
}

bool TabuList::is_tabu(const Move& move) const {
  if (attribute_ == TabuAttribute::CellPair) {
    return counts_.find(move.key()) != counts_.end();
  }
  return counts_.find(cell_key(move.a)) != counts_.end() ||
         counts_.find(cell_key(move.b)) != counts_.end();
}

void TabuList::clear() {
  entries_.clear();
  counts_.clear();
}

std::vector<Move> TabuList::entries() const {
  return {entries_.begin(), entries_.end()};
}

void TabuList::assign(const std::vector<Move>& entries) {
  clear();
  for (const Move& move : entries) record(move);
}

}  // namespace pts::tabu
