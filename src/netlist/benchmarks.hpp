// Benchmark circuit registry.
//
// The paper evaluates on four ISCAS-89 circuits: highway (56 cells),
// c532 (395), c1355 (1451) and c3540 (2243). We reproduce them as seeded
// synthetic circuits of the same movable-cell counts (see DESIGN.md §2 for
// the substitution rationale). `make_benchmark("c532")` always returns the
// same netlist.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "netlist/generator.hpp"
#include "netlist/netlist.hpp"

namespace pts::netlist {

struct BenchmarkInfo {
  std::string name;
  std::size_t cells;            ///< movable cells, as reported in the paper
  std::size_t primary_inputs;
  std::size_t primary_outputs;
  std::uint64_t seed;
};

/// The four circuits of the paper's evaluation, smallest first.
const std::vector<BenchmarkInfo>& paper_benchmarks();

/// The scale-tier circuits (scale10k / scale50k / scale200k), smallest
/// first: the same generator families as the paper circuits but 4x–90x
/// larger, with pad counts and locality window scaled so fanin, net degree
/// and logic depth stay representative as the gate count grows (the
/// statistics contract in DESIGN.md §2). Generation is O(gates).
const std::vector<BenchmarkInfo>& scale_benchmarks();

/// True if `name` is one of the paper's circuits.
bool is_paper_benchmark(std::string_view name);

/// True if `name` is one of the scale-tier circuits.
bool is_scale_benchmark(std::string_view name);

/// Generator configuration used for a named benchmark (exposed so tests can
/// perturb it).
GeneratorConfig benchmark_config(std::string_view name);

/// Builds the named benchmark circuit. PTS_CHECK-fails on unknown names.
Netlist make_benchmark(std::string_view name);

}  // namespace pts::netlist
