// Live demonstration of the heterogeneity mechanism on the threaded
// message-passing runtime (real threads, throttled to machine profiles).
//
// Runs the same search twice on an emulated 12-machine cluster (7 fast /
// 3 medium / 2 slow): once with parents waiting for all children
// (homogeneous run) and once with the paper's half-force rule
// (heterogeneous run). Prints wall-clock makespans — with throttling
// enabled, the half-force run finishes measurably earlier on real threads,
// which is the paper's §4.2 effect end to end.
//
// Usage: heterogeneous_cluster [--circuit highway] [--throttle 2e-5]
#include <cstdio>

#include "experiments/workloads.hpp"
#include "parallel/pts.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"

int main(int argc, char** argv) {
  using namespace pts;
  const Cli cli(argc, argv);
  set_log_level(LogLevel::Warn);

  const std::string name = cli.get("circuit", "highway");
  const auto& circuit = experiments::circuit(name);

  auto config = experiments::base_config(circuit, 3, /*quick=*/true);
  config.num_tsws = 4;
  config.clws_per_tsw = 4;
  // Strong skew + real throttling so the effect is visible in wall time.
  config.cluster = pvm::ClusterConfig::three_class(7, 3, 2, 1.0, 0.5, 0.25, 0.0);
  config.threaded_seconds_per_unit = cli.get_double("throttle", 2e-5);

  std::printf("circuit %s, 4 TSWs x 4 CLWs, cluster: 7 fast / 3 medium / 2 slow\n",
              circuit.name().c_str());
  std::printf("%zu tasks on %zu emulated machines (threaded engine, throttled)\n\n",
              1 + config.num_tsws * (1 + config.clws_per_tsw),
              config.cluster.size());

  config.set_policy(parallel::CollectionPolicy::WaitAll);
  const auto hom = parallel::ParallelTabuSearch(circuit, config).run_threaded();
  std::printf("homogeneous run   (wait-all):   %.3f s wall, best cost %.4f\n",
              hom.makespan, hom.best_cost);

  config.set_policy(parallel::CollectionPolicy::HalfForce);
  const auto het = parallel::ParallelTabuSearch(circuit, config).run_threaded();
  std::printf("heterogeneous run (half-force): %.3f s wall, best cost %.4f\n",
              het.makespan, het.best_cost);

  if (hom.makespan > 0.0) {
    std::printf("\ntime saved by accounting for heterogeneity: %.1f%%\n",
                100.0 * (hom.makespan - het.makespan) / hom.makespan);
  }
  std::printf("(wall times vary with host load; the deterministic virtual-time\n"
              " version of this experiment is bench/fig11_heterogeneity)\n");
  return 0;
}
