#include "tabu/candidate.hpp"

#include "support/check.hpp"

namespace pts::tabu {

std::vector<CellRange> partition_cells(std::size_t num_movable, std::size_t workers) {
  PTS_CHECK(workers >= 1);
  std::vector<CellRange> ranges(workers);
  const std::size_t base = num_movable / workers;
  const std::size_t extra = num_movable % workers;
  std::size_t cursor = 0;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t len = base + (w < extra ? 1 : 0);
    ranges[w] = {cursor, cursor + len};
    cursor += len;
  }
  PTS_CHECK(cursor == num_movable);
  return ranges;
}

Move sample_move(std::span<const netlist::CellId> movable, const CellRange& range,
                 Rng& rng) {
  PTS_CHECK_MSG(movable.size() >= 2, "need at least two movable cells to swap");
  PTS_CHECK_MSG(!range.empty(), "cannot sample from an empty range");
  PTS_CHECK(range.end <= movable.size());

  const auto first_idx =
      range.begin + static_cast<std::size_t>(rng.below(range.size()));
  // Second cell uniform over the whole space, excluding the first.
  auto second_idx = static_cast<std::size_t>(rng.below(movable.size() - 1));
  if (second_idx >= first_idx) ++second_idx;
  return Move{movable[first_idx], movable[second_idx]};
}

}  // namespace pts::tabu
