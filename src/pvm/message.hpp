// Typed message buffers, modeled on PVM's pvm_pk*/pvm_upk* interface.
//
// A Message is a tagged byte buffer written with pack_* calls and read back
// with unpack_* calls in the same order. Each field is prefixed with a
// one-byte type marker so mismatched unpack sequences fail loudly instead
// of silently mis-deserializing (PVM itself would just corrupt the data).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace pts::pvm {

/// Task identifier within a VirtualMachine (0 is the spawning host task).
using TaskId = std::int32_t;
inline constexpr TaskId kNoTask = -1;

/// Public mirror of the private field markers, used by the hardened decode
/// path (peek_field / validate_layout): code that consumes untrusted bytes
/// checks the next field's type before unpacking it, so a schema mismatch
/// becomes a recoverable protocol error instead of a PTS_CHECK abort.
enum class Field : std::uint8_t {
  None = 0,  ///< end of buffer, or an unknown marker byte
  U32,
  U64,
  I64,
  F64,
  Bool,
  Str,
  VecU32,
  VecF64,
};

const char* field_name(Field field);

class Message {
 public:
  Message() = default;
  explicit Message(int tag) : tag_(tag) {}

  int tag() const { return tag_; }
  void set_tag(int tag) { tag_ = tag; }
  TaskId sender() const { return sender_; }
  void set_sender(TaskId sender) { sender_ = sender; }

  std::size_t byte_size() const { return buffer_.size(); }
  bool fully_consumed() const { return cursor_ == buffer_.size(); }
  /// Resets the read cursor so the message can be unpacked again.
  void rewind() { cursor_ = 0; }

  /// Raw encoded payload (what a wire frame carries; see pvm/frame.hpp).
  const std::vector<std::uint8_t>& bytes() const { return buffer_; }
  /// Rebuilds a Message from wire bytes. The payload is adopted verbatim;
  /// run validate_layout() before unpacking anything untrusted.
  static Message from_payload(int tag, std::vector<std::uint8_t> payload);

  // -- hardened decode (untrusted input) ------------------------------------
  // unpack_* PTS_CHECK-aborts on a malformed buffer — correct for intra-
  // process mailboxes where a mismatch is a programming error, fatal for a
  // daemon fed attacker-controlled bytes. Untrusted consumers first call
  // validate_layout() (every field complete and in-bounds), then gate each
  // unpack on peek_field(); after both checks no unpack_* can abort.

  /// Type of the next unread field without consuming it; Field::None at the
  /// end of the buffer or on an unrecognized marker byte.
  Field peek_field() const;
  /// Walks the whole buffer (independent of the read cursor): true iff every
  /// field has a known marker and its payload lies fully inside the buffer.
  bool validate_layout() const;

  // -- packing ------------------------------------------------------------
  void pack_u64(std::uint64_t v) { pack_scalar(Marker::U64, v); }
  void pack_i64(std::int64_t v) { pack_scalar(Marker::I64, v); }
  void pack_u32(std::uint32_t v) { pack_scalar(Marker::U32, v); }
  void pack_double(double v) { pack_scalar(Marker::F64, v); }
  void pack_bool(bool v) { pack_scalar(Marker::Bool, static_cast<std::uint8_t>(v)); }
  void pack_string(const std::string& s);
  void pack_u32_vector(const std::vector<std::uint32_t>& v);
  void pack_double_vector(const std::vector<double>& v);

  // -- unpacking (order must mirror packing) --------------------------------
  std::uint64_t unpack_u64() { return unpack_scalar<std::uint64_t>(Marker::U64); }
  std::int64_t unpack_i64() { return unpack_scalar<std::int64_t>(Marker::I64); }
  std::uint32_t unpack_u32() { return unpack_scalar<std::uint32_t>(Marker::U32); }
  double unpack_double() { return unpack_scalar<double>(Marker::F64); }
  bool unpack_bool() { return unpack_scalar<std::uint8_t>(Marker::Bool) != 0; }
  std::string unpack_string();
  std::vector<std::uint32_t> unpack_u32_vector();
  std::vector<double> unpack_double_vector();

 private:
  enum class Marker : std::uint8_t {
    U32 = 1,
    U64,
    I64,
    F64,
    Bool,
    Str,
    VecU32,
    VecF64,
  };

  void put_marker(Marker m) { buffer_.push_back(static_cast<std::uint8_t>(m)); }
  void expect_marker(Marker m);
  void put_raw(const void* data, std::size_t n);
  void get_raw(void* data, std::size_t n);

  template <typename T>
  void pack_scalar(Marker m, T v) {
    put_marker(m);
    put_raw(&v, sizeof(T));
  }
  template <typename T>
  T unpack_scalar(Marker m) {
    expect_marker(m);
    T v;
    get_raw(&v, sizeof(T));
    return v;
  }

  int tag_ = 0;
  TaskId sender_ = kNoTask;
  std::vector<std::uint8_t> buffer_;
  std::size_t cursor_ = 0;
};

}  // namespace pts::pvm
