// Scale-tier macro benchmark: proves the system stays linear at 15x–90x the
// paper's largest circuit. For each scale circuit (scale10k/scale50k, and
// scale200k under --full) it reports:
//
//   build      netlist generation + finalize (CSR topology) wall time
//   setup      layout + random placement + K-paths + evaluator construction
//   probe      steady-state trial-probe throughput (the search inner loop)
//   engines    a short tabu / anneal / parallel-sim run through the solver
//              front door: wall time, makespan (virtual seconds for
//              parallel-sim), cost before/after, and tt50 — the engine-clock
//              instant the run had realized half of its own improvement
//              (only parallel engines record a best-vs-time series).
//
// Tiers follow bench_common: --smoke (CI; scale10k only, clamped budgets),
// default (scale10k + scale50k), --full (adds scale200k). --circuit
// restricts to one circuit (any benchmark name, paper circuits included).
//
// Each circuit additionally emits one `MACRO {json}` line; bench/dump_json.py
// parses and schema-validates those into the BENCH_*.json perf trail.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cost/evaluator.hpp"
#include "netlist/benchmarks.hpp"
#include "placement/placement.hpp"
#include "solver/solver.hpp"
#include "support/stopwatch.hpp"
#include "timing/paths.hpp"

namespace {

using namespace pts;

struct EngineReport {
  std::string name;
  double wall_ms = 0.0;
  double makespan_s = 0.0;
  double initial_cost = 0.0;
  double best_cost = 0.0;
  double best_quality = 0.0;
  double tt50_s = -1.0;  ///< engine clock to half of the run's improvement
};

EngineReport run_engine(const netlist::Netlist& nl, const std::string& engine,
                        const bench::BenchOptions& options) {
  solver::SolveSpec spec = experiments::base_spec(nl, engine, /*seed=*/1,
                                                  /*quick=*/true);
  // Short fixed budgets: the point is "completes and improves at scale",
  // not converged quality. Traces off where they would be per-move.
  spec.tabu.iterations = options.smoke ? 10 : 40;
  spec.tabu.trace_stride = 0;
  spec.anneal.moves_per_temp = options.smoke ? 500 : 2000;
  spec.anneal.cooling = 0.80;
  spec.anneal.trace_stride = 0;
  bench::apply_scale(spec.parallel, options);

  EngineReport report;
  report.name = engine;
  const Stopwatch watch;
  const solver::SolveResult result = solver::Solver().solve(spec);
  report.wall_ms = watch.millis();
  report.makespan_s = result.makespan;
  report.initial_cost = result.initial_cost;
  report.best_cost = result.best_cost;
  report.best_quality = result.best_quality;
  if (result.best_vs_time.size() > 0 && result.best_cost < result.initial_cost) {
    report.tt50_s = result.time_to_cost(
        experiments::improvement_threshold(result, 0.5));
  }
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::parse_options(argc, argv);
  // Scale-tier circuit selection (parse_options defaults target the paper
  // circuits); an explicit --circuit always wins.
  const Cli cli(argc, argv);
  if (!cli.has("circuit")) {
    if (options.smoke) {
      options.circuits = {"scale10k"};
    } else if (cli.get_flag("full")) {
      options.circuits = experiments::scale_circuit_names();  // + scale200k
    } else {
      options.circuits = {"scale10k", "scale50k"};
    }
  }

  bench::print_header("macro_scale",
                      "build / probe / time-to-quality at 10k-200k gates");
  std::printf("%-10s %10s %10s %12s  %s\n", "circuit", "build ms", "setup ms",
              "probe ns/op", "engine runs (wall ms | best cost | tt50 s)");

  for (const std::string& name : options.circuits) {
    Stopwatch watch;
    const netlist::Netlist nl = netlist::make_benchmark(name);
    const double build_ms = watch.millis();

    watch.reset();
    const placement::Layout layout(nl);
    cost::CostParams params;
    Rng rng(1);
    auto placement = placement::Placement::random(nl, layout, rng);
    auto paths =
        timing::extract_critical_paths(nl, params.num_paths, params.delay_model);
    const cost::FuzzyGoals goals =
        cost::Evaluator::calibrate_goals(placement, *paths, params);
    cost::Evaluator eval(std::move(placement), std::move(paths), params, goals);
    const double setup_ms = watch.millis();

    // Steady-state probe throughput over random candidate swaps (warm-up
    // first so every scratch buffer reaches its high-water mark).
    const auto& movable = nl.movable_cells();
    Rng probe_rng(2);
    const std::size_t warmup = 1000;
    const std::size_t probes = options.smoke ? 20'000 : 50'000;
    for (std::size_t i = 0; i < warmup; ++i) {
      const auto [ia, ib] = probe_rng.distinct_pair(movable.size());
      eval.probe_swap(movable[ia], movable[ib]);
    }
    watch.reset();
    double sink = 0.0;
    for (std::size_t i = 0; i < probes; ++i) {
      const auto [ia, ib] = probe_rng.distinct_pair(movable.size());
      sink += eval.probe_swap(movable[ia], movable[ib]);
    }
    const double probe_ns = watch.seconds() * 1e9 / static_cast<double>(probes);

    std::vector<EngineReport> engines;
    for (const char* engine : {"tabu", "anneal", "parallel-sim"}) {
      engines.push_back(run_engine(nl, engine, options));
    }

    std::printf("%-10s %10.1f %10.1f %12.1f  ", name.c_str(), build_ms,
                setup_ms, probe_ns);
    for (const EngineReport& e : engines) {
      std::printf("%s: %.0f | %.4f | %.3g   ", e.name.c_str(), e.wall_ms,
                  e.best_cost, e.tt50_s);
    }
    std::printf("(probe sink %.3g)\n", sink);

    // Machine-readable line for bench/dump_json.py (schema-validated there).
    std::printf(
        "MACRO {\"circuit\":\"%s\",\"gates\":%zu,\"nets\":%zu,\"pins\":%zu,"
        "\"logic_depth\":%zu,\"build_ms\":%.3f,\"setup_ms\":%.3f,"
        "\"probe_ns\":%.3f,\"engines\":{",
        name.c_str(), nl.num_movable(), nl.num_nets(), nl.num_pins(),
        nl.logic_depth(), build_ms, setup_ms, probe_ns);
    for (std::size_t i = 0; i < engines.size(); ++i) {
      const EngineReport& e = engines[i];
      std::printf(
          "%s\"%s\":{\"wall_ms\":%.3f,\"makespan_s\":%.6f,"
          "\"initial_cost\":%.9g,\"best_cost\":%.9g,\"best_quality\":%.9g,"
          "\"tt50_s\":%.6f}",
          i == 0 ? "" : ",", e.name.c_str(), e.wall_ms, e.makespan_s,
          e.initial_cost, e.best_cost, e.best_quality, e.tt50_s);
    }
    std::printf("}}\n");
  }
  return 0;
}
