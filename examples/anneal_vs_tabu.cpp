// Comparing tabu search against the memoryless heuristics the paper's
// introduction contrasts it with: steepest-descent local search (gets
// trapped in local optima) and simulated annealing, plus the parallel TS.
// All methods share the same cost model, initial solution and a roughly
// equal move-evaluation budget.
//
// Usage: anneal_vs_tabu [--circuit c532] [--budget 20000]
#include <cstdio>

#include "baselines/annealing.hpp"
#include "baselines/constructive.hpp"
#include "baselines/local_search.hpp"
#include "experiments/workloads.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"
#include "parallel/pts.hpp"
#include "tabu/search.hpp"

namespace {

std::unique_ptr<pts::cost::Evaluator> fresh_eval(
    const pts::netlist::Netlist& nl, const pts::placement::Layout& layout,
    const pts::cost::FuzzyGoals& goals,
    const std::vector<pts::netlist::CellId>& slots) {
  pts::cost::CostParams params;
  auto paths = pts::timing::extract_critical_paths(nl, params.num_paths,
                                                   params.delay_model);
  pts::placement::Placement p(nl, layout);
  p.assign_slots(slots);
  return std::make_unique<pts::cost::Evaluator>(std::move(p), std::move(paths),
                                                params, goals);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pts;
  const Cli cli(argc, argv);
  set_log_level(LogLevel::Warn);

  const std::string name = cli.get("circuit", "c532");
  const auto& circuit = experiments::circuit(name);
  const placement::Layout layout(circuit);
  const auto budget = static_cast<std::size_t>(cli.get_int("budget", 20000));

  // Shared initial solution and goals.
  Rng rng(5);
  const auto initial = baselines::random_placement(circuit, layout, rng);
  cost::CostParams cost_params;
  auto paths = timing::extract_critical_paths(circuit, cost_params.num_paths,
                                              cost_params.delay_model);
  const auto goals =
      cost::Evaluator::calibrate_goals(initial, *paths, cost_params);
  const auto slots = initial.slots();

  std::printf("circuit %s, %zu move evaluations per method\n\n",
              circuit.name().c_str(), budget);
  std::printf("%-22s %10s %10s\n", "method", "best cost", "quality");
  std::printf("--------------------------------------------\n");
  {
    auto eval = fresh_eval(circuit, layout, goals, slots);
    std::printf("%-22s %10.4f %10.4f\n", "initial (random)", eval->cost(),
                eval->quality());
  }
  {
    auto eval = fresh_eval(circuit, layout, goals, slots);
    baselines::LocalSearchParams params;
    params.candidates_per_iteration = 8;
    params.max_iterations = budget / params.candidates_per_iteration;
    Rng r(21);
    const auto result = baselines::local_search(*eval, params, r);
    std::printf("%-22s %10.4f %10.4f  (%s after %zu iterations)\n",
                "local search", result.best_cost, result.best_quality,
                result.converged ? "converged" : "budget out", result.iterations);
  }
  {
    auto eval = fresh_eval(circuit, layout, goals, slots);
    baselines::AnnealParams params;
    params.moves_per_temp = circuit.num_movable();
    // Pick the cooling rate so the schedule roughly matches the budget.
    params.cooling = 0.9;
    Rng r(22);
    const auto result = baselines::anneal(*eval, params, r);
    std::printf("%-22s %10.4f %10.4f  (%zu moves, %.0f%% accepted)\n",
                "simulated annealing", result.best_cost, result.best_quality,
                result.moves_tried,
                100.0 * static_cast<double>(result.moves_accepted) /
                    static_cast<double>(result.moves_tried));
  }
  {
    auto eval = fresh_eval(circuit, layout, goals, slots);
    tabu::TabuParams params;
    const std::size_t per_iter =
        params.compound.width * params.compound.depth;
    params.iterations = budget / per_iter;
    tabu::TabuSearch search(*eval, params, Rng(23));
    const auto result = search.run();
    std::printf("%-22s %10.4f %10.4f  (%zu iterations)\n", "tabu search (seq)",
                result.best_cost, result.best_quality, result.stats.iterations);
  }
  {
    auto config = experiments::base_config(circuit, 5, /*quick=*/false);
    config.num_tsws = 4;
    config.clws_per_tsw = 2;
    // Match the total budget across all workers.
    const std::size_t per_local = config.num_tsws * config.clws_per_tsw *
                                  config.tabu.compound.width *
                                  config.tabu.compound.depth;
    config.local_iterations = std::max<std::size_t>(1, budget / per_local / 4);
    config.global_iterations = 4;
    const auto result =
        parallel::ParallelTabuSearch(circuit, config).run_sim();
    std::printf("%-22s %10.4f %10.4f  (4x2 workers, virtual makespan %.0f)\n",
                "parallel tabu search", result.best_cost, result.best_quality,
                result.makespan);
  }
  std::printf("\n(the parallel run spends the same total work in ~1/6 the\n"
              " virtual time; see bench/ for the paper's figures)\n");
  return 0;
}
