// Deterministic virtual-time engine for the parallel tabu search.
//
// Executes exactly the algorithm of the threaded engine — same worker state
// machines, same selection/tabu logic, same collection policies — but on a
// discrete-event virtual clock instead of real threads. Every CLW trial is
// charged `trial_work / machine_speed` (jittered) virtual seconds on the
// machine the task is bound to; the half-force policy cuts stragglers at
// the exact virtual instant the threshold report count is reached, and a
// cut CLW reports the best compound prefix it had completed *by that
// instant* (ClwSearch records per-step prefix snapshots for this).
//
// This is the engine behind every figure bench: on a one-core host, real
// threads cannot exhibit parallel speedup, but the paper's speedup and
// runtime shapes are fully determined by work/speed ratios and collection
// policy, which virtual time reproduces deterministically (DESIGN.md §2,5).
//
// Machine contention: when the search spawns more worker tasks (TSWs +
// CLWs) than the cluster has machines, co-resident workers time-share. The
// engine models this statically: a worker bound to a machine shared by k
// workers runs at speed/k (SimCosts::model_contention). This is what makes
// adding TSWs beyond the cluster capacity counter-productive — the paper's
// Figure 8 "critical point" at 4 TSWs on 12 machines.
//
// Fault tolerance: PtsConfig::faults scripts TSW stall/death faults
// (support/fault.hpp). A dead TSW stops producing reports; the master
// declares any TSW whose report would arrive more than
// `faults.report_deadline` virtual seconds after the earliest arrival dead,
// removes it permanently, and re-partitions the movable cells among the
// survivors (their diversification ranges), so the search completes on the
// remaining workers. The recovery is fully deterministic given the script;
// an empty script leaves the engine on its historical code path, so
// fault-free trajectories are bit-identical to the goldens.
//
// Simulation fidelity notes (documented deviations, none affect reported
// results):
//  - A cut worker's RNG stream advances as if it had finished its
//    investigation; only its *report* is truncated to the cutoff.
//  - A cut TSW's tabu list may contain post-cutoff entries when its best
//    snapshot wins the broadcast; the paper does not specify this case.
//  - Contention is static (idle phases not credited back).
#pragma once

#include "parallel/config.hpp"
#include "parallel/worker_logic.hpp"

namespace pts::parallel {

class SimEngine {
 public:
  SimEngine(const netlist::Netlist& netlist, const PtsConfig& config);

  /// Runs the full search and returns the result with virtual-time series.
  PtsResult run();

  /// Like run(), but honors caller stop conditions — checked before the
  /// run and after every non-final global iteration against the *virtual*
  /// clock, so time limits are deterministic — and streams progress
  /// (virtual-time improvements, per-global-iteration ticks) to the
  /// observer. Checks and callbacks are read-only: a run whose conditions
  /// never fire is bit-identical to run().
  PtsResult run(const RunControl& control);

 private:
  struct ClwSlot {
    ClwSearch search;
    Rng algo_rng;                  ///< candidate sampling
    Rng time_rng;                  ///< machine load jitter
    pvm::MachineProfile machine;   ///< effective profile (contention-scaled)
    double base_speed = 1.0;       ///< machine.speed before stall scaling
    std::vector<double> step_end;  ///< per-step completion offsets
    ClwSlot(tabu::CellRange range, const tabu::CompoundParams& params)
        : search(range, params), algo_rng(0), time_rng(0) {}
  };

  struct SimTsw {
    std::unique_ptr<cost::Evaluator> eval;
    std::unique_ptr<TswState> state;
    std::vector<ClwSlot> clws;
    pvm::MachineProfile machine;  ///< effective profile (contention-scaled)
    double base_speed = 1.0;      ///< machine.speed before stall scaling
    Rng time_rng{0};
    double clock = 0.0;      ///< this TSW's virtual time
    double report_time = 0.0;
    bool was_cut = false;
    // Report content for the current global iteration:
    double report_cost = 0.0;
    std::vector<netlist::CellId> report_slots;
    // Fault-injection state (only ever set when config.faults is enabled):
    bool dead_task = false;         ///< Death fault fired; produces no reports
    bool lost = false;              ///< master declared it dead; excluded
    std::size_t stall_left = 0;     ///< global iterations still stalled
    double stall_factor = 1.0;      ///< active slowdown while stalled
  };

  /// Simulates one local iteration of `tsw` (all its CLWs + selection);
  /// advances tsw.clock.
  void run_local_iteration(SimTsw& tsw);

  SearchSetup setup_;
  std::vector<SimTsw> tsws_;
};

}  // namespace pts::parallel
