// Unit and property tests for src/netlist: builder validation, topology,
// generator invariants, text IO round-trip, benchmark registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "netlist/benchmarks.hpp"
#include "netlist/generator.hpp"
#include "netlist/io.hpp"
#include "netlist/netlist.hpp"

namespace pts::netlist {
namespace {

/// pi -> g1 -> g2 -> po, plus pi -> g2 (reconvergent fanout-free chain).
Netlist tiny_chain() {
  NetlistBuilder b("tiny");
  const CellId pi = b.add_primary_input("a");
  const CellId g1 = b.add_gate("g1", 2, 1.0, 0.1);
  const CellId g2 = b.add_gate("g2", 1, 2.0, 0.2);
  const CellId po = b.add_primary_output("z");
  const NetId n0 = b.add_net("n0", pi);
  b.connect_input(n0, g1);
  b.connect_input(n0, g2);
  const NetId n1 = b.add_net("n1", g1);
  b.connect_input(n1, g2);
  const NetId n2 = b.add_net("n2", g2, 2.0);
  b.connect_input(n2, po);
  return std::move(b).build();
}

TEST(NetlistBuilder, BuildsValidChain) {
  const Netlist nl = tiny_chain();
  EXPECT_EQ(nl.num_cells(), 4u);
  EXPECT_EQ(nl.num_nets(), 3u);
  EXPECT_EQ(nl.num_movable(), 2u);
  EXPECT_EQ(nl.pad_cells().size(), 2u);
  EXPECT_EQ(nl.total_movable_width(), 3);
  EXPECT_EQ(nl.logic_depth(), 3u);  // pi -> g1 -> g2 -> po
  EXPECT_EQ(nl.num_pins(), 3u + 2u + 2u);  // n0 fans out to g1 and g2
}

TEST(NetlistBuilder, FindCellByName) {
  const Netlist nl = tiny_chain();
  ASSERT_TRUE(nl.find_cell("g2").has_value());
  EXPECT_EQ(nl.cell(*nl.find_cell("g2")).intrinsic_delay, 2.0);
  EXPECT_FALSE(nl.find_cell("nope").has_value());
}

TEST(NetlistBuilder, NetsOfIsDeduplicated) {
  const Netlist nl = tiny_chain();
  const CellId g2 = *nl.find_cell("g2");
  // g2: out n2, inputs n0 and n1 -> 3 distinct incident nets.
  EXPECT_EQ(nl.nets_of(g2).size(), 3u);
}

TEST(NetlistBuilder, TopologicalOrderRespectsEdges) {
  const Netlist nl = tiny_chain();
  const auto& topo = nl.topological_order();
  ASSERT_EQ(topo.size(), nl.num_cells());
  std::map<CellId, std::size_t> position;
  for (std::size_t i = 0; i < topo.size(); ++i) position[topo[i]] = i;
  for (const auto& net : nl.nets()) {
    for (CellId sink : net.sinks) {
      EXPECT_LT(position[net.driver], position[sink]);
    }
  }
}

using NetlistDeath = ::testing::Test;

TEST(NetlistDeath, RejectsCycle) {
  NetlistBuilder b("cycle");
  const CellId pi = b.add_primary_input("a");
  const CellId g1 = b.add_gate("g1", 1, 1.0, 0.1);
  const CellId g2 = b.add_gate("g2", 1, 1.0, 0.1);
  const CellId po = b.add_primary_output("z");
  const NetId n0 = b.add_net("n0", pi);
  b.connect_input(n0, g1);
  const NetId n1 = b.add_net("n1", g1);
  b.connect_input(n1, g2);
  const NetId n2 = b.add_net("n2", g2);
  b.connect_input(n2, g1);  // g2 -> g1 closes the cycle
  b.connect_input(n2, po);
  EXPECT_DEATH(std::move(b).build(), "cycle");
}

TEST(NetlistDeath, RejectsDanglingNet) {
  NetlistBuilder b("dangling");
  const CellId pi = b.add_primary_input("a");
  const CellId g1 = b.add_gate("g1", 1, 1.0, 0.1);
  const CellId po = b.add_primary_output("z");
  const NetId n0 = b.add_net("n0", pi);
  b.connect_input(n0, g1);
  b.connect_input(n0, po);
  b.add_net("n1", g1);  // never sunk
  EXPECT_DEATH(std::move(b).build(), "sink");
}

TEST(NetlistDeath, RejectsDoubleDriver) {
  NetlistBuilder b("double");
  const CellId pi = b.add_primary_input("a");
  b.add_net("n0", pi);
  EXPECT_DEATH(b.add_net("n1", pi), "already drives");
}

TEST(NetlistDeath, RejectsDuplicateNames) {
  NetlistBuilder b("dup");
  const CellId pi = b.add_primary_input("a");
  const CellId g = b.add_gate("a", 1, 1.0, 0.1);  // same name as the PI
  const CellId po = b.add_primary_output("z");
  const NetId n0 = b.add_net("n0", pi);
  b.connect_input(n0, g);
  const NetId n1 = b.add_net("n1", g);
  b.connect_input(n1, po);
  EXPECT_DEATH(std::move(b).build(), "duplicate");
}

TEST(NetlistDeath, RejectsSelfLoop) {
  NetlistBuilder b("self");
  const CellId pi = b.add_primary_input("a");
  const CellId g = b.add_gate("g", 1, 1.0, 0.1);
  const NetId n0 = b.add_net("n0", pi);
  b.connect_input(n0, g);
  const NetId n1 = b.add_net("n1", g);
  EXPECT_DEATH(b.connect_input(n1, g), "self-loop");
}

// ---------------------------------------------------------------------------
// Generator property tests, parameterized over sizes and seeds.

struct GenCase {
  std::size_t gates;
  std::size_t pis;
  std::size_t pos;
  std::uint64_t seed;
};

class GeneratorProperty : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorProperty, StructuralInvariants) {
  const GenCase c = GetParam();
  GeneratorConfig config;
  config.num_gates = c.gates;
  config.num_primary_inputs = c.pis;
  config.num_primary_outputs = c.pos;
  config.seed = c.seed;
  const Netlist nl = generate_circuit(config);  // build() re-checks validity

  EXPECT_EQ(nl.num_movable(), c.gates);
  std::size_t pis = 0, pos = 0;
  for (CellId pad : nl.pad_cells()) {
    (nl.cell(pad).kind == CellKind::PrimaryInput ? pis : pos) += 1;
  }
  EXPECT_EQ(pis, c.pis);
  EXPECT_GE(pos, c.pos);  // extra POs may absorb dangling nets

  // Every net driven and sunk; gate fanin within bounds.
  for (const auto& net : nl.nets()) {
    EXPECT_NE(net.driver, kNoCell);
    EXPECT_GE(net.sinks.size(), 1u);
  }
  for (CellId gate : nl.movable_cells()) {
    EXPECT_GE(nl.cell(gate).in_nets.size(), 1u);
    EXPECT_LE(nl.cell(gate).in_nets.size(), config.max_fanin);
    EXPECT_GE(nl.cell(gate).width, config.min_width);
    EXPECT_LE(nl.cell(gate).width, config.max_width);
  }
  // Topological order exists (acyclic) — finalize() checked; logic depth
  // is positive for any non-trivial circuit.
  EXPECT_GE(nl.logic_depth(), 1u);
}

TEST_P(GeneratorProperty, DeterministicForSeed) {
  const GenCase c = GetParam();
  GeneratorConfig config;
  config.num_gates = c.gates;
  config.num_primary_inputs = c.pis;
  config.num_primary_outputs = c.pos;
  config.seed = c.seed;
  const Netlist a = generate_circuit(config);
  const Netlist b = generate_circuit(config);
  EXPECT_EQ(to_net_format(a), to_net_format(b));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GeneratorProperty,
    ::testing::Values(GenCase{5, 2, 2, 1}, GenCase{20, 4, 4, 7},
                      GenCase{56, 8, 8, 3}, GenCase{200, 16, 12, 11},
                      GenCase{395, 20, 20, 5}, GenCase{800, 30, 25, 13}));

TEST(Generator, DifferentSeedsDifferentCircuits) {
  GeneratorConfig a, b;
  a.num_gates = b.num_gates = 100;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(to_net_format(generate_circuit(a)), to_net_format(generate_circuit(b)));
}

TEST(Generator, LocalityIncreasesDepth) {
  GeneratorConfig shallow, deep;
  shallow.num_gates = deep.num_gates = 400;
  shallow.seed = deep.seed = 9;
  shallow.locality = 0.0;
  deep.locality = 0.95;
  deep.locality_window = 4;
  EXPECT_GT(generate_circuit(deep).logic_depth(),
            generate_circuit(shallow).logic_depth());
}

// ---------------------------------------------------------------------------
// IO round-trip.

TEST(NetlistIo, RoundTripPreservesEverything) {
  const Netlist original = tiny_chain();
  const std::string text = to_net_format(original);
  const Netlist parsed = parse_netlist_string(text);
  EXPECT_EQ(to_net_format(parsed), text);
  EXPECT_EQ(parsed.name(), "tiny");
  EXPECT_EQ(parsed.num_cells(), original.num_cells());
  EXPECT_EQ(parsed.num_nets(), original.num_nets());
  EXPECT_EQ(parsed.net(2).weight, 2.0);
}

TEST(NetlistIo, RoundTripGeneratedCircuit) {
  GeneratorConfig config;
  config.num_gates = 150;
  config.seed = 21;
  const Netlist original = generate_circuit(config);
  const Netlist parsed = parse_netlist_string(to_net_format(original));
  EXPECT_EQ(to_net_format(parsed), to_net_format(original));
  EXPECT_EQ(parsed.logic_depth(), original.logic_depth());
  EXPECT_EQ(parsed.total_movable_width(), original.total_movable_width());
}

TEST(NetlistIo, ParsesCommentsAndBlanks) {
  const std::string text =
      "# header comment\n"
      "circuit c\n"
      "\n"
      "pi a\n"
      "gate g 1 1.0 0.1\n"
      "po z\n"
      "net n0 1 a g\n"
      "net n1 1 g z\n";
  const Netlist nl = parse_netlist_string(text);
  EXPECT_EQ(nl.num_cells(), 3u);
}

TEST(NetlistIoDeath, RejectsUnknownCell) {
  EXPECT_DEATH(parse_netlist_string("circuit c\npi a\nnet n0 1 a ghost\n"),
               "unknown cell");
}

TEST(NetlistIoDeath, RejectsUnknownKeyword) {
  EXPECT_DEATH(parse_netlist_string("circuit c\nfrobnicate x\n"),
               "unknown keyword");
}

// ---------------------------------------------------------------------------
// Benchmark registry.

TEST(Benchmarks, RegistryMatchesPaperSizes) {
  const auto& all = paper_benchmarks();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].name, "highway");
  EXPECT_EQ(all[0].cells, 56u);
  EXPECT_EQ(all[1].name, "c532");
  EXPECT_EQ(all[1].cells, 395u);
  EXPECT_EQ(all[2].name, "c1355");
  EXPECT_EQ(all[2].cells, 1451u);
  EXPECT_EQ(all[3].name, "c3540");
  EXPECT_EQ(all[3].cells, 2243u);
}

TEST(Benchmarks, MakeBenchmarkHasPaperCellCount) {
  for (const auto& info : paper_benchmarks()) {
    const Netlist nl = make_benchmark(info.name);
    EXPECT_EQ(nl.num_movable(), info.cells) << info.name;
    EXPECT_EQ(nl.name(), info.name);
  }
}

TEST(Benchmarks, IsPaperBenchmark) {
  EXPECT_TRUE(is_paper_benchmark("c1355"));
  EXPECT_FALSE(is_paper_benchmark("c17"));
}

TEST(BenchmarksDeath, UnknownNameFails) {
  EXPECT_DEATH(make_benchmark("c17"), "unknown benchmark");
}

}  // namespace
}  // namespace pts::netlist
