// Scale tier (`stress` CTest label): the invariants that matter at 50k
// gates — 15x the paper's largest circuit.
//
//  1. scale50k builds in O(n) work and stays circuit-like: exact gate/pad
//     counts, sublinear logic depth, paper-range fanin and net degree (the
//     DESIGN.md §2 statistics contract for the scale families).
//  2. Every engine completes a short run on it through the solver front
//     door and never reports a best worse than the start.
//  3. The probe/commit hot loop and the diversification step stay
//     allocation-free in steady state at scale (same counting-operator-new
//     guard topology_test pins at c532 — scratch sizing that silently
//     assumed paper-sized circuits would fail here).
//
// Budgets are deliberately tiny: the tier proves "correct and fast at
// scale", not converged quality, and it must stay seconds-long even in
// Debug/ASan CI runs. The Release-only `stress` CI job runs exactly this
// label.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "cost/evaluator.hpp"
#include "experiments/workloads.hpp"
#include "netlist/analysis.hpp"
#include "netlist/benchmarks.hpp"
#include "solver/solver.hpp"
#include "tabu/compound.hpp"
#include "tabu/diversify.hpp"

// -- counting operator new (shared convention with topology_test) -----------

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace pts {
namespace {

using netlist::CellId;
using netlist::Netlist;

/// One 50k-gate circuit per process (generation is fast, but every test
/// here needs it).
const Netlist& scale50k() {
  static const Netlist nl = netlist::make_benchmark("scale50k");
  return nl;
}

std::unique_ptr<cost::Evaluator> make_eval(const Netlist& nl,
                                           const placement::Layout& layout,
                                           std::uint64_t seed) {
  cost::CostParams params;
  Rng rng(seed);
  auto p = placement::Placement::random(nl, layout, rng);
  auto paths =
      timing::extract_critical_paths(nl, params.num_paths, params.delay_model);
  const auto goals = cost::Evaluator::calibrate_goals(p, *paths, params);
  return std::make_unique<cost::Evaluator>(std::move(p), std::move(paths), params,
                                           goals);
}

TEST(Stress, Scale50kBuildsAndStaysCircuitLike) {
  const Netlist& nl = scale50k();
  const auto& info = netlist::scale_benchmarks()[1];
  ASSERT_EQ(info.name, "scale50k");
  EXPECT_EQ(nl.num_movable(), info.cells);
  EXPECT_EQ(nl.topological_order().size(), nl.num_cells());

  const netlist::CircuitStats stats = netlist::analyze_circuit(nl);
  EXPECT_EQ(stats.primary_inputs, info.primary_inputs);
  EXPECT_GE(stats.primary_outputs, info.primary_outputs);
  // The §2 statistics contract: fanin and net degree in the paper
  // circuits' ranges, logic depth sublinear in the gate count (the widened
  // locality window; a fixed 24-net window would put depth in the
  // thousands here).
  EXPECT_GE(stats.gate_fanin.mean, 1.5);
  EXPECT_LE(stats.gate_fanin.mean, 3.5);
  EXPECT_GE(stats.avg_pins_per_net, 2.0);
  EXPECT_LE(stats.avg_pins_per_net, 5.0);
  EXPECT_GE(nl.logic_depth(), 50u);
  EXPECT_LE(nl.logic_depth(), nl.num_movable() / 20);
}

TEST(Stress, AllEnginesCompleteShortRunsAt50k) {
  const Netlist& nl = scale50k();
  for (const char* engine :
       {"tabu", "anneal", "local", "parallel-sim", "parallel-shared"}) {
    SCOPED_TRACE(engine);
    solver::SolveSpec spec = experiments::base_spec(nl, engine, /*seed=*/3,
                                                    /*quick=*/true);
    spec.tabu.iterations = 4;
    spec.tabu.trace_stride = 0;
    spec.anneal.moves_per_temp = 200;
    spec.anneal.cooling = 0.5;
    spec.anneal.trace_stride = 0;
    spec.local.max_iterations = 20;
    spec.local.trace_stride = 0;
    spec.parallel.global_iterations = 2;
    spec.parallel.local_iterations = 2;
    spec.shared.threads = 8;

    const solver::SolveResult result = solver::Solver().solve(spec);
    EXPECT_LE(result.best_cost, result.initial_cost);
    EXPECT_GT(result.iterations, 0u);
    EXPECT_EQ(result.best_slots.size(), nl.num_movable());
  }
}

TEST(Stress, ProbeCommitLoopIsAllocationFreeAt50k) {
  const Netlist& nl = scale50k();
  const placement::Layout layout(nl);
  auto eval = make_eval(nl, layout, 17);
  const auto& movable = nl.movable_cells();
  Rng rng(19);

  // Warm-up: exercise every scratch path (probe, commit, apply) so all
  // buffers reach their high-water mark.
  for (int i = 0; i < 200; ++i) {
    const auto [ia, ib] = rng.distinct_pair(movable.size());
    eval->probe_swap(movable[ia], movable[ib]);
    if (i % 3 == 0) eval->commit_probe();
    if (i % 7 == 0) eval->apply_swap(movable[ia], movable[ib]);
  }

  const std::uint64_t before = g_allocations.load();
  double sink = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const auto [ia, ib] = rng.distinct_pair(movable.size());
    sink += eval->probe_swap(movable[ia], movable[ib]);
    if (i % 3 == 0) sink += eval->commit_probe();
    if (i % 7 == 0) sink += eval->apply_swap(movable[ia], movable[ib]);
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u) << "probe/commit/apply allocated in steady "
                                   "state at 50k gates (sink="
                                << sink << ")";
}

TEST(Stress, DiversifyAndCompoundBuffersAllocationFreeAt50k) {
  const Netlist& nl = scale50k();
  const placement::Layout layout(nl);
  auto eval = make_eval(nl, layout, 23);
  const tabu::CellRange range{0, nl.num_movable()};
  tabu::DiversifyParams div_params;
  tabu::CompoundParams comp_params;
  Rng rng(29);

  std::vector<tabu::Move> div_scratch;
  tabu::CompoundMove comp_scratch;
  tabu::diversify(*eval, range, div_params, rng, &div_scratch);  // warm-up
  tabu::build_compound_move(*eval, range, comp_params, rng, nullptr,
                            &comp_scratch);

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 25; ++i) {
    tabu::diversify(*eval, range, div_params, rng, &div_scratch);
    tabu::build_compound_move(*eval, range, comp_params, rng, nullptr,
                              &comp_scratch);
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u)
      << "diversify/compound allocated in steady state at 50k gates";
}

}  // namespace
}  // namespace pts
