#include "support/fault.hpp"

#include <unistd.h>

#include <atomic>
#include <utility>

namespace pts::fault {

FaultPlan::FaultPlan(std::uint64_t seed, SocketFaultConfig config)
    : config_(std::move(config)),
      rng_(SplitMix64(seed ^ 0xfa017'bad'cafeULL).next()) {}

FaultPlan::IoDecision FaultPlan::io_decision_locked(
    double error_rate, double short_rate, const std::vector<int>& errors,
    std::uint64_t& error_counter, std::uint64_t& short_counter) {
  IoDecision decision;
  // One uniform draw decides among {fail, cap, pass}, so the decision
  // stream length is independent of which branch fires.
  const double u = rng_.uniform();
  if (u < error_rate && !errors.empty()) {
    decision.kind = IoDecision::Kind::Fail;
    decision.error = errors[static_cast<std::size_t>(rng_.below(errors.size()))];
    ++error_counter;
  } else if (u < error_rate + short_rate) {
    decision.kind = IoDecision::Kind::Cap;
    decision.cap = 1 + rng_.below(config_.short_cap > 0 ? config_.short_cap : 1);
    ++short_counter;
  }
  return decision;
}

FaultPlan::IoDecision FaultPlan::on_read() {
  const std::lock_guard<std::mutex> lock(mutex_);
  return io_decision_locked(config_.read_error_rate, config_.short_read_rate,
                            config_.read_errors, counters_.read_errors,
                            counters_.short_reads);
}

FaultPlan::IoDecision FaultPlan::on_write() {
  const std::lock_guard<std::mutex> lock(mutex_);
  return io_decision_locked(config_.write_error_rate, config_.short_write_rate,
                            config_.write_errors, counters_.write_errors,
                            counters_.short_writes);
}

bool FaultPlan::on_connect(int* error_out) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (rng_.uniform() < config_.connect_error_rate) {
    ++counters_.connect_errors;
    if (error_out != nullptr) *error_out = config_.connect_error;
    return true;
  }
  return false;
}

FaultPlan::MessageDecision FaultPlan::on_message() {
  const std::lock_guard<std::mutex> lock(mutex_);
  const double u = rng_.uniform();
  if (u < config_.message_drop_rate) {
    ++counters_.dropped_messages;
    return MessageDecision::Drop;
  }
  if (u < config_.message_drop_rate + config_.message_delay_rate) {
    ++counters_.delayed_messages;
    return MessageDecision::Delay;
  }
  return MessageDecision::Pass;
}

FaultPlan::Counters FaultPlan::counters() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

// -- global install ----------------------------------------------------------

namespace {
std::atomic<FaultPlan*> g_plan{nullptr};
}  // namespace

void install(FaultPlan* plan) { g_plan.store(plan, std::memory_order_release); }
FaultPlan* installed() { return g_plan.load(std::memory_order_acquire); }

// -- syscall wrappers --------------------------------------------------------

ssize_t read(int fd, void* buffer, std::size_t size) {
  if (FaultPlan* plan = installed()) {
    const auto decision = plan->on_read();
    if (decision.kind == FaultPlan::IoDecision::Kind::Fail) {
      errno = decision.error;
      return -1;
    }
    if (decision.kind == FaultPlan::IoDecision::Kind::Cap &&
        decision.cap < size) {
      size = decision.cap;
    }
  }
  return ::read(fd, buffer, size);
}

ssize_t send(int fd, const void* buffer, std::size_t size, int flags) {
  if (FaultPlan* plan = installed()) {
    const auto decision = plan->on_write();
    if (decision.kind == FaultPlan::IoDecision::Kind::Fail) {
      errno = decision.error;
      return -1;
    }
    if (decision.kind == FaultPlan::IoDecision::Kind::Cap &&
        decision.cap < size) {
      size = decision.cap;
    }
  }
  return ::send(fd, buffer, size, flags);
}

int connect_fd(int fd, const struct sockaddr* addr, socklen_t len) {
  if (FaultPlan* plan = installed()) {
    int error = ECONNREFUSED;
    if (plan->on_connect(&error)) {
      errno = error;
      return -1;
    }
  }
  return ::connect(fd, addr, len);
}

}  // namespace pts::fault
