#include "pvm/vm.hpp"

#include <chrono>

#include "support/log.hpp"

namespace pts::pvm {

void TaskContext::send(TaskId to, Message message) {
  vm_->route(id_, to, std::move(message));
}

void TaskContext::charge(double units) {
  const double t = profile_.time_for(units, rng_);
  virtual_time_ += t;
  const double spu = vm_->seconds_per_unit_;
  if (spu <= 0.0) return;
  // Batch tiny sleeps: syscalls per work unit would dominate the run.
  sleep_debt_ += t * spu;
  constexpr double kMinSleep = 200e-6;
  if (sleep_debt_ >= kMinSleep) {
    std::this_thread::sleep_for(std::chrono::duration<double>(sleep_debt_));
    sleep_debt_ = 0.0;
  }
}

VirtualMachine::VirtualMachine(ClusterConfig cluster, std::uint64_t seed,
                               double seconds_per_unit)
    : cluster_(std::move(cluster)),
      seed_rng_(seed),
      seconds_per_unit_(seconds_per_unit) {
  PTS_CHECK(!cluster_.machines.empty());
  // Task 0: the host (master) runs on the calling thread.
  auto state = std::make_unique<TaskState>();
  state->context.reset(new TaskContext(this, 0, "host",
                                       cluster_.machine_for_task(0),
                                       &state->mailbox, seed_rng_.fork(0)));
  tasks_.push_back(std::move(state));
}

VirtualMachine::~VirtualMachine() { shutdown(); }

TaskContext& VirtualMachine::host() {
  std::lock_guard<std::mutex> lock(tasks_mutex_);
  return *tasks_.front()->context;
}

TaskId VirtualMachine::spawn(const std::string& name,
                             std::function<void(TaskContext&)> body) {
  std::lock_guard<std::mutex> lock(tasks_mutex_);
  PTS_CHECK_MSG(!shut_down_, "spawn after shutdown");
  const auto id = static_cast<TaskId>(tasks_.size());
  auto state = std::make_unique<TaskState>();
  state->context.reset(
      new TaskContext(this, id, name,
                      cluster_.machine_for_task(static_cast<std::size_t>(id)),
                      &state->mailbox,
                      seed_rng_.fork(static_cast<std::uint64_t>(id))));
  TaskContext* context = state->context.get();
  state->thread = std::thread([context, fn = std::move(body), name] {
    fn(*context);
    log_debug(name) << "task finished";
  });
  tasks_.push_back(std::move(state));
  return id;
}

std::size_t VirtualMachine::num_tasks() const {
  std::lock_guard<std::mutex> lock(tasks_mutex_);
  return tasks_.size();
}

void VirtualMachine::route(TaskId from, TaskId to, Message message) {
  message.set_sender(from);
  Mailbox* mailbox = nullptr;
  {
    std::lock_guard<std::mutex> lock(tasks_mutex_);
    PTS_CHECK_MSG(to >= 0 && static_cast<std::size_t>(to) < tasks_.size(),
                  "send to unknown task");
    mailbox = &tasks_[static_cast<std::size_t>(to)]->mailbox;
  }
  mailbox->deliver(std::move(message));
}

void VirtualMachine::shutdown() {
  std::vector<std::thread> joinable;
  {
    std::lock_guard<std::mutex> lock(tasks_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
    for (auto& task : tasks_) task->mailbox.close();
    for (auto& task : tasks_) {
      if (task->thread.joinable()) joinable.push_back(std::move(task->thread));
    }
  }
  for (auto& thread : joinable) thread.join();
}

}  // namespace pts::pvm
