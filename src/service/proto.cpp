#include "service/proto.hpp"

namespace pts::service {

const char* tag_name(int tag) {
  switch (tag) {
    case kHello: return "hello";
    case kWelcome: return "welcome";
    case kSubmit: return "submit";
    case kSubmitOk: return "submit-ok";
    case kSubmitErr: return "submit-err";
    case kCancel: return "cancel";
    case kCancelOk: return "cancel-ok";
    case kProgress: return "progress";
    case kDone: return "done";
    case kShutdown: return "shutdown";
    case kShutdownOk: return "shutdown-ok";
    case kError: return "error";
  }
  return "unknown";
}

namespace {

using pvm::Field;
using pvm::Message;

/// Schema-checked reads over an untrusted Message: every getter verifies
/// the next field's type via peek_field before unpacking, so no unpack_*
/// can PTS_CHECK-abort. One validate_layout up front covers in-bounds-ness.
class SafeReader {
 public:
  SafeReader(Message& msg, int expected_tag) : msg_(msg) {
    ok_ = msg.tag() == expected_tag && msg.validate_layout();
    msg_.rewind();
  }

  void u32(std::uint32_t& out) {
    if (take(Field::U32)) out = msg_.unpack_u32();
  }
  void u64(std::uint64_t& out) {
    if (take(Field::U64)) out = msg_.unpack_u64();
  }
  void f64(double& out) {
    if (take(Field::F64)) out = msg_.unpack_double();
  }
  void boolean(bool& out) {
    if (take(Field::Bool)) out = msg_.unpack_bool();
  }
  void str(std::string& out) {
    if (take(Field::Str)) out = msg_.unpack_string();
  }

  void str_list(std::vector<std::string>& out) {
    std::uint32_t count = 0;
    u32(count);
    if (!ok_) return;
    // The count is attacker-controlled; the strings must actually be
    // present, so grow per-element instead of trusting a reserve.
    out.clear();
    for (std::uint32_t i = 0; i < count && ok_; ++i) {
      std::string s;
      str(s);
      if (ok_) out.push_back(std::move(s));
    }
  }

  bool finish() { return ok_ && msg_.fully_consumed(); }

 private:
  bool take(Field expected) {
    if (!ok_ || msg_.peek_field() != expected) {
      ok_ = false;
      return false;
    }
    return true;
  }

  Message& msg_;
  bool ok_ = false;
};

void pack_str_list(Message& msg, const std::vector<std::string>& list) {
  msg.pack_u32(static_cast<std::uint32_t>(list.size()));
  for (const auto& item : list) msg.pack_string(item);
}

}  // namespace

// -- encoders ---------------------------------------------------------------

pvm::Message encode(const HelloMsg& msg) {
  Message out(kHello);
  out.pack_u32(msg.version);
  return out;
}

pvm::Message encode(const WelcomeMsg& msg) {
  Message out(kWelcome);
  out.pack_u32(msg.version);
  out.pack_string(msg.server);
  pack_str_list(out, msg.engines);
  pack_str_list(out, msg.circuits);
  return out;
}

pvm::Message encode(const SubmitMsg& msg) {
  Message out(kSubmit);
  out.pack_string(msg.spec_json);
  out.pack_bool(msg.stream);
  out.pack_u64(msg.progress_stride);
  out.pack_u64(msg.request_id);
  return out;
}

pvm::Message encode(const SubmitOkMsg& msg) {
  Message out(kSubmitOk);
  out.pack_u64(msg.session);
  out.pack_bool(msg.queued);
  out.pack_bool(msg.cached);
  return out;
}

pvm::Message encode(const SubmitErrMsg& msg) {
  Message out(kSubmitErr);
  out.pack_string(msg.error);
  return out;
}

pvm::Message encode(const CancelMsg& msg) {
  Message out(kCancel);
  out.pack_u64(msg.session);
  return out;
}

pvm::Message encode(const CancelOkMsg& msg) {
  Message out(kCancelOk);
  out.pack_u64(msg.session);
  out.pack_bool(msg.was_active);
  return out;
}

pvm::Message encode(const ProgressMsg& msg) {
  Message out(kProgress);
  out.pack_u64(msg.session);
  out.pack_bool(msg.improvement);
  out.pack_u64(msg.iteration);
  out.pack_double(msg.seconds);
  out.pack_double(msg.current_cost);
  out.pack_double(msg.best_cost);
  return out;
}

pvm::Message encode(const DoneMsg& msg) {
  Message out(kDone);
  out.pack_u64(msg.session);
  out.pack_string(msg.result_json);
  return out;
}

pvm::Message encode(const ErrorMsg& msg) {
  Message out(kError);
  out.pack_string(msg.message);
  return out;
}

pvm::Message encode_shutdown() {
  Message out(kShutdown);
  out.pack_bool(true);  // frames must carry at least one field
  return out;
}

pvm::Message encode_shutdown_ok() {
  Message out(kShutdownOk);
  out.pack_bool(true);
  return out;
}

// -- decoders ---------------------------------------------------------------

bool decode(pvm::Message& msg, HelloMsg& out) {
  SafeReader reader(msg, kHello);
  reader.u32(out.version);
  return reader.finish();
}

bool decode(pvm::Message& msg, WelcomeMsg& out) {
  SafeReader reader(msg, kWelcome);
  reader.u32(out.version);
  reader.str(out.server);
  reader.str_list(out.engines);
  reader.str_list(out.circuits);
  return reader.finish();
}

bool decode(pvm::Message& msg, SubmitMsg& out) {
  SafeReader reader(msg, kSubmit);
  reader.str(out.spec_json);
  reader.boolean(out.stream);
  reader.u64(out.progress_stride);
  reader.u64(out.request_id);
  return reader.finish();
}

bool decode(pvm::Message& msg, SubmitOkMsg& out) {
  SafeReader reader(msg, kSubmitOk);
  reader.u64(out.session);
  reader.boolean(out.queued);
  reader.boolean(out.cached);
  return reader.finish();
}

bool decode(pvm::Message& msg, SubmitErrMsg& out) {
  SafeReader reader(msg, kSubmitErr);
  reader.str(out.error);
  return reader.finish();
}

bool decode(pvm::Message& msg, CancelMsg& out) {
  SafeReader reader(msg, kCancel);
  reader.u64(out.session);
  return reader.finish();
}

bool decode(pvm::Message& msg, CancelOkMsg& out) {
  SafeReader reader(msg, kCancelOk);
  reader.u64(out.session);
  reader.boolean(out.was_active);
  return reader.finish();
}

bool decode(pvm::Message& msg, ProgressMsg& out) {
  SafeReader reader(msg, kProgress);
  reader.u64(out.session);
  reader.boolean(out.improvement);
  reader.u64(out.iteration);
  reader.f64(out.seconds);
  reader.f64(out.current_cost);
  reader.f64(out.best_cost);
  return reader.finish();
}

bool decode(pvm::Message& msg, DoneMsg& out) {
  SafeReader reader(msg, kDone);
  reader.u64(out.session);
  reader.str(out.result_json);
  return reader.finish();
}

bool decode(pvm::Message& msg, ErrorMsg& out) {
  SafeReader reader(msg, kError);
  reader.str(out.message);
  return reader.finish();
}

bool decode_shutdown(pvm::Message& msg) {
  SafeReader reader(msg, kShutdown);
  bool marker = false;
  reader.boolean(marker);
  return reader.finish();
}

bool decode_shutdown_ok(pvm::Message& msg) {
  SafeReader reader(msg, kShutdownOk);
  bool marker = false;
  reader.boolean(marker);
  return reader.finish();
}

}  // namespace pts::service
