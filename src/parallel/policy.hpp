// Collection policies: how a parent gathers results from its children.
//
// The paper's heterogeneity mechanism (§4.2): in the heterogeneous run, a
// parent stops waiting once *half* of its children have reported, and
// forces the stragglers to return the best they have found so far. In the
// homogeneous run the parent waits for everyone. The threshold fraction is
// exposed (default 0.5) because the ablation bench sweeps it.
#pragma once

#include <cstddef>

#include "support/check.hpp"

namespace pts::parallel {

enum class CollectionPolicy {
  /// Wait for all children to finish (the paper's "homogeneous run").
  WaitAll,
  /// Cut stragglers once `threshold` of the children reported (the paper's
  /// "heterogeneous run"; threshold 0.5 = "half of them").
  HalfForce,
};

struct PolicyParams {
  CollectionPolicy policy = CollectionPolicy::HalfForce;
  /// Fraction of children that must report before the rest are forced.
  double threshold = 0.5;

  /// Number of voluntary reports a parent of `children` waits for before
  /// forcing the rest. Always at least 1 and at most `children`.
  std::size_t reports_before_force(std::size_t children) const {
    PTS_CHECK(children >= 1);
    if (policy == CollectionPolicy::WaitAll) return children;
    const double want = threshold * static_cast<double>(children);
    auto k = static_cast<std::size_t>(want);
    if (static_cast<double>(k) < want) ++k;  // ceil
    if (k < 1) k = 1;
    if (k > children) k = children;
    return k;
  }
};

}  // namespace pts::parallel
