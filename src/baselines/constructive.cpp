#include "baselines/constructive.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace pts::baselines {

using netlist::CellId;
using netlist::NetId;
using placement::Layout;
using placement::Placement;
using placement::SlotId;

Placement random_placement(const netlist::Netlist& netlist, const Layout& layout,
                           Rng& rng) {
  return Placement::random(netlist, layout, rng);
}

Placement greedy_placement(const netlist::Netlist& netlist, const Layout& layout,
                           Rng& rng) {
  const auto& movable = netlist.movable_cells();
  const std::size_t n = movable.size();

  // Dense index for movable cells.
  std::vector<std::size_t> movable_index(netlist.num_cells(), n);
  for (std::size_t k = 0; k < n; ++k) movable_index[movable[k]] = k;

  // Degree = number of incident pins; seed with the most connected cell.
  std::vector<std::size_t> degree(n, 0);
  for (std::size_t k = 0; k < n; ++k) {
    degree[k] = netlist.nets_of(movable[k]).size();
  }
  const std::size_t seed_cell = static_cast<std::size_t>(
      std::max_element(degree.begin(), degree.end()) - degree.begin());

  // Slot visit order: center-out spiral approximated by sorting slots by
  // distance to the layout center, so strongly connected cells cluster.
  struct SlotPos {
    SlotId slot;
    double x, y;
  };
  std::vector<SlotPos> slot_pos;
  slot_pos.reserve(layout.num_slots());
  {
    // Approximate slot centers assuming average cell width.
    const double avg_w =
        static_cast<double>(netlist.total_movable_width()) / static_cast<double>(n);
    for (SlotId s = 0; s < layout.num_slots(); ++s) {
      const double x =
          (static_cast<double>(layout.column_of_slot(s)) + 0.5) * avg_w;
      const double y = layout.row_y(layout.row_of_slot(s));
      slot_pos.push_back({s, x, y});
    }
  }

  std::vector<char> slot_used(layout.num_slots(), 0);
  std::vector<SlotId> assignment(n, placement::kNoSlot);
  std::vector<char> placed(n, 0);
  // connectivity[k] = number of nets shared with already placed cells.
  std::vector<std::size_t> connectivity(n, 0);

  auto place_cell = [&](std::size_t k, SlotId slot) {
    assignment[k] = slot;
    slot_used[slot] = 1;
    placed[k] = 1;
    for (NetId net : netlist.nets_of(movable[k])) {
      const auto& nn = netlist.net(net);
      auto bump = [&](CellId c) {
        const std::size_t idx = movable_index[c];
        if (idx < n && !placed[idx]) ++connectivity[idx];
      };
      bump(nn.driver);
      for (CellId sink : nn.sinks) bump(sink);
    }
  };

  // Seed at the slot closest to the layout center.
  const double cx = layout.nominal_width() * 0.5;
  const double cy = layout.core_height() * 0.5;
  SlotId center_slot = 0;
  double center_d = std::numeric_limits<double>::max();
  for (const auto& sp : slot_pos) {
    const double d = std::hypot(sp.x - cx, sp.y - cy);
    if (d < center_d) {
      center_d = d;
      center_slot = sp.slot;
    }
  }
  place_cell(seed_cell, center_slot);

  for (std::size_t step = 1; step < n; ++step) {
    // Most-connected unplaced cell (ties broken randomly for variety).
    std::size_t best_k = n;
    std::size_t best_conn = 0;
    std::size_t ties = 0;
    for (std::size_t k = 0; k < n; ++k) {
      if (placed[k]) continue;
      if (best_k == n || connectivity[k] > best_conn) {
        best_k = k;
        best_conn = connectivity[k];
        ties = 1;
      } else if (connectivity[k] == best_conn) {
        ++ties;
        if (rng.below(ties) == 0) best_k = k;
      }
    }
    PTS_CHECK(best_k < n);

    // Centroid of placed neighbors (fall back to layout center).
    double sx = 0.0, sy = 0.0;
    std::size_t neighbors = 0;
    for (NetId net : netlist.nets_of(movable[best_k])) {
      const auto& nn = netlist.net(net);
      auto accumulate = [&](CellId c) {
        const std::size_t idx = movable_index[c];
        if (idx < n && placed[idx]) {
          const auto& sp = slot_pos[assignment[idx]];
          sx += sp.x;
          sy += sp.y;
          ++neighbors;
        }
      };
      accumulate(nn.driver);
      for (CellId sink : nn.sinks) accumulate(sink);
    }
    const double tx = neighbors > 0 ? sx / static_cast<double>(neighbors) : cx;
    const double ty = neighbors > 0 ? sy / static_cast<double>(neighbors) : cy;

    // Closest free slot to the target point.
    SlotId best_slot = placement::kNoSlot;
    double best_d = std::numeric_limits<double>::max();
    for (const auto& sp : slot_pos) {
      if (slot_used[sp.slot]) continue;
      const double d = std::hypot(sp.x - tx, sp.y - ty);
      if (d < best_d) {
        best_d = d;
        best_slot = sp.slot;
      }
    }
    PTS_CHECK(best_slot != placement::kNoSlot);
    place_cell(best_k, best_slot);
  }

  std::vector<CellId> cell_at(layout.num_slots(), netlist::kNoCell);
  for (std::size_t k = 0; k < n; ++k) cell_at[assignment[k]] = movable[k];
  Placement p(netlist, layout);
  p.assign_slots(cell_at);
  return p;
}

}  // namespace pts::baselines
