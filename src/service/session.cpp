#include "service/session.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <optional>
#include <utility>

namespace pts::service {

using Clock = std::chrono::steady_clock;

struct SessionManager::Session {
  std::uint64_t id = 0;
  std::uint64_t owner = 0;
  bool stream = false;
  std::uint64_t progress_stride = 0;
  CancelToken token;
  EventSink sink;
  solver::SolveSpec spec;
  /// Non-empty: the finished result is LRU-cached under this key when the
  /// stop reason is deterministic.
  std::string cache_key;
  std::thread thread;
  bool has_deadline = false;
  Clock::time_point deadline{};
  /// Set by the watchdog when the deadline fires; read on the session
  /// thread to rewrite Cancelled into DeadlineExpired.
  std::atomic<bool> deadline_hit{false};
  /// Set (release) as the session thread's last touch of this struct; the
  /// reaper reads it (acquire) and may join + destroy immediately after.
  std::atomic<bool> finished{false};
};

namespace {

/// Forwards engine progress into the session sink. Runs on the solve
/// thread (Observer contract: callbacks are synchronous and read-only
/// towards the engine).
class StreamObserver final : public Observer {
 public:
  StreamObserver(std::uint64_t session, bool stream, std::uint64_t stride,
                 const EventSink& sink)
      : session_(session), stream_(stream), stride_(stride), sink_(sink) {}

  void on_improvement(const Progress& progress) override {
    if (!stream_) return;
    emit(true, progress);
  }

  void on_iteration(const Progress& progress) override {
    if (!stream_ || stride_ == 0) return;
    if (++ticks_ % stride_ != 0) return;
    emit(false, progress);
  }

 private:
  void emit(bool improvement, const Progress& progress) {
    SessionEvent event;
    event.kind = SessionEvent::Kind::Progress;
    event.session = session_;
    event.improvement = improvement;
    event.progress = progress;
    sink_(std::move(event));
  }

  std::uint64_t session_;
  bool stream_;
  std::uint64_t stride_;
  const EventSink& sink_;
  std::uint64_t ticks_ = 0;
};

}  // namespace

const char* SessionManager::start_status_name(StartStatus status) {
  switch (status) {
    case StartStatus::Started: return "started";
    case StartStatus::Queued: return "queued";
    case StartStatus::QueueFull: return "queue-full";
    case StartStatus::ShuttingDown: return "shutting-down";
  }
  return "unknown";
}

SessionManager::SessionManager(Options options) : options_(options) {
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

SessionManager::~SessionManager() {
  drain();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

std::size_t SessionManager::running_locked() const {
  std::size_t running = 0;
  for (const auto& s : sessions_) {
    if (!s->finished.load(std::memory_order_acquire)) ++running;
  }
  return running;
}

SessionManager::StartResult SessionManager::start(
    solver::SolveSpec spec, std::uint64_t owner, bool stream,
    std::uint64_t progress_stride, EventSink sink, double deadline_seconds,
    std::string cache_key) {
  auto session = std::make_unique<Session>();
  session->owner = owner;
  session->stream = stream;
  session->progress_stride = progress_stride;
  session->sink = std::move(sink);
  session->spec = std::move(spec);
  session->spec.stop.cancel = &session->token;
  if (options_.cache_entries > 0) session->cache_key = std::move(cache_key);
  if (deadline_seconds > 0.0) {
    // Clamp before the duration_cast: steady_clock durations are int64
    // nanoseconds, so ~9.2e9 unclamped seconds would overflow into a
    // deadline in the past and instantly expire the session.
    const double capped = std::min(deadline_seconds, 1.0e9);
    session->has_deadline = true;
    session->deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(capped));
  }

  // Publication and spawn happen under one lock so every joiner (reap,
  // cancel_owned, drain — all of which lock mutex_ before extracting a
  // session) observes the thread member already assigned; a session can
  // never be destroyed with its thread running. run_session only takes
  // mutex_ at its very end, so spawning under the lock cannot deadlock.
  StartResult result;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    reap_locked();
    if (draining_) {
      result.status = StartStatus::ShuttingDown;
      return result;
    }
    if (running_locked() < options_.max_sessions) {
      session->id = next_id_++;
      ++started_;
      Session* raw = session.get();
      sessions_.push_back(std::move(session));
      raw->thread = std::thread([this, raw] { run_session(raw); });
      result.status = StartStatus::Started;
      result.id = raw->id;
    } else if (queue_.size() < options_.max_queued) {
      session->id = next_id_++;
      result.status = StartStatus::Queued;
      result.id = session->id;
      queue_.push_back(std::move(session));
    } else {
      result.status = StartStatus::QueueFull;
      return result;
    }
  }
  // A new deadline may be earlier than whatever the watchdog sleeps on.
  watchdog_cv_.notify_all();
  return result;
}

void SessionManager::run_session(Session* session) {
  StreamObserver observer(session->id, session->stream, session->progress_stride,
                          session->sink);
  session->spec.observer = &observer;

  solver::SolveResult result = solver::Solver().solve(session->spec);
  if (session->deadline_hit.load(std::memory_order_relaxed) &&
      result.stop_reason == StopReason::Cancelled) {
    // The cancel came from the deadline watchdog, not the client.
    result.stop_reason = StopReason::DeadlineExpired;
  }

  // Only wall-clock-independent outcomes are cacheable: a Cancelled /
  // DeadlineExpired / TimeLimit result depends on when the run was
  // interrupted, so a repeat submission would legitimately differ.
  const bool deterministic_stop =
      result.stop_reason == StopReason::Completed ||
      result.stop_reason == StopReason::IterationBudget ||
      result.stop_reason == StopReason::TargetCost ||
      result.stop_reason == StopReason::TargetQuality;
  if (!session->cache_key.empty() && deterministic_stop) {
    // Insert BEFORE emitting Done: a client that has seen its result is
    // then guaranteed an identical re-submission hits the cache.
    const std::lock_guard<std::mutex> lock(mutex_);
    cache_insert_locked(std::move(session->cache_key),
                        solver::SolveResult(result));
  }

  SessionEvent done;
  done.kind = SessionEvent::Kind::Done;
  done.session = session->id;
  done.result = std::move(result);
  session->sink(std::move(done));

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++finished_count_;
    // Publishing finished under the lock lets promote_locked() see this
    // slot as free; the reaper cannot run concurrently (it needs mutex_)
    // and a post-unlock join merely waits for this thread's imminent exit.
    session->finished.store(true, std::memory_order_release);
    promote_locked();
  }
}

void SessionManager::cache_insert_locked(std::string key,
                                         solver::SolveResult result) {
  if (options_.cache_entries == 0) return;
  const auto it = cache_map_.find(key);
  if (it != cache_map_.end()) {
    // Same key, deterministic solve: the value is necessarily identical.
    // Just refresh recency.
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
    return;
  }
  cache_lru_.emplace_front(std::move(key), std::move(result));
  cache_map_.emplace(cache_lru_.front().first, cache_lru_.begin());
  while (cache_lru_.size() > options_.cache_entries) {
    cache_map_.erase(cache_lru_.back().first);
    cache_lru_.pop_back();
  }
}

std::optional<solver::SolveResult> SessionManager::cached_result(
    const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = cache_map_.find(key);
  if (it == cache_map_.end()) {
    ++cache_misses_;
    return std::nullopt;
  }
  ++cache_hits_;
  cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
  return cache_lru_.front().second;
}

void SessionManager::promote_locked() {
  while (!draining_ && !queue_.empty() &&
         running_locked() < options_.max_sessions) {
    std::unique_ptr<Session> session = std::move(queue_.front());
    queue_.pop_front();
    ++started_;
    Session* raw = session.get();
    sessions_.push_back(std::move(session));
    raw->thread = std::thread([this, raw] { run_session(raw); });
  }
}

void SessionManager::reap_locked() {
  auto it = sessions_.begin();
  while (it != sessions_.end()) {
    Session& session = **it;
    if (session.finished.load(std::memory_order_acquire)) {
      if (session.thread.joinable()) session.thread.join();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

bool SessionManager::cancel(std::uint64_t session_id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& session : sessions_) {
    if (session->id != session_id) continue;
    if (session->finished.load(std::memory_order_acquire)) return false;
    session->token.cancel();
    return true;
  }
  for (const auto& session : queue_) {
    if (session->id != session_id) continue;
    // Cancelled while queued: the token is already set, so the eventual
    // promotion runs a solve that stops at its first check point and the
    // Done (stop_reason Cancelled) goes out as usual.
    session->token.cancel();
    return true;
  }
  return false;
}

void SessionManager::cancel_owned(std::uint64_t owner) {
  std::vector<std::unique_ptr<Session>> owned;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.begin();
    while (it != sessions_.end()) {
      if ((*it)->owner == owner) {
        (*it)->token.cancel();
        owned.push_back(std::move(*it));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
    // Queued sessions never started a thread; their owner is gone, so the
    // Done nobody would receive is skipped and the slot simply freed.
    auto qit = queue_.begin();
    while (qit != queue_.end()) {
      if ((*qit)->owner == owner) {
        qit = queue_.erase(qit);
      } else {
        ++qit;
      }
    }
    promote_locked();
  }
  // Join outside the lock: the session threads may be mid-sink (which can
  // block on a slow socket) and must not stall unrelated submissions.
  for (auto& session : owned) {
    if (session->thread.joinable()) session->thread.join();
  }
}

void SessionManager::drain() {
  std::vector<std::unique_ptr<Session>> all;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
    queue_.clear();
    for (auto& session : sessions_) session->token.cancel();
    all.swap(sessions_);
  }
  for (auto& session : all) {
    if (session->thread.joinable()) session->thread.join();
  }
}

void SessionManager::watchdog_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!watchdog_stop_) {
    std::optional<Clock::time_point> next;
    const auto consider = [&](const Session& session) {
      if (!session.has_deadline ||
          session.deadline_hit.load(std::memory_order_relaxed) ||
          session.finished.load(std::memory_order_acquire)) {
        return;
      }
      if (!next || session.deadline < *next) next = session.deadline;
    };
    for (const auto& session : sessions_) consider(*session);
    for (const auto& session : queue_) consider(*session);

    const auto now = Clock::now();
    if (next && *next <= now) {
      const auto expire = [&](Session& session) {
        if (!session.has_deadline ||
            session.deadline_hit.load(std::memory_order_relaxed) ||
            session.finished.load(std::memory_order_acquire) ||
            session.deadline > now) {
          return;
        }
        session.deadline_hit.store(true, std::memory_order_relaxed);
        session.token.cancel();
      };
      for (const auto& session : sessions_) expire(*session);
      for (const auto& session : queue_) expire(*session);
      // An expired *queued* session would otherwise sit until a slot frees;
      // promote it now (past the cap) so its DeadlineExpired Done goes out
      // promptly — the solve stops at its first cancellation check.
      auto qit = queue_.begin();
      while (qit != queue_.end()) {
        if ((*qit)->deadline_hit.load(std::memory_order_relaxed)) {
          std::unique_ptr<Session> session = std::move(*qit);
          qit = queue_.erase(qit);
          ++started_;
          Session* raw = session.get();
          sessions_.push_back(std::move(session));
          raw->thread = std::thread([this, raw] { run_session(raw); });
        } else {
          ++qit;
        }
      }
      continue;
    }
    if (next) {
      watchdog_cv_.wait_until(lock, *next);
    } else {
      watchdog_cv_.wait(lock);
    }
  }
}

std::size_t SessionManager::active_sessions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return running_locked();
}

std::size_t SessionManager::queued_sessions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::uint64_t SessionManager::sessions_started() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return started_;
}

std::uint64_t SessionManager::sessions_finished() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return finished_count_;
}

std::uint64_t SessionManager::cache_hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return cache_hits_;
}

std::uint64_t SessionManager::cache_misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return cache_misses_;
}

std::size_t SessionManager::cache_size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return cache_lru_.size();
}

}  // namespace pts::service
