#include "cost/fuzzy.hpp"

#include <algorithm>

namespace pts::cost {
namespace {

double owa(double beta, const std::array<double, kNumObjectives>& mu) {
  const double lo = *std::min_element(mu.begin(), mu.end());
  double sum = 0.0;
  for (double m : mu) sum += m;
  const double mean = sum / static_cast<double>(kNumObjectives);
  return beta * lo + (1.0 - beta) * mean;
}

}  // namespace

double FuzzyGoals::cost(const Objectives& objectives) const {
  std::array<double, kNumObjectives> mu{};
  const auto values = objectives.as_array();
  for (std::size_t i = 0; i < kNumObjectives; ++i) {
    mu[i] = membership[i].raw(values[i]);
  }
  return 1.0 - owa(beta, mu);
}

void FuzzyGoals::cost_batch(std::span<const Objectives> objectives,
                            std::span<double> costs) const {
  PTS_DCHECK(costs.size() == objectives.size());
  for (std::size_t i = 0; i < objectives.size(); ++i) {
    costs[i] = cost(objectives[i]);
  }
}

double FuzzyGoals::quality(const Objectives& objectives) const {
  std::array<double, kNumObjectives> mu{};
  const auto values = objectives.as_array();
  for (std::size_t i = 0; i < kNumObjectives; ++i) {
    mu[i] = membership[i].clamped(values[i]);
  }
  return owa(beta, mu);
}

FuzzyGoals FuzzyGoals::calibrate(const Objectives& initial,
                                 double target_improvement,
                                 double initial_membership, double beta) {
  PTS_CHECK(target_improvement > 0.0 && target_improvement <= 1.0);
  PTS_CHECK(initial_membership >= 0.0 && initial_membership < 1.0);
  PTS_CHECK(beta >= 0.0 && beta <= 1.0);
  FuzzyGoals goals;
  goals.beta = beta;
  const auto values = initial.as_array();
  for (std::size_t i = 0; i < kNumObjectives; ++i) {
    // Degenerate objectives (e.g. zero area in a toy netlist) get a unit
    // goal so the membership stays well-defined and constant.
    const double value = values[i] > 0.0 ? values[i] : 1.0;
    const double goal = value * target_improvement;
    // Solve raw(value) == initial_membership for tolerance:
    //   1 - (value - goal) / (tol * goal) = m  =>  tol = (value - goal) /
    //   ((1 - m) * goal)
    const double tol =
        (value - goal) / ((1.0 - initial_membership) * goal);
    goals.membership[i].goal = goal;
    goals.membership[i].tolerance = std::max(tol, 1e-9);
  }
  return goals;
}

}  // namespace pts::cost
