// Exact static timing analysis.
//
// Computes, for the current placement geometry, the arrival time at every
// cell output and the critical (longest) path delay from primary inputs to
// primary outputs. O(cells + pins) per run — used for goal calibration,
// final reporting and for validating the incremental K-paths estimator, not
// inside the search inner loop.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"
#include "placement/hpwl.hpp"
#include "timing/delay_model.hpp"

namespace pts::timing {

struct StaResult {
  /// Arrival time at each cell's output (input pads: 0).
  std::vector<double> arrival;
  /// Critical path delay (max arrival over primary outputs).
  double critical_delay = 0.0;
  /// Cells of one critical path, from a primary input to a primary output.
  std::vector<netlist::CellId> critical_path;
};

/// Runs STA with interconnect delays taken from `hpwl` (current boxes).
StaResult run_sta(const netlist::Netlist& netlist, const placement::HpwlState& hpwl,
                  const DelayModel& model);

/// STA with every net's wire delay forced to `uniform_net_delay`
/// (placement-independent; used to pick structurally critical paths).
StaResult run_sta_uniform(const netlist::Netlist& netlist, double uniform_net_delay,
                          const DelayModel& model);

}  // namespace pts::timing
