// A persistent thread pool and atomic-counter parallel-for.
//
// The shared-memory engine (parallel/shared_engine) dispatches one short
// parallel region per compound-move level, so worker threads must be
// reusable: ThreadPool spawns its workers once and re-dispatches them with
// a generation counter under one mutex, instead of paying a thread spawn
// per region. The caller participates as worker 0, so a pool of N threads
// spawns only N-1 std::threads (and a 1-thread pool spawns none — the
// region runs inline, which is what makes the 1-thread engine bit-identical
// to, and as cheap as, the sequential path).
//
// Work distribution is the classic shared-counter idiom: every worker
// fetch_add's a shared index and claims what it got, so load balance is
// automatic whatever the per-item cost. parallel_for claims one index per
// grab; parallel_for_chunked claims `chunk` consecutive indices per grab,
// trading a little balance for fewer contended counter bumps and
// cache-friendly runs over adjacent output slots.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/check.hpp"

namespace pts {

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller is worker 0).
  explicit ThreadPool(std::size_t threads) : threads_(threads) {
    PTS_CHECK(threads >= 1);
    workers_.reserve(threads - 1);
    for (std::size_t i = 1; i < threads; ++i) {
      workers_.emplace_back([this, i] { worker_loop(i); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  std::size_t threads() const { return threads_; }

  /// Runs `job(worker_index)` on every worker concurrently — the caller runs
  /// index 0 — and returns once all of them have finished. The mutex
  /// handoffs at dispatch and join give the usual fork/join memory ordering:
  /// everything the caller wrote before run() is visible to the workers, and
  /// everything the workers wrote is visible to the caller after run().
  void run(const std::function<void(std::size_t)>& job) {
    if (threads_ == 1) {
      job(0);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = &job;
      remaining_ = threads_ - 1;
      ++generation_;
    }
    wake_cv_.notify_all();
    job(0);
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return remaining_ == 0; });
    job_ = nullptr;
  }

 private:
  void worker_loop(std::size_t index) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t)>* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_cv_.wait(lock,
                      [&] { return shutdown_ || generation_ != seen; });
        if (shutdown_) return;
        seen = generation_;
        job = job_;
      }
      (*job)(index);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        --remaining_;
      }
      done_cv_.notify_one();
    }
  }

  const std::size_t threads_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t remaining_ = 0;
  bool shutdown_ = false;
};

/// Runs `fn(worker, i)` for every i in [begin, end); workers claim one index
/// per counter grab.
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  Fn&& fn) {
  std::atomic<std::size_t> counter{begin};
  pool.run([&](std::size_t worker) {
    for (;;) {
      const std::size_t i = counter.fetch_add(1, std::memory_order_relaxed);
      if (i >= end) break;
      fn(worker, i);
    }
  });
}

/// Runs `fn(worker, chunk_begin, chunk_end)` over [begin, end) in runs of
/// `chunk` consecutive indices per counter grab.
template <typename Fn>
void parallel_for_chunked(ThreadPool& pool, std::size_t begin, std::size_t end,
                          std::size_t chunk, Fn&& fn) {
  PTS_CHECK(chunk >= 1);
  std::atomic<std::size_t> counter{begin};
  pool.run([&](std::size_t worker) {
    for (;;) {
      const std::size_t lo = counter.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= end) break;
      fn(worker, lo, lo + chunk < end ? lo + chunk : end);
    }
  });
}

}  // namespace pts
