// The fallible .net parsing path (netlist/io.hpp try_* entry points) and
// content hashing.
//
// The serving layer feeds untrusted bytes into the parser, so the core
// contract here is "malformed input is an error value, never process
// death": a corruption fuzz pass applies seeded mutations to valid .net
// text and requires every parse to return (ok or error) without aborting.
// The happy path pins the exact-round-trip guarantee — write → parse →
// write is a fixed point (same ids, same pin order, bit-identical doubles)
// — which is also what makes content_hash usable as a cache key.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "netlist/generator.hpp"
#include "netlist/io.hpp"
#include "netlist/netlist.hpp"
#include "support/rng.hpp"

namespace pts::netlist {
namespace {

GeneratorConfig small_config(std::uint64_t seed) {
  GeneratorConfig config;
  config.name = "io-test";
  config.num_gates = 40;
  config.num_primary_inputs = 6;
  config.num_primary_outputs = 5;
  config.seed = seed;
  return config;
}

// -- exact round-trip --------------------------------------------------------

TEST(NetlistIoTest, WriteParseWriteIsAFixedPoint) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL, 1234567ULL}) {
    const Netlist original = generate_circuit(small_config(seed));
    const std::string text = to_net_format(original);

    const ParseResult parsed = try_parse_netlist_string(text);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    const Netlist& reparsed = *parsed.netlist;

    // Same ids in the same order, same pin order, bit-identical doubles:
    // the canonical serialization must reproduce byte for byte.
    EXPECT_EQ(to_net_format(reparsed), text) << "seed " << seed;
    EXPECT_EQ(content_hash(reparsed), content_hash(original));

    ASSERT_EQ(reparsed.num_cells(), original.num_cells());
    ASSERT_EQ(reparsed.num_nets(), original.num_nets());
    for (CellId c = 0; c < original.num_cells(); ++c) {
      EXPECT_EQ(reparsed.cell(c).name, original.cell(c).name);
      EXPECT_EQ(reparsed.cell(c).kind, original.cell(c).kind);
      EXPECT_EQ(reparsed.cell(c).width, original.cell(c).width);
      EXPECT_EQ(reparsed.cell(c).intrinsic_delay, original.cell(c).intrinsic_delay);
      EXPECT_EQ(reparsed.cell(c).load_factor, original.cell(c).load_factor);
    }
    for (NetId n = 0; n < original.num_nets(); ++n) {
      EXPECT_EQ(reparsed.net(n).driver, original.net(n).driver);
      EXPECT_EQ(reparsed.net(n).sinks, original.net(n).sinks);
      EXPECT_EQ(reparsed.net(n).weight, original.net(n).weight);
    }
  }
}

TEST(NetlistIoTest, ContentHashSeparatesCircuits) {
  const Netlist a = generate_circuit(small_config(1));
  const Netlist b = generate_circuit(small_config(2));
  EXPECT_NE(content_hash(a), content_hash(b));
  // Regenerating with the same config is bit-identical, so hashes agree.
  const Netlist a2 = generate_circuit(small_config(1));
  EXPECT_EQ(content_hash(a), content_hash(a2));
}

// -- structured malformed inputs --------------------------------------------

struct BadCase {
  const char* label;
  const char* text;
  const char* expect_substring;
};

TEST(NetlistIoTest, MalformedInputReturnsErrorWithContext) {
  const BadCase cases[] = {
      {"unknown keyword", "circuit c\npi a\nfoo bar\n", "unknown keyword"},
      {"unknown cell in net", "circuit c\npi a\npo z\nnet n 1 a ghost\n",
       "unknown cell"},
      {"duplicate cell name", "circuit c\npi a\npi a\n", "duplicate name"},
      {"duplicate net name",
       "circuit c\npi a\npi b\npo y\npo z\nnet n 1 a y\nnet n 1 b z\n",
       "duplicate name"},
      {"cells before circuit", "pi a\ncircuit c\n", "circuit line must precede"},
      {"po drives a net", "circuit c\npi a\npo z\nnet n 1 z a\n", "cannot drive"},
      {"pi as sink", "circuit c\npi a\npi b\nnet n 1 a b\n", "cannot be a net sink"},
      {"cell driving two nets",
       "circuit c\npi a\npo y\npo z\nnet n1 1 a y\nnet n2 1 a z\n",
       "already drives"},
      {"po sunk twice",
       "circuit c\npi a\npi b\npo z\nnet n1 1 a z\nnet n2 1 b z\n",
       "exactly one"},
      {"self-loop",
       "circuit c\npi a\ngate g 1 1.0 0.1\npo z\nnet n 1 g g z\n", "self-loop"},
      {"net with no sinks", "circuit c\npi a\nnet n 1 a\n", "net"},
      {"non-finite weight", "circuit c\npi a\npo z\nnet n inf a z\n", ""},
      {"nan delay", "circuit c\ngate g 1 nan 0.1\n", ""},
      {"overflowing number", "circuit c\ngate g 1 1e999 0.1\n", ""},
      {"trailing junk number", "circuit c\ngate g 1 1.5x 0.1\n", ""},
      {"missing gate fields", "circuit c\ngate g 1\n", ""},
      {"missing circuit name", "circuit\n", ""},
      {"cycle",
       "circuit c\npi a\ngate g1 2 1.0 0.1\ngate g2 1 1.0 0.1\npo z\n"
       "net na 1 a g1\nnet n1 1 g1 g2\nnet n2 1 g2 g1 z\n",
       "cycle"},
  };
  for (const BadCase& c : cases) {
    const ParseResult result = try_parse_netlist_string(c.text);
    EXPECT_FALSE(result.ok()) << c.label;
    EXPECT_FALSE(result.error.empty()) << c.label;
    if (c.expect_substring[0] != '\0') {
      EXPECT_NE(result.error.find(c.expect_substring), std::string::npos)
          << c.label << ": got '" << result.error << "'";
    }
  }
}

// -- corruption fuzzing ------------------------------------------------------

/// One seeded mutation of `text`: delete / duplicate / garble a span, or
/// truncate. Plain byte surgery — no knowledge of the grammar — so the
/// result exercises arbitrary breakage, not just anticipated cases.
std::string mutate(const std::string& text, Rng& rng) {
  std::string out = text;
  if (out.empty()) return out;
  switch (rng.below(5)) {
    case 0: {  // delete one byte
      out.erase(rng.below(out.size()), 1);
      break;
    }
    case 1: {  // overwrite a byte with printable noise
      out[rng.below(out.size())] =
          static_cast<char>('!' + rng.below(94));
      break;
    }
    case 2: {  // duplicate a line
      const std::size_t pos = rng.below(out.size());
      const std::size_t line_start = out.rfind('\n', pos);
      const std::size_t begin = line_start == std::string::npos ? 0 : line_start + 1;
      std::size_t end = out.find('\n', pos);
      if (end == std::string::npos) end = out.size();
      const std::string line = out.substr(begin, end - begin) + "\n";
      out.insert(begin, line);
      break;
    }
    case 3: {  // truncate mid-stream
      out.resize(rng.below(out.size()));
      break;
    }
    default: {  // splice a hostile token over a span
      static const char* kTokens[] = {"nan", "-inf", "1e999", "net", "gate",
                                      "\"", "-1", "18446744073709551616"};
      const std::size_t pos = rng.below(out.size());
      out.replace(pos, rng.below(8) + 1, kTokens[rng.below(8)]);
      break;
    }
  }
  return out;
}

TEST(NetlistIoTest, SeededCorruptionNeverAborts) {
  const Netlist nl = generate_circuit(small_config(3));
  const std::string text = to_net_format(nl);
  Rng rng(0xC0441234ULL);
  int rejected = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::string corrupted = text;
    // Stack 1–3 mutations so multi-error inputs get coverage too.
    const std::size_t rounds = 1 + rng.below(3);
    for (std::size_t i = 0; i < rounds; ++i) corrupted = mutate(corrupted, rng);
    // The whole point: this call must return, never abort. Either outcome
    // is legal (a mutated comment still parses); a failure must carry a
    // message.
    const ParseResult result = try_parse_netlist_string(corrupted);
    if (!result.ok()) {
      EXPECT_FALSE(result.error.empty());
      ++rejected;
    }
  }
  // Sanity: the mutator is actually breaking things most of the time.
  EXPECT_GT(rejected, 100);
}

// -- file round-trip and unopenable paths ------------------------------------

TEST(NetlistIoTest, FileRoundTripAndOpenFailures) {
  const Netlist nl = generate_circuit(small_config(9));
  const std::string path =
      ::testing::TempDir() + "pts_io_test_roundtrip.net";

  ASSERT_EQ(try_save_netlist_file(nl, path), "");
  const ParseResult loaded = try_load_netlist_file(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_EQ(to_net_format(*loaded.netlist), to_net_format(nl));
  std::remove(path.c_str());

  const ParseResult missing =
      try_load_netlist_file("/nonexistent-dir-pts/io_test.net");
  EXPECT_FALSE(missing.ok());
  EXPECT_NE(missing.error.find("io_test.net"), std::string::npos);

  const std::string unwritable =
      try_save_netlist_file(nl, "/nonexistent-dir-pts/io_test.net");
  EXPECT_FALSE(unwritable.empty());
}

// -- the trusted wrappers keep the abort contract ----------------------------

TEST(NetlistIoDeathTest, AbortWrappersStillAbortOnBadInput) {
  EXPECT_DEATH(parse_netlist_string("circuit c\nfoo\n"), "unknown keyword");
  EXPECT_DEATH(load_netlist_file("/nonexistent-dir-pts/io_test.net"),
               "io_test.net");
}

}  // namespace
}  // namespace pts::netlist
