#include "pvm/machine.hpp"

namespace pts::pvm {

ClusterConfig ClusterConfig::three_class(std::size_t fast, std::size_t medium,
                                         std::size_t slow, double fast_speed,
                                         double medium_speed, double slow_speed,
                                         double jitter) {
  PTS_CHECK(fast + medium + slow >= 1);
  ClusterConfig config;
  config.machines.reserve(fast + medium + slow);
  // Interleave classes so round-robin task binding spreads fast and slow
  // machines across both TSWs and CLWs (like a LAN where pvm_spawn places
  // tasks host by host).
  std::size_t f = 0, m = 0, s = 0;
  while (f < fast || m < medium || s < slow) {
    if (f < fast) {
      config.machines.push_back({"fast" + std::to_string(f), fast_speed, jitter});
      ++f;
    }
    if (m < medium) {
      config.machines.push_back(
          {"medium" + std::to_string(m), medium_speed, jitter});
      ++m;
    }
    if (s < slow) {
      config.machines.push_back({"slow" + std::to_string(s), slow_speed, jitter});
      ++s;
    }
  }
  return config;
}

ClusterConfig ClusterConfig::paper_cluster(double jitter) {
  // Three speed classes per Section 5; ratios follow typical same-era
  // workstation generations (each class ~25% slower than the previous).
  return three_class(7, 3, 2, 1.0, 0.75, 0.5, jitter);
}

ClusterConfig ClusterConfig::homogeneous(std::size_t n, double speed,
                                         double jitter) {
  PTS_CHECK(n >= 1);
  ClusterConfig config;
  config.machines.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Built with += rather than "m" + to_string(i): the operator+ form trips
    // GCC 12's -Wrestrict false positive (PR105651) at -O2 under -Werror.
    std::string name = "m";
    name += std::to_string(i);
    config.machines.push_back({std::move(name), speed, jitter});
  }
  return config;
}

}  // namespace pts::pvm
