// Flat CSR (compressed-sparse-row) view of the netlist pin graph.
//
// The Netlist's object model (Cell / Net structs with per-object vectors)
// is convenient to build and validate, but a vector-of-vectors layout makes
// the search inner loop cache-miss bound: every trial move chases one heap
// pointer per net for the sink list and loads ~80-byte structs (name string
// included) to read a 8-byte weight. The Topology packs everything the hot
// loops touch into contiguous arrays (DESIGN.md §7):
//
//   pin_offsets / net_pins    net -> pins, driver first, then the sinks in
//                             net order (so walking pins(net) visits cells
//                             in exactly the order compute_box always did —
//                             summation/min-max order is part of the API)
//   cell_net_offsets / cell_nets
//                             cell -> incident nets, out_net first, then
//                             input nets deduplicated in first-seen order
//                             (identical to the old Netlist::nets_of)
//   net_weight                per-net weight (SoA copy of Net::weight)
//   cell_width / cell_intrinsic_delay / cell_load_factor / cell_movable
//                             SoA copies of the Cell fields hot loops read
//
// The view is built once by Netlist::finalize() and is immutable afterwards;
// all workers of a parallel search share it read-only. The legacy accessors
// (Netlist::nets_of, Net::sinks, ...) remain valid — nets_of() is a thin
// forward over this storage — so existing code keeps compiling.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/ids.hpp"
#include "support/check.hpp"

namespace pts::netlist {

class Netlist;

class Topology {
 public:
  std::size_t num_cells() const {
    return cell_net_offsets_.empty() ? 0 : cell_net_offsets_.size() - 1;
  }
  std::size_t num_nets() const {
    return pin_offsets_.empty() ? 0 : pin_offsets_.size() - 1;
  }
  /// Total pin count (= sum of Net::pin_count over all nets).
  std::size_t num_pins() const { return net_pins_.size(); }

  /// All pins of `net`: the driver first, then the sinks in net order.
  std::span<const CellId> pins(NetId net) const {
    PTS_DCHECK(net < num_nets());  // also rejects the kNoNet sentinel
    return {net_pins_.data() + pin_offsets_[net],
            net_pins_.data() + pin_offsets_[net + 1]};
  }
  CellId driver(NetId net) const {
    PTS_DCHECK(net < num_nets());
    return net_pins_[pin_offsets_[net]];
  }
  std::span<const CellId> sinks(NetId net) const { return pins(net).subspan(1); }

  /// Nets incident to `cell` (out net first, inputs deduplicated) — the CSR
  /// storage behind Netlist::nets_of().
  std::span<const NetId> nets_of(CellId cell) const {
    PTS_DCHECK(cell < num_cells());  // also rejects the kNoCell sentinel
    return {cell_nets_.data() + cell_net_offsets_[cell],
            cell_nets_.data() + cell_net_offsets_[cell + 1]};
  }

  double net_weight(NetId net) const {
    PTS_DCHECK(net < net_weight_.size());
    return net_weight_[net];
  }
  /// Cell width as a double (the form every geometry computation uses).
  double cell_width(CellId cell) const {
    PTS_DCHECK(cell < cell_width_.size());
    return cell_width_[cell];
  }
  double cell_intrinsic_delay(CellId cell) const {
    PTS_DCHECK(cell < cell_intrinsic_delay_.size());
    return cell_intrinsic_delay_[cell];
  }
  double cell_load_factor(CellId cell) const {
    PTS_DCHECK(cell < cell_load_factor_.size());
    return cell_load_factor_[cell];
  }
  bool cell_movable(CellId cell) const {
    PTS_DCHECK(cell < cell_movable_.size());
    return cell_movable_[cell] != 0;
  }

 private:
  friend class Netlist;
  void build(const Netlist& netlist);

  std::vector<std::uint32_t> pin_offsets_;       // num_nets + 1
  std::vector<CellId> net_pins_;                 // driver-first pin lists
  std::vector<std::uint32_t> cell_net_offsets_;  // num_cells + 1
  std::vector<NetId> cell_nets_;                 // deduplicated incident nets
  std::vector<double> net_weight_;
  std::vector<double> cell_width_;
  std::vector<double> cell_intrinsic_delay_;
  std::vector<double> cell_load_factor_;
  std::vector<std::uint8_t> cell_movable_;
};

}  // namespace pts::netlist
