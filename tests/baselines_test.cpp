// Tests for src/baselines: constructive placers, local search, simulated
// annealing.
#include <gtest/gtest.h>

#include "baselines/annealing.hpp"
#include "baselines/constructive.hpp"
#include "baselines/local_search.hpp"
#include "netlist/generator.hpp"
#include "placement/hpwl.hpp"

namespace pts::baselines {
namespace {

using netlist::GeneratorConfig;
using netlist::Netlist;
using placement::HpwlState;
using placement::Layout;
using placement::Placement;

Netlist circuit(std::size_t gates = 60, std::uint64_t seed = 5) {
  GeneratorConfig config;
  config.num_gates = gates;
  config.seed = seed;
  return generate_circuit(config);
}

std::unique_ptr<cost::Evaluator> make_eval(const Netlist& nl,
                                           Placement p) {
  cost::CostParams params;
  auto paths =
      timing::extract_critical_paths(nl, params.num_paths, params.delay_model);
  const auto goals = cost::Evaluator::calibrate_goals(p, *paths, params);
  return std::make_unique<cost::Evaluator>(std::move(p), std::move(paths), params,
                                           goals);
}

TEST(Constructive, GreedyBeatsRandomOnWirelength) {
  const Netlist nl = circuit(100, 7);
  const Layout layout(nl);
  Rng rng(3);
  double random_total = 0.0, greedy_total = 0.0;
  for (int trial = 0; trial < 3; ++trial) {
    const Placement r = random_placement(nl, layout, rng);
    const Placement g = greedy_placement(nl, layout, rng);
    random_total += HpwlState(r).total();
    greedy_total += HpwlState(g).total();
  }
  EXPECT_LT(greedy_total, random_total);
}

TEST(Constructive, GreedyIsValidPlacement) {
  const Netlist nl = circuit(45, 2);
  const Layout layout(nl);
  Rng rng(9);
  const Placement g = greedy_placement(nl, layout, rng);
  g.check_consistent();
}

TEST(Constructive, GreedyHandlesTinyCircuit) {
  const Netlist nl = circuit(2, 1);
  const Layout layout(nl);
  Rng rng(1);
  greedy_placement(nl, layout, rng).check_consistent();
}

TEST(LocalSearchTest, ImprovesAndConverges) {
  const Netlist nl = circuit(56, 3);
  const Layout layout(nl);
  Rng rng(5);
  auto eval = make_eval(nl, random_placement(nl, layout, rng));
  const double initial = eval->cost();
  LocalSearchParams params;
  params.patience = 30;
  Rng search_rng(7);
  const LocalSearchResult r = local_search(*eval, params, search_rng);
  EXPECT_LT(r.best_cost, initial);
  EXPECT_TRUE(r.converged);
  // Steepest descent never accepts a worsening move: the evaluator cost
  // equals the best cost at convergence.
  EXPECT_NEAR(eval->cost(), r.best_cost, 1e-9);
  // Best trace is monotone non-increasing.
  for (std::size_t i = 1; i < r.best_trace.size(); ++i) {
    EXPECT_LE(r.best_trace.y[i], r.best_trace.y[i - 1]);
  }
}

TEST(LocalSearchTest, RespectsIterationCap) {
  const Netlist nl = circuit(40, 4);
  const Layout layout(nl);
  Rng rng(2);
  auto eval = make_eval(nl, random_placement(nl, layout, rng));
  LocalSearchParams params;
  params.max_iterations = 10;
  params.patience = 1000;
  Rng search_rng(3);
  const LocalSearchResult r = local_search(*eval, params, search_rng);
  EXPECT_EQ(r.iterations, 10u);
  EXPECT_FALSE(r.converged);
}

TEST(Annealing, ImprovesRandomSolution) {
  const Netlist nl = circuit(56, 6);
  const Layout layout(nl);
  Rng rng(4);
  auto eval = make_eval(nl, random_placement(nl, layout, rng));
  const double initial = eval->cost();
  AnnealParams params;
  params.moves_per_temp = 200;
  params.cooling = 0.85;
  Rng sa_rng(11);
  const AnnealResult r = anneal(*eval, params, sa_rng);
  EXPECT_LT(r.best_cost, initial);
  EXPECT_GT(r.moves_tried, 0u);
  EXPECT_GT(r.moves_accepted, 0u);
  EXPECT_LE(r.moves_accepted, r.moves_tried);
  EXPECT_EQ(r.best_slots.size(), nl.num_movable());
}

TEST(Annealing, AcceptanceRateFallsAsItCools) {
  const Netlist nl = circuit(40, 8);
  const Layout layout(nl);
  Rng rng(1);
  auto eval = make_eval(nl, random_placement(nl, layout, rng));
  AnnealParams hot;
  hot.moves_per_temp = 150;
  hot.cooling = 0.5;            // quench fast
  hot.final_temp_ratio = 1e-4;  // run until cold
  Rng sa_rng(2);
  const AnnealResult r = anneal(*eval, hot, sa_rng);
  // Overall acceptance is well below 100% (cold phases reject uphill).
  EXPECT_LT(r.moves_accepted, r.moves_tried);
}

TEST(Annealing, BestSlotsReproduceBestCost) {
  const Netlist nl = circuit(30, 9);
  const Layout layout(nl);
  Rng rng(6);
  Placement initial = random_placement(nl, layout, rng);
  auto eval = make_eval(nl, initial);
  AnnealParams params;
  params.moves_per_temp = 100;
  params.cooling = 0.8;
  Rng sa_rng(3);
  const AnnealResult r = anneal(*eval, params, sa_rng);
  eval->reset_placement(r.best_slots);
  EXPECT_NEAR(eval->cost(), r.best_cost, 1e-6);
}

}  // namespace
}  // namespace pts::baselines
