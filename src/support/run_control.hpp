// Engine-agnostic run control: stop conditions, cooperative cancellation,
// and progress observation, shared by every search engine and surfaced
// through the pts::solver::Solver front door.
//
// Two rules keep run control compatible with the same-seed determinism
// guarantee (DESIGN.md §5):
//  - stop checks and observer callbacks are read-only: they never touch an
//    engine RNG stream and never reorder floating-point accumulation;
//  - a run whose stop conditions never fire is bit-identical to the same
//    run without any run control attached.
// Stop checks run at engine-specific granularity — per tabu/local-search
// iteration, per annealing move, per *global* iteration for the parallel
// engines — so a fired condition stops the run at the next check point,
// not instantly.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>

namespace pts {

/// Cooperative cancellation. Share one token with a running engine (via
/// StopConditions::cancel) and call cancel() from any thread; the engine
/// returns at its next stop-check point with StopReason::Cancelled.
///
/// Cross-thread semantics: cancel() and cancelled() are safe to call
/// concurrently from any number of threads while an engine runs. The flag
/// uses relaxed atomics on purpose — cancellation is a *signal*, not a
/// synchronization point: it guarantees the engine eventually observes the
/// request (each stop check loads the flag), but it does NOT order any
/// other memory. Publishing data to the solve thread alongside a cancel
/// requires separate synchronization (the serving layer's SessionManager
/// does this by joining the session thread before touching its result).
/// cancel() is idempotent and may race the run's natural completion; the
/// token must outlive every engine still holding a pointer to it.
class CancelToken {
 public:
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Why a run returned. Completed means the engine's own budget ran out;
/// every other value names the stop condition that fired first.
enum class StopReason {
  Completed,
  IterationBudget,
  TimeLimit,
  TargetCost,
  TargetQuality,
  Cancelled,
  /// The serving layer's wall-clock deadline expired; engines never return
  /// this themselves — the SessionManager cancels the solve cooperatively
  /// and rewrites the reason on the way out.
  DeadlineExpired,
};

inline const char* stop_reason_name(StopReason reason) {
  switch (reason) {
    case StopReason::Completed: return "completed";
    case StopReason::IterationBudget: return "iteration-budget";
    case StopReason::TimeLimit: return "time-limit";
    case StopReason::TargetCost: return "target-cost";
    case StopReason::TargetQuality: return "target-quality";
    case StopReason::Cancelled: return "cancelled";
    case StopReason::DeadlineExpired: return "deadline-expired";
  }
  return "unknown";
}

/// Caller-imposed limits layered on top of an engine's own budget. Default
/// state imposes nothing.
struct StopConditions {
  /// Extra cap on engine iterations: tabu/local-search iterations,
  /// annealing moves, parallel *global* iterations. 0 = no extra cap.
  std::size_t max_iterations = 0;
  /// Engine-clock limit in seconds: wall time for the sequential engines
  /// and the threaded engine, virtual time for the sim engine (which makes
  /// the limit deterministic there). <= 0 = no limit.
  double max_seconds = 0.0;
  /// Stop once the best cost found is <= this.
  std::optional<double> target_cost;
  /// Stop once the best quality found is >= this (quality is in [0, 1]).
  std::optional<double> target_quality;
  /// Cooperative cancellation; not owned, may be null.
  const CancelToken* cancel = nullptr;

  bool engaged() const {
    return max_iterations > 0 || max_seconds > 0.0 || target_cost.has_value() ||
           target_quality.has_value() || cancel != nullptr;
  }
};

/// Read-only progress snapshot passed to Observer callbacks.
struct Progress {
  std::size_t iteration = 0;  ///< engine iterations completed so far
  double seconds = 0.0;       ///< engine clock (wall, or virtual for sim)
  double current_cost = 0.0;  ///< cost of the engine's working solution
  double best_cost = 0.0;     ///< best cost found so far
};

/// Progress callbacks. Invoked synchronously from the engine's driving
/// thread (the master thread for the parallel engines); implementations
/// must not mutate anything reachable from the engine.
///
/// Cross-thread semantics: all callbacks for one run arrive on ONE thread —
/// the thread executing the engine's run loop — and never concurrently with
/// each other, so an observer needs no internal locking against itself.
/// That thread is not necessarily the thread that built the spec: when a
/// solve is moved to a worker (as the serving layer's sessions do), the
/// callbacks move with it, and an observer shared with other threads must
/// synchronize its own state (e.g. the daemon's streaming observer hands
/// events to a per-connection mutex-serialized writer). Callbacks stop
/// before the engine's run() returns; after the solve thread is joined, no
/// callback can be in flight. Blocking inside a callback blocks the solve.
class Observer {
 public:
  virtual ~Observer() = default;
  /// A new best solution was adopted.
  virtual void on_improvement(const Progress& progress) { (void)progress; }
  /// An engine iteration finished (tabu/local iteration, annealing
  /// temperature step, parallel global iteration).
  virtual void on_iteration(const Progress& progress) { (void)progress; }
};

/// Bundle handed to an engine's run() entry point. Default-constructed
/// RunControl imposes nothing and observes nothing.
struct RunControl {
  StopConditions stop;
  Observer* observer = nullptr;  ///< not owned; may be null

  /// First stop condition that fired, or nullopt. Checked in order:
  /// cancellation, target cost, target quality, time limit, iteration
  /// budget.
  std::optional<StopReason> should_stop(std::size_t iterations_done,
                                        double seconds, double best_cost,
                                        double best_quality) const {
    if (stop.cancel != nullptr && stop.cancel->cancelled()) {
      return StopReason::Cancelled;
    }
    if (stop.target_cost && best_cost <= *stop.target_cost) {
      return StopReason::TargetCost;
    }
    if (stop.target_quality && best_quality >= *stop.target_quality) {
      return StopReason::TargetQuality;
    }
    if (stop.max_seconds > 0.0 && seconds >= stop.max_seconds) {
      return StopReason::TimeLimit;
    }
    if (stop.max_iterations > 0 && iterations_done >= stop.max_iterations) {
      return StopReason::IterationBudget;
    }
    return std::nullopt;
  }

  /// True when should_stop can ever fire; lets hot loops skip clock reads.
  bool needs_clock() const { return stop.max_seconds > 0.0; }

  void notify_improvement(const Progress& progress) const {
    if (observer != nullptr) observer->on_improvement(progress);
  }
  void notify_iteration(const Progress& progress) const {
    if (observer != nullptr) observer->on_iteration(progress);
  }
};

}  // namespace pts
