// Diversification (Kelly, Laguna & Glover style, reference [10]).
//
// At the start of every global iteration, each TSW diversifies the shared
// best solution *with respect to its own cell range*: `depth` moves whose
// first cell comes from the range. A "move" here is the paper's standard
// move — the best of `width` trial swaps — so diversification walks each
// TSW along a different, quality-preserving path from the incumbent
// ("such that a different initial solution is used at each TSW", §4.1).
// Distinct ranges give every TSW a different starting point, which is what
// keeps the multi-search threads from exploring overlapping areas and what
// makes the search MPSS (multiple points, single strategy, §4.3).
#pragma once

#include "cost/evaluator.hpp"
#include "support/rng.hpp"
#include "tabu/candidate.hpp"
#include "tabu/move.hpp"

namespace pts::tabu {

struct DiversifyParams {
  /// Number of moves applied during one diversification step.
  std::size_t depth = 4;
  /// Trial swaps per move (best one is applied, even if degrading).
  std::size_t width = 8;
  /// If false the step is skipped entirely (Figure 9's "no
  /// diversification" run).
  bool enabled = true;
  /// Candidate batch width for Evaluator::probe_batch (<= 1: scalar
  /// probe_swap per trial). Bit-identical either way; see CompoundParams.
  std::size_t batch = 8;
};

/// Applies the diversification step to `eval`'s current solution
/// (diversification is kept, not undone), clearing `applied` and filling it
/// with the applied moves. Callers that run every global iteration (the
/// TSW state machine) pass a reused member buffer so the steady state does
/// not allocate. The number of trial evaluations charged to the TSW is
/// depth * width.
void diversify(cost::Evaluator& eval, const CellRange& range,
               const DiversifyParams& params, Rng& rng,
               std::vector<Move>* applied);

/// Convenience wrapper returning a fresh move buffer.
std::vector<Move> diversify(cost::Evaluator& eval, const CellRange& range,
                            const DiversifyParams& params, Rng& rng);

}  // namespace pts::tabu
