#!/usr/bin/env python3
"""Emit a compact perf-trail JSON from the smoke-tier benches.

Runs `micro_core --smoke --benchmark_format=json`, extracts the probe
throughput benches (BM_ProbeCsr / BM_ProbeVecOfVec / BM_ProbeSwap /
BM_ApplySwap / BM_ProbeBatch{4,8,16,32}) keyed by circuit, and writes a
small JSON file with ns per candidate per bench plus the
CSR-vs-vector-of-vectors and batch8-vs-scalar probe speedups per circuit. With --macro it
additionally runs `macro_scale --smoke` and folds its per-circuit scale
report (build/setup/probe times, the short engine runs, and the
parallel-shared strong-scaling counters at 1/2/4/8 threads) into the output. CI runs this on every push and uploads the result as an
artifact (BENCH_baseline.json), so future PRs have a trajectory of
throughput numbers to compare against; the checked-in
bench/BENCH_baseline.json is the snapshot taken when the CSR topology
landed (macro_scale numbers added with the scale tier).

Both inputs are schema-validated: a tracked bench or counter that goes
missing (renamed benchmark, label format drift, a MACRO line losing a key)
fails the run loudly instead of silently emitting a hollow perf trail.

Usage:
    bench/dump_json.py <path-to-micro_core> [--macro <path-to-macro_scale>]
                       [-o BENCH_baseline.json]
"""

import argparse
import json
import subprocess
import sys

TRACKED_PREFIXES = ("BM_ProbeCsr", "BM_ProbeVecOfVec", "BM_ProbeSwap",
                    "BM_ApplySwap", "BM_ProbeBatch4", "BM_ProbeBatch8",
                    "BM_ProbeBatch16", "BM_ProbeBatch32")

# One BM_ProbeBatchN iteration scores N candidates; real_time is divided by
# the width so every tracked number is ns per candidate, comparable with
# BM_ProbeSwap.
BATCH_WIDTHS = {"BM_ProbeBatch4": 4, "BM_ProbeBatch8": 8,
                "BM_ProbeBatch16": 16, "BM_ProbeBatch32": 32}

MACRO_KEYS = ("circuit", "gates", "nets", "pins", "logic_depth", "build_ms",
              "setup_ms", "probe_ns", "batch_probe_ns", "batch_speedup",
              "engines", "shared_scaling", "eco")
ECO_KEYS = ("cold_trials", "warm_trials", "trials_ratio", "cold_best_cost",
            "warm_initial_cost", "warm_best_cost", "warm_reached_target")
MACRO_ENGINES = ("tabu", "anneal", "parallel-sim", "parallel-shared")
MACRO_ENGINE_KEYS = ("wall_ms", "makespan_s", "initial_cost", "best_cost",
                     "best_quality", "tt50_s")
SCALING_THREADS = ("1", "2", "4", "8")
SCALING_KEYS = ("makespan_s", "trials_per_s", "speedup_vs_1")


def fail(message):
    sys.exit(f"dump_json.py: {message}")


def run_micro(binary):
    cmd = [
        binary,
        "--smoke",
        "--benchmark_format=json",
        "--benchmark_filter=" + "|".join(TRACKED_PREFIXES),
    ]
    out = subprocess.run(cmd, check=True, capture_output=True, text=True)
    return json.loads(out.stdout)


def parse_micro(raw):
    benches = {}
    for entry in raw.get("benchmarks", []):
        name = entry["name"]  # e.g. BM_ProbeCsr/3
        bench = name.split("/")[0]
        if bench not in TRACKED_PREFIXES:
            continue
        label = entry.get("label") or name
        circuit = label.split()[0]
        if "real_time" not in entry:
            fail(f"micro bench {name} has no real_time counter")
        per_item = entry["real_time"] / BATCH_WIDTHS.get(bench, 1)
        benches.setdefault(bench, {})[circuit] = round(per_item, 2)
    # Schema: every tracked bench present, every bench covering the same
    # non-empty circuit set, every timing positive.
    missing = [b for b in TRACKED_PREFIXES if b not in benches]
    if missing:
        fail(f"tracked benches missing from micro_core output: {missing}")
    circuit_sets = {b: set(v) for b, v in benches.items()}
    reference = circuit_sets[TRACKED_PREFIXES[0]]
    if not reference:
        fail(f"{TRACKED_PREFIXES[0]} reported no circuits")
    for bench, circuits in circuit_sets.items():
        if circuits != reference:
            fail(f"{bench} circuits {sorted(circuits)} != "
                 f"{TRACKED_PREFIXES[0]} circuits {sorted(reference)}")
    for bench, values in benches.items():
        for circuit, ns in values.items():
            if not ns > 0:
                fail(f"{bench}/{circuit} reported non-positive time {ns}")
    return benches


def run_macro(binary):
    cmd = [binary, "--smoke"]
    out = subprocess.run(cmd, check=True, capture_output=True, text=True)
    entries = []
    for line in out.stdout.splitlines():
        if line.startswith("MACRO "):
            try:
                entries.append(json.loads(line[len("MACRO "):]))
            except json.JSONDecodeError as err:
                fail(f"unparseable MACRO line from {binary}: {err}")
    if not entries:
        fail(f"{binary} emitted no MACRO lines")
    report = {}
    for entry in entries:
        missing = [k for k in MACRO_KEYS if k not in entry]
        if missing:
            fail(f"MACRO entry {entry.get('circuit', '?')} missing keys "
                 f"{missing}")
        for engine in MACRO_ENGINES:
            if engine not in entry["engines"]:
                fail(f"MACRO entry {entry['circuit']} missing engine "
                     f"{engine}")
            absent = [k for k in MACRO_ENGINE_KEYS
                      if k not in entry["engines"][engine]]
            if absent:
                fail(f"MACRO entry {entry['circuit']} engine {engine} "
                     f"missing counters {absent}")
        for threads in SCALING_THREADS:
            if threads not in entry["shared_scaling"]:
                fail(f"MACRO entry {entry['circuit']} shared_scaling missing "
                     f"thread count {threads}")
            point = entry["shared_scaling"][threads]
            absent = [k for k in SCALING_KEYS if k not in point]
            if absent:
                fail(f"MACRO entry {entry['circuit']} shared_scaling[{threads}]"
                     f" missing counters {absent}")
            if not point["trials_per_s"] > 0:
                fail(f"MACRO entry {entry['circuit']} shared_scaling[{threads}]"
                     f" non-positive trials_per_s")
            if not point["speedup_vs_1"] > 0:
                fail(f"MACRO entry {entry['circuit']} shared_scaling[{threads}]"
                     f" non-positive speedup_vs_1")
        absent = [k for k in ECO_KEYS if k not in entry["eco"]]
        if absent:
            fail(f"MACRO entry {entry['circuit']} eco block missing counters "
                 f"{absent}")
        if not entry["eco"]["cold_trials"] > 0:
            fail(f"MACRO entry {entry['circuit']} eco non-positive cold_trials")
        if not entry["eco"]["trials_ratio"] >= 0:
            fail(f"MACRO entry {entry['circuit']} eco negative trials_ratio")
        if not entry["build_ms"] > 0:
            fail(f"MACRO entry {entry['circuit']} non-positive build_ms")
        if not entry["batch_probe_ns"] > 0:
            fail(f"MACRO entry {entry['circuit']} non-positive batch_probe_ns")
        if not entry["batch_speedup"] > 0:
            fail(f"MACRO entry {entry['circuit']} non-positive batch_speedup")
        report[entry["circuit"]] = entry
    return report


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("binary", help="path to the micro_core binary")
    parser.add_argument("--macro", default=None,
                        help="path to the macro_scale binary (optional)")
    parser.add_argument("-o", "--output", default="BENCH_baseline.json")
    args = parser.parse_args()

    raw = run_micro(args.binary)
    benches = parse_micro(raw)

    speedup = {}
    csr = benches["BM_ProbeCsr"]
    vov = benches["BM_ProbeVecOfVec"]
    for circuit in sorted(set(csr) & set(vov)):
        speedup[circuit] = round(vov[circuit] / csr[circuit], 3)

    batch_speedup = {}
    swap = benches["BM_ProbeSwap"]
    batch8 = benches["BM_ProbeBatch8"]
    for circuit in sorted(set(swap) & set(batch8)):
        batch_speedup[circuit] = round(swap[circuit] / batch8[circuit], 3)

    result = {
        "source": "micro_core --smoke (google-benchmark)",
        "unit": "ns per candidate (real time; batch benches divided by width)",
        "context": raw.get("context", {}),
        "benchmarks": benches,
        "probe_speedup_csr_vs_vecofvec": speedup,
        "probe_batch_speedup": batch_speedup,
    }
    if args.macro:
        result["macro_scale"] = run_macro(args.macro)
    with open(args.output, "w") as f:
        json.dump(result, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.output}: probe speedup per circuit {speedup}")
    print(f"  batch8-vs-scalar probe speedup {batch_speedup}")
    if args.macro:
        for circuit, entry in sorted(result["macro_scale"].items()):
            scaling = entry["shared_scaling"]
            speedups = ", ".join(
                f"{t}T {scaling[t]['speedup_vs_1']:.2f}x"
                for t in SCALING_THREADS)
            eco = entry["eco"]
            print(f"  {circuit}: build {entry['build_ms']:.0f} ms, "
                  f"probe {entry['probe_ns']:.0f} ns/op, "
                  f"shared scaling {speedups}, "
                  f"eco warm/cold trials {eco['trials_ratio']:.3f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
