// Deterministic pseudo-random number generation.
//
// Every stochastic component of the library (netlist generator, initial
// placement, candidate-list sampling, diversification, machine-load jitter)
// draws from an explicitly seeded pts::Rng so that whole experiments are
// reproducible bit-for-bit. Rng::fork() derives statistically independent
// child streams, which is how parallel workers (TSWs / CLWs) obtain their
// own generators without sharing state.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace pts {

/// SplitMix64 — used for seeding and stream derivation (Steele et al.).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — the library-wide generator.
/// Satisfies UniformRandomBitGenerator so it can drive <random> if needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state from a single seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x5eed'0f'7ab00ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
    // An all-zero state is the one forbidden fixed point.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[3] = 0x1ULL;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  std::uint64_t operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method; unbiased for every bound.
  std::uint64_t below(std::uint64_t bound) {
    PTS_CHECK(bound > 0);
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    PTS_CHECK(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Bernoulli draw.
  bool chance(double p) { return uniform() < p; }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = sqrt_neg2_log(s);
    spare_ = v * f;
    has_spare_ = true;
    return u * f;
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Two distinct indices in [0, n), n >= 2.
  std::pair<std::size_t, std::size_t> distinct_pair(std::size_t n) {
    PTS_CHECK(n >= 2);
    const auto a = static_cast<std::size_t>(below(n));
    auto b = static_cast<std::size_t>(below(n - 1));
    if (b >= a) ++b;
    return {a, b};
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Pick a uniformly random element (vector must be non-empty).
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    PTS_CHECK(!v.empty());
    return v[static_cast<std::size_t>(below(v.size()))];
  }

  /// Derives an independent child stream; `salt` distinguishes siblings.
  /// Forking is how master/TSW/CLW processes obtain private generators.
  Rng fork(std::uint64_t salt) {
    SplitMix64 sm(next() ^ (salt * 0x9e3779b97f4a7c15ULL + 0x517cc1b727220a95ULL));
    return Rng(sm.next());
  }

  /// Complete generator state, for checkpoint/restore. The Marsaglia spare
  /// is included so a restored stream replays normal() draws bit-for-bit.
  struct State {
    std::uint64_t s[4]{};
    double spare = 0.0;
    bool has_spare = false;
  };

  State state() const {
    return State{{s_[0], s_[1], s_[2], s_[3]}, spare_, has_spare_};
  }

  void set_state(const State& st) {
    for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[3] = 0x1ULL;
    spare_ = st.spare;
    has_spare_ = st.has_spare;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  static double sqrt_neg2_log(double s);

  std::uint64_t s_[4]{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace pts
