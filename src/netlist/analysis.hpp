// Structural circuit analysis.
//
// Summarizes the properties that determine placement difficulty — net
// degree distribution, gate fanin/fanout, logic depth profile, and a
// Rent-style locality estimate — used by the examples for reporting and
// by tests to check that the synthetic generator produces circuit-like
// structure (DESIGN.md §2: the experiments depend on these properties,
// not on the exact ISCAS gate functions).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace pts::netlist {

struct DistributionSummary {
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t min = 0;
  std::size_t max = 0;
  /// histogram[k] = number of items with value k (truncated at 16+).
  std::vector<std::size_t> histogram;
};

struct CircuitStats {
  std::size_t cells = 0;
  std::size_t gates = 0;
  std::size_t primary_inputs = 0;
  std::size_t primary_outputs = 0;
  std::size_t nets = 0;
  std::size_t pins = 0;
  std::size_t logic_depth = 0;
  double avg_pins_per_net = 0.0;
  double avg_pins_per_cell = 0.0;
  DistributionSummary net_degree;   ///< pins per net
  DistributionSummary gate_fanin;   ///< input pins per gate
  DistributionSummary gate_fanout;  ///< sinks of each gate's output net
  std::int64_t total_gate_width = 0;
};

CircuitStats analyze_circuit(const Netlist& netlist);

/// Human-readable multi-line report.
std::string format_stats(const CircuitStats& stats);

}  // namespace pts::netlist
