#include "tabu/frequency.hpp"

#include <algorithm>

namespace pts::tabu {

FrequencyMemory::FrequencyMemory(std::size_t num_cells, FrequencyParams params)
    : params_(params),
      counts_(num_cells, 0),
      improving_counts_(num_cells, 0) {}

void FrequencyMemory::record(const Move& move, bool improved) {
  PTS_DCHECK(move.a < counts_.size() && move.b < counts_.size());
  ++transitions_;
  for (netlist::CellId cell : {move.a, move.b}) {
    max_count_ = std::max(max_count_, ++counts_[cell]);
    if (improved) {
      max_improving_ = std::max(max_improving_, ++improving_counts_[cell]);
    }
  }
}

double FrequencyMemory::normalized(const std::vector<std::uint64_t>& counts,
                                   netlist::CellId cell) const {
  const std::uint64_t max =
      &counts == &counts_ ? max_count_ : max_improving_;
  if (max == 0) return 0.0;
  return static_cast<double>(counts[cell]) / static_cast<double>(max);
}

double FrequencyMemory::adjusted_cost(const Move& move,
                                      double candidate_cost) const {
  switch (params_.mode) {
    case LongTermMode::Off:
      return candidate_cost;
    case LongTermMode::Diversify: {
      const double activity =
          0.5 * (normalized(counts_, move.a) + normalized(counts_, move.b));
      return candidate_cost + params_.strength * activity;
    }
    case LongTermMode::Intensify: {
      const double affinity = 0.5 * (normalized(improving_counts_, move.a) +
                                     normalized(improving_counts_, move.b));
      return candidate_cost - params_.strength * affinity;
    }
  }
  return candidate_cost;
}

void FrequencyMemory::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  std::fill(improving_counts_.begin(), improving_counts_.end(), 0);
  transitions_ = 0;
  max_count_ = 0;
  max_improving_ = 0;
}

}  // namespace pts::tabu
