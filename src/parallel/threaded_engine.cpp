#include "parallel/threaded_engine.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "parallel/protocol.hpp"
#include "parallel/worker_logic.hpp"
#include "pvm/vm.hpp"
#include "support/log.hpp"
#include "support/stopwatch.hpp"

namespace pts::parallel {

using netlist::CellId;
using pvm::Message;
using pvm::TaskContext;
using pvm::TaskId;
using tabu::CompoundMove;

namespace {

/// Pure stream derivation shared with the SimEngine: identical salts give
/// identical algorithm streams (see PtsConfig::shared_tsw_streams).
Rng derive_stream(std::uint64_t seed, std::uint64_t salt) {
  SplitMix64 sm((seed ^ 0xa5a5'5a5a'1234'9876ULL) +
                salt * 0x9e3779b97f4a7c15ULL);
  return Rng(sm.next());
}

/// Candidate-list worker task body (paper Figure 4).
void clw_main(TaskContext& ctx, const SearchSetup& setup, tabu::CellRange range,
              Rng algo_rng) {
  auto init = ctx.recv(kTagInit);
  if (!init) return;  // VM shut down before the search started
  const TaskId parent = init->sender();
  auto eval = setup.make_evaluator(decode_init(*init));
  ClwSearch search(range, setup.config.tabu.compound);

  for (;;) {
    auto msg = ctx.recv();
    if (!msg || msg->tag() == kTagTerminate) return;
    if (msg->tag() == kTagForceReport) {
      // Stale: the report for that iteration was already sent.
      continue;
    }
    PTS_CHECK_MSG(msg->tag() == kTagSearch, "CLW: unexpected message tag");
    SearchRequest req = SearchRequest::decode(*msg);
    if (!req.reset_slots.empty()) {
      PTS_CHECK(req.sync_swaps.empty());
      eval->reset_placement(req.reset_slots);
    } else {
      for (const auto& swap : req.sync_swaps) eval->apply_swap(swap.a, swap.b);
    }

    search.begin(*eval, algo_rng);
    bool cut = false;
    while (!search.done()) {
      search.step();
      ctx.charge(setup.config.sim.trial_work);
      if (ctx.probe(kTagForceReport)) {
        auto force = ctx.try_recv(kTagForceReport);
        if (force && decode_force(*force) == req.local_seq) {
          cut = true;
          break;
        }
        // Stale force for an older iteration: drop and keep searching.
      }
    }
    const CompoundMove result = search.result();
    ClwReport report;
    report.local_seq = req.local_seq;
    report.swaps = result.swaps;
    report.cost = result.cost;
    report.was_forced = cut;
    report.improved_early = result.improved_early;
    report.work_units = static_cast<double>(search.steps_taken());
    search.abandon();
    ctx.send(parent, report.encode());
  }
}

/// Tabu-search worker task body (paper Figure 3).
void tsw_main(TaskContext& ctx, const SearchSetup& setup, std::size_t tsw_index,
              tabu::CellRange diversify_range, const Stopwatch& watch) {
  const auto& cfg = setup.config;
  auto init = ctx.recv(kTagInit);
  if (!init) return;
  const TaskId master = init->sender();
  auto eval = setup.make_evaluator(decode_init(*init));
  const std::uint64_t stream_index =
      cfg.shared_tsw_streams ? 0 : static_cast<std::uint64_t>(tsw_index);
  TswState state(*eval, cfg.tabu, cfg.diversify, diversify_range,
                 derive_stream(cfg.seed, 1000 + stream_index));

  // Spawn this TSW's candidate-list workers (paper: the lower, 1-control
  // parallelization level) and send them the initial solution.
  const auto clw_ranges =
      tabu::partition_cells(setup.netlist->num_movable(), cfg.clws_per_tsw);
  std::vector<TaskId> clws(cfg.clws_per_tsw);
  for (std::size_t j = 0; j < cfg.clws_per_tsw; ++j) {
    const std::string name =
        "clw" + std::to_string(tsw_index) + "." + std::to_string(j);
    Rng algo_rng = derive_stream(cfg.seed, 3000 + stream_index * 64 + j);
    clws[j] = ctx.vm().spawn(
        name, [&setup, range = clw_ranges[j], algo_rng](TaskContext& clw_ctx) {
          clw_main(clw_ctx, setup, range, algo_rng);
        });
    ctx.send(clws[j], make_init(eval->placement().slots()));
  }

  for (std::size_t g = 0; g < cfg.global_iterations; ++g) {
    if (g > 0) {
      // Wait for the master's broadcast, draining stale force requests.
      for (;;) {
        auto msg = ctx.recv();
        if (!msg) return;
        if (msg->tag() == kTagTerminate) {
          for (TaskId clw : clws) ctx.send(clw, make_terminate());
          return;
        }
        if (msg->tag() == kTagForceReport) continue;  // stale
        PTS_CHECK_MSG(msg->tag() == kTagBroadcast, "TSW: expected broadcast");
        Broadcast bc = Broadcast::decode(*msg);
        state.adopt(bc.best_slots, bc.tabu_entries);
        break;
      }
    }
    state.begin_global_iteration();
    const std::size_t div_swaps = state.apply_diversification();
    ctx.charge(cfg.sim.diversify_work_per_swap * static_cast<double>(div_swaps));

    bool master_forced = false;
    bool reset_clws = true;
    std::size_t iterations_done = 0;
    for (std::size_t l = 0; l < cfg.local_iterations && !master_forced; ++l) {
      const std::uint64_t seq = static_cast<std::uint64_t>(g) *
                                    cfg.local_iterations +
                                l;
      SearchRequest req;
      req.local_seq = seq;
      if (reset_clws) {
        req.reset_slots = eval->placement().slots();
      } else {
        req.sync_swaps = state.last_applied();
      }
      reset_clws = false;
      for (TaskId clw : clws) ctx.send(clw, req.encode());

      // Collect exactly one report per CLW, applying the collection policy.
      std::vector<CompoundMove> candidates(clws.size());
      std::vector<char> reported(clws.size(), 0);
      std::size_t count = 0;
      bool forced_clws = false;
      const std::size_t threshold =
          cfg.tsw_policy.reports_before_force(clws.size());
      auto force_stragglers = [&] {
        if (forced_clws) return;
        forced_clws = true;
        for (std::size_t j = 0; j < clws.size(); ++j) {
          if (!reported[j]) ctx.send(clws[j], make_force(seq));
        }
      };
      while (count < clws.size()) {
        if (count >= threshold) force_stragglers();
        auto msg = ctx.recv();
        if (!msg) return;
        if (msg->tag() == kTagForceReport && msg->sender() == master) {
          const std::uint64_t fg = decode_force(*msg);
          if (fg == g) {
            master_forced = true;
            force_stragglers();  // wind down the in-flight iteration
          }
          continue;
        }
        if (msg->tag() != kTagReport) continue;  // stale force to ignore
        ClwReport report = ClwReport::decode(*msg);
        if (report.local_seq != seq) continue;  // stale (should not happen)
        const auto j = static_cast<std::size_t>(
            std::find(clws.begin(), clws.end(), msg->sender()) - clws.begin());
        PTS_CHECK(j < clws.size());
        CompoundMove move;
        move.swaps = report.swaps;
        move.cost = report.cost;
        move.improved_early = report.improved_early;
        candidates[j] = std::move(move);
        reported[j] = 1;
        ++count;
      }

      if (master_forced) break;  // discard the interrupted iteration
      ctx.charge(cfg.sim.tsw_select_work * static_cast<double>(clws.size()));
      state.process_candidates(candidates);
      state.end_local_iteration(watch.seconds());
      ++iterations_done;
    }

    TswReport report;
    report.global_seq = g;
    report.best_cost = state.iteration_best_cost();
    report.best_slots = state.iteration_best_slots();
    report.tabu_entries = state.tabu_list().entries();
    report.was_forced = master_forced;
    report.local_iterations_done = iterations_done;
    const auto& stats = state.stats();
    report.stat_iterations = stats.iterations;
    report.stat_accepted = stats.accepted;
    report.stat_rejected_tabu = stats.rejected_tabu;
    report.stat_aspirated = stats.aspirated;
    report.stat_early_accepts = stats.early_accepts;
    ctx.send(master, report.encode());
  }

  // Final handshake: wait for Terminate (drain anything else).
  for (;;) {
    auto msg = ctx.recv();
    if (!msg || msg->tag() == kTagTerminate) break;
  }
  for (TaskId clw : clws) ctx.send(clw, make_terminate());
}

}  // namespace

ThreadedEngine::ThreadedEngine(const netlist::Netlist& netlist,
                               const PtsConfig& config)
    : setup_(netlist, config) {}

PtsResult ThreadedEngine::run() { return run(RunControl{}); }

PtsResult ThreadedEngine::run(const RunControl& control) {
  const auto& cfg = setup_.config;
  pvm::VirtualMachine vm(cfg.cluster, cfg.seed,
                         cfg.threaded_seconds_per_unit);
  TaskContext& master = vm.host();
  Stopwatch watch;

  const auto tsw_ranges =
      tabu::partition_cells(setup_.netlist->num_movable(), cfg.num_tsws);
  std::vector<TaskId> tsws(cfg.num_tsws);
  for (std::size_t i = 0; i < cfg.num_tsws; ++i) {
    tsws[i] = vm.spawn("tsw" + std::to_string(i),
                       [this, i, range = tsw_ranges[i], &watch](TaskContext& ctx) {
                         tsw_main(ctx, setup_, i, range, watch);
                       });
    master.send(tsws[i], make_init(setup_.initial_slots));
  }

  PtsResult result;
  result.initial_cost = setup_.initial_cost;
  result.best_vs_time.name = "best_cost";
  result.best_vs_global.name = "best_cost";
  result.best_vs_time.add(0.0, setup_.initial_cost);

  double global_best_cost = setup_.initial_cost;
  std::vector<CellId> global_best_slots = setup_.initial_slots;
  std::vector<tabu::Move> global_best_tabu;
  std::map<TaskId, TswReport> final_reports;

  for (std::size_t g = 0; g < cfg.global_iterations; ++g) {
    std::map<TaskId, TswReport> reports;
    bool forced = false;
    const std::size_t threshold =
        cfg.master_policy.reports_before_force(tsws.size());
    while (reports.size() < tsws.size()) {
      if (reports.size() >= threshold && !forced) {
        forced = true;
        for (TaskId tsw : tsws) {
          if (reports.find(tsw) == reports.end()) {
            master.send(tsw, make_force(g));
          }
        }
      }
      auto msg = master.recv(kTagReport);
      PTS_CHECK_MSG(msg.has_value(), "master: VM shut down mid-search");
      TswReport report = TswReport::decode(*msg);
      PTS_CHECK(report.global_seq == g);
      reports.emplace(msg->sender(), std::move(report));
    }

    // Select the winner in TSW spawn order for deterministic tie-breaks.
    const TswReport* winner = nullptr;
    for (TaskId tsw : tsws) {
      const TswReport& r = reports.at(tsw);
      if (r.best_cost < global_best_cost &&
          (winner == nullptr || r.best_cost < winner->best_cost)) {
        winner = &r;
      }
    }
    if (winner != nullptr) {
      global_best_cost = winner->best_cost;
      global_best_slots = winner->best_slots;
      global_best_tabu = winner->tabu_entries;
      control.notify_improvement(
          {g + 1, watch.seconds(), global_best_cost, global_best_cost});
    }
    result.best_vs_time.add(watch.seconds(), global_best_cost);
    result.best_vs_global.add(static_cast<double>(g), global_best_cost);
    control.notify_iteration(
        {g + 1, watch.seconds(), global_best_cost, global_best_cost});

    // Stop checks run on the master at global-iteration granularity
    // against wall time; a fired condition terminates the TSWs in place of
    // the next broadcast. No check after the final iteration (a run that
    // did all its own work reports Completed). Quality is only
    // materialized (one evaluator build) when a quality target is set.
    bool stop_now = false;
    if (g + 1 < cfg.global_iterations && control.stop.engaged()) {
      double best_quality = 0.0;
      if (control.stop.target_quality.has_value()) {
        best_quality = setup_.make_evaluator(global_best_slots)->quality();
      }
      if (const auto reason = control.should_stop(g + 1, watch.seconds(),
                                                  global_best_cost,
                                                  best_quality)) {
        result.stop_reason = *reason;
        stop_now = true;
      }
    }

    if (!stop_now && g + 1 < cfg.global_iterations) {
      Broadcast bc;
      bc.global_seq = g;
      bc.best_cost = global_best_cost;
      bc.best_slots = global_best_slots;
      bc.tabu_entries = global_best_tabu;
      for (TaskId tsw : tsws) master.send(tsw, bc.encode());
    } else {
      final_reports = std::move(reports);
      if (stop_now) break;
    }
  }

  result.makespan = watch.seconds();
  for (TaskId tsw : tsws) master.send(tsw, make_terminate());
  vm.shutdown();

  result.best_cost = global_best_cost;
  result.best_slots = global_best_slots;
  auto final_eval = setup_.make_evaluator(global_best_slots);
  result.best_objectives = final_eval->objectives();
  result.best_quality = final_eval->quality();
  for (const auto& [task, report] : final_reports) {
    (void)task;
    tabu::SearchStats s;
    s.iterations = report.stat_iterations;
    s.accepted = report.stat_accepted;
    s.rejected_tabu = report.stat_rejected_tabu;
    s.aspirated = report.stat_aspirated;
    s.early_accepts = report.stat_early_accepts;
    result.stats.merge(s);
  }
  return result;
}

}  // namespace pts::parallel
