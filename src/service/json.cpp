#include "service/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace pts::service::json {

void Value::set(std::string key, Value v) {
  for (auto& [existing, value] : object_) {
    if (existing == key) {
      value = std::move(v);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(v));
}

const Value* Value::find(std::string_view key) const {
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

// -- dump -------------------------------------------------------------------

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out += '"';
}

void dump_number(double v, std::string& out) {
  if (!std::isfinite(v)) {
    // JSON has no NaN/Inf; the codec never emits them, but a defensive
    // writer must not produce unparseable text.
    out += "null";
    return;
  }
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;  // 32 bytes always suffice for shortest-round-trip doubles
  out.append(buf, end);
}

void dump_value(const Value& value, std::string& out) {
  switch (value.kind()) {
    case Value::Kind::Null: out += "null"; break;
    case Value::Kind::Bool: out += value.as_bool() ? "true" : "false"; break;
    case Value::Kind::Number: dump_number(value.as_number(), out); break;
    case Value::Kind::String: dump_string(value.as_string(), out); break;
    case Value::Kind::Array: {
      out += '[';
      bool first = true;
      for (const auto& item : value.items()) {
        if (!first) out += ',';
        first = false;
        dump_value(item, out);
      }
      out += ']';
      break;
    }
    case Value::Kind::Object: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : value.members()) {
        if (!first) out += ',';
        first = false;
        dump_string(key, out);
        out += ':';
        dump_value(member, out);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string dump(const Value& value) {
  std::string out;
  dump_value(value, out);
  return out;
}

// -- parse ------------------------------------------------------------------

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> run(std::string* error) {
    Value value;
    if (!parse_value(value, 0)) {
      report(error);
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      error_ = "trailing characters after document";
      report(error);
      return std::nullopt;
    }
    return value;
  }

 private:
  void report(std::string* error) const {
    if (error == nullptr) return;
    *error = error_.empty() ? "malformed JSON" : error_;
    *error += " (at byte " + std::to_string(pos_) + ")";
  }

  bool fail(const char* why) {
    if (error_.empty()) error_ = why;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return fail("invalid literal");
    }
    pos_ += literal.size();
    return true;
  }

  bool parse_value(Value& out, int depth) {
    if (depth >= kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        out = Value();
        return parse_literal("null");
      case 't':
        out = Value(true);
        return parse_literal("true");
      case 'f':
        out = Value(false);
        return parse_literal("false");
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = Value(std::move(s));
        return true;
      }
      case '[': return parse_array(out, depth);
      case '{': return parse_object(out, depth);
      default: return parse_number(out);
    }
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc() || end != text_.data() + pos_ || pos_ == start) {
      pos_ = start;
      return fail("invalid number");
    }
    out = Value(value);
    return true;
  }

  bool parse_hex4(std::uint32_t& out) {
    if (text_.size() - pos_ < 4) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return fail("invalid \\u escape");
      }
    }
    return true;
  }

  void append_utf8(std::uint32_t cp, std::string& s) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xF0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (text_.substr(pos_, 2) != "\\u") return fail("lone surrogate");
            pos_ += 2;
            std::uint32_t low = 0;
            if (!parse_hex4(low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) return fail("lone surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("lone surrogate");
          }
          append_utf8(cp, out);
          break;
        }
        default: return fail("invalid escape character");
      }
    }
  }

  bool parse_array(Value& out, int depth) {
    consume('[');
    out = Value::array();
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      Value item;
      if (!parse_value(item, depth + 1)) return false;
      out.push_back(std::move(item));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return fail("expected ',' or ']' in array");
    }
  }

  bool parse_object(Value& out, int depth) {
    consume('{');
    out = Value::object();
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':' in object");
      Value member;
      if (!parse_value(member, depth + 1)) return false;
      out.set(std::move(key), std::move(member));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<Value> parse(std::string_view text, std::string* error) {
  return Parser(text).run(error);
}

}  // namespace pts::service::json
