// SVG rendering of placements.
//
// Draws the row structure, movable cells (shaded by a per-cell intensity,
// e.g. timing criticality), pads, and optionally the flylines of the
// longest nets. Useful for eyeballing what the search did; the
// placement_flow example writes before/after pictures.
#pragma once

#include <string>
#include <vector>

#include "placement/hpwl.hpp"
#include "placement/placement.hpp"

namespace pts::placement {

struct SvgOptions {
  double scale = 12.0;           ///< pixels per layout unit
  std::size_t flylines = 12;     ///< draw the N longest nets (0 = none)
  /// Optional per-cell intensity in [0, 1] (indexed by cell id); cells
  /// render from light gray (0) to red (1). Empty = uniform.
  std::vector<double> cell_intensity;
  std::string title;
};

/// Renders the placement to a standalone SVG document.
std::string render_svg(const Placement& placement, const HpwlState& hpwl,
                       const SvgOptions& options = {});

/// Convenience: render and write to `path`.
void save_svg(const Placement& placement, const HpwlState& hpwl,
              const std::string& path, const SvgOptions& options = {});

}  // namespace pts::placement
