#include "service/daemon.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "experiments/workloads.hpp"
#include "netlist/benchmarks.hpp"
#include "netlist/io.hpp"
#include "pvm/frame.hpp"
#include "service/codec.hpp"
#include "service/proto.hpp"
#include "support/fault.hpp"
#include "support/log.hpp"

namespace pts::service {

namespace {

/// write(2) until done; MSG_NOSIGNAL so a dead peer yields EPIPE, not
/// SIGPIPE. False on any error (the caller marks the connection dead).
/// Goes through the fault wrappers so chaos runs can inject short writes
/// (absorbed by the loop) and hard failures; EAGAIN — injected or from a
/// genuinely full send buffer — waits for writability and retries.
bool send_all(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = fault::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pollfd pfd{fd, POLLOUT, 0};
        ::poll(&pfd, 1, 100);
        continue;
      }
      return false;
    }
    data += static_cast<std::size_t>(n);
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool make_pipe(int fds[2]) { return ::pipe(fds) == 0; }

}  // namespace

// -- connection -------------------------------------------------------------

struct Daemon::Connection {
  int fd = -1;
  std::uint64_t id = 0;
  std::thread reader;
  std::mutex write_mutex;
  std::atomic<bool> write_failed{false};
  bool hello_done = false;           // reader thread only
  std::atomic<bool> finished{false};  // reader exited; reapable

  /// Serialized frame write; shared by the reader thread (replies) and the
  /// session threads (streamed events). Failures are sticky, and the socket
  /// is shut down so the reader wakes up and tears the connection down —
  /// a half-written reply leaves the stream unusable either way, and an
  /// injected write error never trips the kernel's own disconnect path.
  void send_frame(const pvm::Message& msg) {
    if (write_failed.load(std::memory_order_relaxed)) return;
    const std::vector<std::uint8_t> bytes = pvm::encode_frame(msg);
    const std::lock_guard<std::mutex> lock(write_mutex);
    if (!send_all(fd, bytes.data(), bytes.size())) {
      write_failed.store(true, std::memory_order_relaxed);
      ::shutdown(fd, SHUT_RDWR);
    }
  }
};

// -- impl -------------------------------------------------------------------

struct Daemon::Impl {
  explicit Impl(const DaemonConfig& config)
      : manager(SessionManager::Options{config.max_sessions, config.max_queued,
                                        config.cache_entries}) {}

  SessionManager manager;

  std::mutex mutex;
  std::vector<std::shared_ptr<Connection>> connections;
  std::uint64_t next_connection_id = 1;
  std::uint64_t accepted = 0;
  /// Memoized netlist::content_hash per servable circuit (the benchmark
  /// cache is process-lifetime and immutable, so one hash per name is
  /// enough — no point re-hashing scale10k on every submission).
  std::map<std::string, std::uint64_t> circuit_hashes;

  int unix_fd = -1;
  int tcp_fd = -1;
  int wake_pipe[2] = {-1, -1};  // stop() -> accept loop
  int stop_pipe[2] = {-1, -1};  // request_stop() -> wait_for_stop_request()
  std::thread accept_thread;
  std::atomic<bool> stopping{false};
  std::atomic<bool> started{false};
  std::atomic<bool> stopped{false};
};

Daemon::Daemon(DaemonConfig config)
    : config_(std::move(config)), impl_(std::make_unique<Impl>(config_)) {}

Daemon::~Daemon() {
  stop();
  Impl& impl = *impl_;
  for (int i = 0; i < 2; ++i) {
    if (impl.stop_pipe[i] >= 0) ::close(impl.stop_pipe[i]);
    impl.stop_pipe[i] = -1;
  }
}

// -- listeners --------------------------------------------------------------

namespace {

int listen_unix(const std::string& path, std::string* error) {
  if (path.size() >= sizeof(sockaddr_un::sun_path)) {
    if (error) *error = "unix socket path too long: " + path;
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = std::string("socket(AF_UNIX): ") + std::strerror(errno);
    return -1;
  }
  ::unlink(path.c_str());  // stale socket from a crashed predecessor
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    if (error) *error = "bind/listen(" + path + "): " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

int listen_tcp(std::uint16_t port, std::uint16_t* resolved, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = std::string("socket(AF_INET): ") + std::strerror(errno);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    if (error) {
      *error = "bind/listen(tcp:" + std::to_string(port) +
               "): " + std::strerror(errno);
    }
    ::close(fd);
    return -1;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    *resolved = ntohs(bound.sin_port);
  }
  return fd;
}

}  // namespace

bool Daemon::start(std::string* error) {
  Impl& impl = *impl_;
  if (impl.started.exchange(true)) {
    if (error) *error = "daemon already started";
    return false;
  }
  if (config_.unix_path.empty() && !config_.tcp) {
    if (error) *error = "no listener configured (unix_path empty, tcp off)";
    return false;
  }
  if (!make_pipe(impl.wake_pipe) || !make_pipe(impl.stop_pipe)) {
    if (error) *error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  if (!config_.unix_path.empty()) {
    impl.unix_fd = listen_unix(config_.unix_path, error);
    if (impl.unix_fd < 0) return false;
  }
  if (config_.tcp) {
    impl.tcp_fd = listen_tcp(config_.tcp_port, &resolved_tcp_port_, error);
    if (impl.tcp_fd < 0) {
      if (impl.unix_fd >= 0) ::close(impl.unix_fd);
      return false;
    }
  }
  impl.accept_thread = std::thread([this] { accept_loop(); });
  log_info("ptsd") << "listening"
                       << (config_.unix_path.empty()
                               ? ""
                               : " unix=" + config_.unix_path)
                       << (config_.tcp
                               ? " tcp=127.0.0.1:" + std::to_string(tcp_port())
                               : "");
  return true;
}

void Daemon::request_stop() {
  // Async-signal-safe: one write to the stop pipe. The accept loop and
  // wait_for_stop_request() both poll this pipe's read end (without
  // consuming it — see accept_loop), so one byte wakes everyone.
  const Impl& impl = *impl_;
  if (impl.stop_pipe[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(impl.stop_pipe[1], &byte, 1);
  }
}

void Daemon::wait_for_stop_request() {
  const Impl& impl = *impl_;
  if (impl.stop_pipe[0] < 0) return;
  pollfd pfd{impl.stop_pipe[0], POLLIN, 0};
  while (true) {
    const int rc = ::poll(&pfd, 1, -1);
    if (rc > 0 || (rc < 0 && errno != EINTR)) return;
  }
}

void Daemon::stop() {
  Impl& impl = *impl_;
  if (!impl.started.load() || impl.stopped.exchange(true)) return;
  impl.stopping.store(true);
  request_stop();
  // Wake the accept loop and join it first so no new connections arrive.
  {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(impl.wake_pipe[1], &byte, 1);
  }
  if (impl.accept_thread.joinable()) impl.accept_thread.join();
  if (impl.unix_fd >= 0) ::close(impl.unix_fd);
  if (impl.tcp_fd >= 0) ::close(impl.tcp_fd);

  // Unblock every reader (shutdown, not close: readers own the close) and
  // join them; each reader cancels + joins its own sessions on the way out.
  std::vector<std::shared_ptr<Connection>> connections;
  {
    const std::lock_guard<std::mutex> lock(impl.mutex);
    connections.swap(impl.connections);
  }
  for (const auto& connection : connections) {
    ::shutdown(connection->fd, SHUT_RDWR);
  }
  for (const auto& connection : connections) {
    if (connection->reader.joinable()) connection->reader.join();
  }
  // Safety net for sessions whose owner connection outlived tracking.
  impl.manager.drain();

  if (!config_.unix_path.empty()) ::unlink(config_.unix_path.c_str());
  for (int i = 0; i < 2; ++i) {
    if (impl.wake_pipe[i] >= 0) ::close(impl.wake_pipe[i]);
    impl.wake_pipe[i] = -1;
  }
  // The stop pipe deliberately stays open until ~Daemon(): request_stop()
  // must remain callable (from a signal handler, or a late second SIGTERM)
  // concurrently with stop(), and closing here would race that write —
  // worst case onto a recycled fd number belonging to something else.
  log_info("ptsd") << "stopped; sessions started="
                       << impl.manager.sessions_started()
                       << " finished=" << impl.manager.sessions_finished();
}

// -- accept loop ------------------------------------------------------------

void Daemon::accept_loop() {
  Impl& impl = *impl_;
  std::vector<pollfd> fds;
  while (!impl.stopping.load()) {
    fds.clear();
    fds.push_back({impl.wake_pipe[0], POLLIN, 0});
    fds.push_back({impl.stop_pipe[0], POLLIN, 0});
    if (impl.unix_fd >= 0) fds.push_back({impl.unix_fd, POLLIN, 0});
    if (impl.tcp_fd >= 0) fds.push_back({impl.tcp_fd, POLLIN, 0});
    const int rc = ::poll(fds.data(), fds.size(), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    // A stop request (pipe readable; deliberately not drained so
    // wait_for_stop_request() sees it too) ends the loop.
    if ((fds[0].revents | fds[1].revents) & POLLIN) break;
    for (std::size_t i = 2; i < fds.size(); ++i) {
      if (!(fds[i].revents & POLLIN)) continue;
      const int client = ::accept(fds[i].fd, nullptr, nullptr);
      if (client < 0) continue;
      auto connection = std::make_shared<Connection>();
      connection->fd = client;
      {
        const std::lock_guard<std::mutex> lock(impl.mutex);
        connection->id = impl.next_connection_id++;
        ++impl.accepted;
        // Reap connections whose readers already exited, so a long-lived
        // daemon does not accumulate dead threads.
        auto it = impl.connections.begin();
        while (it != impl.connections.end()) {
          if ((*it)->finished.load()) {
            if ((*it)->reader.joinable()) (*it)->reader.join();
            it = impl.connections.erase(it);
          } else {
            ++it;
          }
        }
        impl.connections.push_back(connection);
        connection->reader =
            std::thread([this, connection] { reader_loop(connection); });
      }
    }
  }
}

// -- per-connection reader --------------------------------------------------

void Daemon::reader_loop(const std::shared_ptr<Connection>& connection) {
  Impl& impl = *impl_;
  pvm::FrameDecoder decoder(config_.max_payload);
  std::vector<std::uint8_t> buffer(64 * 1024);
  bool alive = true;
  while (alive) {
    const ssize_t n = fault::read(connection->fd, buffer.data(), buffer.size());
    if (n == 0) break;  // orderly EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      // EAGAIN can be injected by a fault plan (and cannot otherwise occur
      // on these blocking sockets): transient, retry. Anything else — real
      // or injected ECONNRESET — is a dead peer.
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
      break;
    }
    decoder.feed(buffer.data(), static_cast<std::size_t>(n));
    while (alive) {
      auto msg = decoder.next();
      if (!msg) break;
      alive = handle_frame(*connection, *msg);
    }
    if (decoder.errored()) {
      // Framing violation: the stream is desynchronized; drop it.
      log_warn("ptsd") << "connection " << connection->id
                           << ": " << decoder.error() << "; closing";
      break;
    }
  }
  // Mid-solve disconnect (or drain): this connection's sessions must not
  // outlive it — cancel and join them before the socket goes away.
  impl.manager.cancel_owned(connection->id);
  ::close(connection->fd);
  connection->finished.store(true);
}

// -- request handling --------------------------------------------------------

bool Daemon::handle_frame(Connection& connection, pvm::Message& msg) {
  switch (msg.tag()) {
    case kHello: {
      HelloMsg hello;
      if (!decode(msg, hello)) {
        connection.send_frame(encode(ErrorMsg{"malformed hello"}));
        return true;
      }
      connection.hello_done = true;
      WelcomeMsg welcome;
      welcome.server = config_.server_name;
      welcome.engines = solver::engine_names();
      welcome.circuits = experiments::circuit_names();
      for (auto& name : experiments::scale_circuit_names()) {
        welcome.circuits.push_back(std::move(name));
      }
      connection.send_frame(encode(welcome));
      return true;
    }
    case kSubmit: {
      if (!connection.hello_done) {
        connection.send_frame(encode(ErrorMsg{"hello required before submit"}));
        return true;
      }
      SubmitMsg submit;
      if (!decode(msg, submit)) {
        connection.send_frame(encode(ErrorMsg{"malformed submit"}));
        return true;
      }
      handle_submit(connection, submit);
      return true;
    }
    case kCancel: {
      CancelMsg cancel;
      if (!decode(msg, cancel)) {
        connection.send_frame(encode(ErrorMsg{"malformed cancel"}));
        return true;
      }
      CancelOkMsg ok;
      ok.session = cancel.session;
      ok.was_active = impl_->manager.cancel(cancel.session);
      connection.send_frame(encode(ok));
      return true;
    }
    case kShutdown: {
      if (!decode_shutdown(msg)) {
        connection.send_frame(encode(ErrorMsg{"malformed shutdown"}));
        return true;
      }
      connection.send_frame(encode_shutdown_ok());
      // The reader cannot stop() (stop joins this very thread); hand the
      // request to whoever waits on the stop pipe (the ptsd main thread).
      request_stop();
      return true;
    }
    default:
      connection.send_frame(encode(
          ErrorMsg{std::string("unknown request tag ") + std::to_string(msg.tag())}));
      return true;
  }
}

void Daemon::handle_submit(Connection& connection, const SubmitMsg& submit) {
  Impl& impl = *impl_;
  if (impl.stopping.load()) {
    connection.send_frame(encode(SubmitErrMsg{"daemon is draining"}));
    return;
  }
  std::string error;
  auto job = decode_spec(submit.spec_json, &error);
  if (!job) {
    connection.send_frame(encode(SubmitErrMsg{"bad spec: " + error}));
    return;
  }
  if (!netlist::is_paper_benchmark(job->circuit) &&
      !netlist::is_scale_benchmark(job->circuit)) {
    connection.send_frame(
        encode(SubmitErrMsg{"unknown circuit '" + job->circuit + "'"}));
    return;
  }
  // The benchmark cache is process-lifetime, so the pointer stays valid for
  // the whole session; 100 sessions on scale10k share one netlist.
  job->spec.netlist = &experiments::circuit(job->circuit);

  // Validate *before* start: Solver::solve aborts on an invalid spec, which
  // is correct for programming errors but must never be reachable from the
  // wire.
  if (auto errors = solver::Solver().validate(job->spec); !errors.empty()) {
    std::string joined = "invalid spec:";
    for (const auto& e : errors) joined += " " + e + ";";
    connection.send_frame(encode(SubmitErrMsg{std::move(joined)}));
    return;
  }

  // ECO mode: a repeat of a cacheable job is answered from the result
  // cache — kSubmitOk{cached, session 0} immediately followed by its kDone,
  // no solver thread. session 0 is unambiguous because both frames go out
  // back-to-back on the reader thread, before any further submit is read.
  std::string key;
  if (config_.cache_entries > 0 && spec_cacheable(*job)) {
    std::uint64_t circuit_hash = 0;
    {
      const std::lock_guard<std::mutex> lock(impl.mutex);
      const auto it = impl.circuit_hashes.find(job->circuit);
      if (it != impl.circuit_hashes.end()) {
        circuit_hash = it->second;
      } else {
        circuit_hash = netlist::content_hash(*job->spec.netlist);
        impl.circuit_hashes.emplace(job->circuit, circuit_hash);
      }
    }
    key = cache_key(*job, circuit_hash);
    if (auto hit = impl.manager.cached_result(key)) {
      if (submit.request_id != 0) {
        log_info("ptsd") << "connection " << connection.id << " request "
                         << submit.request_id << " -> cache hit";
      }
      SubmitOkMsg ok;
      ok.session = 0;
      ok.cached = true;
      connection.send_frame(encode(ok));
      DoneMsg done;
      done.session = 0;
      done.result_json = encode_result(*hit);
      connection.send_frame(encode(done));
      return;
    }
  }

  // The sink runs on the session thread; the shared_ptr keeps the
  // Connection object alive even if the socket dies mid-stream (writes
  // then fail softly and the reader tears the sessions down).
  std::shared_ptr<Connection> conn;
  {
    const std::lock_guard<std::mutex> lock(impl.mutex);
    for (const auto& candidate : impl.connections) {
      if (candidate.get() == &connection) {
        conn = candidate;
        break;
      }
    }
  }
  if (conn == nullptr) {  // connection already being torn down
    connection.send_frame(encode(SubmitErrMsg{"connection closing"}));
    return;
  }
  // Per-job deadline wins; otherwise the daemon default applies.
  const double deadline = job->deadline_seconds > 0.0
                              ? job->deadline_seconds
                              : config_.session_deadline_seconds;
  const auto started = impl.manager.start(
      std::move(job->spec), connection.id, submit.stream, submit.progress_stride,
      [conn](SessionEvent&& event) {
        if (event.kind == SessionEvent::Kind::Progress) {
          ProgressMsg progress;
          progress.session = event.session;
          progress.improvement = event.improvement;
          progress.iteration = event.progress.iteration;
          progress.seconds = event.progress.seconds;
          progress.current_cost = event.progress.current_cost;
          progress.best_cost = event.progress.best_cost;
          conn->send_frame(encode(progress));
        } else {
          DoneMsg done;
          done.session = event.session;
          done.result_json = encode_result(event.result);
          conn->send_frame(encode(done));
        }
      },
      deadline, std::move(key));
  switch (started.status) {
    case SessionManager::StartStatus::Started:
    case SessionManager::StartStatus::Queued: {
      if (submit.request_id != 0) {
        log_info("ptsd") << "connection " << connection.id << " request "
                         << submit.request_id << " -> session " << started.id
                         << (started.status == SessionManager::StartStatus::Queued
                                 ? " (queued)"
                                 : "");
      }
      SubmitOkMsg ok;
      ok.session = started.id;
      ok.queued = started.status == SessionManager::StartStatus::Queued;
      connection.send_frame(encode(ok));
      return;
    }
    case SessionManager::StartStatus::QueueFull:
      connection.send_frame(encode(SubmitErrMsg{"queue full: retry later"}));
      return;
    case SessionManager::StartStatus::ShuttingDown:
      connection.send_frame(encode(SubmitErrMsg{"daemon is draining"}));
      return;
  }
}

// -- counters ---------------------------------------------------------------

std::size_t Daemon::active_sessions() const { return impl_->manager.active_sessions(); }
std::size_t Daemon::queued_sessions() const {
  return impl_->manager.queued_sessions();
}
std::uint64_t Daemon::sessions_started() const {
  return impl_->manager.sessions_started();
}
std::uint64_t Daemon::sessions_finished() const {
  return impl_->manager.sessions_finished();
}
std::uint64_t Daemon::connections_accepted() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->accepted;
}
std::uint64_t Daemon::cache_hits() const { return impl_->manager.cache_hits(); }
std::uint64_t Daemon::cache_misses() const {
  return impl_->manager.cache_misses();
}
std::size_t Daemon::cache_size() const { return impl_->manager.cache_size(); }

}  // namespace pts::service
