#include "solver/checkpoint.hpp"

#include <charconv>
#include <cmath>
#include <limits>
#include <utility>

#include "netlist/io.hpp"
#include "service/json.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace pts::solver {
namespace {

namespace json = service::json;

// ---------------------------------------------------------------------------
// Trace splicing.

Series splice(const Series& before, Series&& after, double x_offset = 0.0) {
  Series out;
  out.name = before.name.empty() ? after.name : before.name;
  out.x = before.x;
  out.y = before.y;
  out.x.reserve(out.x.size() + after.x.size());
  out.y.reserve(out.y.size() + after.y.size());
  for (double xv : after.x) out.x.push_back(xv + x_offset);
  out.y.insert(out.y.end(), after.y.begin(), after.y.end());
  return out;
}

// One code path for fresh and resumed runs keeps the recipes identical by
// construction: `from == nullptr` is a cold run (bit-identical to
// TabuEngine::solve), otherwise the engine state is restored before run().
CheckpointedSolve run_tabu_segment(const SolveSpec& spec, const Checkpoint* from) {
  auto setup = detail::make_sequential_setup(spec);
  tabu::TabuSearch search(*setup.eval, spec.tabu,
                          Rng(spec.seed ^ kSearchStreamSalt));

  double initial_cost = 0.0;
  double base_elapsed = 0.0;
  if (from != nullptr) {
    setup.eval->restore_checkpoint(from->eval);
    search.restore(from->search);
    initial_cost = from->initial_cost;
    base_elapsed = from->elapsed_seconds;
  } else {
    initial_cost = setup.eval->cost();
  }

  const Stopwatch watch;
  auto r = search.run(RunControl{spec.stop, spec.observer});
  const double segment_seconds = watch.seconds();

  CheckpointedSolve out;
  SolveResult& res = out.result;
  res.engine = "tabu";
  res.initial_cost = initial_cost;
  res.makespan = base_elapsed + segment_seconds;
  res.best_cost = r.best_cost;
  res.best_quality = r.best_quality;
  res.best_objectives = r.best_objectives;
  res.best_slots = std::move(r.best_slots);
  // stats_ is cumulative across restore (the checkpoint carries it), so the
  // segment's result.stats already covers the whole run.
  res.stats = r.stats;
  res.iterations = r.stats.iterations;
  res.stop_reason = r.stop_reason;
  if (from != nullptr) {
    // Iteration-indexed traces concatenate directly (the resumed loop
    // counts absolute iterations); the time trail shifts by the seconds the
    // interrupted run had already consumed.
    res.cost_trace = splice(from->cost_trace, std::move(r.cost_trace));
    res.best_trace = splice(from->best_trace, std::move(r.best_trace));
    res.best_vs_time =
        splice(from->best_vs_time, std::move(r.best_vs_time), base_elapsed);
  } else {
    res.cost_trace = std::move(r.cost_trace);
    res.best_trace = std::move(r.best_trace);
    res.best_vs_time = std::move(r.best_vs_time);
  }

  Checkpoint& ck = out.checkpoint;
  ck.engine = "tabu";
  ck.seed = spec.seed;
  ck.circuit_hash = netlist::content_hash(*spec.netlist);
  ck.initial_cost = initial_cost;
  ck.elapsed_seconds = res.makespan;
  ck.eval = setup.eval->checkpoint();
  ck.search = search.state();
  ck.cost_trace = res.cost_trace;
  ck.best_trace = res.best_trace;
  ck.best_vs_time = res.best_vs_time;
  return out;
}

// ---------------------------------------------------------------------------
// JSON encode.

std::string hex_u64(std::uint64_t v) {
  char buf[17];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v, 16);
  return std::string(buf, res.ptr);
}

json::Value doubles_to_json(const std::vector<double>& vs) {
  json::Value arr = json::Value::array();
  for (double v : vs) arr.push_back(json::Value(v));
  return arr;
}

template <typename T>
json::Value uints_to_json(const std::vector<T>& vs) {
  json::Value arr = json::Value::array();
  for (T v : vs) arr.push_back(json::Value(static_cast<double>(v)));
  return arr;
}

json::Value series_to_json(const Series& s) {
  json::Value obj = json::Value::object();
  obj.set("name", json::Value(s.name));
  obj.set("x", doubles_to_json(s.x));
  obj.set("y", doubles_to_json(s.y));
  return obj;
}

json::Value objectives_to_json(const cost::Objectives& o) {
  json::Value obj = json::Value::object();
  obj.set("wirelength", json::Value(o.wirelength));
  obj.set("delay", json::Value(o.delay));
  obj.set("area", json::Value(o.area));
  return obj;
}

json::Value stats_to_json(const tabu::SearchStats& s) {
  json::Value obj = json::Value::object();
  obj.set("iterations", json::Value(static_cast<double>(s.iterations)));
  obj.set("accepted", json::Value(static_cast<double>(s.accepted)));
  obj.set("rejected_tabu", json::Value(static_cast<double>(s.rejected_tabu)));
  obj.set("aspirated", json::Value(static_cast<double>(s.aspirated)));
  obj.set("early_accepts", json::Value(static_cast<double>(s.early_accepts)));
  obj.set("trials", json::Value(static_cast<double>(s.trials)));
  return obj;
}

}  // namespace

CheckpointedSolve solve_with_checkpoint(const SolveSpec& spec) {
  PTS_CHECK_MSG(spec.engine == "tabu",
                "solve_with_checkpoint supports only the 'tabu' engine");
  const auto errors = Solver().validate(spec);
  PTS_CHECK_MSG(errors.empty(), "invalid SolveSpec for solve_with_checkpoint");
  return run_tabu_segment(spec, nullptr);
}

std::string check_resume_compatible(const SolveSpec& spec,
                                    const Checkpoint& checkpoint) {
  if (spec.engine != "tabu") {
    return "resume requires engine 'tabu', spec has '" + spec.engine + "'";
  }
  if (checkpoint.engine != "tabu") {
    return "checkpoint was taken by engine '" + checkpoint.engine +
           "', only 'tabu' checkpoints resume";
  }
  if (spec.netlist == nullptr) return "spec.netlist is null";
  if (spec.seed != checkpoint.seed) {
    return "seed mismatch: spec " + std::to_string(spec.seed) + ", checkpoint " +
           std::to_string(checkpoint.seed);
  }
  const std::uint64_t hash = netlist::content_hash(*spec.netlist);
  if (hash != checkpoint.circuit_hash) {
    return "circuit content hash mismatch: the checkpoint was taken against "
           "different circuit content";
  }
  const std::size_t movable = spec.netlist->num_movable();
  if (checkpoint.eval.slots.size() != movable ||
      checkpoint.search.best_slots.size() != movable) {
    return "checkpoint slot vectors do not match the netlist's movable cell "
           "count";
  }
  return {};
}

CheckpointedSolve resume_from_checkpoint(const SolveSpec& spec,
                                         const Checkpoint& checkpoint) {
  const std::string incompatible = check_resume_compatible(spec, checkpoint);
  PTS_CHECK_MSG(incompatible.empty(), incompatible.c_str());
  const auto errors = Solver().validate(spec);
  PTS_CHECK_MSG(errors.empty(), "invalid SolveSpec for resume_from_checkpoint");
  return run_tabu_segment(spec, &checkpoint);
}

std::string encode_checkpoint(const Checkpoint& ck) {
  json::Value root = json::Value::object();
  root.set("version", json::Value(1.0));
  root.set("engine", json::Value(ck.engine));
  root.set("seed", json::Value(hex_u64(ck.seed)));
  root.set("circuit_hash", json::Value(hex_u64(ck.circuit_hash)));
  root.set("initial_cost", json::Value(ck.initial_cost));
  root.set("elapsed_seconds", json::Value(ck.elapsed_seconds));

  json::Value eval = json::Value::object();
  eval.set("slots", uints_to_json(ck.eval.slots));
  eval.set("hpwl_total", json::Value(ck.eval.hpwl_total));
  eval.set("wire_sums", doubles_to_json(ck.eval.wire_sums));
  eval.set("swaps_applied",
           json::Value(static_cast<double>(ck.eval.swaps_applied)));
  eval.set("swaps_since_rebuild",
           json::Value(static_cast<double>(ck.eval.swaps_since_rebuild)));
  root.set("eval", std::move(eval));

  json::Value search = json::Value::object();
  json::Value rng = json::Value::object();
  json::Value words = json::Value::array();
  for (std::uint64_t w : ck.search.rng.s) words.push_back(json::Value(hex_u64(w)));
  rng.set("s", std::move(words));
  rng.set("spare", json::Value(ck.search.rng.spare));
  rng.set("has_spare", json::Value(ck.search.rng.has_spare));
  search.set("rng", std::move(rng));
  json::Value entries = json::Value::array();
  for (const tabu::Move& m : ck.search.tabu_entries) {
    json::Value pair = json::Value::array();
    pair.push_back(json::Value(static_cast<double>(m.a)));
    pair.push_back(json::Value(static_cast<double>(m.b)));
    entries.push_back(std::move(pair));
  }
  search.set("tabu_entries", std::move(entries));
  json::Value freq = json::Value::object();
  freq.set("counts", uints_to_json(ck.search.frequency.counts));
  freq.set("improving_counts", uints_to_json(ck.search.frequency.improving_counts));
  freq.set("transitions",
           json::Value(static_cast<double>(ck.search.frequency.transitions)));
  freq.set("max_count",
           json::Value(static_cast<double>(ck.search.frequency.max_count)));
  freq.set("max_improving",
           json::Value(static_cast<double>(ck.search.frequency.max_improving)));
  search.set("frequency", std::move(freq));
  search.set("best_cost", json::Value(ck.search.best_cost));
  search.set("best_quality", json::Value(ck.search.best_quality));
  search.set("best_objectives", objectives_to_json(ck.search.best_objectives));
  search.set("best_slots", uints_to_json(ck.search.best_slots));
  search.set("stats", stats_to_json(ck.search.stats));
  root.set("search", std::move(search));

  root.set("cost_trace", series_to_json(ck.cost_trace));
  root.set("best_trace", series_to_json(ck.best_trace));
  root.set("best_vs_time", series_to_json(ck.best_vs_time));
  return json::dump(root);
}

namespace {

// ---------------------------------------------------------------------------
// JSON decode. First-error-wins; every helper returns false after recording.

struct Dec {
  std::string error;

  bool fail(std::string why) {
    if (error.empty()) error = "checkpoint: " + std::move(why);
    return false;
  }

  const json::Value* get_object(const json::Value& obj, const char* key) {
    const json::Value* v = obj.find(key);
    if (v == nullptr || !v->is_object()) {
      fail(std::string("'") + key + "' must be an object");
      return nullptr;
    }
    return v;
  }

  bool get_finite(const json::Value& obj, const char* key, double* out) {
    const json::Value* v = obj.find(key);
    if (v == nullptr || !v->is_number()) {
      return fail(std::string("'") + key + "' must be a number");
    }
    if (!std::isfinite(v->as_number())) {
      return fail(std::string("'") + key + "' must be finite");
    }
    *out = v->as_number();
    return true;
  }

  bool get_bool(const json::Value& obj, const char* key, bool* out) {
    const json::Value* v = obj.find(key);
    if (v == nullptr || !v->is_bool()) {
      return fail(std::string("'") + key + "' must be a boolean");
    }
    *out = v->as_bool();
    return true;
  }

  bool get_string(const json::Value& obj, const char* key, std::string* out) {
    const json::Value* v = obj.find(key);
    if (v == nullptr || !v->is_string()) {
      return fail(std::string("'") + key + "' must be a string");
    }
    *out = v->as_string();
    return true;
  }

  bool hex_to_u64(const std::string& text, const char* what, std::uint64_t* out) {
    const char* begin = text.data();
    const char* end = begin + text.size();
    const auto res = std::from_chars(begin, end, *out, 16);
    if (res.ec != std::errc{} || res.ptr != end || text.empty()) {
      return fail(std::string("'") + what + "' must be a hex u64 string");
    }
    return true;
  }

  bool get_hex_u64(const json::Value& obj, const char* key, std::uint64_t* out) {
    std::string text;
    if (!get_string(obj, key, &text)) return false;
    return hex_to_u64(text, key, out);
  }

  bool number_to_uint(const json::Value& v, const char* what, std::uint64_t* out) {
    if (!v.is_number()) return fail(std::string("'") + what + "' must be a number");
    const double d = v.as_number();
    if (!(d >= 0.0) || d != std::floor(d) || d > 9007199254740992.0) {
      return fail(std::string("'") + what +
                  "' must be a non-negative integer within 2^53");
    }
    *out = static_cast<std::uint64_t>(d);
    return true;
  }

  bool get_uint(const json::Value& obj, const char* key, std::uint64_t* out) {
    const json::Value* v = obj.find(key);
    if (v == nullptr) return fail(std::string("'") + key + "' is required");
    return number_to_uint(*v, key, out);
  }

  bool get_doubles(const json::Value& obj, const char* key,
                   std::vector<double>* out) {
    const json::Value* v = obj.find(key);
    if (v == nullptr || !v->is_array()) {
      return fail(std::string("'") + key + "' must be an array");
    }
    out->clear();
    out->reserve(v->items().size());
    for (const json::Value& item : v->items()) {
      if (!item.is_number() || !std::isfinite(item.as_number())) {
        return fail(std::string("'") + key + "' must hold finite numbers");
      }
      out->push_back(item.as_number());
    }
    return true;
  }

  template <typename T>
  bool get_uints(const json::Value& obj, const char* key, std::vector<T>* out) {
    const json::Value* v = obj.find(key);
    if (v == nullptr || !v->is_array()) {
      return fail(std::string("'") + key + "' must be an array");
    }
    out->clear();
    out->reserve(v->items().size());
    for (const json::Value& item : v->items()) {
      std::uint64_t u = 0;
      if (!number_to_uint(item, key, &u)) return false;
      if (u > std::numeric_limits<T>::max()) {
        return fail(std::string("'") + key + "' element out of range");
      }
      out->push_back(static_cast<T>(u));
    }
    return true;
  }

  bool get_series(const json::Value& obj, const char* key, Series* out) {
    const json::Value* v = get_object(obj, key);
    if (v == nullptr) return false;
    if (!get_string(*v, "name", &out->name)) return false;
    if (!get_doubles(*v, "x", &out->x)) return false;
    if (!get_doubles(*v, "y", &out->y)) return false;
    if (out->x.size() != out->y.size()) {
      return fail(std::string("'") + key + "' x/y lengths differ");
    }
    return true;
  }
};

}  // namespace

std::string decode_checkpoint(const std::string& text, Checkpoint* out) {
  PTS_CHECK(out != nullptr);
  std::string parse_error;
  const auto root = json::parse(text, &parse_error);
  if (!root.has_value()) return "checkpoint: invalid JSON: " + parse_error;
  if (!root->is_object()) return "checkpoint: top level must be an object";

  Dec dec;
  Checkpoint ck;
  double version = 0.0;
  if (!dec.get_finite(*root, "version", &version)) return dec.error;
  if (version != 1.0) return "checkpoint: unsupported version";
  if (!dec.get_string(*root, "engine", &ck.engine)) return dec.error;
  if (ck.engine != "tabu") return "checkpoint: engine must be 'tabu'";
  if (!dec.get_hex_u64(*root, "seed", &ck.seed)) return dec.error;
  if (!dec.get_hex_u64(*root, "circuit_hash", &ck.circuit_hash)) return dec.error;
  if (!dec.get_finite(*root, "initial_cost", &ck.initial_cost)) return dec.error;
  if (!dec.get_finite(*root, "elapsed_seconds", &ck.elapsed_seconds)) {
    return dec.error;
  }

  const json::Value* eval = dec.get_object(*root, "eval");
  if (eval == nullptr) return dec.error;
  if (!dec.get_uints(*eval, "slots", &ck.eval.slots)) return dec.error;
  if (!dec.get_finite(*eval, "hpwl_total", &ck.eval.hpwl_total)) return dec.error;
  if (!dec.get_doubles(*eval, "wire_sums", &ck.eval.wire_sums)) return dec.error;
  if (!dec.get_uint(*eval, "swaps_applied", &ck.eval.swaps_applied)) {
    return dec.error;
  }
  if (!dec.get_uint(*eval, "swaps_since_rebuild", &ck.eval.swaps_since_rebuild)) {
    return dec.error;
  }

  const json::Value* search = dec.get_object(*root, "search");
  if (search == nullptr) return dec.error;
  const json::Value* rng = dec.get_object(*search, "rng");
  if (rng == nullptr) return dec.error;
  {
    const json::Value* words = rng->find("s");
    if (words == nullptr || !words->is_array() || words->items().size() != 4) {
      return "checkpoint: 'rng.s' must be an array of 4 hex strings";
    }
    for (int i = 0; i < 4; ++i) {
      const json::Value& w = words->items()[static_cast<std::size_t>(i)];
      if (!w.is_string()) return "checkpoint: 'rng.s' must hold hex strings";
      if (!dec.hex_to_u64(w.as_string(), "rng.s", &ck.search.rng.s[i])) {
        return dec.error;
      }
    }
    if (!dec.get_finite(*rng, "spare", &ck.search.rng.spare)) return dec.error;
    if (!dec.get_bool(*rng, "has_spare", &ck.search.rng.has_spare)) {
      return dec.error;
    }
  }
  {
    const json::Value* entries = search->find("tabu_entries");
    if (entries == nullptr || !entries->is_array()) {
      return "checkpoint: 'tabu_entries' must be an array";
    }
    ck.search.tabu_entries.clear();
    ck.search.tabu_entries.reserve(entries->items().size());
    for (const json::Value& pair : entries->items()) {
      if (!pair.is_array() || pair.items().size() != 2) {
        return "checkpoint: each tabu entry must be a [a, b] pair";
      }
      std::uint64_t a = 0, b = 0;
      if (!dec.number_to_uint(pair.items()[0], "tabu_entries", &a) ||
          !dec.number_to_uint(pair.items()[1], "tabu_entries", &b)) {
        return dec.error;
      }
      if (a > std::numeric_limits<netlist::CellId>::max() ||
          b > std::numeric_limits<netlist::CellId>::max()) {
        return "checkpoint: tabu entry cell id out of range";
      }
      ck.search.tabu_entries.push_back(
          tabu::Move{static_cast<netlist::CellId>(a),
                     static_cast<netlist::CellId>(b)});
    }
  }
  const json::Value* freq = dec.get_object(*search, "frequency");
  if (freq == nullptr) return dec.error;
  if (!dec.get_uints(*freq, "counts", &ck.search.frequency.counts)) {
    return dec.error;
  }
  if (!dec.get_uints(*freq, "improving_counts",
                     &ck.search.frequency.improving_counts)) {
    return dec.error;
  }
  if (!dec.get_uint(*freq, "transitions", &ck.search.frequency.transitions)) {
    return dec.error;
  }
  if (!dec.get_uint(*freq, "max_count", &ck.search.frequency.max_count)) {
    return dec.error;
  }
  if (!dec.get_uint(*freq, "max_improving", &ck.search.frequency.max_improving)) {
    return dec.error;
  }
  if (!dec.get_finite(*search, "best_cost", &ck.search.best_cost)) {
    return dec.error;
  }
  if (!dec.get_finite(*search, "best_quality", &ck.search.best_quality)) {
    return dec.error;
  }
  const json::Value* objectives = dec.get_object(*search, "best_objectives");
  if (objectives == nullptr) return dec.error;
  if (!dec.get_finite(*objectives, "wirelength",
                      &ck.search.best_objectives.wirelength) ||
      !dec.get_finite(*objectives, "delay", &ck.search.best_objectives.delay) ||
      !dec.get_finite(*objectives, "area", &ck.search.best_objectives.area)) {
    return dec.error;
  }
  if (!dec.get_uints(*search, "best_slots", &ck.search.best_slots)) {
    return dec.error;
  }
  const json::Value* stats = dec.get_object(*search, "stats");
  if (stats == nullptr) return dec.error;
  {
    std::uint64_t u = 0;
    if (!dec.get_uint(*stats, "iterations", &u)) return dec.error;
    ck.search.stats.iterations = static_cast<std::size_t>(u);
    if (!dec.get_uint(*stats, "accepted", &u)) return dec.error;
    ck.search.stats.accepted = static_cast<std::size_t>(u);
    if (!dec.get_uint(*stats, "rejected_tabu", &u)) return dec.error;
    ck.search.stats.rejected_tabu = static_cast<std::size_t>(u);
    if (!dec.get_uint(*stats, "aspirated", &u)) return dec.error;
    ck.search.stats.aspirated = static_cast<std::size_t>(u);
    if (!dec.get_uint(*stats, "early_accepts", &u)) return dec.error;
    ck.search.stats.early_accepts = static_cast<std::size_t>(u);
    if (!dec.get_uint(*stats, "trials", &u)) return dec.error;
    ck.search.stats.trials = static_cast<std::size_t>(u);
  }

  if (!dec.get_series(*root, "cost_trace", &ck.cost_trace)) return dec.error;
  if (!dec.get_series(*root, "best_trace", &ck.best_trace)) return dec.error;
  if (!dec.get_series(*root, "best_vs_time", &ck.best_vs_time)) return dec.error;

  *out = std::move(ck);
  return {};
}

}  // namespace pts::solver
