// Greedy local search (steepest-descent) baseline.
//
// The degenerate memoryless cousin of tabu search: per iteration sample m
// candidate swaps and apply the best only if it improves; stop after
// `patience` consecutive non-improving iterations. Demonstrates the local
// optimum trapping that motivates TS (paper §1).
#pragma once

#include "cost/evaluator.hpp"
#include "support/rng.hpp"
#include "support/run_control.hpp"
#include "support/stats.hpp"

namespace pts::baselines {

struct LocalSearchParams {
  std::size_t candidates_per_iteration = 8;
  std::size_t patience = 50;
  std::size_t max_iterations = 100000;
  std::size_t trace_stride = 1;
};

struct LocalSearchResult {
  double best_cost = 0.0;
  double best_quality = 0.0;
  std::vector<netlist::CellId> best_slots;
  Series best_trace;
  std::size_t iterations = 0;
  bool converged = false;  ///< stopped by patience, not by max_iterations
  /// Completed unless a caller-supplied stop condition fired first.
  StopReason stop_reason = StopReason::Completed;
};

/// Stop conditions are checked before every iteration; the observer sees
/// improvements and per-iteration progress. Checks and callbacks are
/// read-only: a run whose conditions never fire is bit-identical to an
/// uncontrolled one.
LocalSearchResult local_search(cost::Evaluator& eval,
                               const LocalSearchParams& params, Rng& rng,
                               const RunControl& control = {});

}  // namespace pts::baselines
