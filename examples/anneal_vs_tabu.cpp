// Comparing tabu search against the memoryless heuristics the paper's
// introduction contrasts it with — steepest-descent local search (gets
// trapped in local optima), simulated annealing, and the parallel TS —
// every method through the same pts::solver front door. One shared seed
// means every engine starts from the identical random placement and goal
// calibration, so the costs are directly comparable; budgets are matched
// in move evaluations (the SA budget is enforced with
// StopConditions::max_iterations rather than a tuned schedule).
#include <algorithm>
#include <cstdio>

#include "experiments/workloads.hpp"
#include "solver/solver.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"

namespace {

constexpr const char kUsage[] =
    "usage: anneal_vs_tabu [--circuit c532] [--budget 20000] [--seed 5]\n"
    "                      [--help]\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace pts;
  const Cli cli(argc, argv);
  set_log_level(LogLevel::Warn);
  if (cli.get_flag("help")) {
    std::fputs(kUsage, stdout);
    return 0;
  }

  const std::string name = cli.get("circuit", "c532");
  const auto budget = static_cast<std::size_t>(cli.get_int("budget", 20000));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 5));
  cli.reject_unused(kUsage);

  const auto& circuit = experiments::circuit(name);
  const solver::Solver solver;
  const auto spec_for = [&](std::string_view engine) {
    return experiments::base_spec(circuit, engine, seed, /*quick=*/false);
  };

  std::printf("circuit %s, ~%zu move evaluations per method, seed %llu\n\n",
              circuit.name().c_str(), budget,
              static_cast<unsigned long long>(seed));
  std::printf("%-22s %10s %10s\n", "method", "best cost", "quality");
  std::printf("--------------------------------------------\n");
  {
    const auto result = solver.solve(spec_for("constructive"));
    std::printf("%-22s %10.4f %10s\n", "initial (random)", result.initial_cost,
                "-");
    std::printf("%-22s %10.4f %10.4f  (construction, no search)\n",
                "greedy constructive", result.best_cost, result.best_quality);
  }
  {
    auto spec = spec_for("local");
    spec.local.candidates_per_iteration = 8;
    spec.local.max_iterations = budget / spec.local.candidates_per_iteration;
    const auto result = solver.solve(spec);
    std::printf("%-22s %10.4f %10.4f  (%s after %zu iterations)\n",
                "local search", result.best_cost, result.best_quality,
                result.converged ? "converged" : "budget out",
                result.iterations);
  }
  {
    auto spec = spec_for("anneal");
    spec.anneal.moves_per_temp = circuit.num_movable();
    spec.anneal.cooling = 0.9;
    spec.stop.max_iterations = budget;  // cap SA moves via run control
    const auto result = solver.solve(spec);
    std::printf("%-22s %10.4f %10.4f  (%zu moves, %.0f%% accepted, %s)\n",
                "simulated annealing", result.best_cost, result.best_quality,
                result.iterations,
                100.0 * static_cast<double>(result.stats.accepted) /
                    static_cast<double>(result.iterations),
                stop_reason_name(result.stop_reason));
  }
  {
    auto spec = spec_for("tabu");
    const std::size_t per_iter =
        spec.tabu.compound.width * spec.tabu.compound.depth;
    spec.tabu.iterations = budget / per_iter;
    const auto result = solver.solve(spec);
    std::printf("%-22s %10.4f %10.4f  (%zu iterations)\n", "tabu search (seq)",
                result.best_cost, result.best_quality, result.iterations);
  }
  {
    auto spec = spec_for("parallel-sim");
    spec.parallel.num_tsws = 4;
    spec.parallel.clws_per_tsw = 2;
    // Match the total budget across all workers.
    const std::size_t per_local = spec.parallel.num_tsws *
                                  spec.parallel.clws_per_tsw *
                                  spec.tabu.compound.width *
                                  spec.tabu.compound.depth;
    spec.parallel.local_iterations =
        std::max<std::size_t>(1, budget / per_local / 4);
    spec.parallel.global_iterations = 4;
    const auto result = solver.solve(spec);
    std::printf("%-22s %10.4f %10.4f  (4x2 workers, virtual makespan %.0f)\n",
                "parallel tabu search", result.best_cost, result.best_quality,
                result.makespan);
  }
  std::printf("\n(the parallel run spends the same total work in ~1/6 the\n"
              " virtual time; see bench/ for the paper's figures)\n");
  return 0;
}
