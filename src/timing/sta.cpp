#include "timing/sta.hpp"

#include <algorithm>
#include <functional>

namespace pts::timing {

using netlist::CellId;
using netlist::CellKind;
using netlist::kNoNet;
using netlist::NetId;

namespace {

StaResult run_sta_impl(const netlist::Netlist& netlist,
                       const std::function<double(NetId)>& net_delay,
                       const DelayModel& model) {
  StaResult result;
  result.arrival.assign(netlist.num_cells(), 0.0);
  // Predecessor on the max-arrival path, for path extraction.
  std::vector<CellId> pred(netlist.num_cells(), netlist::kNoCell);

  for (CellId cell : netlist.topological_order()) {
    const auto& c = netlist.cell(cell);
    double max_in = 0.0;
    CellId best_pred = netlist::kNoCell;
    for (NetId net : c.in_nets) {
      const auto& n = netlist.net(net);
      const double t = result.arrival[n.driver] + net_delay(net);
      if (t > max_in || best_pred == netlist::kNoCell) {
        max_in = t;
        best_pred = n.driver;
      }
    }
    pred[cell] = best_pred;
    result.arrival[cell] = max_in + model.cell_delay(netlist, cell);
  }

  CellId worst_po = netlist::kNoCell;
  for (CellId cell : netlist.pad_cells()) {
    if (netlist.cell(cell).kind != CellKind::PrimaryOutput) continue;
    if (worst_po == netlist::kNoCell ||
        result.arrival[cell] > result.arrival[worst_po]) {
      worst_po = cell;
    }
  }
  if (worst_po != netlist::kNoCell) {
    result.critical_delay = result.arrival[worst_po];
    for (CellId walk = worst_po; walk != netlist::kNoCell; walk = pred[walk]) {
      result.critical_path.push_back(walk);
    }
    std::reverse(result.critical_path.begin(), result.critical_path.end());
  }
  return result;
}

}  // namespace

StaResult run_sta(const netlist::Netlist& netlist, const placement::HpwlState& hpwl,
                  const DelayModel& model) {
  return run_sta_impl(
      netlist,
      [&](NetId net) { return model.wire_delay(hpwl.net_hpwl(net)); }, model);
}

StaResult run_sta_uniform(const netlist::Netlist& netlist, double uniform_net_delay,
                          const DelayModel& model) {
  return run_sta_impl(
      netlist, [&](NetId) { return uniform_net_delay; }, model);
}

}  // namespace pts::timing
