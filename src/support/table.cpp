#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <map>
#include <sstream>

#include "support/check.hpp"

namespace pts {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  PTS_CHECK(!header_.empty());
}

Table& Table::add_row(std::vector<std::string> cells) {
  PTS_CHECK_MSG(cells.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::add_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> out;
  out.reserve(cells.size());
  for (double v : cells) out.push_back(fmt(v, precision));
  return add_row(std::move(out));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void Table::print(std::ostream& os) const { os << to_string(); }

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c == 0 ? 0 : 2);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    os << "csv";
    for (const auto& cell : row) os << ',' << cell;
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

Table series_table(const std::string& x_name, const std::vector<Series>& series,
                   int precision) {
  PTS_CHECK(!series.empty());
  std::vector<std::string> header{x_name};
  for (const auto& s : series) header.push_back(s.name);

  // Collect the union of x values in ascending order, then align each
  // series on them.
  std::map<double, std::vector<std::string>> rows;
  for (std::size_t si = 0; si < series.size(); ++si) {
    for (std::size_t i = 0; i < series[si].size(); ++i) {
      auto& row = rows[series[si].x[i]];
      row.resize(series.size());
      row[si] = Table::fmt(series[si].y[i], precision);
    }
  }
  Table table(std::move(header));
  for (auto& [x, cells] : rows) {
    std::vector<std::string> row{Table::fmt(x, precision)};
    cells.resize(series.size());
    for (auto& cell : cells) row.push_back(cell);
    table.add_row(std::move(row));
  }
  return table;
}

void emit_table(const std::string& title, const Table& table, bool with_csv) {
  std::cout << "\n== " << title << " ==\n" << table.to_string();
  if (with_csv) std::cout << table.to_csv();
  std::cout.flush();
}

}  // namespace pts
