// pts_client — submit a placement job to a running ptsd and stream progress.
//
//   pts_client --engines                         # list daemon capabilities
//   pts_client --circuit highway --engine tabu --seed 3 --stream
//   pts_client --tcp --port 7777 --circuit industry2
//
// `--with-server` hosts a private in-process daemon on a temp socket first,
// so the full client path can be exercised without an external ptsd (this is
// what the smoke test uses).
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <optional>
#include <string>

#include "service/client.hpp"
#include "service/daemon.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"

namespace {

constexpr const char kUsage[] =
    "usage: pts_client [--unix /tmp/ptsd.sock | --tcp --host 127.0.0.1 --port N]\n"
    "                  [--engines] [--circuit NAME] [--engine tabu] [--seed 1]\n"
    "                  [--iterations N] [--max-seconds S] [--target-cost C]\n"
    "                  [--stream] [--stride 64] [--with-server]\n"
    "                  [--retries 0] [--connect-timeout 5] [--io-timeout 0]\n"
    "                  [--deadline 0] [--help]\n"
    "--retries N reconnects and re-submits (same request id, capped\n"
    "exponential backoff) on transport failures; --connect-timeout /\n"
    "--io-timeout bound connect and read waits in seconds (0 = none);\n"
    "--deadline S asks the daemon to cancel the job after S wall seconds.\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace pts::service;
  const pts::Cli cli(argc, argv);
  if (cli.get_flag("help")) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  const bool with_server = cli.get_flag("with-server");
  const bool tcp = cli.get_flag("tcp");
  const std::string host = cli.get("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(cli.get_int("port", 0));
  std::string unix_path = cli.get("unix", "/tmp/ptsd.sock");
  const bool list_engines = cli.get_flag("engines");
  const std::string circuit = cli.get("circuit", "");
  const bool stream = cli.get_flag("stream");
  const auto stride = static_cast<std::uint64_t>(cli.get_int("stride", 64));
  const auto retries = static_cast<std::size_t>(cli.get_int("retries", 0));
  const double connect_timeout = cli.get_double("connect-timeout", 5.0);
  const double io_timeout = cli.get_double("io-timeout", 0.0);

  JobRequest job;
  job.circuit = circuit;
  job.spec.engine = cli.get("engine", "tabu");
  job.spec.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  job.spec.tabu.iterations = static_cast<std::size_t>(cli.get_int("iterations", 500));
  job.spec.stop.max_seconds = cli.get_double("max-seconds", 0.0);
  if (cli.has("target-cost")) {
    job.spec.stop.target_cost = cli.get_double("target-cost", 0.0);
  }
  job.deadline_seconds = cli.get_double("deadline", 0.0);
  cli.reject_unused(kUsage);

  pts::set_log_level(pts::LogLevel::Warn);

  // Optional self-hosted daemon (demo / smoke-test mode).
  std::unique_ptr<Daemon> daemon;
  if (with_server) {
    unix_path = "/tmp/pts-client-" + std::to_string(::getpid()) + ".sock";
    DaemonConfig config;
    config.unix_path = unix_path;
    daemon = std::make_unique<Daemon>(config);
    std::string error;
    if (!daemon->start(&error)) {
      std::fprintf(stderr, "pts_client: self-hosted daemon: %s\n", error.c_str());
      return 1;
    }
  }

  std::string error;

  // Fault-tolerant path: reconnect + re-submit with capped exponential
  // backoff; the request id stays stable across attempts so the daemon log
  // ties them together. Same-seed solves are bit-identical, so a retried
  // job returns the same result the first attempt would have.
  if (retries > 0 && !circuit.empty() && !list_engines) {
    RetryPolicy policy;
    policy.max_attempts = retries + 1;
    policy.connect_timeout_seconds = connect_timeout;
    policy.io_timeout_seconds = io_timeout;
    std::optional<RetryingClient> retrying;
    if (tcp) {
      retrying.emplace(host, port, policy);
    } else {
      retrying.emplace(unix_path, policy);
    }
    std::size_t events = 0;
    const auto result = retrying->solve(
        job, stream, stride,
        [&](const ProgressMsg& progress) {
          ++events;
          if (progress.improvement) {
            std::printf("  iter %llu: best %.4f\n",
                        static_cast<unsigned long long>(progress.iteration),
                        progress.best_cost);
          }
        },
        &error);
    if (!result) {
      std::fprintf(stderr, "pts_client: %s\n", error.c_str());
      return 1;
    }
    const auto& stats = retrying->counters();
    std::printf(
        "done: initial %.4f -> best %.4f, %llu iterations, stop=%s, "
        "%zu streamed events (attempts=%llu retries=%llu)\n",
        result->initial_cost, result->best_cost,
        static_cast<unsigned long long>(result->iterations),
        pts::stop_reason_name(result->stop_reason), events,
        static_cast<unsigned long long>(stats.attempts),
        static_cast<unsigned long long>(stats.retries));
    if (daemon) {
      retrying->raw_client().close();
      daemon->stop();
      if (daemon->active_sessions() != 0) {
        std::fprintf(stderr, "pts_client: self-hosted daemon leaked sessions\n");
        return 1;
      }
    }
    return 0;
  }

  Client client;
  client.set_timeouts(connect_timeout, io_timeout);
  const bool connected = tcp ? client.connect_tcp(host, port, &error)
                             : client.connect_unix(unix_path, &error);
  if (!connected) {
    std::fprintf(stderr, "pts_client: %s\n", error.c_str());
    return 1;
  }

  const auto welcome = client.hello(&error);
  if (!welcome) {
    std::fprintf(stderr, "pts_client: handshake: %s\n", error.c_str());
    return 1;
  }
  std::printf("connected to %s (protocol %u)\n", welcome->server.c_str(),
              welcome->version);
  if (list_engines || circuit.empty()) {
    std::printf("engines:");
    for (const auto& name : welcome->engines) std::printf(" %s", name.c_str());
    std::printf("\n");
    if (circuit.empty()) return 0;
  }

  const auto session = client.submit(job, stream, stride, &error);
  if (!session) {
    std::fprintf(stderr, "pts_client: submit: %s\n", error.c_str());
    return 1;
  }
  std::printf("session %llu: %s on %s (seed %llu)\n",
              static_cast<unsigned long long>(*session), job.spec.engine.c_str(),
              job.circuit.c_str(),
              static_cast<unsigned long long>(job.spec.seed));

  std::size_t events = 0;
  const auto result = client.wait(
      *session,
      [&](const ProgressMsg& progress) {
        ++events;
        if (progress.improvement) {
          std::printf("  iter %llu: best %.4f\n",
                      static_cast<unsigned long long>(progress.iteration),
                      progress.best_cost);
        }
      },
      &error);
  if (!result) {
    std::fprintf(stderr, "pts_client: wait: %s\n", error.c_str());
    return 1;
  }
  std::printf(
      "done: initial %.4f -> best %.4f (%.2f%% better), %llu iterations, "
      "stop=%s, %zu streamed events\n",
      result->initial_cost, result->best_cost,
      result->initial_cost > 0.0
          ? 100.0 * (result->initial_cost - result->best_cost) / result->initial_cost
          : 0.0,
      static_cast<unsigned long long>(result->iterations),
      pts::stop_reason_name(result->stop_reason), events);

  if (daemon) {
    client.close();
    daemon->stop();
    if (daemon->active_sessions() != 0) {
      std::fprintf(stderr, "pts_client: self-hosted daemon leaked sessions\n");
      return 1;
    }
  }
  return 0;
}
