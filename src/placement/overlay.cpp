#include "placement/overlay.hpp"

#include <algorithm>
#include <limits>

namespace pts::placement {

using netlist::CellId;

SwapOverlay build_swap_overlay(const Placement& p, CellId a, CellId b,
                               std::vector<CellId>* moved) {
  PTS_DCHECK(a != b);
  PTS_DCHECK(moved != nullptr);
  const Layout& layout = p.layout();
  const netlist::Topology& topo = p.netlist().topology();
  const SlotId sa = p.slot_of(a);
  const SlotId sb = p.slot_of(b);
  const std::size_t ra = layout.row_of_slot(sa);
  const std::size_t rb = layout.row_of_slot(sb);
  const Point pa = p.position(a);
  const Point pb = p.position(b);
  const double wa = topo.cell_width(a);
  const double wb = topo.cell_width(b);

  SwapOverlay ov;
  ov.a = a;
  ov.b = b;

  // Walks the would-be occupants of `row` from `first` to the end of the
  // row, substituting the swap — the exact cells, in the exact order,
  // swap_cells' collect_from() pushes after it has updated cell_at_.
  const auto emit_from = [&](std::size_t row, SlotId first) {
    const SlotId end =
        layout.slot_at(row, 0) + static_cast<SlotId>(layout.slots_in_row(row));
    for (SlotId s = first; s < end; ++s) {
      CellId c = p.cell_at(s);
      c = (s == sa) ? b : (s == sb) ? a : c;
      moved->push_back(c);
    }
  };

  if (wa == wb) {
    // Equal widths: only a and b move; their centers trade places.
    ov.a_x = pb.x;
    ov.a_y = pb.y;
    ov.b_x = pa.x;
    ov.b_y = pa.y;
    ov.max_extent = p.max_row_extent();
    moved->push_back(a);
    moved->push_back(b);
    return ov;
  }

  if (ra != rb) {
    // Unequal widths across two rows: b lands where a's column starts
    // (prefix sum up to a's column is pa.x - wa/2, exact), everything after
    // a's column on row ra shifts by the width difference; symmetrically
    // for a on row rb. Both row extents change by the same differences.
    ov.b_x = pa.x - 0.5 * wa + 0.5 * wb;
    ov.b_y = pa.y;
    ov.a_x = pb.x - 0.5 * wb + 0.5 * wa;
    ov.a_y = pb.y;
    ov.row_a_y = pa.y;
    ov.a_lo = pa.x;
    ov.a_hi = std::numeric_limits<double>::infinity();
    ov.shift_a = wb - wa;
    ov.row_b_y = pb.y;
    ov.b_lo = pb.x;
    ov.b_hi = std::numeric_limits<double>::infinity();
    ov.shift_b = wa - wb;

    const double ext_a = p.row_extent(ra) + (wb - wa);
    const double ext_b = p.row_extent(rb) + (wa - wb);
    double max_extent = std::max(ext_a, ext_b);
    for (std::size_t row = 0; row < layout.num_rows(); ++row) {
      if (row != ra && row != rb) {
        max_extent = std::max(max_extent, p.row_extent(row));
      }
    }
    ov.max_extent = max_extent;
    emit_from(ra, sa);
    emit_from(rb, sb);
    return ov;
  }

  // Unequal widths within one row: the right cell lands at the left cell's
  // column start, cells strictly between shift by the width difference, the
  // left cell lands just before the right cell's tail (whose prefix sum
  // grew by the same difference), and cells after the right column keep
  // their prefix sums. The row extent — and with it the max — is unchanged.
  const bool a_left = pa.x < pb.x;
  const double xl = a_left ? pa.x : pb.x;
  const double xr = a_left ? pb.x : pa.x;
  const double wl = a_left ? wa : wb;
  const double wr = a_left ? wb : wa;
  const double left_new_x = xr + 0.5 * wr - 0.5 * wl;   // left cell's new center
  const double right_new_x = xl - 0.5 * wl + 0.5 * wr;  // right cell's new center
  ov.a_x = a_left ? left_new_x : right_new_x;
  ov.a_y = pa.y;
  ov.b_x = a_left ? right_new_x : left_new_x;
  ov.b_y = pb.y;
  ov.row_a_y = pa.y;
  ov.a_lo = xl;
  ov.a_hi = xr;
  ov.shift_a = wr - wl;
  ov.max_extent = p.max_row_extent();
  emit_from(ra, std::min(sa, sb));
  return ov;
}

}  // namespace pts::placement
