// Machine heterogeneity model.
//
// The paper runs on a parallel virtual machine of 12 workstations: seven
// high-speed, three medium-speed and two low-speed. We emulate that cluster
// with per-machine profiles: a task bound to a machine of speed `s`
// consumes `units / s` (virtual or throttled-real) seconds for `units` of
// work, optionally perturbed by a lognormal-ish load jitter that models
// other users' load on a shared LAN workstation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace pts::pvm {

struct MachineProfile {
  std::string name = "m";
  /// Relative speed: work units executed per unit of time. 1.0 = fast class.
  double speed = 1.0;
  /// Stddev of multiplicative load noise per work chunk (0 = quiet machine).
  double load_jitter = 0.0;

  /// Time to execute `units` of work given a jitter draw from `rng`.
  double time_for(double units, Rng& rng) const {
    PTS_DCHECK(speed > 0.0);
    double factor = 1.0;
    if (load_jitter > 0.0) {
      factor = 1.0 + load_jitter * std::abs(rng.normal());
    }
    return units * factor / speed;
  }
};

/// An ordered set of machines; tasks are bound round-robin in spawn order,
/// mirroring PVM's default task placement on the virtual machine.
struct ClusterConfig {
  std::vector<MachineProfile> machines;

  std::size_t size() const { return machines.size(); }

  const MachineProfile& machine_for_task(std::size_t task_index) const {
    PTS_CHECK(!machines.empty());
    return machines[task_index % machines.size()];
  }

  /// The paper's 12-workstation cluster: 7 fast, 3 medium, 2 slow.
  /// Speed ratios follow the three "speed levels" of Section 5; jitter
  /// models background LAN load.
  static ClusterConfig paper_cluster(double jitter = 0.05);

  /// `n` identical machines (the idealized homogeneous baseline).
  static ClusterConfig homogeneous(std::size_t n, double speed = 1.0,
                                   double jitter = 0.0);

  /// Custom three-class cluster.
  static ClusterConfig three_class(std::size_t fast, std::size_t medium,
                                   std::size_t slow, double fast_speed = 1.0,
                                   double medium_speed = 0.75,
                                   double slow_speed = 0.5, double jitter = 0.0);
};

}  // namespace pts::pvm
