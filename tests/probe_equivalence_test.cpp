// Probe/commit equivalence guard (DESIGN.md §3).
//
// The speculative trial-evaluation layer promises that Evaluator::probe_swap
// returns a cost bit-identical to what apply_swap would have returned
// against the same running totals, and that commit_probe leaves state
// bit-identical to the equivalent apply_swap. Every trial loop in the system
// (compound moves, diversification, both baselines, both parallel engines)
// leans on these two properties for the same-seed determinism guarantee, so
// they are asserted here with exact floating-point equality — no tolerances.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "cost/evaluator.hpp"
#include "netlist/benchmarks.hpp"
#include "support/rng.hpp"
#include "tabu/search.hpp"

namespace pts::cost {
namespace {

using netlist::CellId;
using netlist::Netlist;
using placement::Layout;
using placement::Placement;

std::unique_ptr<Evaluator> make_eval(const Netlist& nl, const Layout& layout,
                                     std::uint64_t seed,
                                     const CostParams& params) {
  Rng rng(seed);
  Placement p = Placement::random(nl, layout, rng);
  auto paths =
      timing::extract_critical_paths(nl, params.num_paths, params.delay_model);
  const FuzzyGoals goals = Evaluator::calibrate_goals(p, *paths, params);
  return std::make_unique<Evaluator>(std::move(p), std::move(paths), params,
                                     goals);
}

void expect_same_objectives(const Evaluator& a, const Evaluator& b) {
  const Objectives oa = a.objectives();
  const Objectives ob = b.objectives();
  EXPECT_EQ(oa.wirelength, ob.wirelength);
  EXPECT_EQ(oa.delay, ob.delay);
  EXPECT_EQ(oa.area, ob.area);
}

struct CircuitCase {
  const char* name;
  int swaps;
};

class ProbeEquivalence : public ::testing::TestWithParam<CircuitCase> {};

// probe_swap(a, b) == apply_swap(a, b) bit for bit, along a random walk
// whose committed state keeps evolving (so the running totals the probe is
// measured against carry realistic accumulated drift).
TEST_P(ProbeEquivalence, ProbeMatchesApplyBitForBit) {
  const auto c = GetParam();
  const Netlist nl = netlist::make_benchmark(c.name);
  const Layout layout(nl);
  CostParams params;
  auto eval = make_eval(nl, layout, 17, params);

  Rng rng(29);
  const auto& movable = nl.movable_cells();
  for (int i = 0; i < c.swaps; ++i) {
    const auto [ia, ib] = rng.distinct_pair(movable.size());
    const CellId a = movable[ia];
    const CellId b = movable[ib];
    const double probed = eval->probe_swap(a, b);
    const double applied = eval->apply_swap(a, b);
    ASSERT_EQ(probed, applied) << c.name << " swap " << i;
  }
}

// Probing must not disturb any observable state, even when many probes run
// back to back without a commit (the compound-move trial loop does exactly
// this, width trials per level).
TEST_P(ProbeEquivalence, RepeatedProbesWithoutCommitLeaveStateUntouched) {
  const auto c = GetParam();
  const Netlist nl = netlist::make_benchmark(c.name);
  const Layout layout(nl);
  CostParams params;
  auto eval = make_eval(nl, layout, 23, params);

  const double cost_before = eval->cost();
  const Objectives obj_before = eval->objectives();
  const std::vector<CellId> slots_before = eval->placement().slots();

  Rng rng(31);
  const auto& movable = nl.movable_cells();
  const int probes = std::min(c.swaps, 256);
  for (int i = 0; i < probes; ++i) {
    const auto [ia, ib] = rng.distinct_pair(movable.size());
    eval->probe_swap(movable[ia], movable[ib]);
  }

  EXPECT_EQ(eval->cost(), cost_before);
  EXPECT_EQ(eval->objectives().wirelength, obj_before.wirelength);
  EXPECT_EQ(eval->objectives().delay, obj_before.delay);
  EXPECT_EQ(eval->objectives().area, obj_before.area);
  EXPECT_EQ(eval->placement().slots(), slots_before);
  EXPECT_EQ(eval->swaps_applied(), 0u);

  // A probe sequenced after other probes still matches apply exactly.
  const auto [ia, ib] = rng.distinct_pair(movable.size());
  const double probed = eval->probe_swap(movable[ia], movable[ib]);
  EXPECT_EQ(probed, eval->apply_swap(movable[ia], movable[ib]));
}

// Lockstep walk: one evaluator commits probes, its twin applies the same
// swaps directly. Both must stay bit-identical — costs, objectives, slots,
// and bookkeeping — including across periodic-rebuild boundaries (the small
// rebuild_interval forces several rebuilds on both sides).
TEST_P(ProbeEquivalence, CommitProbeMatchesApplyInLockstep) {
  const auto c = GetParam();
  const Netlist nl = netlist::make_benchmark(c.name);
  const Layout layout(nl);
  CostParams params;
  params.rebuild_interval = 64;
  auto committing = make_eval(nl, layout, 41, params);
  auto applying = make_eval(nl, layout, 41, params);

  Rng rng(43);
  const auto& movable = nl.movable_cells();
  const int steps = std::min(c.swaps, 400);
  for (int i = 0; i < steps; ++i) {
    const auto [ia, ib] = rng.distinct_pair(movable.size());
    const CellId a = movable[ia];
    const CellId b = movable[ib];
    committing->probe_swap(a, b);
    const double via_commit = committing->commit_probe();
    const double via_apply = applying->apply_swap(a, b);
    ASSERT_EQ(via_commit, via_apply) << c.name << " step " << i;
  }
  expect_same_objectives(*committing, *applying);
  EXPECT_EQ(committing->placement().slots(), applying->placement().slots());
  EXPECT_EQ(committing->swaps_applied(), applying->swaps_applied());
}

// commit_swap must promote the pending probe in either orientation and fall
// back to a plain apply when the winner is not the pair probed last — all
// three paths bit-identical to a lockstep twin that only uses apply_swap.
TEST(ProbeEquivalenceCommitSwap, PromotesPendingProbeOrApplies) {
  const Netlist nl = netlist::make_benchmark("c532");
  const Layout layout(nl);
  CostParams params;
  auto committing = make_eval(nl, layout, 71, params);
  auto applying = make_eval(nl, layout, 71, params);

  Rng rng(73);
  const auto& movable = nl.movable_cells();
  for (int i = 0; i < 300; ++i) {
    const auto [ia, ib] = rng.distinct_pair(movable.size());
    const CellId a = movable[ia];
    const CellId b = movable[ib];
    double via_commit_swap = 0.0;
    double via_apply = 0.0;
    if (i % 3 == 0) {
      committing->probe_swap(a, b);  // pending probe, same orientation
      via_commit_swap = committing->commit_swap(a, b);
      via_apply = applying->apply_swap(a, b);
    } else if (i % 3 == 1) {
      // Reversed orientation still promotes the pending probe; the state it
      // produces is the probed orientation's, so the twin applies (b, a).
      committing->probe_swap(b, a);
      via_commit_swap = committing->commit_swap(a, b);
      via_apply = applying->apply_swap(b, a);
    } else {
      const auto [ic, id] = rng.distinct_pair(movable.size());
      committing->probe_swap(movable[ic], movable[id]);  // losing trial
      via_commit_swap = committing->commit_swap(a, b);   // must fall back
      via_apply = applying->apply_swap(a, b);
    }
    ASSERT_EQ(via_commit_swap, via_apply) << "step " << i;
  }
  expect_same_objectives(*committing, *applying);
  EXPECT_EQ(committing->placement().slots(), applying->placement().slots());
  EXPECT_EQ(committing->swaps_applied(), applying->swaps_applied());
}

// Pad-heavy nets keep fixed pad pins inside the recomputed boxes; swaps of
// cells incident to pad-connected nets must round-trip just like any other.
TEST_P(ProbeEquivalence, PadConnectedNetsProbeExactly) {
  const auto c = GetParam();
  const Netlist nl = netlist::make_benchmark(c.name);
  const Layout layout(nl);
  CostParams params;
  auto eval = make_eval(nl, layout, 53, params);

  // Movable cells on nets that also touch a pad (PI driver or PO sink).
  std::vector<CellId> pad_adjacent;
  for (netlist::NetId net = 0; net < nl.num_nets(); ++net) {
    const auto& n = nl.net(net);
    bool has_pad = !nl.cell(n.driver).movable();
    for (CellId sink : n.sinks) has_pad = has_pad || !nl.cell(sink).movable();
    if (!has_pad) continue;
    if (nl.cell(n.driver).movable()) pad_adjacent.push_back(n.driver);
    for (CellId sink : n.sinks) {
      if (nl.cell(sink).movable()) pad_adjacent.push_back(sink);
    }
  }
  ASSERT_GE(pad_adjacent.size(), 2u) << "benchmark lost its pad-adjacent cells";

  Rng rng(59);
  const int swaps = std::min(c.swaps, 500);
  for (int i = 0; i < swaps; ++i) {
    const auto [ia, ib] = rng.distinct_pair(pad_adjacent.size());
    const CellId a = pad_adjacent[ia];
    const CellId b = pad_adjacent[ib];
    if (a == b) continue;  // distinct indices may still alias one cell
    const double probed = eval->probe_swap(a, b);
    ASSERT_EQ(probed, eval->apply_swap(a, b)) << c.name << " pad swap " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(PaperCircuits, ProbeEquivalence,
                         ::testing::Values(CircuitCase{"highway", 2000},
                                           CircuitCase{"c532", 2000},
                                           CircuitCase{"c1355", 1200},
                                           CircuitCase{"c3540", 800}),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

// The refactored TabuSearch — whose compound-move loop now probes all
// trials and commits only the level winner — must still satisfy the
// same-seed trajectory guarantee end to end.
TEST(ProbeTrajectory, TabuSearchSameSeedTrajectoriesUnchanged) {
  const Netlist nl = netlist::make_benchmark("highway");
  const Layout layout(nl);
  CostParams params;

  tabu::TabuParams tabu_params;
  tabu_params.iterations = 100;
  tabu_params.trace_stride = 1;

  auto run = [&] {
    auto eval = make_eval(nl, layout, 61, params);
    tabu::TabuSearch search(*eval, tabu_params, Rng(67));
    return search.run();
  };
  const tabu::SearchResult r1 = run();
  const tabu::SearchResult r2 = run();

  EXPECT_EQ(r1.best_cost, r2.best_cost);
  EXPECT_EQ(r1.best_slots, r2.best_slots);
  ASSERT_EQ(r1.cost_trace.size(), r2.cost_trace.size());
  for (std::size_t i = 0; i < r1.cost_trace.size(); ++i) {
    ASSERT_EQ(r1.cost_trace.y[i], r2.cost_trace.y[i]) << "iteration " << i;
  }
}

}  // namespace
}  // namespace pts::cost
