// The serving layer (src/service): JSON core, spec/result codec, wire
// protocol, session manager, and the ptsd daemon end to end over real Unix
// sockets — including the hardening contract (malformed frames drop the
// connection, schema violations answer kError and survive) and the headline
// guarantee that a daemon-served solve is bit-identical to a direct
// same-seed solver::solve.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "experiments/workloads.hpp"
#include "pvm/frame.hpp"
#include "service/client.hpp"
#include "service/codec.hpp"
#include "service/daemon.hpp"
#include "service/json.hpp"
#include "service/proto.hpp"
#include "service/session.hpp"
#include "solver/solver.hpp"
#include "support/fault.hpp"

namespace pts::service {
namespace {

using solver::SolveResult;
using solver::SolveSpec;

// -- helpers -----------------------------------------------------------------

std::string fresh_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/pts-svc-" + std::to_string(::getpid()) + "-" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

/// Raw Unix-domain connection, for bytes the Client refuses to send.
int raw_connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Blocks until the peer closes (true) or data arrives (false).
bool reads_eof(int fd) {
  std::uint8_t buffer[1024];
  while (true) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n == 0) return true;
    if (n < 0 && errno != EINTR) return true;  // reset counts as closed
    if (n > 0) return false;
  }
}

SolveSpec highway_spec(std::string engine, std::uint64_t seed,
                       std::size_t iterations) {
  SolveSpec spec;
  spec.engine = std::move(engine);
  spec.netlist = &experiments::circuit("highway");
  spec.seed = seed;
  spec.tabu.iterations = iterations;
  return spec;
}

void expect_series_eq(const Series& a, const Series& b) {
  EXPECT_EQ(a.name, b.name);
  ASSERT_EQ(a.x.size(), b.x.size());
  ASSERT_EQ(a.y.size(), b.y.size());
  for (std::size_t i = 0; i < a.x.size(); ++i) {
    EXPECT_EQ(a.x[i], b.x[i]) << "x[" << i << "]";
    EXPECT_EQ(a.y[i], b.y[i]) << "y[" << i << "]";
  }
}

/// Every field that is deterministic for all engines (wall-clock series and
/// makespan are engine-dependent; the sim-engine test compares those too).
void expect_deterministic_fields_eq(const SolveResult& a, const SolveResult& b) {
  EXPECT_EQ(a.engine, b.engine);
  EXPECT_EQ(a.initial_cost, b.initial_cost);
  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.best_quality, b.best_quality);
  EXPECT_EQ(a.best_objectives.wirelength, b.best_objectives.wirelength);
  EXPECT_EQ(a.best_objectives.delay, b.best_objectives.delay);
  EXPECT_EQ(a.best_objectives.area, b.best_objectives.area);
  EXPECT_EQ(a.best_slots, b.best_slots);
  expect_series_eq(a.cost_trace, b.cost_trace);
  expect_series_eq(a.best_trace, b.best_trace);
  expect_series_eq(a.best_vs_global, b.best_vs_global);
  EXPECT_EQ(a.stats.iterations, b.stats.iterations);
  EXPECT_EQ(a.stats.accepted, b.stats.accepted);
  EXPECT_EQ(a.stats.trials, b.stats.trials);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.stop_reason, b.stop_reason);
  EXPECT_EQ(a.converged, b.converged);
}

// -- json --------------------------------------------------------------------

TEST(Json, ParseDumpRoundTrip) {
  const std::string text =
      R"({"a":1,"b":[true,false,null],"c":{"nested":"va\"l\\ue"},"d":-2.5})";
  std::string error;
  auto value = json::parse(text, &error);
  ASSERT_TRUE(value.has_value()) << error;
  EXPECT_EQ(json::dump(*value), text);

  const auto* a = value->find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->as_number(), 1.0);
  const auto* b = value->find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->items().size(), 3u);
  EXPECT_TRUE(b->items()[0].as_bool());
  EXPECT_TRUE(b->items()[2].is_null());
  EXPECT_EQ(value->find("c")->find("nested")->as_string(), "va\"l\\ue");
  EXPECT_EQ(value->find("missing"), nullptr);
}

TEST(Json, UnicodeEscapes) {
  std::string error;
  auto value = json::parse(R"("aAé€😀")", &error);
  ASSERT_TRUE(value.has_value()) << error;
  EXPECT_EQ(value->as_string(), "aA\xc3\xa9\xe2\x82\xac\xf0\x9f\x98\x80");
  // Lone surrogate is malformed.
  EXPECT_FALSE(json::parse(R"("\ud83d")", &error).has_value());
}

TEST(Json, DoublesRoundTripBitExact) {
  for (const double v : {0.1, 1.0 / 3.0, 1e-300, 1.7976931348623157e308,
                         -0.0, 4503599627370496.0, 3.141592653589793}) {
    json::Value value(v);
    std::string error;
    auto back = json::parse(json::dump(value), &error);
    ASSERT_TRUE(back.has_value()) << error;
    const double r = back->as_number();
    EXPECT_EQ(std::memcmp(&r, &v, sizeof(double)), 0)
        << "double " << v << " did not round-trip bit-exactly";
  }
}

TEST(Json, MalformedInputsAreErrorsNotAborts) {
  std::string error;
  EXPECT_FALSE(json::parse("", &error).has_value());
  EXPECT_FALSE(json::parse("{", &error).has_value());
  EXPECT_FALSE(json::parse("[1,]", &error).has_value());
  EXPECT_FALSE(json::parse("{\"a\":1} junk", &error).has_value());
  EXPECT_FALSE(json::parse("nul", &error).has_value());
  EXPECT_FALSE(json::parse("\"unterminated", &error).has_value());
  // Depth cap: 65 nested arrays exceed the 64-level limit...
  EXPECT_FALSE(
      json::parse(std::string(65, '[') + std::string(65, ']'), &error).has_value());
  EXPECT_NE(error.find("deep"), std::string::npos);
  // ...while 64 parse fine.
  EXPECT_TRUE(
      json::parse(std::string(64, '[') + std::string(64, ']'), &error).has_value());
}

// -- codec -------------------------------------------------------------------

TEST(Codec, SpecRoundTripPreservesEveryField) {
  JobRequest job;
  job.circuit = "c532";
  job.spec.engine = "parallel-sim";
  job.spec.seed = 987654321;
  job.spec.cost.num_paths = 12;
  job.spec.cost.beta = 0.75;
  job.spec.tabu.tenure = 17;
  job.spec.tabu.iterations = 333;
  job.spec.tabu.aspiration = false;
  job.spec.stop.max_iterations = 100;
  job.spec.stop.max_seconds = 1.5;
  job.spec.stop.target_cost = 0.125;

  std::string error;
  const std::string text = encode_spec(job);
  auto back = decode_spec(text, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->circuit, "c532");
  EXPECT_EQ(back->spec.engine, "parallel-sim");
  EXPECT_EQ(back->spec.seed, 987654321u);
  EXPECT_EQ(back->spec.cost.num_paths, 12u);
  EXPECT_EQ(back->spec.cost.beta, 0.75);
  EXPECT_EQ(back->spec.tabu.tenure, 17u);
  EXPECT_EQ(back->spec.tabu.iterations, 333u);
  EXPECT_FALSE(back->spec.tabu.aspiration);
  EXPECT_EQ(back->spec.stop.max_iterations, 100u);
  EXPECT_EQ(back->spec.stop.max_seconds, 1.5);
  ASSERT_TRUE(back->spec.stop.target_cost.has_value());
  EXPECT_EQ(*back->spec.stop.target_cost, 0.125);
  // Non-serializable fields stay for the daemon to fill.
  EXPECT_EQ(back->spec.netlist, nullptr);
  EXPECT_EQ(back->spec.stop.cancel, nullptr);
  EXPECT_EQ(back->spec.observer, nullptr);
}

TEST(Codec, StrictDecodingRejectsBadSpecs) {
  std::string error;
  // Unknown key.
  EXPECT_FALSE(decode_spec(R"({"circuit":"highway","bogus":1})", &error));
  EXPECT_NE(error.find("bogus"), std::string::npos);
  // Wrong type.
  EXPECT_FALSE(decode_spec(R"({"circuit":7})", &error).has_value());
  // Integral field out of exact-double range.
  EXPECT_FALSE(
      decode_spec(R"({"circuit":"highway","seed":1e300})", &error).has_value());
  // Not JSON at all.
  EXPECT_FALSE(decode_spec("solve it please", &error).has_value());
}

TEST(Codec, ResultRoundTripIsBitExact) {
  auto result = solver::Solver().solve(highway_spec("tabu", 11, 80));
  ASSERT_GT(result.best_vs_time.size(), 0u);

  std::string error;
  auto back = decode_result(encode_result(result), &error);
  ASSERT_TRUE(back.has_value()) << error;
  expect_deterministic_fields_eq(result, *back);
  // The wall-clock series and makespan also survive the wire bit-exactly
  // (the codec property; they just aren't comparable across *runs*).
  expect_series_eq(result.best_vs_time, back->best_vs_time);
  EXPECT_EQ(result.makespan, back->makespan);
}

// -- proto -------------------------------------------------------------------

TEST(Proto, MessagesRoundTrip) {
  {
    WelcomeMsg in;
    in.server = "ptsd-test";
    in.engines = {"anneal", "tabu"};
    in.circuits = {"highway"};
    auto msg = encode(in);
    WelcomeMsg out;
    ASSERT_TRUE(decode(msg, out));
    EXPECT_EQ(out.version, kProtocolVersion);
    EXPECT_EQ(out.server, "ptsd-test");
    EXPECT_EQ(out.engines, in.engines);
    EXPECT_EQ(out.circuits, in.circuits);
  }
  {
    SubmitMsg in;
    in.spec_json = R"({"circuit":"highway"})";
    in.stream = true;
    in.progress_stride = 16;
    auto msg = encode(in);
    SubmitMsg out;
    ASSERT_TRUE(decode(msg, out));
    EXPECT_EQ(out.spec_json, in.spec_json);
    EXPECT_TRUE(out.stream);
    EXPECT_EQ(out.progress_stride, 16u);
  }
  {
    ProgressMsg in;
    in.session = 42;
    in.improvement = true;
    in.iteration = 1000;
    in.seconds = 1.25;
    in.current_cost = 0.5;
    in.best_cost = 0.25;
    auto msg = encode(in);
    ProgressMsg out;
    ASSERT_TRUE(decode(msg, out));
    EXPECT_EQ(out.session, 42u);
    EXPECT_TRUE(out.improvement);
    EXPECT_EQ(out.iteration, 1000u);
    EXPECT_EQ(out.best_cost, 0.25);
  }
  {
    auto msg = encode_shutdown();
    EXPECT_TRUE(decode_shutdown(msg));
  }
}

TEST(Proto, HardenedDecodeRejectsForeignPayloads) {
  // Right tag, wrong schema: a kSubmitOk payload pretending to be kWelcome.
  auto ok = encode(SubmitOkMsg{7});
  auto foreign = pvm::Message::from_payload(kWelcome, ok.bytes());
  WelcomeMsg welcome;
  EXPECT_FALSE(decode(foreign, welcome));

  // Trailing bytes after a valid payload are rejected.
  auto hello = encode(HelloMsg{});
  auto padded_bytes = hello.bytes();
  pvm::Message padded = pvm::Message::from_payload(kHello, padded_bytes);
  padded.pack_u32(1);
  HelloMsg out;
  EXPECT_FALSE(decode(padded, out));

  // Garbage bytes under a known tag must return false, never abort.
  auto garbage = pvm::Message::from_payload(kSubmit, {0xde, 0xad, 0xbe, 0xef});
  SubmitMsg submit;
  EXPECT_FALSE(decode(garbage, submit));
}

// -- session manager ---------------------------------------------------------

TEST(SessionManager, RunsToDoneExactlyOnceAndMatchesDirect) {
  SessionManager manager;
  std::mutex mutex;
  std::vector<SessionEvent> events;
  const auto started = manager.start(
      highway_spec("tabu", 5, 60), /*owner=*/1, /*stream=*/true,
      /*progress_stride=*/0, [&](SessionEvent&& event) {
        const std::lock_guard<std::mutex> lock(mutex);
        events.push_back(std::move(event));
      });
  ASSERT_EQ(started.status, SessionManager::StartStatus::Started);
  const auto id = started.id;
  ASSERT_NE(id, 0u);
  // drain() *cancels*; to observe a natural completion, wait for the
  // session to finish on its own first.
  while (manager.sessions_finished() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  manager.drain();

  ASSERT_FALSE(events.empty());
  std::size_t done_count = 0;
  for (const auto& event : events) {
    EXPECT_EQ(event.session, id);
    if (event.kind == SessionEvent::Kind::Done) ++done_count;
  }
  EXPECT_EQ(done_count, 1u);
  EXPECT_EQ(events.back().kind, SessionEvent::Kind::Done);

  const auto direct = solver::Solver().solve(highway_spec("tabu", 5, 60));
  expect_deterministic_fields_eq(events.back().result, direct);
  EXPECT_EQ(manager.active_sessions(), 0u);
  EXPECT_EQ(manager.sessions_started(), 1u);
  EXPECT_EQ(manager.sessions_finished(), 1u);
}

TEST(SessionManager, EnforcesCapacityAndCancelDeliversCancelledDone) {
  // max_queued = 0 disables the admission queue, restoring hard rejection.
  SessionManager manager(
      SessionManager::Options{/*max_sessions=*/1, /*max_queued=*/0});
  std::atomic<bool> done{false};
  std::atomic<int> done_events{0};
  SolveResult final_result;
  const auto started = manager.start(
      highway_spec("tabu", 3, 50'000'000), /*owner=*/1, /*stream=*/false, 0,
      [&](SessionEvent&& event) {
        if (event.kind == SessionEvent::Kind::Done) {
          final_result = std::move(event.result);
          ++done_events;
          done.store(true);
        }
      });
  ASSERT_EQ(started.status, SessionManager::StartStatus::Started);
  const auto id = started.id;
  ASSERT_NE(id, 0u);
  EXPECT_EQ(manager.active_sessions(), 1u);

  // At capacity with no queue: the second start is rejected explicitly
  // (and its sink never fires).
  const auto rejected = manager.start(
      highway_spec("tabu", 4, 10), /*owner=*/1, false, 0,
      [](SessionEvent&&) { FAIL() << "rejected session must not emit events"; });
  EXPECT_EQ(rejected.status, SessionManager::StartStatus::QueueFull);
  EXPECT_FALSE(rejected.accepted());
  EXPECT_EQ(rejected.id, 0u);

  EXPECT_TRUE(manager.cancel(id));
  manager.drain();
  EXPECT_TRUE(done.load());
  EXPECT_EQ(done_events.load(), 1);
  EXPECT_EQ(final_result.stop_reason, StopReason::Cancelled);
  // Unknown / finished sessions report inactive.
  EXPECT_FALSE(manager.cancel(id));
  EXPECT_FALSE(manager.cancel(9999));
  // Draining managers reject new sessions with their own status.
  EXPECT_EQ(manager
                .start(highway_spec("tabu", 5, 10), 1, false, 0,
                       [](SessionEvent&&) {})
                .status,
            SessionManager::StartStatus::ShuttingDown);
}

TEST(SessionManager, QueuePromotesInFifoOrderAndResultsMatchDirect) {
  SessionManager manager(
      SessionManager::Options{/*max_sessions=*/1, /*max_queued=*/8});
  std::mutex mutex;
  std::vector<std::uint64_t> done_order;
  std::vector<SolveResult> results;
  auto sink = [&](SessionEvent&& event) {
    if (event.kind != SessionEvent::Kind::Done) return;
    const std::lock_guard<std::mutex> lock(mutex);
    done_order.push_back(event.session);
    results.push_back(std::move(event.result));
  };

  // Occupy the single slot, then queue three short jobs behind it.
  const auto blocker = manager.start(highway_spec("tabu", 1, 50'000'000),
                                     /*owner=*/1, false, 0, sink);
  ASSERT_EQ(blocker.status, SessionManager::StartStatus::Started);
  std::vector<std::uint64_t> queued_ids;
  for (std::uint64_t seed = 10; seed < 13; ++seed) {
    const auto queued =
        manager.start(highway_spec("tabu", seed, 40), /*owner=*/1, false, 0, sink);
    ASSERT_EQ(queued.status, SessionManager::StartStatus::Queued);
    ASSERT_NE(queued.id, 0u);
    queued_ids.push_back(queued.id);
  }
  EXPECT_EQ(manager.queued_sessions(), 3u);
  EXPECT_EQ(manager.active_sessions(), 1u);

  // Free the slot; the queue drains in admission order.
  EXPECT_TRUE(manager.cancel(blocker.id));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (manager.sessions_finished() < 4 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  manager.drain();

  ASSERT_EQ(done_order.size(), 4u);
  EXPECT_EQ(done_order[0], blocker.id);
  EXPECT_EQ(done_order[1], queued_ids[0]);
  EXPECT_EQ(done_order[2], queued_ids[1]);
  EXPECT_EQ(done_order[3], queued_ids[2]);
  EXPECT_EQ(manager.queued_sessions(), 0u);

  // A solve that waited in the queue is still bit-identical to a direct
  // same-seed solve — queueing delays work, it must not change it.
  const auto direct = solver::Solver().solve(highway_spec("tabu", 10, 40));
  expect_deterministic_fields_eq(results[1], direct);
}

TEST(SessionManager, DeadlineExpiresRunningSessionWithReason) {
  SessionManager manager;
  std::atomic<bool> done{false};
  SolveResult final_result;
  const auto started = manager.start(
      highway_spec("tabu", 2, 50'000'000), /*owner=*/1, false, 0,
      [&](SessionEvent&& event) {
        if (event.kind != SessionEvent::Kind::Done) return;
        final_result = std::move(event.result);
        done.store(true);
      },
      /*deadline_seconds=*/0.05);
  ASSERT_EQ(started.status, SessionManager::StartStatus::Started);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!done.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  manager.drain();
  ASSERT_TRUE(done.load());
  // The watchdog cancelled it, and the reason says "out of time", not
  // "the client asked".
  EXPECT_EQ(final_result.stop_reason, StopReason::DeadlineExpired);
}

TEST(SessionManager, DeadlineExpiresQueuedSessionWithoutWaitingForSlot) {
  SessionManager manager(
      SessionManager::Options{/*max_sessions=*/1, /*max_queued=*/4});
  std::atomic<bool> queued_done{false};
  SolveResult queued_result;
  const auto blocker = manager.start(highway_spec("tabu", 1, 50'000'000),
                                     /*owner=*/1, false, 0,
                                     [](SessionEvent&&) {});
  ASSERT_EQ(blocker.status, SessionManager::StartStatus::Started);
  const auto queued = manager.start(
      highway_spec("tabu", 2, 40), /*owner=*/1, false, 0,
      [&](SessionEvent&& event) {
        if (event.kind != SessionEvent::Kind::Done) return;
        queued_result = std::move(event.result);
        queued_done.store(true);
      },
      /*deadline_seconds=*/0.05);
  ASSERT_EQ(queued.status, SessionManager::StartStatus::Queued);

  // The blocker never yields its slot, yet the queued session's deadline
  // still produces a prompt DeadlineExpired Done.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!queued_done.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(queued_done.load());
  EXPECT_EQ(queued_result.stop_reason, StopReason::DeadlineExpired);
  manager.drain();
}

// -- daemon end to end -------------------------------------------------------

class DaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    socket_path_ = fresh_socket_path();
    DaemonConfig config;
    config.unix_path = socket_path_;
    config.max_payload = 1u << 20;
    daemon_ = std::make_unique<Daemon>(config);
    std::string error;
    ASSERT_TRUE(daemon_->start(&error)) << error;
  }

  void TearDown() override {
    daemon_->stop();
    EXPECT_EQ(daemon_->active_sessions(), 0u) << "leaked sessions after drain";
    EXPECT_EQ(daemon_->sessions_started(), daemon_->sessions_finished());
  }

  Client connect() {
    Client client;
    std::string error;
    EXPECT_TRUE(client.connect_unix(socket_path_, &error)) << error;
    return client;
  }

  std::string socket_path_;
  std::unique_ptr<Daemon> daemon_;
};

TEST_F(DaemonTest, HelloAdvertisesEnginesAndCircuits) {
  auto client = connect();
  std::string error;
  const auto welcome = client.hello(&error);
  ASSERT_TRUE(welcome.has_value()) << error;
  EXPECT_EQ(welcome->version, kProtocolVersion);
  EXPECT_EQ(welcome->server, "ptsd");
  EXPECT_EQ(welcome->engines, solver::engine_names());
  const auto& circuits = welcome->circuits;
  for (const char* name : {"highway", "c532", "scale10k"}) {
    EXPECT_NE(std::find(circuits.begin(), circuits.end(), name), circuits.end())
        << name;
  }
}

TEST_F(DaemonTest, ServedTabuSolveIsBitIdenticalToDirect) {
  auto client = connect();
  std::string error;
  ASSERT_TRUE(client.hello(&error).has_value()) << error;

  JobRequest job;
  job.circuit = "highway";
  job.spec.engine = "tabu";
  job.spec.seed = 21;
  job.spec.tabu.iterations = 100;
  const auto session = client.submit(job, /*stream=*/false, 0, &error);
  ASSERT_TRUE(session.has_value()) << error;
  const auto served = client.wait(*session, nullptr, &error);
  ASSERT_TRUE(served.has_value()) << error;

  const auto direct = solver::Solver().solve(highway_spec("tabu", 21, 100));
  expect_deterministic_fields_eq(*served, direct);
}

TEST_F(DaemonTest, ServedParallelSimIsFullyBitIdentical) {
  auto client = connect();
  std::string error;
  ASSERT_TRUE(client.hello(&error).has_value()) << error;

  JobRequest job;
  job.circuit = "highway";
  job.spec.engine = "parallel-sim";
  job.spec.seed = 2;
  const auto session = client.submit(job, false, 0, &error);
  ASSERT_TRUE(session.has_value()) << error;
  const auto served = client.wait(*session, nullptr, &error);
  ASSERT_TRUE(served.has_value()) << error;

  auto spec = highway_spec("parallel-sim", 2, 200);
  spec.tabu = {};  // engine defaults, as the wire spec used
  const auto direct = solver::Solver().solve(spec);
  expect_deterministic_fields_eq(*served, direct);
  // The sim engine's clock is virtual, so even the time series and the
  // makespan must match bit-for-bit across the wire.
  expect_series_eq(served->best_vs_time, direct.best_vs_time);
  EXPECT_EQ(served->makespan, direct.makespan);
}

TEST_F(DaemonTest, StreamsProgressDuringSolve) {
  auto client = connect();
  std::string error;
  ASSERT_TRUE(client.hello(&error).has_value()) << error;

  JobRequest job;
  job.circuit = "highway";
  job.spec.engine = "tabu";
  job.spec.seed = 9;
  job.spec.tabu.iterations = 120;
  const auto session = client.submit(job, /*stream=*/true, /*stride=*/10, &error);
  ASSERT_TRUE(session.has_value()) << error;

  std::size_t improvements = 0, ticks = 0;
  double last_best = 1e300;
  const auto result = client.wait(
      *session,
      [&](const ProgressMsg& progress) {
        EXPECT_EQ(progress.session, *session);
        if (progress.improvement) {
          // Improvements stream in decreasing best-cost order.
          EXPECT_LT(progress.best_cost, last_best);
          last_best = progress.best_cost;
          ++improvements;
        } else {
          ++ticks;
        }
      },
      &error);
  ASSERT_TRUE(result.has_value()) << error;
  EXPECT_GT(improvements, 0u);
  EXPECT_GT(ticks, 0u);
  EXPECT_EQ(result->best_cost, last_best);
}

TEST_F(DaemonTest, CancelMidSolveDeliversCancelledResult) {
  auto client = connect();
  std::string error;
  ASSERT_TRUE(client.hello(&error).has_value()) << error;

  JobRequest job;
  job.circuit = "highway";
  job.spec.engine = "tabu";
  job.spec.seed = 1;
  job.spec.tabu.iterations = 500'000'000;  // would run ~forever
  const auto session = client.submit(job, false, 0, &error);
  ASSERT_TRUE(session.has_value()) << error;

  bool was_active = false;
  ASSERT_TRUE(client.cancel(*session, &was_active, &error)) << error;
  EXPECT_TRUE(was_active);
  const auto result = client.wait(*session, nullptr, &error);
  ASSERT_TRUE(result.has_value()) << error;
  EXPECT_EQ(result->stop_reason, StopReason::Cancelled);
  EXPECT_GT(result->best_cost, 0.0);

  // Cancelling an unknown session reports inactive. (Re-cancelling the
  // finished one races its thread's final bookkeeping — Done is sinked
  // before `finished` is published — so only the unknown id is
  // deterministic here.)
  ASSERT_TRUE(client.cancel(*session + 1000, &was_active, &error)) << error;
  EXPECT_FALSE(was_active);
}

TEST_F(DaemonTest, SchemaViolationsAnswerErrorsAndConnectionSurvives) {
  auto client = connect();
  std::string error;

  // Submit before hello is a protocol-state error...
  JobRequest job;
  job.circuit = "highway";
  EXPECT_FALSE(client.submit(job, false, 0, &error).has_value());
  EXPECT_NE(error.find("hello"), std::string::npos);
  // ...but the connection survives and can complete the handshake.
  ASSERT_TRUE(client.hello(&error).has_value()) << error;

  // Unknown circuit.
  job.circuit = "no-such-circuit";
  EXPECT_FALSE(client.submit(job, false, 0, &error).has_value());
  EXPECT_NE(error.find("no-such-circuit"), std::string::npos);

  // Unknown engine (rejected by Solver::validate before any thread starts).
  job.circuit = "highway";
  job.spec.engine = "no-such-engine";
  EXPECT_FALSE(client.submit(job, false, 0, &error).has_value());
  EXPECT_NE(error.find("engine"), std::string::npos);

  // The same connection still serves a good job afterwards.
  job.spec.engine = "tabu";
  job.spec.tabu.iterations = 30;
  const auto session = client.submit(job, false, 0, &error);
  ASSERT_TRUE(session.has_value()) << error;
  EXPECT_TRUE(client.wait(*session, nullptr, &error).has_value()) << error;
}

TEST_F(DaemonTest, MalformedFrameDropsConnection) {
  const int fd = raw_connect(socket_path_);
  ASSERT_GE(fd, 0);
  // Not a ptsF header: the daemon must drop us without answering.
  const char junk[] = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_EQ(::send(fd, junk, sizeof(junk), MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(junk)));
  EXPECT_TRUE(reads_eof(fd)) << "daemon answered a malformed frame";
  ::close(fd);

  // The daemon itself is unharmed.
  auto client = connect();
  std::string error;
  EXPECT_TRUE(client.hello(&error).has_value()) << error;
}

TEST_F(DaemonTest, OversizedPayloadDropsConnection) {
  const int fd = raw_connect(socket_path_);
  ASSERT_GE(fd, 0);
  // Valid magic, hostile length (16 MiB > the fixture's 1 MiB cap).
  std::uint8_t header[pvm::kFrameHeaderBytes];
  const std::uint32_t magic = pvm::kFrameMagic;
  const std::int32_t tag = kHello;
  const std::uint32_t length = 16u << 20;
  std::memcpy(header, &magic, 4);
  std::memcpy(header + 4, &tag, 4);
  std::memcpy(header + 8, &length, 4);
  ASSERT_EQ(::send(fd, header, sizeof(header), MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(header)));
  EXPECT_TRUE(reads_eof(fd)) << "daemon accepted an oversized frame";
  ::close(fd);
}

TEST_F(DaemonTest, DisconnectMidSolveCancelsOwnedSessions) {
  {
    auto client = connect();
    std::string error;
    ASSERT_TRUE(client.hello(&error).has_value()) << error;
    JobRequest job;
    job.circuit = "highway";
    job.spec.engine = "tabu";
    job.spec.tabu.iterations = 500'000'000;
    ASSERT_TRUE(client.submit(job, /*stream=*/true, 1, &error).has_value())
        << error;
    // Wait until the session is actually running server-side.
    while (daemon_->sessions_started() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }  // client destructor closes the socket mid-solve

  // The reader notices EOF, cancels this connection's sessions, and joins
  // them; shortly after, nothing is active. Poll both counters: a session
  // leaves the active set slightly before the finished counter is bumped.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while ((daemon_->active_sessions() != 0 ||
          daemon_->sessions_finished() != daemon_->sessions_started()) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(daemon_->active_sessions(), 0u);
  EXPECT_EQ(daemon_->sessions_finished(), daemon_->sessions_started());
}

TEST_F(DaemonTest, ClientShutdownRequestDrainsDaemon) {
  // Plays the ptsd main(): a waiter thread performs the stop when the
  // request arrives (the reader thread cannot join itself).
  std::thread waiter([&] {
    daemon_->wait_for_stop_request();
    daemon_->stop();
  });
  auto client = connect();
  std::string error;
  ASSERT_TRUE(client.hello(&error).has_value()) << error;
  EXPECT_TRUE(client.shutdown_server(&error)) << error;
  waiter.join();
  EXPECT_EQ(daemon_->active_sessions(), 0u);
}

TEST_F(DaemonTest, ManySessionsAcrossConnectionsAllComplete) {
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kSessionsEach = 5;
  std::atomic<std::size_t> completed{0};
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = connect();
      std::string error;
      ASSERT_TRUE(client.hello(&error).has_value()) << error;
      std::vector<std::uint64_t> ids;
      for (std::size_t s = 0; s < kSessionsEach; ++s) {
        JobRequest job;
        job.circuit = "highway";
        job.spec.engine = "tabu";
        job.spec.seed = c * 100 + s + 1;
        job.spec.tabu.iterations = 40;
        const auto id = client.submit(job, false, 0, &error);
        ASSERT_TRUE(id.has_value()) << error;
        ids.push_back(*id);
      }
      for (const auto id : ids) {
        const auto result = client.wait(id, nullptr, &error);
        ASSERT_TRUE(result.has_value()) << error;
        EXPECT_EQ(result->stop_reason, StopReason::Completed);
        completed.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(completed.load(), kClients * kSessionsEach);
  // The finished counter increments *after* the Done sink fires, so the
  // clients can observe every Done slightly before it reaches 20.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (daemon_->sessions_finished() < kClients * kSessionsEach &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(daemon_->sessions_finished(), kClients * kSessionsEach);
  EXPECT_EQ(daemon_->connections_accepted(), kClients);
}

TEST_F(DaemonTest, JobDeadlineExpiresOverdueSolveWithReason) {
  auto client = connect();
  std::string error;
  ASSERT_TRUE(client.hello(&error).has_value()) << error;

  JobRequest job;
  job.circuit = "highway";
  job.spec.engine = "tabu";
  job.spec.seed = 1;
  job.spec.tabu.iterations = 500'000'000;  // would run ~forever
  job.deadline_seconds = 0.05;             // per-job deadline on the wire
  const auto session = client.submit(job, false, 0, &error);
  ASSERT_TRUE(session.has_value()) << error;
  const auto result = client.wait(*session, nullptr, &error);
  ASSERT_TRUE(result.has_value()) << error;
  EXPECT_EQ(result->stop_reason, StopReason::DeadlineExpired);
}

TEST(DaemonQueue, QueuedSubmissionsCompleteAndOverflowIsRejected) {
  DaemonConfig config;
  config.unix_path = fresh_socket_path();
  config.max_sessions = 1;
  config.max_queued = 2;
  Daemon daemon(config);
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.connect_unix(config.unix_path, &error)) << error;
  ASSERT_TRUE(client.hello(&error).has_value()) << error;

  // Slot holder + two queued jobs; the kSubmitOk `queued` flag tells them
  // apart. A fourth submission overflows the queue with a reasoned error.
  JobRequest blocker;
  blocker.circuit = "highway";
  blocker.spec.engine = "tabu";
  blocker.spec.seed = 1;
  blocker.spec.tabu.iterations = 500'000'000;
  bool queued = true;
  const auto blocker_id = client.submit(blocker, false, 0, &error, &queued);
  ASSERT_TRUE(blocker_id.has_value()) << error;
  EXPECT_FALSE(queued);

  JobRequest job;
  job.circuit = "highway";
  job.spec.engine = "tabu";
  job.spec.tabu.iterations = 40;
  std::vector<std::uint64_t> queued_ids;
  for (std::uint64_t seed = 10; seed < 12; ++seed) {
    job.spec.seed = seed;
    const auto id = client.submit(job, false, 0, &error, &queued);
    ASSERT_TRUE(id.has_value()) << error;
    EXPECT_TRUE(queued);
    queued_ids.push_back(*id);
  }
  job.spec.seed = 99;
  EXPECT_FALSE(client.submit(job, false, 0, &error).has_value());
  EXPECT_NE(error.find("queue full"), std::string::npos) << error;

  // Free the slot; the queued jobs complete bit-identical to direct solves.
  ASSERT_TRUE(client.cancel(*blocker_id, nullptr, &error)) << error;
  ASSERT_TRUE(client.wait(*blocker_id, nullptr, &error).has_value()) << error;
  for (std::size_t i = 0; i < queued_ids.size(); ++i) {
    const auto served = client.wait(queued_ids[i], nullptr, &error);
    ASSERT_TRUE(served.has_value()) << error;
    const auto direct =
        solver::Solver().solve(highway_spec("tabu", 10 + i, 40));
    expect_deterministic_fields_eq(*served, direct);
  }

  client.close();
  daemon.stop();
  EXPECT_EQ(daemon.active_sessions(), 0u);
  EXPECT_EQ(daemon.queued_sessions(), 0u);
}

TEST(DaemonChaos, RetriedSolvesAreBitIdenticalAndDrainLeaksNothing) {
  // A seeded fault storm on every socket syscall in the process — daemon
  // side included. The retrying client must still land every job, each
  // result must match a direct same-seed solve exactly, and the drain must
  // leave nothing behind.
  // Error rates are per *syscall* and hit both sides of every socket, so a
  // single attempt rolls the dice dozens of times; keep hard-error rates
  // low enough that a retry budget of 15 virtually always lands the job.
  // Short reads/writes only split transfers, so they can stay aggressive.
  fault::SocketFaultConfig fault_config;
  fault_config.read_error_rate = 0.02;
  fault_config.write_error_rate = 0.02;
  fault_config.short_read_rate = 0.2;
  fault_config.short_write_rate = 0.2;
  fault_config.connect_error_rate = 0.05;
  fault::ScopedFaultInjection injection(/*seed=*/42, fault_config);

  DaemonConfig config;
  config.unix_path = fresh_socket_path();
  Daemon daemon(config);
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  RetryPolicy policy;
  policy.max_attempts = 15;
  policy.initial_backoff_seconds = 0.002;
  policy.max_backoff_seconds = 0.05;
  policy.connect_timeout_seconds = 5.0;
  // io timeout off: injected EAGAINs then retry in place instead of being
  // (mis)read as wall-clock timeouts, keeping the test deterministic-ish.
  policy.io_timeout_seconds = 0.0;
  RetryingClient retrying(config.unix_path, policy);

  std::size_t completed = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    JobRequest job;
    job.circuit = "highway";
    job.spec.engine = "tabu";
    job.spec.seed = seed;
    job.spec.tabu.iterations = 60;
    // No streaming: progress frames multiply the per-attempt syscall count
    // (and thus the fault surface) without adding coverage here.
    const auto served = retrying.solve(job, /*stream=*/false, /*stride=*/0,
                                       nullptr, &error);
    ASSERT_TRUE(served.has_value()) << "seed " << seed << ": " << error;
    const auto direct =
        solver::Solver().solve(highway_spec("tabu", seed, 60));
    expect_deterministic_fields_eq(*served, direct);
    ++completed;
  }
  EXPECT_EQ(completed, 6u);

  // The storm actually happened (the plan injected faults somewhere).
  const auto injected = injection.plan().counters();
  EXPECT_GT(injected.short_reads + injected.short_writes +
                injected.read_errors + injected.write_errors +
                injected.connect_errors,
            0u);

  retrying.raw_client().close();
  daemon.stop();
  EXPECT_EQ(daemon.active_sessions(), 0u);
  EXPECT_EQ(daemon.queued_sessions(), 0u);
  EXPECT_EQ(daemon.sessions_started(), daemon.sessions_finished());
}

TEST(DaemonTcp, ServesOverLoopbackTcp) {
  DaemonConfig config;
  config.tcp = true;
  config.tcp_port = 0;  // ephemeral
  Daemon daemon(config);
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;
  ASSERT_NE(daemon.tcp_port(), 0);

  Client client;
  ASSERT_TRUE(client.connect_tcp("127.0.0.1", daemon.tcp_port(), &error)) << error;
  ASSERT_TRUE(client.hello(&error).has_value()) << error;
  JobRequest job;
  job.circuit = "highway";
  job.spec.engine = "tabu";
  job.spec.tabu.iterations = 30;
  const auto session = client.submit(job, false, 0, &error);
  ASSERT_TRUE(session.has_value()) << error;
  EXPECT_TRUE(client.wait(*session, nullptr, &error).has_value()) << error;
  client.close();
  daemon.stop();
  EXPECT_EQ(daemon.active_sessions(), 0u);
}

// -- result cache (ECO mode) -------------------------------------------------

TEST(Codec, CacheKeyCanonicalizesDeadlineAndGatesOnDeterminism) {
  JobRequest job;
  job.circuit = "highway";
  job.spec.engine = "tabu";
  job.spec.seed = 9;
  EXPECT_TRUE(spec_cacheable(job));

  // The deadline shapes when a job is killed, not what it computes: two
  // submissions differing only there share one cache entry.
  JobRequest with_deadline = job;
  with_deadline.deadline_seconds = 30.0;
  EXPECT_EQ(cache_key(job, 0xABCDULL), cache_key(with_deadline, 0xABCDULL));

  // Anything that changes the computed result changes the key.
  JobRequest other_seed = job;
  other_seed.spec.seed = 10;
  EXPECT_NE(cache_key(job, 0xABCDULL), cache_key(other_seed, 0xABCDULL));
  EXPECT_NE(cache_key(job, 0xABCDULL), cache_key(job, 0xABCEULL));
  JobRequest warm = job;
  warm.spec.initial_slots = {2, 1, 0};
  EXPECT_NE(cache_key(job, 0xABCDULL), cache_key(warm, 0xABCDULL));

  // Wall-clock stops and the real-thread engine are not cacheable.
  JobRequest timed = job;
  timed.spec.stop.max_seconds = 5.0;
  EXPECT_FALSE(spec_cacheable(timed));
  JobRequest threaded = job;
  threaded.spec.engine = "parallel-threaded";
  EXPECT_FALSE(spec_cacheable(threaded));
}

TEST(SessionManager, CachesDeterministicResultsWithLruEviction) {
  SessionManager::Options options;
  options.cache_entries = 2;
  SessionManager manager(options);

  const auto run = [&](std::uint64_t seed, const std::string& key) {
    std::promise<SolveResult> promise;
    auto future = promise.get_future();
    const auto started = manager.start(
        highway_spec("tabu", seed, 40), /*owner=*/1, /*stream=*/false, 0,
        [&promise](SessionEvent&& event) {
          if (event.kind == SessionEvent::Kind::Done) {
            promise.set_value(std::move(event.result));
          }
        },
        /*deadline_seconds=*/0.0, key);
    EXPECT_EQ(started.status, SessionManager::StartStatus::Started);
    return future.get();
  };

  const SolveResult first = run(1, "job-a");
  EXPECT_EQ(manager.cache_size(), 1u);

  // A hit returns the bit-identical remembered result.
  const auto hit = manager.cached_result("job-a");
  ASSERT_TRUE(hit.has_value());
  expect_deterministic_fields_eq(*hit, first);
  EXPECT_EQ(manager.cache_hits(), 1u);
  EXPECT_FALSE(manager.cached_result("job-b").has_value());
  EXPECT_EQ(manager.cache_misses(), 1u);

  // Fill past the bound: "job-a" was just touched, so "job-b" (older) is
  // the LRU victim when "job-d" lands.
  run(2, "job-b");
  run(1, "job-a");  // deterministic repeat; refreshes recency, no new entry
  EXPECT_EQ(manager.cache_size(), 2u);
  run(3, "job-d");
  EXPECT_EQ(manager.cache_size(), 2u);
  EXPECT_TRUE(manager.cached_result("job-a").has_value());
  EXPECT_TRUE(manager.cached_result("job-d").has_value());
  EXPECT_FALSE(manager.cached_result("job-b").has_value());

  // Sessions without a key never populate the cache.
  run(4, "");
  EXPECT_EQ(manager.cache_size(), 2u);
  manager.drain();
}

TEST(DaemonCache, RepeatSubmissionIsServedBitIdenticallyWithoutASession) {
  DaemonConfig config;
  config.unix_path = fresh_socket_path();
  config.cache_entries = 8;
  Daemon daemon(config);
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.connect_unix(config.unix_path, &error)) << error;
  ASSERT_TRUE(client.hello(&error).has_value()) << error;

  JobRequest job;
  job.circuit = "highway";
  job.spec.engine = "tabu";
  job.spec.seed = 77;
  job.spec.tabu.iterations = 80;

  // First submission solves for real (a cache miss).
  bool cached = false;
  const auto first_session =
      client.submit(job, /*stream=*/false, 0, &error, nullptr, 0, &cached);
  ASSERT_TRUE(first_session.has_value()) << error;
  EXPECT_FALSE(cached);
  const auto first = client.wait(*first_session, nullptr, &error);
  ASSERT_TRUE(first.has_value()) << error;
  EXPECT_EQ(daemon.cache_misses(), 1u);
  EXPECT_EQ(daemon.cache_size(), 1u);

  // The repeat is answered from the cache: no new session, bit-identical
  // result, even with a different deadline (canonicalized out of the key).
  const std::uint64_t sessions_before = daemon.sessions_started();
  JobRequest repeat = job;
  repeat.deadline_seconds = 120.0;
  const auto second_session =
      client.submit(repeat, /*stream=*/false, 0, &error, nullptr, 0, &cached);
  ASSERT_TRUE(second_session.has_value()) << error;
  EXPECT_TRUE(cached);
  EXPECT_EQ(*second_session, 0u);
  const auto second = client.wait(*second_session, nullptr, &error);
  ASSERT_TRUE(second.has_value()) << error;
  expect_deterministic_fields_eq(*second, *first);
  EXPECT_EQ(second->makespan, first->makespan);  // replay, not re-run
  EXPECT_EQ(daemon.sessions_started(), sessions_before);
  EXPECT_EQ(daemon.cache_hits(), 1u);

  // A different seed is a different key: miss, new session.
  JobRequest other = job;
  other.spec.seed = 78;
  const auto third_session =
      client.submit(other, /*stream=*/false, 0, &error, nullptr, 0, &cached);
  ASSERT_TRUE(third_session.has_value()) << error;
  EXPECT_FALSE(cached);
  ASSERT_TRUE(client.wait(*third_session, nullptr, &error).has_value()) << error;
  EXPECT_EQ(daemon.cache_misses(), 2u);
  EXPECT_EQ(daemon.cache_size(), 2u);

  client.close();
  daemon.stop();
  EXPECT_EQ(daemon.active_sessions(), 0u);
}

}  // namespace
}  // namespace pts::service
