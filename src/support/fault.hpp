// Deterministic fault injection for the serving and parallel layers.
//
// A FaultPlan is a seeded decision stream: every hook point (socket read,
// socket write, connect, pvm message delivery) draws the next decision from
// the plan's private RNG, so the *sequence* of injected faults is a pure
// function of (seed, config). With one thread driving the hooks the whole
// fault schedule replays exactly; under concurrency the per-call decisions
// are still drawn from one deterministic sequence, but which thread receives
// which decision follows the OS schedule — the robustness guarantees under
// test (no leaks, retried results bit-identical) must hold for *every*
// interleaving, so that is the right contract.
//
// Three fault families:
//  - Socket syscalls (fault::read / fault::send / fault::connect_fd): short
//    reads/writes capped at `short_cap` bytes, and injected errno failures
//    (ECONNRESET / EPIPE / EAGAIN) without touching the socket. Wrappers are
//    zero-cost passthroughs when no plan is installed (one relaxed atomic
//    load). Production code in service/ calls the wrappers unconditionally.
//  - pvm messages (Mailbox::set_fault_plan): deliveries may be dropped or
//    delayed — a delayed message is held back and released after the next
//    passed delivery, modeling reordering; messages still held at close are
//    lost.
//  - Worker stall/death scripts (WorkerFaultScript, embedded in
//    parallel::PtsConfig::faults): kills or slows a TSW at a scripted global
//    iteration. This family is not random — it replays exactly, which is
//    what makes the sim engine's recovery path deterministic and testable.
//    An empty script leaves the engine on its historical code path, so
//    fault-free trajectories stay bit-identical to the goldens.
//
// Install a plan process-globally with install() (tests use
// ScopedFaultInjection); only one plan can be active at a time.
#pragma once

#include <sys/socket.h>
#include <sys/types.h>

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "support/rng.hpp"

namespace pts::fault {

// -- socket fault configuration ---------------------------------------------

struct SocketFaultConfig {
  /// Probability that a read/write call fails outright with an injected
  /// errno (drawn uniformly from the matching error list below).
  double read_error_rate = 0.0;
  double write_error_rate = 0.0;
  /// Probability that a connect() call fails with `connect_error`.
  double connect_error_rate = 0.0;
  /// Probability that a read/write is truncated to at most `short_cap`
  /// bytes (the exact cap is drawn in [1, short_cap] per call).
  double short_read_rate = 0.0;
  double short_write_rate = 0.0;
  std::size_t short_cap = 3;
  /// pvm mailbox delivery faults (see Mailbox::set_fault_plan).
  double message_drop_rate = 0.0;
  double message_delay_rate = 0.0;

  std::vector<int> read_errors = {ECONNRESET, EAGAIN};
  std::vector<int> write_errors = {EPIPE, ECONNRESET, EAGAIN};
  int connect_error = ECONNREFUSED;
};

// -- scripted worker faults (sim engine) ------------------------------------

struct WorkerFault {
  enum class Kind {
    Death,  ///< the worker stops executing from `at_iteration` on
    Stall,  ///< the worker's machines run `stall_factor`x slower for a while
  };
  Kind kind = Kind::Death;
  std::size_t worker = 0;        ///< TSW index
  std::size_t at_iteration = 0;  ///< 0-based global iteration where it fires
  double stall_factor = 8.0;
  std::size_t stall_iterations = 1;
};

struct WorkerFaultScript {
  std::vector<WorkerFault> faults;
  /// Virtual seconds past the earliest report arrival after which the
  /// master declares a missing TSW dead and redistributes its share.
  double report_deadline = 2.0;

  bool enabled() const { return !faults.empty(); }
};

// -- the plan ----------------------------------------------------------------

class FaultPlan {
 public:
  struct IoDecision {
    enum class Kind { Pass, Cap, Fail };
    Kind kind = Kind::Pass;
    std::size_t cap = 0;  ///< Kind::Cap: max bytes this call may move
    int error = 0;        ///< Kind::Fail: errno to inject
  };
  enum class MessageDecision { Pass, Drop, Delay };

  struct Counters {
    std::uint64_t read_errors = 0;
    std::uint64_t write_errors = 0;
    std::uint64_t connect_errors = 0;
    std::uint64_t short_reads = 0;
    std::uint64_t short_writes = 0;
    std::uint64_t dropped_messages = 0;
    std::uint64_t delayed_messages = 0;
  };

  FaultPlan(std::uint64_t seed, SocketFaultConfig config);

  // Per-hook decisions; thread-safe, each advances the decision stream.
  IoDecision on_read();
  IoDecision on_write();
  /// True: inject a connect failure, `*error_out` holds the errno.
  bool on_connect(int* error_out);
  MessageDecision on_message();

  Counters counters() const;

 private:
  IoDecision io_decision_locked(double error_rate, double short_rate,
                                const std::vector<int>& errors,
                                std::uint64_t& error_counter,
                                std::uint64_t& short_counter);

  mutable std::mutex mutex_;
  SocketFaultConfig config_;
  Rng rng_;
  Counters counters_;
};

// -- process-global installation --------------------------------------------

/// Installs `plan` as the process-global socket fault plan (nullptr
/// uninstalls). The caller must guarantee the plan outlives every socket
/// call that might observe it — install before starting daemon/client
/// threads, uninstall after they are joined. Tests use ScopedFaultInjection.
void install(FaultPlan* plan);
FaultPlan* installed();

/// RAII install/uninstall of an owned plan for the scope of a test.
class ScopedFaultInjection {
 public:
  ScopedFaultInjection(std::uint64_t seed, SocketFaultConfig config)
      : plan_(seed, std::move(config)) {
    install(&plan_);
  }
  ~ScopedFaultInjection() { install(nullptr); }

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

  FaultPlan& plan() { return plan_; }

 private:
  FaultPlan plan_;
};

// -- syscall wrappers --------------------------------------------------------
//
// Drop-in replacements for ::read / ::send / ::connect on sockets. With no
// plan installed they forward directly; with a plan, each call first draws a
// decision: Fail sets errno and returns -1 *without touching the socket*
// (the connection is healthy but the caller must behave as if it broke),
// Cap truncates the byte count before forwarding (a short read/write the
// caller's loop must absorb).

ssize_t read(int fd, void* buffer, std::size_t size);
ssize_t send(int fd, const void* buffer, std::size_t size, int flags);
int connect_fd(int fd, const struct sockaddr* addr, socklen_t len);

}  // namespace pts::fault
