// The pts::solver facade: registry contents, spec validation, and —
// critically — cross-engine parity: for every registered engine, a Solver
// run must be bit-identical to the equivalent direct engine invocation
// with the same seed. Also pins stop-condition/cancel-token semantics and
// that observers do not perturb determinism (the facade companion to
// determinism_test).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "baselines/annealing.hpp"
#include "baselines/constructive.hpp"
#include "baselines/local_search.hpp"
#include "experiments/workloads.hpp"
#include "netlist/io.hpp"
#include "parallel/sim_engine.hpp"
#include "parallel/threaded_engine.hpp"
#include "solver/checkpoint.hpp"
#include "solver/solver.hpp"
#include "tabu/search.hpp"
#include "timing/paths.hpp"

namespace pts::solver {
namespace {

// The two paper circuits the parity suite runs on (smallest + mid-size).
constexpr const char* kCircuits[] = {"highway", "c532"};

void expect_series_identical(const Series& a, const Series& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.x[i], b.x[i]) << "series x diverges at index " << i;
    EXPECT_EQ(a.y[i], b.y[i]) << "series y diverges at index " << i;
  }
}

/// For best_vs_time on wall-clock engines: the y values (best costs) are
/// covered by the determinism guarantee, the x values are wall-clock
/// measurements and legitimately differ between runs.
void expect_series_same_y(const Series& a, const Series& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.y[i], b.y[i]) << "series y diverges at index " << i;
  }
}

/// Replicates the Solver's documented sequential-engine setup recipe so the
/// parity tests can invoke the engines directly.
struct DirectSetup {
  std::unique_ptr<placement::Layout> layout;
  std::unique_ptr<cost::Evaluator> eval;
};

DirectSetup direct_setup(const netlist::Netlist& nl,
                         const cost::CostParams& cost, std::uint64_t seed) {
  DirectSetup setup;
  setup.layout = std::make_unique<placement::Layout>(nl);
  Rng init_rng(seed ^ kInitStreamSalt);
  auto initial = baselines::random_placement(nl, *setup.layout, init_rng);
  auto paths =
      timing::extract_critical_paths(nl, cost.num_paths, cost.delay_model);
  const auto goals = cost::Evaluator::calibrate_goals(initial, *paths, cost);
  setup.eval = std::make_unique<cost::Evaluator>(std::move(initial),
                                                 std::move(paths), cost, goals);
  return setup;
}

/// The Solver's documented parallel-config mapping: shared seed/cost/tabu
/// blocks override the nested copies.
parallel::PtsConfig direct_parallel_config(const SolveSpec& spec) {
  parallel::PtsConfig config = spec.parallel;
  config.seed = spec.seed;
  config.cost = spec.cost;
  config.tabu = spec.tabu;
  return config;
}

SolveSpec small_parallel_spec(const netlist::Netlist& nl,
                              std::uint64_t seed = 11) {
  SolveSpec spec;
  spec.engine = "parallel-sim";
  spec.netlist = &nl;
  spec.seed = seed;
  spec.parallel.num_tsws = 3;
  spec.parallel.clws_per_tsw = 2;
  spec.parallel.local_iterations = 4;
  spec.parallel.global_iterations = 3;
  spec.tabu.compound.width = 6;
  spec.tabu.compound.depth = 2;
  return spec;
}

// -- registry ---------------------------------------------------------------

TEST(SolverRegistry, AllSevenBuiltinsRegistered) {
  const auto names = engine_names();
  for (const char* expected : {"tabu", "anneal", "local", "constructive",
                               "parallel-sim", "parallel-threaded",
                               "parallel-shared"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
    const Engine* engine = find_engine(expected);
    ASSERT_NE(engine, nullptr) << expected;
    EXPECT_EQ(engine->name(), expected);
    EXPECT_FALSE(engine->description().empty());
  }
  EXPECT_EQ(find_engine("no-such-engine"), nullptr);
}

TEST(SolverRegistry, EngineNamesAreStableSortedOrder) {
  // Clients (the ptsd capability handshake among them) rely on
  // engine_names() being deterministic: lexicographically sorted, no
  // duplicates, identical across calls.
  const auto names = engine_names();
  ASSERT_GE(names.size(), 7u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
  EXPECT_EQ(engine_names(), names);

  // The seven builtins appear in their sorted positions.
  const std::vector<std::string> builtins = {
      "anneal",       "constructive",      "local",          "parallel-shared",
      "parallel-sim", "parallel-threaded", "tabu"};
  std::vector<std::string> present;
  for (const auto& name : names) {
    if (std::find(builtins.begin(), builtins.end(), name) != builtins.end()) {
      present.push_back(name);
    }
  }
  EXPECT_EQ(present, builtins);
}

namespace {
class ToyEngine final : public Engine {
 public:
  std::string_view name() const override { return "toy"; }
  std::string_view description() const override { return "fixed result"; }
  SolveResult solve(const SolveSpec& spec) const override {
    (void)spec;
    SolveResult out;
    out.best_cost = 0.125;
    return out;
  }
};
}  // namespace

TEST(SolverRegistry, CustomEnginesRegisterOnceAndDispatch) {
  EXPECT_TRUE(register_engine(std::make_unique<ToyEngine>()));
  // Second registration under the same name is rejected.
  EXPECT_FALSE(register_engine(std::make_unique<ToyEngine>()));

  SolveSpec spec;
  spec.engine = "toy";
  spec.netlist = &experiments::circuit("highway");
  const auto result = Solver().solve(spec);
  EXPECT_EQ(result.engine, "toy");
  EXPECT_EQ(result.best_cost, 0.125);
}

// -- validation -------------------------------------------------------------

TEST(SolverValidate, AcceptsBaseSpecs) {
  const auto& nl = experiments::circuit("highway");
  for (const auto& name : Solver::engines()) {
    if (name == "toy") continue;  // registered by the test above, no params
    const auto spec = experiments::base_spec(nl, name, 1, true);
    EXPECT_TRUE(Solver().validate(spec).empty()) << name;
  }
}

TEST(SolverValidate, RejectsNonsense) {
  const auto& nl = experiments::circuit("highway");
  const Solver solver;

  SolveSpec spec;  // null netlist
  EXPECT_FALSE(solver.validate(spec).empty());

  spec.netlist = &nl;
  spec.engine = "no-such-engine";
  EXPECT_FALSE(solver.validate(spec).empty());

  spec.engine = "anneal";
  spec.anneal.cooling = 1.5;
  ASSERT_EQ(solver.validate(spec).size(), 1u);
  EXPECT_NE(solver.validate(spec)[0].find("cooling"), std::string::npos);
  spec.anneal.cooling = 0.9;

  spec.engine = "tabu";
  spec.tabu.compound.width = 0;
  EXPECT_FALSE(solver.validate(spec).empty());
  spec.tabu.compound.width = 8;

  spec.engine = "local";
  spec.local.candidates_per_iteration = 0;
  EXPECT_FALSE(solver.validate(spec).empty());
  spec.local.candidates_per_iteration = 8;

  spec.engine = "parallel-sim";
  spec.parallel.num_tsws = 0;
  EXPECT_FALSE(solver.validate(spec).empty());
  spec.parallel.num_tsws = 2;
  spec.parallel.master_policy.threshold = 0.0;
  EXPECT_FALSE(solver.validate(spec).empty());
  spec.parallel.master_policy.threshold = 0.5;
  EXPECT_TRUE(solver.validate(spec).empty());

  spec.stop.target_quality = 1.5;
  EXPECT_FALSE(solver.validate(spec).empty());
}

TEST(SolverValidateDeath, SolveRefusesInvalidSpec) {
  SolveSpec spec;
  spec.engine = "no-such-engine";
  EXPECT_DEATH(Solver().solve(spec), "invalid SolveSpec");
}

// -- cross-engine parity: Solver == direct invocation, bit for bit ---------

TEST(SolverParity, TabuMatchesDirectInvocation) {
  for (const char* name : kCircuits) {
    const auto& nl = experiments::circuit(name);
    SolveSpec spec;
    spec.engine = "tabu";
    spec.netlist = &nl;
    spec.seed = 11;
    spec.tabu.iterations = 60;
    const auto via = Solver().solve(spec);

    auto setup = direct_setup(nl, spec.cost, spec.seed);
    tabu::TabuSearch search(*setup.eval, spec.tabu,
                            Rng(spec.seed ^ kSearchStreamSalt));
    const auto direct = search.run();

    EXPECT_EQ(via.best_cost, direct.best_cost) << name;
    EXPECT_EQ(via.best_quality, direct.best_quality) << name;
    EXPECT_EQ(via.best_slots, direct.best_slots) << name;
    EXPECT_EQ(via.iterations, direct.stats.iterations) << name;
    expect_series_identical(via.cost_trace, direct.cost_trace);
    expect_series_identical(via.best_trace, direct.best_trace);
    expect_series_same_y(via.best_vs_time, direct.best_vs_time);
  }
}

TEST(SolverParity, AnnealMatchesDirectInvocation) {
  for (const char* name : kCircuits) {
    const auto& nl = experiments::circuit(name);
    SolveSpec spec;
    spec.engine = "anneal";
    spec.netlist = &nl;
    spec.seed = 13;
    spec.anneal.cooling = 0.7;
    spec.anneal.final_temp_ratio = 0.05;
    spec.anneal.moves_per_temp = 200;
    const auto via = Solver().solve(spec);

    auto setup = direct_setup(nl, spec.cost, spec.seed);
    Rng rng(spec.seed ^ kSearchStreamSalt);
    const auto direct = baselines::anneal(*setup.eval, spec.anneal, rng);

    EXPECT_EQ(via.best_cost, direct.best_cost) << name;
    EXPECT_EQ(via.best_slots, direct.best_slots) << name;
    EXPECT_EQ(via.iterations, direct.moves_tried) << name;
    EXPECT_EQ(via.stats.accepted, direct.moves_accepted) << name;
    expect_series_identical(via.best_trace, direct.best_trace);
  }
}

TEST(SolverParity, LocalSearchMatchesDirectInvocation) {
  for (const char* name : kCircuits) {
    const auto& nl = experiments::circuit(name);
    SolveSpec spec;
    spec.engine = "local";
    spec.netlist = &nl;
    spec.seed = 17;
    spec.local.max_iterations = 120;
    const auto via = Solver().solve(spec);

    auto setup = direct_setup(nl, spec.cost, spec.seed);
    Rng rng(spec.seed ^ kSearchStreamSalt);
    const auto direct = baselines::local_search(*setup.eval, spec.local, rng);

    EXPECT_EQ(via.best_cost, direct.best_cost) << name;
    EXPECT_EQ(via.best_slots, direct.best_slots) << name;
    EXPECT_EQ(via.iterations, direct.iterations) << name;
    EXPECT_EQ(via.converged, direct.converged) << name;
    expect_series_identical(via.best_trace, direct.best_trace);
  }
}

TEST(SolverParity, ConstructiveMatchesDirectInvocation) {
  for (const char* name : kCircuits) {
    const auto& nl = experiments::circuit(name);
    SolveSpec spec;
    spec.engine = "constructive";
    spec.netlist = &nl;
    spec.seed = 19;
    const auto via = Solver().solve(spec);

    auto setup = direct_setup(nl, spec.cost, spec.seed);
    EXPECT_EQ(via.initial_cost, setup.eval->cost()) << name;
    Rng rng(spec.seed ^ kSearchStreamSalt);
    const auto greedy =
        baselines::greedy_placement(nl, *setup.layout, rng);
    setup.eval->reset_placement(greedy.slots());
    EXPECT_EQ(via.best_slots, greedy.slots()) << name;
    EXPECT_EQ(via.best_cost, setup.eval->cost()) << name;
  }
}

TEST(SolverParity, ParallelSimMatchesDirectInvocation) {
  for (const char* name : kCircuits) {
    const auto& nl = experiments::circuit(name);
    const auto spec = small_parallel_spec(nl);
    const auto via = Solver().solve(spec);

    const auto direct =
        parallel::SimEngine(nl, direct_parallel_config(spec)).run();

    EXPECT_EQ(via.initial_cost, direct.initial_cost) << name;
    EXPECT_EQ(via.best_cost, direct.best_cost) << name;
    EXPECT_EQ(via.best_quality, direct.best_quality) << name;
    EXPECT_EQ(via.best_slots, direct.best_slots) << name;
    EXPECT_EQ(via.makespan, direct.makespan) << name;
    expect_series_identical(via.best_vs_time, direct.best_vs_time);
    expect_series_identical(via.best_vs_global, direct.best_vs_global);
    EXPECT_EQ(via.stats.iterations, direct.stats.iterations) << name;
  }
}

TEST(SolverParity, ParallelThreadedMatchesDirectInvocation) {
  // WaitAll at both levels makes the threaded outcome (not its wall
  // timings) deterministic, so the comparison can be exact.
  for (const char* name : kCircuits) {
    const auto& nl = experiments::circuit(name);
    auto spec = small_parallel_spec(nl, 23);
    spec.engine = "parallel-threaded";
    spec.parallel.set_policy(parallel::CollectionPolicy::WaitAll);
    const auto via = Solver().solve(spec);

    const auto direct =
        parallel::ThreadedEngine(nl, direct_parallel_config(spec)).run();

    EXPECT_EQ(via.initial_cost, direct.initial_cost) << name;
    EXPECT_EQ(via.best_cost, direct.best_cost) << name;
    EXPECT_EQ(via.best_slots, direct.best_slots) << name;
    EXPECT_EQ(via.stats.iterations, direct.stats.iterations) << name;
  }
}

// -- stop conditions --------------------------------------------------------

TEST(SolverStop, IterationBudgetTruncatesBitIdentically) {
  const auto& nl = experiments::circuit("highway");
  SolveSpec spec;
  spec.engine = "tabu";
  spec.netlist = &nl;
  spec.seed = 29;
  spec.tabu.iterations = 80;
  const auto full = Solver().solve(spec);
  ASSERT_EQ(full.stop_reason, StopReason::Completed);

  spec.stop.max_iterations = 30;
  const auto capped = Solver().solve(spec);
  EXPECT_EQ(capped.stop_reason, StopReason::IterationBudget);
  EXPECT_EQ(capped.iterations, 30u);
  ASSERT_EQ(capped.best_trace.size(), 30u);
  for (std::size_t i = 0; i < 30; ++i) {
    // A capped run is exactly the prefix of the uncapped one.
    EXPECT_EQ(capped.best_trace.y[i], full.best_trace.y[i]);
    EXPECT_EQ(capped.cost_trace.y[i], full.cost_trace.y[i]);
  }
}

TEST(SolverStop, TargetCostStopsEarly) {
  const auto& nl = experiments::circuit("highway");
  SolveSpec spec;
  spec.engine = "tabu";
  spec.netlist = &nl;
  spec.seed = 31;
  spec.tabu.iterations = 120;
  const auto full = Solver().solve(spec);
  const double target = (full.initial_cost + full.best_cost) / 2.0;
  ASSERT_LT(full.best_cost, target);

  spec.stop.target_cost = target;
  const auto stopped = Solver().solve(spec);
  EXPECT_EQ(stopped.stop_reason, StopReason::TargetCost);
  EXPECT_LE(stopped.best_cost, target);
  EXPECT_LT(stopped.iterations, full.iterations);
}

TEST(SolverStop, TargetQualityStopsEarly) {
  const auto& nl = experiments::circuit("highway");
  SolveSpec spec;
  spec.engine = "local";
  spec.netlist = &nl;
  spec.seed = 37;
  const auto full = Solver().solve(spec);
  ASSERT_GT(full.best_quality, 0.3);

  spec.stop.target_quality = 0.3;
  const auto stopped = Solver().solve(spec);
  EXPECT_EQ(stopped.stop_reason, StopReason::TargetQuality);
  EXPECT_GE(stopped.best_quality, 0.3);
  EXPECT_LE(stopped.iterations, full.iterations);
}

TEST(SolverStop, VirtualTimeLimitIsDeterministic) {
  const auto& nl = experiments::circuit("highway");
  auto spec = small_parallel_spec(nl, 41);
  // Far below one global iteration's virtual cost: exactly one runs.
  spec.stop.max_seconds = 1e-6;
  const auto a = Solver().solve(spec);
  const auto b = Solver().solve(spec);
  EXPECT_EQ(a.stop_reason, StopReason::TimeLimit);
  EXPECT_EQ(a.best_vs_global.size(), 1u);
  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST(SolverStop, BudgetEqualToEngineOwnBudgetReportsCompleted) {
  // An external budget identical to the engine's own is a no-op and must
  // not change the stop reason — for the check-before sequential engines
  // and the check-after parallel engines alike.
  const auto& nl = experiments::circuit("highway");
  SolveSpec tabu_spec;
  tabu_spec.engine = "tabu";
  tabu_spec.netlist = &nl;
  tabu_spec.tabu.iterations = 40;
  tabu_spec.stop.max_iterations = 40;
  EXPECT_EQ(Solver().solve(tabu_spec).stop_reason, StopReason::Completed);

  auto sim_spec = small_parallel_spec(nl);
  sim_spec.stop.max_iterations = sim_spec.parallel.global_iterations;
  const auto sim = Solver().solve(sim_spec);
  EXPECT_EQ(sim.stop_reason, StopReason::Completed);
  EXPECT_EQ(sim.best_vs_global.size(), sim_spec.parallel.global_iterations);
}

TEST(SolverStop, AnnealMoveBudget) {
  const auto& nl = experiments::circuit("highway");
  SolveSpec spec;
  spec.engine = "anneal";
  spec.netlist = &nl;
  spec.seed = 43;
  spec.stop.max_iterations = 500;
  const auto result = Solver().solve(spec);
  EXPECT_EQ(result.stop_reason, StopReason::IterationBudget);
  EXPECT_EQ(result.iterations, 500u);
}

TEST(SolverStop, PreCancelledTokenStopsImmediately) {
  const auto& nl = experiments::circuit("highway");
  CancelToken token;
  token.cancel();
  for (const char* engine :
       {"tabu", "anneal", "local", "parallel-sim", "parallel-shared"}) {
    SolveSpec spec;
    spec.engine = engine;
    spec.netlist = &nl;
    spec.stop.cancel = &token;
    const auto result = Solver().solve(spec);
    EXPECT_EQ(result.stop_reason, StopReason::Cancelled) << engine;
    EXPECT_EQ(result.iterations, 0u) << engine;
    EXPECT_EQ(result.best_cost, result.initial_cost) << engine;
  }
}

namespace {
/// Cancels the run from inside the observer after N iteration callbacks —
/// the cooperative-cancellation path a UI or service would use.
class CancelAfter : public Observer {
 public:
  CancelAfter(CancelToken& token, std::size_t after)
      : token_(&token), after_(after) {}
  void on_iteration(const Progress& progress) override {
    if (progress.iteration >= after_) token_->cancel();
  }

 private:
  CancelToken* token_;
  std::size_t after_;
};
}  // namespace

TEST(SolverStop, CancelFromObserverStopsAtNextCheck) {
  const auto& nl = experiments::circuit("highway");
  CancelToken token;
  CancelAfter observer(token, 10);
  SolveSpec spec;
  spec.engine = "tabu";
  spec.netlist = &nl;
  spec.seed = 47;
  spec.tabu.iterations = 200;
  spec.stop.cancel = &token;
  spec.observer = &observer;
  const auto result = Solver().solve(spec);
  EXPECT_EQ(result.stop_reason, StopReason::Cancelled);
  EXPECT_EQ(result.iterations, 10u);
}

// -- observers --------------------------------------------------------------

namespace {
class CountingObserver : public Observer {
 public:
  void on_improvement(const Progress& progress) override {
    improvements.push_back(progress.best_cost);
  }
  void on_iteration(const Progress& progress) override {
    iterations = progress.iteration;
    ++iteration_calls;
  }

  std::vector<double> improvements;
  std::size_t iterations = 0;
  std::size_t iteration_calls = 0;
};
}  // namespace

TEST(SolverObserver, DoesNotPerturbDeterminism) {
  // The facade companion to determinism_test: attaching an observer (and
  // engaged-but-never-firing stop conditions) must leave every output bit
  // identical, for the sequential and the virtual-time engine alike.
  const auto& nl = experiments::circuit("c532");
  for (const char* engine : {"tabu", "parallel-sim"}) {
    SolveSpec plain;
    plain.engine = engine;
    plain.netlist = &nl;
    plain.seed = 53;
    plain.tabu.iterations = 40;
    plain.parallel.global_iterations = 2;
    plain.parallel.local_iterations = 3;
    plain.parallel.num_tsws = 2;
    plain.parallel.clws_per_tsw = 2;

    SolveSpec observed = plain;
    CountingObserver observer;
    observed.observer = &observer;
    observed.stop.max_iterations = 1000000;  // engaged, never fires
    observed.stop.max_seconds = 1e9;
    observed.stop.target_cost = -1e9;  // unreachable: cost is bounded below

    const auto a = Solver().solve(plain);
    const auto b = Solver().solve(observed);
    EXPECT_EQ(a.best_cost, b.best_cost) << engine;
    EXPECT_EQ(a.best_slots, b.best_slots) << engine;
    EXPECT_EQ(a.iterations, b.iterations) << engine;
    EXPECT_EQ(b.stop_reason, StopReason::Completed) << engine;
    expect_series_identical(a.cost_trace, b.cost_trace);
    expect_series_identical(a.best_trace, b.best_trace);
    // "tabu" stamps best_vs_time with the wall clock, so only its y values
    // fall under the bit-identity guarantee; the sim engine's virtual
    // timestamps are fully deterministic.
    if (std::string_view(engine) == "parallel-sim") {
      expect_series_identical(a.best_vs_time, b.best_vs_time);
    } else {
      expect_series_same_y(a.best_vs_time, b.best_vs_time);
    }
    expect_series_identical(a.best_vs_global, b.best_vs_global);
    EXPECT_GT(observer.iteration_calls, 0u) << engine;
  }
}

TEST(SolverObserver, SeesMonotoneImprovementsEndingAtBest) {
  const auto& nl = experiments::circuit("highway");
  SolveSpec spec;
  spec.engine = "tabu";
  spec.netlist = &nl;
  spec.seed = 59;
  spec.tabu.iterations = 80;
  CountingObserver observer;
  spec.observer = &observer;
  const auto result = Solver().solve(spec);

  EXPECT_EQ(observer.iterations, result.iterations);
  EXPECT_EQ(observer.iteration_calls, result.iterations);
  ASSERT_FALSE(observer.improvements.empty());
  for (std::size_t i = 1; i < observer.improvements.size(); ++i) {
    EXPECT_LT(observer.improvements[i], observer.improvements[i - 1]);
  }
  EXPECT_EQ(observer.improvements.back(), result.best_cost);
}

// -- warm start (ECO mode) ---------------------------------------------------

TEST(SolverWarmStart, SeededPlacementIsDeterministicAndStartsFromSeed) {
  const auto& nl = experiments::circuit("highway");
  SolveSpec cold;
  cold.engine = "tabu";
  cold.netlist = &nl;
  cold.seed = 21;
  cold.tabu.iterations = 80;
  const auto cold_result = Solver().solve(cold);

  // Seed a fresh run from the cold run's best placement.
  SolveSpec warm = cold;
  warm.initial_slots = cold_result.best_slots;
  const auto a = Solver().solve(warm);
  const auto b = Solver().solve(warm);

  // Deterministic: two warm runs are bit-identical.
  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.best_slots, b.best_slots);
  EXPECT_EQ(a.initial_cost, b.initial_cost);
  expect_series_identical(a.cost_trace, b.cost_trace);

  // The warm run actually starts from the seed: its initial cost is the
  // cold run's best (calibration is shared, so costs are comparable), and
  // it can only stay there or improve. Near, not bit-equal: the cold best
  // is tracked incrementally during search while the warm initial cost is
  // evaluated from scratch, so they differ by accumulated rounding.
  EXPECT_NEAR(a.initial_cost, cold_result.best_cost,
              1e-12 * std::abs(cold_result.best_cost));
  EXPECT_LE(a.best_cost, a.initial_cost);
  // And it is a different trajectory than the cold run, not a replay.
  EXPECT_NE(a.initial_cost, cold_result.initial_cost);
}

TEST(SolverWarmStart, ValidateRejectsMalformedSeeds) {
  const auto& nl = experiments::circuit("highway");
  SolveSpec spec;
  spec.engine = "tabu";
  spec.netlist = &nl;

  spec.initial_slots = {0, 1, 2};  // wrong size
  EXPECT_FALSE(Solver().validate(spec).empty());

  // Right size but a duplicated movable cell.
  SolveSpec cold = spec;
  cold.initial_slots.clear();
  cold.tabu.iterations = 4;
  auto slots = Solver().solve(cold).best_slots;
  ASSERT_GE(slots.size(), 2u);
  slots[0] = slots[1];
  spec.initial_slots = slots;
  EXPECT_FALSE(Solver().validate(spec).empty());

  // Engines without warm-start support must reject, not silently ignore.
  spec.initial_slots = Solver().solve(cold).best_slots;
  EXPECT_TRUE(Solver().validate(spec).empty());
  for (const char* engine :
       {"constructive", "parallel-sim", "parallel-threaded", "parallel-shared"}) {
    SolveSpec rejected = spec;
    rejected.engine = engine;
    rejected.parallel.num_tsws = 2;
    rejected.parallel.clws_per_tsw = 1;
    EXPECT_FALSE(Solver().validate(rejected).empty()) << engine;
  }
}

// -- checkpoint/resume -------------------------------------------------------

TEST(SolverCheckpoint, ResumeEqualsUninterruptedRun) {
  const auto& nl = experiments::circuit("highway");
  SolveSpec spec;
  spec.engine = "tabu";
  spec.netlist = &nl;
  spec.seed = 33;
  spec.tabu.iterations = 120;

  // The uninterrupted reference.
  const auto full = solve_with_checkpoint(spec);

  // Interrupt at iteration 50 via the stop conditions, round-trip the
  // checkpoint through its JSON serialization, resume to the end.
  SolveSpec interrupted = spec;
  interrupted.stop.max_iterations = 50;
  const auto half = solve_with_checkpoint(interrupted);
  EXPECT_EQ(half.result.stats.iterations, 50u);

  const std::string encoded = encode_checkpoint(half.checkpoint);
  Checkpoint restored;
  ASSERT_EQ(decode_checkpoint(encoded, &restored), "");
  ASSERT_EQ(check_resume_compatible(spec, restored), "");
  const auto resumed = resume_from_checkpoint(spec, restored);

  // Every deterministic field of the whole-run result is bit-identical.
  const SolveResult& a = full.result;
  const SolveResult& b = resumed.result;
  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.best_quality, b.best_quality);
  EXPECT_EQ(a.best_slots, b.best_slots);
  EXPECT_EQ(a.initial_cost, b.initial_cost);
  EXPECT_EQ(a.stats.iterations, b.stats.iterations);
  EXPECT_EQ(a.stats.accepted, b.stats.accepted);
  EXPECT_EQ(a.stats.rejected_tabu, b.stats.rejected_tabu);
  EXPECT_EQ(a.stats.aspirated, b.stats.aspirated);
  EXPECT_EQ(a.stats.trials, b.stats.trials);
  EXPECT_EQ(a.stop_reason, b.stop_reason);
  expect_series_identical(a.cost_trace, b.cost_trace);
  expect_series_identical(a.best_trace, b.best_trace);
  // best_vs_time: x values are wall-clock; the costs must match exactly.
  expect_series_same_y(a.best_vs_time, b.best_vs_time);

  // And the final checkpoints agree on the engine state.
  EXPECT_EQ(full.checkpoint.eval.slots, resumed.checkpoint.eval.slots);
  EXPECT_EQ(full.checkpoint.eval.hpwl_total, resumed.checkpoint.eval.hpwl_total);
  EXPECT_EQ(full.checkpoint.search.stats.iterations,
            resumed.checkpoint.search.stats.iterations);
}

TEST(SolverCheckpoint, CheckpointJsonRoundTripsAndRejectsGarbage) {
  const auto& nl = experiments::circuit("highway");
  SolveSpec spec;
  spec.engine = "tabu";
  spec.netlist = &nl;
  spec.seed = 5;
  spec.tabu.iterations = 30;
  const auto solve = solve_with_checkpoint(spec);

  const std::string encoded = encode_checkpoint(solve.checkpoint);
  Checkpoint decoded;
  ASSERT_EQ(decode_checkpoint(encoded, &decoded), "");
  EXPECT_EQ(encode_checkpoint(decoded), encoded);  // bit-exact round-trip
  EXPECT_EQ(decoded.seed, spec.seed);
  EXPECT_EQ(decoded.circuit_hash, netlist::content_hash(nl));

  // Malformed input is an error string, never an abort.
  Checkpoint sink;
  EXPECT_NE(decode_checkpoint("", &sink), "");
  EXPECT_NE(decode_checkpoint("not json", &sink), "");
  EXPECT_NE(decode_checkpoint("{}", &sink), "");
  EXPECT_NE(decode_checkpoint("{\"version\":2}", &sink), "");
  std::string truncated = encoded.substr(0, encoded.size() / 2);
  EXPECT_NE(decode_checkpoint(truncated, &sink), "");

  // Incompatibility is reported, not asserted: wrong seed, wrong circuit.
  SolveSpec other = spec;
  other.seed = 6;
  EXPECT_NE(check_resume_compatible(other, solve.checkpoint), "");
  SolveSpec other_circuit = spec;
  other_circuit.netlist = &experiments::circuit("c532");
  EXPECT_NE(check_resume_compatible(other_circuit, solve.checkpoint), "");
}

TEST(SolverCheckpoint, ColdSolveWithCheckpointMatchesSolver) {
  const auto& nl = experiments::circuit("highway");
  SolveSpec spec;
  spec.engine = "tabu";
  spec.netlist = &nl;
  spec.seed = 71;
  spec.tabu.iterations = 60;

  const auto via_solver = Solver().solve(spec);
  const auto via_checkpoint = solve_with_checkpoint(spec);
  EXPECT_EQ(via_solver.best_cost, via_checkpoint.result.best_cost);
  EXPECT_EQ(via_solver.best_slots, via_checkpoint.result.best_slots);
  EXPECT_EQ(via_solver.initial_cost, via_checkpoint.result.initial_cost);
  expect_series_identical(via_solver.cost_trace, via_checkpoint.result.cost_trace);
  expect_series_identical(via_solver.best_trace, via_checkpoint.result.best_trace);
}

}  // namespace
}  // namespace pts::solver
