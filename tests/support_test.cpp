// Unit tests for src/support: RNG, statistics, series, tables, CLI.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <set>

#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace pts {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 500; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NormalMeanAndSpread) {
  Rng rng(9);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, DistinctPairNeverEqual) {
  Rng rng(13);
  for (int i = 0; i < 2000; ++i) {
    const auto [a, b] = rng.distinct_pair(5);
    EXPECT_NE(a, b);
    EXPECT_LT(a, 5u);
    EXPECT_LT(b, 5u);
  }
}

TEST(Rng, DistinctPairIsUniformOverPairs) {
  Rng rng(17);
  std::map<std::pair<std::size_t, std::size_t>, int> counts;
  const int draws = 30000;
  for (int i = 0; i < draws; ++i) counts[rng.distinct_pair(4)]++;
  EXPECT_EQ(counts.size(), 12u);  // 4*3 ordered pairs
  for (const auto& [pair, count] : counts) {
    (void)pair;
    EXPECT_NEAR(count, draws / 12.0, draws / 12.0 * 0.2);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(v, shuffled);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(23);
  Rng child_a = parent.fork(1);
  Rng child_b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += child_a.next() == child_b.next();
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsDeterministic) {
  Rng p1(31), p2(31);
  Rng c1 = p1.fork(5), c2 = p2.fork(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c1.next(), c2.next());
}

TEST(RunningStats, MatchesNaiveComputation) {
  Rng rng(1);
  std::vector<double> samples;
  RunningStats stats;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-5.0, 20.0);
    samples.push_back(x);
    stats.add(x);
  }
  const double mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
                      static_cast<double>(samples.size());
  double var = 0.0;
  for (double x : samples) var += (x - mean) * (x - mean);
  var /= static_cast<double>(samples.size() - 1);
  EXPECT_NEAR(stats.mean(), mean, 1e-9);
  EXPECT_NEAR(stats.variance(), var, 1e-9);
  EXPECT_EQ(stats.min(), *std::min_element(samples.begin(), samples.end()));
  EXPECT_EQ(stats.max(), *std::max_element(samples.begin(), samples.end()));
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(2);
  RunningStats all, left, right;
  for (int i = 0; i < 400; ++i) {
    const double x = rng.normal();
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_NEAR(b.mean(), 2.0, 1e-12);
}

TEST(Quantile, KnownValues) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_NEAR(quantile(v, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(quantile(v, 0.5), 3.0, 1e-12);
  EXPECT_NEAR(quantile(v, 1.0), 5.0, 1e-12);
  EXPECT_NEAR(quantile(v, 0.25), 2.0, 1e-12);
}

TEST(Series, FirstXReaching) {
  Series s;
  s.add(0.0, 10.0);
  s.add(1.0, 8.0);
  s.add(2.0, 5.0);
  s.add(3.0, 5.0);
  EXPECT_EQ(s.first_x_reaching(9.0), 1.0);
  EXPECT_EQ(s.first_x_reaching(5.0), 2.0);
  EXPECT_EQ(s.first_x_reaching(4.0), -1.0);
  EXPECT_EQ(s.first_x_reaching(100.0), 0.0);
}

TEST(Series, DownsampleKeepsEndpoints) {
  Series s;
  for (int i = 0; i <= 100; ++i) s.add(i, 100 - i);
  const Series d = s.downsample(11);
  EXPECT_EQ(d.size(), 11u);
  EXPECT_EQ(d.x.front(), 0.0);
  EXPECT_EQ(d.x.back(), 100.0);
  EXPECT_EQ(d.y.front(), 100.0);
  EXPECT_EQ(d.y.back(), 0.0);
}

TEST(Series, LastAndMin) {
  Series s;
  s.add(0, 3);
  s.add(1, 1);
  s.add(2, 2);
  EXPECT_EQ(s.last_y(), 2.0);
  EXPECT_EQ(s.min_y(), 1.0);
}

TEST(Table, AlignedOutputAndCsv) {
  Table t({"circuit", "cost"});
  t.add_row(std::vector<std::string>{"highway", "0.33"});
  t.add_row(std::vector<double>{1.5, 2.25}, 2);
  const std::string text = t.to_string();
  EXPECT_NE(text.find("circuit"), std::string::npos);
  EXPECT_NE(text.find("highway"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("csv,circuit,cost"), std::string::npos);
  EXPECT_NE(csv.find("csv,highway,0.33"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, SeriesTableAlignsOnX) {
  Series a;
  a.name = "a";
  a.add(1, 10);
  a.add(2, 20);
  Series b;
  b.name = "b";
  b.add(2, 200);
  b.add(3, 300);
  const Table t = series_table("x", {a, b}, 0);
  EXPECT_EQ(t.rows(), 3u);  // union of x = {1, 2, 3}
}

TEST(Cli, ParsesOptionsFlagsAndPositionals) {
  // Note: a bare flag followed by a non-option token would consume it as a
  // value, so `--quick` goes last (documented parser behaviour).
  const char* argv[] = {"prog",    "--circuit", "c532",  "positional",
                        "--n=8",   "--ratio",   "0.5",   "--quick"};
  Cli cli(8, argv);
  EXPECT_EQ(cli.get("circuit", ""), "c532");
  EXPECT_TRUE(cli.get_flag("quick"));
  EXPECT_FALSE(cli.get_flag("missing"));
  EXPECT_EQ(cli.get_int("n", 0), 8);
  EXPECT_DOUBLE_EQ(cli.get_double("ratio", 0.0), 0.5);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "positional");
  EXPECT_EQ(cli.get_int("absent", -3), -3);
}

TEST(Cli, FlagFalseValues) {
  const char* argv[] = {"prog", "--a=false", "--b=0", "--c=no", "--d=yes"};
  Cli cli(5, argv);
  EXPECT_FALSE(cli.get_flag("a"));
  EXPECT_FALSE(cli.get_flag("b"));
  EXPECT_FALSE(cli.get_flag("c"));
  EXPECT_TRUE(cli.get_flag("d"));
}

TEST(Cli, UnusedTracksUnqueriedOptions) {
  const char* argv[] = {"prog", "--used", "1", "--unused", "2"};
  Cli cli(5, argv);
  (void)cli.get("used", "");
  const auto unused = cli.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "unused");
}

// Only ordering invariants are asserted — they hold under arbitrary
// scheduler preemption, unlike wall-clock bounds, which flake in CI.
TEST(Stopwatch, ElapsedIsNonNegativeAndMonotonic) {
  Stopwatch sw;
  const double t1 = sw.seconds();
  EXPECT_GE(t1, 0.0);
  // millis() read between two seconds() reads must land between them.
  const double ms = sw.millis();
  const double t2 = sw.seconds();
  EXPECT_GE(t2, t1);
  EXPECT_GE(ms, t1 * 1e3);
  EXPECT_LE(ms, t2 * 1e3);
}

TEST(Stopwatch, ResetRestartsTheClock) {
  Stopwatch outer;
  Stopwatch inner;  // started after outer
  // Reads are sequenced explicitly: the earlier-started watch is read
  // second, so its elapsed time is strictly the larger of the two
  // regardless of how long anything in between takes.
  const double inner_elapsed = inner.seconds();
  const double outer_elapsed = outer.seconds();
  EXPECT_LE(inner_elapsed, outer_elapsed);
  outer.reset();  // now outer is the most recently started watch
  const double outer_after_reset = outer.seconds();
  const double inner_after_reset = inner.seconds();
  EXPECT_LE(outer_after_reset, inner_after_reset);
}

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, ThresholdFiltersLowerLevels) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::Warn);
  EXPECT_EQ(log_level(), LogLevel::Warn);

  ::testing::internal::CaptureStderr();
  log_info("tag") << "dropped info line";
  log_warn("tag") << "kept warn line";
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("dropped info line"), std::string::npos);
  EXPECT_NE(err.find("kept warn line"), std::string::npos);
}

TEST(Log, TagAndLevelAppearInOutput) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::Info);

  ::testing::internal::CaptureStderr();
  log_error("tsw3") << "engine stalled";
  log_info() << "untagged line";
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[ERROR] (tsw3) engine stalled"), std::string::npos);
  EXPECT_NE(err.find("[INFO] untagged line"), std::string::npos);
}

TEST(Log, OffSilencesEverything) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::Off);
  ::testing::internal::CaptureStderr();
  log_error("tag") << "should not appear";
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST(Check, PassingChecksAreSilent) {
  PTS_CHECK(1 + 1 == 2);
  PTS_CHECK_MSG(true, "never printed");
  PTS_DCHECK(true);
}

TEST(CheckDeath, FailedCheckAbortsWithExpression) {
  EXPECT_DEATH(PTS_CHECK(2 + 2 == 5), "2 \\+ 2 == 5");
}

TEST(CheckDeath, FailedCheckMsgIncludesTheMessage) {
  EXPECT_DEATH(PTS_CHECK_MSG(false, "tenure must be positive"),
               "tenure must be positive");
}

TEST(CheckDeath, DcheckTracksBuildMode) {
#ifdef NDEBUG
  PTS_DCHECK(false);  // compiled out in release builds
#else
  EXPECT_DEATH(PTS_DCHECK(false), "PTS_CHECK failed");
#endif
}

}  // namespace
}  // namespace pts
