// Compound move construction (the candidate-list worker's core loop).
//
// Per the paper: a compound move is built over up to `depth` levels. At each
// level, `width` candidate pairs are scored with Evaluator::probe_swap (one
// incremental pass per trial, no mutate-and-undo) and the best one is kept
// and committed. If the running cost drops below the starting cost before
// reaching max depth, the compound move is accepted immediately without
// further investigation (early accept).
//
// On return the evaluator HAS the compound move applied; undo_compound()
// reverts it (swaps are involutions, so undo re-applies them in reverse).
#pragma once

#include "cost/evaluator.hpp"
#include "support/rng.hpp"
#include "tabu/candidate.hpp"
#include "tabu/frequency.hpp"
#include "tabu/move.hpp"

namespace pts::tabu {

struct CompoundParams {
  /// m — candidate pairs trialled per level.
  std::size_t width = 8;
  /// d — maximum number of levels (swaps) in a compound move.
  std::size_t depth = 3;
  /// Early accept: stop as soon as the cost improves on the start cost.
  bool early_accept = true;
  /// Candidate batch width for Evaluator::probe_batch: each level's trials
  /// are scored in chunks of up to this many candidates. <= 1 scores one
  /// probe_swap at a time. Either path yields bit-identical costs and
  /// trajectories (probes consume no RNG, so drawing all pairs up front
  /// reads the same sample stream; the reduction is the same
  /// first-strict-min) — this knob is purely a throughput choice.
  std::size_t batch = 8;
};

/// Samples `width` trial pairs from (movable, range, rng), scores them —
/// through Evaluator::probe_batch in chunks of `batch` when batch > 1, one
/// probe_swap at a time otherwise; bit-identical either way — and returns
/// the first-strict-min winner and its cost (memory-adjusted for ranking
/// when `use_memory`). Shared by the compound and diversification trial
/// loops; uses thread_local scratch, so steady state does not allocate.
void best_of_trials(cost::Evaluator& eval,
                    std::span<const netlist::CellId> movable,
                    const CellRange& range, std::size_t width,
                    std::size_t batch, Rng& rng, const FrequencyMemory* memory,
                    bool use_memory, Move* best_out, double* best_cost_out);

/// Builds and applies a compound move on `eval`, sampling first cells from
/// `range`, writing the applied swaps and final cost into `*out` (cleared
/// first). Callers that run every iteration (TabuSearch) pass a reused
/// member buffer so the steady state does not allocate. When `memory` is
/// non-null and active, per-level trial ranking uses the long-term
/// frequency adjustment (true costs are still what the move reports).
void build_compound_move(cost::Evaluator& eval, const CellRange& range,
                         const CompoundParams& params, Rng& rng,
                         const FrequencyMemory* memory, CompoundMove* out);

/// Convenience wrapper returning a fresh CompoundMove.
CompoundMove build_compound_move(cost::Evaluator& eval, const CellRange& range,
                                 const CompoundParams& params, Rng& rng,
                                 const FrequencyMemory* memory = nullptr);

/// Reverts a compound move previously applied by build_compound_move.
void undo_compound(cost::Evaluator& eval, const CompoundMove& move);

}  // namespace pts::tabu
