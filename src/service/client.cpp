#include "service/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "support/fault.hpp"

namespace pts::service {

namespace {

bool send_all(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = fault::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Kernel buffer full (or an injected EAGAIN): wait for writability.
        pollfd pfd{};
        pfd.fd = fd;
        pfd.events = POLLOUT;
        ::poll(&pfd, 1, 100);
        continue;
      }
      return false;
    }
    data += static_cast<std::size_t>(n);
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

void set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

/// SO_RCVTIMEO: a blocking read returns EAGAIN after `io_seconds` (<= 0
/// clears the timeout again).
void arm_read_timeout(int fd, double io_seconds) {
  timeval tv{};
  if (io_seconds > 0.0) {
    tv.tv_sec = static_cast<time_t>(io_seconds);
    tv.tv_usec =
        static_cast<suseconds_t>((io_seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  }
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

/// connect(2) with an optional wall-clock bound: nonblocking connect, poll
/// for writability, then read SO_ERROR for the real outcome. With
/// timeout_seconds <= 0 this is a plain blocking connect. On failure
/// `detail` holds the strerror-style reason.
bool connect_with_timeout(int fd, const sockaddr* addr, socklen_t len,
                          double timeout_seconds, std::string* detail) {
  if (timeout_seconds <= 0.0) {
    if (fault::connect_fd(fd, addr, len) != 0) {
      *detail = std::strerror(errno);
      return false;
    }
    return true;
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (fault::connect_fd(fd, addr, len) != 0) {
    if (errno != EINPROGRESS) {
      *detail = std::strerror(errno);
      return false;
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    const int timeout_ms =
        std::max(1, static_cast<int>(timeout_seconds * 1000.0));
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready == 0) {
      *detail = "connect timeout";
      return false;
    }
    if (ready < 0) {
      *detail = std::strerror(errno);
      return false;
    }
    int so_error = 0;
    socklen_t optlen = sizeof(so_error);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &optlen);
    if (so_error != 0) {
      *detail = std::strerror(so_error);
      return false;
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  return true;
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      connect_timeout_(other.connect_timeout_),
      io_timeout_(other.io_timeout_),
      decoder_(std::move(other.decoder_)),
      pending_(std::move(other.pending_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
    connect_timeout_ = other.connect_timeout_;
    io_timeout_ = other.io_timeout_;
    decoder_ = std::move(other.decoder_);
    pending_ = std::move(other.pending_);
  }
  return *this;
}

void Client::set_timeouts(double connect_seconds, double io_seconds) {
  connect_timeout_ = connect_seconds;
  io_timeout_ = io_seconds;
  if (fd_ >= 0) arm_read_timeout(fd_, io_timeout_);
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::finish_connect(int fd, std::string* error, const std::string& where) {
  (void)error;
  (void)where;
  arm_read_timeout(fd, io_timeout_);
  // A reconnect must not replay the previous connection's half-decoded
  // bytes or stale buffered events.
  decoder_ = pvm::FrameDecoder();
  pending_.clear();
  fd_ = fd;
  return true;
}

bool Client::connect_unix(const std::string& path, std::string* error) {
  if (path.size() >= sizeof(sockaddr_un::sun_path)) {
    set_error(error, "unix socket path too long: " + path);
    return false;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    set_error(error, std::string("socket(AF_UNIX): ") + std::strerror(errno));
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  std::string detail;
  if (!connect_with_timeout(fd, reinterpret_cast<const sockaddr*>(&addr),
                            sizeof(addr), connect_timeout_, &detail)) {
    set_error(error, "connect(" + path + "): " + detail);
    ::close(fd);
    return false;
  }
  return finish_connect(fd, error, path);
}

bool Client::connect_tcp(const std::string& host, std::uint16_t port,
                         std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    set_error(error, std::string("socket(AF_INET): ") + std::strerror(errno));
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    set_error(error, "invalid IPv4 address: " + host);
    ::close(fd);
    return false;
  }
  std::string detail;
  if (!connect_with_timeout(fd, reinterpret_cast<const sockaddr*>(&addr),
                            sizeof(addr), connect_timeout_, &detail)) {
    set_error(error,
              "connect(" + host + ":" + std::to_string(port) + "): " + detail);
    ::close(fd);
    return false;
  }
  return finish_connect(fd, error, host);
}

bool Client::send_message(const pvm::Message& msg, std::string* error) {
  if (fd_ < 0) {
    set_error(error, "not connected");
    return false;
  }
  const std::vector<std::uint8_t> bytes = pvm::encode_frame(msg);
  if (!send_all(fd_, bytes.data(), bytes.size())) {
    set_error(error, std::string("send: ") + std::strerror(errno));
    return false;
  }
  return true;
}

std::optional<pvm::Message> Client::read_message(std::string* error) {
  if (fd_ < 0) {
    set_error(error, "not connected");
    return std::nullopt;
  }
  std::uint8_t buffer[64 * 1024];
  while (true) {
    if (auto msg = decoder_.next()) return msg;
    if (decoder_.errored()) {
      set_error(error, "protocol error from server: " + decoder_.error());
      return std::nullopt;
    }
    const ssize_t n = fault::read(fd_, buffer, sizeof(buffer));
    if (n == 0) {
      set_error(error, "server closed the connection");
      return std::nullopt;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (io_timeout_ > 0.0) {
          // SO_RCVTIMEO fired (or an injected EAGAIN with a timeout armed):
          // the caller should treat the connection as dead and reconnect.
          set_error(error, "read timeout");
          return std::nullopt;
        }
        continue;  // injected EAGAIN on a blocking socket: just retry
      }
      set_error(error, std::string("read: ") + std::strerror(errno));
      return std::nullopt;
    }
    decoder_.feed(buffer, static_cast<std::size_t>(n));
  }
}

std::optional<WelcomeMsg> Client::hello(std::string* error) {
  if (!send_message(encode(HelloMsg{}), error)) return std::nullopt;
  while (true) {
    auto msg = read_message(error);
    if (!msg) return std::nullopt;
    if (msg->tag() == kWelcome) {
      WelcomeMsg welcome;
      if (!decode(*msg, welcome)) {
        set_error(error, "malformed welcome from server");
        return std::nullopt;
      }
      return welcome;
    }
    if (msg->tag() == kError) {
      ErrorMsg err;
      set_error(error, decode(*msg, err) ? err.message : "server error");
      return std::nullopt;
    }
    pending_.push_back(std::move(*msg));
  }
}

std::optional<std::uint64_t> Client::submit(const JobRequest& job, bool stream,
                                            std::uint64_t progress_stride,
                                            std::string* error, bool* queued,
                                            std::uint64_t request_id,
                                            bool* cached) {
  SubmitMsg submit;
  submit.spec_json = encode_spec(job);
  submit.stream = stream;
  submit.progress_stride = progress_stride;
  submit.request_id = request_id;
  if (!send_message(encode(submit), error)) return std::nullopt;
  while (true) {
    auto msg = read_message(error);
    if (!msg) return std::nullopt;
    switch (msg->tag()) {
      case kSubmitOk: {
        SubmitOkMsg ok;
        if (!decode(*msg, ok)) {
          set_error(error, "malformed submit-ok from server");
          return std::nullopt;
        }
        if (queued != nullptr) *queued = ok.queued;
        if (cached != nullptr) *cached = ok.cached;
        return ok.session;
      }
      case kSubmitErr: {
        SubmitErrMsg err;
        set_error(error, decode(*msg, err) ? err.error : "submit rejected");
        return std::nullopt;
      }
      case kError: {
        ErrorMsg err;
        set_error(error, decode(*msg, err) ? err.message : "server error");
        return std::nullopt;
      }
      default: pending_.push_back(std::move(*msg));
    }
  }
}

bool Client::cancel(std::uint64_t session, bool* was_active, std::string* error) {
  if (!send_message(encode(CancelMsg{session}), error)) return false;
  while (true) {
    auto msg = read_message(error);
    if (!msg) return false;
    if (msg->tag() == kCancelOk) {
      CancelOkMsg ok;
      if (!decode(*msg, ok) || ok.session != session) {
        set_error(error, "malformed cancel-ok from server");
        return false;
      }
      if (was_active != nullptr) *was_active = ok.was_active;
      return true;
    }
    if (msg->tag() == kError) {
      ErrorMsg err;
      set_error(error, decode(*msg, err) ? err.message : "server error");
      return false;
    }
    pending_.push_back(std::move(*msg));
  }
}

std::optional<solver::SolveResult> Client::wait(
    std::uint64_t session,
    const std::function<void(const ProgressMsg&)>& on_progress,
    std::string* error) {
  // Replay buffered events first, then read from the wire; events that
  // belong to other sessions go (back) to the buffer in arrival order.
  std::deque<pvm::Message> buffered;
  buffered.swap(pending_);
  while (true) {
    std::optional<pvm::Message> msg;
    if (!buffered.empty()) {
      msg = std::move(buffered.front());
      buffered.pop_front();
    } else {
      msg = read_message(error);
      if (!msg) {
        pending_.insert(pending_.end(), std::make_move_iterator(buffered.begin()),
                        std::make_move_iterator(buffered.end()));
        return std::nullopt;
      }
    }
    if (msg->tag() == kProgress) {
      ProgressMsg progress;
      if (decode(*msg, progress) && progress.session == session) {
        if (on_progress) on_progress(progress);
        continue;
      }
      msg->rewind();
      pending_.push_back(std::move(*msg));
      continue;
    }
    if (msg->tag() == kDone) {
      DoneMsg done;
      if (decode(*msg, done) && done.session == session) {
        pending_.insert(pending_.end(),
                        std::make_move_iterator(buffered.begin()),
                        std::make_move_iterator(buffered.end()));
        std::string decode_error;
        auto result = decode_result(done.result_json, &decode_error);
        if (!result) {
          set_error(error, "malformed result from server: " + decode_error);
          return std::nullopt;
        }
        return result;
      }
      msg->rewind();
      pending_.push_back(std::move(*msg));
      continue;
    }
    pending_.push_back(std::move(*msg));
  }
}

bool Client::shutdown_server(std::string* error) {
  if (!send_message(encode_shutdown(), error)) return false;
  while (true) {
    auto msg = read_message(error);
    if (!msg) return false;
    if (msg->tag() == kShutdownOk) return true;
    if (msg->tag() == kError) {
      ErrorMsg err;
      set_error(error, decode(*msg, err) ? err.message : "server error");
      return false;
    }
    pending_.push_back(std::move(*msg));
  }
}

// ---------------------------------------------------------------------------
// RetryingClient

namespace {

enum class FailureClass {
  Transport,        ///< connection-level: reconnect and retry
  Timeout,          ///< read timeout: reconnect and retry
  TransientReject,  ///< server said "try again later" (queue full, draining)
  PermanentReject,  ///< schema/spec/server error: retrying cannot help
};

FailureClass classify_failure(const std::string& error) {
  if (error.find("read timeout") != std::string::npos) return FailureClass::Timeout;
  if (error.find("queue full") != std::string::npos ||
      error.find("draining") != std::string::npos) {
    return FailureClass::TransientReject;
  }
  if (error.rfind("send: ", 0) == 0 || error.rfind("read: ", 0) == 0 ||
      error.rfind("connect(", 0) == 0 || error == "not connected" ||
      error == "server closed the connection" ||
      error.find("protocol error from server") != std::string::npos) {
    return FailureClass::Transport;
  }
  return FailureClass::PermanentReject;
}

}  // namespace

RetryingClient::RetryingClient(std::string unix_path, RetryPolicy policy)
    : unix_path_(std::move(unix_path)), policy_(policy) {}

RetryingClient::RetryingClient(std::string host, std::uint16_t port,
                               RetryPolicy policy)
    : host_(std::move(host)), port_(port), tcp_(true), policy_(policy) {}

bool RetryingClient::ensure_connected(std::string* error) {
  if (client_.connected() && hello_done_) return true;
  client_.close();
  hello_done_ = false;
  client_.set_timeouts(policy_.connect_timeout_seconds,
                       policy_.io_timeout_seconds);
  const bool ok = tcp_ ? client_.connect_tcp(host_, port_, error)
                       : client_.connect_unix(unix_path_, error);
  if (!ok) return false;
  if (!client_.hello(error)) {
    client_.close();
    return false;
  }
  hello_done_ = true;
  return true;
}

std::optional<solver::SolveResult> RetryingClient::solve(
    const JobRequest& job, bool stream, std::uint64_t progress_stride,
    const std::function<void(const ProgressMsg&)>& on_progress,
    std::string* error) {
  // One request id for the whole job: every retry re-submits under it, so
  // the daemon log ties the attempts together.
  const std::uint64_t request_id = next_request_id_++;
  double backoff = policy_.initial_backoff_seconds;
  std::string last_error = "no attempts made";

  for (std::size_t attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++counters_.retries;
      if (backoff > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      }
      backoff = std::min(std::max(backoff, policy_.initial_backoff_seconds) * 2.0,
                         policy_.max_backoff_seconds);
    }
    ++counters_.attempts;

    std::string attempt_error;
    if (!ensure_connected(&attempt_error)) {
      ++counters_.connect_failures;
      last_error = attempt_error;
      continue;
    }

    bool queued = false;
    auto id = client_.submit(job, stream, progress_stride, &attempt_error,
                             &queued, request_id);
    if (!id) {
      last_error = attempt_error;
      switch (classify_failure(attempt_error)) {
        case FailureClass::TransientReject:
          ++counters_.queue_full;
          // The connection is healthy — no need to tear it down.
          continue;
        case FailureClass::Timeout:
          ++counters_.timeouts;
          client_.close();
          hello_done_ = false;
          continue;
        case FailureClass::Transport:
          ++counters_.resets_mid_stream;
          client_.close();
          hello_done_ = false;
          continue;
        case FailureClass::PermanentReject:
          ++counters_.server_errors;
          set_error(error, attempt_error);
          return std::nullopt;
      }
      continue;
    }

    auto result = client_.wait(*id, on_progress, &attempt_error);
    if (result) {
      // A Cancelled result we never asked for means the daemon abandoned
      // the session (its side of the connection died mid-storm) but the
      // Done(Cancelled) frame still won the race to the wire. That is a
      // transport casualty, not an answer — resubmit. DeadlineExpired, by
      // contrast, is a reasoned final verdict and is returned as-is.
      if (result->stop_reason == StopReason::Cancelled) {
        ++counters_.resets_mid_stream;
        last_error = "session cancelled by server";
        client_.close();
        hello_done_ = false;
        continue;
      }
      return result;
    }

    last_error = attempt_error;
    switch (classify_failure(attempt_error)) {
      case FailureClass::Timeout:
        ++counters_.timeouts;
        break;
      case FailureClass::PermanentReject:
        // e.g. a malformed result payload; a fresh solve may still work, so
        // count it but keep retrying over a fresh connection.
        ++counters_.server_errors;
        break;
      case FailureClass::Transport:
      case FailureClass::TransientReject:
        ++counters_.resets_mid_stream;
        break;
    }
    // Whatever happened mid-stream, this connection's framing state is
    // suspect: start the next attempt from scratch. The daemon cancels the
    // lost connection's sessions, so the orphan solve does not leak.
    client_.close();
    hello_done_ = false;
  }

  set_error(error, last_error + " (after " +
                       std::to_string(policy_.max_attempts) + " attempts)");
  return std::nullopt;
}

}  // namespace pts::service
