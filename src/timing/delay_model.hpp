// Delay model shared by the exact analyzer and the incremental estimator.
//
// Cell delay is placement-independent: intrinsic switching delay plus a
// load term proportional to the fanout of the driven net. Interconnect
// delay is placement-dependent: proportional to the half-perimeter of the
// net's bounding box (the classic linear-in-HPWL estimate used by
// TimberWolf-era placers).
#pragma once

#include "netlist/netlist.hpp"

namespace pts::timing {

struct DelayModel {
  /// Interconnect delay per unit of net half-perimeter (ns per grid unit).
  double wire_delay_per_unit = 0.05;

  /// Placement-independent delay contributed by `cell` (0 for pads).
  double cell_delay(const netlist::Netlist& netlist, netlist::CellId cell) const {
    const auto& c = netlist.cell(cell);
    if (!c.movable()) return 0.0;
    const double fanout = c.out_net == netlist::kNoNet
                              ? 0.0
                              : static_cast<double>(netlist.net(c.out_net).sinks.size());
    return c.intrinsic_delay + c.load_factor * fanout;
  }

  /// Placement-dependent delay of a net with half-perimeter `hpwl`.
  double wire_delay(double hpwl) const { return wire_delay_per_unit * hpwl; }
};

}  // namespace pts::timing
