// Candidate move sampling with cell ranges.
//
// Parallel workers partition the movable cells into ranges. Every candidate
// swap picks its first cell from the worker's range and the second from the
// whole cell space (paper §4.1) — this makes the probability that two
// workers generate the identical move 1/(n-1)^2 and the probability that
// more than two collide zero.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "support/rng.hpp"
#include "tabu/move.hpp"

namespace pts::tabu {

/// Half-open index range into Netlist::movable_cells().
struct CellRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
};

/// Splits `num_movable` cells into `workers` contiguous ranges whose sizes
/// differ by at most one. Workers beyond num_movable get empty ranges.
std::vector<CellRange> partition_cells(std::size_t num_movable, std::size_t workers);

/// The whole cell space as a single range.
inline CellRange full_range(const netlist::Netlist& netlist) {
  return {0, netlist.num_movable()};
}

/// Samples a swap: first cell uniform in `range`, second uniform over all
/// movable cells, distinct from the first. Requires >= 2 movable cells and
/// a non-empty range. `movable` is the flat movable-cell table — trial
/// loops hoist it once (`netlist.movable_cells()`) instead of re-resolving
/// the netlist indirection per trial.
Move sample_move(std::span<const netlist::CellId> movable, const CellRange& range,
                 Rng& rng);

inline Move sample_move(const netlist::Netlist& netlist, const CellRange& range,
                        Rng& rng) {
  return sample_move(netlist.movable_cells(), range, rng);
}

}  // namespace pts::tabu
