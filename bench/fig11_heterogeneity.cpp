// Figure 11 — Best cost versus runtime for heterogeneous and homogeneous
// runs.
//
// Paper setup: 4 TSWs x 4 CLWs on the 12-machine cluster (7 fast, 3
// medium, 2 slow). "Heterogeneous run" = parents force stragglers once
// half the children reported (HalfForce); "homogeneous run" = parents wait
// for everyone (WaitAll). Same iteration budgets. Expected shape: the
// heterogeneous run reaches equal-or-better cost at every point in time
// and finishes in clearly less runtime, never performing worse at the end.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pts;
  const auto options = bench::parse_options(argc, argv);
  bench::print_header("Figure 11",
                      "best cost vs runtime: heterogeneous vs homogeneous");

  Table summary({"circuit", "makespan het", "makespan hom", "time saved %",
                 "best het", "hom @ het end", "best hom (final)"});
  for (const auto& name : options.circuits) {
    const auto& circuit = experiments::circuit(name);
    auto config = experiments::base_config(circuit, 500, options.quick);
    config.num_tsws = 4;
    config.clws_per_tsw = 4;
    bench::apply_scale(config, options);

    config.set_policy(parallel::CollectionPolicy::HalfForce);
    const auto het = experiments::run_sim(circuit, config);
    config.set_policy(parallel::CollectionPolicy::WaitAll);
    const auto hom = experiments::run_sim(circuit, config);

    Series het_series = het.best_vs_time.downsample(16);
    het_series.name = "heterogeneous";
    Series hom_series = hom.best_vs_time.downsample(16);
    hom_series.name = "homogeneous";
    emit_table("Fig 11: best cost vs virtual time — " + name,
               series_table("time", {het_series, hom_series}, 4));

    // The paper's comparison is at equal runtime: what has each run
    // achieved by the time the heterogeneous run finishes?
    const double hom_at_het_end = hom.best_vs_time.y_at(het.makespan);
    summary.add_row(
        {name, Table::fmt(het.makespan, 1), Table::fmt(hom.makespan, 1),
         Table::fmt(100.0 * (hom.makespan - het.makespan) / hom.makespan, 1),
         Table::fmt(het.best_cost, 4), Table::fmt(hom_at_het_end, 4),
         Table::fmt(hom.best_cost, 4)});
  }
  emit_table("Fig 11 summary: accounting for heterogeneity", summary);
  return 0;
}
