// Figure 7 — Effect of the number of TSWs on solution quality.
//
// Paper setup: 1 CLW per TSW, TSWs swept 1..8, 12 machines, all circuits.
// Expected shape: quality improves up to ~4 TSWs; adding more beyond 4 is
// not useful (cluster saturates; diversification ranges shrink).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pts;
  const auto options = bench::parse_options(argc, argv);
  bench::print_header("Figure 7", "effect of high-level parallelization (TSWs)");

  std::vector<Series> cost_series;
  std::vector<Series> quality_series;
  for (const auto& name : options.circuits) {
    const auto& circuit = experiments::circuit(name);
    Series cost;
    cost.name = name;
    Series quality;
    quality.name = name;
    for (std::size_t tsws = 1; tsws <= 8; ++tsws) {
      double cost_sum = 0.0, quality_sum = 0.0;
      for (std::size_t s = 0; s < options.seeds; ++s) {
        auto config = experiments::base_config(circuit, 200 + s, options.quick);
        config.num_tsws = tsws;
        config.clws_per_tsw = 1;
        bench::apply_scale(config, options);
        const auto result = experiments::run_sim(circuit, config);
        cost_sum += result.best_cost;
        quality_sum += result.best_quality;
      }
      const auto seeds = static_cast<double>(options.seeds);
      cost.add(static_cast<double>(tsws), cost_sum / seeds);
      quality.add(static_cast<double>(tsws), quality_sum / seeds);
    }
    cost_series.push_back(std::move(cost));
    quality_series.push_back(std::move(quality));
  }

  emit_table("Fig 7: best cost vs #TSWs (lower is better; 1 CLW each)",
             series_table("tsws", cost_series, 4));
  emit_table("Fig 7: solution quality (fuzzy mu) vs #TSWs (higher is better)",
             series_table("tsws", quality_series, 4));
  return 0;
}
