// The deterministic fault-injection layer (support/fault.hpp) and the
// recovery paths wired to it: seeded decision streams replay exactly, the
// socket wrappers inject errors without touching the socket, the pvm
// mailbox drops/delays deliveries, and the sim engine survives scripted
// worker death/stall deterministically — while an empty script leaves the
// historical trajectories bit-identical.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "netlist/generator.hpp"
#include "parallel/sim_engine.hpp"
#include "pvm/mailbox.hpp"
#include "pvm/message.hpp"
#include "support/fault.hpp"

namespace pts {
namespace {

using fault::FaultPlan;
using fault::SocketFaultConfig;
using fault::WorkerFault;

// -- decision stream ----------------------------------------------------------

TEST(FaultPlan, SameSeedSameDecisionStream) {
  SocketFaultConfig config;
  config.read_error_rate = 0.2;
  config.short_read_rate = 0.3;
  config.write_error_rate = 0.1;
  config.short_write_rate = 0.25;
  config.connect_error_rate = 0.15;
  config.message_drop_rate = 0.2;
  config.message_delay_rate = 0.2;

  FaultPlan a(/*seed=*/7, config);
  FaultPlan b(/*seed=*/7, config);
  for (int i = 0; i < 200; ++i) {
    const auto da = a.on_read();
    const auto db = b.on_read();
    EXPECT_EQ(da.kind, db.kind) << "read decision " << i;
    EXPECT_EQ(da.cap, db.cap);
    EXPECT_EQ(da.error, db.error);
    const auto wa = a.on_write();
    const auto wb = b.on_write();
    EXPECT_EQ(wa.kind, wb.kind) << "write decision " << i;
    int ea = 0, eb = 0;
    EXPECT_EQ(a.on_connect(&ea), b.on_connect(&eb));
    EXPECT_EQ(ea, eb);
    EXPECT_EQ(a.on_message(), b.on_message()) << "message decision " << i;
  }
  const auto ca = a.counters();
  const auto cb = b.counters();
  EXPECT_EQ(ca.read_errors, cb.read_errors);
  EXPECT_EQ(ca.write_errors, cb.write_errors);
  EXPECT_EQ(ca.connect_errors, cb.connect_errors);
  EXPECT_EQ(ca.short_reads, cb.short_reads);
  EXPECT_EQ(ca.short_writes, cb.short_writes);
  EXPECT_EQ(ca.dropped_messages, cb.dropped_messages);
  EXPECT_EQ(ca.delayed_messages, cb.delayed_messages);
  // With these rates, 200 draws per hook inject a healthy mix.
  EXPECT_GT(ca.read_errors, 0u);
  EXPECT_GT(ca.short_reads, 0u);
  EXPECT_GT(ca.dropped_messages + ca.delayed_messages, 0u);
}

TEST(FaultPlan, ZeroRatesAlwaysPass) {
  FaultPlan plan(/*seed=*/1, SocketFaultConfig{});
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(plan.on_read().kind, FaultPlan::IoDecision::Kind::Pass);
    EXPECT_EQ(plan.on_write().kind, FaultPlan::IoDecision::Kind::Pass);
    int error = 0;
    EXPECT_FALSE(plan.on_connect(&error));
    EXPECT_EQ(plan.on_message(), FaultPlan::MessageDecision::Pass);
  }
}

// -- socket wrappers ----------------------------------------------------------

TEST(FaultSocket, InjectedReadErrorLeavesSocketIntact) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const char payload[] = "hello";
  ASSERT_EQ(::send(fds[0], payload, sizeof(payload), 0),
            static_cast<ssize_t>(sizeof(payload)));

  SocketFaultConfig config;
  config.read_error_rate = 1.0;
  config.read_errors = {ECONNRESET};
  {
    fault::ScopedFaultInjection injection(/*seed=*/3, config);
    char buffer[64];
    errno = 0;
    EXPECT_EQ(fault::read(fds[1], buffer, sizeof(buffer)), -1);
    EXPECT_EQ(errno, ECONNRESET);
    EXPECT_EQ(injection.plan().counters().read_errors, 1u);
  }
  // The error was injected, not real: the bytes are still there.
  char buffer[64];
  ASSERT_EQ(fault::read(fds[1], buffer, sizeof(buffer)),
            static_cast<ssize_t>(sizeof(payload)));
  EXPECT_STREQ(buffer, "hello");
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(FaultSocket, ShortReadsAndWritesAreCapped) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  SocketFaultConfig config;
  config.short_read_rate = 1.0;
  config.short_write_rate = 1.0;
  config.short_cap = 2;
  fault::ScopedFaultInjection injection(/*seed=*/5, config);

  const char payload[] = "0123456789";
  const ssize_t sent = fault::send(fds[0], payload, sizeof(payload), 0);
  ASSERT_GT(sent, 0);
  EXPECT_LE(sent, 2);

  char buffer[64];
  const ssize_t got = fault::read(fds[1], buffer, sizeof(buffer));
  ASSERT_GT(got, 0);
  EXPECT_LE(got, 2);
  EXPECT_EQ(buffer[0], '0');

  const auto counters = injection.plan().counters();
  EXPECT_EQ(counters.short_writes, 1u);
  EXPECT_EQ(counters.short_reads, 1u);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(FaultSocket, InjectedWriteAndConnectErrors) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  SocketFaultConfig config;
  config.write_error_rate = 1.0;
  config.write_errors = {EPIPE};
  config.connect_error_rate = 1.0;
  fault::ScopedFaultInjection injection(/*seed=*/9, config);

  errno = 0;
  EXPECT_EQ(fault::send(fds[0], "x", 1, 0), -1);
  EXPECT_EQ(errno, EPIPE);
  // Nothing actually crossed the socket.
  char buffer[8];
  EXPECT_EQ(::recv(fds[1], buffer, sizeof(buffer), MSG_DONTWAIT), -1);
  EXPECT_TRUE(errno == EAGAIN || errno == EWOULDBLOCK);

  errno = 0;
  EXPECT_EQ(fault::connect_fd(fds[0], nullptr, 0), -1);
  EXPECT_EQ(errno, ECONNREFUSED);

  const auto counters = injection.plan().counters();
  EXPECT_EQ(counters.write_errors, 1u);
  EXPECT_EQ(counters.connect_errors, 1u);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(FaultSocket, NoPlanIsPassthrough) {
  ASSERT_EQ(fault::installed(), nullptr);
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_EQ(fault::send(fds[0], "ab", 2, 0), 2);
  char buffer[8];
  ASSERT_EQ(fault::read(fds[1], buffer, sizeof(buffer)), 2);
  ::close(fds[0]);
  ::close(fds[1]);
}

// -- mailbox ------------------------------------------------------------------

TEST(FaultMailbox, DropsDeliveriesOnTheFloor) {
  SocketFaultConfig config;
  config.message_drop_rate = 1.0;
  FaultPlan plan(/*seed=*/2, config);
  pvm::Mailbox box;
  box.set_fault_plan(&plan);
  box.deliver(pvm::Message(1));
  box.deliver(pvm::Message(2));
  EXPECT_EQ(box.pending(), 0u);
  EXPECT_FALSE(box.try_recv(pvm::kAnyTag).has_value());
  EXPECT_EQ(plan.counters().dropped_messages, 2u);
}

TEST(FaultMailbox, DelayedMessageIsReleasedAfterNextDeliveryReordered) {
  SocketFaultConfig config;
  config.message_delay_rate = 1.0;
  FaultPlan plan(/*seed=*/4, config);
  pvm::Mailbox box;
  box.set_fault_plan(&plan);

  // First delivery is held back...
  box.deliver(pvm::Message(1));
  EXPECT_EQ(box.pending(), 0u);
  EXPECT_EQ(plan.counters().delayed_messages, 1u);

  // ...and released behind the next passed delivery: observable reordering.
  box.set_fault_plan(nullptr);
  box.deliver(pvm::Message(2));
  EXPECT_EQ(box.pending(), 2u);
  auto first = box.try_recv(pvm::kAnyTag);
  auto second = box.try_recv(pvm::kAnyTag);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->tag(), 2);
  EXPECT_EQ(second->tag(), 1);
}

TEST(FaultMailbox, MessagesHeldAtCloseAreLost) {
  SocketFaultConfig config;
  config.message_delay_rate = 1.0;
  FaultPlan plan(/*seed=*/6, config);
  pvm::Mailbox box;
  box.set_fault_plan(&plan);
  box.deliver(pvm::Message(9));
  box.close();
  box.set_fault_plan(nullptr);
  box.deliver(pvm::Message(10));  // closed: ignored, releases nothing
  EXPECT_FALSE(box.try_recv(pvm::kAnyTag).has_value());
}

// -- sim engine recovery ------------------------------------------------------

netlist::Netlist circuit(std::size_t gates = 56, std::uint64_t seed = 3) {
  netlist::GeneratorConfig config;
  config.num_gates = gates;
  config.num_primary_inputs = 8;
  config.num_primary_outputs = 8;
  config.seed = seed;
  return netlist::generate_circuit(config);
}

parallel::PtsConfig small_config(std::uint64_t seed = 1) {
  parallel::PtsConfig config;
  config.seed = seed;
  config.num_tsws = 3;
  config.clws_per_tsw = 2;
  config.local_iterations = 5;
  config.global_iterations = 4;
  config.tabu.compound.width = 6;
  config.tabu.compound.depth = 2;
  config.cluster = pvm::ClusterConfig::paper_cluster(0.05);
  return config;
}

void expect_results_identical(const parallel::PtsResult& a,
                              const parallel::PtsResult& b) {
  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.best_slots, b.best_slots);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.workers_lost, b.workers_lost);
  ASSERT_EQ(a.best_vs_time.size(), b.best_vs_time.size());
  for (std::size_t i = 0; i < a.best_vs_time.size(); ++i) {
    EXPECT_EQ(a.best_vs_time.x[i], b.best_vs_time.x[i]);
    EXPECT_EQ(a.best_vs_time.y[i], b.best_vs_time.y[i]);
  }
}

TEST(SimEngineFaults, EmptyScriptIsBitIdenticalToBaseline) {
  const netlist::Netlist nl = circuit();
  const parallel::PtsConfig baseline = small_config(11);
  // A script with no faults must not perturb the trajectory even though
  // other fault knobs changed — enabled() is what gates the new code path.
  parallel::PtsConfig tweaked = baseline;
  tweaked.faults.report_deadline = 123.0;
  const auto a = parallel::SimEngine(nl, baseline).run();
  const auto b = parallel::SimEngine(nl, tweaked).run();
  expect_results_identical(a, b);
  EXPECT_EQ(a.workers_lost, 0u);
}

TEST(SimEngineFaults, WorkerDeathIsSurvivedAndCounted) {
  const netlist::Netlist nl = circuit();
  parallel::PtsConfig config = small_config(11);
  WorkerFault death;
  death.kind = WorkerFault::Kind::Death;
  death.worker = 1;
  death.at_iteration = 1;
  config.faults.faults.push_back(death);
  // Generous deadline: only the scripted death is reaped, not healthy
  // stragglers (a tight deadline legitimately reaps those too — the master
  // cannot tell slow from dead).
  config.faults.report_deadline = 50.0;

  const auto result = parallel::SimEngine(nl, config).run();
  EXPECT_EQ(result.workers_lost, 1u);
  EXPECT_LT(result.best_cost, result.initial_cost);
  EXPECT_GT(result.makespan, 0.0);

  // The recovery is part of the deterministic replay: same script, same
  // seed, bit-identical outcome.
  const auto again = parallel::SimEngine(nl, config).run();
  expect_results_identical(result, again);

  // And the returned slots genuinely evaluate to the returned cost.
  parallel::SearchSetup setup(nl, config);
  auto eval = setup.make_evaluator(result.best_slots);
  EXPECT_NEAR(eval->cost(), result.best_cost, 1e-6);
}

TEST(SimEngineFaults, StallSlowsButDoesNotLoseTheWorker) {
  // Under WaitAll nobody is cut, so search decisions are timing-independent:
  // a stall must leave the solution bit-identical and only move the clock.
  // (Under a cut policy a stalled worker gets cut and the trajectory shifts —
  // that is the policy working, not a bug.)
  const netlist::Netlist nl = circuit();
  parallel::PtsConfig config = small_config(11);
  config.set_policy(parallel::CollectionPolicy::WaitAll);
  const auto baseline = parallel::SimEngine(nl, config).run();

  WorkerFault stall;
  stall.kind = WorkerFault::Kind::Stall;
  stall.worker = 0;
  stall.at_iteration = 1;
  stall.stall_factor = 8.0;
  stall.stall_iterations = 1;
  config.faults.faults.push_back(stall);
  // The deadline must dwarf the stall-induced arrival spread (virtual round
  // times here are O(100s)), or the master would reap the stalled worker.
  config.faults.report_deadline = 10'000.0;

  const auto stalled = parallel::SimEngine(nl, config).run();
  EXPECT_EQ(stalled.workers_lost, 0u);
  EXPECT_EQ(stalled.best_cost, baseline.best_cost);
  EXPECT_EQ(stalled.best_slots, baseline.best_slots);
  EXPECT_GT(stalled.makespan, baseline.makespan);

  // The stalled run replays exactly.
  const auto again = parallel::SimEngine(nl, config).run();
  expect_results_identical(stalled, again);
}

TEST(SimEngineFaults, AllWorkersDeadReturnsBestSoFar) {
  const netlist::Netlist nl = circuit();
  parallel::PtsConfig config = small_config(11);
  for (std::size_t w = 0; w < config.num_tsws; ++w) {
    WorkerFault death;
    death.worker = w;
    death.at_iteration = 0;
    config.faults.faults.push_back(death);
  }
  const auto result = parallel::SimEngine(nl, config).run();
  EXPECT_EQ(result.workers_lost, config.num_tsws);
  // Nobody ever reported: the engine returns the initial best instead of
  // hanging on reports that will never arrive.
  EXPECT_EQ(result.best_cost, result.initial_cost);
  EXPECT_GT(result.makespan, 0.0);
}

TEST(SimEngineFaults, SurvivorsAbsorbTheDeadWorkersShare) {
  const netlist::Netlist nl = circuit(80, 7);
  parallel::PtsConfig config = small_config(5);
  config.global_iterations = 6;
  WorkerFault death;
  death.worker = 2;
  death.at_iteration = 2;
  config.faults.faults.push_back(death);
  config.faults.report_deadline = 50.0;

  const auto faulted = parallel::SimEngine(nl, config).run();
  parallel::PtsConfig clean = config;
  clean.faults = {};
  const auto baseline = parallel::SimEngine(nl, clean).run();

  // The run still improves and still ends with a consistent solution even
  // though a third of the cluster vanished mid-search.
  EXPECT_EQ(faulted.workers_lost, 1u);
  EXPECT_LT(faulted.best_cost, faulted.initial_cost);
  // Losing a worker changes the search trajectory (the survivors repartition
  // the movable cells), so the two runs genuinely diverged.
  EXPECT_NE(faulted.makespan, baseline.makespan);
}

}  // namespace
}  // namespace pts
