#include "experiments/speedup.hpp"

#include <algorithm>

#include "support/stats.hpp"

namespace pts::experiments {

SpeedupMeasurement measure_speedup(const netlist::Netlist& netlist,
                                   parallel::PtsConfig base, VaryWorkers vary,
                                   const std::vector<std::size_t>& counts,
                                   double improvement_fraction,
                                   std::size_t seeds) {
  PTS_CHECK(!counts.empty());
  PTS_CHECK(seeds >= 1);
  PTS_CHECK_MSG(std::find(counts.begin(), counts.end(), 1u) != counts.end(),
                "speedup needs the n=1 baseline in `counts`");

  auto configure = [&](std::size_t n, std::uint64_t seed) {
    parallel::PtsConfig config = base;
    config.seed = seed;
    if (vary == VaryWorkers::Clws) {
      config.clws_per_tsw = n;
    } else {
      config.num_tsws = n;
    }
    return config;
  };

  SpeedupMeasurement out;
  out.speedup.name = "speedup";
  out.time_to_threshold.name = "t(n,x)";
  out.best_cost.name = "best_cost";

  // Per-seed paired measurement: each seed has its own baseline run and
  // threshold; per-seed ratios are averaged.
  struct PerSeed {
    double threshold = 0.0;
    double t1 = 0.0;
  };
  std::vector<PerSeed> baselines(seeds);
  RunningStats threshold_stats;
  for (std::size_t s = 0; s < seeds; ++s) {
    const auto baseline =
        run_sim(netlist, configure(1, base.seed + 1000 * s));
    baselines[s].threshold =
        improvement_threshold(baseline, improvement_fraction);
    baselines[s].t1 = baseline.time_to_cost(baselines[s].threshold);
    PTS_CHECK_MSG(baselines[s].t1 >= 0.0,
                  "baseline must reach its own improvement threshold");
    threshold_stats.add(baselines[s].threshold);
  }
  out.threshold_cost = threshold_stats.mean();

  for (std::size_t n : counts) {
    RunningStats ratio, time_to_x, best;
    for (std::size_t s = 0; s < seeds; ++s) {
      const auto result = run_sim(netlist, configure(n, base.seed + 1000 * s));
      const double tn = result.time_to_cost(baselines[s].threshold);
      best.add(result.best_cost);
      if (tn > 0.0) {
        time_to_x.add(tn);
        ratio.add(baselines[s].t1 / tn);
      }
    }
    out.best_cost.add(static_cast<double>(n), best.mean());
    if (time_to_x.count() > 0) {
      out.time_to_threshold.add(static_cast<double>(n), time_to_x.mean());
      out.speedup.add(static_cast<double>(n), ratio.mean());
    } else {
      out.time_to_threshold.add(static_cast<double>(n), -1.0);
    }
  }
  return out;
}

}  // namespace pts::experiments
