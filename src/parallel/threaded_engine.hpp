// Threaded engine: the parallel tabu search on the PVM-like runtime.
//
// Process structure follows the paper's Figures 2–4 exactly: the host task
// is the master; it spawns the TSWs; each TSW spawns its own CLWs. All
// coordination is message passing (protocol.hpp); the collection policies
// are executed live — a parent counts voluntary reports and sends
// ForceReport to the stragglers once the threshold is reached.
//
// Timing in this engine is wall-clock (the host has whatever cores it has);
// set PtsConfig::threaded_seconds_per_unit > 0 to throttle tasks to their
// machine profile so heterogeneity is visible in real time. The figure
// benches use the SimEngine instead (deterministic virtual time).
#pragma once

#include "parallel/config.hpp"

namespace pts::parallel {

class ThreadedEngine {
 public:
  ThreadedEngine(const netlist::Netlist& netlist, const PtsConfig& config);

  PtsResult run();

 private:
  SearchSetup setup_;
};

}  // namespace pts::parallel
