#include "tabu/compound.hpp"

namespace pts::tabu {

void build_compound_move(cost::Evaluator& eval, const CellRange& range,
                         const CompoundParams& params, Rng& rng,
                         const FrequencyMemory* memory, CompoundMove* out) {
  PTS_CHECK(params.width >= 1);
  PTS_CHECK(params.depth >= 1);
  PTS_DCHECK(out != nullptr);
  const double start_cost = eval.cost();
  const bool use_memory = memory != nullptr && memory->active();
  const std::span<const netlist::CellId> movable =
      eval.placement().netlist().movable_cells();

  CompoundMove& compound = *out;
  compound.swaps.clear();
  compound.swaps.reserve(params.depth);
  compound.improved_early = false;
  compound.cost = start_cost;
  for (std::size_t level = 0; level < params.depth; ++level) {
    Move best{};
    double best_cost = 0.0;
    bool have_best = false;
    for (std::size_t trial = 0; trial < params.width; ++trial) {
      const Move move = sample_move(movable, range, rng);
      double cost_after = eval.probe_swap(move.a, move.b);
      if (use_memory) cost_after = memory->adjusted_cost(move, cost_after);
      if (!have_best || cost_after < best_cost) {
        best = move;
        best_cost = cost_after;
        have_best = true;
      }
    }
    PTS_CHECK(have_best);
    // Keep the level's best move (even if it degrades cost — that is what
    // lets the compound move escape local minima).
    compound.cost = eval.commit_swap(best.a, best.b);
    compound.swaps.push_back(best);
    if (params.early_accept && compound.cost < start_cost) {
      compound.improved_early = true;
      break;
    }
  }
}

CompoundMove build_compound_move(cost::Evaluator& eval, const CellRange& range,
                                 const CompoundParams& params, Rng& rng,
                                 const FrequencyMemory* memory) {
  CompoundMove compound;
  build_compound_move(eval, range, params, rng, memory, &compound);
  return compound;
}

void undo_compound(cost::Evaluator& eval, const CompoundMove& move) {
  for (auto it = move.swaps.rbegin(); it != move.swaps.rend(); ++it) {
    eval.apply_swap(it->a, it->b);
  }
}

}  // namespace pts::tabu
