// DEPRECATED entry point — use pts::solver::Solver instead.
//
// This shim predates the unified front door (src/solver/). New code should
// run the parallel engines through the registry:
//
//   pts::solver::SolveSpec spec;
//   spec.engine = "parallel-sim";          // or "parallel-threaded"
//   spec.netlist = &circuit;
//   spec.seed = 7;
//   spec.parallel.num_tsws = 4;            // remaining PtsConfig knobs
//   auto result = pts::solver::Solver().solve(spec);
//
// which adds spec validation, stop conditions, and progress observers on
// top of the exact same engines (same-seed results are bit-identical).
// The shim is kept source-compatible for downstream callers; it forwards
// to SimEngine / ThreadedEngine unchanged and will be removed once
// nothing links against it.
#pragma once

#include "parallel/config.hpp"
#include "parallel/sim_engine.hpp"
#include "parallel/threaded_engine.hpp"

namespace pts::parallel {

class [[deprecated(
    "use pts::solver::Solver with engine \"parallel-sim\" or "
    "\"parallel-threaded\" (see solver/solver.hpp)")]] ParallelTabuSearch {
 public:
  /// `netlist` must outlive the search and its results.
  ParallelTabuSearch(const netlist::Netlist& netlist, PtsConfig config)
      : netlist_(&netlist), config_(std::move(config)) {}

  const PtsConfig& config() const { return config_; }

  /// Deterministic virtual-time run (same seed -> identical result).
  PtsResult run_sim() const {
    SimEngine engine(*netlist_, config_);
    return engine.run();
  }

  /// Real threaded run on the PVM-like runtime (wall-clock timings).
  PtsResult run_threaded() const {
    ThreadedEngine engine(*netlist_, config_);
    return engine.run();
  }

 private:
  const netlist::Netlist* netlist_;
  PtsConfig config_;
};

}  // namespace pts::parallel
