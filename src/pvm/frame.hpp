// Length-prefixed wire framing for Message — the byte-stream counterpart of
// the mailbox transport, used by the ptsd serving layer (src/service/).
//
// A frame is a fixed 12-byte header followed by the Message payload bytes:
//
//   u32  magic    kFrameMagic ("ptsF"), rejects desynchronized/alien streams
//   i32  tag      Message tag (the service layer's request/event type)
//   u32  length   payload bytes; 0 and > max_payload are rejected
//
// Encoding is a single buffer append (encode_frame). Decoding is incremental:
// a FrameDecoder is fed arbitrary byte chunks exactly as read(2) delivers
// them — partial headers, split payloads, many frames per chunk — and yields
// complete Messages. Malformed input (bad magic, zero-length or oversized
// payload) puts the decoder into a sticky error state: a byte stream that
// lied about its framing cannot be trusted past the lie, so the connection
// must be dropped rather than resynchronized.
//
// The decoder only checks framing; payload structure is the consumer's
// problem (Message::validate_layout + peek_field for untrusted bytes).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "pvm/message.hpp"

namespace pts::pvm {

inline constexpr std::uint32_t kFrameMagic = 0x7074'7346u;  // "ptsF"
inline constexpr std::size_t kFrameHeaderBytes = 12;
/// Default payload cap. Large enough for a scale-tier SolveResult JSON,
/// small enough that a hostile length field cannot balloon the decoder.
inline constexpr std::size_t kDefaultMaxPayload = 64u << 20;

/// Appends the framed encoding of `msg` to `out` (header + payload).
/// Messages with empty payloads are not encodable (every protocol message
/// carries at least one field; zero-length frames are rejected on decode).
void encode_frame(const Message& msg, std::vector<std::uint8_t>& out);

/// Convenience: the framed encoding as a fresh buffer.
std::vector<std::uint8_t> encode_frame(const Message& msg);

class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kDefaultMaxPayload)
      : max_payload_(max_payload) {}

  /// Appends raw stream bytes. Returns false once the decoder is errored
  /// (further bytes are discarded).
  bool feed(const void* data, std::size_t size);

  /// Next complete frame as a Message, or nullopt if more bytes are needed
  /// (or the decoder is errored).
  std::optional<Message> next();

  /// Sticky malformed-stream state; `error()` names the first violation.
  bool errored() const { return !error_.empty(); }
  const std::string& error() const { return error_; }

  /// Bytes buffered but not yet consumed by next().
  std::size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  void fail(std::string reason);

  std::size_t max_payload_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  ///< prefix of buffer_ already handed out
  std::string error_;
};

}  // namespace pts::pvm
