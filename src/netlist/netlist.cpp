#include "netlist/netlist.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace pts::netlist {

std::size_t Netlist::num_pins() const {
  std::size_t total = 0;
  for (const auto& n : nets_) total += n.pin_count();
  return total;
}

std::optional<CellId> Netlist::find_cell(std::string_view name) const {
  for (CellId id = 0; id < cells_.size(); ++id) {
    if (cells_[id].name == name) return id;
  }
  return std::nullopt;
}

void Netlist::finalize() {
  const auto n_cells = cells_.size();
  movable_.clear();
  pads_.clear();
  total_movable_width_ = 0;

  std::unordered_set<std::string> names;
  names.reserve(n_cells + nets_.size());
  for (const auto& c : cells_) {
    PTS_CHECK_MSG(names.insert(c.name).second, "duplicate cell name");
  }
  for (const auto& n : nets_) {
    PTS_CHECK_MSG(names.insert(n.name).second, "duplicate net name");
  }

  for (CellId id = 0; id < n_cells; ++id) {
    const Cell& c = cells_[id];
    PTS_CHECK_MSG(c.width >= 1, "cell width must be positive");
    switch (c.kind) {
      case CellKind::PrimaryInput:
        PTS_CHECK_MSG(c.in_nets.empty(), "PI cannot have inputs");
        PTS_CHECK_MSG(c.out_net != kNoNet, "PI must drive a net");
        pads_.push_back(id);
        break;
      case CellKind::PrimaryOutput:
        PTS_CHECK_MSG(c.in_nets.size() == 1, "PO must sink exactly one net");
        PTS_CHECK_MSG(c.out_net == kNoNet, "PO cannot drive a net");
        pads_.push_back(id);
        break;
      case CellKind::Gate:
        PTS_CHECK_MSG(!c.in_nets.empty(), "gate must have at least one input");
        PTS_CHECK_MSG(c.out_net != kNoNet, "gate must drive a net");
        movable_.push_back(id);
        total_movable_width_ += c.width;
        break;
    }
  }

  for (NetId nid = 0; nid < nets_.size(); ++nid) {
    const Net& n = nets_[nid];
    PTS_CHECK_MSG(n.driver != kNoCell, "net must have a driver");
    PTS_CHECK_MSG(!n.sinks.empty(), "net must have at least one sink");
    PTS_CHECK_MSG(cells_[n.driver].out_net == nid, "driver/out_net mismatch");
    PTS_CHECK_MSG(n.weight > 0.0, "net weight must be positive");
  }

  // Kahn topological sort over the cell graph (edge: net driver -> sink).
  std::vector<std::size_t> indegree(n_cells, 0);
  for (CellId id = 0; id < n_cells; ++id) {
    indegree[id] = cells_[id].in_nets.size();
  }
  topo_.clear();
  topo_.reserve(n_cells);
  std::vector<std::size_t> depth(n_cells, 0);
  std::vector<CellId> frontier;
  for (CellId id = 0; id < n_cells; ++id) {
    if (indegree[id] == 0) frontier.push_back(id);
  }
  while (!frontier.empty()) {
    const CellId id = frontier.back();
    frontier.pop_back();
    topo_.push_back(id);
    if (cells_[id].out_net == kNoNet) continue;
    for (CellId sink : nets_[cells_[id].out_net].sinks) {
      depth[sink] = std::max(depth[sink], depth[id] + 1);
      PTS_CHECK(indegree[sink] > 0);
      if (--indegree[sink] == 0) frontier.push_back(sink);
    }
  }
  PTS_CHECK_MSG(topo_.size() == n_cells, "netlist contains a combinational cycle");
  logic_depth_ = depth.empty() ? 0 : *std::max_element(depth.begin(), depth.end());

  // Flatten the validated pin graph into the CSR view (incident-net index
  // included — a cell may legitimately take the same net on two pins, so
  // the index is deduplicated there).
  topology_.build(*this);
}

NetlistBuilder::NetlistBuilder(std::string name) { netlist_.name_ = std::move(name); }

CellId NetlistBuilder::add_cell(std::string name, CellKind kind, int width,
                                double delay, double load) {
  Cell c;
  c.name = std::move(name);
  c.kind = kind;
  c.width = width;
  c.intrinsic_delay = delay;
  c.load_factor = load;
  netlist_.cells_.push_back(std::move(c));
  return static_cast<CellId>(netlist_.cells_.size() - 1);
}

CellId NetlistBuilder::add_primary_input(std::string name) {
  return add_cell(std::move(name), CellKind::PrimaryInput, 1, 0.0, 0.0);
}

CellId NetlistBuilder::add_primary_output(std::string name) {
  return add_cell(std::move(name), CellKind::PrimaryOutput, 1, 0.0, 0.0);
}

CellId NetlistBuilder::add_gate(std::string name, int width, double intrinsic_delay,
                                double load_factor) {
  PTS_CHECK(width >= 1);
  PTS_CHECK(intrinsic_delay >= 0.0);
  PTS_CHECK(load_factor >= 0.0);
  return add_cell(std::move(name), CellKind::Gate, width, intrinsic_delay,
                  load_factor);
}

NetId NetlistBuilder::add_net(std::string name, CellId driver, double weight) {
  PTS_CHECK(driver < netlist_.cells_.size());
  Cell& d = netlist_.cells_[driver];
  PTS_CHECK_MSG(d.kind != CellKind::PrimaryOutput, "PO cannot drive a net");
  PTS_CHECK_MSG(d.out_net == kNoNet, "cell already drives a net");
  Net n;
  n.name = std::move(name);
  n.driver = driver;
  n.weight = weight;
  netlist_.nets_.push_back(std::move(n));
  const auto nid = static_cast<NetId>(netlist_.nets_.size() - 1);
  d.out_net = nid;
  return nid;
}

void NetlistBuilder::connect_input(NetId net, CellId sink) {
  PTS_CHECK(net < netlist_.nets_.size());
  PTS_CHECK(sink < netlist_.cells_.size());
  Cell& s = netlist_.cells_[sink];
  PTS_CHECK_MSG(s.kind != CellKind::PrimaryInput, "PI cannot have inputs");
  PTS_CHECK_MSG(netlist_.nets_[net].driver != sink, "self-loop net");
  netlist_.nets_[net].sinks.push_back(sink);
  s.in_nets.push_back(net);
}

Netlist NetlistBuilder::build() && {
  netlist_.finalize();
  return std::move(netlist_);
}

}  // namespace pts::netlist
